// Command chaossoak runs the deterministic chaos soak: the full ESlurm
// stack under an adversarial fault campaign (bursts, flaps, gray nodes,
// partitions, satellite kills, message loss and duplication) across N
// seeds, checking the end-to-end invariants documented in package chaos
// after every broadcast and after teardown.
//
// The report is byte-identical for the same flags — a failing seed is
// replayable with `-seeds 1 -seed <k>`. The exit status is 1 when any
// invariant was violated.
//
// Usage:
//
//	chaossoak                         # default mix: 8 seeds, 1024 nodes
//	chaossoak -seeds 4                # CI smoke
//	chaossoak -seeds 1 -seed 7        # replay one seed
//	chaossoak -loss 0.05 -dup 0.05    # crank the network adversities
//	chaossoak -trace soak.json        # Chrome/Perfetto trace, one pid per seed
//	chaossoak -metrics                # dump each seed's metrics registry
//	chaossoak -shards 4               # sharded kernel soak on 4 workers
//
// With -shards N (N >= 1) the soak runs on the shard-parallel kernel
// (chaos.ShardedSoak): one cluster partitioned by rack across engine
// cells, executed on N worker goroutines. The report is byte-identical
// for ANY N — only wall-clock changes. -trace and -metrics apply to the
// single-engine soak only.
package main

import (
	"flag"
	"fmt"
	"os"

	"eslurm/internal/chaos"
	"eslurm/internal/obs"
)

func main() {
	cfg := chaos.DefaultConfig()
	seeds := flag.Int("seeds", cfg.Seeds, "number of seeds to soak")
	base := flag.Int64("seed", cfg.BaseSeed, "first seed")
	nodes := flag.Int("nodes", cfg.Computes, "compute nodes")
	sats := flag.Int("sats", cfg.Satellites, "satellite nodes")
	span := flag.Duration("span", cfg.Span, "driven virtual time per seed")
	bcasts := flag.Int("broadcasts", cfg.Broadcasts, "broadcasts driven over the span")
	bound := flag.Duration("bound", cfg.Bound, "per-broadcast resolution bound")
	loss := flag.Float64("loss", cfg.LossProb, "message loss probability")
	dup := flag.Float64("dup", cfg.DupProb, "message duplication probability")
	silent := flag.Float64("silent", cfg.SilentFraction, "fraction of fail-stops hidden from monitoring")
	tracePath := flag.String("trace", "", "write a Chrome trace_event JSON of every seed to this file")
	metrics := flag.Bool("metrics", false, "dump each seed's metrics registry after the report")
	shards := flag.Int("shards", 0, "run the sharded kernel soak on N workers (0 = single-engine soak)")
	flag.Parse()

	if *shards > 0 {
		rep := chaos.ShardedSoak(chaos.ShardedConfig{
			Seeds:      *seeds,
			BaseSeed:   *base,
			Computes:   *nodes,
			Satellites: *sats,
			Workers:    *shards,
			Span:       *span,
			Broadcasts: *bcasts,
			Bound:      *bound,
			LossProb:   *loss,
			DupProb:    *dup,
		})
		fmt.Print(rep.String())
		if rep.Violations() > 0 {
			os.Exit(1)
		}
		return
	}

	cfg.Seeds = *seeds
	cfg.BaseSeed = *base
	cfg.Computes = *nodes
	cfg.Satellites = *sats
	cfg.Span = *span
	cfg.Broadcasts = *bcasts
	cfg.Bound = *bound
	cfg.LossProb = *loss
	cfg.DupProb = *dup
	cfg.SilentFraction = *silent
	cfg.Trace = *tracePath != ""

	rep := chaos.Soak(cfg)
	fmt.Print(rep.String())

	if *tracePath != "" {
		// One trace process per seed, pid = seed, so Perfetto shows the
		// soak side by side. Same flags → byte-identical file.
		procs := make([]obs.Process, 0, len(rep.Seeds))
		for _, s := range rep.Seeds {
			procs = append(procs, obs.Process{
				PID:  int(s.Seed),
				Name: fmt.Sprintf("chaossoak seed %d", s.Seed),
				T:    s.Trace,
			})
		}
		f, err := os.Create(*tracePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "chaossoak:", err)
			os.Exit(2)
		}
		if err := obs.WriteChrome(f, procs...); err != nil {
			fmt.Fprintln(os.Stderr, "chaossoak:", err)
			os.Exit(2)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "chaossoak:", err)
			os.Exit(2)
		}
		fmt.Printf("trace: %d seeds -> %s\n", len(procs), *tracePath)
	}
	if *metrics {
		for _, s := range rep.Seeds {
			fmt.Printf("metrics seed %d:\n", s.Seed)
			s.Metrics.WriteText(os.Stdout)
		}
	}
	if rep.Violations() > 0 {
		os.Exit(1)
	}
}
