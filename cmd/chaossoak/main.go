// Command chaossoak runs the deterministic chaos soak: the full ESlurm
// stack under an adversarial fault campaign (bursts, flaps, gray nodes,
// partitions, satellite kills, message loss and duplication) across N
// seeds, checking the end-to-end invariants documented in package chaos
// after every broadcast and after teardown.
//
// The report is byte-identical for the same flags — a failing seed is
// replayable with `-seeds 1 -seed <k>`. The exit status is 1 when any
// invariant was violated.
//
// Usage:
//
//	chaossoak                         # default mix: 8 seeds, 1024 nodes
//	chaossoak -seeds 4                # CI smoke
//	chaossoak -seeds 1 -seed 7        # replay one seed
//	chaossoak -loss 0.05 -dup 0.05    # crank the network adversities
//	chaossoak -trace soak.json        # Chrome/Perfetto trace, one pid per seed
//	chaossoak -metrics                # dump each seed's metrics registry
//	chaossoak -critpath cp.txt        # critical-path attribution per seed
//	chaossoak -shards 4               # sharded kernel soak on 4 workers
//	chaossoak -reconcile              # chaos campaign under the reconciler
//	chaossoak -reconcile -spec s.json # custom spec schedule for the soak
//
// With -shards N (N >= 1) the soak runs on the shard-parallel kernel
// (chaos.ShardedSoak): one cluster partitioned by rack across engine
// cells, executed on N worker goroutines. The report is byte-identical
// for ANY N — only wall-clock changes. -trace and -metrics apply to the
// single-engine soak only.
//
// -critpath arms span recording and writes the deterministic
// critical-path report (internal/obs/critpath): per root-span kind, the
// top-K slowest broadcasts with their hop chains, per-kind time
// attribution, and retry/rebuild share. It works on both the
// single-engine and -shards soaks — on the sharded kernel the per-cell
// recordings are stitched across cells and the report is byte-identical
// at ANY worker count. Diff two reports with `critdiff a.txt b.txt`.
// Not available with -reconcile.
//
// With -reconcile the soak overlays the full fault campaign on a
// reconciler driving a timed spec schedule (chaos.ReconcileSoak) and
// additionally asserts the convergence contract: after the last fault
// heals, every seed reaches spec within the round budget, with no task
// dropped during graceful drains. -spec replaces the built-in schedule
// with a JSON spec/schedule file; -shards N fans independent seeds out
// over N workers — the report is byte-identical for any N.
package main

import (
	"flag"
	"fmt"
	"os"

	"eslurm/internal/chaos"
	"eslurm/internal/obs"
	"eslurm/internal/obs/critpath"
	"eslurm/internal/reconcile"
)

// writeCritpath writes the critical-path report to path (exit 2 on I/O
// failure, matching the other artifact writers).
func writeCritpath(path string, rep *critpath.Report) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "chaossoak:", err)
		os.Exit(2)
	}
	if err := rep.WriteText(f); err != nil {
		fmt.Fprintln(os.Stderr, "chaossoak:", err)
		os.Exit(2)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "chaossoak:", err)
		os.Exit(2)
	}
	fmt.Printf("critpath: %d seed(s) -> %s\n", rep.Sources, path)
}

func main() {
	cfg := chaos.DefaultConfig()
	seeds := flag.Int("seeds", cfg.Seeds, "number of seeds to soak")
	base := flag.Int64("seed", cfg.BaseSeed, "first seed")
	nodes := flag.Int("nodes", cfg.Computes, "compute nodes")
	sats := flag.Int("sats", cfg.Satellites, "satellite nodes")
	span := flag.Duration("span", cfg.Span, "driven virtual time per seed")
	bcasts := flag.Int("broadcasts", cfg.Broadcasts, "broadcasts driven over the span")
	bound := flag.Duration("bound", cfg.Bound, "per-broadcast resolution bound")
	loss := flag.Float64("loss", cfg.LossProb, "message loss probability")
	dup := flag.Float64("dup", cfg.DupProb, "message duplication probability")
	silent := flag.Float64("silent", cfg.SilentFraction, "fraction of fail-stops hidden from monitoring")
	tracePath := flag.String("trace", "", "write a Chrome trace_event JSON of every seed to this file")
	critPath := flag.String("critpath", "", "write the deterministic critical-path report of every seed to this file")
	metrics := flag.Bool("metrics", false, "dump each seed's metrics registry after the report")
	shards := flag.Int("shards", 0, "run the sharded kernel soak on N workers (0 = single-engine soak)")
	reconcileMode := flag.Bool("reconcile", false, "overlay the campaign on a reconciler and assert convergence (chaos.ReconcileSoak)")
	target := flag.Int("target", 0, "reconcile mode: initial in-service satellite target (0 = default)")
	specPath := flag.String("spec", "", "reconcile mode: spec/schedule JSON replacing the built-in schedule")
	flag.Parse()

	if *reconcileMode && *critPath != "" {
		fmt.Fprintln(os.Stderr, "chaossoak: -critpath is not available with -reconcile (the reconcile soak records no spans)")
		os.Exit(2)
	}

	if *reconcileMode {
		// The reconcile soak has its own calibrated defaults (more
		// satellites, a shorter span); only flags the user actually set
		// override them.
		rcfg := chaos.ReconcileConfig{Target: *target, Workers: *shards}
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "seeds":
				rcfg.Seeds = *seeds
			case "seed":
				rcfg.BaseSeed = *base
			case "nodes":
				rcfg.Computes = *nodes
			case "sats":
				rcfg.Satellites = *sats
			case "span":
				rcfg.Span = *span
			case "broadcasts":
				rcfg.Broadcasts = *bcasts
			case "bound":
				rcfg.Bound = *bound
			case "loss":
				rcfg.LossProb = *loss
			case "dup":
				rcfg.DupProb = *dup
			}
		})
		if *specPath != "" {
			f, err := os.Open(*specPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "chaossoak:", err)
				os.Exit(2)
			}
			sched, err := reconcile.ParseSchedule(f)
			f.Close()
			if err != nil {
				fmt.Fprintf(os.Stderr, "chaossoak: %s: %v\n", *specPath, err)
				os.Exit(2)
			}
			rcfg.Initial = sched.Initial
			rcfg.Mutations = sched.Mutations
		}
		rep := chaos.ReconcileSoak(rcfg)
		fmt.Print(rep.String())
		if rep.Violations() > 0 {
			os.Exit(1)
		}
		return
	}

	if *shards > 0 {
		rep := chaos.ShardedSoak(chaos.ShardedConfig{
			Seeds:      *seeds,
			BaseSeed:   *base,
			Computes:   *nodes,
			Satellites: *sats,
			Workers:    *shards,
			Span:       *span,
			Broadcasts: *bcasts,
			Bound:      *bound,
			LossProb:   *loss,
			DupProb:    *dup,
			Trace:      *critPath != "",
		})
		fmt.Print(rep.String())
		if *critPath != "" {
			writeCritpath(*critPath, rep.CritpathReport(5))
		}
		if rep.Violations() > 0 {
			os.Exit(1)
		}
		return
	}

	cfg.Seeds = *seeds
	cfg.BaseSeed = *base
	cfg.Computes = *nodes
	cfg.Satellites = *sats
	cfg.Span = *span
	cfg.Broadcasts = *bcasts
	cfg.Bound = *bound
	cfg.LossProb = *loss
	cfg.DupProb = *dup
	cfg.SilentFraction = *silent
	cfg.Trace = *tracePath != "" || *critPath != ""

	rep := chaos.Soak(cfg)
	fmt.Print(rep.String())

	if *critPath != "" {
		writeCritpath(*critPath, rep.CritpathReport(5))
	}

	if *tracePath != "" {
		// One trace process per seed, pid = seed, so Perfetto shows the
		// soak side by side. Same flags → byte-identical file.
		procs := make([]obs.Process, 0, len(rep.Seeds))
		for _, s := range rep.Seeds {
			procs = append(procs, obs.Process{
				PID:  int(s.Seed),
				Name: fmt.Sprintf("chaossoak seed %d", s.Seed),
				T:    s.Trace,
			})
		}
		f, err := os.Create(*tracePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "chaossoak:", err)
			os.Exit(2)
		}
		if err := obs.WriteChrome(f, procs...); err != nil {
			fmt.Fprintln(os.Stderr, "chaossoak:", err)
			os.Exit(2)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "chaossoak:", err)
			os.Exit(2)
		}
		fmt.Printf("trace: %d seeds -> %s\n", len(procs), *tracePath)
	}
	if *metrics {
		for _, s := range rep.Seeds {
			fmt.Printf("metrics seed %d:\n", s.Seed)
			s.Metrics.WriteText(os.Stdout)
		}
	}
	if rep.Violations() > 0 {
		os.Exit(1)
	}
}
