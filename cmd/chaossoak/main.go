// Command chaossoak runs the deterministic chaos soak: the full ESlurm
// stack under an adversarial fault campaign (bursts, flaps, gray nodes,
// partitions, satellite kills, message loss and duplication) across N
// seeds, checking the end-to-end invariants documented in package chaos
// after every broadcast and after teardown.
//
// The report is byte-identical for the same flags — a failing seed is
// replayable with `-seeds 1 -seed <k>`. The exit status is 1 when any
// invariant was violated.
//
// Usage:
//
//	chaossoak                         # default mix: 8 seeds, 1024 nodes
//	chaossoak -seeds 4                # CI smoke
//	chaossoak -seeds 1 -seed 7        # replay one seed
//	chaossoak -loss 0.05 -dup 0.05    # crank the network adversities
package main

import (
	"flag"
	"fmt"
	"os"

	"eslurm/internal/chaos"
)

func main() {
	cfg := chaos.DefaultConfig()
	seeds := flag.Int("seeds", cfg.Seeds, "number of seeds to soak")
	base := flag.Int64("seed", cfg.BaseSeed, "first seed")
	nodes := flag.Int("nodes", cfg.Computes, "compute nodes")
	sats := flag.Int("sats", cfg.Satellites, "satellite nodes")
	span := flag.Duration("span", cfg.Span, "driven virtual time per seed")
	bcasts := flag.Int("broadcasts", cfg.Broadcasts, "broadcasts driven over the span")
	bound := flag.Duration("bound", cfg.Bound, "per-broadcast resolution bound")
	loss := flag.Float64("loss", cfg.LossProb, "message loss probability")
	dup := flag.Float64("dup", cfg.DupProb, "message duplication probability")
	silent := flag.Float64("silent", cfg.SilentFraction, "fraction of fail-stops hidden from monitoring")
	flag.Parse()

	cfg.Seeds = *seeds
	cfg.BaseSeed = *base
	cfg.Computes = *nodes
	cfg.Satellites = *sats
	cfg.Span = *span
	cfg.Broadcasts = *bcasts
	cfg.Bound = *bound
	cfg.LossProb = *loss
	cfg.DupProb = *dup
	cfg.SilentFraction = *silent

	rep := chaos.Soak(cfg)
	fmt.Print(rep.String())
	if rep.Violations() > 0 {
		os.Exit(1)
	}
}
