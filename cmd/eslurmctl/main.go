// Command eslurmctl boots a simulated cluster under the ESlurm resource
// manager (or any of the baseline RMs) and runs a workload against it,
// reporting scheduling metrics and master/satellite resource usage — a
// one-command tour of the whole system.
//
// Usage:
//
//	eslurmctl -nodes 4096 -satellites 3 -jobs 2000 -hours 6
//	eslurmctl -rm slurm -nodes 4096 -jobs 2000
//	eslurmctl -rm eslurm -failures 0.02 -verbose
//	eslurmctl -spec spec.json -satellites 6
//
// With -spec the ESlurm master runs under the reconciler: the JSON file's
// initial spec (satellite target, cordon list, ESlurm parameters) is
// enforced every reconcile round and its schedule of timed mutations is
// replayed in simulated time; the run ends with a reconcile summary.
// An eslurm.conf with SatelliteTarget set wires the reconciler the same
// way without a schedule.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"eslurm/internal/cluster"
	"eslurm/internal/comm"
	"eslurm/internal/config"
	"eslurm/internal/core"
	"eslurm/internal/estimate"
	"eslurm/internal/experiment"
	"eslurm/internal/monitor"
	"eslurm/internal/predict"
	"eslurm/internal/reconcile"
	"eslurm/internal/rm"
	"eslurm/internal/sched"
	"eslurm/internal/simnet"
	"eslurm/internal/trace"
)

func main() {
	var (
		rmName     = flag.String("rm", "eslurm", "resource manager: eslurm, slurm, lsf, sge, torque, openpbs")
		confPath   = flag.String("conf", "", "eslurm.conf file; overrides -nodes/-satellites and the ESlurm parameters")
		nodes      = flag.Int("nodes", 1024, "compute-node count")
		satellites = flag.Int("satellites", 0, "satellite count (0 = one per 5K nodes, min 2; ESlurm only)")
		jobs       = flag.Int("jobs", 2000, "jobs to replay")
		hours      = flag.Int("hours", 4, "virtual hours of RM runtime observation")
		failures   = flag.Float64("failures", 0.01, "fraction of nodes failing during the run")
		seed       = flag.Int64("seed", 1, "simulation seed")
		specPath   = flag.String("spec", "", "reconcile spec/schedule JSON; runs the ESlurm master under the reconciler")
		verbose    = flag.Bool("verbose", false, "print per-phase detail")
	)
	flag.Parse()

	coreCfg := core.DefaultConfig()
	fwCfg := estimate.FrameworkConfig{}
	var parsedConf *config.Config
	if *confPath != "" {
		f, err := os.Open(*confPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		parsed, err := config.Parse(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if n := parsed.ComputeCount(); n > 0 {
			*nodes = n
		}
		if len(parsed.SatelliteNodes) > 0 {
			*satellites = len(parsed.SatelliteNodes)
		}
		coreCfg = parsed.CoreConfig()
		fwCfg = parsed.FrameworkConfig()
		parsedConf = parsed
		fmt.Printf("loaded %s: cluster %q, %d computes, %d satellites\n",
			*confPath, parsed.ClusterName, *nodes, *satellites)
	}

	sats := *satellites
	if sats == 0 {
		sats = 2 + *nodes/5120
	}

	// Phase 1: boot the RM on a simulated cluster with a failure
	// background and observe its resource footprint.
	e := simnet.NewEngine(*seed)
	c := cluster.New(e, cluster.Config{Computes: *nodes, Satellites: sats})
	sub := monitor.New(c, monitor.Config{DetectionProb: 0.85})

	var r rm.RM
	switch *rmName {
	case "eslurm":
		m := core.NewMaster(c, coreCfg, predict.NewAlertDriven(e, sub, 0))
		r = &rm.ESlurm{M: m}
	case "slurm":
		r = rm.NewCentralized(c, rm.SlurmProfile())
	case "lsf":
		r = rm.NewCentralized(c, rm.LSFProfile())
	case "sge":
		r = rm.NewCentralized(c, rm.SGEProfile())
	case "torque":
		r = rm.NewCentralized(c, rm.TorqueProfile())
	case "openpbs":
		r = rm.NewCentralized(c, rm.OpenPBSProfile())
	default:
		fmt.Fprintf(os.Stderr, "unknown RM %q\n", *rmName)
		os.Exit(1)
	}
	r.Start()

	// Under -spec (or an eslurm.conf with SatelliteTarget) the ESlurm
	// master runs beneath the reconciler, which enforces the desired
	// satellite census and replays the schedule's mutations in simulated
	// time.
	var rec *reconcile.Reconciler
	if es, ok := r.(*rm.ESlurm); ok {
		switch {
		case *specPath != "":
			f, err := os.Open(*specPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			sched2, err := reconcile.ParseSchedule(f)
			f.Close()
			if err != nil {
				fmt.Fprintf(os.Stderr, "eslurmctl: %s: %v\n", *specPath, err)
				os.Exit(1)
			}
			rec = reconcile.New(es.M, sched2.Initial, reconcile.Config{})
			rec.Start()
			rec.ScheduleMutations(sched2.Mutations)
			fmt.Printf("reconciler: initial target %d satellites, %d scheduled mutations\n",
				rec.Spec().Satellites, len(sched2.Mutations))
		case parsedConf != nil && parsedConf.SatelliteTarget > 0:
			spec, opts, err := reconcile.FromConfig(parsedConf)
			if err != nil {
				fmt.Fprintf(os.Stderr, "eslurmctl: %s: %v\n", *confPath, err)
				os.Exit(1)
			}
			rec = reconcile.New(es.M, spec, opts)
			rec.Start()
			fmt.Printf("reconciler: target %d satellites from %s\n", spec.Satellites, *confPath)
		}
	} else if *specPath != "" {
		fmt.Fprintf(os.Stderr, "eslurmctl: -spec requires -rm eslurm (got %q)\n", *rmName)
		os.Exit(1)
	}

	// Failure injection, announced to the monitoring network.
	span := time.Duration(*hours) * time.Hour
	rng := e.Rand("eslurmctl/failures")
	failCount := int(float64(*nodes) * *failures)
	for i := 0; i < failCount; i++ {
		node := c.Computes()[rng.Intn(*nodes)]
		at := time.Duration(rng.Int63n(int64(span)))
		sub.NoticeImpendingFailure(node, at)
		c.ScheduleFailure(node, at, 2*time.Hour)
	}

	// A light job flow to exercise the control plane.
	stop := false
	var drive func()
	drive = func() {
		e.After(time.Duration(60+rng.Intn(120))*time.Second, func() {
			if stop {
				return
			}
			size := 1 << rng.Intn(10)
			if size > *nodes/2 {
				size = *nodes / 2
			}
			jn := c.Computes()[:size]
			r.LoadJob(jn, func(time.Duration) {
				e.After(time.Duration(20+rng.Intn(300))*time.Second, func() {
					r.TerminateJob(jn, nil)
				})
			})
			drive()
		})
	}
	drive()
	e.RunUntil(span)
	stop = true

	// Demonstrative broadcast while the failure picture is fresh: with the
	// alert-driven predictor plus the master's suspect set, failed nodes
	// sit at FP-Tree leaves and healthy delivery stays in milliseconds.
	var demo comm.Result
	demoed := false
	if *verbose {
		if es, ok := r.(*rm.ESlurm); ok {
			es.M.Broadcast(c.Computes(), 4096, func(rr comm.Result) { demo = rr; demoed = true })
		}
	}

	if rec != nil {
		rec.Stop()
	}
	r.Stop()
	e.RunUntil(span + 30*time.Minute)

	m := r.Meter()
	fmt.Printf("=== %s on %d nodes (%d satellites), %v observed ===\n", r.Name(), *nodes, sats, span)
	fmt.Printf("master: cpu=%v vmem=%.2fGB rss=%.1fMB sockets avg=%.1f peak=%d\n",
		m.CPUTime().Round(time.Millisecond),
		float64(m.VMem())/(1<<30), float64(m.RSS())/(1<<20),
		m.AvgSockets(), m.PeakSockets())
	if es, ok := r.(*rm.ESlurm); ok {
		st := es.M.Stats()
		fmt.Printf("broadcasts=%d subtasks=%d reallocations=%d takeovers=%d heartbeats=%d\n",
			st.Broadcasts, st.SubTasks, st.Reallocations, st.MasterTakeovers, st.HeartbeatSweeps)
		if *verbose {
			for i, id := range c.Satellites() {
				sm := &c.Node(id).Meter
				sat := es.M.Pool.Get(id)
				fmt.Printf("satellite %d: state=%v tasks=%d cpu=%v rss=%.1fMB\n",
					i+1, sat.State(), sat.TasksReceived,
					sm.CPUTime().Round(time.Millisecond), float64(sm.RSS())/(1<<20))
			}
		}
	}

	if rec != nil {
		st := rec.Status()
		fmt.Printf("reconcile: rounds=%d actions=%d promotes=%d drains=%d (forced=%d) takeovers=%d breakers=%d specs=%d converged=%v\n",
			st.Rounds, st.Actions, st.Promotes, st.Drains, st.DrainsForced,
			st.Takeovers, st.BreakerOpens, st.SpecUpdates, st.Converged)
	}

	if demoed {
		fmt.Printf("demo broadcast: delivered=%d unreachable=%d time=%v messages=%d\n",
			demo.Delivered, len(demo.Unreachable), demo.DeliveredElapsed.Round(time.Microsecond), demo.Messages)
	}

	// Phase 3: schedule a trace through this RM's measured overhead and
	// report the Fig. 10 metrics.
	cfg := trace.Tianhe2AConfig(*jobs)
	cfg.MaxNodes = *nodes
	tr := trace.Generate(cfg)
	overhead := experiment.OccupationProbeLookup(*rmName, *nodes)
	scfg := sched.Config{Nodes: *nodes, Policy: sched.Backfill, KillAtLimit: true, Overhead: overhead, Seed: *seed}
	if *rmName == "eslurm" {
		scfg.Predictor = sched.FrameworkWalltimes{F: estimate.NewFramework(fwCfg)}
	}
	res := sched.Run(tr.Jobs, scfg)
	fmt.Printf("scheduling %d jobs: utilization=%.1f%% avg-wait=%v slowdown=%.1f completed=%d killed=%d\n",
		len(tr.Jobs), 100*res.Utilization, res.AvgWait.Round(time.Second),
		res.AvgBoundedSlowdown, res.Completed, res.Killed)
	if *verbose && *rmName == "eslurm" {
		if fw, ok := scfg.Predictor.(sched.FrameworkWalltimes); ok {
			trusted, total := 0, 0
			for _, cs := range fw.F.ClusterStats() {
				total++
				if cs.Trusted {
					trusted++
				}
			}
			fmt.Printf("estimator: %d generations, %d/%d clusters past the %.0f%% AEA gate\n",
				fw.F.Generations, trusted, total, 100*fw.F.Config().AEAGate)
		}
	}
}
