// Command critdiff aligns two critical-path reports (written by
// `benchrunner -critpath` or `chaossoak -critpath`) and prints which
// span kinds gained or lost critical time between them — the
// regression-hunting view the perf gate's wall-clock numbers can't give.
// Reports are self-verifying (digest trailer), so a truncated or edited
// input is rejected rather than silently mis-diffed; the diff itself is
// byte-stable for the same pair of inputs.
//
// Usage:
//
//	critdiff before.txt after.txt
//
// Groups present in only one report are marked "(only in A/B)"; movers
// are sorted by |delta|, largest first. Exit status 2 on unreadable or
// unverifiable inputs.
package main

import (
	"flag"
	"fmt"
	"os"

	"eslurm/internal/obs/critpath"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: critdiff <reportA> <reportB>")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}
	a := load(flag.Arg(0))
	b := load(flag.Arg(1))
	d := critpath.Diff(a, b, flag.Arg(0), flag.Arg(1))
	if err := d.WriteText(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "critdiff:", err)
		os.Exit(2)
	}
}

// load parses and digest-verifies one report file.
func load(path string) *critpath.Report {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "critdiff:", err)
		os.Exit(2)
	}
	defer f.Close()
	rep, err := critpath.Parse(f)
	if err != nil {
		fmt.Fprintf(os.Stderr, "critdiff: %s: %v\n", path, err)
		os.Exit(2)
	}
	return rep
}
