package main

import (
	"strings"
	"testing"
)

// run is exercised directly so every exit path of the CLI is covered
// without spawning processes.

func TestRunBadPackagePath(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"./no/such/dir"}, &out, &errb); code != 2 {
		t.Fatalf("exit = %d, want 2; stderr: %s", code, errb.String())
	}
	if !strings.Contains(errb.String(), "no/such/dir") {
		t.Errorf("stderr does not name the bad pattern: %s", errb.String())
	}
}

func TestRunFindingPresent(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"testdata/violating"}, &out, &errb); code != 1 {
		t.Fatalf("exit = %d, want 1; stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "[detrand]") {
		t.Errorf("stdout missing the detrand finding:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "violating.go:") {
		t.Errorf("stdout missing file:line position:\n%s", out.String())
	}
	if !strings.Contains(errb.String(), "1 finding(s)") {
		t.Errorf("stderr missing the finding count: %s", errb.String())
	}
}

func TestRunAllSuppressed(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"testdata/suppressed"}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d, want 0; output: %s%s", code, out.String(), errb.String())
	}
	if out.String() != "" {
		t.Errorf("expected no findings, got:\n%s", out.String())
	}
}

func TestRunList(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	for _, name := range []string{"walltime", "detrand", "maporder", "errdrop"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing %s:\n%s", name, out.String())
		}
	}
}

func TestRunBadFlag(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-definitely-not-a-flag"}, &out, &errb); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}
