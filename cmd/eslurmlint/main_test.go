package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"eslurm/internal/lint"
)

// run is exercised directly so every exit path of the CLI is covered
// without spawning processes.

func TestRunBadPackagePath(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"./no/such/dir"}, &out, &errb); code != 2 {
		t.Fatalf("exit = %d, want 2; stderr: %s", code, errb.String())
	}
	if !strings.Contains(errb.String(), "no/such/dir") {
		t.Errorf("stderr does not name the bad pattern: %s", errb.String())
	}
}

func TestRunFindingPresent(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"testdata/violating"}, &out, &errb); code != 1 {
		t.Fatalf("exit = %d, want 1; stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "[detrand]") {
		t.Errorf("stdout missing the detrand finding:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "violating.go:") {
		t.Errorf("stdout missing file:line position:\n%s", out.String())
	}
	if !strings.Contains(errb.String(), "1 finding(s)") {
		t.Errorf("stderr missing the finding count: %s", errb.String())
	}
}

func TestRunAllSuppressed(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"testdata/suppressed"}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d, want 0; output: %s%s", code, out.String(), errb.String())
	}
	if out.String() != "" {
		t.Errorf("expected no findings, got:\n%s", out.String())
	}
}

func TestRunList(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	for _, name := range []string{"walltime", "detrand", "maporder", "errdrop"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing %s:\n%s", name, out.String())
		}
	}
}

// TestRunOnly: -only scopes the run to the named analyzers — the
// violating package's detrand finding fires under -only detrand and
// vanishes under -only walltime — and an unknown name is a usage error,
// not a silently empty (therefore clean-looking) run.
func TestRunOnly(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-only", "detrand", "testdata/violating"}, &out, &errb); code != 1 {
		t.Fatalf("exit = %d, want 1; stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "[detrand]") {
		t.Errorf("-only detrand missed the finding:\n%s", out.String())
	}

	out.Reset()
	errb.Reset()
	if code := run([]string{"-only", "walltime", "testdata/violating"}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d, want 0 (detrand not selected); out: %s", code, out.String())
	}

	out.Reset()
	errb.Reset()
	if code := run([]string{"-only", "nosuchanalyzer", "testdata/violating"}, &out, &errb); code != 2 {
		t.Fatalf("exit = %d, want 2 for unknown analyzer", code)
	}
	if !strings.Contains(errb.String(), "nosuchanalyzer") {
		t.Errorf("stderr does not name the unknown analyzer: %s", errb.String())
	}
}

func TestRunBadFlag(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-definitely-not-a-flag"}, &out, &errb); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}

// TestRunListMarkdown: -list emits the markdown table the README embeds,
// one row per analyzer.
func TestRunListMarkdown(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) < 3 || !strings.HasPrefix(lines[0], "| analyzer |") {
		t.Fatalf("-list is not a markdown table:\n%s", out.String())
	}
	for _, line := range lines[2:] {
		if !strings.HasPrefix(line, "| `") {
			t.Errorf("row not in | `name` | doc | form: %s", line)
		}
	}
}

// TestRunNoMatch: a pattern that resolves to zero packages is a usage
// error, not a silently clean run.
func TestRunNoMatch(t *testing.T) {
	empty := t.TempDir()
	var out, errb strings.Builder
	if code := run([]string{empty + "/..."}, &out, &errb); code != 2 {
		t.Fatalf("exit = %d, want 2; stderr: %s", code, errb.String())
	}
	if !strings.Contains(errb.String(), "no packages match") {
		t.Errorf("stderr missing the no-match diagnostic: %s", errb.String())
	}
	if !strings.Contains(errb.String(), "usage:") {
		t.Errorf("stderr missing usage text: %s", errb.String())
	}
}

// TestRunSARIF: findings present, but -sarif exits 0 and emits a valid
// SARIF log with the finding annotated at a repo-relative path — code
// scanning surfaces the alerts while the plain-mode step stays the gate.
func TestRunSARIF(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-sarif", "testdata/violating"}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d, want 0; stderr: %s", code, errb.String())
	}
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Version string `json:"version"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID string `json:"ruleId"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal([]byte(out.String()), &log); err != nil {
		t.Fatalf("stdout is not JSON: %v\n%s", err, out.String())
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 || len(log.Runs[0].Results) != 1 {
		t.Fatalf("unexpected SARIF shape:\n%s", out.String())
	}
	// -sarif reports findings in the log body and still exits 0: CI
	// uploads the artifact and the blocking decision stays with the
	// plain-text gate. tool.version carries the ruleset schema.
	if got := log.Runs[0].Tool.Driver.Version; got != lint.SchemaVersion {
		t.Errorf("SARIF tool.version = %q, want lint.SchemaVersion %q", got, lint.SchemaVersion)
	}
	if log.Runs[0].Results[0].RuleID != "detrand" {
		t.Errorf("ruleId = %q, want detrand", log.Runs[0].Results[0].RuleID)
	}
	if !strings.Contains(out.String(), "testdata/violating/violating.go") {
		t.Errorf("SARIF missing the relative artifact path:\n%s", out.String())
	}
}

// TestRunCachedParallel: -j and -cache must not change output or exit
// code, and the second (fully cached) run must reproduce the first
// byte for byte.
func TestRunCachedParallel(t *testing.T) {
	cacheDir := t.TempDir()
	args := []string{"-j", "4", "-cache", cacheDir, "testdata/violating"}
	var out1, out2, errb strings.Builder
	if code := run(args, &out1, &errb); code != 1 {
		t.Fatalf("first run exit = %d, want 1; stderr: %s", code, errb.String())
	}
	entries, err := os.ReadDir(cacheDir)
	if err != nil || len(entries) == 0 {
		t.Fatalf("cache dir not populated: err=%v entries=%d", err, len(entries))
	}
	for _, e := range entries {
		if filepath.Ext(e.Name()) != ".json" {
			t.Errorf("unexpected cache entry %s", e.Name())
		}
	}
	if code := run(args, &out2, &errb); code != 1 {
		t.Fatalf("cached run exit = %d, want 1; stderr: %s", code, errb.String())
	}
	if out1.String() != out2.String() {
		t.Errorf("cached run output differs:\n--- first\n%s--- second\n%s", out1.String(), out2.String())
	}
	if !strings.Contains(out1.String(), "[detrand]") {
		t.Errorf("missing the detrand finding:\n%s", out1.String())
	}
}
