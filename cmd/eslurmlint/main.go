// Command eslurmlint runs the project's determinism-enforcing static
// analyzers (run `eslurmlint -list` for the full table) over the module.
//
// Usage:
//
//	go run ./cmd/eslurmlint ./...
//
// Each argument is a directory or a dir/... pattern; the default is ./...
// (every package under the current directory). A pattern that matches no
// packages is a usage error (exit 2), so a typo'd path in CI can never
// pass as a clean run.
//
// Findings print as "file:line: [analyzer] message" and any unsuppressed
// finding makes the process exit 1; loading or type-checking failures
// exit 2. Suppress a site with `//eslurmlint:ignore <analyzer> <reason>`
// on the offending line or the line above it.
//
// Flags:
//
//	-list        print the analyzer table (markdown; the README embeds it) and exit
//	-sarif       emit findings as SARIF 2.1.0 on stdout and exit 0 even
//	             when findings exist — code scanning renders them as
//	             alerts, and the plain-mode CI step stays the hard gate
//	-ownership   dump the inferred engine-affinity map (engine-bound
//	             types, bearer functions, escapes, mutable globals) per
//	             internal/ package as deterministic JSON and exit 0 —
//	             the sharded-kernel work list
//	-only A,B    run only the named analyzers (default: all); unknown
//	             names are usage errors. Suppressions naming analyzers
//	             that did not run are never judged stale.
//	-j N         analysis worker count (default: GOMAXPROCS)
//	-cache DIR   reuse per-package results from DIR, keyed by a content
//	             hash of each package's module-local dependency closure
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"eslurm/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main minus os.Exit so tests can drive every exit path.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("eslurmlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "print the analyzer table (markdown) and exit")
	sarif := fs.Bool("sarif", false, "emit SARIF 2.1.0 on stdout; findings do not fail the run")
	ownership := fs.Bool("ownership", false, "dump the engine-affinity map as JSON; findings do not fail the run")
	workers := fs.Int("j", 0, "analysis worker count (0 = GOMAXPROCS)")
	cacheDir := fs.String("cache", "", "per-package result cache directory (empty = no cache)")
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: eslurmlint [-list] [-sarif] [-ownership] [-only a,b] [-j N] [-cache dir] [packages]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	analyzers := lint.Analyzers()
	if *only != "" {
		byName := make(map[string]*lint.Analyzer, len(analyzers))
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		analyzers = analyzers[:0:0]
		for _, name := range strings.Split(*only, ",") {
			name = strings.TrimSpace(name)
			a := byName[name]
			if a == nil {
				fmt.Fprintf(stderr, "eslurmlint: -only: unknown analyzer %q (see -list)\n", name)
				fs.Usage()
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}
	if *list {
		fmt.Fprintln(stdout, "| analyzer | rule |")
		fmt.Fprintln(stdout, "|----------|------|")
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(stdout, "| `%s` | %s |\n", a.Name, a.Doc)
		}
		return 0
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "eslurmlint:", err)
		return 2
	}
	root, err := lint.FindModuleRoot(cwd)
	if err != nil {
		fmt.Fprintln(stderr, "eslurmlint:", err)
		return 2
	}
	loader, err := lint.NewLoader(root)
	if err != nil {
		fmt.Fprintln(stderr, "eslurmlint:", err)
		return 2
	}
	pkgs, err := loader.LoadPatterns(patterns)
	if err != nil {
		fmt.Fprintln(stderr, "eslurmlint:", err)
		return 2
	}
	if len(pkgs) == 0 {
		fmt.Fprintf(stderr, "eslurmlint: no packages match %s\n", strings.Join(patterns, " "))
		fs.Usage()
		return 2
	}

	if *ownership {
		if err := lint.WriteOwnership(stdout, pkgs, cwd); err != nil {
			fmt.Fprintln(stderr, "eslurmlint:", err)
			return 2
		}
		return 0
	}

	opts := lint.RunOptions{Workers: *workers, Lookup: loader.Loaded}
	if *cacheDir != "" {
		cache, err := lint.NewCache(*cacheDir)
		if err != nil {
			fmt.Fprintln(stderr, "eslurmlint:", err)
			return 2
		}
		opts.Cache = cache
	}
	findings := lint.RunParallel(pkgs, analyzers, opts)

	if *sarif {
		if err := lint.WriteSARIF(stdout, findings, analyzers, cwd); err != nil {
			fmt.Fprintln(stderr, "eslurmlint:", err)
			return 2
		}
		return 0
	}
	for _, f := range findings {
		pos := f.Pos
		if rel, err := filepath.Rel(cwd, pos.Filename); err == nil && len(rel) < len(pos.Filename) {
			pos.Filename = rel
		}
		fmt.Fprintf(stdout, "%s:%d: [%s] %s\n", pos.Filename, pos.Line, f.Analyzer, f.Message)
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "eslurmlint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}
