// Command eslurmlint runs the project's determinism-enforcing static
// analyzers (walltime, detrand, maporder, errdrop) over the module.
//
// Usage:
//
//	go run ./cmd/eslurmlint ./...
//
// Each argument is a directory or a dir/... pattern; the default is ./...
// (every package under the current directory). Findings print as
// "file:line: [analyzer] message" and any unsuppressed finding makes the
// process exit 1; loading or type-checking failures exit 2. Suppress a
// site with `//eslurmlint:ignore <analyzer> <reason>` on the offending
// line or the line above it.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"eslurm/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main minus os.Exit so tests can drive every exit path.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("eslurmlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list the analyzers and exit")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: eslurmlint [-list] [packages]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(stdout, "%-10s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "eslurmlint:", err)
		return 2
	}
	root, err := lint.FindModuleRoot(cwd)
	if err != nil {
		fmt.Fprintln(stderr, "eslurmlint:", err)
		return 2
	}
	loader, err := lint.NewLoader(root)
	if err != nil {
		fmt.Fprintln(stderr, "eslurmlint:", err)
		return 2
	}
	pkgs, err := loader.LoadPatterns(patterns)
	if err != nil {
		fmt.Fprintln(stderr, "eslurmlint:", err)
		return 2
	}

	findings := lint.Run(pkgs, lint.Analyzers())
	for _, f := range findings {
		pos := f.Pos
		if rel, err := filepath.Rel(cwd, pos.Filename); err == nil && len(rel) < len(pos.Filename) {
			pos.Filename = rel
		}
		fmt.Fprintf(stdout, "%s:%d: [%s] %s\n", pos.Filename, pos.Line, f.Analyzer, f.Message)
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "eslurmlint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}
