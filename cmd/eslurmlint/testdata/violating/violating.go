// Package violating is a CLI test fixture with one unsuppressed detrand
// finding; testdata directories are invisible to ./... walks, so it never
// reaches real lint runs.
package violating

import "math/rand"

func Draw(n int) int {
	return rand.Intn(n)
}
