// Package suppressed is a CLI test fixture whose only finding carries a
// valid suppression, so the CLI must exit 0.
package suppressed

import "math/rand"

func Draw(n int) int {
	//eslurmlint:ignore detrand fixture exercising the all-suppressed exit path
	return rand.Intn(n)
}
