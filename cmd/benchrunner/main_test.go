package main

import (
	"strings"
	"testing"
)

// TestSerialOverride pins the -trace/-metrics/-critpath serial-execution
// override: observability runs must drop to one worker, and doing so over
// a multi-worker request (explicit or the GOMAXPROCS default) must produce
// a warning naming the responsible flag — never a silent downgrade.
func TestSerialOverride(t *testing.T) {
	cases := []struct {
		name                     string
		parallel                 int
		trace, metrics, critpath bool
		want                     int
		warnContains             []string // empty slice = no warning expected
	}{
		{name: "no observability flags", parallel: 8, want: 8},
		{name: "trace forces serial", parallel: 8, trace: true, want: 1,
			warnContains: []string{"-trace", "forces serial", "-parallel 8"}},
		{name: "metrics forces serial", parallel: 4, metrics: true, want: 1,
			warnContains: []string{"-metrics", "forces serial", "-parallel 4"}},
		{name: "critpath forces serial", parallel: 6, critpath: true, want: 1,
			warnContains: []string{"-critpath", "forces serial", "-parallel 6"}},
		{name: "both flags named", parallel: 2, trace: true, metrics: true, want: 1,
			warnContains: []string{"-trace and -metrics", "-parallel 2"}},
		{name: "all three flags named", parallel: 3, trace: true, metrics: true, critpath: true, want: 1,
			warnContains: []string{"-trace and -metrics and -critpath", "-parallel 3"}},
		{name: "already serial stays silent", parallel: 1, trace: true, want: 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, warn := serialOverride(tc.parallel, tc.trace, tc.metrics, tc.critpath)
			if got != tc.want {
				t.Errorf("parallel = %d, want %d", got, tc.want)
			}
			if len(tc.warnContains) == 0 {
				if warn != "" {
					t.Errorf("unexpected warning: %q", warn)
				}
				return
			}
			if warn == "" {
				t.Fatal("want a warning, got none")
			}
			for _, sub := range tc.warnContains {
				if !strings.Contains(warn, sub) {
					t.Errorf("warning %q does not mention %q", warn, sub)
				}
			}
		})
	}
}
