// Command benchrunner regenerates the paper's tables and figures from the
// simulated reproduction. Each experiment prints the same rows/series the
// paper reports (see DESIGN.md §3 for the experiment index).
//
// Experiments are independent simulations, so they execute on a worker
// pool (-parallel, default GOMAXPROCS); tables are still printed to
// stdout in registry order, byte-identical to a serial run. Progress and
// timing go to stderr so stdout stays a stable artifact.
//
// Usage:
//
//	benchrunner -list                 # show available experiments
//	benchrunner -exp fig8b            # run one experiment (quick preset)
//	benchrunner -exp fig10 -paper     # run at the paper's full scale
//	benchrunner -all                  # run every experiment
//	benchrunner -all -parallel 4      # ...on exactly 4 workers
//	benchrunner -all -json            # ...and write BENCH_quick.json
//	benchrunner -all -jsonout f.json  # ...perf record to f.json (CI gate)
//	benchrunner -exp fig7f -shards 4  # sharded kernel on 4 window workers
//	benchrunner -exp fig8b -trace t.json   # Chrome trace of every engine
//	benchrunner -exp fig8b -metrics        # dump each engine's registry
//	benchrunner -exp fig7f -critpath cp.txt  # critical-path attribution
//
// -critpath arms span recording on every engine and writes the
// deterministic critical-path report (internal/obs/critpath) for the
// whole run: per experiment × root-span kind, top-K slowest paths,
// per-kind time attribution, retry/rebuild share. Same flags →
// byte-identical file; diff two runs with `critdiff a.txt b.txt`.
// `benchrunner -spans` prints the span/metric taxonomy tables that
// OBSERVABILITY.md embeds (and docs_test.go byte-gates).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"eslurm/internal/experiment"
	"eslurm/internal/obs"
	"eslurm/internal/simnet"
	"eslurm/internal/simnet/benchkit"
)

func main() {
	var (
		expID    = flag.String("exp", "", "experiment ID to run (see -list)")
		all      = flag.Bool("all", false, "run every experiment")
		paper    = flag.Bool("paper", false, "use the paper-scale preset (slow: full node counts)")
		list     = flag.Bool("list", false, "list available experiments")
		csvDir   = flag.String("csv", "", "also write the Fig. 7/9 time-series CSVs into this directory")
		parallel = flag.Int("parallel", runtime.GOMAXPROCS(0), "experiment worker-pool size (tables always print in registry order)")
		jsonOut  = flag.Bool("json", false, "write a BENCH_<preset>.json perf record (suite stats + kernel microbench)")
		jsonPath = flag.String("jsonout", "", "write the perf record to this path instead of BENCH_<preset>.json (implies -json); lets CI produce a fresh record without clobbering the committed baseline")
		trace    = flag.String("trace", "", "write a Chrome trace_event JSON of every engine to this file (forces serial execution)")
		metrics  = flag.Bool("metrics", false, "dump each engine's metrics registry to stdout (forces serial execution)")
		critPath = flag.String("critpath", "", "write the deterministic critical-path report of every engine to this file (forces serial execution)")
		spans    = flag.Bool("spans", false, "print the span and metric taxonomy tables (the generated half of OBSERVABILITY.md) and exit")
		shards   = flag.Int("shards", 0, "run shard-aware experiments (fig7f, fig10) on the sharded kernel with N window workers (0 = legacy single-engine path)")
	)
	flag.Parse()

	if *list {
		fmt.Println("available experiments:")
		for _, s := range experiment.Registry() {
			fmt.Printf("  %-10s %s\n", s.ID, s.Artifact)
		}
		return
	}
	if *spans {
		// The exact blocks OBSERVABILITY.md embeds; docs_test.go byte-gates
		// them, so paste this output verbatim when the taxonomy changes.
		fmt.Print(obs.SpanTaxonomyMarkdown())
		fmt.Println()
		fmt.Print(obs.MetricTaxonomyMarkdown())
		return
	}

	params := experiment.QuickParams()
	preset := "quick"
	if *paper {
		params = experiment.PaperParams()
		preset = "paper"
	}
	params.Shards = *shards

	if *csvDir != "" {
		fmt.Fprintf(os.Stderr, "-- writing figure time series to %s\n", *csvDir)
		if err := experiment.WriteFigureSeries(*csvDir, params); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if *expID == "" && !*all {
			return
		}
	}

	var specs []experiment.Spec
	switch {
	case *all:
		specs = experiment.Registry()
	case *expID != "":
		s, ok := experiment.Lookup(*expID)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; try -list\n", *expID)
			os.Exit(1)
		}
		specs = []experiment.Spec{s}
	default:
		flag.Usage()
		os.Exit(2)
	}

	if p, warn := serialOverride(*parallel, *trace != "", *metrics, *critPath != ""); p != *parallel || warn != "" {
		*parallel = p
		if warn != "" {
			fmt.Fprintln(os.Stderr, warn)
		}
	}
	emit := func(r experiment.Result) {
		fmt.Fprintf(os.Stderr, "-- %s (%s) done in %s: %d events, %.0f events/s\n",
			r.Spec.ID, r.Spec.Artifact, r.Wall.Round(time.Millisecond), r.Events, r.EventsPerSec())
		for _, tb := range r.Tables {
			tb.Fprint(os.Stdout)
		}
	}

	fmt.Fprintf(os.Stderr, "-- %d experiment(s), %s preset, %d worker(s)\n", len(specs), preset, *parallel)
	suiteStart := time.Now()
	var results []experiment.Result
	if *trace != "" || *metrics || *critPath != "" {
		results = runObserved(specs, params, *trace, *critPath, *metrics, emit)
	} else {
		results = experiment.RunConcurrent(specs, params, *parallel, emit)
	}
	suiteWall := time.Since(suiteStart)
	fmt.Fprintf(os.Stderr, "-- suite done in %s\n", suiteWall.Round(time.Millisecond))

	if *jsonOut || *jsonPath != "" {
		path := *jsonPath
		if path == "" {
			path = "BENCH_" + preset + ".json"
		}
		if err := writePerfRecord(path, preset, *parallel, *shards, suiteWall, results); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "-- wrote %s\n", path)
	}
}

// serialOverride resolves the worker-pool size when an observability flag
// is set: engine collection is goroutine-scoped, so -trace, -metrics and
// -critpath force the experiments onto the calling goroutine. When that
// overrides a multi-worker request (including the GOMAXPROCS default),
// the returned warning says so on stderr instead of silently dropping the
// parallelism.
func serialOverride(parallel int, trace, metrics, critpath bool) (int, string) {
	if !trace && !metrics && !critpath {
		return parallel, ""
	}
	if parallel == 1 {
		return 1, ""
	}
	var set []string
	if trace {
		set = append(set, "-trace")
	}
	if metrics {
		set = append(set, "-metrics")
	}
	if critpath {
		set = append(set, "-critpath")
	}
	return 1, fmt.Sprintf("-- %s forces serial execution (engine collection is goroutine-scoped); overriding -parallel %d",
		strings.Join(set, " and "), parallel)
}

// runObserved executes specs serially on the calling goroutine, arming
// tracing on every engine each experiment constructs (simnet.CollectEngines
// fires before any event runs, so spans cover from virtual time zero).
// The Chrome file gets one process per engine — pid is the engine's index
// across the whole run, the process name carries the experiment ID and the
// engine's seed — and -metrics dumps each engine's registry in the same
// order. -critpath feeds the same engines, with the same labels, through
// experiment.CritpathReport. Engines record passively, so tables stay
// byte-identical to an untraced run.
func runObserved(specs []experiment.Spec, params experiment.Params, tracePath, critPath string, metrics bool, emit func(experiment.Result)) []experiment.Result {
	var all []experiment.TracedEngine
	results := make([]experiment.Result, 0, len(specs))
	for _, s := range specs {
		start := time.Now()
		var tables []*experiment.Table
		engines := simnet.CollectEngines(func(e *simnet.Engine) {
			if tracePath != "" || critPath != "" {
				e.EnableTracing()
			}
		}, func() { tables = s.Run(params) })
		r := experiment.Result{Spec: s, Tables: tables, Wall: time.Since(start)}
		for _, e := range engines {
			r.Events += e.Processed()
			all = append(all, experiment.TracedEngine{Exp: s.ID, E: e})
		}
		results = append(results, r)
		if emit != nil {
			emit(r)
		}
	}

	if tracePath != "" {
		procs := make([]obs.Process, 0, len(all))
		for i, o := range all {
			procs = append(procs, obs.Process{
				PID:  i,
				Name: fmt.Sprintf("%s engine %d seed %d", o.Exp, i, o.E.Seed()),
				T:    o.E.Tracer(),
			})
		}
		f, err := os.Create(tracePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := obs.WriteChrome(f, procs...); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "-- trace: %d engine(s) -> %s\n", len(procs), tracePath)
	}
	if critPath != "" {
		rep := experiment.CritpathReport(all, 5)
		f, err := os.Create(critPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := rep.WriteText(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "-- critpath: %d source(s) -> %s\n", rep.Sources, critPath)
	}
	if metrics {
		for i, o := range all {
			fmt.Printf("metrics %s engine %d seed %d:\n", o.Exp, i, o.E.Seed())
			o.E.Metrics().WriteText(os.Stdout)
		}
	}
	return results
}

// A perfRecord is the benchmark trajectory the repo commits per preset:
// regenerate with `go run ./cmd/benchrunner -all -json [-paper]` and
// compare against the committed BENCH_<preset>.json (see the
// "Performance" section of DESIGN.md).
type perfRecord struct {
	Preset string `json:"preset"`
	// Parallel is the experiment worker-pool size actually used (after any
	// serial override); Shards is the -shards setting: the window worker
	// count for shard-aware experiments, 0 for the legacy kernel.
	Parallel     int          `json:"parallel"`
	Shards       int          `json:"shards"`
	GoVersion    string       `json:"go_version"`
	GOOS         string       `json:"goos"`
	GOARCH       string       `json:"goarch"`
	NumCPU       int          `json:"num_cpu"`
	SuiteWallMS  float64      `json:"suite_wall_ms"`
	TotalEvents  uint64       `json:"total_events"`
	EventsPerSec float64      `json:"events_per_sec"`
	Experiments  []expRecord  `json:"experiments"`
	Kernel       []benchEntry `json:"kernel_microbench"`
}

type expRecord struct {
	ID       string  `json:"id"`
	Artifact string  `json:"artifact"`
	WallMS   float64 `json:"wall_ms"`
	Events   uint64  `json:"events"`
	// Shards is the shard worker count this experiment actually ran with:
	// the -shards setting for shard-aware experiments, 0 for experiments
	// that always run the single-engine path.
	Shards       int     `json:"shards"`
	EventsPerSec float64 `json:"events_per_sec"`
}

type benchEntry struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	// Seed* record the same benchmark measured on the pre-optimization
	// kernel (commit 1aa33b8: container/heap + per-event allocation +
	// unmemoized Rand) on the reference machine, so the record carries
	// the seed-vs-optimized trajectory.
	SeedNsPerOp     float64 `json:"seed_ns_per_op"`
	SeedAllocsPerOp int64   `json:"seed_allocs_per_op"`
	SeedBytesPerOp  int64   `json:"seed_bytes_per_op"`
}

// seedKernelBaseline is the reference measurement of the pre-optimization
// kernel (Intel Xeon 2.10GHz, go1.24, linux/amd64, -benchtime=2s):
// ns/op, allocs/op, B/op.
var seedKernelBaseline = map[string][3]float64{
	"EngineStep":           {218.8, 1, 48},
	"EngineScheduleCancel": {124.1, 2, 96},
	"EngineRand":           {12543, 4, 5448},
}

func writePerfRecord(path, preset string, parallel, shards int, suiteWall time.Duration, results []experiment.Result) error {
	rec := perfRecord{
		Preset:      preset,
		Parallel:    parallel,
		Shards:      shards,
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		NumCPU:      runtime.NumCPU(),
		SuiteWallMS: float64(suiteWall.Microseconds()) / 1e3,
	}
	for _, r := range results {
		rec.TotalEvents += r.Events
		expShards := 0
		if experiment.ShardAware(r.Spec.ID) {
			expShards = shards
		}
		rec.Experiments = append(rec.Experiments, expRecord{
			ID:           r.Spec.ID,
			Artifact:     r.Spec.Artifact,
			WallMS:       float64(r.Wall.Microseconds()) / 1e3,
			Events:       r.Events,
			Shards:       expShards,
			EventsPerSec: r.EventsPerSec(),
		})
	}
	if suiteWall > 0 {
		rec.EventsPerSec = float64(rec.TotalEvents) / suiteWall.Seconds()
	}
	fmt.Fprintln(os.Stderr, "-- running kernel microbenchmarks")
	for _, kb := range []struct {
		name string
		fn   func(*testing.B)
	}{
		{"EngineStep", benchkit.Step},
		{"EngineScheduleCancel", benchkit.ScheduleCancel},
		{"EngineRand", benchkit.Rand},
	} {
		br := testing.Benchmark(kb.fn)
		seed := seedKernelBaseline[kb.name]
		rec.Kernel = append(rec.Kernel, benchEntry{
			Name:            kb.name,
			NsPerOp:         float64(br.T.Nanoseconds()) / float64(br.N),
			AllocsPerOp:     br.AllocsPerOp(),
			BytesPerOp:      br.AllocedBytesPerOp(),
			SeedNsPerOp:     seed[0],
			SeedAllocsPerOp: int64(seed[1]),
			SeedBytesPerOp:  int64(seed[2]),
		})
	}
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
