// Command benchrunner regenerates the paper's tables and figures from the
// simulated reproduction. Each experiment prints the same rows/series the
// paper reports (see DESIGN.md §3 for the experiment index).
//
// Usage:
//
//	benchrunner -list                 # show available experiments
//	benchrunner -exp fig8b            # run one experiment (quick preset)
//	benchrunner -exp fig10 -paper     # run at the paper's full scale
//	benchrunner -all                  # run every experiment
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"eslurm/internal/experiment"
)

func main() {
	var (
		expID  = flag.String("exp", "", "experiment ID to run (see -list)")
		all    = flag.Bool("all", false, "run every experiment")
		paper  = flag.Bool("paper", false, "use the paper-scale preset (slow: full node counts)")
		list   = flag.Bool("list", false, "list available experiments")
		csvDir = flag.String("csv", "", "also write the Fig. 7/9 time-series CSVs into this directory")
	)
	flag.Parse()

	if *list {
		fmt.Println("available experiments:")
		for _, s := range experiment.Registry() {
			fmt.Printf("  %-10s %s\n", s.ID, s.Artifact)
		}
		return
	}

	params := experiment.QuickParams()
	preset := "quick"
	if *paper {
		params = experiment.PaperParams()
		preset = "paper-scale"
	}

	run := func(s experiment.Spec) {
		start := time.Now()
		fmt.Printf("-- running %s (%s, %s preset)\n", s.ID, s.Artifact, preset)
		for _, tb := range s.Run(params) {
			tb.Fprint(os.Stdout)
		}
		fmt.Printf("-- %s done in %s\n\n", s.ID, time.Since(start).Round(time.Millisecond))
	}

	if *csvDir != "" {
		fmt.Printf("-- writing figure time series to %s\n", *csvDir)
		if err := experiment.WriteFigureSeries(*csvDir, params); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if *expID == "" && !*all {
			return
		}
	}

	switch {
	case *all:
		for _, s := range experiment.Registry() {
			run(s)
		}
	case *expID != "":
		s, ok := experiment.Lookup(*expID)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; try -list\n", *expID)
			os.Exit(1)
		}
		run(s)
	default:
		flag.Usage()
		os.Exit(2)
	}
}
