// Command tracegen generates synthetic workload traces calibrated to the
// paper's production systems and writes them as CSV or JSON for external
// analysis, or prints the trace's headline statistics.
//
// Usage:
//
//	tracegen -system ng-tianhe -jobs 50000 -format csv > trace.csv
//	tracegen -system tianhe-2a -jobs 20000 -stats
package main

import (
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"

	"eslurm/internal/trace"
)

func main() {
	var (
		system = flag.String("system", "tianhe-2a", "trace profile: tianhe-2a or ng-tianhe")
		jobs   = flag.Int("jobs", 10000, "number of jobs to generate")
		days   = flag.Int("days", 0, "trace span in days (0 = profile default)")
		seed   = flag.Int64("seed", 0, "random seed (0 = profile default)")
		format = flag.String("format", "csv", "output format: csv, json or swf (Standard Workload Format)")
		stats  = flag.Bool("stats", false, "print trace statistics instead of the jobs")
		parse  = flag.String("parse", "", "parse an SWF file and print its statistics instead of generating")
	)
	flag.Parse()

	if *parse != "" {
		f, err := os.Open(*parse)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		tr, err := trace.ParseSWF(f, 0)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("parsed %d jobs spanning %s\n", len(tr.Jobs), tr.Duration())
		fmt.Printf("overestimate fraction (P>1): %.3f\n", tr.OverestimateFraction())
		fmt.Printf("24h same-job resubmission:   %.3f\n", tr.ResubmissionProbability24h())
		return
	}

	var cfg trace.GenConfig
	switch *system {
	case "tianhe-2a":
		cfg = trace.Tianhe2AConfig(*jobs)
	case "ng-tianhe":
		cfg = trace.NGTianheConfig(*jobs)
	default:
		fmt.Fprintf(os.Stderr, "unknown system %q\n", *system)
		os.Exit(1)
	}
	if *days > 0 {
		cfg.Days = *days
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}

	tr := trace.Generate(cfg)
	if err := tr.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "generated trace invalid: %v\n", err)
		os.Exit(1)
	}

	if *stats {
		fmt.Printf("system: %s  jobs: %d  span: %s\n", tr.System, len(tr.Jobs), tr.Duration())
		fmt.Printf("overestimate fraction (P>1):        %.3f (paper: 0.80-0.90)\n", tr.OverestimateFraction())
		fmt.Printf("evening fraction of >6h jobs:       %.3f (paper: 0.714)\n", tr.LongJobEveningFraction())
		fmt.Printf("24h same-job resubmission prob.:    %.3f (paper: 0.892)\n", tr.ResubmissionProbability24h())
		return
	}

	switch *format {
	case "swf":
		if err := tr.WriteSWF(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	case "json":
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(tr); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	case "csv":
		w := csv.NewWriter(os.Stdout)
		w.Write([]string{"id", "name", "user", "nodes", "cores",
			"submit_sec", "user_estimate_sec", "runtime_sec"})
		for i := range tr.Jobs {
			j := &tr.Jobs[i]
			w.Write([]string{
				strconv.Itoa(j.ID), j.Name, j.User,
				strconv.Itoa(j.Nodes), strconv.Itoa(j.Cores),
				fmt.Sprintf("%.0f", j.Submit.Seconds()),
				fmt.Sprintf("%.0f", j.UserEstimate.Seconds()),
				fmt.Sprintf("%.0f", j.Runtime.Seconds()),
			})
		}
		w.Flush()
		if err := w.Error(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown format %q\n", *format)
		os.Exit(1)
	}
}
