// Command perfgate is the performance-trajectory CI gate: it compares a
// fresh `benchrunner -json` record against the committed baseline
// (BENCH_<preset>.json) and exits 1 on any regression beyond the noise
// tolerance — a suite-throughput drop, a per-experiment throughput drop,
// a kernel-microbenchmark slowdown, or any new per-op allocation (which
// gets zero tolerance, since allocation counts are machine-independent).
//
// Usage:
//
//	benchrunner -all -jsonout fresh.json
//	perfgate -base BENCH_quick.json -fresh fresh.json
//
// When the two records disagree on num_cpu or platform, timing checks
// are demoted to notes and only allocation counts gate, so a laptop
// refresh can never be judged against a CI-runner baseline.
package main

import (
	"flag"
	"fmt"
	"os"

	"eslurm/internal/perfgate"
)

func main() {
	base := flag.String("base", "BENCH_quick.json", "committed baseline record (benchrunner -json output)")
	fresh := flag.String("fresh", "", "fresh record to judge (required)")
	suiteTol := flag.Float64("suite-tol", perfgate.DefaultSuiteTol, "allowed fractional suite-throughput drop")
	expTol := flag.Float64("exp-tol", perfgate.DefaultExperimentTol, "allowed fractional per-experiment throughput drop")
	microTol := flag.Float64("micro-tol", perfgate.DefaultMicrobenchTol, "allowed fractional kernel-microbenchmark ns/op growth")
	flag.Parse()

	if *fresh == "" {
		fmt.Fprintln(os.Stderr, "perfgate: -fresh is required")
		flag.Usage()
		os.Exit(2)
	}
	baseRec, err := perfgate.Load(*base)
	if err != nil {
		fmt.Fprintln(os.Stderr, "perfgate:", err)
		os.Exit(2)
	}
	freshRec, err := perfgate.Load(*fresh)
	if err != nil {
		fmt.Fprintln(os.Stderr, "perfgate:", err)
		os.Exit(2)
	}

	rep := perfgate.Compare(baseRec, freshRec, perfgate.Tolerance{
		Suite: *suiteTol, Experiment: *expTol, Microbench: *microTol,
	})
	fmt.Print(rep)
	if rep.Regressions() > 0 {
		os.Exit(1)
	}
}
