module eslurm

go 1.22
