// Package eslurm_test benchmarks the operation underlying every table and
// figure of the paper's evaluation, at the paper's node counts where a
// single operation is cheap and at reduced scale for the long-horizon
// drivers. `go test -bench=. -benchmem` regenerates the timing side of the
// reproduction; `go run ./cmd/benchrunner -all` regenerates the tables
// themselves.
package eslurm_test

import (
	"math/rand"
	"testing"
	"time"

	"eslurm/internal/alloc"
	"eslurm/internal/cluster"
	"eslurm/internal/comm"
	"eslurm/internal/controller"
	"eslurm/internal/core"
	"eslurm/internal/estimate"
	"eslurm/internal/experiment"
	"eslurm/internal/fptree"
	"eslurm/internal/predict"
	"eslurm/internal/rm"
	"eslurm/internal/sched"
	"eslurm/internal/simnet"
	"eslurm/internal/topo"
	"eslurm/internal/trace"
)

// --- Fig. 5: trace locality analyses ---------------------------------------

func fig5Trace(b *testing.B) *trace.Trace {
	b.Helper()
	return trace.Generate(trace.Tianhe2AConfig(20000))
}

func BenchmarkFig5a_PCDF(b *testing.B) {
	tr := fig5Trace(b)
	ths := []float64{0.5, 1, 2, 4, 8, 16}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.PCDF(ths)
	}
}

func BenchmarkFig5b_CorrelationVsInterval(b *testing.B) {
	tr := fig5Trace(b)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.CorrelationVsInterval(40, 1000, rng)
	}
}

func BenchmarkFig5c_CorrelationVsIDGap(b *testing.B) {
	tr := fig5Trace(b)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.CorrelationVsIDGap(1400, 100, 1000, rng)
	}
}

// --- Fig. 7a-e: master resource run -----------------------------------------

func BenchmarkFig7_MasterResourceHour(b *testing.B) {
	// One virtual hour of ESlurm managing 1,024 nodes under job flow.
	for i := 0; i < b.N; i++ {
		e := simnet.NewEngine(int64(i))
		c := cluster.New(e, cluster.Config{Computes: 1024, Satellites: 2})
		r := rm.NewESlurm(c)
		r.Start()
		e.RunUntil(time.Hour)
		r.Stop()
	}
}

// --- Fig. 7f: job occupation -------------------------------------------------

func benchOccupation(b *testing.B, mk func(c *cluster.Cluster) rm.RM) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		experiment.OccupationTime(mk, 2048, 2048)
	}
}

func BenchmarkFig7f_Occupation_SGE(b *testing.B) {
	benchOccupation(b, func(c *cluster.Cluster) rm.RM { return rm.NewCentralized(c, rm.SGEProfile()) })
}

func BenchmarkFig7f_Occupation_Slurm(b *testing.B) {
	benchOccupation(b, func(c *cluster.Cluster) rm.RM { return rm.NewCentralized(c, rm.SlurmProfile()) })
}

func BenchmarkFig7f_Occupation_ESlurm(b *testing.B) {
	benchOccupation(b, func(c *cluster.Cluster) rm.RM { return rm.NewESlurm(c) })
}

// --- Fig. 8a: job-loading broadcast, Slurm tree vs ESlurm --------------------

func BenchmarkFig8a_SlurmTreeBroadcast4K(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := simnet.NewEngine(7)
		c := cluster.New(e, cluster.Config{Computes: 4096, Satellites: 1})
		bc := comm.NewBroadcaster(c)
		comm.KTree{Width: 50}.Broadcast(bc, c.Master().ID, c.Computes(), 4096, nil)
		e.Run()
	}
}

func BenchmarkFig8a_ESlurmBroadcast4K(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := simnet.NewEngine(7)
		c := cluster.New(e, cluster.Config{Computes: 4096, Satellites: 3})
		m := core.NewMaster(c, core.DefaultConfig(), nil)
		m.Start()
		e.RunUntil(time.Second)
		m.Broadcast(c.Computes(), 4096, nil)
		e.RunUntil(e.Now() + time.Minute)
		m.Stop()
	}
}

// --- Fig. 8b: structures under 10% failures ----------------------------------

func benchStructure(b *testing.B, s comm.Structure) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		e := simnet.NewEngine(11)
		c := cluster.New(e, cluster.Config{Computes: 2048, Satellites: 1})
		for k := 0; k < 204; k++ {
			c.Fail(c.Computes()[k*10])
		}
		if fp, ok := s.(comm.FPTree); ok {
			fp.Predictor = predict.Oracle{Cluster: c}
			s = fp
		}
		bc := comm.NewBroadcaster(c)
		s.Broadcast(bc, c.Satellites()[0], c.Computes(), 4096, nil)
		e.Run()
	}
}

func BenchmarkFig8b_Ring(b *testing.B)      { benchStructure(b, comm.Ring{}) }
func BenchmarkFig8b_Star(b *testing.B)      { benchStructure(b, comm.Star{}) }
func BenchmarkFig8b_SharedMem(b *testing.B) { benchStructure(b, comm.SharedMem{}) }
func BenchmarkFig8b_KTree(b *testing.B)     { benchStructure(b, comm.KTree{}) }
func BenchmarkFig8b_FPTree(b *testing.B)    { benchStructure(b, comm.FPTree{}) }

// --- §VII-A placement: FP-Tree construction path ------------------------------

func BenchmarkPlacement_FPTreeConstruction4K(b *testing.B) {
	list := make([]cluster.NodeID, 4096)
	for i := range list {
		list[i] = cluster.NodeID(i + 3)
	}
	pred := func(id cluster.NodeID) bool { return id%50 == 0 } // ~2% regime
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		re := fptree.Rearrange(list, pred, fptree.DefaultWidth)
		fptree.Build(re, fptree.DefaultWidth)
	}
}

// --- Fig. 9 / Table V: full-scale heartbeat sweep ------------------------------

func benchHeartbeatSweep(b *testing.B, nodes, satellites int) {
	b.Helper()
	e := simnet.NewEngine(5)
	c := cluster.New(e, cluster.Config{Computes: nodes, Satellites: satellites})
	m := core.NewMaster(c, core.DefaultConfig(), nil)
	m.Start()
	e.RunUntil(time.Second)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Broadcast(c.Computes(), 256, nil)
		e.RunUntil(e.Now() + time.Minute)
	}
	b.StopTimer()
	m.Stop()
}

func BenchmarkFig9_Heartbeat16K_2Sats(b *testing.B) { benchHeartbeatSweep(b, 16384, 2) }

func BenchmarkTable5_Heartbeat20K_20Sats(b *testing.B) { benchHeartbeatSweep(b, 20480, 20) }

// --- Fig. 11a: satellite-count sensitivity -------------------------------------

func BenchmarkFig11a_Heartbeat20K_50Sats(b *testing.B) { benchHeartbeatSweep(b, 20480, 50) }

// --- Fig. 10: scheduling replay -------------------------------------------------

func BenchmarkFig10_BackfillReplay(b *testing.B) {
	cfg := trace.Tianhe2AConfig(3000)
	cfg.MaxNodes = 1024
	jobs := trace.Generate(cfg).Jobs
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sched.Run(jobs, sched.Config{Nodes: 1024, Policy: sched.Backfill, KillAtLimit: true})
	}
}

func BenchmarkFig10_BackfillWithEstimator(b *testing.B) {
	cfg := trace.Tianhe2AConfig(3000)
	cfg.MaxNodes = 1024
	jobs := trace.Generate(cfg).Jobs
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sched.Run(jobs, sched.Config{
			Nodes: 1024, Policy: sched.Backfill, KillAtLimit: true,
			Predictor: sched.FrameworkWalltimes{F: estimate.NewFramework(estimate.FrameworkConfig{})},
		})
	}
}

// --- Table VIII / Fig. 11b: estimation framework --------------------------------

func BenchmarkTable8_FrameworkReplay(b *testing.B) {
	jobs := trace.Generate(trace.NGTianheConfig(1500)).Jobs
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		estimate.Evaluate(estimate.NewFramework(estimate.FrameworkConfig{Alpha: 1.05}), jobs)
	}
}

func BenchmarkFig11b_PREPReplay(b *testing.B) {
	jobs := trace.Generate(trace.NGTianheConfig(5000)).Jobs
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		estimate.Evaluate(estimate.NewPREP(), jobs)
	}
}

func BenchmarkFig11b_FrameworkPredict(b *testing.B) {
	// Steady-state single-job prediction latency (the real-time module's
	// event-handling cost).
	jobs := trace.Generate(trace.NGTianheConfig(3000)).Jobs
	f := estimate.NewFramework(estimate.FrameworkConfig{})
	for i := range jobs[:2000] {
		f.Predict(&jobs[i])
		f.Complete(&jobs[i])
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Predict(&jobs[2000+i%900])
	}
}

// --- additional structures and subsystems -----------------------------------

func BenchmarkComm_GatherTree2K(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := simnet.NewEngine(9)
		c := cluster.New(e, cluster.Config{Computes: 2048, Satellites: 1})
		bc := comm.NewBroadcaster(c)
		comm.GatherTree{}.Broadcast(bc, c.Satellites()[0], c.Computes(), 2048, nil)
		e.Run()
	}
}

func BenchmarkComm_Binomial2K(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := simnet.NewEngine(9)
		c := cluster.New(e, cluster.Config{Computes: 2048, Satellites: 1})
		bc := comm.NewBroadcaster(c)
		comm.Binomial{}.Broadcast(bc, c.Satellites()[0], c.Computes(), 2048, nil)
		e.Run()
	}
}

func BenchmarkController_FullStackHour(b *testing.B) {
	// One virtual hour of the assembled daemon under job flow: the
	// end-to-end cost a deployment pays.
	for i := 0; i < b.N; i++ {
		e := simnet.NewEngine(int64(i))
		c := cluster.New(e, cluster.Config{Computes: 512, Satellites: 2})
		m := core.NewMaster(c, core.DefaultConfig(), nil)
		a := alloc.NewTopoAware(c.Computes(), topo.Default())
		ctl, err := controller.New(c, m, a, controller.Config{KillAtLimit: true})
		if err != nil {
			b.Fatal(err)
		}
		ctl.Start()
		rng := e.Rand("bench/jobs")
		for k := 0; k < 60; k++ {
			k := k
			e.Schedule(time.Duration(k)*time.Minute+time.Second, func() {
				ctl.Submit(controller.JobSpec{
					Name: "bench", User: "u", Nodes: 1 + rng.Intn(64),
					UserEstimate: 30 * time.Minute, Runtime: 10 * time.Minute,
				})
			})
		}
		e.RunUntil(2 * time.Hour)
		ctl.Stop()
	}
}
