package estimate

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"eslurm/internal/trace"
)

func TestEAEq4(t *testing.T) {
	cases := []struct {
		pred, actual time.Duration
		want         float64
	}{
		{time.Hour, time.Hour, 1.0},
		{30 * time.Minute, time.Hour, 0.5}, // underestimate: t_p/t_r
		{2 * time.Hour, time.Hour, 0.5},    // overestimate: t_r/t_p
		{0, time.Hour, 0},
		{time.Hour, 0, 0},
	}
	for i, c := range cases {
		if got := EA(c.pred, c.actual); got != c.want {
			t.Errorf("case %d: EA = %v, want %v", i, got, c.want)
		}
	}
}

func TestEABounds(t *testing.T) {
	for _, p := range []time.Duration{time.Second, time.Minute, time.Hour, 100 * time.Hour} {
		for _, a := range []time.Duration{time.Second, time.Minute, time.Hour} {
			ea := EA(p, a)
			if ea <= 0 || ea > 1 {
				t.Fatalf("EA(%v,%v) = %v out of (0,1]", p, a, ea)
			}
		}
	}
}

func TestFeaturesShape(t *testing.T) {
	j := &trace.Job{Name: "cfd-v0", User: "user001", Nodes: 64, Cores: 1536,
		Submit: 20 * time.Hour, Runtime: time.Hour, UserEstimate: 2 * time.Hour}
	f := Features(j)
	if len(f) != NumFeatures {
		t.Fatalf("features = %d, want %d", len(f), NumFeatures)
	}
	if f[FeatNodes] != 6 { // log2(64)
		t.Errorf("log2 nodes = %v", f[FeatNodes])
	}
	if f[FeatHour] != 20 {
		t.Errorf("hour = %v", f[FeatHour])
	}
	// Hash dims are signed bits.
	for i := 0; i < nameDims+userDims; i++ {
		if f[i] != 1 && f[i] != -1 {
			t.Fatalf("hash dim %d = %v, want ±1", i, f[i])
		}
	}
	// Same name embeds identically; different users (almost surely) differ
	// somewhere in the user block.
	j2 := *j
	j2.User = "other"
	f2 := Features(&j2)
	for i := 0; i < nameDims; i++ {
		if f2[i] != f[i] {
			t.Fatal("same name, different embedding")
		}
	}
	same := true
	for i := nameDims; i < nameDims+userDims; i++ {
		if f2[i] != f[i] {
			same = false
		}
	}
	if same {
		t.Error("different users collided across all user dims (improbable)")
	}
}

func TestLogSecondsRoundTrip(t *testing.T) {
	for _, d := range []time.Duration{time.Second, time.Minute, 3 * time.Hour, 40 * time.Hour} {
		got := fromLogSeconds(logSeconds(d))
		ratio := float64(got) / float64(d)
		if ratio < 0.999 || ratio > 1.001 {
			t.Errorf("round trip %v -> %v", d, got)
		}
	}
	// Clamps: tiny and absurd values stay sane.
	if fromLogSeconds(-10) < time.Second {
		t.Error("low clamp failed")
	}
	if fromLogSeconds(100) > 40*24*time.Hour {
		t.Error("high clamp failed")
	}
}

func TestUserEstimator(t *testing.T) {
	var u User
	j := &trace.Job{UserEstimate: 2 * time.Hour}
	got, ok := u.Estimate(j)
	if !ok || got != 2*time.Hour {
		t.Error("user estimator must echo the request")
	}
}

func TestLast2(t *testing.T) {
	l := NewLast2()
	j := &trace.Job{User: "a"}
	if _, ok := l.Estimate(j); ok {
		t.Error("cold Last-2 must decline")
	}
	l.Observe(trace.Job{User: "a", Runtime: time.Hour})
	if _, ok := l.Estimate(j); ok {
		t.Error("Last-2 with one sample must decline")
	}
	l.Observe(trace.Job{User: "a", Runtime: 3 * time.Hour})
	got, ok := l.Estimate(j)
	if !ok || got != 2*time.Hour {
		t.Errorf("Last-2 = %v, want 2h", got)
	}
	// Sliding: a third observation evicts the first.
	l.Observe(trace.Job{User: "a", Runtime: 5 * time.Hour})
	got, _ = l.Estimate(j)
	if got != 4*time.Hour {
		t.Errorf("Last-2 after slide = %v, want 4h", got)
	}
	// Different user is independent.
	if _, ok := l.Estimate(&trace.Job{User: "b"}); ok {
		t.Error("Last-2 leaked across users")
	}
}

func TestPREPPerPath(t *testing.T) {
	p := NewPREP()
	if _, ok := p.Estimate(&trace.Job{Name: "x"}); ok {
		t.Error("cold PREP must decline")
	}
	for i := 0; i < 5; i++ {
		p.Observe(trace.Job{Name: "x", Runtime: time.Hour})
	}
	got, ok := p.Estimate(&trace.Job{Name: "x"})
	if !ok {
		t.Fatal("PREP has data but declined")
	}
	ratio := float64(got) / float64(time.Hour)
	if ratio < 0.95 || ratio > 1.05 {
		t.Errorf("PREP = %v, want ~1h", got)
	}
	if _, ok := p.Estimate(&trace.Job{Name: "y"}); ok {
		t.Error("PREP leaked across paths")
	}
}

func TestPREPRingEviction(t *testing.T) {
	p := NewPREP()
	for i := 0; i < prepWindow; i++ {
		p.Observe(trace.Job{Name: "x", Runtime: time.Minute})
	}
	for i := 0; i < prepWindow; i++ {
		p.Observe(trace.Job{Name: "x", Runtime: time.Hour})
	}
	got, _ := p.Estimate(&trace.Job{Name: "x"})
	ratio := float64(got) / float64(time.Hour)
	if ratio < 0.9 || ratio > 1.1 {
		t.Errorf("PREP after eviction = %v, want ~1h", got)
	}
}

func replayTrace(n int) []trace.Job {
	return trace.Generate(trace.NGTianheConfig(n)).Jobs
}

func TestFrameworkLifecycle(t *testing.T) {
	jobs := replayTrace(3000)
	f := NewFramework(FrameworkConfig{})
	// Cold: no prediction.
	if _, ok := f.Estimate(&jobs[0]); ok {
		t.Error("cold framework must decline")
	}
	res := Evaluate(f, jobs)
	if f.Generations < 2 {
		t.Errorf("model generations = %d, want >= 2 over the trace span", f.Generations)
	}
	// The AEA gate withholds low-confidence clusters, so coverage sits
	// well below 1 but the covered predictions are accurate.
	if res.Coverage < 0.2 {
		t.Errorf("coverage = %v", res.Coverage)
	}
	if res.AEA < 0.70 {
		t.Errorf("framework AEA = %.3f, want >= 0.70", res.AEA)
	}
}

func TestFrameworkSlackReducesUnderestimation(t *testing.T) {
	jobs := replayTrace(2500)
	noSlack := Evaluate(NewFramework(FrameworkConfig{Alpha: 1.0}), jobs)
	slack := Evaluate(NewFramework(FrameworkConfig{Alpha: 1.10}), jobs)
	if slack.UnderestimateRate >= noSlack.UnderestimateRate {
		t.Errorf("slack did not reduce UR: %.3f vs %.3f",
			slack.UnderestimateRate, noSlack.UnderestimateRate)
	}
}

func TestFrameworkGateUsesUserEstimateWhenAEALow(t *testing.T) {
	jobs := replayTrace(2000)
	f := NewFramework(FrameworkConfig{AEAGate: 1.01}) // gate can never pass (AEA <= 1)
	for i := range jobs[:1500] {
		f.Predict(&jobs[i])
		f.Complete(&jobs[i])
	}
	j := jobs[1600]
	p := f.Predict(&j)
	if p.UsedModel || p.Used != j.UserEstimate {
		t.Error("with an unpassable gate the user estimate must win")
	}
	// No user estimate: model is adopted regardless of the gate.
	j2 := jobs[1601]
	j2.UserEstimate = 0
	p2 := f.Predict(&j2)
	if !p2.UsedModel || p2.Used != p2.Model {
		t.Error("without a user estimate the model must be adopted")
	}
}

func TestFrameworkRefreshCadence(t *testing.T) {
	jobs := replayTrace(4000)
	f := NewFramework(FrameworkConfig{RefreshEvery: 10 * time.Hour})
	Evaluate(f, jobs)
	// 30 days / 10 h ≈ up to 72 refresh opportunities; expect at least a
	// handful and no runaway regeneration per job.
	if f.Generations < 3 || f.Generations > 100 {
		t.Errorf("generations = %d", f.Generations)
	}
}

func TestFrameworkBeatsUserAndSimpleBaselines(t *testing.T) {
	// The Fig. 11b headline: ESlurm ~84% AEA, ~10% UR; SVM/RF/Last-2 below
	// 70% AEA with UR above 25%; user estimates least accurate.
	jobs := replayTrace(6000)
	framework := Evaluate(NewFramework(FrameworkConfig{}), jobs)
	user := Evaluate(User{}, jobs)
	last2 := Evaluate(NewLast2(), jobs)

	if framework.AEA <= user.AEA {
		t.Errorf("framework AEA %.3f <= user %.3f", framework.AEA, user.AEA)
	}
	if framework.AEA <= last2.AEA {
		t.Errorf("framework AEA %.3f <= Last-2 %.3f", framework.AEA, last2.AEA)
	}
	if framework.AEA < 0.75 {
		t.Errorf("framework AEA = %.3f, want >= 0.75 (paper: 0.84)", framework.AEA)
	}
	if framework.UnderestimateRate > 0.40 {
		t.Errorf("framework UR = %.3f, want low", framework.UnderestimateRate)
	}
	if framework.UnderestimateRate >= last2.UnderestimateRate {
		t.Errorf("framework UR %.3f not below Last-2 UR %.3f",
			framework.UnderestimateRate, last2.UnderestimateRate)
	}
}

func TestEvaluateEmptyTrace(t *testing.T) {
	res := Evaluate(User{}, nil)
	if res.Jobs != 0 || res.AEA != 0 {
		t.Error("empty evaluation must be zero")
	}
}

func TestAllBaselinesRunCleanly(t *testing.T) {
	jobs := replayTrace(1500)
	ests := []Estimator{
		User{}, NewLast2(), NewSVM(), NewRandomForest(1),
		NewIRPA(2), NewTRIP(), NewPREP(), NewFramework(FrameworkConfig{}),
	}
	for _, e := range ests {
		res := Evaluate(e, jobs)
		if res.Coverage > 0 && (res.AEA <= 0 || res.AEA > 1) {
			t.Errorf("%s: AEA = %v out of range", e.Name(), res.AEA)
		}
		if res.UnderestimateRate < 0 || res.UnderestimateRate > 1 {
			t.Errorf("%s: UR = %v", e.Name(), res.UnderestimateRate)
		}
	}
}

func TestFrameworkAutoTune(t *testing.T) {
	jobs := replayTrace(2000)
	f := NewFramework(FrameworkConfig{AutoTune: true, RefreshEvery: 24 * time.Hour})
	res := Evaluate(f, jobs)
	if f.Generations == 0 {
		t.Fatal("auto-tuned framework never trained")
	}
	if res.Coverage > 0 && res.AEA < 0.6 {
		t.Errorf("auto-tuned AEA = %.3f, suspiciously low", res.AEA)
	}
}

func TestClusterStatsObservability(t *testing.T) {
	jobs := replayTrace(2000)
	f := NewFramework(FrameworkConfig{})
	if f.ClusterStats() != nil {
		t.Error("stats before first generation must be nil")
	}
	Evaluate(f, jobs)
	stats := f.ClusterStats()
	if len(stats) == 0 {
		t.Fatal("no cluster stats after training")
	}
	trusted, total := 0, 0
	for _, s := range stats {
		if s.AEA < 0 || s.AEA > 1 {
			t.Fatalf("cluster %d AEA = %v", s.Cluster, s.AEA)
		}
		if s.Trusted {
			trusted++
		}
		total += s.TrainSize
	}
	if trusted == 0 {
		t.Error("no trusted clusters at all")
	}
	if total == 0 {
		t.Error("train sizes all zero")
	}
}

func TestSaveLoadState(t *testing.T) {
	jobs := replayTrace(1500)
	f := NewFramework(FrameworkConfig{})
	Evaluate(f, jobs[:1000])
	if f.Generations == 0 {
		t.Fatal("no model to persist behind")
	}

	var buf bytes.Buffer
	if err := f.SaveState(&buf); err != nil {
		t.Fatal(err)
	}

	// A fresh framework restored from the snapshot predicts immediately —
	// no cold start after the restart.
	g := NewFramework(FrameworkConfig{})
	if err := g.LoadState(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if g.HistoryLen() != f.HistoryLen() {
		t.Fatalf("history %d vs %d", g.HistoryLen(), f.HistoryLen())
	}
	if g.Generations != 1 {
		t.Fatalf("restored framework generations = %d, want immediate regeneration", g.Generations)
	}
	covered := 0
	for i := 1000; i < 1100; i++ {
		if _, ok := g.Estimate(&jobs[i]); ok {
			covered++
		}
	}
	if covered == 0 {
		t.Error("restored framework declined everything")
	}
}

func TestLoadStateRejectsGarbage(t *testing.T) {
	f := NewFramework(FrameworkConfig{})
	if err := f.LoadState(strings.NewReader("not json")); err == nil {
		t.Error("garbage accepted")
	}
	if err := f.LoadState(strings.NewReader(`{"version":99,"history":[]}`)); err == nil {
		t.Error("future version accepted")
	}
}
