package estimate

import (
	"encoding/json"
	"fmt"
	"io"

	"eslurm/internal/trace"
)

// State persistence: the framework's durable state is its historical job
// queue (the models are cheap to regenerate from it). A master daemon
// snapshots on shutdown and restores on boot, so a restart — the paper's
// production Slurm needed 90+ minutes to reboot — does not reset the
// estimator to cold start.

// stateFile is the serialized form. Versioned so future fields can be
// added compatibly.
type stateFile struct {
	Version int         `json:"version"`
	History []trace.Job `json:"history"`
}

const stateVersion = 1

// SaveState writes the framework's historical job queue.
func (f *Framework) SaveState(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(stateFile{Version: stateVersion, History: f.history})
}

// LoadState replaces the framework's history from a snapshot and
// immediately regenerates the model when enough jobs are present, so the
// first post-restart prediction is already informed.
func (f *Framework) LoadState(r io.Reader) error {
	var sf stateFile
	dec := json.NewDecoder(r)
	if err := dec.Decode(&sf); err != nil {
		return fmt.Errorf("estimate: corrupt state: %w", err)
	}
	if sf.Version != stateVersion {
		return fmt.Errorf("estimate: state version %d, want %d", sf.Version, stateVersion)
	}
	f.history = sf.History
	if len(f.history) >= f.cfg.MinTrain {
		f.generate()
		f.started = true
		if len(f.history) > 0 {
			f.lastGen = f.history[len(f.history)-1].Submit
		}
	}
	return nil
}

// HistoryLen returns the number of completed jobs retained.
func (f *Framework) HistoryLen() int { return len(f.history) }
