package estimate

import (
	"math/rand"
	"time"

	"eslurm/internal/mlkit"
	"eslurm/internal/obs"
	"eslurm/internal/trace"
)

// FrameworkConfig parameterizes the ESlurm estimation framework. Zero
// values take the paper's defaults.
type FrameworkConfig struct {
	// InterestWindow is the number of most recent completed jobs the model
	// generator trains on (paper default: 700, from the Fig. 5c ID-gap
	// analysis).
	InterestWindow int
	// RefreshEvery is the model regeneration period in trace time (paper
	// default: 15 h, from the Fig. 5b interval analysis; must not exceed
	// 30 h).
	RefreshEvery time.Duration
	// K is the number of job clusters (paper default: 15, via the elbow
	// method). Set KAuto to re-derive it per refresh instead.
	K int
	// KAuto enables elbow-method selection of K on every refresh.
	KAuto bool
	// AutoTune grid-searches the per-cluster SVR hyperparameters (C,
	// gamma) by cross-validation on each refresh, instead of the fixed
	// production defaults — the "more advanced techniques" extension
	// point, analogous to the predictor plugin.
	AutoTune bool
	// Alpha is the slack variable of Eq. 3 penalizing underestimation
	// (paper default: 1.05, Table VIII).
	Alpha float64
	// AEAGate: the model's estimate replaces a user-supplied one only when
	// the job's cluster has average estimation accuracy above this (paper:
	// 90%).
	AEAGate float64
	// MinTrain is the minimum completed-job count before the first model
	// is built.
	MinTrain int
	// Seed drives clustering initialization.
	Seed int64
}

func (c FrameworkConfig) withDefaults() FrameworkConfig {
	if c.InterestWindow == 0 {
		c.InterestWindow = 700
	}
	if c.RefreshEvery == 0 {
		c.RefreshEvery = 15 * time.Hour
	}
	if c.K == 0 {
		c.K = 15
	}
	if c.Alpha == 0 {
		c.Alpha = 1.05
	}
	if c.AEAGate == 0 {
		c.AEAGate = 0.90
	}
	if c.MinTrain == 0 {
		c.MinTrain = 60
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// clusterWeights emphasize the categorical features when measuring job
// similarity: two jobs are "similar" first by application, then by user,
// then by scale and time of day. Applied after standardization. Rebuilt
// per weightFeatures call (a stack array of 15 constants) rather than
// cached in a package-level var, which would be mutable shared state.
func clusterWeights() [NumFeatures]float64 {
	var w [NumFeatures]float64
	for i := 0; i < nameDims; i++ {
		w[i] = 2.0
	}
	for i := nameDims; i < nameDims+userDims; i++ {
		w[i] = 0.5
	}
	w[FeatNodes] = 2
	w[FeatCores] = 2
	w[FeatHour] = 0.5
	return w
}

func weightFeatures(x []float64) []float64 {
	w := clusterWeights()
	for i := range x {
		x[i] *= w[i]
	}
	return x
}

// model is one generation of the estimation model: a clustering of the
// interest window plus one SVR per cluster, with the record module's
// per-cluster accuracy state.
type model struct {
	scaler *mlkit.StandardScaler
	km     *mlkit.KMeans
	svrCfg mlkit.SVRConfig
	svrs   []*mlkit.SVR
	// base is the cluster-mean log-runtime; each SVR regresses the
	// residual from it, so queries with no close neighbours in the
	// training window fall back to the cluster mean instead of an
	// arbitrary far-field value.
	base []float64
	// Record-module state (Eq. 5): running AEA per cluster.
	aeaSum   []float64
	aeaCount []int
}

// predictLog returns the model's log-runtime estimate for a weighted,
// scaled feature vector in the given cluster.
func (m *model) predictLog(c int, x []float64) float64 {
	return m.base[c] + m.svrs[c].Predict(x)
}

func (m *model) aea(cluster int) float64 {
	if m.aeaCount[cluster] == 0 {
		return 0
	}
	return m.aeaSum[cluster] / float64(m.aeaCount[cluster])
}

// Prediction is the real-time estimation module's output for one job.
type Prediction struct {
	// Model is the slack-adjusted model estimate (Eq. 3); zero when no
	// model is available yet.
	Model time.Duration
	// Used is the walltime the scheduler should use: the model estimate
	// when the user gave none or the cluster's AEA passes the gate,
	// otherwise the user estimate.
	Used time.Duration
	// UsedModel reports which side Used came from.
	UsedModel bool
	// Cluster is the matched cluster index (-1 when no model).
	Cluster int
}

// Framework is the ESlurm job-runtime-estimation framework (Fig. 6).
type Framework struct {
	cfg FrameworkConfig
	rng *rand.Rand

	// historical job queue (completed jobs, submission order).
	history []trace.Job
	m       *model
	lastGen time.Duration
	started bool

	// Generations counts model rebuilds (for tests/reports).
	Generations int

	// Registry instruments; nil until SetObs is called. obs instruments
	// no-op on nil receivers, so unbound frameworks pay nothing.
	cPredictions, cModelUsed, cGenerations *obs.Counter
}

// NewFramework returns an empty framework; models appear as jobs complete.
func NewFramework(cfg FrameworkConfig) *Framework {
	cfg = cfg.withDefaults()
	return &Framework{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Config returns the effective configuration.
func (f *Framework) Config() FrameworkConfig { return f.cfg }

// SetObs binds the framework to a metrics registry (typically the driving
// engine's — the framework itself is engine-free). It registers counters
// estimate.predictions, estimate.model_used, and estimate.generations.
func (f *Framework) SetObs(m *obs.Registry) {
	f.cPredictions = m.Counter("estimate.predictions")
	f.cModelUsed = m.Counter("estimate.model_used")
	f.cGenerations = m.Counter("estimate.generations")
}

// Name implements Estimator.
func (f *Framework) Name() string { return "ESlurm" }

// Predict runs the real-time estimation module for a newly submitted job.
func (f *Framework) Predict(j *trace.Job) Prediction {
	f.cPredictions.Inc()
	f.maybeRefresh(j.Submit)
	p := Prediction{Cluster: -1, Used: j.UserEstimate}
	if f.m == nil {
		return p
	}
	x := weightFeatures(f.m.scaler.Transform(Features(j)))
	p.Cluster = f.m.km.Nearest(x)
	raw := fromLogSeconds(f.m.predictLog(p.Cluster, x))
	// Eq. 3: multiply by the slack variable to penalize underestimation.
	p.Model = time.Duration(float64(raw) * f.cfg.Alpha)
	if j.UserEstimate <= 0 {
		// "When the user does not submit a runtime estimate, we directly
		// adopt the runtime estimation given by the estimation model."
		p.Used = p.Model
		p.UsedModel = true
		f.cModelUsed.Inc()
		return p
	}
	if f.m.aea(p.Cluster) > f.cfg.AEAGate {
		p.Used = p.Model
		p.UsedModel = true
		f.cModelUsed.Inc()
	}
	return p
}

// Estimate implements Estimator for the Fig. 11b comparison: the model's
// slack-adjusted estimate, available once the first model is built and
// only for jobs whose cluster passes the AEA gate — exactly the estimates
// the deployed framework would actually substitute for a user request
// (Section V-B). Low-confidence clusters decline, the way other
// estimators decline during cold start.
func (f *Framework) Estimate(j *trace.Job) (time.Duration, bool) {
	p := f.Predict(j)
	if p.Model == 0 || !p.UsedModel {
		return 0, false
	}
	return p.Model, true
}

// Complete feeds the record module: append to the historical queue, and
// update the job's cluster AEA with the accuracy of the model's estimate
// (Eqs. 4–5).
func (f *Framework) Complete(j *trace.Job) {
	if f.m != nil {
		x := weightFeatures(f.m.scaler.Transform(Features(j)))
		c := f.m.km.Nearest(x)
		pred := time.Duration(float64(fromLogSeconds(f.m.predictLog(c, x))) * f.cfg.Alpha)
		f.m.aeaSum[c] += EA(pred, j.Runtime)
		f.m.aeaCount[c]++
	}
	f.history = append(f.history, *j)
	// Bound memory: keep a few windows of history.
	if len(f.history) > 4*f.cfg.InterestWindow {
		f.history = append([]trace.Job(nil), f.history[len(f.history)-2*f.cfg.InterestWindow:]...)
	}
}

// Observe implements Estimator.
func (f *Framework) Observe(j trace.Job) { f.Complete(&j) }

// ClusterStat is one cluster's record-module view (for operator
// observability: which job families the model trusts).
type ClusterStat struct {
	Cluster int
	// AEA is the running average estimation accuracy (Eq. 5).
	AEA float64
	// Samples is the number of completions scored.
	Samples int
	// Trusted reports whether the AEA gate currently passes.
	Trusted bool
	// TrainSize is the cluster's share of the interest window.
	TrainSize int
}

// ClusterStats returns the record module's per-cluster state for the
// current model generation (nil before the first generation).
func (f *Framework) ClusterStats() []ClusterStat {
	if f.m == nil {
		return nil
	}
	out := make([]ClusterStat, f.m.km.K())
	for c := range out {
		out[c] = ClusterStat{
			Cluster:   c,
			AEA:       f.m.aea(c),
			Samples:   f.m.aeaCount[c],
			Trusted:   f.m.aea(c) > f.cfg.AEAGate,
			TrainSize: f.m.km.Sizes[c],
		}
	}
	return out
}

// maybeRefresh regenerates the model when the refresh period elapsed (in
// trace time) and enough history exists.
func (f *Framework) maybeRefresh(now time.Duration) {
	if len(f.history) < f.cfg.MinTrain {
		return
	}
	if f.started && now-f.lastGen < f.cfg.RefreshEvery {
		return
	}
	f.generate()
	f.lastGen = now
	f.started = true
}

// generate is the estimation model generator: select the interest window,
// cluster it, and fit one SVR per cluster.
func (f *Framework) generate() {
	window := f.history
	if len(window) > f.cfg.InterestWindow {
		window = window[len(window)-f.cfg.InterestWindow:]
	}
	raw := make([][]float64, len(window))
	ys := make([]float64, len(window))
	for i := range window {
		raw[i] = Features(&window[i])
		ys[i] = logSeconds(window[i].Runtime)
	}
	scaler := mlkit.FitScaler(raw)
	xs := scaler.TransformAll(raw)
	for i := range xs {
		weightFeatures(xs[i])
	}

	k := f.cfg.K
	if f.cfg.KAuto {
		k = mlkit.ChooseKElbow(xs, 2, 40, 30, f.rng)
	}
	km := mlkit.KMeansFit(xs, k, 50, f.rng)

	svrCfg := mlkit.SVRConfig{C: 10, Epsilon: 0.01, MaxIter: 1500, Kernel: mlkit.RBFKernel{Gamma: 0.25}}
	if f.cfg.AutoTune {
		// Tune on a bounded subsample: residual structure is shared across
		// clusters, so one search per generation suffices.
		tx, ty := xs, ys
		if len(tx) > 200 {
			tx, ty = tx[len(tx)-200:], ty[len(ty)-200:]
		}
		res := make([]float64, len(ty))
		mean := mlkit.Mean(ty)
		for i, v := range ty {
			res[i] = v - mean
		}
		tuned, _ := mlkit.GridSearchSVR(tx, res, mlkit.SVRGrid{
			Cs:      []float64{5, 10, 50},
			Gammas:  []float64{0.1, 0.25, 0.5},
			Epsilon: 0.01,
		}, f.rng)
		tuned.MaxIter = 1500
		svrCfg = tuned
	}

	m := &model{
		scaler:   scaler,
		km:       km,
		svrCfg:   svrCfg,
		svrs:     make([]*mlkit.SVR, km.K()),
		base:     make([]float64, km.K()),
		aeaSum:   make([]float64, km.K()),
		aeaCount: make([]int, km.K()),
	}
	assign := km.Assign(xs)
	for c := 0; c < km.K(); c++ {
		var cx [][]float64
		var cy []float64
		for i, a := range assign {
			if a == c {
				cx = append(cx, xs[i])
				cy = append(cy, ys[i])
			}
		}
		m.base[c] = mlkit.Mean(cy)
		res := make([]float64, len(cy))
		for i, v := range cy {
			res[i] = v - m.base[c]
		}
		m.svrs[c] = mlkit.SVRFit(cx, res, m.svrCfg)
	}
	// Seed the record module by scoring the training window itself, so the
	// AEA gate has data before the first completions arrive.
	for i := range window {
		c := assign[i]
		pred := time.Duration(float64(fromLogSeconds(m.predictLog(c, xs[i]))) * f.cfg.Alpha)
		m.aeaSum[c] += EA(pred, window[i].Runtime)
		m.aeaCount[c]++
	}
	f.m = m
	f.Generations++
	f.cGenerations.Inc()
}
