package estimate

import (
	"math"
	"math/rand"
	"time"

	"eslurm/internal/mlkit"
	"eslurm/internal/trace"
)

// Estimator is the common interface of all runtime predictors compared in
// Fig. 11b. Estimate is called at submission; Observe at completion. The
// two calls arrive in trace order.
type Estimator interface {
	Name() string
	// Estimate predicts the job's runtime. ok is false when the estimator
	// has no prediction for this job yet (cold start).
	Estimate(j *trace.Job) (pred time.Duration, ok bool)
	// Observe records a completed job.
	Observe(j trace.Job)
}

// ---------------------------------------------------------------------------

// User replays the user-supplied walltime request — the baseline every RM
// scheduler uses today.
type User struct{}

// Name implements Estimator.
func (User) Name() string { return "User" }

// Estimate returns the user's own walltime request.
func (User) Estimate(j *trace.Job) (time.Duration, bool) { return j.UserEstimate, true }

// Observe is a no-op.
func (User) Observe(trace.Job) {}

// ---------------------------------------------------------------------------

// Last2 predicts the average of the same user's last two actual runtimes
// (Tsafrir et al., the system-generated prediction classically used for
// backfilling).
type Last2 struct {
	hist map[string][]time.Duration
}

// NewLast2 returns an empty Last-2 estimator.
func NewLast2() *Last2 { return &Last2{hist: make(map[string][]time.Duration)} }

// Name implements Estimator.
func (*Last2) Name() string { return "Last-2" }

// Estimate implements Estimator.
func (l *Last2) Estimate(j *trace.Job) (time.Duration, bool) {
	h := l.hist[j.User]
	if len(h) < 2 {
		return 0, false
	}
	return (h[0] + h[1]) / 2, true
}

// Observe implements Estimator.
func (l *Last2) Observe(j trace.Job) {
	h := l.hist[j.User]
	if len(h) < 2 {
		h = append(h, 0)
	}
	copy(h[1:], h[:len(h)-1])
	h[0] = j.Runtime
	l.hist[j.User] = h
}

// ---------------------------------------------------------------------------

// windowed is shared machinery for batch learners: keep a sliding window
// of completed jobs and retrain every RetrainEvery observations.
type windowed struct {
	window  int
	every   int
	pending int
	history []trace.Job
	scaler  *mlkit.StandardScaler
	ready   bool
}

func newWindowed(window, every int) windowed {
	if window == 0 {
		window = 700
	}
	if every == 0 {
		every = 300
	}
	return windowed{window: window, every: every}
}

// observe appends and reports whether a retrain is due.
func (w *windowed) observe(j trace.Job) bool {
	w.history = append(w.history, j)
	if len(w.history) > 2*w.window {
		w.history = append([]trace.Job(nil), w.history[len(w.history)-w.window:]...)
	}
	w.pending++
	if w.pending >= w.every && len(w.history) >= w.every {
		w.pending = 0
		return true
	}
	return false
}

// trainSet returns scaled features and log-runtime targets for the current
// window, fitting a fresh scaler.
func (w *windowed) trainSet() (xs [][]float64, ys []float64, jobs []trace.Job) {
	jobs = w.history
	if len(jobs) > w.window {
		jobs = jobs[len(jobs)-w.window:]
	}
	raw := make([][]float64, len(jobs))
	ys = make([]float64, len(jobs))
	for i := range jobs {
		raw[i] = Features(&jobs[i])
		ys[i] = logSeconds(jobs[i].Runtime)
	}
	w.scaler = mlkit.FitScaler(raw)
	return w.scaler.TransformAll(raw), ys, jobs
}

// ---------------------------------------------------------------------------

// SVM is a single global support-vector regressor over the window — the
// unclustered ablation of the ESlurm framework.
type SVM struct {
	windowed
	m *mlkit.SVR
}

// NewSVM returns an empty global-SVR estimator.
func NewSVM() *SVM { return &SVM{windowed: newWindowed(0, 0)} }

// Name implements Estimator.
func (*SVM) Name() string { return "SVM" }

// Estimate implements Estimator.
func (s *SVM) Estimate(j *trace.Job) (time.Duration, bool) {
	if !s.ready {
		return 0, false
	}
	return fromLogSeconds(s.m.Predict(s.scaler.Transform(Features(j)))), true
}

// Observe implements Estimator.
func (s *SVM) Observe(j trace.Job) {
	if s.observe(j) {
		xs, ys, _ := s.trainSet()
		s.m = mlkit.SVRFit(xs, ys, mlkit.SVRConfig{C: 50, Epsilon: 0.05})
		s.ready = true
	}
}

// ---------------------------------------------------------------------------

// RandomForest is a bagged-tree regressor over the window.
type RandomForest struct {
	windowed
	m   *mlkit.Forest
	rng *rand.Rand
}

// NewRandomForest returns an empty random-forest estimator.
func NewRandomForest(seed int64) *RandomForest {
	return &RandomForest{windowed: newWindowed(0, 0), rng: rand.New(rand.NewSource(seed))}
}

// Name implements Estimator.
func (*RandomForest) Name() string { return "RandomForest" }

// Estimate implements Estimator.
func (r *RandomForest) Estimate(j *trace.Job) (time.Duration, bool) {
	if !r.ready {
		return 0, false
	}
	return fromLogSeconds(r.m.Predict(r.scaler.Transform(Features(j)))), true
}

// Observe implements Estimator.
func (r *RandomForest) Observe(j trace.Job) {
	if r.observe(j) {
		xs, ys, _ := r.trainSet()
		r.m = mlkit.ForestFit(xs, ys, mlkit.ForestConfig{Trees: 30}, r.rng)
		r.ready = true
	}
}

// ---------------------------------------------------------------------------

// IRPA is the integrated-learning baseline (Wu et al.): the average of a
// random forest, an SVR and a Bayesian ridge regressor.
type IRPA struct {
	windowed
	forest *mlkit.Forest
	svr    *mlkit.SVR
	ridge  *mlkit.BayesianRidge
	rng    *rand.Rand
}

// NewIRPA returns an empty IRPA ensemble.
func NewIRPA(seed int64) *IRPA {
	return &IRPA{windowed: newWindowed(0, 0), rng: rand.New(rand.NewSource(seed))}
}

// Name implements Estimator.
func (*IRPA) Name() string { return "IRPA" }

// Estimate implements Estimator.
func (p *IRPA) Estimate(j *trace.Job) (time.Duration, bool) {
	if !p.ready {
		return 0, false
	}
	x := p.scaler.Transform(Features(j))
	v := (p.forest.Predict(x) + p.svr.Predict(x) + p.ridge.Predict(x)) / 3
	return fromLogSeconds(v), true
}

// Observe implements Estimator.
func (p *IRPA) Observe(j trace.Job) {
	if p.observe(j) {
		xs, ys, _ := p.trainSet()
		p.forest = mlkit.ForestFit(xs, ys, mlkit.ForestConfig{Trees: 30}, p.rng)
		p.svr = mlkit.SVRFit(xs, ys, mlkit.SVRConfig{C: 50, Epsilon: 0.05})
		p.ridge = mlkit.BayesianRidgeFit(xs, ys, 0)
		p.ready = true
	}
}

// ---------------------------------------------------------------------------

// TRIP is the Tobit-regression baseline (Fan et al.): runtimes of jobs
// killed at their walltime limit are right-censored observations, and the
// Tobit likelihood recovers the uncensored regression.
type TRIP struct {
	windowed
	m *mlkit.Tobit
}

// NewTRIP returns an empty TRIP estimator.
func NewTRIP() *TRIP { return &TRIP{windowed: newWindowed(0, 0)} }

// Name implements Estimator.
func (*TRIP) Name() string { return "TRIP" }

// Estimate implements Estimator.
func (t *TRIP) Estimate(j *trace.Job) (time.Duration, bool) {
	if !t.ready {
		return 0, false
	}
	return fromLogSeconds(t.m.Predict(t.scaler.Transform(Features(j)))), true
}

// Observe implements Estimator.
func (t *TRIP) Observe(j trace.Job) {
	if t.observe(j) {
		xs, ys, jobs := t.trainSet()
		cens := make([]bool, len(jobs))
		for i := range jobs {
			// A job that ran into its walltime limit was killed there: the
			// recorded runtime is a censored lower bound.
			if jobs[i].UserEstimate > 0 && jobs[i].Runtime >= jobs[i].UserEstimate {
				cens[i] = true
				ys[i] = logSeconds(jobs[i].UserEstimate)
			}
		}
		t.m = mlkit.TobitFit(xs, ys, cens, mlkit.TobitConfig{})
		t.ready = true
	}
}

// ---------------------------------------------------------------------------

// PREP groups jobs by their running path (Zhou et al.) — proxied here by
// the job name, which in production is the submission-script path — and
// keeps a per-path model (running geometric mean of recent runtimes).
type PREP struct {
	paths map[string]*prepPath
}

type prepPath struct {
	logSum []float64 // ring of recent log-runtimes
	next   int
	full   bool
}

const prepWindow = 20

// NewPREP returns an empty PREP estimator.
func NewPREP() *PREP { return &PREP{paths: make(map[string]*prepPath)} }

// Name implements Estimator.
func (*PREP) Name() string { return "PREP" }

// Estimate implements Estimator.
func (p *PREP) Estimate(j *trace.Job) (time.Duration, bool) {
	pp := p.paths[j.Name]
	if pp == nil {
		return 0, false
	}
	n := pp.next
	if pp.full {
		n = prepWindow
	}
	if n == 0 {
		return 0, false
	}
	s := 0.0
	for i := 0; i < n; i++ {
		s += pp.logSum[i]
	}
	return fromLogSeconds(s / float64(n)), true
}

// Observe implements Estimator.
func (p *PREP) Observe(j trace.Job) {
	pp := p.paths[j.Name]
	if pp == nil {
		pp = &prepPath{logSum: make([]float64, prepWindow)}
		p.paths[j.Name] = pp
	}
	pp.logSum[pp.next] = logSeconds(j.Runtime)
	pp.next++
	if pp.next == prepWindow {
		pp.next = 0
		pp.full = true
	}
}

// ---------------------------------------------------------------------------

// EvalResult summarizes one estimator's replay over a trace (the Fig. 11b
// metrics).
type EvalResult struct {
	Estimator string
	// AEA is the average estimation accuracy (Eq. 5) over covered jobs.
	AEA float64
	// UnderestimateRate is the fraction of covered jobs with prediction
	// below the actual runtime (UR in Table VIII).
	UnderestimateRate float64
	// Coverage is the fraction of jobs the estimator produced a
	// prediction for (cold starts excluded from AEA/UR).
	Coverage float64
	// Jobs is the number of jobs replayed.
	Jobs int
}

// Evaluate replays a trace through an estimator in submission order:
// predict at submission, observe at completion. Completion is approximated
// as immediate, which matches how the record module sees a steady stream of
// finished jobs.
func Evaluate(est Estimator, jobs []trace.Job) EvalResult {
	res := EvalResult{Estimator: est.Name(), Jobs: len(jobs)}
	covered := 0
	under := 0
	aeaSum := 0.0
	for i := range jobs {
		j := jobs[i]
		if pred, ok := est.Estimate(&j); ok && pred > 0 {
			covered++
			aeaSum += EA(pred, j.Runtime)
			if pred < j.Runtime {
				under++
			}
		}
		est.Observe(j)
	}
	if covered > 0 {
		res.AEA = aeaSum / float64(covered)
		res.UnderestimateRate = float64(under) / float64(covered)
		res.Coverage = float64(covered) / math.Max(1, float64(len(jobs)))
	}
	return res
}
