// Package estimate implements the ESlurm job-runtime-estimation framework
// of Section V — estimation model generator (K-means++ clustering + one SVR
// per cluster over an interest window of completed jobs), event-driven
// real-time estimation module (slack-adjusted, AEA-gated against the user
// estimate), and record module (per-cluster average estimation accuracy,
// Eqs. 4–5) — plus the baseline estimators it is compared against in
// Fig. 11b: user estimates, Last-2, global SVM, random forest, IRPA, TRIP
// and PREP.
//
// Determinism: the framework is engine-free and all stochastic steps
// (K-means++ seeding, SVR tuning subsamples) draw from one rand.Rand
// seeded by FrameworkConfig.Seed, so identical job streams produce
// identical models and estimates.
package estimate

import (
	"hash/fnv"
	"math"
	"time"

	"eslurm/internal/trace"
)

// String features are embedded by signed feature hashing: each string maps
// to ±1 over several dimensions, so two distinct strings sit at a
// near-constant large distance while equal strings coincide — exactly the
// categorical geometry K-means and the RBF kernel need. One scalar hash
// would place unrelated names arbitrarily close.
const (
	nameDims = 8
	userDims = 4
	// NumFeatures is the dimensionality of the encoded Table IV vector:
	// hashed name, hashed user, log2 nodes, log2 cores, submission hour.
	NumFeatures = nameDims + userDims + 3
)

// Indices of the scalar features within the encoded vector.
const (
	FeatNodes = nameDims + userDims
	FeatCores = nameDims + userDims + 1
	FeatHour  = nameDims + userDims + 2
)

// Features encodes a job's Table IV attributes as a numeric vector.
// Scaling to comparable magnitudes is the caller's job (the framework
// standardizes then applies similarity weights).
func Features(j *trace.Job) []float64 {
	out := make([]float64, NumFeatures)
	hashInto(j.Name, out[:nameDims])
	hashInto(j.User, out[nameDims:nameDims+userDims])
	out[FeatNodes] = math.Log2(float64(max(1, j.Nodes)))
	out[FeatCores] = math.Log2(float64(max(1, j.Cores)))
	out[FeatHour] = float64(j.SubmitHour())
	return out
}

// hashInto fills dst with the string's signed hash embedding.
func hashInto(s string, dst []float64) {
	h := fnv.New64a()
	h.Write([]byte(s))
	bits := h.Sum64()
	for i := range dst {
		if bits&1 == 1 {
			dst[i] = 1
		} else {
			dst[i] = -1
		}
		bits >>= 1
		if i == 62 { // never in practice (dims << 63), defensive
			h.Write([]byte{0})
			bits = h.Sum64()
		}
	}
}

// logSeconds converts a duration to the regression target space.
func logSeconds(d time.Duration) float64 {
	s := d.Seconds()
	if s < 1 {
		s = 1
	}
	return math.Log(s)
}

// fromLogSeconds converts a regression output back to a duration,
// clamping to a sane range (1 s .. ~31 days) against optimizer blowups.
func fromLogSeconds(v float64) time.Duration {
	if v > 14.8 { // e^14.8 ≈ 2.7M s ≈ 31 days
		v = 14.8
	}
	s := math.Exp(v)
	if s < 1 {
		s = 1
	}
	return time.Duration(s * float64(time.Second))
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// EA implements Eq. 4: the estimation accuracy of a single job, in (0, 1],
// where 1 is a perfect estimate.
func EA(predicted, actual time.Duration) float64 {
	if predicted <= 0 || actual <= 0 {
		return 0
	}
	if predicted < actual {
		return float64(predicted) / float64(actual)
	}
	return float64(actual) / float64(predicted)
}
