package fptree

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func ints(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func TestLeafSlotsSmall(t *testing.T) {
	// n=1: single node is a leaf.
	if got := LeafSlots(1, 4); !got[0] {
		t.Error("single node must be a leaf")
	}
	// n < w: every node is a direct child and hence a leaf.
	got := LeafSlots(3, 4)
	for i, b := range got {
		if !b {
			t.Errorf("n<w: position %d not leaf", i)
		}
	}
}

func TestLeafSlotsKnownShape(t *testing.T) {
	// n=6, w=2: groups [3,3]; heads at 0 and 3 interior, each head's
	// remainder of 2 nodes < w... 2 >= w=2 so split again into [1,1]:
	// positions 1,2 leaves and 4,5 leaves.
	got := LeafSlots(6, 2)
	want := []bool{false, true, true, false, true, true}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("LeafSlots(6,2) = %v, want %v", got, want)
	}
}

func TestLeafSlotsWidthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("width 1 did not panic")
		}
	}()
	LeafSlots(10, 1)
}

func TestBuildMatchesLeafSlots(t *testing.T) {
	for _, n := range []int{1, 2, 5, 16, 33, 100, 1000} {
		for _, w := range []int{2, 4, 32} {
			tr := Build(ints(n), w)
			if tr.Size() != n {
				t.Fatalf("n=%d w=%d: Size=%d", n, w, tr.Size())
			}
			slots := LeafSlots(n, w)
			byVal := make(map[int]bool)
			tr.Walk(func(v, _ int, leaf bool) { byVal[v] = leaf })
			if len(byVal) != n {
				t.Fatalf("n=%d w=%d: walk visited %d nodes", n, w, len(byVal))
			}
			for i := 0; i < n; i++ {
				if byVal[i] != slots[i] {
					t.Fatalf("n=%d w=%d: position %d leaf mismatch: tree=%v slots=%v",
						n, w, i, byVal[i], slots[i])
				}
			}
		}
	}
}

func TestBuildValuesPreserveOrder(t *testing.T) {
	tr := Build(ints(50), 4)
	if !reflect.DeepEqual(tr.Values(), ints(50)) {
		t.Error("Values() does not return participants in list order")
	}
}

func TestBuildWidthRespected(t *testing.T) {
	tr := Build(ints(500), 8)
	if len(tr.Roots) > 8 {
		t.Fatalf("root fan-out %d > width 8", len(tr.Roots))
	}
	tr.Walk(func(_ int, _ int, _ bool) {})
	var check func(ns []*Node[int])
	check = func(ns []*Node[int]) {
		for _, n := range ns {
			if len(n.Children) > 8 {
				t.Fatalf("fan-out %d > width 8", len(n.Children))
			}
			check(n.Children)
		}
	}
	check(tr.Roots)
}

func TestDepthGrowsLogarithmically(t *testing.T) {
	d1 := Build(ints(32), 32).Depth()
	if d1 != 1 {
		t.Errorf("32 nodes width 32: depth = %d, want 1", d1)
	}
	d2 := Build(ints(1024), 32).Depth()
	if d2 < 2 || d2 > 3 {
		t.Errorf("1024 nodes width 32: depth = %d, want 2-3", d2)
	}
	d3 := Build(ints(20000), 32).Depth()
	if d3 > 4 {
		t.Errorf("20000 nodes width 32: depth = %d, want <= 4", d3)
	}
}

func TestRearrangePlacesPredictedAtLeaves(t *testing.T) {
	n, w := 200, 4
	predicted := map[int]bool{3: true, 17: true, 42: true, 99: true, 150: true}
	out := Rearrange(ints(n), func(v int) bool { return predicted[v] }, w)
	slots := LeafSlots(n, w)
	for i, v := range out {
		if predicted[v] && !slots[i] {
			t.Errorf("predicted node %d placed at interior position %d", v, i)
		}
	}
}

func TestRearrangeEmptyPredictionIsIdentity(t *testing.T) {
	in := ints(137)
	out := Rearrange(in, func(int) bool { return false }, 32)
	if !reflect.DeepEqual(in, out) {
		t.Error("rearrange with no predictions changed the list")
	}
}

func TestRearrangeAllPredicted(t *testing.T) {
	in := ints(64)
	out := Rearrange(in, func(int) bool { return true }, 8)
	if !reflect.DeepEqual(in, out) {
		t.Error("rearrange with all-predicted must preserve order")
	}
}

func TestRearrangeMorePredictedThanLeaves(t *testing.T) {
	n, w := 100, 2 // few leaves relative to predictions
	leaves := LeafCount(n, w)
	pred := func(v int) bool { return v < leaves+10 }
	out := Rearrange(ints(n), pred, w)
	slots := LeafSlots(n, w)
	// Every leaf slot must hold a predicted node when predictions overflow.
	for i, v := range out {
		if slots[i] && !pred(v) {
			t.Errorf("leaf slot %d holds healthy node %d despite overflow of predictions", i, v)
		}
	}
}

func TestFineTuneSwapsMinimally(t *testing.T) {
	n, w := 100, 4
	list := ints(n)
	predicted := map[int]bool{0: true} // position 0 is interior for n>w
	swaps := FineTune(list, func(v int) bool { return predicted[v] }, w)
	if swaps != 1 {
		t.Fatalf("swaps = %d, want 1", swaps)
	}
	slots := LeafSlots(n, w)
	for i, v := range list {
		if predicted[v] && !slots[i] {
			t.Error("predicted node still interior after FineTune")
		}
	}
	// All but two positions untouched.
	moved := 0
	for i, v := range list {
		if v != i {
			moved++
		}
	}
	if moved != 2 {
		t.Errorf("FineTune moved %d nodes, want 2", moved)
	}
}

func TestFineTuneNoOpWhenAlreadyPlaced(t *testing.T) {
	n, w := 50, 4
	list := ints(n)
	slots := LeafSlots(n, w)
	// Predict a node that is already at a leaf.
	leafVal := -1
	for i, s := range slots {
		if s {
			leafVal = list[i]
			break
		}
	}
	swaps := FineTune(list, func(v int) bool { return v == leafVal }, w)
	if swaps != 0 {
		t.Errorf("swaps = %d, want 0", swaps)
	}
}

func TestDescendantCounts(t *testing.T) {
	n, w := 100, 4
	tr := Build(ints(n), w)
	counts := DescendantCounts(tr)
	total := 0
	for _, c := range counts {
		total += c
	}
	// Sum of descendant counts = sum over nodes of (depth below them) =
	// total number of (ancestor, descendant) pairs; all n nodes minus the
	// roots are someone's descendant, counted once per ancestor.
	if counts[0] == 0 {
		t.Error("first node should have descendants for n >> w")
	}
	slots := LeafSlots(n, w)
	idx := 0
	tr.Walk(func(_ int, _ int, leaf bool) {
		if leaf != slots[idx] {
			t.Error("walk order diverges from LeafSlots order")
		}
		if leaf && counts[idx] != 0 {
			t.Errorf("leaf %d has descendant count %d", idx, counts[idx])
		}
		idx++
	})
	if total == 0 {
		t.Error("descendant counts all zero")
	}
}

// Property: Rearrange returns a permutation of its input.
func TestPropertyRearrangeIsPermutation(t *testing.T) {
	f := func(n uint8, w uint8, seed int64) bool {
		size := int(n%200) + 1
		width := int(w%30) + 2
		rng := rand.New(rand.NewSource(seed))
		pred := make(map[int]bool)
		for i := 0; i < size; i++ {
			if rng.Float64() < 0.2 {
				pred[i] = true
			}
		}
		out := Rearrange(ints(size), func(v int) bool { return pred[v] }, width)
		if len(out) != size {
			return false
		}
		seen := make(map[int]bool, size)
		for _, v := range out {
			if seen[v] {
				return false
			}
			seen[v] = true
		}
		return len(seen) == size
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: when |predicted| <= |leaf slots|, every predicted node ends at a
// leaf (the paper's 81.7% placement figure is bounded by prediction recall,
// not by the rearranger, which is exact).
func TestPropertyRearrangeExactWhenFits(t *testing.T) {
	f := func(n uint16, w uint8, seed int64) bool {
		size := int(n%300) + 2
		width := int(w%30) + 2
		leaves := LeafCount(size, width)
		rng := rand.New(rand.NewSource(seed))
		pred := make(map[int]bool)
		for len(pred) < leaves/2 {
			pred[rng.Intn(size)] = true
		}
		out := Rearrange(ints(size), func(v int) bool { return pred[v] }, width)
		slots := LeafSlots(size, width)
		for i, v := range out {
			if pred[v] && !slots[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: leaf count is at least half the nodes for any width >= 2
// (every interior node "consumes" at most one head position per group).
func TestPropertyLeafFractionBounded(t *testing.T) {
	f := func(n uint16, w uint8) bool {
		size := int(n%5000) + 1
		width := int(w%60) + 2
		lc := LeafCount(size, width)
		return lc >= 1 && lc <= size
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkLeafSlots20K(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		LeafSlots(20480, DefaultWidth)
	}
}

func BenchmarkRearrange20K(b *testing.B) {
	list := ints(20480)
	pred := func(v int) bool { return v%50 == 0 } // 2% failure, paper's regime
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Rearrange(list, pred, DefaultWidth)
	}
}

func BenchmarkBuild20K(b *testing.B) {
	list := ints(20480)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Build(list, DefaultWidth)
	}
}
