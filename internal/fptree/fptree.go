// Package fptree implements the failure-prediction-based communication tree
// of Section IV of the paper.
//
// A satellite node receiving a broadcast task holds an ordered list of
// participating nodes. The list's order fully determines the shape of the
// k-ary relay tree ("if all nodes use the same grouping method ... the
// node's location in the initial node list corresponds to its location in
// the tree"). The FP-Tree constructor therefore has three parts, mirroring
// Fig. 4:
//
//  1. LeafSlots — simulate the recursive grouping to find which positions
//     of the list end up as tree leaves (Eq. 2, Θ(n)).
//  2. A failure predictor (package predict) supplies the set of nodes
//     expected to fail.
//  3. Rearrange — an O(n) pass that fills leaf positions preferentially
//     with predicted-failed nodes and interior positions with healthy ones.
//
// Build materializes the tree for the broadcast engines in package comm.
// All functions are pure and generic so they are directly
// property-testable — and deterministic: tree shape is a function of list
// order and width alone, with no RNG or map iteration anywhere.
package fptree

import "fmt"

// DefaultWidth is the tree width used across the experiments. With w=32 a
// 4K-node broadcast tree is 3 levels deep, matching the latency regime the
// paper reports.
const DefaultWidth = 32

// groupSizes splits n items into g contiguous groups as evenly as possible:
// the first n%g groups get one extra item.
func groupSizes(n, g int) []int {
	sizes := make([]int, g)
	base, extra := n/g, n%g
	for i := range sizes {
		sizes[i] = base
		if i < extra {
			sizes[i]++
		}
	}
	return sizes
}

// LeafSlots reports, for each position in an n-node participant list, whether
// the node at that position becomes a leaf of the width-w relay tree. It is
// the "leaf-nodes location" component of Fig. 4(b) and runs in Θ(n).
func LeafSlots(n, w int) []bool {
	if w < 2 {
		panic(fmt.Sprintf("fptree: width must be >= 2, got %d", w))
	}
	leaf := make([]bool, n)
	var rec func(lo, hi int)
	rec = func(lo, hi int) {
		n := hi - lo
		switch {
		case n <= 0:
			return
		case n == 1:
			leaf[lo] = true
			return
		}
		g := w
		if n < w {
			// Fewer nodes than the width: every node is a direct child,
			// hence a leaf.
			g = n
		}
		pos := lo
		for _, sz := range groupSizes(n, g) {
			if sz == 0 {
				continue
			}
			if sz == 1 {
				leaf[pos] = true
			} else {
				// Group head at pos is interior; the remainder of the
				// group is its subtree.
				rec(pos+1, pos+sz)
			}
			pos += sz
		}
	}
	rec(0, n)
	return leaf
}

// LeafCount returns the number of leaf slots for an n-node width-w tree
// without allocating the full slot array.
func LeafCount(n, w int) int {
	k := 0
	for _, b := range LeafSlots(n, w) {
		if b {
			k++
		}
	}
	return k
}

// Rearrange returns a permutation of list in which predicted-failed nodes
// (per the predicted callback) occupy leaf slots of the width-w tree and
// healthy nodes occupy interior slots, to the extent counts allow. The
// relative order within each class is preserved, so for an empty prediction
// set the output equals the input. Runs in O(n). This is the "nodelist
// rearranger" of Fig. 4(c).
func Rearrange[T any](list []T, predicted func(T) bool, w int) []T {
	n := len(list)
	if n == 0 {
		return nil
	}
	leaf := LeafSlots(n, w)
	var bad, good []T
	for _, v := range list {
		if predicted(v) {
			bad = append(bad, v)
		} else {
			good = append(good, v)
		}
	}
	out := make([]T, 0, n)
	bi, gi := 0, 0
	for pos := 0; pos < n; pos++ {
		takeBad := leaf[pos]
		if takeBad && bi >= len(bad) {
			takeBad = false
		}
		if !takeBad && gi >= len(good) {
			takeBad = true
		}
		if takeBad {
			out = append(out, bad[bi])
			bi++
		} else {
			out = append(out, good[gi])
			gi++
		}
	}
	return out
}

// FineTune adjusts an already-ordered list (e.g. one produced by a
// topology-aware placer, §IV-E last paragraph) with the minimum number of
// swaps needed to push predicted-failed nodes into leaf slots: each
// predicted node at an interior slot is swapped with a healthy node at a
// leaf slot. Unlike Rearrange it preserves the positions of all other
// nodes. Returns the number of swaps performed.
func FineTune[T any](list []T, predicted func(T) bool, w int) int {
	n := len(list)
	if n == 0 {
		return 0
	}
	leaf := LeafSlots(n, w)
	var interiorBad, leafGood []int
	for i, v := range list {
		switch {
		case !leaf[i] && predicted(v):
			interiorBad = append(interiorBad, i)
		case leaf[i] && !predicted(v):
			leafGood = append(leafGood, i)
		}
	}
	swaps := 0
	for swaps < len(interiorBad) && swaps < len(leafGood) {
		i, j := interiorBad[swaps], leafGood[swaps]
		list[i], list[j] = list[j], list[i]
		swaps++
	}
	return swaps
}

// Node is one vertex of a materialized relay tree.
type Node[T any] struct {
	Value    T
	Children []*Node[T]
}

// Tree is a materialized width-w relay tree over a participant list. Root
// is the broadcast origin (the satellite node itself does not appear in the
// list; the tree's top-level children are the first-layer relay nodes).
type Tree[T any] struct {
	Width int
	// Roots are the first-layer nodes the origin contacts directly.
	Roots []*Node[T]
	size  int
}

// Build materializes the relay tree for a participant list, following the
// same grouping as LeafSlots. It runs in Θ(n).
func Build[T any](list []T, w int) *Tree[T] {
	if w < 2 {
		panic(fmt.Sprintf("fptree: width must be >= 2, got %d", w))
	}
	t := &Tree[T]{Width: w, size: len(list)}
	var rec func(lo, hi int) []*Node[T]
	rec = func(lo, hi int) []*Node[T] {
		n := hi - lo
		if n <= 0 {
			return nil
		}
		g := w
		if n < w {
			g = n
		}
		nodes := make([]*Node[T], 0, g)
		pos := lo
		for _, sz := range groupSizes(n, g) {
			if sz == 0 {
				continue
			}
			nd := &Node[T]{Value: list[pos]}
			nd.Children = rec(pos+1, pos+sz)
			nodes = append(nodes, nd)
			pos += sz
		}
		return nodes
	}
	t.Roots = rec(0, len(list))
	return t
}

// Size returns the number of participant nodes in the tree.
func (t *Tree[T]) Size() int { return t.size }

// Depth returns the number of relay levels (0 for an empty tree, 1 when all
// participants are direct children of the origin).
func (t *Tree[T]) Depth() int {
	var rec func(ns []*Node[T]) int
	rec = func(ns []*Node[T]) int {
		if len(ns) == 0 {
			return 0
		}
		max := 0
		for _, n := range ns {
			if d := rec(n.Children); d > max {
				max = d
			}
		}
		return max + 1
	}
	return rec(t.Roots)
}

// Walk visits every node with its depth (first layer = 0), parent value and
// whether it is a leaf, in list order.
func (t *Tree[T]) Walk(visit func(value T, depth int, leaf bool)) {
	var rec func(ns []*Node[T], depth int)
	rec = func(ns []*Node[T], depth int) {
		for _, n := range ns {
			visit(n.Value, depth, len(n.Children) == 0)
			rec(n.Children, depth+1)
		}
	}
	rec(t.Roots, 0)
}

// Leaves returns the values at the tree's leaves in list order.
func (t *Tree[T]) Leaves() []T {
	var out []T
	t.Walk(func(v T, _ int, leaf bool) {
		if leaf {
			out = append(out, v)
		}
	})
	return out
}

// Values returns all participant values in list order.
func (t *Tree[T]) Values() []T {
	out := make([]T, 0, t.size)
	t.Walk(func(v T, _ int, _ bool) { out = append(out, v) })
	return out
}

// DescendantCounts returns, per participant in list order, the number of
// descendants below it — the quantity that makes an interior failure
// expensive (Section IV: "the more descendant nodes of a failed node have,
// the higher the delay").
func DescendantCounts[T any](t *Tree[T]) map[int]int {
	counts := make(map[int]int, t.size)
	idx := 0
	var rec func(n *Node[T]) int
	rec = func(n *Node[T]) int {
		my := idx
		idx++
		total := 0
		for _, c := range n.Children {
			total += 1 + rec(c)
		}
		counts[my] = total
		return total
	}
	for _, r := range t.Roots {
		rec(r)
	}
	return counts
}
