// Package satellite implements the satellite-node state machine of Fig. 2
// and Table II of the paper, and the round-robin satellite pool the master
// draws from when splitting broadcast tasks (Section III-B/C).
//
// Satellite nodes "do not participate in computing tasks and do not retain
// any system state. They act as bidirectional communication buffers with
// initial data aggregation and processing capabilities between the master
// node and the computing nodes."
//
// Determinism: transitions happen synchronously inside Apply (itself
// called from engine events) and the FAULT-timeout demotion is a
// scheduled engine event, so pool state replays bit-identically from the
// seed; the obs transition records are passive.
package satellite

import (
	"fmt"
	"time"

	"eslurm/internal/cluster"
	"eslurm/internal/obs"
	"eslurm/internal/simnet"
)

// State is a satellite node's lifecycle state (Table II).
type State int

const (
	// Unknown: satellite node state remains unknown (initial).
	Unknown State = iota
	// Running: satellite node is operating as expected.
	Running
	// Busy: satellite node is processing broadcast tasks.
	Busy
	// Fault: satellite node has failed.
	Fault
	// Down: satellite node is shut down; administrator intervention needed.
	Down
)

func (s State) String() string {
	switch s {
	case Unknown:
		return "UNKNOWN"
	case Running:
		return "RUNNING"
	case Busy:
		return "BUSY"
	case Fault:
		return "FAULT"
	case Down:
		return "DOWN"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Event drives state transitions (Table II).
type Event int

const (
	// EvBTAssigned: a broadcast task was handed to the satellite.
	EvBTAssigned Event = iota
	// EvBTSuccess: satellite successfully processed a broadcast task.
	EvBTSuccess
	// EvBTFailure: satellite failed to process a broadcast task.
	EvBTFailure
	// EvHBSuccess: heartbeat confirms the satellite is healthy.
	EvHBSuccess
	// EvHBFailure: heartbeat shows the satellite is abnormal.
	EvHBFailure
	// EvShutdown: a shutdown command is sent to the satellite.
	EvShutdown
	// EvTimeout: satellite stayed in FAULT past the timeout (≥ 20 min).
	EvTimeout
)

func (e Event) String() string {
	switch e {
	case EvBTAssigned:
		return "BT-assigned"
	case EvBTSuccess:
		return "BT-success"
	case EvBTFailure:
		return "BT-failure"
	case EvHBSuccess:
		return "HB-success"
	case EvHBFailure:
		return "HB-failure"
	case EvShutdown:
		return "SHUTDOWN"
	case EvTimeout:
		return "TIMEOUT"
	default:
		return fmt.Sprintf("Event(%d)", int(e))
	}
}

// ErrInvalidTransition reports an event that is not legal in the current
// state.
type ErrInvalidTransition struct {
	From State
	Ev   Event
}

func (e *ErrInvalidTransition) Error() string {
	return fmt.Sprintf("satellite: event %v invalid in state %v", e.Ev, e.From)
}

// Satellite tracks the master's view of one satellite node.
type Satellite struct {
	ID    cluster.NodeID
	state State
	// faultSince is when the satellite entered FAULT (valid while state ==
	// Fault).
	faultSince time.Duration
	// busyTasks counts broadcast tasks in flight; the satellite returns to
	// RUNNING only when the last one resolves successfully.
	busyTasks int
	// cordoned marks the satellite administratively unschedulable: it keeps
	// its Table II state but round-robin selection skips it. Orthogonal to
	// the state machine — a cordoned satellite still heartbeats and may
	// finish in-flight tasks (the graceful-drain window).
	cordoned bool

	// Counters for Table VI reporting.
	TasksReceived int
	TasksFailed   int
	NodesServed   int
}

// State returns the current state.
func (s *Satellite) State() State { return s.state }

// Cordoned reports whether the satellite is administratively
// unschedulable (skipped by round-robin selection).
func (s *Satellite) Cordoned() bool { return s.cordoned }

// FaultSince returns when the satellite entered FAULT (zero unless in
// Fault).
func (s *Satellite) FaultSince() time.Duration { return s.faultSince }

// Transition applies an event at virtual time now, returning the new state
// or an ErrInvalidTransition. The transition table follows Fig. 2:
//
//	UNKNOWN --HB-success--> RUNNING
//	UNKNOWN --HB-failure--> FAULT
//	RUNNING --BT-assigned--> BUSY
//	RUNNING --HB-failure--> FAULT
//	BUSY    --BT-success--> RUNNING (when no tasks remain in flight)
//	BUSY    --BT-failure--> FAULT
//	BUSY    --HB-failure--> FAULT
//	FAULT   --HB-success--> RUNNING
//	FAULT   --TIMEOUT----> DOWN
//	any non-DOWN --SHUTDOWN--> DOWN
//
// HB-success in RUNNING/BUSY and HB-failure in FAULT are absorbed (no
// change); everything else is invalid.
func (s *Satellite) Transition(ev Event, now time.Duration) (State, error) {
	invalid := func() (State, error) { return s.state, &ErrInvalidTransition{From: s.state, Ev: ev} }
	if ev == EvShutdown {
		if s.state == Down {
			return Down, nil
		}
		s.state = Down
		s.busyTasks = 0
		return Down, nil
	}
	switch s.state {
	case Unknown:
		switch ev {
		case EvHBSuccess:
			s.state = Running
		case EvHBFailure:
			s.enterFault(now)
		default:
			return invalid()
		}
	case Running:
		switch ev {
		case EvBTAssigned:
			s.state = Busy
			s.busyTasks = 1
			s.TasksReceived++
		case EvHBSuccess:
			// absorbed
		case EvHBFailure:
			s.enterFault(now)
		default:
			return invalid()
		}
	case Busy:
		switch ev {
		case EvBTAssigned:
			s.busyTasks++
			s.TasksReceived++
		case EvBTSuccess:
			if s.busyTasks > 0 {
				s.busyTasks--
			}
			if s.busyTasks == 0 {
				s.state = Running
			}
		case EvBTFailure:
			s.TasksFailed++
			s.enterFault(now)
		case EvHBSuccess:
			// absorbed
		case EvHBFailure:
			s.enterFault(now)
		default:
			return invalid()
		}
	case Fault:
		switch ev {
		case EvHBSuccess:
			s.state = Running
		case EvHBFailure:
			// absorbed; faultSince keeps its original value
		case EvTimeout:
			s.state = Down
		case EvBTSuccess, EvBTFailure:
			// A task outcome arriving after the satellite already faulted
			// (e.g. HB-failure raced the task) is absorbed.
		default:
			return invalid()
		}
	case Down:
		// Only administrator intervention (Reinstate) leaves DOWN.
		return invalid()
	}
	return s.state, nil
}

func (s *Satellite) enterFault(now time.Duration) {
	s.state = Fault
	s.faultSince = now
	s.busyTasks = 0
}

// Reinstate models administrator intervention on a DOWN satellite,
// returning it to UNKNOWN (the next successful heartbeat promotes it).
func (s *Satellite) Reinstate() { s.state = Unknown; s.busyTasks = 0 }

// Health is a point-in-time census of the pool by state.
type Health struct {
	Unknown, Running, Busy, Fault, Down int
}

// Alive returns the satellites currently serviceable (RUNNING or BUSY).
func (h Health) Alive() int { return h.Running + h.Busy }

// Total returns the pool size.
func (h Health) Total() int { return h.Unknown + h.Running + h.Busy + h.Fault + h.Down }

// Drained reports the pool has fully drained to FAULT/DOWN: no satellite
// can serve a broadcast now or after finishing its current task. The
// master's graceful-degradation path (direct tree broadcast) keys off
// this.
func (h Health) Drained() bool {
	t := h.Total()
	return t > 0 && h.Fault+h.Down == t
}

// Pool is the master's satellite-node pool with round-robin selection over
// RUNNING satellites (Section III-B) and FAULT-timeout demotion
// (Section III-C, Table II: TIMEOUT default ≥ 20 min).
type Pool struct {
	engine *simnet.Engine
	sats   []*Satellite
	next   int
	// drains tracks pending graceful drains: a cordoned BUSY satellite
	// waiting for its in-flight tasks to resolve before demotion, with a
	// deadline timer that forces the demotion if they never do. At most one
	// drain per satellite; completion removes the record and cancels the
	// timer, so external demotions (SHUTDOWN, FAULT-timeout) while a drain
	// is pending complete it without double-demoting or leaking the timer.
	drains map[cluster.NodeID]*drainRec
	// FaultTimeout is how long a satellite may remain in FAULT before a
	// TIMEOUT event demotes it to DOWN.
	FaultTimeout time.Duration
	// OnChange, when set, observes every satellite state change made
	// through the pool (Apply and the internal FAULT-timeout demotion):
	// the satellite, its old and new states, and the pool census after the
	// change. It fires synchronously — no simulation events — so wiring an
	// observer does not perturb the event trace. Transitions applied
	// directly on a Satellite (bypassing the pool) are not observed.
	OnChange func(s *Satellite, from, to State, h Health)
}

// NewPool builds a pool over the given satellite node IDs. All satellites
// start UNKNOWN; the caller's heartbeat loop promotes them.
func NewPool(e *simnet.Engine, ids []cluster.NodeID) *Pool {
	p := &Pool{engine: e, FaultTimeout: 20 * time.Minute}
	for _, id := range ids {
		p.sats = append(p.sats, &Satellite{ID: id})
	}
	return p
}

// Size returns the number of satellites configured (m in Eq. 1).
func (p *Pool) Size() int { return len(p.sats) }

// All returns the satellites in configuration order.
func (p *Pool) All() []*Satellite { return p.sats }

// Get returns the satellite tracking the given node ID, or nil.
func (p *Pool) Get(id cluster.NodeID) *Satellite {
	for _, s := range p.sats {
		if s.ID == id {
			return s
		}
	}
	return nil
}

// RunningCount returns the number of satellites eligible for broadcasts.
// Cordoned satellites are excluded: they may still be RUNNING but cannot
// be selected, so they must not inflate the Eq. 1 fanout.
func (p *Pool) RunningCount() int {
	k := 0
	for _, s := range p.sats {
		if s.state == Running && !s.cordoned {
			k++
		}
	}
	return k
}

// NextRunning returns the next RUNNING satellite in round-robin order, or
// nil when none is available. BUSY satellites are skipped: "only satellite
// nodes at the RUNNING state will be chosen to participate in message
// broadcasting." Cordoned satellites are skipped too — that is what makes
// a drain graceful: no new tasks land while in-flight ones resolve.
func (p *Pool) NextRunning() *Satellite {
	n := len(p.sats)
	for i := 0; i < n; i++ {
		s := p.sats[(p.next+i)%n]
		if s.state == Running && !s.cordoned {
			p.next = (p.next + i + 1) % n
			return s
		}
	}
	return nil
}

// SelectRunning returns up to k distinct RUNNING satellites in round-robin
// order.
func (p *Pool) SelectRunning(k int) []*Satellite {
	var out []*Satellite
	seen := map[cluster.NodeID]bool{}
	for len(out) < k {
		s := p.NextRunning()
		if s == nil || seen[s.ID] {
			break
		}
		seen[s.ID] = true
		out = append(out, s)
	}
	return out
}

// Health returns the current pool census.
func (p *Pool) Health() Health {
	var h Health
	for _, s := range p.sats {
		switch s.state {
		case Unknown:
			h.Unknown++
		case Running:
			h.Running++
		case Busy:
			h.Busy++
		case Fault:
			h.Fault++
		case Down:
			h.Down++
		}
	}
	return h
}

// Drained reports whether every satellite is FAULT or DOWN.
func (p *Pool) Drained() bool { return p.Health().Drained() }

// drainRec is one pending graceful drain.
type drainRec struct {
	timer simnet.Event
	done  func(clean bool)
}

// Cordon marks a satellite unschedulable without touching its state.
// Returns false for an unknown ID.
func (p *Pool) Cordon(id cluster.NodeID) bool {
	s := p.Get(id)
	if s == nil {
		return false
	}
	s.cordoned = true
	return true
}

// Uncordon clears the unschedulable mark. It refuses while a drain is
// pending (the drain owns the cordon until it completes) and for unknown
// IDs.
func (p *Pool) Uncordon(id cluster.NodeID) bool {
	s := p.Get(id)
	if s == nil || p.drains[id] != nil {
		return false
	}
	s.cordoned = false
	return true
}

// CordonedCount returns the number of cordoned satellites.
func (p *Pool) CordonedCount() int {
	k := 0
	for _, s := range p.sats {
		if s.cordoned {
			k++
		}
	}
	return k
}

// Draining reports whether a graceful drain is pending for the satellite.
func (p *Pool) Draining(id cluster.NodeID) bool { return p.drains[id] != nil }

// DrainingCount returns the number of pending graceful drains.
func (p *Pool) DrainingCount() int { return len(p.drains) }

// Reinstate models administrator intervention through the pool: a DOWN
// satellite returns to UNKNOWN (and is uncordoned) so the next successful
// heartbeat can promote it. Unlike Satellite.Reinstate, the transition is
// observed (metrics, trace, OnChange). Returns false unless the satellite
// exists and is DOWN.
func (p *Pool) Reinstate(id cluster.NodeID) bool {
	s := p.Get(id)
	if s == nil || s.state != Down {
		return false
	}
	s.Reinstate()
	s.cordoned = false
	p.notify(s, Down, Unknown)
	return true
}

// Drain gracefully demotes a satellite: cordon it (no new tasks), let
// in-flight broadcast tasks resolve, then apply SHUTDOWN. If the satellite
// is still BUSY when the deadline elapses, the demotion is forced. done is
// called exactly once with clean=true when the satellite left BUSY on its
// own (or was never BUSY) and clean=false when the deadline forced it or a
// fault demoted it first. An external demotion while the drain is pending
// (ShutdownSatellite, FAULT-timeout) completes the drain — the deadline
// timer is cancelled and the satellite is not demoted twice. Deterministic:
// the deadline is an engine event and all completion paths run inside
// engine callbacks.
func (p *Pool) Drain(id cluster.NodeID, deadline time.Duration, done func(clean bool)) error {
	s := p.Get(id)
	if s == nil {
		return fmt.Errorf("satellite: drain: unknown satellite %d", id)
	}
	if p.drains[id] != nil {
		return fmt.Errorf("satellite: drain: satellite %d already draining", id)
	}
	s.cordoned = true
	if s.state == Down {
		if done != nil {
			done(true)
		}
		return nil
	}
	if s.state != Busy {
		p.Apply(s, EvShutdown)
		if done != nil {
			done(true)
		}
		return nil
	}
	d := &drainRec{done: done}
	if p.drains == nil {
		p.drains = map[cluster.NodeID]*drainRec{}
	}
	p.drains[id] = d
	d.timer = p.engine.After(deadline, func() {
		if p.drains[id] != d {
			return // completed (or superseded) before the deadline
		}
		delete(p.drains, id)
		if s.state != Down {
			p.Apply(s, EvShutdown)
		}
		if d.done != nil {
			d.done(false)
		}
	})
	return nil
}

// drainCheck completes a pending drain when its satellite leaves BUSY.
// Called from notify after every observed transition; the record is
// removed and the timer cancelled before any further transition is
// applied, so completion cannot recurse or fire twice.
func (p *Pool) drainCheck(s *Satellite, to State) {
	d := p.drains[s.ID]
	if d == nil || to == Busy {
		return
	}
	delete(p.drains, s.ID)
	d.timer.Cancel()
	clean := to == Running
	if to != Down {
		p.Apply(s, EvShutdown)
	}
	if d.done != nil {
		d.done(clean)
	}
}

// notify fires the OnChange observer for a completed state change and
// records the transition on the engine's observability layer: counters
// satellite.transitions / satellite.faults / satellite.downs, plus a
// "satellite.transition" trace instant when tracing is enabled. Recording
// is passive (no events, no RNG), so it cannot perturb the event trace.
func (p *Pool) notify(s *Satellite, from, to State) {
	if from == to {
		return
	}
	reg := p.engine.Metrics()
	reg.Counter("satellite.transitions").Inc()
	switch to {
	case Fault:
		reg.Counter("satellite.faults").Inc()
	case Down:
		reg.Counter("satellite.downs").Inc()
	}
	p.engine.Tracer().Instant("satellite.transition", 0,
		obs.Int("sat", int(s.ID)),
		obs.String("from", from.String()),
		obs.String("to", to.String()))
	if p.OnChange != nil {
		p.OnChange(s, from, to, p.Health())
	}
	p.drainCheck(s, to)
}

// Apply transitions a satellite and, on entry to FAULT, schedules the
// TIMEOUT check that demotes it to DOWN if it has not recovered.
func (p *Pool) Apply(s *Satellite, ev Event) (State, error) {
	before := s.state
	st, err := s.Transition(ev, p.engine.Now())
	if err != nil {
		return st, err
	}
	if st == Fault && before != Fault {
		since := s.faultSince
		p.engine.After(p.FaultTimeout, func() {
			if s.state == Fault && s.faultSince == since {
				s.Transition(EvTimeout, p.engine.Now())
				p.notify(s, Fault, Down)
			}
		})
	}
	p.notify(s, before, st)
	return st, nil
}

// Counts returns the number of satellites in each state.
func (p *Pool) Counts() map[State]int {
	out := make(map[State]int, 5)
	for _, s := range p.sats {
		out[s.state]++
	}
	return out
}
