package satellite

// Regression coverage for the graceful-drain path: cordon semantics in
// round-robin selection, every drain completion route, and the ISSUE 8
// edge — an external demotion while a drain deadline is pending must not
// double-demote the satellite or leak the deadline timer.

import (
	"testing"
	"time"

	"eslurm/internal/cluster"
	"eslurm/internal/simnet"
)

func newTestPool(t *testing.T, n int) (*simnet.Engine, *Pool) {
	t.Helper()
	e := simnet.NewEngine(1)
	var ids []cluster.NodeID
	for i := 1; i <= n; i++ {
		ids = append(ids, cluster.NodeID(i))
	}
	p := NewPool(e, ids)
	for _, s := range p.All() {
		if _, err := p.Apply(s, EvHBSuccess); err != nil {
			t.Fatal(err)
		}
	}
	return e, p
}

func TestCordonSkipsSelection(t *testing.T) {
	_, p := newTestPool(t, 3)
	if !p.Cordon(2) {
		t.Fatal("Cordon(2) = false")
	}
	if p.CordonedCount() != 1 {
		t.Fatalf("CordonedCount = %d, want 1", p.CordonedCount())
	}
	if p.RunningCount() != 2 {
		t.Fatalf("RunningCount = %d, want 2 (cordoned excluded)", p.RunningCount())
	}
	for i := 0; i < 6; i++ {
		s := p.NextRunning()
		if s == nil || s.ID == 2 {
			t.Fatalf("NextRunning returned %v; cordoned satellite must be skipped", s)
		}
	}
	if sel := p.SelectRunning(3); len(sel) != 2 {
		t.Fatalf("SelectRunning(3) = %d satellites, want 2", len(sel))
	}
	if !p.Uncordon(2) {
		t.Fatal("Uncordon(2) = false")
	}
	if p.RunningCount() != 3 {
		t.Fatalf("RunningCount after uncordon = %d, want 3", p.RunningCount())
	}
}

func TestDrainIdleSatelliteImmediate(t *testing.T) {
	_, p := newTestPool(t, 2)
	var clean []bool
	if err := p.Drain(1, time.Minute, func(c bool) { clean = append(clean, c) }); err != nil {
		t.Fatal(err)
	}
	if len(clean) != 1 || !clean[0] {
		t.Fatalf("done calls = %v, want one clean completion", clean)
	}
	if st := p.Get(1).State(); st != Down {
		t.Fatalf("state = %v, want DOWN", st)
	}
	if p.Draining(1) || p.DrainingCount() != 0 {
		t.Fatal("no drain record should remain")
	}
}

func TestDrainWaitsForBusyThenClean(t *testing.T) {
	e, p := newTestPool(t, 2)
	s := p.Get(1)
	p.Apply(s, EvBTAssigned)
	var clean []bool
	if err := p.Drain(1, time.Minute, func(c bool) { clean = append(clean, c) }); err != nil {
		t.Fatal(err)
	}
	if len(clean) != 0 {
		t.Fatal("drain must wait while BUSY")
	}
	if !p.Draining(1) {
		t.Fatal("Draining(1) = false while BUSY")
	}
	// A second drain on the same satellite is refused while one pends.
	if err := p.Drain(1, time.Minute, nil); err == nil {
		t.Fatal("second Drain must error")
	}
	// Uncordon is refused while the drain owns the cordon.
	if p.Uncordon(1) {
		t.Fatal("Uncordon must refuse during a drain")
	}
	e.Schedule(10*time.Second, func() { p.Apply(s, EvBTSuccess) })
	e.RunUntil(20 * time.Second)
	if len(clean) != 1 || !clean[0] {
		t.Fatalf("done calls = %v, want one clean completion", clean)
	}
	if st := s.State(); st != Down {
		t.Fatalf("state = %v, want DOWN", st)
	}
	// The deadline timer must not fire later (it was cancelled): run the
	// engine dry and confirm done was not called again.
	e.Run()
	if len(clean) != 1 {
		t.Fatalf("done called %d times after drain, want exactly 1", len(clean))
	}
	if e.Pending() != 0 {
		t.Fatalf("%d events still pending: drain timer leaked", e.Pending())
	}
}

func TestDrainDeadlineForcesDemotion(t *testing.T) {
	e, p := newTestPool(t, 2)
	s := p.Get(1)
	p.Apply(s, EvBTAssigned)
	var clean []bool
	if err := p.Drain(1, 30*time.Second, func(c bool) { clean = append(clean, c) }); err != nil {
		t.Fatal(err)
	}
	e.Run()
	if len(clean) != 1 || clean[0] {
		t.Fatalf("done calls = %v, want one forced (clean=false) completion", clean)
	}
	if st := s.State(); st != Down {
		t.Fatalf("state = %v, want DOWN", st)
	}
}

// TestExternalDemotionDuringDrain is the ISSUE 8 regression: a satellite
// demoted by another path (here the FAULT-timeout) while its drain
// deadline is still pending must complete the drain exactly once, must
// not be demoted twice (no spurious DOWN→DOWN transition), and must not
// leak the deadline timer.
func TestExternalDemotionDuringDrain(t *testing.T) {
	e, p := newTestPool(t, 2)
	p.FaultTimeout = time.Minute
	s := p.Get(1)
	p.Apply(s, EvBTAssigned)

	downs := 0
	p.OnChange = func(_ *Satellite, _, to State, _ Health) {
		if to == Down {
			downs++
		}
	}

	var clean []bool
	if err := p.Drain(1, time.Hour, func(c bool) { clean = append(clean, c) }); err != nil {
		t.Fatal(err)
	}
	// The satellite faults mid-drain; the FAULT-timeout then demotes it
	// long before the drain's one-hour deadline.
	e.Schedule(10*time.Second, func() { p.Apply(s, EvHBFailure) })
	e.RunUntil(10 * time.Minute)

	if st := s.State(); st != Down {
		t.Fatalf("state = %v, want DOWN", st)
	}
	if len(clean) != 1 || clean[0] {
		t.Fatalf("done calls = %v, want one unclean completion", clean)
	}
	if downs != 1 {
		t.Fatalf("observed %d transitions to DOWN, want exactly 1 (no double demotion)", downs)
	}
	if p.DrainingCount() != 0 {
		t.Fatal("drain record leaked")
	}
	// Drain deadline (t=1h) must have been cancelled, not left pending.
	if e.Pending() != 0 {
		t.Fatalf("%d events still pending: drain deadline timer leaked", e.Pending())
	}
	e.Run()
	if len(clean) != 1 {
		t.Fatalf("done called %d times, want exactly 1", len(clean))
	}
}

// TestShutdownDuringDrain covers the other external demotion route: a
// direct SHUTDOWN while the drain pends completes it (unclean) without a
// second demotion.
func TestShutdownDuringDrain(t *testing.T) {
	e, p := newTestPool(t, 2)
	s := p.Get(1)
	p.Apply(s, EvBTAssigned)
	var clean []bool
	if err := p.Drain(1, time.Hour, func(c bool) { clean = append(clean, c) }); err != nil {
		t.Fatal(err)
	}
	p.Apply(s, EvShutdown)
	if len(clean) != 1 || clean[0] {
		t.Fatalf("done calls = %v, want one unclean completion", clean)
	}
	if e.Pending() != 0 {
		t.Fatalf("%d events pending: deadline timer leaked", e.Pending())
	}
	e.Run()
	if len(clean) != 1 {
		t.Fatalf("done called %d times, want exactly 1", len(clean))
	}
}

func TestDrainDownSatelliteCompletesWithoutTransition(t *testing.T) {
	_, p := newTestPool(t, 2)
	s := p.Get(1)
	p.Apply(s, EvShutdown)
	calls := 0
	if err := p.Drain(1, time.Minute, func(bool) { calls++ }); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("done calls = %d, want 1", calls)
	}
	if !s.Cordoned() {
		t.Fatal("drained satellite must stay cordoned")
	}
}

func TestPoolReinstate(t *testing.T) {
	_, p := newTestPool(t, 2)
	s := p.Get(1)
	if p.Reinstate(1) {
		t.Fatal("Reinstate of a RUNNING satellite must refuse")
	}
	p.Apply(s, EvShutdown)
	p.Cordon(1)
	transitions := 0
	p.OnChange = func(_ *Satellite, from, to State, _ Health) { transitions++ }
	if !p.Reinstate(1) {
		t.Fatal("Reinstate(1) = false")
	}
	if st := s.State(); st != Unknown {
		t.Fatalf("state = %v, want UNKNOWN", st)
	}
	if s.Cordoned() {
		t.Fatal("Reinstate must uncordon")
	}
	if transitions != 1 {
		t.Fatalf("OnChange fired %d times, want 1 (DOWN→UNKNOWN observed)", transitions)
	}
	if p.Reinstate(99) {
		t.Fatal("Reinstate of unknown ID must refuse")
	}
}
