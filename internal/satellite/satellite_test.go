package satellite

import (
	"errors"
	"testing"
	"time"

	"eslurm/internal/cluster"
	"eslurm/internal/simnet"
)

func TestStateStrings(t *testing.T) {
	want := map[State]string{Unknown: "UNKNOWN", Running: "RUNNING", Busy: "BUSY", Fault: "FAULT", Down: "DOWN"}
	for s, w := range want {
		if s.String() != w {
			t.Errorf("%v.String() = %q, want %q", int(s), s.String(), w)
		}
	}
	if Event(99).String() == "" || State(99).String() == "" {
		t.Error("unknown values must still print")
	}
}

func TestHappyPathLifecycle(t *testing.T) {
	s := &Satellite{ID: 1}
	steps := []struct {
		ev   Event
		want State
	}{
		{EvHBSuccess, Running},
		{EvBTAssigned, Busy},
		{EvBTSuccess, Running},
		{EvBTAssigned, Busy},
		{EvBTAssigned, Busy}, // second concurrent task
		{EvBTSuccess, Busy},  // one still in flight
		{EvBTSuccess, Running},
	}
	for i, st := range steps {
		got, err := s.Transition(st.ev, 0)
		if err != nil {
			t.Fatalf("step %d (%v): %v", i, st.ev, err)
		}
		if got != st.want {
			t.Fatalf("step %d (%v): state = %v, want %v", i, st.ev, got, st.want)
		}
	}
	if s.TasksReceived != 3 {
		t.Errorf("TasksReceived = %d, want 3", s.TasksReceived)
	}
}

func TestBTFailureFaults(t *testing.T) {
	s := &Satellite{ID: 1}
	s.Transition(EvHBSuccess, 0)
	s.Transition(EvBTAssigned, 0)
	st, err := s.Transition(EvBTFailure, 5*time.Minute)
	if err != nil || st != Fault {
		t.Fatalf("BT-failure: state=%v err=%v", st, err)
	}
	if s.FaultSince() != 5*time.Minute {
		t.Errorf("FaultSince = %v", s.FaultSince())
	}
	if s.TasksFailed != 1 {
		t.Errorf("TasksFailed = %d", s.TasksFailed)
	}
	// Recovery via heartbeat.
	st, _ = s.Transition(EvHBSuccess, 6*time.Minute)
	if st != Running {
		t.Errorf("HB-success from FAULT: %v", st)
	}
}

func TestHBFailureFromAnyLiveState(t *testing.T) {
	for _, setup := range [][]Event{
		{},                          // Unknown
		{EvHBSuccess},               // Running
		{EvHBSuccess, EvBTAssigned}, // Busy
	} {
		s := &Satellite{}
		for _, ev := range setup {
			s.Transition(ev, 0)
		}
		st, err := s.Transition(EvHBFailure, 0)
		if err != nil || st != Fault {
			t.Errorf("HB-failure from %v state: %v, %v", setup, st, err)
		}
	}
}

func TestShutdownFromEverywhere(t *testing.T) {
	for _, st0 := range []State{Unknown, Running, Busy, Fault} {
		s := &Satellite{state: st0}
		st, err := s.Transition(EvShutdown, 0)
		if err != nil || st != Down {
			t.Errorf("SHUTDOWN from %v: %v, %v", st0, st, err)
		}
	}
	// Shutdown of a DOWN node is idempotent, not an error.
	s := &Satellite{state: Down}
	if _, err := s.Transition(EvShutdown, 0); err != nil {
		t.Error("shutdown of DOWN node errored")
	}
}

func TestTimeoutOnlyFromFault(t *testing.T) {
	s := &Satellite{state: Fault}
	st, err := s.Transition(EvTimeout, 0)
	if err != nil || st != Down {
		t.Fatalf("TIMEOUT from FAULT: %v, %v", st, err)
	}
	s2 := &Satellite{state: Running}
	if _, err := s2.Transition(EvTimeout, 0); err == nil {
		t.Error("TIMEOUT from RUNNING must be invalid")
	}
	var inv *ErrInvalidTransition
	_, err = s2.Transition(EvTimeout, 0)
	if !errors.As(err, &inv) {
		t.Error("error is not ErrInvalidTransition")
	}
}

func TestDownRequiresReinstate(t *testing.T) {
	s := &Satellite{state: Down}
	if _, err := s.Transition(EvHBSuccess, 0); err == nil {
		t.Error("DOWN must not recover via heartbeat")
	}
	s.Reinstate()
	if s.State() != Unknown {
		t.Errorf("Reinstate -> %v, want UNKNOWN", s.State())
	}
}

func TestLateTaskOutcomeAfterFaultAbsorbed(t *testing.T) {
	s := &Satellite{}
	s.Transition(EvHBSuccess, 0)
	s.Transition(EvBTAssigned, 0)
	s.Transition(EvHBFailure, 0) // fault races the in-flight task
	if _, err := s.Transition(EvBTFailure, 0); err != nil {
		t.Errorf("late BT outcome after FAULT must be absorbed: %v", err)
	}
	if s.State() != Fault {
		t.Errorf("state = %v", s.State())
	}
}

func newPool(n int) (*simnet.Engine, *Pool) {
	e := simnet.NewEngine(9)
	ids := make([]cluster.NodeID, n)
	for i := range ids {
		ids[i] = cluster.NodeID(i + 1)
	}
	return e, NewPool(e, ids)
}

func TestPoolRoundRobinSkipsNonRunning(t *testing.T) {
	e, p := newPool(4)
	_ = e
	for _, s := range p.All() {
		p.Apply(s, EvHBSuccess)
	}
	// Fault satellite 2.
	p.Apply(p.Get(2), EvHBFailure)
	var order []cluster.NodeID
	for i := 0; i < 6; i++ {
		s := p.NextRunning()
		order = append(order, s.ID)
	}
	want := []cluster.NodeID{1, 3, 4, 1, 3, 4}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("round-robin order = %v, want %v", order, want)
		}
	}
}

func TestPoolNextRunningNilWhenEmpty(t *testing.T) {
	_, p := newPool(2)
	if p.NextRunning() != nil {
		t.Error("UNKNOWN satellites must not be selected")
	}
}

func TestSelectRunningDistinct(t *testing.T) {
	_, p := newPool(3)
	for _, s := range p.All() {
		p.Apply(s, EvHBSuccess)
	}
	sel := p.SelectRunning(5)
	if len(sel) != 3 {
		t.Fatalf("selected %d, want 3 (pool size)", len(sel))
	}
	seen := map[cluster.NodeID]bool{}
	for _, s := range sel {
		if seen[s.ID] {
			t.Fatal("duplicate satellite selected")
		}
		seen[s.ID] = true
	}
}

func TestPoolFaultTimeoutDemotesToDown(t *testing.T) {
	e, p := newPool(1)
	s := p.Get(1)
	p.Apply(s, EvHBSuccess)
	p.Apply(s, EvHBFailure)
	e.RunUntil(21 * time.Minute)
	if s.State() != Down {
		t.Fatalf("state after 21 min in FAULT = %v, want DOWN", s.State())
	}
}

func TestPoolFaultTimeoutCancelledByRecovery(t *testing.T) {
	e, p := newPool(1)
	s := p.Get(1)
	p.Apply(s, EvHBSuccess)
	p.Apply(s, EvHBFailure)
	e.Schedule(5*time.Minute, func() { p.Apply(s, EvHBSuccess) })
	e.RunUntil(30 * time.Minute)
	if s.State() != Running {
		t.Fatalf("recovered satellite demoted anyway: %v", s.State())
	}
}

func TestPoolFaultTimeoutTracksLatestFault(t *testing.T) {
	// Recover and re-fault: the first timeout must not fire against the
	// second fault episode prematurely... but the second episode's own
	// timer must.
	e, p := newPool(1)
	s := p.Get(1)
	p.Apply(s, EvHBSuccess)
	p.Apply(s, EvHBFailure) // fault #1 at t=0
	e.Schedule(10*time.Minute, func() { p.Apply(s, EvHBSuccess) })
	e.Schedule(15*time.Minute, func() { p.Apply(s, EvHBFailure) }) // fault #2
	e.RunUntil(25 * time.Minute)                                   // fault #1 timer fires at 20m; episode differs
	if s.State() != Fault {
		t.Fatalf("state at 25m = %v, want FAULT (episode 2 only 10m old)", s.State())
	}
	e.RunUntil(36 * time.Minute) // episode-2 timer fires at 35m
	if s.State() != Down {
		t.Fatalf("state at 36m = %v, want DOWN", s.State())
	}
}

func TestPoolCounts(t *testing.T) {
	_, p := newPool(5)
	for i, s := range p.All() {
		if i < 3 {
			p.Apply(s, EvHBSuccess)
		}
	}
	c := p.Counts()
	if c[Running] != 3 || c[Unknown] != 2 {
		t.Errorf("counts = %v", c)
	}
}
