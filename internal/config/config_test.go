package config

import (
	"strings"
	"testing"
	"time"
)

const sample = `
# ESlurm configuration for the simulated NG-Tianhe partition.
ClusterName=ng-tianhe
ControlMachine=mgmt01

# --- ESlurm additions -------------------------------------------------
SatelliteNodes=sat[01-20]
TreeWidth=32
ReallocLimit=2
HeartbeatInterval=150s

EstimatorWindow=700
EstimatorRefresh=15h
EstimatorK=15
EstimatorAlpha=1.05

# --- standard records --------------------------------------------------
NodeName=cn[0001-1024] CPUs=96 RealMemory=196608 State=UNKNOWN
NodeName=gpu[01-08] CPUs=48 RealMemory=393216
PartitionName=batch Nodes=cn[0001-1024] MaxTime=7200 Default=YES
PartitionName=gpu Nodes=gpu[01-08] MaxTime=INFINITE

# unknown keys are preserved, like slurm.conf plugin options
SchedulerType=sched/backfill
`

func TestParseSample(t *testing.T) {
	cfg, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.ClusterName != "ng-tianhe" || cfg.ControlMachine != "mgmt01" {
		t.Errorf("header wrong: %+v", cfg)
	}
	if len(cfg.SatelliteNodes) != 20 || cfg.SatelliteNodes[0] != "sat01" {
		t.Errorf("satellites = %v", cfg.SatelliteNodes)
	}
	if cfg.TreeWidth != 32 || cfg.ReallocLimit != 2 {
		t.Errorf("comm params wrong: %+v", cfg)
	}
	if cfg.HeartbeatInterval != 150*time.Second {
		t.Errorf("heartbeat = %v", cfg.HeartbeatInterval)
	}
	if cfg.EstimatorWindow != 700 || cfg.EstimatorRefresh != 15*time.Hour ||
		cfg.EstimatorK != 15 || cfg.EstimatorAlpha != 1.05 {
		t.Errorf("estimator params wrong: %+v", cfg)
	}
	if cfg.ComputeCount() != 1032 {
		t.Errorf("ComputeCount = %d, want 1032", cfg.ComputeCount())
	}
	if len(cfg.Nodes) != 2 || cfg.Nodes[0].CPUs != 96 || cfg.Nodes[1].RealMemoryMB != 393216 {
		t.Errorf("node defs wrong: %+v", cfg.Nodes)
	}
	if len(cfg.Partitions) != 2 {
		t.Fatalf("partitions = %d", len(cfg.Partitions))
	}
	batch := cfg.Partitions[0]
	if batch.Name != "batch" || !batch.Default || batch.MaxTime != 7200*time.Minute {
		t.Errorf("batch partition wrong: %+v", batch)
	}
	if cfg.Partitions[1].MaxTime != 0 {
		t.Error("INFINITE MaxTime must map to 0")
	}
	if cfg.Extra["schedulertype"] != "sched/backfill" {
		t.Errorf("extra keys not preserved: %v", cfg.Extra)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"NodeName=cn[3-1] CPUs=4",         // bad hostlist
		"TreeWidth=abc",                   // bad int
		"HeartbeatInterval=xyz",           // bad duration
		"ClusterName=a b=2",               // extra fields on scalar
		"NodeName=cn1 Bogus=1",            // unknown node attribute
		"PartitionName=p Nodes=cn1 Q=1",   // unknown partition attribute
		"PartitionName=p MaxTime=forever", // bad MaxTime
		"CPUs=4 NodeName=",                // malformed
		"justtext",                        // not key=value
	}
	for _, c := range cases {
		if _, err := Parse(strings.NewReader(c)); err == nil {
			t.Errorf("Parse(%q) did not fail", c)
		}
	}
}

func TestParseEmptyAndComments(t *testing.T) {
	cfg, err := Parse(strings.NewReader("\n# only comments\n   \n"))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.ComputeCount() != 0 {
		t.Error("empty config has nodes")
	}
}

func TestCoreConfigMapping(t *testing.T) {
	cfg, err := Parse(strings.NewReader("TreeWidth=16\nReallocLimit=3\nHeartbeatInterval=2m"))
	if err != nil {
		t.Fatal(err)
	}
	cc := cfg.CoreConfig()
	if cc.TreeWidth != 16 || cc.ReallocLimit != 3 || cc.HeartbeatInterval != 2*time.Minute {
		t.Errorf("core mapping wrong: %+v", cc)
	}
	// Unset values keep core defaults.
	if cc.JobLoadMsgBytes == 0 || cc.TaskTimeout == 0 {
		t.Error("defaults lost in mapping")
	}
}

func TestFrameworkConfigMapping(t *testing.T) {
	cfg, err := Parse(strings.NewReader("EstimatorWindow=350\nEstimatorAlpha=1.07"))
	if err != nil {
		t.Fatal(err)
	}
	fc := cfg.FrameworkConfig()
	if fc.InterestWindow != 350 || fc.Alpha != 1.07 {
		t.Errorf("framework mapping wrong: %+v", fc)
	}
}

func TestBareMinutesDuration(t *testing.T) {
	cfg, err := Parse(strings.NewReader("HeartbeatInterval=5"))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.HeartbeatInterval != 5*time.Minute {
		t.Errorf("bare minutes = %v", cfg.HeartbeatInterval)
	}
}
