// Package config parses ESlurm configuration files. The paper's artifact
// installs ESlurm exactly like Slurm — "its installation steps are
// basically the same as Slurm, only a few configuration items need to be
// added to the configuration file" — so the format is slurm.conf's
// key=value lines (with Slurm's one-line NodeName/PartitionName records)
// plus the ESlurm additions: SatelliteNodes, TreeWidth, ReallocLimit and
// the runtime-estimation parameters of Section V-A.
//
// Determinism: parsing is pure — no simulation state, no RNG, no clocks —
// so this package sits outside the engine's same-seed ⇒ same-trace
// contract and cannot perturb it.
package config

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"eslurm/internal/core"
	"eslurm/internal/estimate"
	"eslurm/internal/hostlist"
)

// NodeDef is one NodeName record.
type NodeDef struct {
	// Names is the expanded host list.
	Names []string
	CPUs  int
	// RealMemoryMB follows slurm.conf units.
	RealMemoryMB int
}

// PartitionDef is one PartitionName record.
type PartitionDef struct {
	Name    string
	Nodes   []string
	MaxTime time.Duration
	Default bool
}

// Config is a parsed configuration.
type Config struct {
	ClusterName    string
	ControlMachine string
	// SatelliteNodes is the ESlurm addition: hosts running the satellite
	// relay daemon (m in Eq. 1).
	SatelliteNodes []string
	Nodes          []NodeDef
	Partitions     []PartitionDef

	// ESlurm communication parameters.
	TreeWidth         int
	ReallocLimit      int
	HeartbeatInterval time.Duration

	// Runtime-estimation parameters (Section V-A's "configuration
	// interface": interest window and refresh period; K and alpha are
	// admin-tunable too).
	EstimatorWindow  int
	EstimatorRefresh time.Duration
	EstimatorK       int
	EstimatorAlpha   float64

	// Reconciler parameters (declarative cluster spec): the desired
	// satellite count, replica bounds, administratively cordoned satellite
	// hosts, and the reconcile-loop cadence / graceful-drain deadline.
	SatelliteTarget    int
	SatelliteMin       int
	SatelliteMax       int
	CordonedSatellites []string
	ReconcileInterval  time.Duration
	DrainDeadline      time.Duration

	// Extra holds unrecognized keys verbatim (forward compatibility, as
	// slurm.conf tolerates plugin-specific options).
	Extra map[string]string
}

// ComputeCount returns the total compute-node count across NodeName
// records.
func (c *Config) ComputeCount() int {
	n := 0
	for _, d := range c.Nodes {
		n += len(d.Names)
	}
	return n
}

// CoreConfig maps the parsed values onto the master-daemon configuration,
// with core defaults for everything unset.
func (c *Config) CoreConfig() core.Config {
	cfg := core.DefaultConfig()
	if c.TreeWidth > 0 {
		cfg.TreeWidth = c.TreeWidth
	}
	if c.ReallocLimit > 0 {
		cfg.ReallocLimit = c.ReallocLimit
	}
	if c.HeartbeatInterval > 0 {
		cfg.HeartbeatInterval = c.HeartbeatInterval
	}
	return cfg
}

// FrameworkConfig maps the estimator keys onto the framework
// configuration.
func (c *Config) FrameworkConfig() estimate.FrameworkConfig {
	return estimate.FrameworkConfig{
		InterestWindow: c.EstimatorWindow,
		RefreshEvery:   c.EstimatorRefresh,
		K:              c.EstimatorK,
		Alpha:          c.EstimatorAlpha,
	}
}

// Parse reads a configuration file.
func Parse(r io.Reader) (*Config, error) {
	cfg := &Config{Extra: map[string]string{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if line == "" {
			continue
		}
		fields, err := splitFields(line)
		if err != nil {
			return nil, fmt.Errorf("config line %d: %v", lineNo, err)
		}
		key := strings.ToLower(fields[0].key)
		switch key {
		case "nodename":
			def, err := parseNodeDef(fields)
			if err != nil {
				return nil, fmt.Errorf("config line %d: %v", lineNo, err)
			}
			cfg.Nodes = append(cfg.Nodes, def)
		case "partitionname":
			def, err := parsePartitionDef(fields)
			if err != nil {
				return nil, fmt.Errorf("config line %d: %v", lineNo, err)
			}
			cfg.Partitions = append(cfg.Partitions, def)
		default:
			if len(fields) != 1 {
				return nil, fmt.Errorf("config line %d: unexpected extra fields after %s", lineNo, fields[0].key)
			}
			if err := cfg.setScalar(key, fields[0].value); err != nil {
				return nil, fmt.Errorf("config line %d: %v", lineNo, err)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return cfg, nil
}

type field struct{ key, value string }

// splitFields breaks "A=1 B=x[1-3] C=y" into key/value pairs; values may
// contain brackets but not spaces (as in slurm.conf).
func splitFields(line string) ([]field, error) {
	var out []field
	for _, tok := range strings.Fields(line) {
		i := strings.IndexByte(tok, '=')
		if i <= 0 {
			return nil, fmt.Errorf("malformed token %q (want Key=Value)", tok)
		}
		out = append(out, field{key: tok[:i], value: tok[i+1:]})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty line")
	}
	return out, nil
}

func (c *Config) setScalar(key, value string) error {
	switch key {
	case "clustername":
		c.ClusterName = value
	case "controlmachine", "slurmctldhost":
		c.ControlMachine = value
	case "satellitenodes":
		hosts, err := hostlist.Expand(value)
		if err != nil {
			return err
		}
		c.SatelliteNodes = hosts
	case "treewidth":
		return parseInt(value, &c.TreeWidth)
	case "realloclimit":
		return parseInt(value, &c.ReallocLimit)
	case "heartbeatinterval":
		return parseDuration(value, &c.HeartbeatInterval)
	case "satellitetarget":
		return parseInt(value, &c.SatelliteTarget)
	case "satellitemin":
		return parseInt(value, &c.SatelliteMin)
	case "satellitemax":
		return parseInt(value, &c.SatelliteMax)
	case "cordonedsatellites":
		hosts, err := hostlist.Expand(value)
		if err != nil {
			return err
		}
		c.CordonedSatellites = hosts
	case "reconcileinterval":
		return parseDuration(value, &c.ReconcileInterval)
	case "draindeadline":
		return parseDuration(value, &c.DrainDeadline)
	case "estimatorwindow":
		return parseInt(value, &c.EstimatorWindow)
	case "estimatorrefresh":
		return parseDuration(value, &c.EstimatorRefresh)
	case "estimatork":
		return parseInt(value, &c.EstimatorK)
	case "estimatoralpha":
		f, err := strconv.ParseFloat(value, 64)
		if err != nil {
			return fmt.Errorf("bad float %q", value)
		}
		c.EstimatorAlpha = f
	default:
		c.Extra[key] = value
	}
	return nil
}

func parseInt(v string, dst *int) error {
	n, err := strconv.Atoi(v)
	if err != nil {
		return fmt.Errorf("bad integer %q", v)
	}
	*dst = n
	return nil
}

// parseDuration accepts Go durations ("15m") and Slurm-style bare minutes
// ("15").
func parseDuration(v string, dst *time.Duration) error {
	if n, err := strconv.Atoi(v); err == nil {
		*dst = time.Duration(n) * time.Minute
		return nil
	}
	d, err := time.ParseDuration(v)
	if err != nil {
		return fmt.Errorf("bad duration %q", v)
	}
	*dst = d
	return nil
}

func parseNodeDef(fields []field) (NodeDef, error) {
	def := NodeDef{}
	for _, f := range fields {
		switch strings.ToLower(f.key) {
		case "nodename":
			hosts, err := hostlist.Expand(f.value)
			if err != nil {
				return def, err
			}
			def.Names = hosts
		case "cpus":
			if err := parseInt(f.value, &def.CPUs); err != nil {
				return def, err
			}
		case "realmemory":
			if err := parseInt(f.value, &def.RealMemoryMB); err != nil {
				return def, err
			}
		case "state":
			// Accepted and ignored (the simulator owns node state).
		default:
			return def, fmt.Errorf("unknown NodeName attribute %q", f.key)
		}
	}
	if len(def.Names) == 0 {
		return def, fmt.Errorf("NodeName record without names")
	}
	return def, nil
}

func parsePartitionDef(fields []field) (PartitionDef, error) {
	def := PartitionDef{}
	for _, f := range fields {
		switch strings.ToLower(f.key) {
		case "partitionname":
			def.Name = f.value
		case "nodes":
			hosts, err := hostlist.Expand(f.value)
			if err != nil {
				return def, err
			}
			def.Nodes = hosts
		case "maxtime":
			if strings.EqualFold(f.value, "INFINITE") {
				def.MaxTime = 0
				continue
			}
			if err := parseDuration(f.value, &def.MaxTime); err != nil {
				return def, err
			}
		case "default":
			def.Default = strings.EqualFold(f.value, "YES")
		default:
			return def, fmt.Errorf("unknown PartitionName attribute %q", f.key)
		}
	}
	if def.Name == "" {
		return def, fmt.Errorf("PartitionName record without a name")
	}
	return def, nil
}
