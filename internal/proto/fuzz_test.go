package proto

import "testing"

// FuzzUnmarshal feeds arbitrary bytes to every decoder: none may panic,
// and re-encoding a successfully decoded message must decode again to the
// same wire form.
func FuzzUnmarshal(f *testing.F) {
	f.Add([]byte{})
	f.Add((&TaskAssign{TaskID: 1, Nodes: []uint32{1, 2}}).Marshal())
	f.Add((&AggregateReply{TaskID: 2, OK: []uint32{3}}).Marshal())
	f.Add((&JobLaunch{JobID: 3, Script: "/x"}).Marshal())
	f.Add((&Heartbeat{Nonce: 4}).Marshal())
	f.Fuzz(func(t *testing.T, b []byte) {
		var ta TaskAssign
		if ta.Unmarshal(b) == nil {
			again := ta.Marshal()
			var ta2 TaskAssign
			if err := ta2.Unmarshal(again); err != nil {
				t.Fatalf("re-decode failed: %v", err)
			}
		}
		var ar AggregateReply
		if ar.Unmarshal(b) == nil {
			var ar2 AggregateReply
			if err := ar2.Unmarshal(ar.Marshal()); err != nil {
				t.Fatalf("re-decode failed: %v", err)
			}
		}
		var jl JobLaunch
		if jl.Unmarshal(b) == nil {
			var jl2 JobLaunch
			if err := jl2.Unmarshal(jl.Marshal()); err != nil {
				t.Fatalf("re-decode failed: %v", err)
			}
		}
		var hb Heartbeat
		_ = hb.Unmarshal(b)
	})
}
