// Package proto defines the ESlurm control-plane wire protocol: the
// messages exchanged between the master, satellite and compute daemons
// (task assignment with sub-nodelists, aggregated replies, job launch and
// termination, heartbeats), with a compact binary encoding.
//
// The simulator transfers message *sizes*, not bytes, so the encoder's
// main consumers are (a) the size model — core computes task and reply
// sizes from these encodings rather than hand-picked constants — and
// (b) the satellite aggregation logic, which merges per-node status
// replies exactly as the production daemon would.
//
// Determinism: encoding and size computation are pure functions of their
// inputs — byte-stable output, no clocks, no RNG — so the wire model
// cannot perturb the same-seed ⇒ same-trace contract.
package proto

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Version is the protocol version carried in every header.
const Version = 1

// MsgType discriminates control-plane messages.
type MsgType uint8

const (
	// MsgTaskAssign carries a broadcast sub-task from master to satellite.
	MsgTaskAssign MsgType = iota + 1
	// MsgAggregateReply carries a satellite's merged outcome to the master.
	MsgAggregateReply
	// MsgJobLaunch starts job processes on a compute node.
	MsgJobLaunch
	// MsgJobTerminate tears a job down on a compute node.
	MsgJobTerminate
	// MsgHeartbeat probes a daemon.
	MsgHeartbeat
	// MsgHeartbeatReply answers a probe with node status.
	MsgHeartbeatReply
)

func (t MsgType) String() string {
	switch t {
	case MsgTaskAssign:
		return "TaskAssign"
	case MsgAggregateReply:
		return "AggregateReply"
	case MsgJobLaunch:
		return "JobLaunch"
	case MsgJobTerminate:
		return "JobTerminate"
	case MsgHeartbeat:
		return "Heartbeat"
	case MsgHeartbeatReply:
		return "HeartbeatReply"
	default:
		return fmt.Sprintf("MsgType(%d)", uint8(t))
	}
}

// Errors returned by decoding.
var (
	ErrTruncated  = errors.New("proto: truncated message")
	ErrBadVersion = errors.New("proto: unsupported version")
	ErrBadType    = errors.New("proto: unexpected message type")
)

// headerSize is version(1) + type(1) + body length(4).
const headerSize = 6

func appendHeader(b []byte, t MsgType, bodyLen int) []byte {
	b = append(b, Version, byte(t))
	return binary.BigEndian.AppendUint32(b, uint32(bodyLen))
}

func checkHeader(b []byte, want MsgType) ([]byte, error) {
	if len(b) < headerSize {
		return nil, ErrTruncated
	}
	if b[0] != Version {
		return nil, ErrBadVersion
	}
	if MsgType(b[1]) != want {
		return nil, ErrBadType
	}
	n := binary.BigEndian.Uint32(b[2:6])
	body := b[headerSize:]
	if uint32(len(body)) < n {
		return nil, ErrTruncated
	}
	return body[:n], nil
}

// TaskAssign is the master→satellite broadcast sub-task (Section III-B):
// the payload to relay plus the sub-nodelist the satellite builds its
// FP-Tree over.
type TaskAssign struct {
	TaskID  uint64
	Payload []byte
	Nodes   []uint32
}

// Size returns the encoded size without encoding.
func (m *TaskAssign) Size() int {
	return headerSize + 8 + 4 + len(m.Payload) + 4 + 4*len(m.Nodes)
}

// Marshal encodes the message.
func (m *TaskAssign) Marshal() []byte {
	b := make([]byte, 0, m.Size())
	b = appendHeader(b, MsgTaskAssign, m.Size()-headerSize)
	b = binary.BigEndian.AppendUint64(b, m.TaskID)
	b = binary.BigEndian.AppendUint32(b, uint32(len(m.Payload)))
	b = append(b, m.Payload...)
	b = binary.BigEndian.AppendUint32(b, uint32(len(m.Nodes)))
	for _, n := range m.Nodes {
		b = binary.BigEndian.AppendUint32(b, n)
	}
	return b
}

// Unmarshal decodes the message.
func (m *TaskAssign) Unmarshal(b []byte) error {
	body, err := checkHeader(b, MsgTaskAssign)
	if err != nil {
		return err
	}
	if len(body) < 12 {
		return ErrTruncated
	}
	m.TaskID = binary.BigEndian.Uint64(body)
	body = body[8:]
	plen := binary.BigEndian.Uint32(body)
	body = body[4:]
	// 64-bit arithmetic: plen+4 must not wrap around uint32.
	if uint64(len(body)) < uint64(plen)+4 {
		return ErrTruncated
	}
	m.Payload = append(m.Payload[:0], body[:plen]...)
	body = body[plen:]
	count := binary.BigEndian.Uint32(body)
	body = body[4:]
	if uint64(len(body)) < uint64(count)*4 {
		return ErrTruncated
	}
	m.Nodes = m.Nodes[:0]
	for i := uint32(0); i < count; i++ {
		m.Nodes = append(m.Nodes, binary.BigEndian.Uint32(body[i*4:]))
	}
	return nil
}

// NodeStatus is one node's outcome inside an aggregated reply.
type NodeStatus uint8

const (
	// StatusOK: the node received and acknowledged the payload.
	StatusOK NodeStatus = iota
	// StatusUnreachable: delivery failed after all retries.
	StatusUnreachable
)

// AggregateReply is the satellite→master merged outcome (the satellite's
// "initial data aggregation" role): a status per node of the sub-task,
// run-length friendly because failures are rare.
type AggregateReply struct {
	TaskID uint64
	// OK and Unreachable partition the sub-task's nodes.
	OK          []uint32
	Unreachable []uint32
}

// Size returns the encoded size without encoding.
func (m *AggregateReply) Size() int {
	return headerSize + 8 + 4 + 4*len(m.OK) + 4 + 4*len(m.Unreachable)
}

// Marshal encodes the message.
func (m *AggregateReply) Marshal() []byte {
	b := make([]byte, 0, m.Size())
	b = appendHeader(b, MsgAggregateReply, m.Size()-headerSize)
	b = binary.BigEndian.AppendUint64(b, m.TaskID)
	b = binary.BigEndian.AppendUint32(b, uint32(len(m.OK)))
	for _, n := range m.OK {
		b = binary.BigEndian.AppendUint32(b, n)
	}
	b = binary.BigEndian.AppendUint32(b, uint32(len(m.Unreachable)))
	for _, n := range m.Unreachable {
		b = binary.BigEndian.AppendUint32(b, n)
	}
	return b
}

// Unmarshal decodes the message.
func (m *AggregateReply) Unmarshal(b []byte) error {
	body, err := checkHeader(b, MsgAggregateReply)
	if err != nil {
		return err
	}
	if len(body) < 12 {
		return ErrTruncated
	}
	m.TaskID = binary.BigEndian.Uint64(body)
	body = body[8:]
	var errOut error
	m.OK, body, errOut = readU32Slice(body, m.OK)
	if errOut != nil {
		return errOut
	}
	m.Unreachable, _, errOut = readU32Slice(body, m.Unreachable)
	return errOut
}

func readU32Slice(body []byte, dst []uint32) ([]uint32, []byte, error) {
	if len(body) < 4 {
		return nil, nil, ErrTruncated
	}
	count := binary.BigEndian.Uint32(body)
	body = body[4:]
	if uint64(len(body)) < uint64(count)*4 {
		return nil, nil, ErrTruncated
	}
	dst = dst[:0]
	for i := uint32(0); i < count; i++ {
		dst = append(dst, binary.BigEndian.Uint32(body[i*4:]))
	}
	return dst, body[count*4:], nil
}

// Merge folds another reply for the same logical broadcast into r
// (satellites merge their relay children's partial replies before
// answering the master).
func (r *AggregateReply) Merge(other *AggregateReply) {
	r.OK = append(r.OK, other.OK...)
	r.Unreachable = append(r.Unreachable, other.Unreachable...)
}

// JobLaunch starts a job's processes on a compute node.
type JobLaunch struct {
	JobID     uint64
	UserID    uint32
	Script    string
	TimeLimit uint32 // seconds; 0 = none
	Nodes     []uint32
}

// Size returns the encoded size without encoding.
func (m *JobLaunch) Size() int {
	return headerSize + 8 + 4 + 4 + len(m.Script) + 4 + 4 + 4*len(m.Nodes)
}

// Marshal encodes the message.
func (m *JobLaunch) Marshal() []byte {
	b := make([]byte, 0, m.Size())
	b = appendHeader(b, MsgJobLaunch, m.Size()-headerSize)
	b = binary.BigEndian.AppendUint64(b, m.JobID)
	b = binary.BigEndian.AppendUint32(b, m.UserID)
	b = binary.BigEndian.AppendUint32(b, uint32(len(m.Script)))
	b = append(b, m.Script...)
	b = binary.BigEndian.AppendUint32(b, m.TimeLimit)
	b = binary.BigEndian.AppendUint32(b, uint32(len(m.Nodes)))
	for _, n := range m.Nodes {
		b = binary.BigEndian.AppendUint32(b, n)
	}
	return b
}

// Unmarshal decodes the message.
func (m *JobLaunch) Unmarshal(b []byte) error {
	body, err := checkHeader(b, MsgJobLaunch)
	if err != nil {
		return err
	}
	if len(body) < 16 {
		return ErrTruncated
	}
	m.JobID = binary.BigEndian.Uint64(body)
	m.UserID = binary.BigEndian.Uint32(body[8:])
	slen := binary.BigEndian.Uint32(body[12:])
	body = body[16:]
	if uint64(len(body)) < uint64(slen)+8 {
		return ErrTruncated
	}
	m.Script = string(body[:slen])
	body = body[slen:]
	m.TimeLimit = binary.BigEndian.Uint32(body)
	body = body[4:]
	var errOut error
	m.Nodes, _, errOut = readU32Slice(body, m.Nodes)
	return errOut
}

// Heartbeat probes a daemon; Nonce is echoed back.
type Heartbeat struct {
	Nonce uint64
}

// Size returns the encoded size without encoding.
func (m *Heartbeat) Size() int { return headerSize + 8 }

// Marshal encodes the message.
func (m *Heartbeat) Marshal() []byte {
	b := make([]byte, 0, m.Size())
	b = appendHeader(b, MsgHeartbeat, 8)
	return binary.BigEndian.AppendUint64(b, m.Nonce)
}

// Unmarshal decodes the message.
func (m *Heartbeat) Unmarshal(b []byte) error {
	body, err := checkHeader(b, MsgHeartbeat)
	if err != nil {
		return err
	}
	if len(body) < 8 {
		return ErrTruncated
	}
	m.Nonce = binary.BigEndian.Uint64(body)
	return nil
}

// HeartbeatReply answers a probe with a compact load report.
type HeartbeatReply struct {
	Nonce     uint64
	LoadMilli uint32 // load average x1000
	FreeMemMB uint32
}

// Size returns the encoded size without encoding.
func (m *HeartbeatReply) Size() int { return headerSize + 16 }

// Marshal encodes the message.
func (m *HeartbeatReply) Marshal() []byte {
	b := make([]byte, 0, m.Size())
	b = appendHeader(b, MsgHeartbeatReply, 16)
	b = binary.BigEndian.AppendUint64(b, m.Nonce)
	b = binary.BigEndian.AppendUint32(b, m.LoadMilli)
	return binary.BigEndian.AppendUint32(b, m.FreeMemMB)
}

// Unmarshal decodes the message.
func (m *HeartbeatReply) Unmarshal(b []byte) error {
	body, err := checkHeader(b, MsgHeartbeatReply)
	if err != nil {
		return err
	}
	if len(body) < 16 {
		return ErrTruncated
	}
	m.Nonce = binary.BigEndian.Uint64(body)
	m.LoadMilli = binary.BigEndian.Uint32(body[8:])
	m.FreeMemMB = binary.BigEndian.Uint32(body[12:])
	return nil
}

// TaskAssignSize is the size-model hook used by the master daemon: the
// encoded size of a task message carrying payloadLen bytes to nodeCount
// nodes.
func TaskAssignSize(nodeCount, payloadLen int) int {
	m := TaskAssign{Payload: make([]byte, 0), Nodes: nil}
	_ = m
	if nodeCount < 0 || payloadLen < 0 || nodeCount > math.MaxInt32 {
		return headerSize
	}
	return headerSize + 8 + 4 + payloadLen + 4 + 4*nodeCount
}

// AggregateReplySize is the size-model hook for a reply covering
// nodeCount nodes of which failed are unreachable.
func AggregateReplySize(nodeCount, failed int) int {
	if failed > nodeCount {
		failed = nodeCount
	}
	return headerSize + 8 + 4 + 4*(nodeCount-failed) + 4 + 4*failed
}
