package proto

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestTaskAssignRoundTrip(t *testing.T) {
	in := TaskAssign{
		TaskID:  42,
		Payload: []byte("launch job 7"),
		Nodes:   []uint32{1, 5, 9, 20480},
	}
	b := in.Marshal()
	if len(b) != in.Size() {
		t.Fatalf("Size() = %d, encoded %d", in.Size(), len(b))
	}
	var out TaskAssign
	if err := out.Unmarshal(b); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip: %+v != %+v", in, out)
	}
}

func TestAggregateReplyRoundTripAndMerge(t *testing.T) {
	a := AggregateReply{TaskID: 7, OK: []uint32{1, 2}, Unreachable: []uint32{3}}
	b := AggregateReply{TaskID: 7, OK: []uint32{4}, Unreachable: nil}
	a.Merge(&b)
	if len(a.OK) != 3 || len(a.Unreachable) != 1 {
		t.Fatalf("merge wrong: %+v", a)
	}
	enc := a.Marshal()
	if len(enc) != a.Size() {
		t.Fatalf("Size mismatch")
	}
	var out AggregateReply
	if err := out.Unmarshal(enc); err != nil {
		t.Fatal(err)
	}
	if out.TaskID != 7 || !reflect.DeepEqual(out.OK, a.OK) || !reflect.DeepEqual(out.Unreachable, a.Unreachable) {
		t.Fatalf("round trip: %+v", out)
	}
}

func TestJobLaunchRoundTrip(t *testing.T) {
	in := JobLaunch{JobID: 99, UserID: 1001, Script: "/home/u/run.sh",
		TimeLimit: 3600, Nodes: []uint32{10, 11, 12}}
	var out JobLaunch
	if err := out.Unmarshal(in.Marshal()); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip: %+v != %+v", in, out)
	}
}

func TestHeartbeatRoundTrip(t *testing.T) {
	in := Heartbeat{Nonce: 0xdeadbeef}
	var out Heartbeat
	if err := out.Unmarshal(in.Marshal()); err != nil {
		t.Fatal(err)
	}
	if out.Nonce != in.Nonce {
		t.Fatal("nonce lost")
	}
	rep := HeartbeatReply{Nonce: out.Nonce, LoadMilli: 1500, FreeMemMB: 4096}
	var got HeartbeatReply
	if err := got.Unmarshal(rep.Marshal()); err != nil {
		t.Fatal(err)
	}
	if got != rep {
		t.Fatalf("reply round trip: %+v", got)
	}
}

func TestDecodeErrors(t *testing.T) {
	ta := TaskAssign{TaskID: 1, Nodes: []uint32{1}}
	good := ta.Marshal()

	var out TaskAssign
	// Truncations at every boundary.
	for cut := 0; cut < len(good); cut++ {
		if err := out.Unmarshal(good[:cut]); err == nil {
			t.Fatalf("truncation at %d not detected", cut)
		}
	}
	// Version mismatch.
	bad := append([]byte(nil), good...)
	bad[0] = 99
	if err := out.Unmarshal(bad); err != ErrBadVersion {
		t.Fatalf("version check: %v", err)
	}
	// Wrong type.
	hb := Heartbeat{Nonce: 1}
	wrong := hb.Marshal()
	if err := out.Unmarshal(wrong); err != ErrBadType {
		t.Fatalf("type check: %v", err)
	}
}

func TestMsgTypeStrings(t *testing.T) {
	for _, mt := range []MsgType{MsgTaskAssign, MsgAggregateReply, MsgJobLaunch,
		MsgJobTerminate, MsgHeartbeat, MsgHeartbeatReply} {
		if mt.String() == "" {
			t.Error("empty name")
		}
	}
	if MsgType(200).String() == "" {
		t.Error("unknown type must print")
	}
}

func TestSizeHooks(t *testing.T) {
	// The analytic size hooks must agree with real encodings.
	ta := TaskAssign{TaskID: 1, Payload: make([]byte, 256), Nodes: make([]uint32, 1000)}
	if got := TaskAssignSize(1000, 256); got != len(ta.Marshal()) {
		t.Errorf("TaskAssignSize = %d, encoded %d", got, len(ta.Marshal()))
	}
	ar := AggregateReply{TaskID: 1, OK: make([]uint32, 990), Unreachable: make([]uint32, 10)}
	if got := AggregateReplySize(1000, 10); got != len(ar.Marshal()) {
		t.Errorf("AggregateReplySize = %d, encoded %d", got, len(ar.Marshal()))
	}
	if AggregateReplySize(10, 20) != AggregateReplySize(10, 10) {
		t.Error("failed > nodeCount not clamped")
	}
}

// Property: TaskAssign round-trips for arbitrary payloads and node lists.
func TestPropertyTaskAssignRoundTrip(t *testing.T) {
	f := func(id uint64, payload []byte, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nodes := make([]uint32, rng.Intn(100))
		for i := range nodes {
			nodes[i] = rng.Uint32()
		}
		in := TaskAssign{TaskID: id, Payload: payload, Nodes: nodes}
		var out TaskAssign
		if err := out.Unmarshal(in.Marshal()); err != nil {
			return false
		}
		if out.TaskID != id || len(out.Nodes) != len(nodes) {
			return false
		}
		for i := range nodes {
			if out.Nodes[i] != nodes[i] {
				return false
			}
		}
		if len(out.Payload) != len(payload) {
			return false
		}
		for i := range payload {
			if out.Payload[i] != payload[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: decoding arbitrary bytes never panics.
func TestPropertyDecodeNeverPanics(t *testing.T) {
	f := func(b []byte) bool {
		var ta TaskAssign
		var ar AggregateReply
		var jl JobLaunch
		var hb Heartbeat
		_ = ta.Unmarshal(b)
		_ = ar.Unmarshal(b)
		_ = jl.Unmarshal(b)
		_ = hb.Unmarshal(b)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func BenchmarkTaskAssignMarshal2K(b *testing.B) {
	m := TaskAssign{TaskID: 1, Payload: make([]byte, 4096), Nodes: make([]uint32, 2048)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Marshal()
	}
}
