package predict

import (
	"testing"
	"time"

	"eslurm/internal/cluster"
	"eslurm/internal/monitor"
	"eslurm/internal/simnet"
)

func TestNull(t *testing.T) {
	var p Null
	if p.Predicted(3) || p.PredictedCount() != 0 {
		t.Error("Null predictor must predict nothing")
	}
}

func TestStatic(t *testing.T) {
	p := Static{5: true}
	if !p.Predicted(5) || p.Predicted(6) {
		t.Error("Static membership wrong")
	}
	if p.PredictedCount() != 1 {
		t.Error("count wrong")
	}
}

func TestOracle(t *testing.T) {
	e := simnet.NewEngine(1)
	c := cluster.New(e, cluster.Config{Computes: 10})
	p := Oracle{Cluster: c}
	id := c.Computes()[3]
	if p.Predicted(id) {
		t.Error("healthy node predicted")
	}
	c.Fail(id)
	if !p.Predicted(id) {
		t.Error("failed node not predicted")
	}
	if p.PredictedCount() != 1 {
		t.Error("count wrong")
	}
}

func TestRandomRate(t *testing.T) {
	e := simnet.NewEngine(2)
	p := Random{Rate: 0.3, Rng: e.Rand("rnd")}
	hits := 0
	for i := 0; i < 10000; i++ {
		if p.Predicted(0) {
			hits++
		}
	}
	frac := float64(hits) / 10000
	if frac < 0.27 || frac > 0.33 {
		t.Errorf("random rate = %.3f, want ~0.3", frac)
	}
	if p.PredictedCount() != -1 {
		t.Error("random predictor count must be -1 (unknown)")
	}
}

func TestAlertDrivenLifecycle(t *testing.T) {
	e := simnet.NewEngine(3)
	c := cluster.New(e, cluster.Config{Computes: 100})
	sub := monitor.New(c, monitor.Config{DetectionProb: 1.0})
	p := NewAlertDriven(e, sub, 30*time.Minute)

	node := c.Computes()[7]
	sub.NoticeImpendingFailure(node, time.Hour)
	e.RunUntil(time.Hour + time.Minute)

	if !p.Predicted(node) {
		t.Fatal("node with live alert not predicted")
	}
	if p.AlertsSeen() < 1 {
		t.Error("no alerts consumed")
	}
	if p.PredictedCount() != 1 {
		t.Errorf("PredictedCount = %d", p.PredictedCount())
	}
	// After TTL with no further alerts the prediction expires.
	e.RunUntil(2 * time.Hour)
	if p.Predicted(node) {
		t.Error("prediction did not expire after TTL")
	}
	if p.PredictedCount() != 0 {
		t.Errorf("PredictedCount after expiry = %d", p.PredictedCount())
	}
}

func TestAlertDrivenPreFailurePrediction(t *testing.T) {
	// The whole point of FP-Tree: the node is predicted BEFORE it fails.
	e := simnet.NewEngine(4)
	c := cluster.New(e, cluster.Config{Computes: 50})
	sub := monitor.New(c, monitor.Config{DetectionProb: 1.0, LeadTime: 10 * time.Minute})
	p := NewAlertDriven(e, sub, time.Hour)
	node := c.Computes()[0]
	failAt := 2 * time.Hour
	sub.NoticeImpendingFailure(node, failAt)
	c.ScheduleFailure(node, failAt, 0)
	// Check 1 minute before the failure.
	e.RunUntil(failAt - time.Minute)
	if c.Node(node).Failed() {
		t.Fatal("node failed too early")
	}
	if !p.Predicted(node) {
		t.Fatal("node not predicted before failure despite critical alert")
	}
}
