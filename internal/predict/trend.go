package predict

import (
	"time"

	"eslurm/internal/cluster"
	"eslurm/internal/monitor"
	"eslurm/internal/simnet"
)

// Trend is the "more advanced technique" slot of the plugin interface
// (Section IV-C): instead of tripping on any alert like the default
// over-predicting plugin, it requires evidence to accumulate — either one
// critical/failure alert, or several warnings within a sliding window —
// before marking a node. Under a noisy monitoring network this trades a
// little recall for far fewer false placements, keeping healthy nodes in
// interior (relay) positions where they improve tree fan-out.
type Trend struct {
	engine *simnet.Engine
	ttl    time.Duration
	window time.Duration
	// warnThreshold is the number of warnings within the window that
	// together count as a prediction.
	warnThreshold int

	predicted map[cluster.NodeID]time.Duration // expiry
	warnings  map[cluster.NodeID][]time.Duration
	alerts    int
}

// TrendConfig parameterizes the Trend predictor. Zero values take
// defaults: TTL 30 min, window 20 min, threshold 3 warnings.
type TrendConfig struct {
	TTL           time.Duration
	Window        time.Duration
	WarnThreshold int
}

// NewTrend subscribes to the monitoring subsystem and returns the
// predictor.
func NewTrend(e *simnet.Engine, sub *monitor.Subsystem, cfg TrendConfig) *Trend {
	if cfg.TTL == 0 {
		cfg.TTL = 30 * time.Minute
	}
	if cfg.Window == 0 {
		cfg.Window = 20 * time.Minute
	}
	if cfg.WarnThreshold == 0 {
		cfg.WarnThreshold = 3
	}
	p := &Trend{
		engine:        e,
		ttl:           cfg.TTL,
		window:        cfg.Window,
		warnThreshold: cfg.WarnThreshold,
		predicted:     make(map[cluster.NodeID]time.Duration),
		warnings:      make(map[cluster.NodeID][]time.Duration),
	}
	sub.Subscribe(p.consume)
	return p
}

func (p *Trend) consume(a monitor.Alert) {
	p.alerts++
	now := p.engine.Now()
	switch a.Severity {
	case monitor.SevCritical, monitor.SevFailure:
		p.predicted[a.Node] = now + p.ttl
	case monitor.SevWarning:
		// Slide the window and count.
		w := p.warnings[a.Node]
		w = append(w, now)
		keep := w[:0]
		for _, t := range w {
			if now-t <= p.window {
				keep = append(keep, t)
			}
		}
		p.warnings[a.Node] = keep
		if len(keep) >= p.warnThreshold {
			p.predicted[a.Node] = now + p.ttl
		}
	}
}

// Predicted implements Predictor.
func (p *Trend) Predicted(id cluster.NodeID) bool {
	exp, ok := p.predicted[id]
	if !ok {
		return false
	}
	if p.engine.Now() > exp {
		delete(p.predicted, id)
		return false
	}
	return true
}

// PredictedCount implements Predictor, pruning expired entries.
func (p *Trend) PredictedCount() int {
	now := p.engine.Now()
	for id, exp := range p.predicted {
		if now > exp {
			delete(p.predicted, id)
		}
	}
	return len(p.predicted)
}

// AlertsSeen returns the total alerts consumed.
func (p *Trend) AlertsSeen() int { return p.alerts }
