// Package predict defines the failure-prediction plugin interface of
// Section IV-C and its implementations.
//
// The paper implements failure-node prediction "as a plugin" so more
// advanced techniques can be integrated; the default Tianhe plugin simply
// marks a node as predicted-failed once any alert arrives from the
// monitoring subsystem ("the principle of over-prediction" — a wrong
// prediction only demotes a healthy node to a leaf slot, it never affects
// the node's state or performance).
//
// Determinism: predictors react only to the monitor's alert stream and
// the engine's virtual clock (Random takes an explicit seeded Rand), so
// the predicted set evolves identically on every same-seed replay.
package predict

import (
	"math/rand"
	"time"

	"eslurm/internal/cluster"
	"eslurm/internal/monitor"
	"eslurm/internal/obs"
	"eslurm/internal/simnet"
)

// Predictor is the plugin interface: given a node, report whether it is
// expected to fail. FP-Tree construction calls this once per participant.
type Predictor interface {
	// Predicted reports whether the node is currently expected to fail.
	Predicted(id cluster.NodeID) bool
	// PredictedCount returns the current size of the predicted set (for
	// reporting; implementations without a materialized set may return -1).
	PredictedCount() int
}

// Null never predicts a failure. FP-Tree with a Null predictor degenerates
// to the plain k-ary tree, which is the "w/o FP-Tree" ablation of Fig. 8a.
type Null struct{}

// Predicted always returns false.
func (Null) Predicted(cluster.NodeID) bool { return false }

// PredictedCount is always zero.
func (Null) PredictedCount() int { return 0 }

// Static predicts exactly the nodes in its set. Used in tests and in
// experiments that control the predicted set directly.
type Static map[cluster.NodeID]bool

// Predicted reports set membership.
func (s Static) Predicted(id cluster.NodeID) bool { return s[id] }

// PredictedCount returns the set size.
func (s Static) PredictedCount() int { return len(s) }

// Oracle predicts precisely the nodes that are currently failed — an upper
// bound for ablation studies (perfect detection, zero lead time).
type Oracle struct{ Cluster *cluster.Cluster }

// Predicted reports whether the node is failed right now.
func (o Oracle) Predicted(id cluster.NodeID) bool { return o.Cluster.Node(id).Failed() }

// PredictedCount returns the live failed-node count.
func (o Oracle) PredictedCount() int { return o.Cluster.FailedCount() }

// Random predicts each node independently with probability Rate — a
// baseline showing that uninformed prediction does not help.
type Random struct {
	Rate float64
	Rng  *rand.Rand
}

// Predicted flips a coin per call.
func (r Random) Predicted(cluster.NodeID) bool { return r.Rng.Float64() < r.Rate }

// PredictedCount is unknown for a stateless coin-flip predictor.
func (Random) PredictedCount() int { return -1 }

// AlertDriven is the paper's production predictor: it subscribes to the
// monitoring subsystem and marks a node predicted-failed from the moment
// any alert about it arrives until TTL elapses without further alerts (a
// node that recovered and stays quiet eventually leaves the set).
type AlertDriven struct {
	engine *simnet.Engine
	ttl    time.Duration

	predicted map[cluster.NodeID]time.Duration // node -> expiry
	alerts    int
}

// NewAlertDriven subscribes to sub and returns the predictor. A ttl of 0
// defaults to 30 minutes.
func NewAlertDriven(e *simnet.Engine, sub *monitor.Subsystem, ttl time.Duration) *AlertDriven {
	if ttl == 0 {
		ttl = 30 * time.Minute
	}
	p := &AlertDriven{
		engine:    e,
		ttl:       ttl,
		predicted: make(map[cluster.NodeID]time.Duration),
	}
	alerts := e.Metrics().Counter("predict.alerts")
	sub.Subscribe(func(a monitor.Alert) {
		p.alerts++
		alerts.Inc()
		e.Tracer().Instant("predict.alert", 0, obs.Int("node", int(a.Node)))
		p.predicted[a.Node] = e.Now() + p.ttl
	})
	return p
}

// Predicted reports whether the node has a live (unexpired) alert.
func (p *AlertDriven) Predicted(id cluster.NodeID) bool {
	exp, ok := p.predicted[id]
	if !ok {
		return false
	}
	if p.engine.Now() > exp {
		delete(p.predicted, id)
		return false
	}
	return true
}

// PredictedCount returns the number of live predictions, pruning expired
// entries as a side effect.
func (p *AlertDriven) PredictedCount() int {
	now := p.engine.Now()
	for id, exp := range p.predicted {
		if now > exp {
			delete(p.predicted, id)
		}
	}
	return len(p.predicted)
}

// AlertsSeen returns the total number of alerts consumed.
func (p *AlertDriven) AlertsSeen() int { return p.alerts }
