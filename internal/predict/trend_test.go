package predict

import (
	"testing"
	"time"

	"eslurm/internal/cluster"
	"eslurm/internal/monitor"
	"eslurm/internal/simnet"
)

func trendSetup(seed int64, noise float64) (*simnet.Engine, *cluster.Cluster, *monitor.Subsystem) {
	e := simnet.NewEngine(seed)
	c := cluster.New(e, cluster.Config{Computes: 500})
	sub := monitor.New(c, monitor.Config{DetectionProb: 1.0, FalseAlertsPerNodeDay: noise})
	return e, c, sub
}

func TestTrendCriticalAlertPredictsImmediately(t *testing.T) {
	e, c, sub := trendSetup(1, 0)
	p := NewTrend(e, sub, TrendConfig{})
	node := c.Computes()[3]
	sub.NoticeImpendingFailure(node, time.Hour)
	e.RunUntil(59 * time.Minute)
	if !p.Predicted(node) {
		t.Fatal("critical alert did not predict")
	}
}

func TestTrendIgnoresSparseWarnings(t *testing.T) {
	// One spurious warning per node per day: the burst threshold is never
	// reached, so nothing is predicted.
	e, c, sub := trendSetup(2, 1.0)
	p := NewTrend(e, sub, TrendConfig{})
	e.RunUntil(24 * time.Hour)
	if n := p.PredictedCount(); n != 0 {
		t.Fatalf("sparse noise produced %d predictions", n)
	}
	if p.AlertsSeen() < 300 {
		t.Fatalf("noise generator inactive: %d alerts", p.AlertsSeen())
	}
	// The naive over-predicting plugin marks hundreds of healthy nodes on
	// the same stream — the precision gap Trend exists to close.
	e2, _, sub2 := trendSetup(2, 1.0)
	naive := NewAlertDriven(e2, sub2, 0)
	e2.RunUntil(24 * time.Hour)
	// With a 30 min TTL, ~10 of the ~500 daily false alerts are live at
	// any instant — each one a healthy node wrongly demoted to a leaf.
	if naive.PredictedCount() < 5 {
		t.Fatalf("naive plugin predicted only %d (expected standing false positives)", naive.PredictedCount())
	}
	_ = c
}

func TestTrendWarningBurstPredicts(t *testing.T) {
	e, c, sub := trendSetup(3, 0)
	p := NewTrend(e, sub, TrendConfig{Window: 10 * time.Minute, WarnThreshold: 3})
	node := c.Computes()[7]
	// Synthesize a warning burst through the subsystem's own emit path by
	// scheduling NoticeImpendingFailure far out (warnings only come from
	// noise) — instead drive consume directly via a private-channel test:
	// warnings are delivered through Subscribe, so emit warnings by using
	// a second subsystem with high noise focused in time is flaky; call
	// the consume path via the public Subscribe callback contract.
	for i := 0; i < 3; i++ {
		at := time.Duration(i) * 2 * time.Minute
		i := i
		e.Schedule(at, func() {
			_ = i
			p.consume(monitor.Alert{Node: node, Severity: monitor.SevWarning, At: e.Now()})
		})
	}
	e.RunUntil(10 * time.Minute)
	if !p.Predicted(node) {
		t.Fatal("warning burst did not predict")
	}
}

func TestTrendWindowSlides(t *testing.T) {
	e, c, sub := trendSetup(4, 0)
	_ = sub
	p := NewTrend(e, sub, TrendConfig{Window: 5 * time.Minute, WarnThreshold: 3})
	node := c.Computes()[0]
	// Three warnings spread over 30 minutes never co-occur in one window.
	for i := 0; i < 3; i++ {
		at := time.Duration(i) * 15 * time.Minute
		e.Schedule(at, func() {
			p.consume(monitor.Alert{Node: node, Severity: monitor.SevWarning, At: e.Now()})
		})
	}
	e.RunUntil(time.Hour)
	if p.Predicted(node) {
		t.Fatal("stale warnings predicted")
	}
}

func TestTrendTTLExpiry(t *testing.T) {
	e, c, sub := trendSetup(5, 0)
	p := NewTrend(e, sub, TrendConfig{TTL: 10 * time.Minute})
	node := c.Computes()[0]
	sub.NoticeImpendingFailure(node, time.Minute)
	e.RunUntil(2 * time.Minute)
	if !p.Predicted(node) {
		t.Fatal("not predicted after failure alert")
	}
	e.RunUntil(30 * time.Minute)
	if p.Predicted(node) {
		t.Fatal("prediction did not expire")
	}
	if p.PredictedCount() != 0 {
		t.Fatal("count did not prune")
	}
}
