// Package hostlist implements Slurm-style hostlist expressions — the
// compact node-set notation used throughout HPC resource managers and in
// ESlurm's configuration files ("cn[0001-1024,2048]"). It supports
// expansion, compression, set arithmetic and iteration without
// materializing huge node lists.
//
// Grammar (informal):
//
//	list    := expr ("," expr)*
//	expr    := prefix [ "[" ranges "]" ] | bare
//	ranges  := range ("," range)*
//	range   := number [ "-" number ]
//
// Numbers keep their zero-padding: "cn[001-003]" expands to cn001, cn002,
// cn003.
//
// Determinism: parsing, expansion and set arithmetic are pure and
// order-stable (results follow input order, never map order), so hostlist
// handling can never perturb the same-seed ⇒ same-trace contract.
package hostlist

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Expand parses a hostlist expression and returns the full host slice in
// expression order.
func Expand(expr string) ([]string, error) {
	var out []string
	err := Each(expr, func(h string) bool {
		out = append(out, h)
		return true
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Count returns the number of hosts an expression denotes without
// materializing them.
func Count(expr string) (int, error) {
	n := 0
	parts, err := split(expr)
	if err != nil {
		return 0, err
	}
	for _, p := range parts {
		if p.ranges == nil {
			n++
			continue
		}
		for _, r := range p.ranges {
			n += r.hi - r.lo + 1
		}
	}
	return n, nil
}

// Each invokes fn for every host in expression order; fn returning false
// stops the iteration early.
func Each(expr string, fn func(host string) bool) error {
	parts, err := split(expr)
	if err != nil {
		return err
	}
	for _, p := range parts {
		if p.ranges == nil {
			if !fn(p.prefix) {
				return nil
			}
			continue
		}
		for _, r := range p.ranges {
			for v := r.lo; v <= r.hi; v++ {
				if !fn(p.prefix + pad(v, r.width) + p.suffix) {
					return nil
				}
			}
		}
	}
	return nil
}

type numRange struct {
	lo, hi int
	width  int // zero-padding width; 0 means no padding
}

type part struct {
	prefix string
	suffix string
	ranges []numRange // nil for a bare hostname
}

// split tokenizes an expression into parts, being careful that commas
// inside brackets separate ranges, not parts.
func split(expr string) ([]part, error) {
	var parts []part
	depth := 0
	start := 0
	flush := func(end int) error {
		tok := strings.TrimSpace(expr[start:end])
		if tok == "" {
			return nil
		}
		p, err := parsePart(tok)
		if err != nil {
			return err
		}
		parts = append(parts, p)
		return nil
	}
	for i, ch := range expr {
		switch ch {
		case '[':
			depth++
		case ']':
			depth--
			if depth < 0 {
				return nil, fmt.Errorf("hostlist: unbalanced ']' in %q", expr)
			}
		case ',':
			if depth == 0 {
				if err := flush(i); err != nil {
					return nil, err
				}
				start = i + 1
			}
		}
	}
	if depth != 0 {
		return nil, fmt.Errorf("hostlist: unbalanced '[' in %q", expr)
	}
	if err := flush(len(expr)); err != nil {
		return nil, err
	}
	return parts, nil
}

func parsePart(tok string) (part, error) {
	open := strings.IndexByte(tok, '[')
	if open < 0 {
		if strings.ContainsAny(tok, "]") {
			return part{}, fmt.Errorf("hostlist: stray ']' in %q", tok)
		}
		return part{prefix: tok}, nil
	}
	close := strings.IndexByte(tok, ']')
	if close < open {
		return part{}, fmt.Errorf("hostlist: malformed brackets in %q", tok)
	}
	p := part{prefix: tok[:open], suffix: tok[close+1:]}
	if strings.ContainsAny(p.suffix, "[]") {
		return part{}, fmt.Errorf("hostlist: nested brackets in %q", tok)
	}
	body := tok[open+1 : close]
	if body == "" {
		return part{}, fmt.Errorf("hostlist: empty range in %q", tok)
	}
	for _, rs := range strings.Split(body, ",") {
		r, err := parseRange(strings.TrimSpace(rs))
		if err != nil {
			return part{}, fmt.Errorf("hostlist: %v in %q", err, tok)
		}
		p.ranges = append(p.ranges, r)
	}
	return p, nil
}

func parseRange(rs string) (numRange, error) {
	lo, hi := rs, rs
	if i := strings.IndexByte(rs, '-'); i >= 0 {
		lo, hi = rs[:i], rs[i+1:]
	}
	lv, err := strconv.Atoi(lo)
	if err != nil {
		return numRange{}, fmt.Errorf("bad number %q", lo)
	}
	hv, err := strconv.Atoi(hi)
	if err != nil {
		return numRange{}, fmt.Errorf("bad number %q", hi)
	}
	if hv < lv {
		return numRange{}, fmt.Errorf("descending range %q", rs)
	}
	width := 0
	if len(lo) > 1 && lo[0] == '0' {
		width = len(lo)
	}
	return numRange{lo: lv, hi: hv, width: width}, nil
}

func pad(v, width int) string {
	s := strconv.Itoa(v)
	for len(s) < width {
		s = "0" + s
	}
	return s
}

// Compress renders a host slice as a compact hostlist expression, merging
// consecutive numbers under shared prefixes. The input order is not
// preserved; hosts are grouped per prefix and sorted numerically.
func Compress(hosts []string) string {
	type key struct {
		prefix, suffix string
		width          int
	}
	groups := make(map[key][]int)
	var bare []string
	order := []key{}
	seenKey := map[key]bool{}
	for _, h := range hosts {
		prefix, num, suffix, width, ok := splitNumeric(h)
		if !ok {
			bare = append(bare, h)
			continue
		}
		k := key{prefix, suffix, width}
		if !seenKey[k] {
			seenKey[k] = true
			order = append(order, k)
		}
		groups[k] = append(groups[k], num)
	}
	var out []string
	out = append(out, bare...)
	for _, k := range order {
		nums := groups[k]
		sort.Ints(nums)
		nums = dedupInts(nums)
		var ranges []string
		for i := 0; i < len(nums); {
			j := i
			for j+1 < len(nums) && nums[j+1] == nums[j]+1 {
				j++
			}
			if i == j {
				ranges = append(ranges, pad(nums[i], k.width))
			} else {
				ranges = append(ranges, pad(nums[i], k.width)+"-"+pad(nums[j], k.width))
			}
			i = j + 1
		}
		if len(ranges) == 1 && !strings.Contains(ranges[0], "-") {
			out = append(out, k.prefix+ranges[0]+k.suffix)
			continue
		}
		out = append(out, k.prefix+"["+strings.Join(ranges, ",")+"]"+k.suffix)
	}
	return strings.Join(out, ",")
}

func dedupInts(xs []int) []int {
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != xs[i-1] {
			out = append(out, x)
		}
	}
	return out
}

// splitNumeric decomposes "cn012-ib" into ("cn", 12, "-ib", width 3).
// The trailing numeric run before the suffix is used.
func splitNumeric(h string) (prefix string, num int, suffix string, width int, ok bool) {
	// Find the last digit run.
	end := -1
	for i := len(h) - 1; i >= 0; i-- {
		if h[i] >= '0' && h[i] <= '9' {
			end = i
			break
		}
	}
	if end < 0 {
		return "", 0, "", 0, false
	}
	start := end
	for start > 0 && h[start-1] >= '0' && h[start-1] <= '9' {
		start--
	}
	n, err := strconv.Atoi(h[start : end+1])
	if err != nil {
		return "", 0, "", 0, false
	}
	w := 0
	if end-start+1 > 1 && h[start] == '0' {
		w = end - start + 1
	}
	return h[:start], n, h[end+1:], w, true
}
