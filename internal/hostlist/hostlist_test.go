package hostlist

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestExpandSimple(t *testing.T) {
	got, err := Expand("cn[1-3]")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"cn1", "cn2", "cn3"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestExpandZeroPadding(t *testing.T) {
	got, err := Expand("cn[008-011]")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"cn008", "cn009", "cn010", "cn011"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v", got)
	}
}

func TestExpandMixedList(t *testing.T) {
	got, err := Expand("login1,cn[1-2,5],gpu[01-02]-ib")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"login1", "cn1", "cn2", "cn5", "gpu01-ib", "gpu02-ib"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestExpandSingletonRange(t *testing.T) {
	got, err := Expand("cn[7]")
	if err != nil || len(got) != 1 || got[0] != "cn7" {
		t.Fatalf("got %v, %v", got, err)
	}
}

func TestExpandErrors(t *testing.T) {
	for _, expr := range []string{
		"cn[3-1]",  // descending
		"cn[1-",    // unbalanced
		"cn]1[",    // stray
		"cn[]",     // empty
		"cn[a-b]",  // non-numeric
		"cn[1][2]", // nested/multiple brackets
	} {
		if _, err := Expand(expr); err == nil {
			t.Errorf("Expand(%q) did not fail", expr)
		}
	}
}

func TestCount(t *testing.T) {
	n, err := Count("cn[0001-1024,2048],login[1-2],mgmt")
	if err != nil {
		t.Fatal(err)
	}
	if n != 1024+1+2+1 {
		t.Fatalf("Count = %d, want 1028", n)
	}
}

func TestEachEarlyStop(t *testing.T) {
	n := 0
	Each("cn[1-100]", func(string) bool {
		n++
		return n < 5
	})
	if n != 5 {
		t.Fatalf("iterated %d, want 5", n)
	}
}

func TestCompressBasic(t *testing.T) {
	got := Compress([]string{"cn1", "cn2", "cn3", "cn5"})
	if got != "cn[1-3,5]" {
		t.Fatalf("got %q", got)
	}
}

func TestCompressPadding(t *testing.T) {
	got := Compress([]string{"cn008", "cn009", "cn010"})
	if got != "cn[008-010]" {
		t.Fatalf("got %q", got)
	}
}

func TestCompressSingleHost(t *testing.T) {
	if got := Compress([]string{"cn42"}); got != "cn42" {
		t.Fatalf("got %q", got)
	}
}

func TestCompressBareAndSuffix(t *testing.T) {
	got := Compress([]string{"mgmt", "gpu01-ib", "gpu02-ib"})
	if got != "mgmt,gpu[01-02]-ib" {
		t.Fatalf("got %q", got)
	}
}

func TestCompressDeduplicates(t *testing.T) {
	if got := Compress([]string{"cn1", "cn1", "cn2"}); got != "cn[1-2]" {
		t.Fatalf("got %q", got)
	}
}

// Property: Expand(Compress(hosts)) returns the same host set.
func TestPropertyRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(200)
		set := map[string]bool{}
		var hosts []string
		for i := 0; i < n; i++ {
			h := "cn" + pad(rng.Intn(500), 4)
			if !set[h] {
				set[h] = true
				hosts = append(hosts, h)
			}
		}
		expr := Compress(hosts)
		back, err := Expand(expr)
		if err != nil {
			return false
		}
		if len(back) != len(hosts) {
			return false
		}
		for _, h := range back {
			if !set[h] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Count agrees with len(Expand).
func TestPropertyCountMatchesExpand(t *testing.T) {
	f := func(lo8, n8 uint8) bool {
		lo := int(lo8)
		hi := lo + int(n8%50)
		expr := Compress([]string{"x" + pad(lo, 3)})
		_ = expr
		e := "nd[" + pad(lo, 3) + "-" + pad(hi, 3) + "]"
		c, err := Count(e)
		if err != nil {
			return false
		}
		xs, err := Expand(e)
		return err == nil && c == len(xs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkExpand20K(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Expand("cn[00001-20480]"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCompress20K(b *testing.B) {
	hosts, _ := Expand("cn[00001-20480]")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Compress(hosts)
	}
}
