package hostlist

import "testing"

// FuzzExpand checks that arbitrary expressions never panic and that any
// successfully expanded expression re-compresses to an expression that
// expands to the same host multiset size.
func FuzzExpand(f *testing.F) {
	for _, seed := range []string{
		"cn[1-3]", "cn[001-100]", "a,b,c", "gpu[01-02]-ib",
		"x[1,3,5-9]", "cn[", "cn]", "cn[]", "", ",", "cn[9-1]",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, expr string) {
		hosts, err := Expand(expr)
		if err != nil {
			return
		}
		// Count must agree with the expansion.
		n, err := Count(expr)
		if err != nil {
			t.Fatalf("Expand ok but Count failed: %v", err)
		}
		if n != len(hosts) {
			t.Fatalf("Count=%d len(Expand)=%d for %q", n, len(hosts), expr)
		}
		// Compression of the result must be re-expandable.
		if len(hosts) > 0 && len(hosts) < 10000 {
			back, err := Expand(Compress(hosts))
			if err != nil {
				t.Fatalf("Compress produced unparseable %q: %v", Compress(hosts), err)
			}
			if len(back) > len(hosts) {
				t.Fatalf("round trip grew: %d -> %d", len(hosts), len(back))
			}
		}
	})
}
