package faults

import (
	"testing"
	"time"

	"eslurm/internal/cluster"
	"eslurm/internal/monitor"
	"eslurm/internal/simnet"
	"eslurm/internal/topo"
)

func newCampaign(seed int64, computes int, silent float64) (*simnet.Engine, *cluster.Cluster, *Campaign) {
	e := simnet.NewEngine(seed)
	c := cluster.New(e, cluster.Config{Computes: computes})
	sub := monitor.New(c, monitor.Config{DetectionProb: 1.0})
	return e, c, New(c, sub, silent)
}

func TestBackgroundRate(t *testing.T) {
	e, c, cp := newCampaign(1, 1000, 0)
	cp.Background(6, 10*24*time.Hour, time.Hour, 2*time.Hour)
	// ~6/day over 10 days.
	if n := len(cp.Events); n < 35 || n > 90 {
		t.Fatalf("events = %d, want ~60", n)
	}
	e.RunUntil(24 * time.Hour)
	if c.FailedCount() == 0 {
		t.Error("no failures materialized in day 1")
	}
	// All failures recover within their window.
	e.RunUntil(13 * 24 * time.Hour)
	if c.FailedCount() != 0 {
		t.Errorf("%d nodes still down after the horizon", c.FailedCount())
	}
}

func TestBurst(t *testing.T) {
	e, c, cp := newCampaign(2, 2048, 0)
	cp.Burst(time.Hour, 600, 6*time.Hour)
	if cp.NodesAffected() != 600 {
		t.Fatalf("affected = %d, want 600", cp.NodesAffected())
	}
	e.RunUntil(2 * time.Hour)
	if got := c.FailedCount(); got != 600 {
		t.Fatalf("down at t=2h: %d", got)
	}
	e.RunUntil(8 * time.Hour)
	if c.FailedCount() != 0 {
		t.Error("burst did not recover")
	}
}

func TestBurstClampsToClusterSize(t *testing.T) {
	_, _, cp := newCampaign(3, 10, 0)
	cp.Burst(time.Minute, 100, time.Hour)
	if cp.NodesAffected() != 10 {
		t.Fatalf("affected = %d, want clamp to 10", cp.NodesAffected())
	}
}

func TestRackOutage(t *testing.T) {
	e, c, cp := newCampaign(4, 1536, 0) // 3 racks of 512
	tp := topo.Default()
	n := cp.RackOutage(tp, 1, time.Hour, 2*time.Hour)
	if n == 0 {
		t.Fatal("rack outage hit no nodes")
	}
	e.RunUntil(90 * time.Minute)
	for _, id := range c.Computes() {
		failed := c.Node(id).Failed()
		inRack := tp.Rack(id) == 1
		if failed != inRack {
			t.Fatalf("node %d: failed=%v inRack=%v", id, failed, inRack)
		}
	}
	for _, ev := range cp.Events {
		if ev.RackID != 1 {
			t.Error("rack ID not recorded")
		}
	}
}

func TestSilentFraction(t *testing.T) {
	e, _, cp := newCampaign(5, 2000, 0.3)
	cp.Burst(time.Hour, 1000, time.Hour)
	frac := float64(cp.SilentCount()) / float64(len(cp.Events))
	if frac < 0.22 || frac > 0.38 {
		t.Fatalf("silent fraction = %.3f, want ~0.3", frac)
	}
	_ = e
}

func TestNilMonitorAllSilent(t *testing.T) {
	e := simnet.NewEngine(6)
	c := cluster.New(e, cluster.Config{Computes: 50})
	cp := New(c, nil, 0)
	cp.Burst(time.Minute, 10, time.Hour)
	if cp.SilentCount() != 10 {
		t.Fatalf("silent = %d, want all 10", cp.SilentCount())
	}
}
