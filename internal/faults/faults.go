// Package faults builds failure campaigns for experiments: reusable
// scenario generators that schedule node failures on a simulated cluster
// and announce them (or not — some failures are silent) to the monitoring
// subsystem. The paper's §VII-A deployment saw exactly these shapes: "28
// small-scale failure events ... 103 single-node failures" plus "a
// large-scale node failure involving more than 600 nodes caused by
// hardware replacement".
//
// Determinism: campaign shapes, timings and victim sets draw exclusively
// from the cluster engine's labeled RNG streams and fire as engine
// events, so a campaign replays bit-identically from its seed — the
// property the chaos harness's digest-pinned tests stand on.
package faults

import (
	"math/rand"
	"time"

	"eslurm/internal/cluster"
	"eslurm/internal/monitor"
	"eslurm/internal/topo"
)

// Kind classifies an injected event. The zero value is a fail-stop; the
// adversarial scenarios (PR 3) tag their events so reports can break a
// mixed campaign down by failure mode.
type Kind string

const (
	KindFailStop  Kind = ""
	KindGray      Kind = "gray"
	KindPartition Kind = "partition"
)

// Event records one injected failure for reporting.
type Event struct {
	Node   cluster.NodeID
	At     time.Duration
	Down   time.Duration
	Silent bool
	RackID int  // -1 unless rack-correlated
	Kind   Kind // "" = fail-stop
}

// Campaign injects scenarios into one cluster/monitor pair and records
// what it did.
type Campaign struct {
	Cluster *cluster.Cluster
	Monitor *monitor.Subsystem // may be nil: nothing is announced
	// SilentFraction of failures bypass the monitoring subsystem (the
	// fault also severs the monitoring path).
	SilentFraction float64

	Events []Event

	rng *rand.Rand
}

// New builds an empty campaign.
func New(c *cluster.Cluster, m *monitor.Subsystem, silentFraction float64) *Campaign {
	return &Campaign{
		Cluster: c, Monitor: m, SilentFraction: silentFraction,
		rng: c.Engine.Rand("faults/silent"),
	}
}

// inject schedules one failure, announcing it unless silent.
func (cp *Campaign) inject(node cluster.NodeID, at, down time.Duration, rack int) {
	silent := cp.Monitor == nil
	if !silent && cp.SilentFraction > 0 {
		silent = cp.rng.Float64() < cp.SilentFraction
	}
	if !silent {
		cp.Monitor.NoticeImpendingFailure(node, at)
	}
	cp.Cluster.ScheduleFailure(node, at, down)
	cp.Events = append(cp.Events, Event{Node: node, At: at, Down: down, Silent: silent, RackID: rack})
}

// Background schedules independent single-node failures at the given
// Poisson-like rate (events per day across the cluster) over the horizon,
// each down for downMin..downMax.
func (cp *Campaign) Background(ratePerDay float64, horizon, downMin, downMax time.Duration) {
	if ratePerDay <= 0 {
		return
	}
	rng := cp.Cluster.Engine.Rand("faults/background")
	comps := cp.Cluster.Computes()
	meanGap := time.Duration(float64(24*time.Hour) / ratePerDay)
	at := time.Duration(rng.ExpFloat64() * float64(meanGap))
	for at < horizon {
		node := comps[rng.Intn(len(comps))]
		down := downMin
		if downMax > downMin {
			down += time.Duration(rng.Int63n(int64(downMax - downMin)))
		}
		cp.inject(node, at, down, -1)
		at += time.Duration(rng.ExpFloat64() * float64(meanGap))
	}
}

// Burst schedules a simultaneous multi-node event (hardware replacement,
// firmware rollout) taking count scattered nodes down at `at`.
func (cp *Campaign) Burst(at time.Duration, count int, down time.Duration) {
	comps := cp.Cluster.Computes()
	if count > len(comps) {
		count = len(comps)
	}
	if count <= 0 {
		return
	}
	stride := len(comps) / count
	if stride == 0 {
		stride = 1
	}
	for i := 0; i < count; i++ {
		cp.inject(comps[(i*stride)%len(comps)], at, down, -1)
	}
}

// RackOutage takes every compute node of one rack down at `at` (power
// rail or switch loss). Rack outages are inherently correlated: all
// victims share interior tree positions under ID-ordered lists, which is
// the worst case the FP-Tree's rearranging defends against.
func (cp *Campaign) RackOutage(tp topo.Topology, rackID int, at, down time.Duration) int {
	n := 0
	for _, id := range cp.Cluster.Computes() {
		if tp.Rack(id) == rackID {
			cp.inject(id, at, down, rackID)
			n++
		}
	}
	return n
}

// SilentCount returns the number of injected failures the monitoring
// subsystem was never told about.
func (cp *Campaign) SilentCount() int {
	k := 0
	for _, e := range cp.Events {
		if e.Silent {
			k++
		}
	}
	return k
}

// NodesAffected returns the number of distinct nodes in the campaign.
func (cp *Campaign) NodesAffected() int {
	seen := map[cluster.NodeID]bool{}
	for _, e := range cp.Events {
		seen[e.Node] = true
	}
	return len(seen)
}
