package faults

import (
	"testing"
	"time"

	"eslurm/internal/cluster"
	"eslurm/internal/simnet"
	"eslurm/internal/topo"
)

func TestRackOutageNonexistentRack(t *testing.T) {
	_, _, cp := newCampaign(7, 512, 0) // exactly rack 0
	n := cp.RackOutage(topo.Default(), 99, time.Hour, time.Hour)
	if n != 0 {
		t.Fatalf("outage on nonexistent rack hit %d nodes, want 0", n)
	}
	if len(cp.Events) != 0 {
		t.Fatalf("nonexistent rack recorded %d events", len(cp.Events))
	}
}

func TestSilentFractionSameSeedDeterminism(t *testing.T) {
	run := func() []Event {
		_, _, cp := newCampaign(5, 2000, 0.3)
		cp.Burst(time.Hour, 1000, time.Hour)
		return cp.Events
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("event counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs across same-seed runs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestFlap(t *testing.T) {
	e, c, cp := newCampaign(8, 50, 0)
	node := c.Computes()[7]
	// Down at [1m,2m), [3m,4m), [5m,6m).
	cp.Flap(node, time.Minute, 3, time.Minute, time.Minute)
	if len(cp.Events) != 3 {
		t.Fatalf("flap recorded %d events, want 3", len(cp.Events))
	}
	checks := []struct {
		at   time.Duration
		down bool
	}{
		{30 * time.Second, false},
		{90 * time.Second, true},
		{150 * time.Second, false},
		{210 * time.Second, true},
		{270 * time.Second, false},
		{330 * time.Second, true},
		{7 * time.Minute, false},
	}
	for _, ck := range checks {
		e.RunUntil(ck.at)
		if got := c.Node(node).Failed(); got != ck.down {
			t.Errorf("t=%v: failed=%v, want %v", ck.at, got, ck.down)
		}
	}
}

func TestGrayDegrade(t *testing.T) {
	e, c, cp := newCampaign(9, 50, 0)
	node := c.Computes()[3]
	cp.GrayDegrade(node, time.Minute, 2*time.Minute, 6)

	if len(cp.Events) != 1 || cp.Events[0].Kind != KindGray || !cp.Events[0].Silent {
		t.Fatalf("gray event malformed: %+v", cp.Events)
	}
	e.RunUntil(30 * time.Second)
	if f := c.Net.GrayFactor(node); f != 1 {
		t.Fatalf("gray before onset: factor %v", f)
	}
	e.RunUntil(90 * time.Second)
	if f := c.Net.GrayFactor(node); f != 6 {
		t.Fatalf("factor = %v during degradation, want 6", f)
	}
	if c.Node(node).Failed() {
		t.Fatal("gray node must stay alive")
	}
	if c.Net.GrayCount() != 1 {
		t.Fatalf("GrayCount = %d", c.Net.GrayCount())
	}
	e.RunUntil(4 * time.Minute)
	if f := c.Net.GrayFactor(node); f != 1 {
		t.Fatalf("gray did not clear: factor %v", f)
	}
}

func TestPartitionChassisSeversAndHeals(t *testing.T) {
	e, c, cp := newCampaign(10, 300, 0)
	tp := topo.Default() // chassis = 128 nodes
	n := cp.PartitionChassis(tp, 1, time.Minute, 2*time.Minute)
	if n == 0 {
		t.Fatal("partition cut no nodes")
	}
	var in, out cluster.NodeID = -1, -1
	for _, id := range c.Computes() {
		if tp.Chassis(id) == 1 && in < 0 {
			in = id
		}
		if tp.Chassis(id) != 1 && out < 0 {
			out = id
		}
	}
	master := c.Master().ID

	e.RunUntil(30 * time.Second)
	if c.Net.Severed(master, in) {
		t.Fatal("severed before the partition landed")
	}
	e.RunUntil(2 * time.Minute)
	if !c.Net.Severed(master, in) {
		t.Error("master→partitioned not severed during the cut")
	}
	if c.Net.Severed(master, out) {
		t.Error("master→outside severed; cut is too wide")
	}
	if c.Node(in).Failed() {
		t.Error("partitioned node marked failed; partitions are not fail-stops")
	}
	if c.Net.PartitionCount() != 1 {
		t.Errorf("PartitionCount = %d", c.Net.PartitionCount())
	}
	e.RunUntil(5 * time.Minute)
	if c.Net.Severed(master, in) {
		t.Error("partition did not heal")
	}
	if c.Net.PartitionCount() != 0 {
		t.Errorf("PartitionCount = %d after heal", c.Net.PartitionCount())
	}
}

func TestPartitionMembersReachEachOther(t *testing.T) {
	e, c, cp := newCampaign(11, 200, 0)
	members := c.Computes()[:16]
	cp.Partition(members, time.Minute, time.Hour)
	e.RunUntil(2 * time.Minute)
	if c.Net.Severed(members[0], members[1]) {
		t.Error("two members of the same partition severed from each other")
	}
	if !c.Net.Severed(members[0], c.Computes()[100]) {
		t.Error("member→non-member not severed")
	}
}

func TestGenerateDeterminismAndMix(t *testing.T) {
	gen := func(seed int64) []Event {
		e := simnet.NewEngine(seed)
		c := cluster.New(e, cluster.Config{Computes: 512, Satellites: 4})
		cp := New(c, nil, 0)
		cp.Generate(ChaosSpec{Bursts: 2, Flaps: 2, Grays: 3, Partitions: 1, SatelliteKills: 1})
		return cp.Events
	}
	a, b := gen(21), gen(21)
	if len(a) != len(b) {
		t.Fatalf("same seed generated %d vs %d events", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs across same-seed generations: %+v vs %+v", i, a[i], b[i])
		}
	}
	if len(gen(22)) == len(a) {
		sameAll := true
		other := gen(22)
		for i := range a {
			if a[i] != other[i] {
				sameAll = false
				break
			}
		}
		if sameAll {
			t.Fatal("different seeds generated identical campaigns")
		}
	}
	// The mix contains every requested class.
	kinds := map[Kind]int{}
	var satHit bool
	for _, ev := range a {
		kinds[ev.Kind]++
		if ev.Node <= 4 && ev.Node >= 1 { // satellites are IDs 1..4
			satHit = true
		}
	}
	if kinds[KindGray] != 3 {
		t.Errorf("grays = %d, want 3", kinds[KindGray])
	}
	if kinds[KindPartition] == 0 {
		t.Error("no partition events generated")
	}
	if kinds[KindFailStop] == 0 {
		t.Error("no fail-stop events generated")
	}
	if !satHit {
		t.Error("no satellite was killed")
	}
}
