package faults

// Adversarial scenarios beyond clean fail-stop: flapping nodes, gray
// failures (alive but slow), and correlated network partitions. Related
// simulation frameworks (SST job-scheduling simulation, arXiv:2501.18191;
// CGSim, arXiv:2510.00822) stress that credible scalability results
// require modelling degraded and partitioned networks, not just binary
// liveness — these scenarios are the injection side of that model; the
// network-level mechanics live in cluster.Network.

import (
	"time"

	"eslurm/internal/cluster"
	"eslurm/internal/topo"
)

// Flap bounces a node: starting at `at` it fails, recovers after `down`,
// stays up for `up`, then fails again, for `cycles` cycles. Flapping is
// the pathological case for monitoring sweeps — the node may look healthy
// at every sweep yet be unusable in between.
func (cp *Campaign) Flap(node cluster.NodeID, at time.Duration, cycles int, down, up time.Duration) {
	for i := 0; i < cycles; i++ {
		cp.inject(node, at, down, -1)
		at += down + up
	}
}

// GrayDegrade marks a node gray — alive but slow — from `at` for `dur`
// (dur <= 0 means forever), inflating its connect and relay costs by
// `factor`. Gray failures are never announced: the node still answers
// heartbeats, so monitoring sees it as healthy. That is exactly the
// failure mode fail-stop detection cannot catch, and what the FP-Tree's
// predicted-failed leaf demotion is for.
func (cp *Campaign) GrayDegrade(node cluster.NodeID, at, dur time.Duration, factor float64) {
	e := cp.Cluster.Engine
	e.Schedule(at, func() { cp.Cluster.Net.SetGray(node, factor) })
	if dur > 0 {
		e.Schedule(at+dur, func() { cp.Cluster.Net.ClearGray(node) })
	}
	cp.Events = append(cp.Events, Event{
		Node: node, At: at, Down: dur, Silent: true, RackID: -1, Kind: KindGray,
	})
}

// Partition severs `members` from the rest of the cluster at `at`,
// healing after `dur` (dur <= 0 leaves it in place until HealAll).
// Members still reach each other; traffic across the cut times out at
// the sender. Partitions are silent by construction — there is no node
// failure for the monitor to be told about.
func (cp *Campaign) Partition(members []cluster.NodeID, at, dur time.Duration) {
	if len(members) == 0 {
		return
	}
	cp.partition(members, at, dur, -1)
}

func (cp *Campaign) partition(members []cluster.NodeID, at, dur time.Duration, rack int) {
	cp.Cluster.Engine.Schedule(at, func() { cp.Cluster.Net.Partition(members, dur) })
	for _, id := range members {
		cp.Events = append(cp.Events, Event{
			Node: id, At: at, Down: dur, Silent: true, RackID: rack, Kind: KindPartition,
		})
	}
}

// PartitionRack severs every compute node of one rack (switch or uplink
// loss) at `at`, healing after `dur`. It composes with topo the same way
// RackOutage does and returns the number of nodes cut off — 0 for a
// nonexistent rack.
func (cp *Campaign) PartitionRack(tp topo.Topology, rackID int, at, dur time.Duration) int {
	var members []cluster.NodeID
	for _, id := range cp.Cluster.Computes() {
		if tp.Rack(id) == rackID {
			members = append(members, id)
		}
	}
	if len(members) > 0 {
		cp.partition(members, at, dur, rackID)
	}
	return len(members)
}

// PartitionChassis severs one chassis's compute nodes (leaf-switch loss),
// the smaller correlated cut. Returns the number of nodes cut off.
func (cp *Campaign) PartitionChassis(tp topo.Topology, chassisID int, at, dur time.Duration) int {
	var members []cluster.NodeID
	for _, id := range cp.Cluster.Computes() {
		if tp.Chassis(id) == chassisID {
			members = append(members, id)
		}
	}
	if len(members) > 0 {
		cp.partition(members, at, dur, -1)
	}
	return len(members)
}

// ChaosSpec parameterizes a randomized mixed campaign. Generate draws all
// randomness from the engine stream "faults/chaos", so one (engine seed,
// spec) pair always produces the same campaign — the determinism contract
// that makes a failing chaos seed replayable.
type ChaosSpec struct {
	// Horizon is the window events land in (default 10 minutes).
	Horizon time.Duration
	// Counts per scenario class. Zero means none of that class.
	Bursts     int // scattered multi-node fail-stops
	Flaps      int // bouncing nodes
	Grays      int // alive-but-slow nodes
	Partitions int // chassis-correlated cuts
	// SatelliteKills fail-stops random satellite nodes (recovering like
	// other outages), exercising Table II demotions, reallocation and
	// master takeover.
	SatelliteKills int
	// BackgroundPerDay adds independent single-node failures at this rate.
	BackgroundPerDay float64
	// MaxDown caps outage durations (default 90s).
	MaxDown time.Duration
	// GrayFactorMax caps the slow-down multiplier (default 8; min 2).
	GrayFactorMax float64
	// Topo places correlated cuts (zero value takes topo.Default()).
	Topo topo.Topology
}

func (s ChaosSpec) withDefaults() ChaosSpec {
	if s.Horizon <= 0 {
		s.Horizon = 10 * time.Minute
	}
	if s.MaxDown <= 0 {
		s.MaxDown = 90 * time.Second
	}
	if s.GrayFactorMax < 2 {
		s.GrayFactorMax = 8
	}
	if s.Topo == (topo.Topology{}) {
		s.Topo = topo.Default()
	}
	return s
}

// Generate populates the campaign with a randomized mix drawn from the
// spec. Event times, victims, durations, and gray factors all come from
// the "faults/chaos" stream.
func (cp *Campaign) Generate(spec ChaosSpec) {
	spec = spec.withDefaults()
	rng := cp.Cluster.Engine.Rand("faults/chaos")
	comps := cp.Cluster.Computes()
	if len(comps) == 0 {
		return
	}
	pick := func() cluster.NodeID { return comps[rng.Intn(len(comps))] }
	at := func() time.Duration { return time.Duration(rng.Int63n(int64(spec.Horizon))) }
	down := func() time.Duration { return time.Duration(1 + rng.Int63n(int64(spec.MaxDown))) }

	for i := 0; i < spec.Bursts; i++ {
		cp.Burst(at(), 2+rng.Intn(6), down())
	}
	for i := 0; i < spec.Flaps; i++ {
		cp.Flap(pick(), at(), 2+rng.Intn(3), down()/4+time.Second, down()/2+time.Second)
	}
	for i := 0; i < spec.Grays; i++ {
		factor := 2 + rng.Float64()*(spec.GrayFactorMax-2)
		cp.GrayDegrade(pick(), at(), down(), factor)
	}
	if spec.Partitions > 0 {
		chassis := spec.Topo.Chassis(comps[len(comps)-1]) + 1
		for i := 0; i < spec.Partitions; i++ {
			cp.PartitionChassis(spec.Topo, rng.Intn(chassis), at(), down())
		}
	}
	if sats := cp.Cluster.Satellites(); len(sats) > 0 {
		for i := 0; i < spec.SatelliteKills; i++ {
			cp.inject(sats[rng.Intn(len(sats))], at(), down(), -1)
		}
	}
	if spec.BackgroundPerDay > 0 {
		cp.Background(spec.BackgroundPerDay, spec.Horizon, time.Second, spec.MaxDown)
	}
}
