// Package jobs implements the master's job table: the job lifecycle state
// machine, the registry the scheduler draws from, and the multifactor
// priority with fair-share accounting. ESlurm deliberately "preserves the
// master node's global view of resources and jobs as well as the original
// efficient resource allocation and job scheduling logic" (Section II-C);
// this package is that retained Slurm-derived logic.
//
// Determinism: the registry iterates jobs in submission order and the
// multifactor priority breaks ties by job ID, so scheduling decisions are
// reproducible — no map-order dependence, no clocks, no RNG.
package jobs

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// ID identifies a job within one registry.
type ID uint64

// State is a job's lifecycle state, following the slurmctld model.
type State int

const (
	// Pending: queued, waiting for resources.
	Pending State = iota
	// Configuring: resources allocated, launch broadcast in flight.
	Configuring
	// Running: processes spawned on all nodes.
	Running
	// Completing: termination broadcast in flight, reclaiming resources.
	Completing
	// Completed: finished successfully.
	Completed
	// Failed: exited with an error.
	Failed
	// Timeout: killed at its walltime limit.
	Timeout
	// Cancelled: removed by the user or administrator.
	Cancelled
)

func (s State) String() string {
	switch s {
	case Pending:
		return "PENDING"
	case Configuring:
		return "CONFIGURING"
	case Running:
		return "RUNNING"
	case Completing:
		return "COMPLETING"
	case Completed:
		return "COMPLETED"
	case Failed:
		return "FAILED"
	case Timeout:
		return "TIMEOUT"
	case Cancelled:
		return "CANCELLED"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	switch s {
	case Completed, Failed, Timeout, Cancelled:
		return true
	}
	return false
}

// validTransition reports whether from → to is a legal lifecycle step.
// A function rather than a package-level transition table keeps the
// lifecycle free of mutable global state (globalmut).
func validTransition(from, to State) bool {
	switch from {
	case Pending:
		return to == Configuring || to == Cancelled
	case Configuring:
		return to == Running || to == Failed || to == Cancelled
	case Running:
		return to == Completing || to == Failed || to == Timeout || to == Cancelled
	case Completing:
		return to == Completed || to == Failed
	}
	return false
}

// Job is one job record.
type Job struct {
	ID        ID
	Name      string
	User      string
	Partition string
	Nodes     int
	Cores     int
	TimeLimit time.Duration

	SubmitAt time.Duration
	StartAt  time.Duration
	EndAt    time.Duration

	state    State
	priority float64
}

// State returns the current lifecycle state.
func (j *Job) State() State { return j.state }

// Priority returns the last computed multifactor priority.
func (j *Job) Priority() float64 { return j.priority }

// ErrBadTransition reports an illegal state change.
type ErrBadTransition struct {
	Job  ID
	From State
	To   State
}

func (e *ErrBadTransition) Error() string {
	return fmt.Sprintf("jobs: job %d cannot go %v -> %v", e.Job, e.From, e.To)
}

// Registry is the master's job table.
type Registry struct {
	nextID ID
	live   map[ID]*Job
	// done keeps a bounded history of terminal jobs (the "historical job
	// queue" the estimation framework trains on).
	done    []*Job
	doneCap int
	counts  map[State]int

	prio PriorityConfig
	fs   *Fairshare
}

// NewRegistry builds an empty registry keeping up to historyCap terminal
// jobs (0 defaults to 10,000).
func NewRegistry(prio PriorityConfig, historyCap int) *Registry {
	if historyCap <= 0 {
		historyCap = 10000
	}
	return &Registry{
		nextID:  1,
		live:    make(map[ID]*Job),
		doneCap: historyCap,
		counts:  make(map[State]int),
		prio:    prio.withDefaults(),
		fs:      NewFairshare(prio.withDefaults().UsageHalfLife),
	}
}

// Submit registers a new pending job and returns it.
func (r *Registry) Submit(name, user, partition string, nodes, cores int, limit, now time.Duration) *Job {
	j := &Job{
		ID: r.nextID, Name: name, User: user, Partition: partition,
		Nodes: nodes, Cores: cores, TimeLimit: limit,
		SubmitAt: now, state: Pending,
	}
	r.nextID++
	r.live[j.ID] = j
	r.counts[Pending]++
	return j
}

// Get returns a live or historical job by ID (nil if unknown/evicted).
func (r *Registry) Get(id ID) *Job {
	if j, ok := r.live[id]; ok {
		return j
	}
	for _, j := range r.done {
		if j.ID == id {
			return j
		}
	}
	return nil
}

// Transition moves a job to a new state at virtual time now, enforcing
// the lifecycle and maintaining counters, timestamps, history and
// fair-share usage.
func (r *Registry) Transition(j *Job, to State, now time.Duration) error {
	if !validTransition(j.state, to) {
		return &ErrBadTransition{Job: j.ID, From: j.state, To: to}
	}
	r.counts[j.state]--
	r.counts[to]++
	switch to {
	case Running:
		j.StartAt = now
	case Completed, Failed, Timeout, Cancelled:
		j.EndAt = now
		if j.StartAt > 0 || j.state == Completing || j.state == Running {
			// Charge fair-share usage for the time actually held.
			held := now - j.StartAt
			if held > 0 {
				r.fs.Charge(j.User, float64(j.Nodes)*held.Seconds(), now)
			}
		}
	}
	j.state = to
	if to.Terminal() {
		delete(r.live, j.ID)
		r.done = append(r.done, j)
		if len(r.done) > r.doneCap {
			r.done = append(r.done[:0], r.done[len(r.done)-r.doneCap:]...)
		}
	}
	return nil
}

// Counts returns the number of jobs per state (terminal states count the
// retained history only).
func (r *Registry) Counts() map[State]int {
	out := make(map[State]int, len(r.counts))
	for s, c := range r.counts {
		if c != 0 {
			out[s] = c
		}
	}
	return out
}

// History returns the retained terminal jobs, oldest first.
func (r *Registry) History() []*Job { return r.done }

// Fairshare exposes the registry's fair-share ledger (for administrative
// adjustment and tests).
func (r *Registry) Fairshare() *Fairshare { return r.fs }

// Pending returns the pending jobs ordered by descending multifactor
// priority (ties by submit time, then ID), recomputing priorities at now.
func (r *Registry) Pending(now time.Duration) []*Job {
	var out []*Job
	for _, j := range r.live {
		if j.state == Pending {
			j.priority = r.prio.Score(j, r.fs, now)
			out = append(out, j)
		}
	}
	sort.Slice(out, func(i, k int) bool {
		a, b := out[i], out[k]
		if a.priority != b.priority {
			return a.priority > b.priority
		}
		if a.SubmitAt != b.SubmitAt {
			return a.SubmitAt < b.SubmitAt
		}
		return a.ID < b.ID
	})
	return out
}

// PriorityConfig weights the multifactor priority, mirroring Slurm's
// priority/multifactor plugin: age, fair-share and job-size factors.
type PriorityConfig struct {
	// AgeWeight scales the age factor (queue wait / MaxAge, capped at 1).
	AgeWeight float64
	// FairshareWeight scales the fair-share factor 2^(−usage/shares).
	FairshareWeight float64
	// SizeWeight scales the job-size factor (favoring large jobs, as
	// Slurm's default does to fight large-job starvation).
	SizeWeight float64
	// MaxAge saturates the age factor.
	MaxAge time.Duration
	// MaxNodes normalizes the size factor.
	MaxNodes int
	// UsageHalfLife is the fair-share usage decay half-life.
	UsageHalfLife time.Duration
}

func (c PriorityConfig) withDefaults() PriorityConfig {
	if c.AgeWeight == 0 {
		c.AgeWeight = 1000
	}
	if c.FairshareWeight == 0 {
		c.FairshareWeight = 2000
	}
	if c.SizeWeight == 0 {
		c.SizeWeight = 500
	}
	if c.MaxAge == 0 {
		c.MaxAge = 7 * 24 * time.Hour
	}
	if c.MaxNodes == 0 {
		c.MaxNodes = 20480
	}
	if c.UsageHalfLife == 0 {
		c.UsageHalfLife = 7 * 24 * time.Hour
	}
	return c
}

// Score computes a job's multifactor priority at time now.
func (c PriorityConfig) Score(j *Job, fs *Fairshare, now time.Duration) float64 {
	age := float64(now-j.SubmitAt) / float64(c.MaxAge)
	if age > 1 {
		age = 1
	}
	if age < 0 {
		age = 0
	}
	size := float64(j.Nodes) / float64(c.MaxNodes)
	if size > 1 {
		size = 1
	}
	return c.AgeWeight*age + c.FairshareWeight*fs.Factor(j.User, now) + c.SizeWeight*size
}

// Fairshare tracks per-user decayed usage (node-seconds) and converts it
// to the classic 2^(−usage/shares) factor.
type Fairshare struct {
	halfLife time.Duration
	usage    map[string]float64
	lastAt   map[string]time.Duration
	// SharesPerUser is each user's normalized share; the factor halves
	// each time decayed usage grows by this many node-seconds.
	SharesPerUser float64
}

// NewFairshare builds an empty fair-share ledger.
func NewFairshare(halfLife time.Duration) *Fairshare {
	if halfLife <= 0 {
		halfLife = 7 * 24 * time.Hour
	}
	return &Fairshare{
		halfLife:      halfLife,
		usage:         make(map[string]float64),
		lastAt:        make(map[string]time.Duration),
		SharesPerUser: 3600 * 1000, // 1000 node-hours halves the factor
	}
}

// decayTo brings a user's usage up to date.
func (f *Fairshare) decayTo(user string, now time.Duration) {
	last, ok := f.lastAt[user]
	if !ok || now <= last {
		f.lastAt[user] = now
		return
	}
	dt := float64(now-last) / float64(f.halfLife)
	f.usage[user] *= math.Pow(0.5, dt)
	f.lastAt[user] = now
}

// Charge adds node-seconds of usage for a user at time now.
func (f *Fairshare) Charge(user string, nodeSeconds float64, now time.Duration) {
	f.decayTo(user, now)
	f.usage[user] += nodeSeconds
}

// Usage returns the decayed usage at now.
func (f *Fairshare) Usage(user string, now time.Duration) float64 {
	f.decayTo(user, now)
	return f.usage[user]
}

// Factor returns 2^(−usage/shares) in (0, 1]: 1 for an unused account,
// halving per SharesPerUser of decayed consumption.
func (f *Fairshare) Factor(user string, now time.Duration) float64 {
	f.decayTo(user, now)
	return math.Pow(2, -f.usage[user]/f.SharesPerUser)
}
