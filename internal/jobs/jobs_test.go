package jobs

import (
	"errors"
	"math"
	"testing"
	"time"
)

func newReg() *Registry { return NewRegistry(PriorityConfig{}, 0) }

func TestLifecycleHappyPath(t *testing.T) {
	r := newReg()
	j := r.Submit("cfd", "alice", "batch", 64, 1536, time.Hour, 0)
	if j.ID != 1 || j.State() != Pending {
		t.Fatalf("submit: %+v", j)
	}
	steps := []State{Configuring, Running, Completing, Completed}
	now := time.Duration(0)
	for _, s := range steps {
		now += time.Minute
		if err := r.Transition(j, s, now); err != nil {
			t.Fatalf("-> %v: %v", s, err)
		}
	}
	if !j.State().Terminal() {
		t.Error("job not terminal")
	}
	if j.StartAt != 2*time.Minute || j.EndAt != 4*time.Minute {
		t.Errorf("timestamps: start=%v end=%v", j.StartAt, j.EndAt)
	}
	if len(r.History()) != 1 {
		t.Error("history missing the job")
	}
	if r.Counts()[Completed] != 1 {
		t.Errorf("counts = %v", r.Counts())
	}
}

func TestIllegalTransitions(t *testing.T) {
	r := newReg()
	j := r.Submit("x", "u", "p", 1, 24, time.Hour, 0)
	var bad *ErrBadTransition
	if err := r.Transition(j, Running, 0); !errors.As(err, &bad) {
		t.Fatalf("Pending->Running must fail, got %v", err)
	}
	if bad.From != Pending || bad.To != Running {
		t.Errorf("error detail: %+v", bad)
	}
	// Terminal states are dead ends.
	r.Transition(j, Cancelled, 0)
	if err := r.Transition(j, Configuring, 0); err == nil {
		t.Error("transition out of CANCELLED allowed")
	}
}

func TestRunningFailureModes(t *testing.T) {
	for _, final := range []State{Failed, Timeout, Cancelled} {
		r := newReg()
		j := r.Submit("x", "u", "p", 2, 48, time.Hour, 0)
		r.Transition(j, Configuring, time.Minute)
		r.Transition(j, Running, 2*time.Minute)
		if err := r.Transition(j, final, time.Hour); err != nil {
			t.Fatalf("Running -> %v: %v", final, err)
		}
		// Fair-share charged for the held time.
		if u := r.fs.Usage("u", time.Hour); u <= 0 {
			t.Errorf("%v: no usage charged", final)
		}
	}
}

func TestStateStringsAndTerminal(t *testing.T) {
	for s := Pending; s <= Cancelled; s++ {
		if s.String() == "" {
			t.Error("empty state name")
		}
	}
	if Pending.Terminal() || Running.Terminal() {
		t.Error("live states marked terminal")
	}
	if !Completed.Terminal() || !Timeout.Terminal() {
		t.Error("terminal states not marked")
	}
	if State(99).String() == "" {
		t.Error("unknown state must print")
	}
}

func TestHistoryEviction(t *testing.T) {
	r := NewRegistry(PriorityConfig{}, 5)
	for i := 0; i < 8; i++ {
		j := r.Submit("x", "u", "p", 1, 24, time.Hour, 0)
		r.Transition(j, Cancelled, time.Minute)
	}
	if len(r.History()) != 5 {
		t.Fatalf("history = %d, want cap 5", len(r.History()))
	}
	if r.History()[0].ID != 4 {
		t.Errorf("oldest retained = %d, want 4", r.History()[0].ID)
	}
	// Evicted jobs are gone, retained are findable.
	if r.Get(1) != nil {
		t.Error("evicted job still accessible")
	}
	if r.Get(6) == nil {
		t.Error("retained job lost")
	}
}

func TestPendingPriorityOrder(t *testing.T) {
	r := newReg()
	old := r.Submit("old", "alice", "p", 10, 240, time.Hour, 0)
	big := r.Submit("big", "bob", "p", 20000, 480000, time.Hour, 47*time.Hour)
	fresh := r.Submit("fresh", "alice", "p", 10, 240, time.Hour, 48*time.Hour)

	got := r.Pending(48 * time.Hour)
	if len(got) != 3 {
		t.Fatalf("pending = %d", len(got))
	}
	// The old job has max age factor; the big job has the size factor;
	// the fresh small job trails.
	if got[len(got)-1].ID != fresh.ID {
		t.Errorf("fresh small job should rank last: %v", ids(got))
	}
	if old.Priority() == 0 || big.Priority() == 0 {
		t.Error("priorities not computed")
	}
}

func ids(js []*Job) []ID {
	out := make([]ID, len(js))
	for i, j := range js {
		out[i] = j.ID
	}
	return out
}

func TestFairshareDepressesHeavyUser(t *testing.T) {
	r := newReg()
	// Heavy user burns 4000 node-hours.
	h := r.Submit("burn", "heavy", "p", 4000, 96000, 2*time.Hour, 0)
	r.Transition(h, Configuring, 0)
	r.Transition(h, Running, 0)
	r.Transition(h, Completing, time.Hour)
	r.Transition(h, Completed, time.Hour)

	a := r.Submit("a", "heavy", "p", 10, 240, time.Hour, time.Hour)
	b := r.Submit("b", "light", "p", 10, 240, time.Hour, time.Hour)
	got := r.Pending(time.Hour + time.Minute)
	if got[0].ID != b.ID || got[1].ID != a.ID {
		t.Errorf("fair share did not prefer the light user: %v", ids(got))
	}
}

func TestFairshareDecay(t *testing.T) {
	fs := NewFairshare(24 * time.Hour)
	fs.Charge("u", 1000, 0)
	u0 := fs.Usage("u", 0)
	u1 := fs.Usage("u", 24*time.Hour)
	if math.Abs(u1-u0/2) > 1e-6 {
		t.Errorf("after one half-life usage = %v, want %v", u1, u0/2)
	}
	// Factor is 1 for an unknown user and decreases with usage.
	if fs.Factor("new", 0) != 1 {
		t.Error("fresh user factor != 1")
	}
	fs.Charge("u", 1e12, 25*time.Hour)
	if f := fs.Factor("u", 25*time.Hour); f > 0.01 {
		t.Errorf("huge usage factor = %v", f)
	}
}

func TestAgeFactorSaturates(t *testing.T) {
	cfg := PriorityConfig{}.withDefaults()
	fs := NewFairshare(0)
	j := &Job{Nodes: 1, SubmitAt: 0}
	p1 := cfg.Score(j, fs, cfg.MaxAge)
	p2 := cfg.Score(j, fs, 10*cfg.MaxAge)
	if p1 != p2 {
		t.Errorf("age factor did not saturate: %v vs %v", p1, p2)
	}
}

func TestCountsTrackStates(t *testing.T) {
	r := newReg()
	a := r.Submit("a", "u", "p", 1, 24, time.Hour, 0)
	b := r.Submit("b", "u", "p", 1, 24, time.Hour, 0)
	r.Transition(a, Configuring, 0)
	r.Transition(a, Running, 0)
	c := r.Counts()
	if c[Pending] != 1 || c[Running] != 1 {
		t.Errorf("counts = %v", c)
	}
	_ = b
}
