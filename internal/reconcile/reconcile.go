// Package reconcile drives the simulated ESlurm cluster toward a
// declarative spec, the operator/reconcile pattern applied to the paper's
// satellite layer: a periodic observe→diff→act loop scales the satellite
// pool up and down, gracefully drains cordoned satellites (in-flight
// broadcast tasks resolve before demotion), performs rolling takeovers
// (a warm standby is promoted in the same round its predecessor drains;
// stranded sends are re-adopted by the master's existing retry and
// reallocation machinery), and self-heals after fault campaigns, with
// per-node exponential backoff and a crash-looping circuit breaker so a
// flapping node cannot livelock the loop.
//
// Determinism: the loop runs entirely in simulated time — the round
// ticker, drain deadlines, and probes are engine events; there are no
// goroutines, no wall clocks, and no RNG. Per-round iteration follows
// the pool's configuration order and the spec's sorted cordon list (maps
// are indexed, never ranged), so the same seed and spec schedule replay
// the same action sequence bit for bit.
package reconcile

import (
	"strconv"
	"time"

	"eslurm/internal/cluster"
	"eslurm/internal/core"
	"eslurm/internal/obs"
	"eslurm/internal/satellite"
	"eslurm/internal/simnet"
)

// Config tunes the reconcile loop. Zero values take defaults.
type Config struct {
	// Interval is the reconcile-round cadence.
	Interval time.Duration
	// DrainDeadline bounds how long a graceful drain waits for in-flight
	// tasks before forcing the demotion.
	DrainDeadline time.Duration
	// BackoffBase / BackoffMax bound the per-node exponential backoff
	// applied after a failed revival (promoted, then faulted again).
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// BreakerThreshold is how many consecutive failed revivals open the
	// crash-loop circuit breaker for that node; BreakerCooldown is how
	// long it stays open.
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// StableRounds is how many consecutive healthy rounds a revived node
	// must survive before its failure count resets.
	StableRounds int
}

func (c Config) withDefaults() Config {
	if c.Interval <= 0 {
		c.Interval = 30 * time.Second
	}
	if c.DrainDeadline <= 0 {
		c.DrainDeadline = 2 * time.Minute
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 30 * time.Second
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = 5 * time.Minute
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 3
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 10 * time.Minute
	}
	if c.StableRounds <= 0 {
		c.StableRounds = 2
	}
	return c
}

// Status is a point-in-time summary of the reconciler's work.
type Status struct {
	// Rounds is the number of completed reconcile rounds.
	Rounds int
	// Actions counts state-changing decisions (promotes + drains).
	Actions int
	// Promotes counts standby revivals (Reinstate + probe).
	Promotes int
	// Drains counts graceful drains started; DrainsForced counts the
	// subset whose deadline expired with tasks still in flight.
	Drains       int
	DrainsForced int
	// Takeovers counts rolling replacements: a cordoned satellite drained
	// and a warm standby promoted in the same round.
	Takeovers int
	// BreakerOpens counts circuit-breaker trips.
	BreakerOpens int
	// SpecUpdates counts SetSpec calls (schedule mutations included).
	SpecUpdates int
	// Converged reports whether the cluster met the current spec at the
	// end of the last round; ConvergedRound is the first round (1-based)
	// that did so since the spec last changed (0 = not yet).
	Converged      bool
	ConvergedRound int
}

// nodeCtl is the reconciler's per-satellite control state: backoff and
// breaker bookkeeping for the self-healing path.
type nodeCtl struct {
	failures      int
	backoff       time.Duration
	notBefore     time.Duration
	breakerUntil  time.Duration
	pendingRevive bool
	stable        int
}

// Reconciler runs the observe→diff→act loop over a master's satellite
// pool. Construct with New, arm with Start; all further work happens
// inside engine events.
type Reconciler struct {
	m    *core.Master
	e    *simnet.Engine
	cfg  Config
	spec Spec

	ticker   *simnet.Ticker
	ctl      map[cluster.NodeID]*nodeCtl
	draining map[cluster.NodeID]bool
	st       Status

	rounds       *obs.Counter
	actions      *obs.Counter
	promotes     *obs.Counter
	drains       *obs.Counter
	drainsForced *obs.Counter
	takeovers    *obs.Counter
	breakerOpens *obs.Counter
	specUpdates  *obs.Counter
	converged    *obs.Gauge
}

// New builds a reconciler for the master's pool. The spec is normalized;
// its ESlurm parameters are applied to the master immediately.
func New(m *core.Master, spec Spec, cfg Config) *Reconciler {
	e := m.Cluster.Engine
	reg := e.Metrics()
	r := &Reconciler{
		m:        m,
		e:        e,
		cfg:      cfg.withDefaults(),
		spec:     spec.Normalized(),
		ctl:      map[cluster.NodeID]*nodeCtl{},
		draining: map[cluster.NodeID]bool{},

		rounds:       reg.Counter("reconcile.rounds"),
		actions:      reg.Counter("reconcile.actions"),
		promotes:     reg.Counter("reconcile.promotes"),
		drains:       reg.Counter("reconcile.drains"),
		drainsForced: reg.Counter("reconcile.drains_forced"),
		takeovers:    reg.Counter("reconcile.takeovers"),
		breakerOpens: reg.Counter("reconcile.breaker_opens"),
		specUpdates:  reg.Counter("reconcile.spec_updates"),
		converged:    reg.Gauge("reconcile.converged"),
	}
	r.m.Tune(r.spec.TreeWidth, r.spec.ReallocLimit, time.Duration(r.spec.HeartbeatInterval))
	return r
}

// Start arms the periodic reconcile loop on the engine.
func (r *Reconciler) Start() {
	if r.ticker != nil {
		return
	}
	r.ticker = r.e.Every(r.cfg.Interval, r.round)
}

// Stop disarms the loop. Pending drain deadlines still resolve (they
// belong to the pool), but no further rounds run.
func (r *Reconciler) Stop() {
	if r.ticker != nil {
		r.ticker.Stop()
		r.ticker = nil
	}
}

// Spec returns the current (normalized) spec.
func (r *Reconciler) Spec() Spec { return r.spec }

// Status returns the current status summary.
func (r *Reconciler) Status() Status { return r.st }

// Rounds returns the number of completed rounds.
func (r *Reconciler) Rounds() int { return r.st.Rounds }

// Converged reports whether the cluster met the spec at the end of the
// last completed round.
func (r *Reconciler) Converged() bool { return r.st.Converged }

// SetSpec replaces the spec (a schedule mutation or operator edit),
// resets convergence tracking, and applies the spec's ESlurm parameters.
func (r *Reconciler) SetSpec(s Spec) {
	r.spec = s.Normalized()
	r.st.SpecUpdates++
	r.specUpdates.Inc()
	r.st.Converged = false
	r.st.ConvergedRound = 0
	r.converged.Set(0)
	r.e.Tracer().Instant("reconcile.spec_update", 0,
		obs.Int("satellites", r.spec.Satellites),
		obs.Int("cordoned", len(r.spec.Cordoned)))
	r.m.Tune(r.spec.TreeWidth, r.spec.ReallocLimit, time.Duration(r.spec.HeartbeatInterval))
}

// ScheduleMutations arms a schedule's timed spec mutations as engine
// events.
func (r *Reconciler) ScheduleMutations(muts []Mutation) {
	for _, mu := range muts {
		spec := mu.Spec
		r.e.Schedule(time.Duration(mu.At), func() { r.SetSpec(spec) })
	}
}

func (r *Reconciler) ctlFor(id cluster.NodeID) *nodeCtl {
	c := r.ctl[id]
	if c == nil {
		c = &nodeCtl{backoff: r.cfg.BackoffBase}
		r.ctl[id] = c
	}
	return c
}

// round is one observe→diff→act pass. It runs as an engine event.
func (r *Reconciler) round() {
	r.st.Rounds++
	r.rounds.Inc()
	now := r.e.Now()
	tr := r.e.Tracer()
	span := tr.Start("reconcile.round", 0, obs.Int("round", r.st.Rounds))

	pool := r.m.Pool
	cordonSet := map[cluster.NodeID]bool{}
	for _, id := range r.spec.Cordoned {
		cordonSet[id] = true
	}

	// Observe: settle revival bookkeeping (backoff, breaker) and align
	// cordon marks with the spec before acting.
	for _, s := range pool.All() {
		r.observeNode(s, cordonSet[s.ID], now, span)
	}

	// Target: the spec's desired count clamped to the satellites that can
	// actually serve it (pool members not held out by the cordon list).
	eligible := 0
	for _, s := range pool.All() {
		if !cordonSet[s.ID] {
			eligible++
		}
	}
	target := r.spec.Satellites
	if target > eligible {
		target = eligible
	}

	actions := 0
	var drainedCordons []cluster.NodeID

	// Act 1: enforce the cordon list — gracefully drain any cordoned
	// satellite still in service.
	for _, id := range r.spec.Cordoned {
		s := pool.Get(id)
		if s == nil || r.draining[id] || s.State() == satellite.Down {
			continue
		}
		r.drainSat(s)
		actions++
		drainedCordons = append(drainedCordons, id)
	}

	// Observe the remaining fleet: active satellites (in service or
	// probing) versus parked standbys.
	active := 0
	var standbys []*satellite.Satellite
	for _, s := range pool.All() {
		if cordonSet[s.ID] || r.draining[s.ID] {
			continue
		}
		switch s.State() {
		case satellite.Unknown, satellite.Running, satellite.Busy:
			active++
		case satellite.Down:
			standbys = append(standbys, s)
		case satellite.Fault:
			// The heartbeat sweep owns FAULT recovery; the FAULT-timeout
			// owns demotion. The reconciler waits for one of them.
		}
	}

	// Act 2: diff against the target and scale.
	var promoted []cluster.NodeID
	if active < target {
		for _, s := range standbys {
			if active+len(promoted) >= target {
				break
			}
			if r.promote(s, now, span) {
				promoted = append(promoted, s.ID)
				actions++
			}
		}
	} else if active > target {
		// Scale down gracefully, highest IDs first, so the satellites that
		// remain are the stable low-ID prefix.
		excess := active - target
		all := pool.All()
		for i := len(all) - 1; i >= 0 && excess > 0; i-- {
			s := all[i]
			if cordonSet[s.ID] || r.draining[s.ID] {
				continue
			}
			switch s.State() {
			case satellite.Unknown, satellite.Running, satellite.Busy:
				r.drainSat(s)
				actions++
				excess--
			}
		}
	}

	// A promotion landing in the same round as a cordon drain is a rolling
	// takeover: the standby warms up while its predecessor's in-flight
	// tasks resolve, and stranded sends are re-adopted by the dispatch
	// watchdog.
	for i := 0; i < len(drainedCordons) && i < len(promoted); i++ {
		r.st.Takeovers++
		r.takeovers.Inc()
		tr.Instant("reconcile.takeover", span,
			obs.Int("from", int(drainedCordons[i])),
			obs.Int("to", int(promoted[i])))
	}

	r.st.Actions += actions
	r.actions.Add(int64(actions))

	conv := r.convergedNow(target, cordonSet)
	r.st.Converged = conv
	if conv {
		if r.st.ConvergedRound == 0 {
			r.st.ConvergedRound = r.st.Rounds
		}
		r.converged.Set(1)
	} else {
		r.converged.Set(0)
	}
	tr.SetAttrInt(span, "actions", actions)
	tr.SetAttrInt(span, "active", active)
	tr.SetAttrInt(span, "target", target)
	tr.SetAttr(span, "converged", strconv.FormatBool(conv))
	tr.End(span)
}

// observeNode updates one satellite's revival bookkeeping and aligns its
// cordon mark with the spec.
func (r *Reconciler) observeNode(s *satellite.Satellite, wantCordon bool, now time.Duration, span obs.SpanID) {
	id := s.ID
	if wantCordon && !s.Cordoned() {
		r.m.Pool.Cordon(id)
	}
	if !wantCordon && s.Cordoned() && !r.draining[id] && s.State() != satellite.Down {
		// Dropped from the spec's cordon list while still up: return it to
		// the schedulable fleet. (DOWN satellites rejoin via promote, which
		// uncordons as part of Reinstate.)
		r.m.Pool.Uncordon(id)
	}
	c := r.ctl[id]
	if c == nil || !c.pendingRevive {
		return
	}
	switch s.State() {
	case satellite.Running, satellite.Busy:
		c.stable++
		if c.stable >= r.cfg.StableRounds {
			c.pendingRevive = false
			c.failures = 0
			c.backoff = r.cfg.BackoffBase
		}
	case satellite.Fault, satellite.Down:
		// Crash-looped: the revived node faulted again before stabilizing.
		c.pendingRevive = false
		c.stable = 0
		c.failures++
		c.notBefore = now + c.backoff
		c.backoff *= 2
		if c.backoff > r.cfg.BackoffMax {
			c.backoff = r.cfg.BackoffMax
		}
		if c.failures >= r.cfg.BreakerThreshold {
			c.failures = 0
			c.breakerUntil = now + r.cfg.BreakerCooldown
			r.st.BreakerOpens++
			r.breakerOpens.Inc()
			r.e.Tracer().Instant("reconcile.breaker_open", span, obs.Int("sat", int(id)))
		}
	case satellite.Unknown:
		// Probe still in flight; keep waiting.
	}
}

// promote revives one parked standby: Reinstate (DOWN → UNKNOWN,
// uncordoned) plus an out-of-cycle heartbeat probe. Backoff windows, an
// open breaker, and substrate-dead nodes (the out-of-band health check an
// RM's BMC/ping layer provides) all veto the attempt.
func (r *Reconciler) promote(s *satellite.Satellite, now time.Duration, span obs.SpanID) bool {
	id := s.ID
	c := r.ctlFor(id)
	if now < c.notBefore || now < c.breakerUntil {
		return false
	}
	if r.m.Cluster.Node(id).Failed() {
		return false
	}
	if !r.m.Pool.Reinstate(id) {
		return false
	}
	c.pendingRevive = true
	c.stable = 0
	r.m.ProbeSatellite(id)
	r.st.Promotes++
	r.promotes.Inc()
	r.e.Tracer().Instant("reconcile.promote", span, obs.Int("sat", int(id)))
	return true
}

// drainSat starts a graceful drain and tracks it to completion. The
// reconcile.drain span stays open across rounds until the drain resolves.
func (r *Reconciler) drainSat(s *satellite.Satellite) {
	id := s.ID
	tr := r.e.Tracer()
	dspan := tr.Start("reconcile.drain", 0, obs.Int("sat", int(id)))
	r.draining[id] = true
	r.st.Drains++
	r.drains.Inc()
	err := r.m.DrainSatellite(id, r.cfg.DrainDeadline, func(clean, delivered bool) {
		delete(r.draining, id)
		if !clean {
			r.st.DrainsForced++
			r.drainsForced.Inc()
		}
		tr.SetAttr(dspan, "clean", strconv.FormatBool(clean))
		tr.SetAttr(dspan, "delivered", strconv.FormatBool(delivered))
		tr.End(dspan)
	})
	if err != nil {
		// Drain refused (already draining — guarded above, so in practice
		// unreachable); release the slot rather than wedge it.
		delete(r.draining, id)
		tr.SetAttr(dspan, "error", err.Error())
		tr.End(dspan)
	}
}

// convergedNow checks the spec against the observed pool: every cordoned
// satellite DOWN, no drains pending, no probes unresolved, and exactly
// target schedulable satellites in service.
func (r *Reconciler) convergedNow(target int, cordonSet map[cluster.NodeID]bool) bool {
	if len(r.draining) > 0 {
		return false
	}
	pool := r.m.Pool
	for _, id := range r.spec.Cordoned {
		if s := pool.Get(id); s != nil && s.State() != satellite.Down {
			return false
		}
	}
	inService := 0
	for _, s := range pool.All() {
		if cordonSet[s.ID] {
			continue
		}
		switch s.State() {
		case satellite.Running, satellite.Busy:
			inService++
		case satellite.Unknown:
			return false
		}
	}
	return inService == target
}
