package reconcile

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"

	"eslurm/internal/cluster"
	"eslurm/internal/config"
)

// Duration is a time.Duration that unmarshals from JSON either as a Go
// duration string ("150s", "5m") or as an integer nanosecond count.
type Duration time.Duration

// UnmarshalJSON implements json.Unmarshaler.
func (d *Duration) UnmarshalJSON(b []byte) error {
	if len(b) > 0 && b[0] == '"' {
		var s string
		if err := json.Unmarshal(b, &s); err != nil {
			return err
		}
		v, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("reconcile: bad duration %q", s)
		}
		*d = Duration(v)
		return nil
	}
	var n int64
	if err := json.Unmarshal(b, &n); err != nil {
		return err
	}
	*d = Duration(n)
	return nil
}

// MarshalJSON implements json.Marshaler.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// Spec is the declarative cluster spec the reconciler drives toward: the
// desired satellite count with replica bounds, administratively cordoned
// satellites, and the runtime-tunable ESlurm parameters. Zero values mean
// "unset / keep the current setting".
type Spec struct {
	// Satellites is the desired number of schedulable (non-cordoned)
	// satellites in service.
	Satellites int `json:"satellites"`
	// MinSatellites / MaxSatellites bound the replica count; the target is
	// clamped into [min, max] (either bound may be 0 = unbounded).
	MinSatellites int `json:"min_satellites,omitempty"`
	MaxSatellites int `json:"max_satellites,omitempty"`
	// Cordoned lists satellite node IDs to hold out of service: each is
	// gracefully drained (in-flight tasks resolve up to the deadline) and
	// kept DOWN while it remains in the spec.
	Cordoned []cluster.NodeID `json:"cordoned,omitempty"`
	// ESlurm parameters carried by the spec (0 = keep current).
	TreeWidth         int      `json:"tree_width,omitempty"`
	ReallocLimit      int      `json:"realloc_limit,omitempty"`
	HeartbeatInterval Duration `json:"heartbeat_interval,omitempty"`
}

// Normalized returns a copy with the cordon list sorted and deduplicated
// and the target clamped into [MinSatellites, MaxSatellites]. The
// reconciler only ever holds normalized specs, so its per-round iteration
// order is deterministic by construction.
func (s Spec) Normalized() Spec {
	out := s
	out.Cordoned = append([]cluster.NodeID(nil), s.Cordoned...)
	sort.Slice(out.Cordoned, func(i, j int) bool { return out.Cordoned[i] < out.Cordoned[j] })
	k := 0
	for i, id := range out.Cordoned {
		if i == 0 || id != out.Cordoned[k-1] {
			out.Cordoned[k] = id
			k++
		}
	}
	out.Cordoned = out.Cordoned[:k]
	if out.MinSatellites > 0 && out.Satellites < out.MinSatellites {
		out.Satellites = out.MinSatellites
	}
	if out.MaxSatellites > 0 && out.Satellites > out.MaxSatellites {
		out.Satellites = out.MaxSatellites
	}
	return out
}

// Validate rejects self-contradictory specs.
func (s Spec) Validate() error {
	if s.Satellites < 0 || s.MinSatellites < 0 || s.MaxSatellites < 0 {
		return fmt.Errorf("reconcile: negative satellite counts in spec")
	}
	if s.MaxSatellites > 0 && s.MinSatellites > s.MaxSatellites {
		return fmt.Errorf("reconcile: min_satellites %d > max_satellites %d", s.MinSatellites, s.MaxSatellites)
	}
	if s.HeartbeatInterval < 0 {
		return fmt.Errorf("reconcile: negative heartbeat_interval")
	}
	for _, id := range s.Cordoned {
		if id <= 0 {
			return fmt.Errorf("reconcile: cordoned ID %d is not a satellite (satellites are IDs 1..m)", id)
		}
	}
	return nil
}

// Mutation is one timed spec change in a schedule.
type Mutation struct {
	// At is the simulated time the mutation applies.
	At Duration `json:"at"`
	// Spec replaces the reconciler's spec wholesale at that time.
	Spec Spec `json:"spec"`
}

// Schedule is a spec plus timed mid-run mutations, the eslurmctl -spec
// file format.
type Schedule struct {
	Initial   Spec       `json:"initial"`
	Mutations []Mutation `json:"schedule,omitempty"`
}

// ParseSpec reads a single JSON spec. Unknown fields are errors, so a
// typoed knob fails loudly instead of silently keeping a default.
func ParseSpec(r io.Reader) (Spec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("reconcile: parsing spec: %v", err)
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s.Normalized(), nil
}

// ParseSchedule reads a JSON spec schedule: {"initial": {...},
// "schedule": [{"at": "5m", "spec": {...}}, ...]}. Mutations are sorted
// by time (stably, so equal-time mutations keep file order and the
// resulting engine schedule is deterministic).
func ParseSchedule(r io.Reader) (*Schedule, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var sc Schedule
	if err := dec.Decode(&sc); err != nil {
		return nil, fmt.Errorf("reconcile: parsing spec schedule: %v", err)
	}
	if err := sc.Initial.Validate(); err != nil {
		return nil, fmt.Errorf("reconcile: initial spec: %v", err)
	}
	sc.Initial = sc.Initial.Normalized()
	for i := range sc.Mutations {
		if sc.Mutations[i].At < 0 {
			return nil, fmt.Errorf("reconcile: mutation %d: negative time", i)
		}
		if err := sc.Mutations[i].Spec.Validate(); err != nil {
			return nil, fmt.Errorf("reconcile: mutation %d: %v", i, err)
		}
		sc.Mutations[i].Spec = sc.Mutations[i].Spec.Normalized()
	}
	sort.SliceStable(sc.Mutations, func(i, j int) bool { return sc.Mutations[i].At < sc.Mutations[j].At })
	return &sc, nil
}

// FromConfig derives a spec and reconciler options from eslurm.conf keys
// (SatelliteTarget/Min/Max, CordonedSatellites, ReconcileInterval,
// DrainDeadline). Satellite hosts map onto node IDs positionally: the
// i-th SatelliteNodes entry is node ID 1+i, matching cluster.New's
// layout. An unset target defaults to the full satellite list.
func FromConfig(c *config.Config) (Spec, Config, error) {
	s := Spec{
		Satellites:        c.SatelliteTarget,
		MinSatellites:     c.SatelliteMin,
		MaxSatellites:     c.SatelliteMax,
		TreeWidth:         c.TreeWidth,
		ReallocLimit:      c.ReallocLimit,
		HeartbeatInterval: Duration(c.HeartbeatInterval),
	}
	if s.Satellites == 0 {
		s.Satellites = len(c.SatelliteNodes)
	}
	for _, name := range c.CordonedSatellites {
		idx := -1
		for i, sn := range c.SatelliteNodes {
			if sn == name {
				idx = i
				break
			}
		}
		if idx < 0 {
			return Spec{}, Config{}, fmt.Errorf("reconcile: cordoned satellite %q is not in SatelliteNodes", name)
		}
		s.Cordoned = append(s.Cordoned, cluster.NodeID(1+idx))
	}
	if err := s.Validate(); err != nil {
		return Spec{}, Config{}, err
	}
	opts := Config{Interval: c.ReconcileInterval, DrainDeadline: c.DrainDeadline}
	return s.Normalized(), opts, nil
}
