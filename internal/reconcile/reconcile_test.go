package reconcile

import (
	"strings"
	"testing"
	"time"

	"eslurm/internal/cluster"
	"eslurm/internal/config"
	"eslurm/internal/core"
	"eslurm/internal/satellite"
	"eslurm/internal/simnet"
)

// harness builds a running stack: engine, cluster, started master.
func harness(t *testing.T, seed int64, sats int) (*simnet.Engine, *cluster.Cluster, *core.Master) {
	t.Helper()
	e := simnet.NewEngine(seed)
	c := cluster.New(e, cluster.Config{Computes: 32, Satellites: sats})
	m := core.NewMaster(c, core.DefaultConfig(), nil)
	m.Start()
	e.RunUntil(5 * time.Second) // initial probes promote every satellite
	return e, c, m
}

func runningNonCordoned(p *satellite.Pool) int {
	n := 0
	for _, s := range p.All() {
		if !s.Cordoned() && (s.State() == satellite.Running || s.State() == satellite.Busy) {
			n++
		}
	}
	return n
}

func TestScaleDownThenUpConverges(t *testing.T) {
	e, _, m := harness(t, 1, 4)
	rec := New(m, Spec{Satellites: 2}, Config{Interval: 20 * time.Second})
	rec.Start()
	e.RunUntil(e.Now() + time.Minute)
	st := rec.Status()
	if !st.Converged {
		t.Fatalf("not converged after scale-down: %+v", st)
	}
	if st.Drains != 2 {
		t.Fatalf("Drains = %d, want 2", st.Drains)
	}
	if got := runningNonCordoned(m.Pool); got != 2 {
		t.Fatalf("in-service satellites = %d, want 2", got)
	}
	if h := m.Pool.Health(); h.Down != 2 {
		t.Fatalf("parked standbys = %d, want 2", h.Down)
	}

	// Scale back up: the parked standbys are reinstated and probed.
	rec.SetSpec(Spec{Satellites: 4})
	if rec.Converged() {
		t.Fatal("SetSpec must reset convergence")
	}
	e.RunUntil(e.Now() + 2*time.Minute)
	st = rec.Status()
	if !st.Converged {
		t.Fatalf("not converged after scale-up: %+v", st)
	}
	if st.Promotes != 2 {
		t.Fatalf("Promotes = %d, want 2", st.Promotes)
	}
	if got := runningNonCordoned(m.Pool); got != 4 {
		t.Fatalf("in-service satellites = %d, want 4", got)
	}
	rec.Stop()
	m.Stop()
	e.Run()
}

func TestRollingCordonReplacement(t *testing.T) {
	e, _, m := harness(t, 2, 4)
	rec := New(m, Spec{Satellites: 3}, Config{Interval: 20 * time.Second})
	rec.Start()
	e.RunUntil(e.Now() + time.Minute)
	if !rec.Converged() {
		t.Fatalf("initial spec not converged: %+v", rec.Status())
	}

	// Cordon satellite 1 keeping the target: the reconciler must drain it
	// and promote the parked standby in the same round — a rolling
	// takeover.
	rec.SetSpec(Spec{Satellites: 3, Cordoned: []cluster.NodeID{1}})
	e.RunUntil(e.Now() + 2*time.Minute)
	st := rec.Status()
	if !st.Converged {
		t.Fatalf("not converged after cordon: %+v", st)
	}
	if st.Takeovers != 1 {
		t.Fatalf("Takeovers = %d, want 1", st.Takeovers)
	}
	s1 := m.Pool.Get(1)
	if s1.State() != satellite.Down || !s1.Cordoned() {
		t.Fatalf("cordoned satellite: state=%v cordoned=%v, want DOWN and cordoned", s1.State(), s1.Cordoned())
	}
	if got := runningNonCordoned(m.Pool); got != 3 {
		t.Fatalf("in-service satellites = %d, want 3", got)
	}

	// Dropping the cordon returns it to the standby pool; with the target
	// already met it stays DOWN.
	rec.SetSpec(Spec{Satellites: 3})
	e.RunUntil(e.Now() + time.Minute)
	if !rec.Converged() {
		t.Fatalf("not converged after uncordon: %+v", rec.Status())
	}
	if s1.State() != satellite.Down {
		t.Fatalf("standby state = %v, want DOWN", s1.State())
	}
	rec.Stop()
	m.Stop()
	e.Run()
}

// TestBreakerOpensOnCrashLoop: a satellite severed from the master (node
// up, heartbeats dead) crash-loops on every revival; the backoff must
// space the attempts and the circuit breaker must open rather than
// livelock the loop.
func TestBreakerOpensOnCrashLoop(t *testing.T) {
	e, c, m := harness(t, 3, 2)
	m.Pool.FaultTimeout = 30 * time.Second
	// Sever satellite 2 behind a partition that never heals: probes fail,
	// but the node is not Failed, so revival attempts proceed and fault.
	c.Net.Partition([]cluster.NodeID{2}, 24*time.Hour)
	rec := New(m, Spec{Satellites: 2}, Config{
		Interval:         20 * time.Second,
		BackoffBase:      30 * time.Second,
		BreakerThreshold: 2,
		BreakerCooldown:  time.Hour,
		StableRounds:     2,
	})
	rec.Start()
	e.RunUntil(e.Now() + 20*time.Minute)
	st := rec.Status()
	if st.Converged {
		t.Fatal("cannot converge with a severed satellite; Converged must be false")
	}
	if st.BreakerOpens == 0 {
		t.Fatalf("breaker never opened: %+v", st)
	}
	if st.Promotes < 2 || st.Promotes > 6 {
		t.Fatalf("Promotes = %d; backoff+breaker should bound revival attempts to a handful", st.Promotes)
	}
	if st.Rounds < 30 {
		t.Fatalf("Rounds = %d; the loop itself must keep running", st.Rounds)
	}
	rec.Stop()
	m.Stop()
	e.Run()
}

// TestReconcilerDeterminism: the same seed and spec schedule replay to an
// identical status and event count.
func TestReconcilerDeterminism(t *testing.T) {
	run := func() (Status, uint64) {
		e, c, m := harness(t, 7, 4)
		m.Pool.FaultTimeout = time.Minute
		c.ScheduleFailure(2, 2*time.Minute, 3*time.Minute)
		rec := New(m, Spec{Satellites: 3}, Config{Interval: 20 * time.Second})
		rec.Start()
		rec.ScheduleMutations([]Mutation{
			{At: Duration(4 * time.Minute), Spec: Spec{Satellites: 4}},
			{At: Duration(8 * time.Minute), Spec: Spec{Satellites: 2, Cordoned: []cluster.NodeID{1}}},
		})
		e.RunUntil(16 * time.Minute)
		rec.Stop()
		m.Stop()
		e.Run()
		return rec.Status(), e.Processed()
	}
	st1, ev1 := run()
	st2, ev2 := run()
	if st1 != st2 {
		t.Fatalf("status diverged across same-seed runs:\n%+v\n%+v", st1, st2)
	}
	if ev1 != ev2 {
		t.Fatalf("event counts diverged: %d vs %d", ev1, ev2)
	}
	if !st1.Converged {
		t.Fatalf("schedule did not converge: %+v", st1)
	}
}

func TestSpecTuneAppliesToMaster(t *testing.T) {
	_, _, m := harness(t, 4, 2)
	New(m, Spec{Satellites: 2, TreeWidth: 17, ReallocLimit: 5, HeartbeatInterval: Duration(200 * time.Second)}, Config{})
	cfg := m.Config()
	if cfg.TreeWidth != 17 || cfg.ReallocLimit != 5 || cfg.HeartbeatInterval != 200*time.Second {
		t.Fatalf("Tune not applied: %+v", cfg)
	}
}

func TestParseSpecAndSchedule(t *testing.T) {
	s, err := ParseSpec(strings.NewReader(`{
		"satellites": 3, "min_satellites": 2, "max_satellites": 8,
		"cordoned": [4, 2, 4],
		"tree_width": 50, "realloc_limit": 2, "heartbeat_interval": "150s"}`))
	if err != nil {
		t.Fatal(err)
	}
	if s.Satellites != 3 || s.MinSatellites != 2 || s.MaxSatellites != 8 {
		t.Fatalf("counts: %+v", s)
	}
	if len(s.Cordoned) != 2 || s.Cordoned[0] != 2 || s.Cordoned[1] != 4 {
		t.Fatalf("cordon list not sorted+deduped: %v", s.Cordoned)
	}
	if time.Duration(s.HeartbeatInterval) != 150*time.Second {
		t.Fatalf("heartbeat interval: %v", s.HeartbeatInterval)
	}

	if _, err := ParseSpec(strings.NewReader(`{"satelites": 3}`)); err == nil {
		t.Fatal("typoed field must error (unknown fields disallowed)")
	}
	if _, err := ParseSpec(strings.NewReader(`{"min_satellites": 5, "max_satellites": 2}`)); err == nil {
		t.Fatal("min > max must error")
	}

	sc, err := ParseSchedule(strings.NewReader(`{
		"initial": {"satellites": 4},
		"schedule": [
			{"at": "10m", "spec": {"satellites": 2}},
			{"at": "5m", "spec": {"satellites": 5}}
		]}`))
	if err != nil {
		t.Fatal(err)
	}
	if sc.Initial.Satellites != 4 || len(sc.Mutations) != 2 {
		t.Fatalf("schedule: %+v", sc)
	}
	if time.Duration(sc.Mutations[0].At) != 5*time.Minute {
		t.Fatalf("mutations not sorted by time: %+v", sc.Mutations)
	}
	if _, err := ParseSchedule(strings.NewReader(`{"initial": {"satellites": -1}}`)); err == nil {
		t.Fatal("invalid initial spec must error")
	}
}

func TestNormalizedClampsTarget(t *testing.T) {
	s := Spec{Satellites: 10, MaxSatellites: 4}.Normalized()
	if s.Satellites != 4 {
		t.Fatalf("clamp to max: %d", s.Satellites)
	}
	s = Spec{Satellites: 1, MinSatellites: 3}.Normalized()
	if s.Satellites != 3 {
		t.Fatalf("clamp to min: %d", s.Satellites)
	}
}

func TestFromConfig(t *testing.T) {
	conf, err := config.Parse(strings.NewReader(`
ClusterName=test
SatelliteNodes=sat[1-4]
SatelliteTarget=3
SatelliteMin=1
SatelliteMax=4
CordonedSatellites=sat2
ReconcileInterval=45s
DrainDeadline=2m
TreeWidth=30
`))
	if err != nil {
		t.Fatal(err)
	}
	spec, opts, err := FromConfig(conf)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Satellites != 3 || spec.MinSatellites != 1 || spec.MaxSatellites != 4 {
		t.Fatalf("spec counts: %+v", spec)
	}
	if len(spec.Cordoned) != 1 || spec.Cordoned[0] != 2 {
		t.Fatalf("cordon mapping: %v (sat2 is the 2nd satellite host = node ID 2)", spec.Cordoned)
	}
	if spec.TreeWidth != 30 {
		t.Fatalf("tree width: %d", spec.TreeWidth)
	}
	if opts.Interval != 45*time.Second || opts.DrainDeadline != 2*time.Minute {
		t.Fatalf("opts: %+v", opts)
	}

	conf.CordonedSatellites = []string{"nosuch"}
	if _, _, err := FromConfig(conf); err == nil {
		t.Fatal("unknown cordoned host must error")
	}
}
