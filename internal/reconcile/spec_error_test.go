package reconcile

import (
	"strings"
	"testing"
	"time"
)

// Table-driven error-path coverage for the spec parsers: every rejection
// branch in ParseSpec/ParseSchedule/Validate, with a substring of the
// diagnostic pinned so a refactor cannot silently swap one error for a
// vaguer one.

func TestParseSpecErrors(t *testing.T) {
	cases := []struct {
		name    string
		in      string
		wantErr string // substring of the error; "" means must parse
	}{
		{"unknown field", `{"satelites": 3}`, `unknown field`},
		{"unknown nested knob", `{"satellites": 2, "tree_widht": 50}`, `unknown field`},
		{"not json", `satellites = 3`, `parsing spec`},
		{"wrong type", `{"satellites": "three"}`, `parsing spec`},
		{"bad duration string", `{"heartbeat_interval": "150 parsecs"}`, `bad duration`},
		{"negative target", `{"satellites": -1}`, `negative satellite counts`},
		{"negative min", `{"min_satellites": -2}`, `negative satellite counts`},
		{"min over max", `{"min_satellites": 5, "max_satellites": 2}`, `min_satellites 5 > max_satellites 2`},
		{"negative heartbeat", `{"heartbeat_interval": "-10s"}`, `negative heartbeat_interval`},
		{"cordoned master", `{"cordoned": [0]}`, `not a satellite`},
		{"cordoned negative", `{"cordoned": [-3]}`, `not a satellite`},
		{"zero min is unbounded", `{"min_satellites": 0, "max_satellites": 2, "satellites": 1}`, ``},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseSpec(strings.NewReader(tc.in))
			checkParseErr(t, err, tc.wantErr)
		})
	}
}

func TestParseScheduleErrors(t *testing.T) {
	cases := []struct {
		name    string
		in      string
		wantErr string
	}{
		{"unknown top-level field", `{"initial": {}, "schdule": []}`, `unknown field`},
		{"unknown field in mutation spec",
			`{"initial": {}, "schedule": [{"at": "1m", "spec": {"satelites": 2}}]}`,
			`unknown field`},
		{"invalid initial spec", `{"initial": {"satellites": -1}}`, `initial spec`},
		{"negative mutation time",
			`{"initial": {}, "schedule": [{"at": "-5m", "spec": {}}]}`,
			`mutation 0: negative time`},
		{"invalid second mutation names its index",
			`{"initial": {}, "schedule": [
				{"at": "1m", "spec": {}},
				{"at": "2m", "spec": {"min_satellites": 9, "max_satellites": 1}}
			]}`,
			`mutation 1:`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseSchedule(strings.NewReader(tc.in))
			checkParseErr(t, err, tc.wantErr)
		})
	}
}

func checkParseErr(t *testing.T, err error, want string) {
	t.Helper()
	if want == "" {
		if err != nil {
			t.Fatalf("unexpected error: %v", err)
		}
		return
	}
	if err == nil {
		t.Fatalf("parse accepted input, want error containing %q", want)
	}
	if !strings.Contains(err.Error(), want) {
		t.Fatalf("error %q does not contain %q", err, want)
	}
}

// TestParseSpecClampsThroughParse: the parser returns normalized specs,
// so a target outside [min, max] is already clamped by the time a caller
// sees it — the reconciler never observes an out-of-bounds target.
func TestParseSpecClampsThroughParse(t *testing.T) {
	cases := []struct {
		name string
		in   string
		want int
	}{
		{"clamped up to min", `{"satellites": 1, "min_satellites": 3}`, 3},
		{"clamped down to max", `{"satellites": 10, "max_satellites": 4}`, 4},
		{"inside bounds untouched", `{"satellites": 3, "min_satellites": 2, "max_satellites": 8}`, 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, err := ParseSpec(strings.NewReader(tc.in))
			if err != nil {
				t.Fatal(err)
			}
			if s.Satellites != tc.want {
				t.Fatalf("Satellites = %d, want %d", s.Satellites, tc.want)
			}
		})
	}
}

// TestParseScheduleStableSort: mutations sort by time, and equal-time
// mutations keep file order (stable sort) — the property that makes the
// resulting engine schedule deterministic for ties.
func TestParseScheduleStableSort(t *testing.T) {
	sc, err := ParseSchedule(strings.NewReader(`{
		"initial": {"satellites": 4},
		"schedule": [
			{"at": "10m", "spec": {"satellites": 7}},
			{"at": "5m",  "spec": {"satellites": 2}},
			{"at": "5m",  "spec": {"satellites": 3}}
		]}`))
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.Mutations) != 3 {
		t.Fatalf("mutations: %+v", sc.Mutations)
	}
	if time.Duration(sc.Mutations[0].At) != 5*time.Minute || sc.Mutations[0].Spec.Satellites != 2 {
		t.Fatalf("first mutation should be the earlier equal-time entry in file order: %+v", sc.Mutations[0])
	}
	if sc.Mutations[1].Spec.Satellites != 3 || time.Duration(sc.Mutations[2].At) != 10*time.Minute {
		t.Fatalf("equal-time file order / overall sort broken: %+v", sc.Mutations)
	}
}
