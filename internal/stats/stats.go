// Package stats provides the descriptive statistics and time-series
// utilities the experiment harness reports with: streaming summaries
// (mean/min/max/percentiles), fixed-bin histograms, time-weighted
// averages for gauge-like series (concurrent sockets), and CSV export of
// sampled series so the paper's figures can be re-plotted from raw data.
//
// Determinism: all accumulators are insertion-ordered and purely
// arithmetic (percentiles sort copies; histograms use fixed bins), so the
// same observation sequence always renders the same report bytes.
package stats

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"time"
)

// Summary accumulates scalar observations for reporting.
type Summary struct {
	values []float64
	sum    float64
	min    float64
	max    float64
}

// Add records one observation.
func (s *Summary) Add(v float64) {
	if len(s.values) == 0 || v < s.min {
		s.min = v
	}
	if len(s.values) == 0 || v > s.max {
		s.max = v
	}
	s.values = append(s.values, v)
	s.sum += v
}

// N returns the observation count.
func (s *Summary) N() int { return len(s.values) }

// Mean returns the arithmetic mean (0 for empty).
func (s *Summary) Mean() float64 {
	if len(s.values) == 0 {
		return 0
	}
	return s.sum / float64(len(s.values))
}

// Min returns the smallest observation (0 for empty).
func (s *Summary) Min() float64 {
	if len(s.values) == 0 {
		return 0
	}
	return s.min
}

// Max returns the largest observation (0 for empty).
func (s *Summary) Max() float64 {
	if len(s.values) == 0 {
		return 0
	}
	return s.max
}

// Stddev returns the population standard deviation.
func (s *Summary) Stddev() float64 {
	n := len(s.values)
	if n == 0 {
		return 0
	}
	mu := s.Mean()
	acc := 0.0
	for _, v := range s.values {
		d := v - mu
		acc += d * d
	}
	return math.Sqrt(acc / float64(n))
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) using
// nearest-rank on the sorted observations.
func (s *Summary) Percentile(p float64) float64 {
	n := len(s.values)
	if n == 0 {
		return 0
	}
	sorted := append([]float64(nil), s.values...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[n-1]
	}
	rank := int(math.Ceil(p / 100 * float64(n)))
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

// String renders a one-line digest.
func (s *Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.3g min=%.3g p50=%.3g p95=%.3g max=%.3g",
		s.N(), s.Mean(), s.Min(), s.Percentile(50), s.Percentile(95), s.Max())
}

// Histogram counts observations into fixed-width bins over [Lo, Hi);
// out-of-range values land in the under/overflow counters.
type Histogram struct {
	Lo, Hi    float64
	Bins      []int
	Underflow int
	Overflow  int
}

// NewHistogram builds a histogram with n bins over [lo, hi). It panics on
// a non-positive bin count or an empty range — always a caller bug.
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 || hi <= lo {
		panic("stats: histogram needs n > 0 and hi > lo")
	}
	return &Histogram{Lo: lo, Hi: hi, Bins: make([]int, n)}
}

// Add counts one observation.
func (h *Histogram) Add(v float64) {
	switch {
	case v < h.Lo:
		h.Underflow++
	case v >= h.Hi:
		h.Overflow++
	default:
		i := int((v - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Bins)))
		if i >= len(h.Bins) { // float edge
			i = len(h.Bins) - 1
		}
		h.Bins[i]++
	}
}

// Total returns all counted observations including out-of-range ones.
func (h *Histogram) Total() int {
	t := h.Underflow + h.Overflow
	for _, b := range h.Bins {
		t += b
	}
	return t
}

// CDF returns the cumulative fraction of in-range observations at each
// bin's upper edge.
func (h *Histogram) CDF() []float64 {
	total := 0
	for _, b := range h.Bins {
		total += b
	}
	out := make([]float64, len(h.Bins))
	run := 0
	for i, b := range h.Bins {
		run += b
		if total > 0 {
			out[i] = float64(run) / float64(total)
		}
	}
	return out
}

// TimeWeighted integrates a step-function gauge (e.g. concurrent sockets)
// over virtual time: the average is ∫value·dt / span.
type TimeWeighted struct {
	last     float64
	lastAt   time.Duration
	weighted float64
	started  bool
	startAt  time.Duration
}

// Observe records the gauge's new value at virtual time at. Observations
// must be time-ordered.
func (t *TimeWeighted) Observe(at time.Duration, value float64) {
	if !t.started {
		t.started = true
		t.startAt = at
	} else {
		t.weighted += t.last * (at - t.lastAt).Seconds()
	}
	t.last = value
	t.lastAt = at
}

// AvgAt returns the time-weighted average over [start, at].
func (t *TimeWeighted) AvgAt(at time.Duration) float64 {
	if !t.started || at <= t.startAt {
		return 0
	}
	w := t.weighted + t.last*(at-t.lastAt).Seconds()
	return w / (at - t.startAt).Seconds()
}

// Series is a named sequence of (t, value) points — one figure line.
type Series struct {
	Name   string
	Times  []time.Duration
	Values []float64
}

// Append adds a point.
func (s *Series) Append(at time.Duration, v float64) {
	s.Times = append(s.Times, at)
	s.Values = append(s.Values, v)
}

// WriteCSV renders one or more series sharing a time axis as CSV:
// header "seconds,<name1>,<name2>,..."; rows align by index (series must
// be sampled on the same schedule — the experiment samplers are).
func WriteCSV(w io.Writer, series ...*Series) error {
	if len(series) == 0 {
		return nil
	}
	n := len(series[0].Times)
	for _, s := range series {
		if len(s.Times) != n {
			return fmt.Errorf("stats: series %q has %d points, want %d", s.Name, len(s.Times), n)
		}
	}
	var sb strings.Builder
	sb.WriteString("seconds")
	for _, s := range series {
		sb.WriteString(",")
		sb.WriteString(s.Name)
	}
	sb.WriteString("\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, "%.0f", series[0].Times[i].Seconds())
		for _, s := range series {
			fmt.Fprintf(&sb, ",%g", s.Values[i])
		}
		sb.WriteString("\n")
	}
	_, err := io.WriteString(w, sb.String())
	return err
}
