package stats

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestSummaryBasics(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Min() != 0 || s.Max() != 0 || s.Percentile(50) != 0 {
		t.Error("empty summary must be all zeros")
	}
	for _, v := range []float64{4, 2, 8, 6} {
		s.Add(v)
	}
	if s.N() != 4 || s.Mean() != 5 || s.Min() != 2 || s.Max() != 8 {
		t.Fatalf("summary = %s", s.String())
	}
	if got := s.Stddev(); math.Abs(got-math.Sqrt(5)) > 1e-9 {
		t.Errorf("stddev = %v", got)
	}
}

func TestPercentiles(t *testing.T) {
	var s Summary
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	cases := map[float64]float64{0: 1, 50: 50, 95: 95, 100: 100, 99: 99}
	for p, want := range cases {
		if got := s.Percentile(p); got != want {
			t.Errorf("p%.0f = %v, want %v", p, got, want)
		}
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, v := range []float64{-1, 0, 1.9, 2, 5, 9.99, 10, 42} {
		h.Add(v)
	}
	if h.Underflow != 1 || h.Overflow != 2 {
		t.Fatalf("under=%d over=%d", h.Underflow, h.Overflow)
	}
	if h.Bins[0] != 2 || h.Bins[1] != 1 || h.Bins[2] != 1 || h.Bins[4] != 1 {
		t.Fatalf("bins = %v", h.Bins)
	}
	if h.Total() != 8 {
		t.Errorf("total = %d", h.Total())
	}
	cdf := h.CDF()
	if cdf[len(cdf)-1] != 1 {
		t.Errorf("CDF does not end at 1: %v", cdf)
	}
	for i := 1; i < len(cdf); i++ {
		if cdf[i] < cdf[i-1] {
			t.Fatal("CDF not monotone")
		}
	}
}

func TestHistogramPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("bad histogram did not panic")
		}
	}()
	NewHistogram(5, 5, 3)
}

func TestTimeWeighted(t *testing.T) {
	var tw TimeWeighted
	if tw.AvgAt(time.Second) != 0 {
		t.Error("empty gauge must average 0")
	}
	// 2 for 10s, then 0 for 10s => avg 1.
	tw.Observe(0, 2)
	tw.Observe(10*time.Second, 0)
	if got := tw.AvgAt(20 * time.Second); math.Abs(got-1) > 1e-9 {
		t.Errorf("avg = %v, want 1", got)
	}
}

func TestWriteCSV(t *testing.T) {
	a := &Series{Name: "slurm"}
	b := &Series{Name: "eslurm"}
	for i := 0; i < 3; i++ {
		at := time.Duration(i) * time.Second
		a.Append(at, float64(i*10))
		b.Append(at, float64(i))
	}
	var sb strings.Builder
	if err := WriteCSV(&sb, a, b); err != nil {
		t.Fatal(err)
	}
	want := "seconds,slurm,eslurm\n0,0,0\n1,10,1\n2,20,2\n"
	if sb.String() != want {
		t.Fatalf("csv = %q, want %q", sb.String(), want)
	}
}

func TestWriteCSVMismatch(t *testing.T) {
	a := &Series{Name: "a"}
	a.Append(0, 1)
	b := &Series{Name: "b"}
	var sb strings.Builder
	if err := WriteCSV(&sb, a, b); err == nil {
		t.Error("length mismatch not reported")
	}
	if err := WriteCSV(&sb); err != nil {
		t.Error("empty call must be a no-op")
	}
}

// Property: the summary mean always lies within [min, max], and the p50 is
// between them too.
func TestPropertySummaryBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var s Summary
		n := 1 + rng.Intn(200)
		for i := 0; i < n; i++ {
			s.Add(rng.NormFloat64() * 100)
		}
		return s.Mean() >= s.Min() && s.Mean() <= s.Max() &&
			s.Percentile(50) >= s.Min() && s.Percentile(50) <= s.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: histogram total equals the number of Adds.
func TestPropertyHistogramConservation(t *testing.T) {
	f := func(vals []float64) bool {
		h := NewHistogram(-10, 10, 7)
		for _, v := range vals {
			if math.IsNaN(v) {
				continue
			}
			h.Add(v)
		}
		count := 0
		for _, v := range vals {
			if !math.IsNaN(v) {
				count++
			}
		}
		return h.Total() == count
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
