package cluster

import (
	"time"

	"eslurm/internal/simnet"
)

// ResourceMeter accumulates the four resource dimensions the paper reports
// for RM daemons: CPU time, virtual memory, resident (real) memory, and
// concurrent TCP sockets (Fig. 7, Fig. 9, Tables V–VI).
//
// RMs charge the meter as they process messages and scheduling events; the
// per-event costs live in the RM models, not here.
type ResourceMeter struct {
	engine *simnet.Engine

	cpuTime     time.Duration
	vmemBytes   int64
	rssBytes    int64
	sockets     int
	peakSockets int
	// sockSum/sockSamples support average-concurrent-socket reporting
	// (Table V) without storing a full time series.
	sockTimeSum float64 // socket-count integrated over virtual time
	lastSockAt  time.Duration
	messagesIn  int64
	messagesOut int64
	bytesIn     int64
	bytesOut    int64
}

// ChargeCPU adds d of daemon CPU time.
func (m *ResourceMeter) ChargeCPU(d time.Duration) {
	if d > 0 {
		m.cpuTime += d
	}
}

// CPUTime returns accumulated daemon CPU time.
func (m *ResourceMeter) CPUTime() time.Duration { return m.cpuTime }

// AddVMem grows (or with negative delta, shrinks) the daemon's virtual
// memory. Virtual memory in real RMs rarely shrinks; callers model that.
func (m *ResourceMeter) AddVMem(delta int64) {
	m.vmemBytes += delta
	if m.vmemBytes < 0 {
		m.vmemBytes = 0
	}
}

// VMem returns current virtual memory in bytes.
func (m *ResourceMeter) VMem() int64 { return m.vmemBytes }

// AddRSS grows or shrinks resident memory.
func (m *ResourceMeter) AddRSS(delta int64) {
	m.rssBytes += delta
	if m.rssBytes < 0 {
		m.rssBytes = 0
	}
}

// RSS returns current resident memory in bytes.
func (m *ResourceMeter) RSS() int64 { return m.rssBytes }

func (m *ResourceMeter) integrateSockets() {
	if m.engine == nil {
		return
	}
	now := m.engine.Now()
	m.sockTimeSum += float64(m.sockets) * (now - m.lastSockAt).Seconds()
	m.lastSockAt = now
}

// OpenSocket records one more concurrent TCP connection.
func (m *ResourceMeter) OpenSocket() {
	m.integrateSockets()
	m.sockets++
	if m.sockets > m.peakSockets {
		m.peakSockets = m.sockets
	}
}

// CloseSocket records one fewer concurrent connection. Closing below zero
// is clamped: it indicates a modelling bug upstream but must not corrupt
// long experiment runs.
func (m *ResourceMeter) CloseSocket() {
	m.integrateSockets()
	if m.sockets > 0 {
		m.sockets--
	}
}

// Sockets returns the current number of concurrent connections.
func (m *ResourceMeter) Sockets() int { return m.sockets }

// PeakSockets returns the maximum concurrent connections observed.
func (m *ResourceMeter) PeakSockets() int { return m.peakSockets }

// AvgSockets returns the time-weighted average concurrent socket count over
// the meter's lifetime (Table V's "average concurrent sockets").
func (m *ResourceMeter) AvgSockets() float64 {
	m.integrateSockets()
	if m.engine == nil || m.engine.Now() <= 0 {
		return float64(m.sockets)
	}
	return m.sockTimeSum / m.engine.Now().Seconds()
}

// CountMessage records message traffic for throughput reporting.
func (m *ResourceMeter) CountMessage(out bool, bytes int) {
	if out {
		m.messagesOut++
		m.bytesOut += int64(bytes)
	} else {
		m.messagesIn++
		m.bytesIn += int64(bytes)
	}
}

// Messages returns (in, out) message counts.
func (m *ResourceMeter) Messages() (in, out int64) { return m.messagesIn, m.messagesOut }

// Bytes returns (in, out) byte counts.
func (m *ResourceMeter) Bytes() (in, out int64) { return m.bytesIn, m.bytesOut }

// Snapshot is a point-in-time reading of a meter, used by samplers to build
// the time series behind Figs. 7 and 9.
type Snapshot struct {
	At      time.Duration
	CPUTime time.Duration
	VMem    int64
	RSS     int64
	Sockets int
}

// Read returns the meter's current snapshot.
func (m *ResourceMeter) Read() Snapshot {
	var at time.Duration
	if m.engine != nil {
		at = m.engine.Now()
	}
	return Snapshot{At: at, CPUTime: m.cpuTime, VMem: m.vmemBytes, RSS: m.rssBytes, Sockets: m.sockets}
}

// Sampler periodically snapshots a meter. The paper samples once per
// second for 24 hours; at cluster-experiment scale we usually sample more
// coarsely and interpolate, so the interval is a parameter.
type Sampler struct {
	Samples []Snapshot
	ticker  *simnet.Ticker
}

// NewSampler starts sampling meter every interval on engine e.
func NewSampler(e *simnet.Engine, m *ResourceMeter, interval time.Duration) *Sampler {
	s := &Sampler{}
	s.ticker = e.Every(interval, func() {
		s.Samples = append(s.Samples, m.Read())
	})
	return s
}

// Stop halts sampling.
func (s *Sampler) Stop() { s.ticker.Stop() }
