package cluster

import (
	"testing"
	"time"

	"eslurm/internal/simnet"
)

func newNetCluster(t *testing.T, computes int, net NetConfig) *Cluster {
	t.Helper()
	e := simnet.NewEngine(13)
	return New(e, Config{Computes: computes, Satellites: 1, Net: net})
}

// TestNetConfigZeroTakesDefaults is the regression test for the
// withDefaults zero-value ambiguity: a zero NetConfig must resolve to the
// documented calibration, field for field.
func TestNetConfigZeroTakesDefaults(t *testing.T) {
	if got, want := (NetConfig{}).withDefaults(), DefaultNetConfig(); got != want {
		t.Fatalf("NetConfig{}.withDefaults() = %+v, want %+v", got, want)
	}
}

// TestNetConfigDisabledSentinel pins the Disabled semantics: a sentinel
// duration becomes an explicit zero cost instead of silently taking the
// default, while explicit non-zero values pass through untouched.
func TestNetConfigDisabledSentinel(t *testing.T) {
	cfg := NetConfig{
		ConnectCost:    Disabled,
		Latency:        Disabled,
		ConnectTimeout: 2 * time.Second,
		Jitter:         Disabled,
		BandwidthBps:   1e9,
	}.withDefaults()
	if cfg.ConnectCost != 0 || cfg.Latency != 0 || cfg.Jitter != 0 {
		t.Errorf("Disabled fields not zeroed: %+v", cfg)
	}
	if cfg.ConnectTimeout != 2*time.Second {
		t.Errorf("explicit ConnectTimeout overridden: %v", cfg.ConnectTimeout)
	}
	if cfg.BandwidthBps != 1e9 {
		t.Errorf("explicit bandwidth overridden: %v", cfg.BandwidthBps)
	}
	// Probabilities clamp into [0,1] rather than erroring.
	p := NetConfig{LossProb: -0.5, DupProb: 1.5}.withDefaults()
	if p.LossProb != 0 || p.DupProb != 1 {
		t.Errorf("probability clamp: loss=%v dup=%v", p.LossProb, p.DupProb)
	}
}

// TestLossLooksLikeDeadPeer: a lost message costs the sender exactly the
// connect timeout, indistinguishable from a fail-stopped receiver.
func TestLossLooksLikeDeadPeer(t *testing.T) {
	c := newNetCluster(t, 2, NetConfig{LossProb: 1})
	a, b := c.Computes()[0], c.Computes()[1]
	delivered := false
	var failedAt time.Duration
	c.Net.Send(a, b, 100, func() { delivered = true }, func() { failedAt = c.Engine.Now() })
	c.Engine.Run()
	if delivered {
		t.Fatal("message delivered with LossProb=1")
	}
	if failedAt != c.Net.Config().ConnectTimeout {
		t.Fatalf("loss reported at %v, want the connect timeout %v", failedAt, c.Net.Config().ConnectTimeout)
	}
}

// TestDupDeliversTwice: with DupProb=1 the payload lands twice — both the
// observer and the delivery callback fire twice, which is exactly why
// receivers (the comm layer's resolved guard) must be idempotent.
func TestDupDeliversTwice(t *testing.T) {
	c := newNetCluster(t, 2, NetConfig{DupProb: 1})
	a, b := c.Computes()[0], c.Computes()[1]
	arrivals, acks := 0, 0
	c.Net.OnDeliver(func(from, to NodeID, size int) {
		if from == a && to == b {
			arrivals++
		}
	})
	c.Net.Send(a, b, 100, func() { acks++ }, func() { t.Error("send failed") })
	c.Engine.Run()
	if arrivals != 2 {
		t.Errorf("receiver saw %d arrivals, want 2", arrivals)
	}
	if acks != 2 {
		t.Errorf("delivery callback fired %d times, want 2 (receivers dedup)", acks)
	}
}

// TestGrayNodeSlowsDelivery: a gray node stays alive but every message
// touching it is slower by its factor.
func TestGrayNodeSlowsDelivery(t *testing.T) {
	timed := func(gray float64) time.Duration {
		c := newNetCluster(t, 2, NetConfig{Jitter: Disabled})
		a, b := c.Computes()[0], c.Computes()[1]
		if gray > 1 {
			c.Net.SetGray(b, gray)
		}
		var at time.Duration
		c.Net.Send(a, b, 100000, func() { at = c.Engine.Now() }, func() { t.Error("send failed") })
		c.Engine.Run()
		if at == 0 {
			t.Fatal("no delivery")
		}
		return at
	}
	base, slow := timed(1), timed(4)
	if slow <= base {
		t.Fatalf("gray receiver not slower: %v vs %v", slow, base)
	}
	c := newNetCluster(t, 2, NetConfig{})
	c.Net.SetGray(c.Computes()[0], 3)
	if c.Node(c.Computes()[0]).Failed() {
		t.Error("gray node reported failed")
	}
	c.Net.ClearGray(c.Computes()[0])
	if c.Net.GrayCount() != 0 {
		t.Errorf("GrayCount = %d after clear", c.Net.GrayCount())
	}
}

// TestLinkDegradeIsDirectional: degrading a→b slows that direction only.
func TestLinkDegradeIsDirectional(t *testing.T) {
	c := newNetCluster(t, 2, NetConfig{Jitter: Disabled})
	a, b := c.Computes()[0], c.Computes()[1]
	c.Net.SetLinkDegrade(a, b, 8)
	var fwd, rev time.Duration
	c.Net.Send(a, b, 100000, func() { fwd = c.Engine.Now() }, func() { t.Error("fwd failed") })
	c.Engine.Run()
	start := c.Engine.Now()
	c.Net.Send(b, a, 100000, func() { rev = c.Engine.Now() - start }, func() { t.Error("rev failed") })
	c.Engine.Run()
	if fwd <= rev {
		t.Fatalf("degraded direction (%v) not slower than clean reverse (%v)", fwd, rev)
	}
}

// TestPartitionSeversAndHealsSends: sends across a partition boundary fail
// like sends to a dead node; members keep talking to each other, and the
// boundary opens again after heal.
func TestPartitionSeversAndHealsSends(t *testing.T) {
	c := newNetCluster(t, 4, NetConfig{})
	in1, in2, out := c.Computes()[0], c.Computes()[1], c.Computes()[2]
	c.Net.Partition([]NodeID{in1, in2}, time.Minute)

	okInside, failAcross := false, false
	c.Net.Send(in1, in2, 100, func() { okInside = true }, func() { t.Error("intra-partition send failed") })
	c.Net.Send(in1, out, 100, func() { t.Error("cross-partition send delivered") }, func() { failAcross = true })
	c.Engine.RunUntil(30 * time.Second)
	if !okInside || !failAcross {
		t.Fatalf("okInside=%v failAcross=%v", okInside, failAcross)
	}
	if c.Node(out).Failed() || c.Node(in1).Failed() {
		t.Fatal("partition marked a node failed")
	}

	c.Engine.RunUntil(2 * time.Minute) // heal fires at 1m
	healed := false
	c.Net.Send(in1, out, 100, func() { healed = true }, func() { t.Error("send failed after heal") })
	c.Engine.Run()
	if !healed {
		t.Fatal("boundary still severed after heal")
	}
	if c.Net.PartitionCount() != 0 {
		t.Fatalf("PartitionCount = %d after heal", c.Net.PartitionCount())
	}
}

// TestGrayOnSeveredMemberAndHealAll pins the fault-model interplay the
// reconciler leans on: marking a partition-severed member gray keeps the
// boundary severed (gray slows, partition cuts — the stronger fault
// wins), gray still slows intra-partition traffic, and HealAll restores
// the boundary while leaving the gray degradation in place until it is
// cleared independently.
func TestGrayOnSeveredMemberAndHealAll(t *testing.T) {
	c := newNetCluster(t, 4, NetConfig{Jitter: Disabled})
	in1, in2, out := c.Computes()[0], c.Computes()[1], c.Computes()[2]
	// Baseline intra-pair latency before any fault.
	var healthy time.Duration
	start := c.Engine.Now()
	c.Net.Send(in1, in2, 100000, func() { healthy = c.Engine.Now() - start }, func() { t.Error("baseline send failed") })
	c.Engine.Run()

	c.Net.Partition([]NodeID{in1, in2}, time.Hour)
	c.Net.SetGray(in2, 8)
	if !c.Net.Severed(in1, out) || !c.Net.Severed(out, in2) {
		t.Fatal("partition boundary not severed")
	}
	if c.Net.GrayFactor(in2) != 8 || c.Net.GrayCount() != 1 {
		t.Fatalf("gray state: factor=%v count=%d, want 8 and 1", c.Net.GrayFactor(in2), c.Net.GrayCount())
	}

	// Cross-boundary send to the gray member still fails — severed wins.
	crossFailed := false
	c.Net.Send(out, in2, 100, func() { t.Error("cross-partition send delivered to gray member") }, func() { crossFailed = true })
	// Intra-partition send to the gray member is delivered, but slowed.
	var grayed time.Duration
	start = c.Engine.Now()
	c.Net.Send(in1, in2, 100000, func() { grayed = c.Engine.Now() - start }, func() { t.Error("intra-partition send to gray member failed") })
	c.Engine.RunUntil(c.Engine.Now() + 30*time.Second)
	if !crossFailed {
		t.Fatal("severed boundary did not fail the send")
	}
	if grayed <= healthy {
		t.Fatalf("gray member not slowed inside the partition: %v <= healthy %v", grayed, healthy)
	}

	// HealAll restores the boundary immediately (the 1h timer becomes a
	// no-op), but the gray mark survives until cleared.
	c.Net.HealAll()
	if c.Net.PartitionCount() != 0 {
		t.Fatalf("PartitionCount = %d after HealAll", c.Net.PartitionCount())
	}
	if c.Net.Severed(out, in2) {
		t.Fatal("boundary still severed after HealAll")
	}
	var healedCross time.Duration
	start = c.Engine.Now()
	c.Net.Send(out, in2, 100000, func() { healedCross = c.Engine.Now() - start }, func() { t.Error("send failed after HealAll") })
	c.Engine.Run()
	if healedCross <= 0 {
		t.Fatal("no delivery after HealAll")
	}
	if c.Net.GrayFactor(in2) != 8 {
		t.Fatal("HealAll must not clear gray state")
	}
	c.Net.ClearGray(in2)
	if c.Net.GrayCount() != 0 {
		t.Fatal("ClearGray left gray state behind")
	}
	var restored time.Duration
	start = c.Engine.Now()
	c.Net.Send(in1, in2, 100000, func() { restored = c.Engine.Now() - start }, func() { t.Error("send failed after ClearGray") })
	c.Engine.Run()
	if restored >= grayed {
		t.Fatalf("latency not restored after ClearGray: %v >= grayed %v", restored, grayed)
	}
}

// TestDisabledFeaturesDrawNoRandomness: enabling loss/dup must not perturb
// runs that have them off — the adversarial streams are lazily derived, so
// a zero-probability config's trace is byte-identical to the seed's
// baseline.
func TestDisabledFeaturesDrawNoRandomness(t *testing.T) {
	trace := func(net NetConfig) []time.Duration {
		e := simnet.NewEngine(17)
		c := New(e, Config{Computes: 8, Satellites: 1, Net: net})
		var at []time.Duration
		c.Net.OnDeliver(func(from, to NodeID, size int) { at = append(at, e.Now()) })
		for _, id := range c.Computes() {
			c.Net.Send(c.Satellites()[0], id, 1000, func() {}, func() {})
		}
		e.Run()
		return at
	}
	a, b := trace(NetConfig{}), trace(NetConfig{LossProb: 0, DupProb: 0})
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("delivery %d at %v vs %v: zero-probability config changed the trace", i, a[i], b[i])
		}
	}
}
