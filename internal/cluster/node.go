// Package cluster models the physical substrate the resource managers run
// on: nodes with roles and failure state, a latency/bandwidth network, and
// per-node resource meters mirroring what the paper measures on the master
// daemon (CPU time, virtual memory, resident memory, concurrent sockets).
//
// The paper evaluates on Tianhe-2A (16,384 nodes) and NG-Tianhe (20K+
// nodes); this package is the simulated stand-in for those machines (see
// DESIGN.md, "Substitutions").
//
// Determinism: all state changes (failures, recoveries, meter charges)
// happen inside events on the owning simnet engine, and network jitter
// draws from the engine's labeled RNG streams — same seed, same trace.
package cluster

import (
	"fmt"
	"time"

	"eslurm/internal/simnet"
)

// NodeID identifies a node within a Cluster. IDs are dense, starting at 0.
type NodeID int

// Role classifies a node's function in the RM architecture.
type Role int

const (
	// RoleCompute nodes run user jobs (the paper's "slave" nodes).
	RoleCompute Role = iota
	// RoleSatellite nodes relay communication between master and compute
	// nodes. They hold no persistent system state.
	RoleSatellite
	// RoleMaster hosts the RM control daemon (slurmctld equivalent).
	RoleMaster
)

func (r Role) String() string {
	switch r {
	case RoleCompute:
		return "compute"
	case RoleSatellite:
		return "satellite"
	case RoleMaster:
		return "master"
	default:
		return fmt.Sprintf("Role(%d)", int(r))
	}
}

// Node is one machine in the simulated cluster.
type Node struct {
	ID    NodeID
	Role  Role
	Meter ResourceMeter

	failed bool
	// onFail callbacks fire when the node transitions healthy → failed.
	onFail []func()
}

// Failed reports whether the node is currently down.
func (n *Node) Failed() bool { return n.failed }

// Cluster is a set of nodes plus the network connecting them, driven by a
// shared simulation engine.
type Cluster struct {
	Engine *simnet.Engine
	Net    *Network

	nodes []*Node
}

// Config sizes a cluster. The default latency parameters approximate the
// paper's proprietary interconnect (25 Gbps per lane; sub-millisecond
// one-hop latency) at the granularity the experiments are sensitive to.
type Config struct {
	Computes   int
	Satellites int
	// Network overrides; zero values take defaults (see DefaultNetConfig).
	Net NetConfig
}

// New builds a cluster with one master node (ID 0), Config.Satellites
// satellite nodes (IDs 1..S) and Config.Computes compute nodes after them.
func New(e *simnet.Engine, cfg Config) *Cluster {
	c := &Cluster{Engine: e}
	add := func(role Role) *Node {
		n := &Node{ID: NodeID(len(c.nodes)), Role: role}
		n.Meter.engine = e
		c.nodes = append(c.nodes, n)
		return n
	}
	add(RoleMaster)
	for i := 0; i < cfg.Satellites; i++ {
		add(RoleSatellite)
	}
	for i := 0; i < cfg.Computes; i++ {
		add(RoleCompute)
	}
	c.Net = newNetwork(c, cfg.Net)
	return c
}

// Master returns the master node (always ID 0).
func (c *Cluster) Master() *Node { return c.nodes[0] }

// Node returns the node with the given ID. It panics on out-of-range IDs:
// that is always a programming error in an experiment driver.
func (c *Cluster) Node(id NodeID) *Node { return c.nodes[id] }

// Size returns the total number of nodes, including master and satellites.
func (c *Cluster) Size() int { return len(c.nodes) }

// Satellites returns the IDs of all satellite nodes in ID order.
func (c *Cluster) Satellites() []NodeID {
	var out []NodeID
	for _, n := range c.nodes {
		if n.Role == RoleSatellite {
			out = append(out, n.ID)
		}
	}
	return out
}

// Computes returns the IDs of all compute nodes in ID order.
func (c *Cluster) Computes() []NodeID {
	out := make([]NodeID, 0, len(c.nodes))
	for _, n := range c.nodes {
		if n.Role == RoleCompute {
			out = append(out, n.ID)
		}
	}
	return out
}

// Fail marks a node as failed. Message deliveries to it will time out at
// the sender. Failing an already-failed node is a no-op.
func (c *Cluster) Fail(id NodeID) {
	n := c.nodes[id]
	if n.failed {
		return
	}
	n.failed = true
	for _, fn := range n.onFail {
		fn()
	}
}

// Recover brings a failed node back.
func (c *Cluster) Recover(id NodeID) { c.nodes[id].failed = false }

// OnFail registers a callback invoked when the node fails. Used by the
// monitoring subsystem and by tests.
func (c *Cluster) OnFail(id NodeID, fn func()) {
	n := c.nodes[id]
	n.onFail = append(n.onFail, fn)
}

// FailedCount returns the number of currently failed nodes.
func (c *Cluster) FailedCount() int {
	k := 0
	for _, n := range c.nodes {
		if n.failed {
			k++
		}
	}
	return k
}

// ScheduleFailure injects a fail-stop at virtual time at; if recover > 0 the
// node comes back after that additional delay. It returns immediately.
func (c *Cluster) ScheduleFailure(id NodeID, at, recoverAfter time.Duration) {
	c.Engine.Schedule(at, func() {
		c.Fail(id)
		if recoverAfter > 0 {
			c.Engine.After(recoverAfter, func() { c.Recover(id) })
		}
	})
}
