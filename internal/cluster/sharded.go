package cluster

import (
	"math/rand"
	"time"

	"eslurm/internal/simnet"
)

// Sharded substrate: the cluster spread over a simnet.ShardGroup so one
// logical simulation spans multiple engine cells (and, via the group's
// worker knob, multiple cores). The partitioning rule is the caller's —
// the experiment layer maps nodes to cells by rack via internal/topo —
// and the conservative lookahead is the network's link latency: every
// cross-cell effect rides a message, and no message arrives in less than
// one Latency, so cells are causally independent within a window.
//
// # What is replicated, what is owned
//
// Each node's meter and model state live on exactly one cell — the
// node's home cell — and are touched only by that cell's events. Fault
// control state (fail-stop flags, gray factors, link degradation,
// partitions) is *replicated* per cell: the control API pre-schedules
// the same flip on every cell at the same virtual instant, so any cell
// can answer "is this path broken?" locally, with no cross-cell reads,
// and every replica agrees whenever a message consults it. Replication
// is what lets faults and partitions keep working across shard
// boundaries without a shared map.
//
// # The wire contract
//
// Send callbacks are split by location, which a single-engine network
// never needed: onArrive runs on the destination's cell at the delivery
// instant (the payload is there; a relay can forward), onAcked runs on
// the source's cell one link latency after delivery (the sender may
// release resources), and onFailed runs on the source's cell at its
// connect timeout. Two deliberate deviations from the single-engine
// Network, both source-local and deterministic: the sender closes its
// connect socket at the delivery instant even when the destination died
// in flight (the single-engine model holds it until the timeout), and a
// destination that dies in flight is reported at the later of the
// sender's timeout and the earliest instant the nack can travel back.
type ShardedCluster struct {
	g   *simnet.ShardGroup
	cfg NetConfig

	nodes  []*ShardNode
	cellOf []int
	reps   []*cellRep
}

// ShardNode is one machine homed on a cell of a sharded cluster.
type ShardNode struct {
	ID   NodeID
	Role Role
	Cell int
	// Meter accumulates this node's daemon resources on its home cell's
	// engine; touch it only from that cell's events.
	Meter ResourceMeter
}

// cellRep is one cell's replica of the fault-control state plus its
// network RNG streams. Owned by the cell: only that cell's events (or
// the idle coordinator) read or write it.
type cellRep struct {
	failed     []bool
	gray       map[NodeID]float64
	degrade    map[linkKey]float64
	partitions []*partition

	rng     *rand.Rand
	lossRng *rand.Rand
	dupRng  *rand.Rand
}

// ShardConfig sizes a sharded cluster.
type ShardConfig struct {
	Computes   int
	Satellites int
	// Net overrides; zero values take defaults. The effective Latency
	// must be positive — it is the conservative lookahead bound, and a
	// latency-free network admits no concurrent window.
	Net NetConfig
	// Cells is the number of engine cells (the fixed logical partition);
	// values below 1 mean one cell. CellOf maps each node to its home
	// cell in [0, Cells); nil homes everything on cell 0. The mapping
	// must depend only on the model (IDs, roles, topology), never on the
	// worker count, or shard invariance is forfeit.
	Cells  int
	CellOf func(id NodeID, role Role) int
	// Workers is the goroutine count executing cells (clamped to
	// [1, Cells] by the group); it does not affect results.
	Workers int
	// Seed is the root seed; per-cell engine seeds derive from it.
	Seed int64
}

// NewSharded builds a sharded cluster: one master (ID 0), then
// satellites, then computes, homed on cells by cfg.CellOf.
func NewSharded(cfg ShardConfig) *ShardedCluster {
	net := cfg.Net.withDefaults()
	if net.Latency <= 0 {
		panic("cluster: sharded execution needs a positive link latency (it is the lookahead bound)")
	}
	cells := cfg.Cells
	if cells < 1 {
		cells = 1
	}
	g := simnet.NewShardGroup(cfg.Seed, cells, net.Latency, cfg.Workers)
	sc := &ShardedCluster{g: g, cfg: net}
	add := func(role Role) {
		id := NodeID(len(sc.nodes))
		cell := 0
		if cfg.CellOf != nil {
			cell = cfg.CellOf(id, role)
			if cell < 0 || cell >= cells {
				panic("cluster: CellOf returned a cell out of range")
			}
		}
		n := &ShardNode{ID: id, Role: role, Cell: cell}
		n.Meter.engine = g.Cell(cell)
		sc.nodes = append(sc.nodes, n)
		sc.cellOf = append(sc.cellOf, cell)
	}
	add(RoleMaster)
	for i := 0; i < cfg.Satellites; i++ {
		add(RoleSatellite)
	}
	for i := 0; i < cfg.Computes; i++ {
		add(RoleCompute)
	}
	sc.reps = make([]*cellRep, cells)
	for c := 0; c < cells; c++ {
		sc.reps[c] = &cellRep{
			failed: make([]bool, len(sc.nodes)),
			rng:    g.Cell(c).Rand("cluster/network"),
		}
	}
	return sc
}

// Group returns the underlying shard group (run control, digests,
// merged metrics).
func (sc *ShardedCluster) Group() *simnet.ShardGroup { return sc.g }

// Config returns the effective network configuration.
func (sc *ShardedCluster) Config() NetConfig { return sc.cfg }

// Node returns the node with the given ID.
func (sc *ShardedCluster) Node(id NodeID) *ShardNode { return sc.nodes[id] }

// CellOf returns a node's home cell.
func (sc *ShardedCluster) CellOf(id NodeID) int { return sc.cellOf[id] }

// Engine returns the engine of a node's home cell: the only engine that
// node's model events and meter may touch.
func (sc *ShardedCluster) Engine(id NodeID) *simnet.Engine { return sc.g.Cell(sc.cellOf[id]) }

// Size returns the total node count including master and satellites.
func (sc *ShardedCluster) Size() int { return len(sc.nodes) }

// Master returns the master node (always ID 0).
func (sc *ShardedCluster) Master() *ShardNode { return sc.nodes[0] }

// Satellites returns the IDs of all satellite nodes in ID order.
func (sc *ShardedCluster) Satellites() []NodeID {
	var out []NodeID
	for _, n := range sc.nodes {
		if n.Role == RoleSatellite {
			out = append(out, n.ID)
		}
	}
	return out
}

// Computes returns the IDs of all compute nodes in ID order.
func (sc *ShardedCluster) Computes() []NodeID {
	out := make([]NodeID, 0, len(sc.nodes))
	for _, n := range sc.nodes {
		if n.Role == RoleCompute {
			out = append(out, n.ID)
		}
	}
	return out
}

// Failed reports a node's fail-stop state. Call only while the group is
// idle (between RunUntil phases): it reads cell 0's replica, which
// agrees with every other replica exactly then.
func (sc *ShardedCluster) Failed(id NodeID) bool { return sc.reps[0].failed[id] }

// FailedOn reports id's fail-stop state as seen from viewer's home cell
// replica — the mid-run-safe read for code executing on that cell
// (invariant checks, adoption decisions).
func (sc *ShardedCluster) FailedOn(viewer, id NodeID) bool {
	return sc.reps[sc.cellOf[viewer]].failed[id]
}

// FailedCount returns the number of currently failed nodes (idle-only,
// like Failed).
func (sc *ShardedCluster) FailedCount() int {
	k := 0
	for _, f := range sc.reps[0].failed {
		if f {
			k++
		}
	}
	return k
}

// ---------------------------------------------------------------------------
// Fault control. Each call pre-schedules the same state flip on every
// cell at the same virtual instant, from the coordinating goroutine
// while the group is idle — the replicas never diverge at any time a
// message consults them, and the flip events are part of every cell's
// deterministic schedule regardless of worker count.

// ScheduleFail injects a fail-stop at virtual time at; if recoverAfter
// is positive the node comes back that much later.
func (sc *ShardedCluster) ScheduleFail(id NodeID, at, recoverAfter time.Duration) {
	for c := range sc.reps {
		rep := sc.reps[c]
		sc.g.Cell(c).Schedule(at, func() { rep.failed[id] = true })
		if recoverAfter > 0 {
			sc.g.Cell(c).Schedule(at+recoverAfter, func() { rep.failed[id] = false })
		}
	}
}

// ScheduleGray marks a node gray (alive but slowed by factor > 1) at
// virtual time at; if clearAfter is positive the mark clears that much
// later. A factor <= 1 clears instead.
func (sc *ShardedCluster) ScheduleGray(id NodeID, factor float64, at, clearAfter time.Duration) {
	for c := range sc.reps {
		rep := sc.reps[c]
		sc.g.Cell(c).Schedule(at, func() { rep.setGray(id, factor) })
		if clearAfter > 0 && factor > 1 {
			sc.g.Cell(c).Schedule(at+clearAfter, func() { rep.setGray(id, 1) })
		}
	}
}

// ScheduleLinkDegrade multiplies the directed link's transfer time by
// factor (> 1) from virtual time at; factor <= 1 restores the link.
func (sc *ShardedCluster) ScheduleLinkDegrade(from, to NodeID, factor float64, at time.Duration) {
	for c := range sc.reps {
		rep := sc.reps[c]
		sc.g.Cell(c).Schedule(at, func() { rep.setDegrade(from, to, factor) })
	}
}

// SchedulePartition severs the member set from the rest of the cluster
// at virtual time at; if heal is positive the partition heals that much
// later. Partitions compose exactly as on the single-engine Network.
func (sc *ShardedCluster) SchedulePartition(members []NodeID, at, heal time.Duration) {
	member := make(map[NodeID]bool, len(members))
	for _, id := range members {
		member[id] = true
	}
	for c := range sc.reps {
		rep := sc.reps[c]
		// Each cell owns its replica partition object: heal mutates the
		// holding cell's slice only.
		p := &partition{member: member}
		sc.g.Cell(c).Schedule(at, func() { rep.partitions = append(rep.partitions, p) })
		if heal > 0 {
			sc.g.Cell(c).Schedule(at+heal, func() { rep.heal(p) })
		}
	}
}

func (r *cellRep) setGray(id NodeID, factor float64) {
	if factor <= 1 {
		delete(r.gray, id)
		return
	}
	if r.gray == nil {
		r.gray = make(map[NodeID]float64)
	}
	r.gray[id] = factor
}

func (r *cellRep) setDegrade(from, to NodeID, factor float64) {
	k := linkKey{from, to}
	if factor <= 1 {
		delete(r.degrade, k)
		return
	}
	if r.degrade == nil {
		r.degrade = make(map[linkKey]float64)
	}
	r.degrade[k] = factor
}

func (r *cellRep) heal(p *partition) {
	for i, q := range r.partitions {
		if q == p {
			r.partitions = append(r.partitions[:i], r.partitions[i+1:]...)
			return
		}
	}
}

func (r *cellRep) severed(from, to NodeID) bool {
	for _, p := range r.partitions {
		if p.member[from] != p.member[to] {
			return true
		}
	}
	return false
}

func (r *cellRep) unreachable(from, to NodeID) bool {
	return r.failed[to] || r.severed(from, to)
}

func (r *cellRep) grayFactor(id NodeID) float64 {
	if f, ok := r.gray[id]; ok {
		return f
	}
	return 1
}

func (r *cellRep) pathFactor(from, to NodeID) float64 {
	f := 1.0
	if g := r.grayFactor(from); g > f {
		f = g
	}
	if g := r.grayFactor(to); g > f {
		f = g
	}
	if d, ok := r.degrade[linkKey{from, to}]; ok {
		f *= d
	}
	return f
}

// GrayFactor returns a node's slowdown factor (1 when healthy);
// idle-only, like Failed.
func (sc *ShardedCluster) GrayFactor(id NodeID) float64 { return sc.reps[0].grayFactor(id) }

// GrayFactorOn returns id's slowdown factor as seen from viewer's home
// cell replica — the mid-run-safe read for code executing on that cell
// (relay delays, local backoff decisions).
func (sc *ShardedCluster) GrayFactorOn(viewer, id NodeID) float64 {
	return sc.reps[sc.cellOf[viewer]].grayFactor(id)
}

// TransferTime returns the modelled one-way delivery time for a healthy
// message of size bytes (latency + serialization).
func (sc *ShardedCluster) TransferTime(size int) time.Duration {
	ser := time.Duration(float64(size) / sc.cfg.BandwidthBps * float64(time.Second))
	return sc.cfg.Latency + ser
}

// lost draws the in-transit loss coin on the sending cell's stream.
func (sc *ShardedCluster) lost(cell int) bool {
	if sc.cfg.LossProb <= 0 {
		return false
	}
	rep := sc.reps[cell]
	if rep.lossRng == nil {
		rep.lossRng = sc.g.Cell(cell).Rand("cluster/network/loss")
	}
	return rep.lossRng.Float64() < sc.cfg.LossProb
}

// duplicated draws the duplication coin on the sending cell's stream.
func (sc *ShardedCluster) duplicated(cell int) bool {
	if sc.cfg.DupProb <= 0 {
		return false
	}
	rep := sc.reps[cell]
	if rep.dupRng == nil {
		rep.dupRng = sc.g.Cell(cell).Rand("cluster/network/dup")
	}
	return rep.dupRng.Float64() < sc.cfg.DupProb
}

// Send models one message from -> to carrying size bytes, invoked from
// an event on the sender's home cell (or the idle coordinator).
//
// Every random draw (jitter, loss, duplication) happens source-side at
// send time on the source cell's labelled streams, so the wire schedule
// is a function of (seed, cell, draw order) alone. onArrive fires on the
// destination cell at each delivery (twice under duplication — receivers
// dedup); onAcked fires on the source cell one latency after the first
// delivery; onFailed fires on the source cell after the connect timeout
// when the destination is dead, partitioned away, or the message is
// lost. Any callback may be nil.
func (sc *ShardedCluster) Send(from, to NodeID, size int, onArrive, onAcked, onFailed func()) {
	sc.send(from, to, size, true, onArrive, onAcked, onFailed)
}

// SendPersistent models traffic over an established long-lived
// connection: no connect cost and no per-message socket churn,
// otherwise identical to Send.
func (sc *ShardedCluster) SendPersistent(from, to NodeID, size int, onArrive, onAcked, onFailed func()) {
	sc.send(from, to, size, false, onArrive, onAcked, onFailed)
}

func (sc *ShardedCluster) send(from, to NodeID, size int, connect bool, onArrive, onAcked, onFailed func()) {
	srcCell, dstCell := sc.cellOf[from], sc.cellOf[to]
	src, dst := sc.nodes[from], sc.nodes[to]
	e := sc.g.Cell(srcCell)
	rep := sc.reps[srcCell]
	L := sc.cfg.Latency

	src.Meter.CountMessage(true, size)
	if connect {
		src.Meter.OpenSocket()
	}

	if rep.unreachable(from, to) || sc.lost(srcCell) {
		e.After(sc.cfg.ConnectTimeout, func() {
			if connect {
				src.Meter.CloseSocket()
			}
			if onFailed != nil {
				onFailed()
			}
		})
		return
	}

	factor := rep.pathFactor(from, to)
	d := scale(sc.TransferTime(size), factor)
	if connect {
		d += scale(sc.cfg.ConnectCost, factor)
	}
	if sc.cfg.Jitter > 0 {
		d += time.Duration(rep.rng.Int63n(int64(sc.cfg.Jitter) + 1))
	}
	dup := sc.duplicated(srcCell)

	now := e.Now()
	timeoutAt := now + sc.cfg.ConnectTimeout
	if connect {
		// The sender computed d, so it closes its connect socket at the
		// delivery instant without waiting for the ack.
		e.After(d, func() { src.Meter.CloseSocket() })
	}

	arrive := func(first bool) func() {
		return func() {
			de := sc.g.Cell(dstCell)
			drep := sc.reps[dstCell]
			if drep.unreachable(from, to) {
				if !first {
					return // lost duplicate of a delivered message: silent
				}
				// Nack: the sender learns at its timeout, or as soon as
				// the nack can travel back, whichever is later.
				failAt := de.Now() + L
				if timeoutAt > failAt {
					failAt = timeoutAt
				}
				sc.g.Send(dstCell, srcCell, failAt, func() {
					if onFailed != nil {
						onFailed()
					}
				})
				return
			}
			dst.Meter.CountMessage(false, size)
			if first && connect {
				dst.Meter.OpenSocket()
				de.After(L, func() { dst.Meter.CloseSocket() })
			}
			if onArrive != nil {
				onArrive()
			}
			if first && onAcked != nil {
				sc.g.Send(dstCell, srcCell, de.Now()+L, onAcked)
			}
		}
	}
	//eslurmlint:ignore lookahead d = scale(TransferTime(size), pathFactor) with pathFactor >= 1 and TransferTime >= cfg.Latency = the group's lookahead, so now+d is bounded by a model invariant the prover's addend algebra cannot see through scale()
	sc.g.Send(srcCell, dstCell, now+d, arrive(true))
	if dup {
		// Retransmission after a lost ack: the payload lands a second
		// time one latency later; no second ack, no socket churn.
		sc.g.Send(srcCell, dstCell, now+d+L, arrive(false))
	}
}
