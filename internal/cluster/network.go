package cluster

import (
	"math/rand"
	"time"
)

// NetConfig parameterizes the latency model. The defaults approximate the
// Tianhe proprietary interconnect described in the paper's appendix (25
// Gbps per four-lane port, 100 Gbps one-port one-way) plus TCP/daemon
// software overheads, which dominate RM control traffic.
type NetConfig struct {
	// ConnectCost is the time to establish a TCP connection to a healthy
	// node (handshake + daemon accept).
	ConnectCost time.Duration
	// Latency is the one-way propagation + protocol latency per message.
	Latency time.Duration
	// BandwidthBps is the per-link bandwidth in bytes per second used to
	// compute serialization delay for a message of a given size.
	BandwidthBps float64
	// ConnectTimeout is how long a sender waits before concluding the peer
	// is dead (per attempt). The comm layer retries on top of this.
	ConnectTimeout time.Duration
	// Jitter is the maximum uniform random extra latency per message,
	// modelling OS scheduling and congestion noise.
	Jitter time.Duration
}

// DefaultNetConfig returns the calibration used across the experiments.
func DefaultNetConfig() NetConfig {
	return NetConfig{
		ConnectCost:    300 * time.Microsecond,
		Latency:        150 * time.Microsecond,
		BandwidthBps:   1.5e9, // ~12 Gbps effective for control-plane TCP
		ConnectTimeout: 1 * time.Second,
		Jitter:         100 * time.Microsecond,
	}
}

func (c NetConfig) withDefaults() NetConfig {
	d := DefaultNetConfig()
	if c.ConnectCost == 0 {
		c.ConnectCost = d.ConnectCost
	}
	if c.Latency == 0 {
		c.Latency = d.Latency
	}
	if c.BandwidthBps == 0 {
		c.BandwidthBps = d.BandwidthBps
	}
	if c.ConnectTimeout == 0 {
		c.ConnectTimeout = d.ConnectTimeout
	}
	if c.Jitter == 0 {
		c.Jitter = d.Jitter
	}
	return c
}

// Network delivers messages between nodes of one cluster with a
// latency+bandwidth cost model and fail-stop semantics: a message to a
// failed node costs the sender the connect timeout and reports failure.
type Network struct {
	cluster *Cluster
	cfg     NetConfig
	rng     *rand.Rand
}

func newNetwork(c *Cluster, cfg NetConfig) *Network {
	return &Network{cluster: c, cfg: cfg.withDefaults(), rng: c.Engine.Rand("cluster/network")}
}

// Config returns the effective network configuration.
func (n *Network) Config() NetConfig { return n.cfg }

// TransferTime returns the modelled one-way delivery time for a healthy
// message of size bytes, excluding jitter and connection setup.
func (n *Network) TransferTime(size int) time.Duration {
	ser := time.Duration(float64(size) / n.cfg.BandwidthBps * float64(time.Second))
	return n.cfg.Latency + ser
}

// Send models one message from -> to carrying size bytes.
//
// If the destination is healthy at delivery time, onDelivered fires at the
// delivery instant. If the destination is failed (at send or delivery
// time), onFailed fires after the connect timeout — the sender blocks for
// the timeout, exactly the behaviour that makes failed interior tree nodes
// expensive (Section IV). Either callback may be nil. Sockets and message
// counters on both meters are maintained here so every RM model accounts
// traffic uniformly.
func (n *Network) Send(from, to NodeID, size int, onDelivered func(), onFailed func()) {
	e := n.cluster.Engine
	src := n.cluster.Node(from)
	dst := n.cluster.Node(to)

	src.Meter.CountMessage(true, size)
	src.Meter.OpenSocket()

	if dst.failed {
		e.After(n.cfg.ConnectTimeout, func() {
			src.Meter.CloseSocket()
			if onFailed != nil {
				onFailed()
			}
		})
		return
	}

	d := n.cfg.ConnectCost + n.TransferTime(size)
	if n.cfg.Jitter > 0 {
		d += time.Duration(n.rng.Int63n(int64(n.cfg.Jitter) + 1))
	}
	e.After(d, func() {
		// The destination may have failed while the message was in flight.
		if dst.failed {
			// Remaining time until the sender's timeout expires.
			rest := n.cfg.ConnectTimeout - d
			if rest < 0 {
				rest = 0
			}
			e.After(rest, func() {
				src.Meter.CloseSocket()
				if onFailed != nil {
					onFailed()
				}
			})
			return
		}
		dst.Meter.CountMessage(false, size)
		dst.Meter.OpenSocket()
		src.Meter.CloseSocket()
		// The receiving daemon holds its accept socket briefly while
		// processing.
		e.After(n.cfg.Latency, func() { dst.Meter.CloseSocket() })
		if onDelivered != nil {
			onDelivered()
		}
	})
}

// SendPersistent models traffic over an already-established long-lived
// connection (e.g. SGE's persistent execd channels): no connect cost and no
// per-message socket churn — the caller is responsible for having opened
// the socket once.
func (n *Network) SendPersistent(from, to NodeID, size int, onDelivered func(), onFailed func()) {
	e := n.cluster.Engine
	src := n.cluster.Node(from)
	dst := n.cluster.Node(to)
	src.Meter.CountMessage(true, size)
	if dst.failed {
		e.After(n.cfg.ConnectTimeout, func() {
			if onFailed != nil {
				onFailed()
			}
		})
		return
	}
	d := n.TransferTime(size)
	if n.cfg.Jitter > 0 {
		d += time.Duration(n.rng.Int63n(int64(n.cfg.Jitter) + 1))
	}
	e.After(d, func() {
		if dst.failed {
			if onFailed != nil {
				onFailed()
			}
			return
		}
		dst.Meter.CountMessage(false, size)
		if onDelivered != nil {
			onDelivered()
		}
	})
}
