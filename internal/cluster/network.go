package cluster

import (
	"math/rand"
	"time"
)

// Disabled is the sentinel for NetConfig duration fields whose zero value
// would otherwise be replaced by a default: an explicitly disabled cost.
// NetConfig{Jitter: cluster.Disabled} means "no jitter at all", whereas
// NetConfig{} (Jitter zero) takes the default — the Go zero value stays
// backward compatible and zero stays configurable.
const Disabled time.Duration = -1

// NetConfig parameterizes the latency model. The defaults approximate the
// Tianhe proprietary interconnect described in the paper's appendix (25
// Gbps per four-lane port, 100 Gbps one-port one-way) plus TCP/daemon
// software overheads, which dominate RM control traffic.
//
// The adversarial knobs (LossProb, DupProb) extend the clean fail-stop
// model: they default to zero (off) and draw from their own named simnet
// RNG streams only when enabled, so enabling one never perturbs the event
// trace of a configuration that has it off.
type NetConfig struct {
	// ConnectCost is the time to establish a TCP connection to a healthy
	// node (handshake + daemon accept). Set Disabled for a free connect.
	ConnectCost time.Duration
	// Latency is the one-way propagation + protocol latency per message.
	// Set Disabled for zero latency.
	Latency time.Duration
	// BandwidthBps is the per-link bandwidth in bytes per second used to
	// compute serialization delay for a message of a given size.
	BandwidthBps float64
	// ConnectTimeout is how long a sender waits before concluding the peer
	// is dead (per attempt). The comm layer retries on top of this.
	ConnectTimeout time.Duration
	// Jitter is the maximum uniform random extra latency per message,
	// modelling OS scheduling and congestion noise. Set Disabled for a
	// jitter-free network.
	Jitter time.Duration
	// LossProb is the probability a message vanishes in transit: the
	// sender gets no acknowledgement and hits ConnectTimeout exactly as if
	// the peer were dead, so the comm retry policy is what recovers it.
	// Zero (the default) disables loss and its RNG stream.
	LossProb float64
	// DupProb is the probability a delivered message is delivered a second
	// time (retransmission after a lost ack). The duplicate arrives one
	// Latency after the original; receivers must be idempotent. Zero
	// disables duplication and its RNG stream.
	DupProb float64
}

// DefaultNetConfig returns the calibration used across the experiments.
func DefaultNetConfig() NetConfig {
	return NetConfig{
		ConnectCost:    300 * time.Microsecond,
		Latency:        150 * time.Microsecond,
		BandwidthBps:   1.5e9, // ~12 Gbps effective for control-plane TCP
		ConnectTimeout: 1 * time.Second,
		Jitter:         100 * time.Microsecond,
	}
}

// normDuration maps the zero value to the default and the Disabled
// sentinel (any negative) to an explicit zero.
func normDuration(v, def time.Duration) time.Duration {
	switch {
	case v == 0:
		return def
	case v < 0:
		return 0
	default:
		return v
	}
}

func (c NetConfig) withDefaults() NetConfig {
	d := DefaultNetConfig()
	c.ConnectCost = normDuration(c.ConnectCost, d.ConnectCost)
	c.Latency = normDuration(c.Latency, d.Latency)
	c.ConnectTimeout = normDuration(c.ConnectTimeout, d.ConnectTimeout)
	c.Jitter = normDuration(c.Jitter, d.Jitter)
	if c.BandwidthBps <= 0 {
		// Zero bandwidth would make every transfer infinite; there is no
		// meaningful "explicit zero" here, so non-positive takes the default.
		c.BandwidthBps = d.BandwidthBps
	}
	if c.LossProb < 0 {
		c.LossProb = 0
	}
	if c.LossProb > 1 {
		c.LossProb = 1
	}
	if c.DupProb < 0 {
		c.DupProb = 0
	}
	if c.DupProb > 1 {
		c.DupProb = 1
	}
	return c
}

// linkKey identifies a directed link for per-link degradation.
type linkKey struct{ from, to NodeID }

// partition is one active network partition: messages between a member
// and a non-member fail in both directions until the partition heals.
type partition struct {
	member map[NodeID]bool
}

// Network delivers messages between nodes of one cluster with a
// latency+bandwidth cost model and an adversarial fault model layered on
// top of fail-stop semantics:
//
//   - a message to a failed node costs the sender the connect timeout and
//     reports failure (fail-stop, as before);
//   - a message crossing an active partition boundary behaves exactly like
//     a message to a dead node — the sender cannot distinguish the two;
//   - a lost message (LossProb) silently vanishes and the sender times out;
//   - a duplicated message (DupProb) is delivered twice;
//   - a gray node (SetGray) is alive but slow: connect and transfer costs
//     to and from it are inflated by its factor;
//   - a degraded link (SetLinkDegrade) multiplies that link's transfer time.
//
// All randomness is drawn from named simnet streams, so any configuration
// is bit-deterministic per seed, and disabled features draw nothing.
type Network struct {
	cluster *Cluster
	cfg     NetConfig
	rng     *rand.Rand

	lossRng *rand.Rand // derived lazily, only when LossProb > 0
	dupRng  *rand.Rand // derived lazily, only when DupProb > 0

	gray       map[NodeID]float64
	degrade    map[linkKey]float64
	partitions []*partition

	deliverObs func(from, to NodeID, size int)
}

func newNetwork(c *Cluster, cfg NetConfig) *Network {
	return &Network{cluster: c, cfg: cfg.withDefaults(), rng: c.Engine.Rand("cluster/network")}
}

// Config returns the effective network configuration.
func (n *Network) Config() NetConfig { return n.cfg }

// OnDeliver registers an observer invoked at the virtual instant of every
// successful delivery (duplicates included), before the receiver's
// callback runs. One observer at a time; nil clears. The observer must
// not schedule events, so registering one never perturbs the event trace.
func (n *Network) OnDeliver(fn func(from, to NodeID, size int)) { n.deliverObs = fn }

// SetGray marks a node as a gray failure: alive, but every connect and
// transfer involving it is multiplied by factor (> 1). A factor <= 1
// clears the mark.
func (n *Network) SetGray(id NodeID, factor float64) {
	if factor <= 1 {
		delete(n.gray, id)
		return
	}
	if n.gray == nil {
		n.gray = make(map[NodeID]float64)
	}
	n.gray[id] = factor
}

// ClearGray removes a node's gray-failure mark.
func (n *Network) ClearGray(id NodeID) { delete(n.gray, id) }

// GrayFactor returns the node's slowdown factor (1 when healthy).
func (n *Network) GrayFactor(id NodeID) float64 {
	if f, ok := n.gray[id]; ok {
		return f
	}
	return 1
}

// GrayCount returns the number of currently gray nodes.
func (n *Network) GrayCount() int { return len(n.gray) }

// SetLinkDegrade multiplies the directed link's transfer time by factor
// (> 1). A factor <= 1 restores the link.
func (n *Network) SetLinkDegrade(from, to NodeID, factor float64) {
	k := linkKey{from, to}
	if factor <= 1 {
		delete(n.degrade, k)
		return
	}
	if n.degrade == nil {
		n.degrade = make(map[linkKey]float64)
	}
	n.degrade[k] = factor
}

// Partition severs the member set from the rest of the cluster starting
// now: messages between a member and a non-member fail with the connect
// timeout in both directions; traffic within either side is unaffected.
// If heal > 0 the partition heals after that long; otherwise it stays
// until HealAll. Partitions compose: a link is severed if any active
// partition separates its endpoints.
func (n *Network) Partition(members []NodeID, heal time.Duration) {
	p := &partition{member: make(map[NodeID]bool, len(members))}
	for _, id := range members {
		p.member[id] = true
	}
	n.partitions = append(n.partitions, p)
	if heal > 0 {
		n.cluster.Engine.After(heal, func() { n.healOne(p) })
	}
}

func (n *Network) healOne(p *partition) {
	for i, q := range n.partitions {
		if q == p {
			n.partitions = append(n.partitions[:i], n.partitions[i+1:]...)
			return
		}
	}
}

// HealAll removes every active partition.
func (n *Network) HealAll() { n.partitions = nil }

// PartitionCount returns the number of active partitions.
func (n *Network) PartitionCount() int { return len(n.partitions) }

// Severed reports whether an active partition separates the two nodes.
func (n *Network) Severed(from, to NodeID) bool {
	for _, p := range n.partitions {
		if p.member[from] != p.member[to] {
			return true
		}
	}
	return false
}

// TransferTime returns the modelled one-way delivery time for a healthy
// message of size bytes, excluding jitter, connection setup and any
// gray/degradation multipliers.
func (n *Network) TransferTime(size int) time.Duration {
	ser := time.Duration(float64(size) / n.cfg.BandwidthBps * float64(time.Second))
	return n.cfg.Latency + ser
}

// pathFactor returns the multiplier gray endpoints and link degradation
// impose on the from→to transfer.
func (n *Network) pathFactor(from, to NodeID) float64 {
	f := 1.0
	if g := n.GrayFactor(from); g > f {
		f = g
	}
	if g := n.GrayFactor(to); g > f {
		f = g
	}
	if d, ok := n.degrade[linkKey{from, to}]; ok {
		f *= d
	}
	return f
}

// scale multiplies a duration by a factor, avoiding the float round trip
// in the common factor==1 case.
func scale(d time.Duration, f float64) time.Duration {
	if f == 1 {
		return d
	}
	return time.Duration(float64(d) * f)
}

// lost draws the in-transit loss coin (only when loss is enabled).
func (n *Network) lost() bool {
	if n.cfg.LossProb <= 0 {
		return false
	}
	if n.lossRng == nil {
		n.lossRng = n.cluster.Engine.Rand("cluster/network/loss")
	}
	return n.lossRng.Float64() < n.cfg.LossProb
}

// duplicated draws the duplication coin (only when duplication is enabled).
func (n *Network) duplicated() bool {
	if n.cfg.DupProb <= 0 {
		return false
	}
	if n.dupRng == nil {
		n.dupRng = n.cluster.Engine.Rand("cluster/network/dup")
	}
	return n.dupRng.Float64() < n.cfg.DupProb
}

// unreachable reports whether a message from→to cannot be delivered right
// now: the destination is dead or a partition separates the endpoints.
func (n *Network) unreachable(from, to NodeID) bool {
	return n.cluster.Node(to).failed || n.Severed(from, to)
}

// Send models one message from -> to carrying size bytes.
//
// If the destination is reachable at delivery time, onDelivered fires at
// the delivery instant (twice under duplication — receivers dedup). If
// the destination is failed or partitioned away (at send or delivery
// time), or the message is lost in transit, onFailed fires after the
// connect timeout — the sender blocks for the timeout, exactly the
// behaviour that makes failed interior tree nodes expensive (Section IV).
// Either callback may be nil. Sockets and message counters on both meters
// are maintained here so every RM model accounts traffic uniformly.
func (n *Network) Send(from, to NodeID, size int, onDelivered func(), onFailed func()) {
	e := n.cluster.Engine
	src := n.cluster.Node(from)
	dst := n.cluster.Node(to)

	src.Meter.CountMessage(true, size)
	src.Meter.OpenSocket()

	fail := func(after time.Duration) {
		e.After(after, func() {
			src.Meter.CloseSocket()
			if onFailed != nil {
				onFailed()
			}
		})
	}

	if n.unreachable(from, to) || n.lost() {
		fail(n.cfg.ConnectTimeout)
		return
	}

	factor := n.pathFactor(from, to)
	d := scale(n.cfg.ConnectCost, factor) + scale(n.TransferTime(size), factor)
	if n.cfg.Jitter > 0 {
		d += time.Duration(n.rng.Int63n(int64(n.cfg.Jitter) + 1))
	}
	e.After(d, func() {
		// The destination may have failed — or been partitioned away —
		// while the message was in flight.
		if n.unreachable(from, to) {
			// Remaining time until the sender's timeout expires.
			fail(n.cfg.ConnectTimeout - d)
			return
		}
		dst.Meter.CountMessage(false, size)
		dst.Meter.OpenSocket()
		src.Meter.CloseSocket()
		// The receiving daemon holds its accept socket briefly while
		// processing.
		e.After(n.cfg.Latency, func() { dst.Meter.CloseSocket() })
		if n.deliverObs != nil {
			n.deliverObs(from, to, size)
		}
		if onDelivered != nil {
			onDelivered()
		}
		if n.duplicated() {
			// Retransmission after a lost ack: the same payload lands a
			// second time one latency later. No socket churn — the
			// duplicate rides the same accept — but the receiver's message
			// counter and callback both fire again.
			e.After(n.cfg.Latency, func() {
				if n.unreachable(from, to) {
					return
				}
				dst.Meter.CountMessage(false, size)
				if n.deliverObs != nil {
					n.deliverObs(from, to, size)
				}
				if onDelivered != nil {
					onDelivered()
				}
			})
		}
	})
}

// SendPersistent models traffic over an already-established long-lived
// connection (e.g. SGE's persistent execd channels): no connect cost and no
// per-message socket churn — the caller is responsible for having opened
// the socket once. The adversarial model (loss, duplication, partitions,
// gray slowdown) applies exactly as in Send.
func (n *Network) SendPersistent(from, to NodeID, size int, onDelivered func(), onFailed func()) {
	e := n.cluster.Engine
	src := n.cluster.Node(from)
	dst := n.cluster.Node(to)
	src.Meter.CountMessage(true, size)

	fail := func(after time.Duration) {
		e.After(after, func() {
			if onFailed != nil {
				onFailed()
			}
		})
	}

	if n.unreachable(from, to) || n.lost() {
		fail(n.cfg.ConnectTimeout)
		return
	}
	d := scale(n.TransferTime(size), n.pathFactor(from, to))
	if n.cfg.Jitter > 0 {
		d += time.Duration(n.rng.Int63n(int64(n.cfg.Jitter) + 1))
	}
	e.After(d, func() {
		if n.unreachable(from, to) {
			if onFailed != nil {
				onFailed()
			}
			return
		}
		dst.Meter.CountMessage(false, size)
		if n.deliverObs != nil {
			n.deliverObs(from, to, size)
		}
		if onDelivered != nil {
			onDelivered()
		}
		if n.duplicated() {
			e.After(n.cfg.Latency, func() {
				if n.unreachable(from, to) {
					return
				}
				dst.Meter.CountMessage(false, size)
				if n.deliverObs != nil {
					n.deliverObs(from, to, size)
				}
				if onDelivered != nil {
					onDelivered()
				}
			})
		}
	})
}
