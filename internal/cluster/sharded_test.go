package cluster

import (
	"testing"
	"time"
)

// twoCell builds a 2-cell cluster: master+satellite on cell 0, computes
// on cell 1, jitter disabled for exact-time assertions.
func twoCell(t *testing.T, workers int, net NetConfig) *ShardedCluster {
	t.Helper()
	return NewSharded(ShardConfig{
		Computes:   4,
		Satellites: 1,
		Net:        net,
		Cells:      2,
		CellOf: func(id NodeID, role Role) int {
			if role == RoleCompute {
				return 1
			}
			return 0
		},
		Workers: workers,
		Seed:    7,
	})
}

func TestShardedSendDelivers(t *testing.T) {
	sc := twoCell(t, 1, NetConfig{Jitter: Disabled})
	comp := sc.Computes()[0]
	var arrived, acked time.Duration
	sc.Send(sc.Master().ID, comp, 1000, func() {
		arrived = sc.Engine(comp).Now()
	}, func() {
		acked = sc.Engine(sc.Master().ID).Now()
	}, nil)
	sc.Group().RunUntil(time.Second)

	cfg := sc.Config()
	wantArrive := cfg.ConnectCost + sc.TransferTime(1000)
	if arrived != wantArrive {
		t.Errorf("arrived at %v, want %v", arrived, wantArrive)
	}
	if want := wantArrive + cfg.Latency; acked != want {
		t.Errorf("acked at %v, want %v", acked, want)
	}
	// Meters: one message out on the master, one in on the compute, all
	// sockets drained.
	if _, out := sc.Master().Meter.Messages(); out != 1 {
		t.Errorf("master messages out = %d, want 1", out)
	}
	if in, _ := sc.Node(comp).Meter.Messages(); in != 1 {
		t.Errorf("compute messages in = %d, want 1", in)
	}
	if s := sc.Master().Meter.Sockets(); s != 0 {
		t.Errorf("master sockets = %d, want 0", s)
	}
	if s := sc.Node(comp).Meter.Sockets(); s != 0 {
		t.Errorf("compute sockets = %d, want 0", s)
	}
}

func TestShardedSendFailStop(t *testing.T) {
	sc := twoCell(t, 2, NetConfig{Jitter: Disabled})
	comp := sc.Computes()[1]
	sc.ScheduleFail(comp, time.Millisecond, 0)
	var failedAt time.Duration
	delivered := false
	// Send after the failure flip: fails at the sender with the connect
	// timeout, exactly like the single-engine network.
	sc.Group().Cell(0).Schedule(2*time.Millisecond, func() {
		sc.Send(sc.Master().ID, comp, 100, func() { delivered = true }, nil, func() {
			failedAt = sc.Engine(sc.Master().ID).Now()
		})
	})
	sc.Group().RunUntil(5 * time.Second)
	if delivered {
		t.Fatal("message to failed node delivered")
	}
	if want := 2*time.Millisecond + sc.Config().ConnectTimeout; failedAt != want {
		t.Errorf("failed at %v, want %v", failedAt, want)
	}
	if !sc.Failed(comp) {
		t.Error("Failed(comp) = false after fail flip")
	}
}

func TestShardedPartitionHeals(t *testing.T) {
	sc := twoCell(t, 2, NetConfig{Jitter: Disabled})
	comp := sc.Computes()[0]
	// Sever the computes from everything for 100ms.
	sc.SchedulePartition(sc.Computes(), time.Millisecond, 100*time.Millisecond)
	var out [2]string
	send := func(slot int, at time.Duration) {
		sc.Group().Cell(0).Schedule(at, func() {
			sc.Send(sc.Master().ID, comp, 100,
				nil,
				func() { out[slot] = "ack" },
				func() { out[slot] = "fail" })
		})
	}
	send(0, 2*time.Millisecond)   // inside the partition: fails
	send(1, 200*time.Millisecond) // after heal: delivers
	sc.Group().RunUntil(5 * time.Second)
	if out[0] != "fail" || out[1] != "ack" {
		t.Fatalf("outcomes = %v, want [fail ack]", out)
	}
}

// TestShardedWorkerInvariance runs an adversarial traffic storm (loss,
// duplication, jitter, faults, gray nodes) at several worker counts and
// pins digest equality — the cluster-layer shard-invariance check.
func TestShardedWorkerInvariance(t *testing.T) {
	run := func(workers int) (uint64, uint64) {
		sc := NewSharded(ShardConfig{
			Computes:   12,
			Satellites: 2,
			Net:        NetConfig{LossProb: 0.1, DupProb: 0.1},
			Cells:      4,
			CellOf: func(id NodeID, role Role) int {
				if role != RoleCompute {
					return 0
				}
				return 1 + int(id)%3
			},
			Workers: workers,
			Seed:    11,
		})
		sc.Group().EnableDigest()
		comps := sc.Computes()
		sc.ScheduleFail(comps[3], 5*time.Millisecond, 20*time.Millisecond)
		sc.ScheduleGray(comps[5], 4.0, time.Millisecond, 0)
		sc.SchedulePartition(comps[6:9], 10*time.Millisecond, 30*time.Millisecond)
		var acked, failed int
		master := sc.Master().ID
		for round := 0; round < 6; round++ {
			at := time.Duration(round+1) * 4 * time.Millisecond
			sc.Group().Cell(0).Schedule(at, func() {
				for _, id := range comps {
					id := id
					sc.Send(master, id, 512,
						func() {
							// The receiver answers over the same substrate.
							sc.Send(id, master, 64, nil, nil, nil)
						},
						func() { acked++ },
						func() { failed++ })
				}
			})
		}
		sc.Group().RunUntil(10 * time.Second)
		if acked+failed == 0 {
			t.Fatal("no sends resolved")
		}
		return sc.Group().Digest(), sc.Group().Processed()
	}
	refD, refP := run(1)
	for _, w := range []int{2, 4} {
		if d, p := run(w); d != refD || p != refP {
			t.Errorf("workers=%d: digest/processed %#x/%d, want %#x/%d", w, d, p, refD, refP)
		}
	}
}
