package cluster

import (
	"testing"
	"testing/quick"
	"time"

	"eslurm/internal/simnet"
)

func newTestCluster(t *testing.T, computes, satellites int) *Cluster {
	t.Helper()
	e := simnet.NewEngine(11)
	return New(e, Config{Computes: computes, Satellites: satellites})
}

func TestClusterLayout(t *testing.T) {
	c := newTestCluster(t, 10, 3)
	if c.Size() != 14 {
		t.Fatalf("Size = %d, want 14", c.Size())
	}
	if c.Master().Role != RoleMaster || c.Master().ID != 0 {
		t.Error("master must be node 0")
	}
	sats := c.Satellites()
	if len(sats) != 3 {
		t.Fatalf("satellites = %d, want 3", len(sats))
	}
	for i, id := range sats {
		if id != NodeID(1+i) {
			t.Errorf("satellite %d has ID %d", i, id)
		}
	}
	comps := c.Computes()
	if len(comps) != 10 {
		t.Fatalf("computes = %d, want 10", len(comps))
	}
	if comps[0] != 4 {
		t.Errorf("first compute ID = %d, want 4", comps[0])
	}
}

func TestRoleString(t *testing.T) {
	if RoleMaster.String() != "master" || RoleSatellite.String() != "satellite" || RoleCompute.String() != "compute" {
		t.Error("role strings wrong")
	}
	if Role(99).String() == "" {
		t.Error("unknown role must still print")
	}
}

func TestFailRecover(t *testing.T) {
	c := newTestCluster(t, 4, 0)
	id := c.Computes()[0]
	fired := 0
	c.OnFail(id, func() { fired++ })
	c.Fail(id)
	c.Fail(id) // idempotent
	if !c.Node(id).Failed() {
		t.Error("node not failed")
	}
	if fired != 1 {
		t.Errorf("OnFail fired %d times, want 1", fired)
	}
	if c.FailedCount() != 1 {
		t.Errorf("FailedCount = %d", c.FailedCount())
	}
	c.Recover(id)
	if c.Node(id).Failed() {
		t.Error("node still failed after Recover")
	}
}

func TestScheduleFailure(t *testing.T) {
	c := newTestCluster(t, 2, 0)
	id := c.Computes()[0]
	c.ScheduleFailure(id, 5*time.Second, 10*time.Second)
	c.Engine.RunUntil(6 * time.Second)
	if !c.Node(id).Failed() {
		t.Fatal("node not failed at t=6s")
	}
	c.Engine.RunUntil(16 * time.Second)
	if c.Node(id).Failed() {
		t.Fatal("node not recovered at t=16s")
	}
}

func TestSendHealthy(t *testing.T) {
	c := newTestCluster(t, 2, 0)
	a, b := c.Computes()[0], c.Computes()[1]
	delivered, failed := false, false
	c.Net.Send(a, b, 1000, func() { delivered = true }, func() { failed = true })
	c.Engine.Run()
	if !delivered || failed {
		t.Fatalf("delivered=%v failed=%v", delivered, failed)
	}
	in, _ := c.Node(b).Meter.Messages()
	if in != 1 {
		t.Errorf("receiver message count = %d", in)
	}
	_, out := c.Node(a).Meter.Messages()
	if out != 1 {
		t.Errorf("sender out count = %d", out)
	}
	if c.Node(a).Meter.Sockets() != 0 || c.Node(b).Meter.Sockets() != 0 {
		t.Error("sockets leaked after delivery")
	}
}

func TestSendToFailedTimesOut(t *testing.T) {
	c := newTestCluster(t, 2, 0)
	a, b := c.Computes()[0], c.Computes()[1]
	c.Fail(b)
	var failedAt time.Duration
	delivered := false
	c.Net.Send(a, b, 100, func() { delivered = true }, func() { failedAt = c.Engine.Now() })
	c.Engine.Run()
	if delivered {
		t.Fatal("delivered to failed node")
	}
	if failedAt != c.Net.Config().ConnectTimeout {
		t.Fatalf("failure reported at %v, want %v", failedAt, c.Net.Config().ConnectTimeout)
	}
	if c.Node(a).Meter.Sockets() != 0 {
		t.Error("socket leaked after timeout")
	}
}

func TestSendFailsMidFlight(t *testing.T) {
	c := newTestCluster(t, 2, 0)
	a, b := c.Computes()[0], c.Computes()[1]
	delivered, failed := false, false
	c.Net.Send(a, b, 1<<20, func() { delivered = true }, func() { failed = true })
	// Fail the destination before the (large) message can arrive.
	c.Engine.After(100*time.Microsecond, func() { c.Fail(b) })
	c.Engine.Run()
	if delivered || !failed {
		t.Fatalf("mid-flight failure: delivered=%v failed=%v", delivered, failed)
	}
}

func TestTransferTimeMonotonicInSize(t *testing.T) {
	c := newTestCluster(t, 2, 0)
	small := c.Net.TransferTime(100)
	big := c.Net.TransferTime(1 << 24)
	if big <= small {
		t.Errorf("TransferTime not monotonic: %v vs %v", small, big)
	}
}

func TestSendPersistentNoSocketChurn(t *testing.T) {
	c := newTestCluster(t, 2, 0)
	a, b := c.Computes()[0], c.Computes()[1]
	delivered := false
	c.Net.SendPersistent(a, b, 100, func() { delivered = true }, nil)
	c.Engine.Run()
	if !delivered {
		t.Fatal("not delivered")
	}
	if c.Node(a).Meter.PeakSockets() != 0 {
		t.Error("persistent send churned sockets")
	}
}

func TestMeterCPUAndMemory(t *testing.T) {
	var m ResourceMeter
	m.ChargeCPU(time.Second)
	m.ChargeCPU(-time.Second) // ignored
	if m.CPUTime() != time.Second {
		t.Errorf("CPUTime = %v", m.CPUTime())
	}
	m.AddVMem(1000)
	m.AddVMem(-2000) // clamped
	if m.VMem() != 0 {
		t.Errorf("VMem = %d", m.VMem())
	}
	m.AddRSS(500)
	if m.RSS() != 500 {
		t.Errorf("RSS = %d", m.RSS())
	}
}

func TestMeterSocketClamp(t *testing.T) {
	var m ResourceMeter
	m.CloseSocket()
	if m.Sockets() != 0 {
		t.Error("socket count went negative")
	}
	m.OpenSocket()
	m.OpenSocket()
	if m.PeakSockets() != 2 {
		t.Errorf("peak = %d", m.PeakSockets())
	}
}

func TestMeterAvgSockets(t *testing.T) {
	e := simnet.NewEngine(1)
	c := New(e, Config{Computes: 1})
	m := &c.Node(c.Computes()[0]).Meter
	// Hold 2 sockets for the first 10s, 0 sockets for the next 10s.
	m.OpenSocket()
	m.OpenSocket()
	e.Schedule(10*time.Second, func() { m.CloseSocket(); m.CloseSocket() })
	e.RunUntil(20 * time.Second)
	avg := m.AvgSockets()
	if avg < 0.9 || avg > 1.1 {
		t.Errorf("AvgSockets = %v, want ~1.0", avg)
	}
}

func TestSampler(t *testing.T) {
	e := simnet.NewEngine(1)
	c := New(e, Config{Computes: 1})
	m := &c.Master().Meter
	s := NewSampler(e, m, time.Second)
	e.Every(time.Second, func() { m.ChargeCPU(10 * time.Millisecond) })
	e.RunUntil(5500 * time.Millisecond)
	if len(s.Samples) != 5 {
		t.Fatalf("samples = %d, want 5", len(s.Samples))
	}
	for i := 1; i < len(s.Samples); i++ {
		if s.Samples[i].CPUTime < s.Samples[i-1].CPUTime {
			t.Error("CPU time series not monotone")
		}
	}
	s.Stop()
	e.RunUntil(10 * time.Second)
	if len(s.Samples) != 5 {
		t.Error("sampler ran after Stop")
	}
}

// Property: message delivery time is deterministic for a fixed seed and
// grows with message size.
func TestPropertyDeliveryTimeGrowsWithSize(t *testing.T) {
	f := func(sz uint32) bool {
		e := simnet.NewEngine(5)
		c := New(e, Config{Computes: 2, Net: NetConfig{Jitter: time.Nanosecond}})
		a, b := c.Computes()[0], c.Computes()[1]
		var small, big time.Duration
		c.Net.Send(a, b, 10, func() { small = e.Now() }, nil)
		e.Run()
		e2 := simnet.NewEngine(5)
		c2 := New(e2, Config{Computes: 2, Net: NetConfig{Jitter: time.Nanosecond}})
		c2.Net.Send(a, b, int(sz%(1<<22))+10, func() { big = e2.Now() }, nil)
		e2.Run()
		return big >= small
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
