// Package alloc implements node selection for job placement: given a free
// set, pick the concrete nodes a job runs on. Three policies are
// provided — first-fit (Slurm's default linear select), contiguous
// (block-seeking, minimizing fragmentation), and topology-aware
// (minimizing racks spanned, which keeps MPI traffic rack-local and job
// launch broadcasts shallow).
//
// Determinism: every policy is a pure function of the free list's order —
// no RNG, no map iteration, no clocks — so the same cluster state always
// yields the same placement, which the same-seed ⇒ same-trace contract
// requires of anything the scheduler calls.
package alloc

import (
	"fmt"
	"sort"

	"eslurm/internal/cluster"
	"eslurm/internal/topo"
)

// Allocator hands out and reclaims compute nodes.
type Allocator interface {
	// Alloc reserves n nodes, returning them, or ok=false leaving state
	// unchanged when fewer than n are free.
	Alloc(n int) (nodes []cluster.NodeID, ok bool)
	// Free returns nodes to the pool. Freeing an unallocated node panics:
	// it is always a scheduler bug.
	Free(nodes []cluster.NodeID)
	// FreeCount reports currently available nodes.
	FreeCount() int
}

// pool is the shared bookkeeping: a sorted free list with O(1) membership.
type pool struct {
	free   []cluster.NodeID // sorted
	inUse  map[cluster.NodeID]bool
	member map[cluster.NodeID]bool
}

func newPool(nodes []cluster.NodeID) *pool {
	p := &pool{
		inUse:  make(map[cluster.NodeID]bool, len(nodes)),
		member: make(map[cluster.NodeID]bool, len(nodes)),
	}
	p.free = append(p.free, nodes...)
	sort.Slice(p.free, func(i, j int) bool { return p.free[i] < p.free[j] })
	for _, id := range p.free {
		p.member[id] = true
	}
	return p
}

func (p *pool) freeCount() int { return len(p.free) }

// take removes the given nodes (which must all be free) from the free
// list.
func (p *pool) take(nodes []cluster.NodeID) {
	taken := make(map[cluster.NodeID]bool, len(nodes))
	for _, id := range nodes {
		taken[id] = true
		p.inUse[id] = true
	}
	out := p.free[:0]
	for _, id := range p.free {
		if !taken[id] {
			out = append(out, id)
		}
	}
	p.free = out
}

func (p *pool) give(nodes []cluster.NodeID) {
	for _, id := range nodes {
		if !p.member[id] {
			panic(fmt.Sprintf("alloc: freeing foreign node %d", id))
		}
		if !p.inUse[id] {
			panic(fmt.Sprintf("alloc: double free of node %d", id))
		}
		delete(p.inUse, id)
		p.free = append(p.free, id)
	}
	sort.Slice(p.free, func(i, j int) bool { return p.free[i] < p.free[j] })
}

// FirstFit hands out the lowest-numbered free nodes (Slurm's
// select/linear behaviour).
type FirstFit struct{ p *pool }

// NewFirstFit builds a first-fit allocator over the node set.
func NewFirstFit(nodes []cluster.NodeID) *FirstFit {
	return &FirstFit{p: newPool(nodes)}
}

// Alloc implements Allocator.
func (a *FirstFit) Alloc(n int) ([]cluster.NodeID, bool) {
	if n <= 0 || n > len(a.p.free) {
		return nil, false
	}
	out := append([]cluster.NodeID(nil), a.p.free[:n]...)
	a.p.take(out)
	return out, true
}

// Free implements Allocator.
func (a *FirstFit) Free(nodes []cluster.NodeID) { a.p.give(nodes) }

// FreeCount implements Allocator.
func (a *FirstFit) FreeCount() int { return a.p.freeCount() }

// Contiguous prefers an exact contiguous ID block (best-fit: the smallest
// run that holds the job), falling back to first-fit when no single run is
// large enough. Contiguous blocks keep fragmentation down and make relay
// trees ID-local.
type Contiguous struct{ p *pool }

// NewContiguous builds a contiguous allocator over the node set.
func NewContiguous(nodes []cluster.NodeID) *Contiguous {
	return &Contiguous{p: newPool(nodes)}
}

// Alloc implements Allocator.
func (a *Contiguous) Alloc(n int) ([]cluster.NodeID, bool) {
	if n <= 0 || n > len(a.p.free) {
		return nil, false
	}
	// Scan runs in the sorted free list; pick the smallest run >= n.
	bestStart, bestLen := -1, 1<<62
	i := 0
	for i < len(a.p.free) {
		j := i
		for j+1 < len(a.p.free) && a.p.free[j+1] == a.p.free[j]+1 {
			j++
		}
		runLen := j - i + 1
		if runLen >= n && runLen < bestLen {
			bestStart, bestLen = i, runLen
		}
		i = j + 1
	}
	var out []cluster.NodeID
	if bestStart >= 0 {
		out = append(out, a.p.free[bestStart:bestStart+n]...)
	} else {
		out = append(out, a.p.free[:n]...)
	}
	a.p.take(out)
	return out, true
}

// Free implements Allocator.
func (a *Contiguous) Free(nodes []cluster.NodeID) { a.p.give(nodes) }

// FreeCount implements Allocator.
func (a *Contiguous) FreeCount() int { return a.p.freeCount() }

// TopoAware packs jobs into as few racks as possible: racks are filled
// best-fit (fullest rack that still fits first), splitting across racks
// only when no single rack suffices.
type TopoAware struct {
	p  *pool
	tp topo.Topology
}

// NewTopoAware builds a topology-aware allocator.
func NewTopoAware(nodes []cluster.NodeID, tp topo.Topology) *TopoAware {
	return &TopoAware{p: newPool(nodes), tp: tp}
}

// Alloc implements Allocator.
func (a *TopoAware) Alloc(n int) ([]cluster.NodeID, bool) {
	if n <= 0 || n > len(a.p.free) {
		return nil, false
	}
	// Bucket the free list per rack (free list is sorted, racks are ID
	// ranges, so buckets stay sorted).
	byRack := map[int][]cluster.NodeID{}
	var racks []int
	for _, id := range a.p.free {
		r := a.tp.Rack(id)
		if len(byRack[r]) == 0 {
			racks = append(racks, r)
		}
		byRack[r] = append(byRack[r], id)
	}
	// Single-rack fit: the fullest-fitting rack (smallest count >= n).
	bestRack, bestCount := -1, 1<<62
	for _, r := range racks {
		if c := len(byRack[r]); c >= n && c < bestCount {
			bestRack, bestCount = r, c
		}
	}
	var out []cluster.NodeID
	if bestRack >= 0 {
		out = append(out, byRack[bestRack][:n]...)
	} else {
		// Spill: take the largest racks first to span as few as possible.
		sort.Slice(racks, func(i, j int) bool {
			return len(byRack[racks[i]]) > len(byRack[racks[j]])
		})
		need := n
		for _, r := range racks {
			take := len(byRack[r])
			if take > need {
				take = need
			}
			out = append(out, byRack[r][:take]...)
			need -= take
			if need == 0 {
				break
			}
		}
	}
	a.p.take(out)
	return out, true
}

// Free implements Allocator.
func (a *TopoAware) Free(nodes []cluster.NodeID) { a.p.give(nodes) }

// FreeCount implements Allocator.
func (a *TopoAware) FreeCount() int { return a.p.freeCount() }

// RacksSpanned counts the distinct racks of an allocation — the locality
// metric topology-aware placement minimizes.
func RacksSpanned(tp topo.Topology, nodes []cluster.NodeID) int {
	seen := map[int]bool{}
	for _, id := range nodes {
		seen[tp.Rack(id)] = true
	}
	return len(seen)
}
