package alloc

import (
	"math/rand"
	"testing"
	"testing/quick"

	"eslurm/internal/cluster"
	"eslurm/internal/topo"
)

func ids(n int) []cluster.NodeID {
	out := make([]cluster.NodeID, n)
	for i := range out {
		out[i] = cluster.NodeID(i)
	}
	return out
}

func allocators(n int) map[string]Allocator {
	return map[string]Allocator{
		"firstfit":   NewFirstFit(ids(n)),
		"contiguous": NewContiguous(ids(n)),
		"topoaware":  NewTopoAware(ids(n), topo.Default()),
	}
}

func TestAllocFreeRoundTrip(t *testing.T) {
	for name, a := range allocators(100) {
		got, ok := a.Alloc(10)
		if !ok || len(got) != 10 {
			t.Fatalf("%s: Alloc(10) = %v, %v", name, got, ok)
		}
		if a.FreeCount() != 90 {
			t.Fatalf("%s: FreeCount = %d", name, a.FreeCount())
		}
		a.Free(got)
		if a.FreeCount() != 100 {
			t.Fatalf("%s: FreeCount after free = %d", name, a.FreeCount())
		}
	}
}

func TestAllocRefusesOversized(t *testing.T) {
	for name, a := range allocators(10) {
		if _, ok := a.Alloc(11); ok {
			t.Errorf("%s: oversized alloc succeeded", name)
		}
		if a.FreeCount() != 10 {
			t.Errorf("%s: failed alloc leaked state", name)
		}
		if _, ok := a.Alloc(0); ok {
			t.Errorf("%s: zero alloc succeeded", name)
		}
	}
}

func TestNoDoubleAllocation(t *testing.T) {
	for name, a := range allocators(64) {
		seen := map[cluster.NodeID]bool{}
		for i := 0; i < 8; i++ {
			got, ok := a.Alloc(8)
			if !ok {
				t.Fatalf("%s: alloc %d failed", name, i)
			}
			for _, id := range got {
				if seen[id] {
					t.Fatalf("%s: node %d allocated twice", name, id)
				}
				seen[id] = true
			}
		}
		if _, ok := a.Alloc(1); ok {
			t.Fatalf("%s: allocated from an empty pool", name)
		}
	}
}

func TestDoubleFreePanics(t *testing.T) {
	a := NewFirstFit(ids(10))
	got, _ := a.Alloc(2)
	a.Free(got)
	defer func() {
		if recover() == nil {
			t.Error("double free did not panic")
		}
	}()
	a.Free(got)
}

func TestForeignFreePanics(t *testing.T) {
	a := NewFirstFit(ids(10))
	defer func() {
		if recover() == nil {
			t.Error("foreign free did not panic")
		}
	}()
	a.Free([]cluster.NodeID{999})
}

func TestFirstFitTakesLowest(t *testing.T) {
	a := NewFirstFit(ids(10))
	got, _ := a.Alloc(3)
	for i, id := range got {
		if id != cluster.NodeID(i) {
			t.Fatalf("first-fit gave %v", got)
		}
	}
}

func TestContiguousPrefersSmallestRun(t *testing.T) {
	a := NewContiguous(ids(100))
	// Create holes: allocate everything, then free a 5-run and a 20-run.
	all, _ := a.Alloc(100)
	_ = all
	a.Free([]cluster.NodeID{10, 11, 12, 13, 14})
	a.Free([]cluster.NodeID{50, 51, 52, 53, 54, 55, 56, 57, 58, 59,
		60, 61, 62, 63, 64, 65, 66, 67, 68, 69})
	got, ok := a.Alloc(4)
	if !ok {
		t.Fatal("alloc failed")
	}
	// Best fit: the 5-run, not the 20-run.
	for _, id := range got {
		if id < 10 || id > 14 {
			t.Fatalf("best-fit picked %v, want within [10,14]", got)
		}
	}
}

func TestContiguousFallsBackWhenFragmented(t *testing.T) {
	a := NewContiguous(ids(16))
	all, _ := a.Alloc(16)
	_ = all
	// Free every other node: no run longer than 1.
	var scattered []cluster.NodeID
	for i := 0; i < 16; i += 2 {
		scattered = append(scattered, cluster.NodeID(i))
	}
	a.Free(scattered)
	got, ok := a.Alloc(4)
	if !ok || len(got) != 4 {
		t.Fatalf("fragmented alloc failed: %v %v", got, ok)
	}
}

func TestTopoAwareMinimizesRacks(t *testing.T) {
	tp := topo.Default() // 512 per rack
	n := 2048            // 4 racks
	ta := NewTopoAware(ids(n), tp)
	ff := NewFirstFit(ids(n))

	// Fragment both pools the same way: allocate 300 from each rack
	// region via explicit takes.
	frag := func(a Allocator) {
		// Allocate 4 x 300 so each rack keeps 212 free.
		for i := 0; i < 4; i++ {
			if _, ok := a.Alloc(300); !ok {
				t.Fatal("fragmentation alloc failed")
			}
		}
	}
	frag(ta)
	frag(ff)

	// First-fit's free list is now scattered across racks; a 200-node job
	// fits in one rack under topology-aware placement.
	gotTA, _ := ta.Alloc(200)
	gotFF, _ := ff.Alloc(200)
	if RacksSpanned(tp, gotTA) != 1 {
		t.Errorf("topo-aware spanned %d racks, want 1", RacksSpanned(tp, gotTA))
	}
	if RacksSpanned(tp, gotFF) < RacksSpanned(tp, gotTA) {
		t.Errorf("first-fit (%d racks) beat topo-aware (%d)",
			RacksSpanned(tp, gotFF), RacksSpanned(tp, gotTA))
	}
}

func TestTopoAwareSpillsAcrossFewestRacks(t *testing.T) {
	tp := topo.Default()
	ta := NewTopoAware(ids(2048), tp)
	// A job bigger than any rack spans exactly ceil(n/512) racks.
	got, ok := ta.Alloc(1000)
	if !ok {
		t.Fatal("alloc failed")
	}
	if spans := RacksSpanned(tp, got); spans != 2 {
		t.Errorf("1000-node job spans %d racks, want 2", spans)
	}
}

// Property: for any alloc/free sequence, the free count is consistent and
// no node is ever handed out twice concurrently.
func TestPropertyAllocatorInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		for _, a := range allocators(256) {
			live := map[cluster.NodeID]bool{}
			var held [][]cluster.NodeID
			free := 256
			for op := 0; op < 100; op++ {
				if rng.Float64() < 0.6 || len(held) == 0 {
					n := 1 + rng.Intn(60)
					got, ok := a.Alloc(n)
					if ok != (n <= free) {
						return false
					}
					if !ok {
						continue
					}
					for _, id := range got {
						if live[id] {
							return false
						}
						live[id] = true
					}
					held = append(held, got)
					free -= n
				} else {
					i := rng.Intn(len(held))
					batch := held[i]
					held = append(held[:i], held[i+1:]...)
					a.Free(batch)
					for _, id := range batch {
						delete(live, id)
					}
					free += len(batch)
				}
				if a.FreeCount() != free {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func BenchmarkTopoAwareAlloc20K(b *testing.B) {
	tp := topo.Default()
	a := NewTopoAware(ids(20480), tp)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		got, ok := a.Alloc(1024)
		if !ok {
			b.Fatal("alloc failed")
		}
		a.Free(got)
	}
}
