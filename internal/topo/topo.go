// Package topo models cluster topology — the rack/chassis/board hierarchy
// of the Tianhe systems — and provides topology-aware nodelist ordering
// for communication trees.
//
// Section IV-E's closing paragraph describes the composition this package
// enables: "for systems that use topological information to optimize
// communication, the communication tree can be constructed first using
// topology-aware techniques and then fine-tuned using the FP-Tree
// constructor. This approach can reduce the impact of failed nodes while
// preserving the topology-aware properties of the tree."
//
// Determinism: layouts and orderings are pure functions of node IDs and
// shape parameters — no RNG, no map iteration — so tree fine-tuning is
// reproducible under the same-seed ⇒ same-trace contract.
package topo

import (
	"sort"

	"eslurm/internal/cluster"
	"eslurm/internal/fptree"
)

// Topology places nodes into a board → chassis → rack hierarchy by ID.
type Topology struct {
	// NodesPerBoard, BoardsPerChassis, ChassisPerRack define the levels.
	NodesPerBoard    int
	BoardsPerChassis int
	ChassisPerRack   int
}

// Default returns the Tianhe-like hierarchy: 8 nodes per board, 16 boards
// per chassis, 4 chassis per rack (512 nodes per rack).
func Default() Topology {
	return Topology{NodesPerBoard: 8, BoardsPerChassis: 16, ChassisPerRack: 4}
}

// Board returns the node's board index.
func (t Topology) Board(id cluster.NodeID) int { return int(id) / t.NodesPerBoard }

// Chassis returns the node's chassis index.
func (t Topology) Chassis(id cluster.NodeID) int { return t.Board(id) / t.BoardsPerChassis }

// Rack returns the node's rack index.
func (t Topology) Rack(id cluster.NodeID) int { return t.Chassis(id) / t.ChassisPerRack }

// NodesPerRack returns the rack capacity.
func (t Topology) NodesPerRack() int {
	return t.NodesPerBoard * t.BoardsPerChassis * t.ChassisPerRack
}

// Hops returns the network distance class between two nodes: 0 same
// board, 1 same chassis, 2 same rack, 3 cross-rack. Communication latency
// grows with the class.
func (t Topology) Hops(a, b cluster.NodeID) int {
	switch {
	case t.Board(a) == t.Board(b):
		return 0
	case t.Chassis(a) == t.Chassis(b):
		return 1
	case t.Rack(a) == t.Rack(b):
		return 2
	default:
		return 3
	}
}

// Order sorts a nodelist topology-first (rack, chassis, board, id), the
// "topology-aware technique" whose ordering the FP-Tree fine-tuner then
// adjusts. The input is not modified.
func (t Topology) Order(list []cluster.NodeID) []cluster.NodeID {
	out := append([]cluster.NodeID(nil), list...)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if ra, rb := t.Rack(a), t.Rack(b); ra != rb {
			return ra < rb
		}
		if ca, cb := t.Chassis(a), t.Chassis(b); ca != cb {
			return ca < cb
		}
		if ba, bb := t.Board(a), t.Board(b); ba != bb {
			return ba < bb
		}
		return a < b
	})
	return out
}

// TreeCost scores a relay tree by summing the hop classes of every
// parent→child edge (origin edges use cross-rack cost 3, as the satellite
// sits outside the participant racks). Lower is better; topology-aware
// ordering minimizes it by keeping subtrees rack-local.
func (t Topology) TreeCost(tr *fptree.Tree[cluster.NodeID]) int {
	cost := 0
	var rec func(parent cluster.NodeID, nodes []*fptree.Node[cluster.NodeID], fromOrigin bool)
	rec = func(parent cluster.NodeID, nodes []*fptree.Node[cluster.NodeID], fromOrigin bool) {
		for _, n := range nodes {
			if fromOrigin {
				cost += 3
			} else {
				cost += t.Hops(parent, n.Value)
			}
			rec(n.Value, n.Children, false)
		}
	}
	rec(0, tr.Roots, true)
	return cost
}

// PlanFPTree produces the §IV-E composed ordering: topology-aware sort
// first, then the FP-Tree fine-tuner swaps predicted-failed nodes into
// leaf slots with the minimum number of moves, preserving the rest of the
// topology-aware order. It returns the final list and the number of
// fine-tune swaps.
func (t Topology) PlanFPTree(list []cluster.NodeID, predicted func(cluster.NodeID) bool, width int) ([]cluster.NodeID, int) {
	ordered := t.Order(list)
	swaps := fptree.FineTune(ordered, predicted, width)
	return ordered, swaps
}
