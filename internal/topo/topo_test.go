package topo

import (
	"math/rand"
	"testing"
	"testing/quick"

	"eslurm/internal/cluster"
	"eslurm/internal/fptree"
)

func ids(n int) []cluster.NodeID {
	out := make([]cluster.NodeID, n)
	for i := range out {
		out[i] = cluster.NodeID(i)
	}
	return out
}

func TestHierarchy(t *testing.T) {
	tp := Default()
	if tp.NodesPerRack() != 512 {
		t.Fatalf("nodes per rack = %d", tp.NodesPerRack())
	}
	if tp.Board(7) != 0 || tp.Board(8) != 1 {
		t.Error("board indexing wrong")
	}
	if tp.Chassis(127) != 0 || tp.Chassis(128) != 1 {
		t.Error("chassis indexing wrong")
	}
	if tp.Rack(511) != 0 || tp.Rack(512) != 1 {
		t.Error("rack indexing wrong")
	}
}

func TestHops(t *testing.T) {
	tp := Default()
	cases := []struct {
		a, b cluster.NodeID
		want int
	}{
		{0, 7, 0},   // same board
		{0, 8, 1},   // same chassis
		{0, 128, 2}, // same rack
		{0, 512, 3}, // cross rack
		{5, 5, 0},
	}
	for _, c := range cases {
		if got := tp.Hops(c.a, c.b); got != c.want {
			t.Errorf("Hops(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestOrderGroupsRacks(t *testing.T) {
	tp := Default()
	// Interleave nodes from two racks.
	var list []cluster.NodeID
	for i := 0; i < 20; i++ {
		list = append(list, cluster.NodeID(i), cluster.NodeID(512+i))
	}
	rng := rand.New(rand.NewSource(1))
	rng.Shuffle(len(list), func(i, j int) { list[i], list[j] = list[j], list[i] })
	ordered := tp.Order(list)
	// All rack-0 nodes must precede all rack-1 nodes.
	seenRack1 := false
	for _, id := range ordered {
		if tp.Rack(id) == 1 {
			seenRack1 = true
		} else if seenRack1 {
			t.Fatal("rack-0 node after rack-1 nodes")
		}
	}
	// Input untouched.
	if &list[0] == &ordered[0] {
		t.Error("Order mutated its input")
	}
}

func TestTopologyOrderReducesTreeCost(t *testing.T) {
	tp := Default()
	// 1024 nodes across two racks, shuffled.
	list := ids(1024)
	rng := rand.New(rand.NewSource(2))
	shuffled := append([]cluster.NodeID(nil), list...)
	rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })

	random := tp.TreeCost(fptree.Build(shuffled, 32))
	aware := tp.TreeCost(fptree.Build(tp.Order(shuffled), 32))
	if aware >= random {
		t.Fatalf("topology-aware cost %d >= random cost %d", aware, random)
	}
}

func TestPlanFPTreeComposition(t *testing.T) {
	tp := Default()
	list := ids(512)
	predicted := map[cluster.NodeID]bool{3: true, 100: true, 300: true}
	pred := func(id cluster.NodeID) bool { return predicted[id] }
	plan, swaps := tp.PlanFPTree(list, pred, 16)

	// Predicted nodes sit at leaf slots.
	slots := fptree.LeafSlots(len(plan), 16)
	for i, id := range plan {
		if predicted[id] && !slots[i] {
			t.Errorf("predicted node %d at interior slot %d", id, i)
		}
	}
	// Fine-tuning moved at most 2 nodes per prediction.
	if swaps > len(predicted) {
		t.Errorf("swaps = %d, want <= %d", swaps, len(predicted))
	}
	// The composed plan's cost stays near the purely topology-aware one:
	// fine-tuning must not destroy locality (§IV-E).
	awareCost := tp.TreeCost(fptree.Build(tp.Order(list), 16))
	planCost := tp.TreeCost(fptree.Build(plan, 16))
	if planCost > awareCost+6*3 { // each swap can add at most two cross-rack edges... bounded slack
		t.Errorf("fine-tuned cost %d far above topology-aware cost %d", planCost, awareCost)
	}
}

// Property: Order returns a permutation with nondecreasing rack indices.
func TestPropertyOrderPermutationSorted(t *testing.T) {
	tp := Default()
	f := func(seed int64, n16 uint16) bool {
		n := int(n16%2000) + 1
		rng := rand.New(rand.NewSource(seed))
		list := make([]cluster.NodeID, n)
		for i := range list {
			list[i] = cluster.NodeID(rng.Intn(8192))
		}
		out := tp.Order(list)
		if len(out) != n {
			return false
		}
		counts := map[cluster.NodeID]int{}
		for _, id := range list {
			counts[id]++
		}
		for _, id := range out {
			counts[id]--
		}
		for _, c := range counts {
			if c != 0 {
				return false
			}
		}
		for i := 1; i < len(out); i++ {
			if tp.Rack(out[i]) < tp.Rack(out[i-1]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkPlanFPTree4K(b *testing.B) {
	tp := Default()
	list := ids(4096)
	pred := func(id cluster.NodeID) bool { return id%50 == 0 }
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tp.PlanFPTree(list, pred, 32)
	}
}
