package perfgate

import (
	"path/filepath"
	"strings"
	"testing"
)

func baseRecord() *Record {
	return &Record{
		Preset: "quick", Parallel: 1, GOOS: "linux", GOARCH: "amd64", NumCPU: 1,
		EventsPerSec: 1_000_000,
		Experiments: []Experiment{
			{ID: "fig7f", Events: 20_000_000, EventsPerSec: 1_400_000},
			{ID: "fig10", Events: 14_000_000, EventsPerSec: 1_000_000},
			{ID: "table8", Events: 0, EventsPerSec: 0},
		},
		Kernel: []Microbench{
			{Name: "EngineStep", NsPerOp: 160, AllocsPerOp: 0},
			{Name: "EngineRand", NsPerOp: 20, AllocsPerOp: 0},
		},
	}
}

// clone returns an independent copy safe to mutate per test.
func clone(r *Record) *Record {
	c := *r
	c.Experiments = append([]Experiment(nil), r.Experiments...)
	c.Kernel = append([]Microbench(nil), r.Kernel...)
	return &c
}

func TestIdenticalRecordsPass(t *testing.T) {
	base := baseRecord()
	rep := Compare(base, clone(base), Tolerance{})
	if rep.Regressions() != 0 {
		t.Fatalf("identical records regressed:\n%s", rep)
	}
	if !strings.Contains(rep.String(), "perfgate: ok") {
		t.Fatalf("expected ok verdict, got:\n%s", rep)
	}
}

func TestNoiseWithinToleranceDoesNotFire(t *testing.T) {
	base := baseRecord()
	fresh := clone(base)
	fresh.EventsPerSec = base.EventsPerSec * 0.80           // -20%, suite tol 25%
	fresh.Experiments[0].EventsPerSec = 1_400_000 * 0.65    // -35%, exp tol 40%
	fresh.Kernel[0].NsPerOp = base.Kernel[0].NsPerOp * 1.40 // +40%, micro tol 50%
	if rep := Compare(base, fresh, Tolerance{}); rep.Regressions() != 0 {
		t.Fatalf("in-tolerance noise regressed:\n%s", rep)
	}
}

func TestSuiteThroughputRegressionFires(t *testing.T) {
	base := baseRecord()
	fresh := clone(base)
	fresh.EventsPerSec = base.EventsPerSec * 0.70 // -30% > 25% tolerance
	rep := Compare(base, fresh, Tolerance{})
	if rep.Regressions() != 1 {
		t.Fatalf("want 1 regression, got %d:\n%s", rep.Regressions(), rep)
	}
	if !strings.Contains(rep.String(), "suite throughput") {
		t.Fatalf("wrong finding:\n%s", rep)
	}
}

func TestExperimentRegressionFires(t *testing.T) {
	base := baseRecord()
	fresh := clone(base)
	fresh.Experiments[1].EventsPerSec = 500_000 // -50% > 40% tolerance
	rep := Compare(base, fresh, Tolerance{})
	if rep.Regressions() != 1 || !strings.Contains(rep.String(), "experiment fig10") {
		t.Fatalf("want one fig10 regression:\n%s", rep)
	}
}

func TestMicrobenchRegressionFires(t *testing.T) {
	base := baseRecord()
	fresh := clone(base)
	fresh.Kernel[1].NsPerOp = 35 // +75% > 50% tolerance
	rep := Compare(base, fresh, Tolerance{})
	if rep.Regressions() != 1 || !strings.Contains(rep.String(), "EngineRand") {
		t.Fatalf("want one EngineRand regression:\n%s", rep)
	}
}

func TestAllocRegressionHasZeroTolerance(t *testing.T) {
	base := baseRecord()
	fresh := clone(base)
	fresh.Kernel[0].AllocsPerOp = 1
	rep := Compare(base, fresh, Tolerance{})
	if rep.Regressions() != 1 || !strings.Contains(rep.String(), "allocations get zero tolerance") {
		t.Fatalf("want one alloc regression:\n%s", rep)
	}
}

// TestCPUMismatchSkipsTimingsButKeepsAllocs pins the honesty rule: on a
// different machine every timing check is demoted to a note, but the
// machine-independent allocation counts still gate.
func TestCPUMismatchSkipsTimingsButKeepsAllocs(t *testing.T) {
	base := baseRecord()
	fresh := clone(base)
	fresh.NumCPU = 4
	fresh.EventsPerSec = 1 // would be a catastrophic "regression" if judged
	fresh.Kernel[0].NsPerOp = 9999
	fresh.Kernel[0].AllocsPerOp = 2
	rep := Compare(base, fresh, Tolerance{})
	if rep.Regressions() != 1 {
		t.Fatalf("want only the alloc regression, got %d:\n%s", rep.Regressions(), rep)
	}
	if !strings.Contains(rep.String(), "num_cpu differs") {
		t.Fatalf("missing num_cpu note:\n%s", rep)
	}
}

func TestMissingMicrobenchIsFatal(t *testing.T) {
	base := baseRecord()
	fresh := clone(base)
	fresh.Kernel = fresh.Kernel[:1]
	rep := Compare(base, fresh, Tolerance{})
	if rep.Regressions() != 1 || !strings.Contains(rep.String(), "missing from fresh run") {
		t.Fatalf("want fatal missing-microbench finding:\n%s", rep)
	}
}

func TestNewAndMissingExperimentsAreNotes(t *testing.T) {
	base := baseRecord()
	fresh := clone(base)
	fresh.Experiments = append(fresh.Experiments[:2], Experiment{ID: "fig99", Events: 1, EventsPerSec: 1})
	rep := Compare(base, fresh, Tolerance{})
	if rep.Regressions() != 0 {
		t.Fatalf("new/missing experiments must not be fatal:\n%s", rep)
	}
	out := rep.String()
	if !strings.Contains(out, "experiment table8 present in baseline but missing") ||
		!strings.Contains(out, "experiment fig99 is new") {
		t.Fatalf("missing churn notes:\n%s", out)
	}
}

func TestShardMismatchSkipsExperiment(t *testing.T) {
	base := baseRecord()
	fresh := clone(base)
	fresh.Experiments[0].Shards = 4
	fresh.Experiments[0].EventsPerSec = 1 // must not be judged against the 0-shard baseline
	rep := Compare(base, fresh, Tolerance{})
	if rep.Regressions() != 0 || !strings.Contains(rep.String(), "shard count differs") {
		t.Fatalf("want shard-mismatch note, no regression:\n%s", rep)
	}
}

func TestZeroTolerancesFallBackToDefaults(t *testing.T) {
	base := baseRecord()
	fresh := clone(base)
	fresh.EventsPerSec = base.EventsPerSec * 0.80 // within the 25% default
	if rep := Compare(base, fresh, Tolerance{}); rep.Regressions() != 0 {
		t.Fatalf("zero tolerance did not fall back to defaults:\n%s", rep)
	}
	if rep := Compare(base, fresh, Tolerance{Suite: 0.10}); rep.Regressions() != 1 {
		t.Fatalf("explicit 10%% suite tolerance should fire:\n%s", rep)
	}
}

// TestLoadRealBaseline proves the committed BENCH_quick.json parses and
// self-compares clean, so the CI gate can never fail on a stale schema.
func TestLoadRealBaseline(t *testing.T) {
	rec, err := Load(filepath.Join("..", "..", "BENCH_quick.json"))
	if err != nil {
		t.Fatal(err)
	}
	if rec.Preset != "quick" || len(rec.Kernel) == 0 || len(rec.Experiments) == 0 {
		t.Fatalf("implausible baseline: %+v", rec)
	}
	if rep := Compare(rec, rec, Tolerance{}); rep.Regressions() != 0 {
		t.Fatalf("baseline does not self-compare clean:\n%s", rep)
	}
}
