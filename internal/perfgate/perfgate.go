// Package perfgate compares two benchrunner -json performance records —
// a committed baseline (BENCH_<preset>.json) and a fresh run — and
// reports regressions beyond a noise tolerance. It is the CI
// perf-trajectory gate: kernel microbenchmarks and suite throughput may
// drift within tolerance run to run, but a real slowdown (or any new
// per-op allocation, which is machine-independent) fails the build
// instead of silently eroding the numbers the README quotes.
//
// Timing comparisons are only meaningful between like machines: when the
// baseline and the fresh run disagree on num_cpu, GOOS, or GOARCH, the
// gate demotes every timing check to a note and judges only the
// allocation counts, which the Go allocator makes deterministic.
package perfgate

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// Record mirrors the benchrunner -json output (perfRecord there); only
// the fields the gate judges are declared. Unknown fields are ignored so
// the gate tolerates benchrunner growing new metadata.
type Record struct {
	Preset       string       `json:"preset"`
	Parallel     int          `json:"parallel"`
	Shards       int          `json:"shards"`
	GOOS         string       `json:"goos"`
	GOARCH       string       `json:"goarch"`
	NumCPU       int          `json:"num_cpu"`
	SuiteWallMS  float64      `json:"suite_wall_ms"`
	TotalEvents  uint64       `json:"total_events"`
	EventsPerSec float64      `json:"events_per_sec"`
	Experiments  []Experiment `json:"experiments"`
	Kernel       []Microbench `json:"kernel_microbench"`
}

// Experiment is one suite entry in a Record.
type Experiment struct {
	ID           string  `json:"id"`
	WallMS       float64 `json:"wall_ms"`
	Events       uint64  `json:"events"`
	Shards       int     `json:"shards"`
	EventsPerSec float64 `json:"events_per_sec"`
}

// Microbench is one kernel microbenchmark entry in a Record.
type Microbench struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// Tolerance sets how much slower the fresh run may be before a timing
// counts as a regression, as a fraction of the baseline (0.25 = 25%
// slower allowed). Allocation counts get no tolerance: they are
// deterministic per op, so any increase is a real code change.
type Tolerance struct {
	// Suite bounds the whole-suite events/sec drop.
	Suite float64
	// Experiment bounds each experiment's events/sec drop (experiments
	// with zero recorded events in either record are skipped — they do
	// not run on the simulation kernel).
	Experiment float64
	// Microbench bounds each kernel microbenchmark's ns/op growth.
	// Microbenchmarks are the noisiest of the three on shared CI
	// runners, so this is usually the loosest bound.
	Microbench float64
}

// The default tolerances are tuned for a shared single-core CI runner,
// where run-to-run wall-clock noise of 15-20% is routine. Anything
// beyond these bounds has, in practice, always been a real regression.
// Constants, not a package-level Tolerance var, so the defaults are
// immutable shared state.
const (
	DefaultSuiteTol      = 0.25
	DefaultExperimentTol = 0.40
	DefaultMicrobenchTol = 0.50
)

// Finding is one gate result: a regression (Fatal) or an informational
// note (environment mismatch, skipped comparison, new/vanished entries).
type Finding struct {
	Fatal   bool
	Message string
}

func (f Finding) String() string {
	tag := "note"
	if f.Fatal {
		tag = "FAIL"
	}
	return tag + ": " + f.Message
}

// Report is the full outcome of one Compare call.
type Report struct {
	Findings []Finding
}

// Regressions counts fatal findings.
func (r *Report) Regressions() int {
	n := 0
	for _, f := range r.Findings {
		if f.Fatal {
			n++
		}
	}
	return n
}

// String renders every finding one per line, fatal findings first, with
// a one-line verdict at the end.
func (r *Report) String() string {
	var b strings.Builder
	for _, f := range r.Findings {
		if f.Fatal {
			fmt.Fprintln(&b, f)
		}
	}
	for _, f := range r.Findings {
		if !f.Fatal {
			fmt.Fprintln(&b, f)
		}
	}
	if n := r.Regressions(); n > 0 {
		fmt.Fprintf(&b, "perfgate: %d regression(s) beyond tolerance\n", n)
	} else {
		fmt.Fprintf(&b, "perfgate: ok (%d finding(s), none fatal)\n", len(r.Findings))
	}
	return b.String()
}

func (r *Report) notef(format string, args ...any) {
	r.Findings = append(r.Findings, Finding{Message: fmt.Sprintf(format, args...)})
}

func (r *Report) failf(format string, args ...any) {
	r.Findings = append(r.Findings, Finding{Fatal: true, Message: fmt.Sprintf(format, args...)})
}

// comparableTimings reports whether wall-clock comparisons between the
// two records mean anything, noting the reason when they do not.
func comparableTimings(r *Report, base, fresh *Record) bool {
	ok := true
	if base.NumCPU != fresh.NumCPU {
		r.notef("num_cpu differs (base %d, fresh %d): timing checks skipped, judging allocations only", base.NumCPU, fresh.NumCPU)
		ok = false
	}
	if base.GOOS != fresh.GOOS || base.GOARCH != fresh.GOARCH {
		r.notef("platform differs (base %s/%s, fresh %s/%s): timing checks skipped, judging allocations only",
			base.GOOS, base.GOARCH, fresh.GOOS, fresh.GOARCH)
		ok = false
	}
	if ok && base.Parallel != fresh.Parallel {
		r.notef("parallel differs (base %d, fresh %d): suite wall-clock comparison is apples-to-oranges; per-experiment and microbench checks still apply", base.Parallel, fresh.Parallel)
	}
	return ok
}

// Compare judges fresh against base. Zero-valued tolerance fields fall
// back to the Default*Tol constants, so Compare(base, fresh,
// Tolerance{}) applies the defaults.
func Compare(base, fresh *Record, tol Tolerance) *Report {
	if tol.Suite == 0 {
		tol.Suite = DefaultSuiteTol
	}
	if tol.Experiment == 0 {
		tol.Experiment = DefaultExperimentTol
	}
	if tol.Microbench == 0 {
		tol.Microbench = DefaultMicrobenchTol
	}

	r := &Report{}
	if base.Preset != fresh.Preset {
		r.notef("preset differs (base %q, fresh %q): comparing anyway, but the baseline should match the fresh preset", base.Preset, fresh.Preset)
	}
	timings := comparableTimings(r, base, fresh)

	if timings {
		compareSuite(r, base, fresh, tol)
		compareExperiments(r, base, fresh, tol)
	}
	compareKernel(r, base, fresh, tol, timings)
	return r
}

func compareSuite(r *Report, base, fresh *Record, tol Tolerance) {
	if base.EventsPerSec <= 0 {
		r.notef("baseline records no suite throughput; suite check skipped")
		return
	}
	floor := base.EventsPerSec * (1 - tol.Suite)
	if fresh.EventsPerSec < floor {
		r.failf("suite throughput %.0f ev/s is %.1f%% below baseline %.0f ev/s (tolerance %.0f%%)",
			fresh.EventsPerSec, drop(base.EventsPerSec, fresh.EventsPerSec), base.EventsPerSec, tol.Suite*100)
	}
}

func compareExperiments(r *Report, base, fresh *Record, tol Tolerance) {
	freshByID := make(map[string]Experiment, len(fresh.Experiments))
	for _, e := range fresh.Experiments {
		freshByID[e.ID] = e
	}
	for _, be := range base.Experiments {
		fe, ok := freshByID[be.ID]
		if !ok {
			r.notef("experiment %s present in baseline but missing from fresh run", be.ID)
			continue
		}
		delete(freshByID, be.ID)
		if be.Events == 0 || fe.Events == 0 {
			continue // not kernel-driven; wall time alone is too noisy to gate
		}
		if be.Shards != fe.Shards {
			r.notef("experiment %s shard count differs (base %d, fresh %d): comparison skipped", be.ID, be.Shards, fe.Shards)
			continue
		}
		floor := be.EventsPerSec * (1 - tol.Experiment)
		if fe.EventsPerSec < floor {
			r.failf("experiment %s throughput %.0f ev/s is %.1f%% below baseline %.0f ev/s (tolerance %.0f%%)",
				be.ID, fe.EventsPerSec, drop(be.EventsPerSec, fe.EventsPerSec), be.EventsPerSec, tol.Experiment*100)
		}
	}
	// Deterministic order for leftovers: walk the fresh slice, not the map.
	for _, fe := range fresh.Experiments {
		if _, leftover := freshByID[fe.ID]; leftover {
			r.notef("experiment %s is new (not in baseline); refresh the baseline to start gating it", fe.ID)
		}
	}
}

func compareKernel(r *Report, base, fresh *Record, tol Tolerance, timings bool) {
	freshByName := make(map[string]Microbench, len(fresh.Kernel))
	for _, m := range fresh.Kernel {
		freshByName[m.Name] = m
	}
	for _, bm := range base.Kernel {
		fm, ok := freshByName[bm.Name]
		if !ok {
			r.failf("kernel microbenchmark %s present in baseline but missing from fresh run", bm.Name)
			continue
		}
		delete(freshByName, bm.Name)
		if fm.AllocsPerOp > bm.AllocsPerOp {
			r.failf("kernel microbenchmark %s allocates %d/op, baseline %d/op (allocations get zero tolerance)",
				bm.Name, fm.AllocsPerOp, bm.AllocsPerOp)
		}
		if timings && bm.NsPerOp > 0 {
			ceil := bm.NsPerOp * (1 + tol.Microbench)
			if fm.NsPerOp > ceil {
				r.failf("kernel microbenchmark %s at %.1f ns/op is %.1f%% above baseline %.1f ns/op (tolerance %.0f%%)",
					bm.Name, fm.NsPerOp, rise(bm.NsPerOp, fm.NsPerOp), bm.NsPerOp, tol.Microbench*100)
			}
		}
	}
	for _, fm := range fresh.Kernel {
		if _, leftover := freshByName[fm.Name]; leftover {
			r.notef("kernel microbenchmark %s is new (not in baseline); refresh the baseline to start gating it", fm.Name)
		}
	}
}

func drop(base, fresh float64) float64 { return (1 - fresh/base) * 100 }
func rise(base, fresh float64) float64 { return (fresh/base - 1) * 100 }

// Load reads a benchrunner -json record from path.
func Load(path string) (*Record, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rec Record
	if err := json.Unmarshal(data, &rec); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rec, nil
}
