//go:build race

package chaos

// raceEnabled mirrors the experiment package's pattern: expensive soaks
// shrink under the race detector's 5-10× slowdown to stay inside CI's
// time budget.
const raceEnabled = true
