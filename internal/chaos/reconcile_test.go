package chaos

import (
	"strings"
	"testing"
	"time"
)

// reconcilePinCfg is the small, fast reconcile-soak configuration whose
// report digest is pinned: full campaign plus the default spec schedule
// (scale-up, then a rolling cordon replacement) at a scale where drains,
// promotes and revivals all fire.
func reconcilePinCfg() ReconcileConfig {
	return ReconcileConfig{
		Seeds:    3,
		Computes: 128,
		Span:     10 * time.Minute,
	}
}

// reconcilePinnedDigest changes only when the simulation's event schedule
// changes — the reconcile soak must be bit-deterministic, and incidental
// changes to the reconciler, drain path, or fault layer must be noticed,
// not slip through.
const reconcilePinnedDigest = "f58c84e0d8eedee6"

func TestReconcileSoakDigestPinned(t *testing.T) {
	a := ReconcileSoak(reconcilePinCfg())
	b := ReconcileSoak(reconcilePinCfg())
	if a.String() != b.String() {
		t.Fatalf("same config produced different reports:\n%s\n---\n%s", a.String(), b.String())
	}
	if v := a.Violations(); v != 0 {
		t.Fatalf("pinned config has %d violations:\n%s", v, a.String())
	}
	if got := a.Digest(); got != reconcilePinnedDigest {
		t.Errorf("report digest = %s, pinned %s; if the event schedule changed intentionally, update reconcilePinnedDigest\n%s",
			got, reconcilePinnedDigest, a.String())
	}
	if !strings.Contains(a.String(), "digest="+reconcilePinnedDigest) {
		t.Error("report does not carry its own digest")
	}
}

// TestReconcileSoakWorkerSweep: the report is byte-identical for any
// Workers value — seed-level fan-out must not leak into results.
func TestReconcileSoakWorkerSweep(t *testing.T) {
	base := ReconcileSoak(reconcilePinCfg())
	for _, workers := range []int{2, 4} {
		cfg := reconcilePinCfg()
		cfg.Workers = workers
		got := ReconcileSoak(cfg)
		if got.String() != base.String() {
			t.Fatalf("workers=%d report differs from workers=1:\n%s\n---\n%s",
				workers, got.String(), base.String())
		}
		if got.Digest() != base.Digest() {
			t.Fatalf("workers=%d digest %s != workers=1 digest %s", workers, got.Digest(), base.Digest())
		}
	}
}

// TestReconcileSoakConvergesEverySeed: the convergence contract across a
// wider seed range than the pinned config — every seed reaches spec
// within the round budget after the last fault heals, with the reconciler
// visibly working (drains and promotes fire somewhere in the sweep).
func TestReconcileSoakConvergesEverySeed(t *testing.T) {
	cfg := reconcilePinCfg()
	cfg.Seeds = 6
	rep := ReconcileSoak(cfg)
	if v := rep.Violations(); v != 0 {
		t.Fatalf("%d violations:\n%s", v, rep.String())
	}
	drains, promotes, specs := 0, 0, 0
	for _, s := range rep.Seeds {
		if !s.Converged {
			t.Errorf("seed %d did not converge (%d rounds after heal)", s.Seed, s.RoundsAfterHeal)
		}
		if s.RoundsAfterHeal > cfg.RoundBudget && cfg.RoundBudget > 0 {
			t.Errorf("seed %d used %d rounds after heal, budget %d", s.Seed, s.RoundsAfterHeal, cfg.RoundBudget)
		}
		if s.Broadcasts != rep.Config.Broadcasts {
			t.Errorf("seed %d resolved %d/%d broadcasts", s.Seed, s.Broadcasts, rep.Config.Broadcasts)
		}
		drains += s.Drains
		promotes += s.Promotes
		specs += s.SpecUpdates
	}
	if drains == 0 || promotes == 0 {
		t.Fatalf("soak exercised nothing: drains=%d promotes=%d", drains, promotes)
	}
	if want := cfg.Seeds * 2; specs != want {
		t.Fatalf("spec updates = %d, want %d (2 scheduled mutations per seed)", specs, want)
	}
}
