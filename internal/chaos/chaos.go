// Package chaos is a FoundationDB-style deterministic chaos-soak harness:
// it runs the full ESlurm stack (cluster + satellite pool + master) under
// a randomized adversarial fault campaign (faults.ChaosSpec) across many
// seeds, and checks end-to-end invariants after every broadcast and after
// teardown. Because the whole stack is driven by one simnet engine, a
// failing seed is perfectly replayable: the report is byte-identical for
// the same configuration, which a digest-pinned test enforces.
//
// The invariants (ISSUE 3):
//
//  1. every reachable target is delivered exactly once — Result.Resolved
//     plus Result.Unreachable is an exact partition of the target list;
//  2. no delivery lands on a down node (checked at the resolution
//     instant via Broadcaster.OnResolve);
//  3. Delivered + len(Unreachable) == targets for every broadcast;
//  4. every broadcast resolves within Config.Bound — no stalls;
//  5. after teardown the master's resource meters return to their
//     post-start baseline and no delivery chain is left outstanding.
package chaos

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"time"

	"eslurm/internal/cluster"
	"eslurm/internal/comm"
	"eslurm/internal/core"
	"eslurm/internal/faults"
	"eslurm/internal/monitor"
	"eslurm/internal/obs"
	"eslurm/internal/simnet"
)

// Config parameterizes a soak. The zero value is runnable: Soak applies
// the defaults documented per field.
type Config struct {
	// Seeds is how many seeds to soak (default 8), starting at BaseSeed
	// (default 1).
	Seeds    int
	BaseSeed int64
	// Computes and Satellites size the cluster (defaults 1024 and 4 —
	// the acceptance scale).
	Computes   int
	Satellites int
	// Span is the driven portion of virtual time (default 10 minutes);
	// the engine then drains to completion.
	Span time.Duration
	// Broadcasts is how many full-cluster broadcasts the driver issues,
	// spread evenly over Span (default 20).
	Broadcasts int
	// Bound is the per-broadcast resolution bound, invariant 4. The
	// default 8 minutes covers the worst legal chain: ReallocLimit
	// watchdog timeouts back-to-back plus the master-takeover broadcast.
	Bound time.Duration
	// Spec is the campaign mix. A zero Spec selects the default mix:
	// 2 bursts, 2 flaps, 3 grays, 1 chassis partition, 1 satellite kill.
	// Spec.Horizon defaults to Span.
	Spec faults.ChaosSpec
	// LossProb and DupProb are passed to the network (default 0; the
	// default mix exercises them via DefaultConfig).
	LossProb, DupProb float64
	// SilentFraction of fail-stop events bypass monitoring.
	SilentFraction float64
	// Retry overrides the broadcaster's retry policy; nil selects a
	// backoff policy (4 attempts, 50ms base, ×2, 2s cap, 30s deadline,
	// 0.5 jitter) so the adversarial retry path is exercised.
	Retry *comm.RetryPolicy
	// Trace enables simulated-time span recording on each seed's engine;
	// the tracer and metrics registry come back on the SeedResult. Tracing
	// is passive recording — it does not change any seed's event trace,
	// report, or digest.
	Trace bool
}

func (c Config) withDefaults() Config {
	if c.Seeds <= 0 {
		c.Seeds = 8
	}
	if c.BaseSeed == 0 {
		c.BaseSeed = 1
	}
	if c.Computes <= 0 {
		c.Computes = 1024
	}
	if c.Satellites <= 0 {
		c.Satellites = 4
	}
	if c.Span <= 0 {
		c.Span = 10 * time.Minute
	}
	if c.Broadcasts <= 0 {
		c.Broadcasts = 20
	}
	if c.Bound <= 0 {
		c.Bound = 8 * time.Minute
	}
	zero := faults.ChaosSpec{}
	if c.Spec == zero {
		c.Spec = faults.ChaosSpec{Bursts: 2, Flaps: 2, Grays: 3, Partitions: 1, SatelliteKills: 1}
	}
	if c.Spec.Horizon <= 0 {
		c.Spec.Horizon = c.Span
	}
	if c.Retry == nil {
		c.Retry = &comm.RetryPolicy{
			MaxAttempts: 4,
			Backoff:     50 * time.Millisecond,
			MaxBackoff:  2 * time.Second,
			JitterFrac:  0.5,
			Deadline:    30 * time.Second,
		}
	}
	return c
}

// DefaultConfig is the default campaign mix at the acceptance scale, with
// message loss and duplication turned on.
func DefaultConfig() Config {
	c := Config{}.withDefaults()
	c.LossProb = 0.01
	c.DupProb = 0.01
	return c
}

// SeedResult is one seed's outcome.
type SeedResult struct {
	Seed             int64
	Events           uint64 // engine events processed
	CampaignEvents   int
	Broadcasts       int // resolved broadcasts
	Delivered        int
	Unreachable      int
	Retries          int
	Reallocations    int
	Takeovers        int
	DrainedFallbacks int
	// KernelDigest is the shard kernel's per-cell event-trace digest
	// (sharded soak only; 0 on single-engine seeds).
	KernelDigest uint64
	Violations   []string
	// Trace is the seed engine's span recording (nil unless Config.Trace);
	// Metrics is its registry. Neither contributes to Report.String or
	// Digest — the report stays byte-stable with tracing on or off.
	Trace   *obs.Tracer
	Metrics *obs.Registry
	// CellTraces holds the per-cell span recordings of a sharded seed in
	// cell order (nil unless ShardedConfig.Trace). Flatten with
	// critpath.FromCells; like Trace, it never touches the report bytes.
	CellTraces []*obs.Tracer
}

// Report is a full soak's outcome. Its String form is byte-stable for a
// given Config — the determinism contract the digest test pins.
type Report struct {
	Config Config
	Seeds  []SeedResult
}

// Violations returns the total violation count across seeds.
func (r *Report) Violations() int {
	n := 0
	for _, s := range r.Seeds {
		n += len(s.Violations)
	}
	return n
}

// String renders the digest-stable report.
func (r *Report) String() string {
	var sb strings.Builder
	c := r.Config
	fmt.Fprintf(&sb, "chaos soak: seeds=%d base=%d computes=%d satellites=%d span=%v broadcasts=%d bound=%v\n",
		c.Seeds, c.BaseSeed, c.Computes, c.Satellites, c.Span, c.Broadcasts, c.Bound)
	fmt.Fprintf(&sb, "campaign: bursts=%d flaps=%d grays=%d partitions=%d satkills=%d background=%.1f/day loss=%.3f dup=%.3f silent=%.2f\n",
		c.Spec.Bursts, c.Spec.Flaps, c.Spec.Grays, c.Spec.Partitions, c.Spec.SatelliteKills,
		c.Spec.BackgroundPerDay, c.LossProb, c.DupProb, c.SilentFraction)
	for _, s := range r.Seeds {
		fmt.Fprintf(&sb, "seed %d: events=%d campaign=%d broadcasts=%d delivered=%d unreachable=%d retries=%d reallocs=%d takeovers=%d drained=%d violations=%d\n",
			s.Seed, s.Events, s.CampaignEvents, s.Broadcasts, s.Delivered,
			s.Unreachable, s.Retries, s.Reallocations, s.Takeovers, s.DrainedFallbacks, len(s.Violations))
		for _, v := range s.Violations {
			fmt.Fprintf(&sb, "  VIOLATION: %s\n", v)
		}
	}
	fmt.Fprintf(&sb, "total: violations=%d digest=%s\n", r.Violations(), r.Digest())
	return sb.String()
}

// Digest returns an FNV-64a digest over the per-seed results — the value
// the determinism test pins.
func (r *Report) Digest() string {
	h := fnv.New64a()
	for _, s := range r.Seeds {
		fmt.Fprintf(h, "%d:%d:%d:%d:%d:%d:%d:%d:%d:%d;", s.Seed, s.Events, s.CampaignEvents,
			s.Broadcasts, s.Delivered, s.Unreachable, s.Retries, s.Reallocations,
			s.Takeovers, s.DrainedFallbacks)
		for _, v := range s.Violations {
			fmt.Fprintf(h, "%s;", v)
		}
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// Soak runs the full soak.
func Soak(cfg Config) *Report {
	cfg = cfg.withDefaults()
	rep := &Report{Config: cfg}
	for i := 0; i < cfg.Seeds; i++ {
		rep.Seeds = append(rep.Seeds, RunSeed(cfg, cfg.BaseSeed+int64(i)))
	}
	return rep
}

// RunSeed soaks one seed: builds the stack, injects the campaign, drives
// broadcasts, drains, and checks every invariant.
func RunSeed(cfg Config, seed int64) SeedResult {
	cfg = cfg.withDefaults()
	sr := SeedResult{Seed: seed}
	violate := func(format string, args ...interface{}) {
		if len(sr.Violations) < 64 {
			sr.Violations = append(sr.Violations, fmt.Sprintf(format, args...))
		}
	}

	e := simnet.NewEngine(seed)
	if cfg.Trace {
		e.EnableTracing()
	}
	c := cluster.New(e, cluster.Config{
		Computes:   cfg.Computes,
		Satellites: cfg.Satellites,
		Net:        cluster.NetConfig{LossProb: cfg.LossProb, DupProb: cfg.DupProb},
	})
	mon := monitor.New(c, monitor.Config{})
	m := core.NewMaster(c, core.DefaultConfig(), nil)
	m.B.RecordResolved = true
	m.B.Retry = cfg.Retry
	mon.ObservePool(m.Pool)

	// Invariant 2: a delivery must never land on a node that is down at
	// the resolution instant. OnResolve fires once per (broadcast,
	// target) chain, duplicates already deduplicated.
	m.B.OnResolve = func(to cluster.NodeID, ok bool) {
		if ok && c.Node(to).Failed() {
			violate("seed %d: delivered to down node %d at %v", seed, to, e.Now())
		}
	}

	m.Start()

	// Meters baseline (invariant 5) — taken after Start's synchronous
	// base charges, before any event runs.
	mm := m.Meter()
	baseVMem, baseRSS, baseSockets := mm.VMem(), mm.RSS(), mm.Sockets()

	cp := faults.New(c, mon, cfg.SilentFraction)
	cp.Generate(cfg.Spec)
	sr.CampaignEvents = len(cp.Events)

	targets := c.Computes()
	for i := 0; i < cfg.Broadcasts; i++ {
		i := i
		at := cfg.Span * time.Duration(i+1) / time.Duration(cfg.Broadcasts+1)
		e.Schedule(at, func() {
			start := e.Now()
			m.Broadcast(targets, 4096, func(r comm.Result) {
				sr.Broadcasts++
				sr.Delivered += r.Delivered
				sr.Unreachable += len(r.Unreachable)
				sr.Retries += r.Retries
				checkPartition(seed, i, targets, r, violate)
				if d := e.Now() - start; d > cfg.Bound {
					violate("seed %d: broadcast %d resolved in %v > bound %v", seed, i, d, cfg.Bound)
				}
			})
		})
	}

	e.RunUntil(cfg.Span)
	m.Stop()
	e.Run() // drain everything: retries, watchdogs, heals, recoveries

	st := m.Stats()
	sr.Reallocations = st.Reallocations
	sr.Takeovers = st.MasterTakeovers
	sr.DrainedFallbacks = st.PoolDrainedFallbacks
	sr.Events = e.Processed()
	sr.Trace = e.Tracer()
	sr.Metrics = e.Metrics()

	// Invariant 4 (no stalls): every driven broadcast resolved by drain.
	if sr.Broadcasts != cfg.Broadcasts {
		violate("seed %d: stalled: %d/%d broadcasts resolved after drain", seed, sr.Broadcasts, cfg.Broadcasts)
	}
	// Invariant 5: teardown returns the master to its post-start baseline.
	if n := m.B.OutstandingSends(); n != 0 {
		violate("seed %d: %d delivery chains still outstanding after drain", seed, n)
	}
	if v := mm.VMem(); v != baseVMem {
		violate("seed %d: master vmem %d != baseline %d after teardown", seed, v, baseVMem)
	}
	if v := mm.RSS(); v != baseRSS {
		violate("seed %d: master rss %d != baseline %d after teardown", seed, v, baseRSS)
	}
	if v := mm.Sockets(); v != baseSockets {
		violate("seed %d: master sockets %d != baseline %d after teardown", seed, v, baseSockets)
	}
	return sr
}

// checkPartition asserts invariants 1 and 3 on one broadcast result:
// Resolved ∪ Unreachable is an exact partition of the target list — every
// target exactly once, no duplicates, no strangers — and the counters
// agree with the identities.
func checkPartition(seed int64, bc int, targets []cluster.NodeID, r comm.Result, violate func(string, ...interface{})) {
	if r.Delivered+len(r.Unreachable) != len(targets) {
		violate("seed %d: broadcast %d: delivered %d + unreachable %d != targets %d",
			seed, bc, r.Delivered, len(r.Unreachable), len(targets))
	}
	if r.Delivered != len(r.Resolved) {
		violate("seed %d: broadcast %d: Delivered %d != len(Resolved) %d",
			seed, bc, r.Delivered, len(r.Resolved))
	}
	all := make([]cluster.NodeID, 0, len(r.Resolved)+len(r.Unreachable))
	all = append(all, r.Resolved...)
	all = append(all, r.Unreachable...)
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	want := append([]cluster.NodeID(nil), targets...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	if len(all) != len(want) {
		return // already reported via the counter mismatch above
	}
	for i := range all {
		if all[i] != want[i] {
			violate("seed %d: broadcast %d: resolution set is not an exact partition of targets (first mismatch at rank %d: got node %d want %d)",
				seed, bc, i, all[i], want[i])
			return
		}
	}
}
