package chaos

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"strings"
	"time"

	"eslurm/internal/cluster"
	"eslurm/internal/comm"
	"eslurm/internal/topo"
)

// Sharded soak: the chaos harness ported to the shard-parallel kernel.
// One ShardedCluster is partitioned topologically (control plane on cell
// 0, one cell per compute rack) and executed on Workers goroutines; the
// fault campaign is drawn from a seed-keyed generator on the coordinator
// and pre-scheduled identically on every cell, so the entire soak —
// kernel digest included — is invariant under the worker count. That is
// the property the sharded determinism test pins.
//
// The invariant set matches the single-engine soak where the sharded
// stack has the same concept (broadcast partition exactness, no delivery
// to a down node, per-broadcast bound, drained teardown); master
// takeover and pool reallocation are features of the core.Master stack
// and are exercised by the legacy soak only.

// ShardedConfig parameterizes a sharded soak. The zero value is runnable.
type ShardedConfig struct {
	// Seeds is how many seeds to soak (default 8), starting at BaseSeed
	// (default 1).
	Seeds    int
	BaseSeed int64
	// Computes and Satellites size the cluster (defaults 1024 and 4).
	Computes   int
	Satellites int
	// Workers is the shard worker count (default 2). It never changes
	// results — only wall-clock.
	Workers int
	// Span is the driven portion of virtual time (default 10 minutes);
	// the group then drains until Span+Bound+1m.
	Span time.Duration
	// Broadcasts is how many full-cluster broadcasts the driver issues,
	// rotating star/tree/relayed shapes (default 20).
	Broadcasts int
	// Bound is the per-broadcast resolution bound (default 8 minutes).
	Bound time.Duration
	// Campaign mix (defaults: 6 fails, 3 grays, 1 partition, 2 degrades).
	Fails, Grays, Partitions, Degrades int
	// LossProb and DupProb are the network adversities (default 0.01).
	LossProb, DupProb float64
	// Trace arms per-cell span recording: each SeedResult carries its
	// CellTraces for critical-path analysis. Recording is passive (no
	// events, no RNG), so the report and kernel digest are unchanged.
	Trace bool
}

func (c ShardedConfig) withDefaults() ShardedConfig {
	if c.Seeds <= 0 {
		c.Seeds = 8
	}
	if c.BaseSeed == 0 {
		c.BaseSeed = 1
	}
	if c.Computes <= 0 {
		c.Computes = 1024
	}
	if c.Satellites <= 0 {
		c.Satellites = 4
	}
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.Span <= 0 {
		c.Span = 10 * time.Minute
	}
	if c.Broadcasts <= 0 {
		c.Broadcasts = 20
	}
	if c.Bound <= 0 {
		c.Bound = 8 * time.Minute
	}
	if c.Fails == 0 {
		c.Fails = 6
	}
	if c.Grays == 0 {
		c.Grays = 3
	}
	if c.Partitions == 0 {
		c.Partitions = 1
	}
	if c.Degrades == 0 {
		c.Degrades = 2
	}
	if c.LossProb == 0 {
		c.LossProb = 0.01
	}
	if c.DupProb == 0 {
		c.DupProb = 0.01
	}
	return c
}

// ShardedReport is a sharded soak's outcome; String is byte-stable for a
// given config at ANY worker count.
type ShardedReport struct {
	Config ShardedConfig
	Seeds  []SeedResult
}

// Violations returns the total violation count across seeds.
func (r *ShardedReport) Violations() int {
	n := 0
	for _, s := range r.Seeds {
		n += len(s.Violations)
	}
	return n
}

// String renders the digest-stable report. Workers is deliberately not
// printed: the report must compare byte-equal across worker counts.
func (r *ShardedReport) String() string {
	var sb strings.Builder
	c := r.Config
	fmt.Fprintf(&sb, "sharded chaos soak: seeds=%d base=%d computes=%d satellites=%d span=%v broadcasts=%d bound=%v\n",
		c.Seeds, c.BaseSeed, c.Computes, c.Satellites, c.Span, c.Broadcasts, c.Bound)
	fmt.Fprintf(&sb, "campaign: fails=%d grays=%d partitions=%d degrades=%d loss=%.3f dup=%.3f\n",
		c.Fails, c.Grays, c.Partitions, c.Degrades, c.LossProb, c.DupProb)
	for _, s := range r.Seeds {
		fmt.Fprintf(&sb, "seed %d: events=%d campaign=%d broadcasts=%d delivered=%d unreachable=%d retries=%d kernel=%016x violations=%d\n",
			s.Seed, s.Events, s.CampaignEvents, s.Broadcasts, s.Delivered,
			s.Unreachable, s.Retries, s.KernelDigest, len(s.Violations))
		for _, v := range s.Violations {
			fmt.Fprintf(&sb, "  VIOLATION: %s\n", v)
		}
	}
	fmt.Fprintf(&sb, "total: violations=%d digest=%s\n", r.Violations(), r.Digest())
	return sb.String()
}

// Digest returns an FNV-64a digest over the per-seed results, kernel
// digests included.
func (r *ShardedReport) Digest() string {
	h := fnv.New64a()
	for _, s := range r.Seeds {
		fmt.Fprintf(h, "%d:%d:%d:%d:%d:%d:%d:%016x;", s.Seed, s.Events, s.CampaignEvents,
			s.Broadcasts, s.Delivered, s.Unreachable, s.Retries, s.KernelDigest)
		for _, v := range s.Violations {
			fmt.Fprintf(h, "%s;", v)
		}
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// ShardedSoak runs the full sharded soak.
func ShardedSoak(cfg ShardedConfig) *ShardedReport {
	cfg = cfg.withDefaults()
	rep := &ShardedReport{Config: cfg}
	for i := 0; i < cfg.Seeds; i++ {
		rep.Seeds = append(rep.Seeds, RunShardedSeed(cfg, cfg.BaseSeed+int64(i)))
	}
	return rep
}

// RunShardedSeed soaks one seed on the sharded kernel.
func RunShardedSeed(cfg ShardedConfig, seed int64) SeedResult {
	cfg = cfg.withDefaults()
	sr := SeedResult{Seed: seed}
	violate := func(format string, args ...interface{}) {
		if len(sr.Violations) < 64 {
			sr.Violations = append(sr.Violations, fmt.Sprintf(format, args...))
		}
	}

	tp := topo.Default()
	per := tp.NodesPerRack()
	racks := (cfg.Computes + per - 1) / per
	if racks < 1 {
		racks = 1
	}
	firstCompute := 1 + cfg.Satellites
	sc := cluster.NewSharded(cluster.ShardConfig{
		Computes:   cfg.Computes,
		Satellites: cfg.Satellites,
		Net:        cluster.NetConfig{LossProb: cfg.LossProb, DupProb: cfg.DupProb},
		Cells:      1 + racks,
		CellOf: func(id cluster.NodeID, role cluster.Role) int {
			if role != cluster.RoleCompute {
				return 0
			}
			return 1 + tp.Rack(cluster.NodeID(int(id)-firstCompute))
		},
		Workers: cfg.Workers,
		Seed:    seed,
	})
	g := sc.Group()
	g.EnableDigest()
	if cfg.Trace {
		g.EnableTracing()
	}
	e0 := g.Cell(0)
	master := sc.Master().ID

	b := comm.NewShardBroadcaster(sc)
	b.RecordResolved = true
	// Invariant 2: no delivery lands on a down node. OnResolve fires on
	// the origin cell, so the master-cell replica is the safe view.
	b.OnResolve = func(to cluster.NodeID, ok bool) {
		if ok && sc.FailedOn(master, to) {
			violate("seed %d: delivered to down node %d at %v", seed, to, e0.Now())
		}
	}

	// Campaign: drawn coordinator-side from a seed-keyed stream and
	// pre-scheduled on every cell — worker-invariant by construction.
	rng := rand.New(rand.NewSource(seed ^ 0x5eed))
	comps := sc.Computes()
	sats := sc.Satellites()
	at := func() time.Duration {
		return cfg.Span/50 + time.Duration(rng.Int63n(int64(cfg.Span)*4/5))
	}
	for i := 0; i < cfg.Fails; i++ {
		recover := time.Duration(0)
		if rng.Intn(2) == 0 {
			recover = cfg.Span / 4
		}
		sc.ScheduleFail(comps[rng.Intn(len(comps))], at(), recover)
		sr.CampaignEvents++
	}
	for i := 0; i < cfg.Grays; i++ {
		sc.ScheduleGray(comps[rng.Intn(len(comps))], 2+3*rng.Float64(), at(), cfg.Span/4)
		sr.CampaignEvents++
	}
	for i := 0; i < cfg.Partitions; i++ {
		size := 32
		if size > len(comps) {
			size = len(comps)
		}
		start := 0
		if len(comps) > size {
			start = rng.Intn(len(comps) - size)
		}
		sc.SchedulePartition(comps[start:start+size], at(), cfg.Span/5)
		sr.CampaignEvents++
	}
	for i := 0; i < cfg.Degrades; i++ {
		sc.ScheduleLinkDegrade(master, comps[rng.Intn(len(comps))], 2+2*rng.Float64(), at())
		sr.CampaignEvents++
	}

	// Broadcast driver: rotate the three broadcast shapes over the span.
	for i := 0; i < cfg.Broadcasts; i++ {
		i := i
		bcAt := cfg.Span * time.Duration(i+1) / time.Duration(cfg.Broadcasts+1)
		e0.Schedule(bcAt, func() {
			start := e0.Now()
			done := func(r comm.Result) {
				sr.Broadcasts++
				sr.Delivered += r.Delivered
				sr.Unreachable += len(r.Unreachable)
				sr.Retries += r.Retries
				checkPartition(seed, i, comps, r, violate)
				if d := e0.Now() - start; d > cfg.Bound {
					violate("seed %d: broadcast %d resolved in %v > bound %v", seed, i, d, cfg.Bound)
				}
			}
			switch i % 3 {
			case 0:
				b.BroadcastStar(master, comps, 4096, done)
			case 1:
				b.BroadcastTree(master, comps, 4096, 8, done)
			default:
				b.BroadcastRelayed(master, sats, comps, 4096, 8, done)
			}
		})
	}

	g.RunUntil(cfg.Span + cfg.Bound + time.Minute)

	sr.Events = g.Processed()
	sr.KernelDigest = g.Digest()
	if cfg.Trace {
		sr.CellTraces = g.CellTracers()
	}

	// Invariant 4 (no stalls): every driven broadcast resolved by drain.
	if sr.Broadcasts != cfg.Broadcasts {
		violate("seed %d: stalled: %d/%d broadcasts resolved after drain", seed, sr.Broadcasts, cfg.Broadcasts)
	}
	// Invariant 5: no delivery chain left outstanding.
	if n := b.OutstandingSends(); n != 0 {
		violate("seed %d: %d delivery chains still outstanding after drain", seed, n)
	}
	return sr
}
