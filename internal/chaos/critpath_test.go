package chaos

import (
	"strings"
	"testing"
)

// shardedCritpath runs the pinned sharded soak config with tracing on
// and returns its critical-path report text.
func shardedCritpath(t *testing.T, workers int) string {
	t.Helper()
	cfg := shardSoakConfig(workers)
	cfg.Trace = true
	rep := ShardedSoak(cfg)
	if rep.Violations() > 0 {
		t.Fatalf("soak violated invariants:\n%s", rep.String())
	}
	return rep.CritpathReport(5).String()
}

// TestShardedCritpathWorkerInvariant is the tentpole acceptance pin: the
// same-seed critical-path report is byte-identical across reruns and
// across worker counts, and its digest is pinned — any change to span
// emission, the DAG stitch, or the attribution walk moves it and must be
// deliberate.
func TestShardedCritpathWorkerInvariant(t *testing.T) {
	ref := shardedCritpath(t, 1)
	if again := shardedCritpath(t, 1); again != ref {
		t.Fatal("same-seed rerun produced different critpath report bytes")
	}
	for _, w := range []int{2, 4} {
		if got := shardedCritpath(t, w); got != ref {
			t.Errorf("workers=%d critpath report differs from workers=1:\n%s\nvs\n%s", w, got, ref)
		}
	}
	const want = "digest=a61521752763573e"
	if !strings.Contains(ref, want) {
		tail := ref
		if i := strings.LastIndex(tail, "digest="); i >= 0 {
			tail = tail[i:]
		}
		t.Errorf("sharded critpath report digest moved off its pin: got %s want %s", strings.TrimSpace(tail), want)
	}
}

// TestShardedSoakDigestUnchangedByTracing proves span recording on the
// sharded kernel is passive: the pinned soak digest is identical with
// per-cell tracing armed.
func TestShardedSoakDigestUnchangedByTracing(t *testing.T) {
	cfg := shardSoakConfig(2)
	cfg.Trace = true
	rep := ShardedSoak(cfg)
	const want = "0a2bd16728914b2c"
	if got := rep.Digest(); got != want {
		t.Errorf("tracing moved the sharded soak digest: %s != pinned %s", got, want)
	}
	for _, s := range rep.Seeds {
		if len(s.CellTraces) == 0 {
			t.Fatalf("seed %d carried no cell traces with Trace set", s.Seed)
		}
		n := 0
		for _, tr := range s.CellTraces {
			n += tr.Len()
		}
		if n == 0 {
			t.Fatalf("seed %d recorded zero spans across cells", s.Seed)
		}
	}
}

// TestSingleEngineCritpathDeterminism: the legacy soak's critical-path
// report is byte-identical across reruns of the same seed.
func TestSingleEngineCritpathDeterminism(t *testing.T) {
	run := func() string {
		cfg := pinCfg()
		cfg.Seeds = 1
		cfg.Trace = true
		rep := Soak(cfg)
		return rep.CritpathReport(5).String()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same-seed critpath reports differ:\n%s\nvs\n%s", a, b)
	}
	if len(a) == 0 {
		t.Fatal("empty critpath report from a traced soak")
	}
}
