package chaos

// Critical-path assembly: adapters that turn a soak's span recordings
// into critpath sources, so the chaossoak CLI and the determinism tests
// aggregate identically. Grouping is per-seed-label under one campaign
// group; the derived report is a pure function of the recordings, hence
// byte-identical for the same seed at any worker count (the sharded
// per-cell recordings are worker-invariant, and critpath.FromCells
// flattens them in fixed cell order).

import (
	"fmt"

	"eslurm/internal/obs/critpath"
)

// CritpathReport analyzes the soak's traced seeds (Config.Trace must
// have been set) into one critical-path report.
func (r *Report) CritpathReport(topK int) *critpath.Report {
	var srcs []critpath.Source
	for _, s := range r.Seeds {
		if s.Trace == nil {
			continue
		}
		srcs = append(srcs, critpath.Source{
			Label: fmt.Sprintf("seed %d", s.Seed),
			Group: "chaossoak",
			Spans: s.Trace.Spans(),
		})
	}
	return critpath.Analyze(srcs, critpath.Options{TopK: topK})
}

// CritpathReport analyzes the sharded soak's traced seeds
// (ShardedConfig.Trace must have been set), flattening each seed's
// per-cell recordings into one DAG first.
func (r *ShardedReport) CritpathReport(topK int) *critpath.Report {
	var srcs []critpath.Source
	for _, s := range r.Seeds {
		if s.CellTraces == nil {
			continue
		}
		srcs = append(srcs, critpath.Source{
			Label: fmt.Sprintf("seed %d", s.Seed),
			Group: "sharded chaossoak",
			Spans: critpath.FromCells(s.CellTraces),
		})
	}
	return critpath.Analyze(srcs, critpath.Options{TopK: topK})
}
