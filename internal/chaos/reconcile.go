package chaos

// The reconcile soak: the full chaos campaign overlaid on a reconciler
// driving the cluster toward a timed spec schedule (scale up mid-run,
// then a rolling cordon replacement). On top of the per-broadcast
// invariants 1–5 it asserts the convergence contract: after the last
// fault heals, the cluster reaches spec within a bounded number of
// reconcile rounds, and no broadcast task is dropped during graceful
// drains (the exact-partition check holds for every broadcast that
// overlaps one). Reports are byte-stable; Workers only parallelizes
// independent seeds (results land by index), so the report and digest
// are identical for any worker count.

import (
	"fmt"
	"hash/fnv"
	"strings"
	"sync"
	"time"

	"eslurm/internal/cluster"
	"eslurm/internal/comm"
	"eslurm/internal/core"
	"eslurm/internal/faults"
	"eslurm/internal/monitor"
	"eslurm/internal/reconcile"
	"eslurm/internal/simnet"
)

// ReconcileConfig parameterizes a reconcile soak. The zero value is
// runnable.
type ReconcileConfig struct {
	// Seeds starting at BaseSeed (defaults 4 and 1).
	Seeds    int
	BaseSeed int64
	// Computes and Satellites size the cluster; Satellites is the total
	// satellite-node count including parked standbys (defaults 256 and 6).
	Computes   int
	Satellites int
	// Target is the initial spec's desired in-service satellite count
	// (default 4, leaving standbys for the reconciler to promote).
	Target int
	// Span is the driven portion of virtual time (default 12 minutes);
	// faults and broadcasts land inside it.
	Span time.Duration
	// Broadcasts spread evenly over Span (default 12); Bound is the
	// per-broadcast resolution bound (default 8 minutes).
	Broadcasts int
	Bound      time.Duration
	// Interval is the reconcile-round cadence (default 30s);
	// DrainDeadline bounds graceful drains (default 90s); FaultTimeout
	// overrides the pool's FAULT→DOWN demotion timeout (default 2
	// minutes, short enough that campaign kills exercise the revival
	// path).
	Interval      time.Duration
	DrainDeadline time.Duration
	FaultTimeout  time.Duration
	// RoundBudget is the convergence bound: rounds allowed after the last
	// fault heals (default 30).
	RoundBudget int
	// Spec is the campaign mix (default: 2 bursts, 2 flaps, 2 grays, 1
	// partition, 2 satellite kills). Horizon defaults to Span.
	Spec faults.ChaosSpec
	// LossProb and DupProb are network fault rates (default 0.01 each).
	LossProb, DupProb float64
	// Initial overrides the starting spec (zero Satellites selects
	// {Target, min 1, max Satellites}); Mutations overrides the timed
	// spec schedule (nil selects scale-up at Span/3 and a rolling cordon
	// of satellite 2 at 2·Span/3).
	Initial   reconcile.Spec
	Mutations []reconcile.Mutation
	// Workers parallelizes seeds (default 1). The report is byte-identical
	// for any value: each seed runs on its own engine and results land by
	// seed index.
	Workers int
}

func (c ReconcileConfig) withDefaults() ReconcileConfig {
	if c.Seeds <= 0 {
		c.Seeds = 4
	}
	if c.BaseSeed == 0 {
		c.BaseSeed = 1
	}
	if c.Computes <= 0 {
		c.Computes = 256
	}
	if c.Satellites <= 0 {
		c.Satellites = 6
	}
	if c.Target <= 0 {
		c.Target = 4
	}
	if c.Target > c.Satellites {
		c.Target = c.Satellites
	}
	if c.Span <= 0 {
		c.Span = 12 * time.Minute
	}
	if c.Broadcasts <= 0 {
		c.Broadcasts = 12
	}
	if c.Bound <= 0 {
		c.Bound = 8 * time.Minute
	}
	if c.Interval <= 0 {
		c.Interval = 30 * time.Second
	}
	if c.DrainDeadline <= 0 {
		c.DrainDeadline = 90 * time.Second
	}
	if c.FaultTimeout <= 0 {
		c.FaultTimeout = 2 * time.Minute
	}
	if c.RoundBudget <= 0 {
		c.RoundBudget = 30
	}
	zero := faults.ChaosSpec{}
	if c.Spec == zero {
		c.Spec = faults.ChaosSpec{Bursts: 2, Flaps: 2, Grays: 2, Partitions: 1, SatelliteKills: 2}
	}
	if c.Spec.Horizon <= 0 {
		c.Spec.Horizon = c.Span
	}
	if c.LossProb == 0 && c.DupProb == 0 {
		c.LossProb, c.DupProb = 0.01, 0.01
	}
	if c.Initial.Satellites == 0 {
		c.Initial = reconcile.Spec{Satellites: c.Target, MinSatellites: 1, MaxSatellites: c.Satellites}
	}
	if c.Mutations == nil {
		c.Mutations = []reconcile.Mutation{
			// Scale up by one satellite a third of the way in...
			{At: reconcile.Duration(c.Span / 3), Spec: reconcile.Spec{
				Satellites: c.Target + 1, MinSatellites: 1, MaxSatellites: c.Satellites}},
			// ...then a rolling replacement: cordon satellite 2, back at
			// the original target.
			{At: reconcile.Duration(2 * c.Span / 3), Spec: reconcile.Spec{
				Satellites: c.Target, MinSatellites: 1, MaxSatellites: c.Satellites,
				Cordoned: []cluster.NodeID{2}}},
		}
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
	return c
}

// ReconcileSeedResult is one seed's outcome. All fields are plain data —
// nothing engine-bound crosses the worker-pool boundary.
type ReconcileSeedResult struct {
	Seed           int64
	Events         uint64
	CampaignEvents int
	Broadcasts     int
	Delivered      int
	Unreachable    int
	Retries        int
	Reallocations  int
	// MasterTakeovers counts the core takeover fallback (direct broadcast
	// after ReallocLimit); RollingTakeovers counts reconciler-paired
	// drain+promote replacements.
	MasterTakeovers  int
	Rounds           int
	RoundsAfterHeal  int
	Promotes         int
	Drains           int
	DrainsForced     int
	RollingTakeovers int
	BreakerOpens     int
	SpecUpdates      int
	Converged        bool
	Violations       []string
}

// ReconcileReport is a full reconcile soak's outcome; String and Digest
// are byte-stable for a given config, at any Workers value.
type ReconcileReport struct {
	Config ReconcileConfig
	Seeds  []ReconcileSeedResult
}

// Violations returns the total violation count across seeds.
func (r *ReconcileReport) Violations() int {
	n := 0
	for _, s := range r.Seeds {
		n += len(s.Violations)
	}
	return n
}

// String renders the digest-stable report.
func (r *ReconcileReport) String() string {
	var sb strings.Builder
	c := r.Config
	fmt.Fprintf(&sb, "reconcile soak: seeds=%d base=%d computes=%d satellites=%d target=%d span=%v broadcasts=%d bound=%v interval=%v drain=%v fault_timeout=%v budget=%d\n",
		c.Seeds, c.BaseSeed, c.Computes, c.Satellites, c.Target, c.Span, c.Broadcasts, c.Bound,
		c.Interval, c.DrainDeadline, c.FaultTimeout, c.RoundBudget)
	fmt.Fprintf(&sb, "campaign: bursts=%d flaps=%d grays=%d partitions=%d satkills=%d loss=%.3f dup=%.3f mutations=%d\n",
		c.Spec.Bursts, c.Spec.Flaps, c.Spec.Grays, c.Spec.Partitions, c.Spec.SatelliteKills,
		c.LossProb, c.DupProb, len(c.Mutations))
	for _, s := range r.Seeds {
		fmt.Fprintf(&sb, "seed %d: events=%d campaign=%d broadcasts=%d delivered=%d unreachable=%d retries=%d reallocs=%d mtakeovers=%d rounds=%d heal_rounds=%d promotes=%d drains=%d forced=%d rtakeovers=%d breakers=%d specs=%d converged=%t violations=%d\n",
			s.Seed, s.Events, s.CampaignEvents, s.Broadcasts, s.Delivered, s.Unreachable,
			s.Retries, s.Reallocations, s.MasterTakeovers, s.Rounds, s.RoundsAfterHeal,
			s.Promotes, s.Drains, s.DrainsForced, s.RollingTakeovers, s.BreakerOpens,
			s.SpecUpdates, s.Converged, len(s.Violations))
		for _, v := range s.Violations {
			fmt.Fprintf(&sb, "  VIOLATION: %s\n", v)
		}
	}
	fmt.Fprintf(&sb, "total: violations=%d digest=%s\n", r.Violations(), r.Digest())
	return sb.String()
}

// Digest returns an FNV-64a digest over the per-seed results.
func (r *ReconcileReport) Digest() string {
	h := fnv.New64a()
	for _, s := range r.Seeds {
		fmt.Fprintf(h, "%d:%d:%d:%d:%d:%d:%d:%d:%d:%d:%d:%d:%d:%d:%d:%d:%d:%t;",
			s.Seed, s.Events, s.CampaignEvents, s.Broadcasts, s.Delivered, s.Unreachable,
			s.Retries, s.Reallocations, s.MasterTakeovers, s.Rounds, s.RoundsAfterHeal,
			s.Promotes, s.Drains, s.DrainsForced, s.RollingTakeovers, s.BreakerOpens,
			s.SpecUpdates, s.Converged)
		for _, v := range s.Violations {
			fmt.Fprintf(h, "%s;", v)
		}
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// ReconcileSoak runs the full reconcile soak. Workers > 1 fans seeds out
// over a pool of goroutines; every seed is an independent engine and
// results are written by seed index, so the report is byte-identical for
// any worker count.
func ReconcileSoak(cfg ReconcileConfig) *ReconcileReport {
	cfg = cfg.withDefaults()
	rep := &ReconcileReport{Config: cfg, Seeds: make([]ReconcileSeedResult, cfg.Seeds)}
	if cfg.Workers == 1 {
		for i := 0; i < cfg.Seeds; i++ {
			rep.Seeds[i] = RunReconcileSeed(cfg, cfg.BaseSeed+int64(i))
		}
		return rep
	}
	work := make(chan int, cfg.Seeds)
	for i := 0; i < cfg.Seeds; i++ {
		work <- i
	}
	close(work)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		//eslurmlint:ignore gosim worker pool over independent engines; no simulated state crosses goroutines
		go func() {
			defer wg.Done()
			for i := range work {
				rep.Seeds[i] = RunReconcileSeed(cfg, cfg.BaseSeed+int64(i))
			}
		}()
	}
	wg.Wait()
	return rep
}

// RunReconcileSeed soaks one seed: stack + reconciler + spec schedule +
// campaign + broadcasts, then drives past the last heal and asserts the
// convergence contract.
func RunReconcileSeed(cfg ReconcileConfig, seed int64) ReconcileSeedResult {
	cfg = cfg.withDefaults()
	sr := ReconcileSeedResult{Seed: seed}
	violate := func(format string, args ...interface{}) {
		if len(sr.Violations) < 64 {
			sr.Violations = append(sr.Violations, fmt.Sprintf(format, args...))
		}
	}

	e := simnet.NewEngine(seed)
	c := cluster.New(e, cluster.Config{
		Computes:   cfg.Computes,
		Satellites: cfg.Satellites,
		Net:        cluster.NetConfig{LossProb: cfg.LossProb, DupProb: cfg.DupProb},
	})
	mon := monitor.New(c, monitor.Config{})
	m := core.NewMaster(c, core.DefaultConfig(), nil)
	m.B.RecordResolved = true
	m.B.Retry = &comm.RetryPolicy{
		MaxAttempts: 4,
		Backoff:     50 * time.Millisecond,
		MaxBackoff:  2 * time.Second,
		JitterFrac:  0.5,
		Deadline:    30 * time.Second,
	}
	m.Pool.FaultTimeout = cfg.FaultTimeout
	mon.ObservePool(m.Pool)

	// Invariant 2: no delivery lands on a down node.
	m.B.OnResolve = func(to cluster.NodeID, ok bool) {
		if ok && c.Node(to).Failed() {
			violate("seed %d: delivered to down node %d at %v", seed, to, e.Now())
		}
	}

	m.Start()

	mm := m.Meter()
	baseVMem, baseRSS, baseSockets := mm.VMem(), mm.RSS(), mm.Sockets()

	rec := reconcile.New(m, cfg.Initial, reconcile.Config{
		Interval:      cfg.Interval,
		DrainDeadline: cfg.DrainDeadline,
	})
	rec.Start()
	rec.ScheduleMutations(cfg.Mutations)

	cp := faults.New(c, mon, 0)
	cp.Generate(cfg.Spec)
	sr.CampaignEvents = len(cp.Events)

	targets := c.Computes()
	for i := 0; i < cfg.Broadcasts; i++ {
		i := i
		at := cfg.Span * time.Duration(i+1) / time.Duration(cfg.Broadcasts+1)
		e.Schedule(at, func() {
			start := e.Now()
			m.Broadcast(targets, 4096, func(r comm.Result) {
				sr.Broadcasts++
				sr.Delivered += r.Delivered
				sr.Unreachable += len(r.Unreachable)
				sr.Retries += r.Retries
				checkPartition(seed, i, targets, r, violate)
				if d := e.Now() - start; d > cfg.Bound {
					violate("seed %d: broadcast %d resolved in %v > bound %v", seed, i, d, cfg.Bound)
				}
			})
		})
	}

	// Drive the adversarial span, then past the last possible heal (flap
	// cycles can stretch to a few MaxDown past the horizon).
	e.RunUntil(cfg.Span)
	healBy := cfg.Span + 4*cfg.Spec.MaxDown + time.Minute
	e.RunUntil(healBy)

	// Convergence contract: from the first round after the last heal, the
	// reconciler must reach spec within RoundBudget rounds.
	roundsAtHeal := rec.Rounds()
	for i := 0; i < cfg.RoundBudget && !rec.Converged(); i++ {
		e.RunUntil(e.Now() + cfg.Interval)
	}
	st := rec.Status()
	sr.Converged = st.Converged
	sr.RoundsAfterHeal = st.Rounds - roundsAtHeal
	if !st.Converged {
		violate("seed %d: not converged %d rounds after last heal (spec %+v)",
			seed, sr.RoundsAfterHeal, rec.Spec())
	}

	rec.Stop()
	m.Stop()
	e.Run() // drain retries, watchdogs, pending drains, recoveries

	ms := m.Stats()
	sr.Reallocations = ms.Reallocations
	sr.MasterTakeovers = ms.MasterTakeovers
	st = rec.Status()
	sr.Rounds = st.Rounds
	sr.Promotes = st.Promotes
	sr.Drains = st.Drains
	sr.DrainsForced = st.DrainsForced
	sr.RollingTakeovers = st.Takeovers
	sr.BreakerOpens = st.BreakerOpens
	sr.SpecUpdates = st.SpecUpdates
	sr.Events = e.Processed()

	// No stalls: every driven broadcast resolved — with the exact-partition
	// check above, this is the "no task dropped during drain" guarantee.
	if sr.Broadcasts != cfg.Broadcasts {
		violate("seed %d: stalled: %d/%d broadcasts resolved after drain", seed, sr.Broadcasts, cfg.Broadcasts)
	}
	if n := m.B.OutstandingSends(); n != 0 {
		violate("seed %d: %d delivery chains still outstanding after drain", seed, n)
	}
	if v := mm.VMem(); v != baseVMem {
		violate("seed %d: master vmem %d != baseline %d after teardown", seed, v, baseVMem)
	}
	if v := mm.RSS(); v != baseRSS {
		violate("seed %d: master rss %d != baseline %d after teardown", seed, v, baseRSS)
	}
	if v := mm.Sockets(); v != baseSockets {
		violate("seed %d: master sockets %d != baseline %d after teardown", seed, v, baseSockets)
	}
	return sr
}
