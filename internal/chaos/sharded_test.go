package chaos

import (
	"testing"
	"time"
)

// shardSoakConfig is the fixed configuration the sharded determinism
// tests pin: big enough to cross rack cells and exercise every fault
// type and broadcast shape, small enough for -race CI.
func shardSoakConfig(workers int) ShardedConfig {
	return ShardedConfig{
		Seeds:      2,
		Computes:   1100, // 3 rack cells, the last one partial
		Satellites: 2,
		Span:       2 * time.Minute,
		Broadcasts: 6,
		Workers:    workers,
	}
}

// TestShardedSoakWorkerSweep runs the same soak at 1, 2, 4 and 8 workers
// and requires byte-identical reports (kernel digests included). 8
// workers exceeds the 4-cell layout, covering the clamp.
func TestShardedSoakWorkerSweep(t *testing.T) {
	ref := ShardedSoak(shardSoakConfig(1))
	if ref.Violations() > 0 {
		t.Fatalf("reference soak violated invariants:\n%s", ref.String())
	}
	refS := ref.String()
	for _, w := range []int{2, 4, 8} {
		rep := ShardedSoak(shardSoakConfig(w))
		if s := rep.String(); s != refS {
			t.Errorf("workers=%d report differs from single-worker run:\n%s\nvs\n%s", w, s, refS)
		}
	}
}

// TestShardedSoakDigestPinned pins the sharded soak contract: any change
// to the kernel, wire model, campaign generator or broadcaster changes
// this digest and must be made deliberately.
func TestShardedSoakDigestPinned(t *testing.T) {
	rep := ShardedSoak(shardSoakConfig(2))
	const want = "0a2bd16728914b2c"
	if got := rep.Digest(); got != want {
		t.Errorf("sharded soak digest %s, want %s\n%s", got, want, rep.String())
	}
}

// TestShardedSoakAdversarial cranks loss/dup and the campaign and checks
// the invariants still hold (and results remain worker-invariant).
func TestShardedSoakAdversarial(t *testing.T) {
	mk := func(workers int) ShardedConfig {
		return ShardedConfig{
			Seeds: 1, BaseSeed: 7, Computes: 600, Satellites: 2,
			Span: 2 * time.Minute, Broadcasts: 6, Workers: workers,
			Fails: 12, Grays: 6, Partitions: 2, Degrades: 4,
			LossProb: 0.05, DupProb: 0.05,
		}
	}
	ref := ShardedSoak(mk(1))
	if ref.Violations() > 0 {
		t.Fatalf("adversarial soak violated invariants:\n%s", ref.String())
	}
	if got := ShardedSoak(mk(4)).String(); got != ref.String() {
		t.Errorf("workers=4 adversarial report differs:\n%s\nvs\n%s", got, ref.String())
	}
}
