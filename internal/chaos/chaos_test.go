package chaos

import (
	"strings"
	"testing"
	"time"

	"eslurm/internal/cluster"
	"eslurm/internal/comm"
	"eslurm/internal/core"
	"eslurm/internal/monitor"
	"eslurm/internal/obs"
	"eslurm/internal/satellite"
	"eslurm/internal/simnet"
	"eslurm/internal/testutil"
)

// pinCfg is the small, fast configuration whose report digest is pinned:
// adversities cranked well above the defaults so loss, duplication,
// retries, partitions and satellite kills all fire even at this scale.
func pinCfg() Config {
	cfg := Config{
		Seeds:      2,
		Computes:   128,
		Satellites: 2,
		Span:       5 * time.Minute,
		Broadcasts: 8,
	}
	cfg = cfg.withDefaults()
	cfg.LossProb = 0.02
	cfg.DupProb = 0.02
	cfg.SilentFraction = 0.25
	return cfg
}

// pinnedDigest is the report digest for pinCfg. It changes only when the
// simulation's event schedule changes — which is exactly what it is here
// to detect: the soak must be bit-deterministic, and incidental changes
// to the fault layer must be noticed, not slip through.
const pinnedDigest = "d04e6949b2a4aa77"

func TestSoakDeterministicDigest(t *testing.T) {
	a := Soak(pinCfg())
	b := Soak(pinCfg())
	if a.String() != b.String() {
		t.Fatalf("same config produced different reports:\n%s\n---\n%s", a.String(), b.String())
	}
	if v := a.Violations(); v != 0 {
		t.Fatalf("pinned config has %d violations:\n%s", v, a.String())
	}
	if got := a.Digest(); got != pinnedDigest {
		t.Errorf("report digest = %s, pinned %s; if the event schedule changed intentionally, update pinnedDigest\n%s",
			got, pinnedDigest, a.String())
	}
	if !strings.Contains(a.String(), "digest="+pinnedDigest) {
		t.Errorf("rendered report does not carry its digest")
	}
}

// TestSoakDefaultMixAtScale is the acceptance run: the default campaign
// mix at ≥1,024 nodes must hold every invariant. Under the race detector
// the seed count shrinks to stay inside CI's budget.
func TestSoakDefaultMixAtScale(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Computes < 1024 {
		t.Fatalf("default soak runs at %d < 1024 computes", cfg.Computes)
	}
	if testutil.RaceEnabled || testing.Short() {
		cfg.Seeds = 2
	}
	rep := Soak(cfg)
	if v := rep.Violations(); v != 0 {
		t.Fatalf("%d invariant violations at scale:\n%s", v, rep.String())
	}
	for _, s := range rep.Seeds {
		if s.Broadcasts != cfg.Broadcasts {
			t.Errorf("seed %d resolved %d/%d broadcasts", s.Seed, s.Broadcasts, cfg.Broadcasts)
		}
		if s.Delivered == 0 {
			t.Errorf("seed %d delivered nothing", s.Seed)
		}
	}
}

// TestDrainedPoolFallback kills every satellite and asserts the master's
// graceful-degradation path: the pool census reaches Drained, the monitor
// observes the demotions through its alert pipeline, and a broadcast with
// zero running satellites still completes via direct tree broadcast.
func TestDrainedPoolFallback(t *testing.T) {
	e := simnet.NewEngine(11)
	c := cluster.New(e, cluster.Config{Computes: 96, Satellites: 3})
	mon := monitor.New(c, monitor.Config{})
	m := core.NewMaster(c, core.DefaultConfig(), nil)
	m.B.RecordResolved = true
	mon.ObservePool(m.Pool)

	var poolAlerts []monitor.Alert
	mon.Subscribe(func(a monitor.Alert) {
		if a.Indicator == "satellite.pool" {
			poolAlerts = append(poolAlerts, a)
		}
	})
	var demotions int
	prev := m.Pool.OnChange
	m.Pool.OnChange = func(s *satellite.Satellite, from, to satellite.State, h satellite.Health) {
		if prev != nil {
			prev(s, from, to, h)
		}
		if to == satellite.Fault || to == satellite.Down {
			demotions++
		}
	}

	m.Start()
	// Kill every satellite shortly after boot, permanently.
	for _, id := range c.Satellites() {
		c.ScheduleFailure(id, 5*time.Second, 0)
	}

	var res *comm.Result
	// 200s is past the first heartbeat sweep (150s), which marks the dead
	// satellites FAULT; the pool is then fully drained.
	e.Schedule(200*time.Second, func() {
		if !m.Pool.Drained() {
			t.Errorf("pool not drained before broadcast: %+v", m.PoolHealth())
		}
		if r := m.Pool.RunningCount(); r != 0 {
			t.Errorf("%d satellites still RUNNING", r)
		}
		m.Broadcast(c.Computes(), 4096, func(r comm.Result) {
			res = &r
		})
	})

	e.RunUntil(10 * time.Minute)
	m.Stop()
	e.Run()

	if res == nil {
		t.Fatal("broadcast with drained pool never resolved")
	}
	if got := res.Delivered + len(res.Unreachable); got != len(c.Computes()) {
		t.Errorf("partition invariant: delivered %d + unreachable %d != %d targets",
			res.Delivered, len(res.Unreachable), len(c.Computes()))
	}
	if res.Delivered != len(c.Computes()) {
		t.Errorf("all computes are healthy, yet delivered = %d of %d", res.Delivered, len(c.Computes()))
	}
	if st := m.Stats(); st.PoolDrainedFallbacks == 0 {
		t.Errorf("PoolDrainedFallbacks = 0; fallback path not attributed (stats %+v)", st)
	}
	if demotions < 3 {
		t.Errorf("pool health observer saw %d demotions, want >= 3", demotions)
	}
	if len(poolAlerts) < 3 {
		t.Errorf("monitor saw %d satellite.pool alerts, want >= 3", len(poolAlerts))
	}
	h := m.PoolHealth()
	if !h.Drained() || h.Alive() != 0 {
		t.Errorf("final pool health not drained: %+v", h)
	}
}

// TestTraceDeterminism pins the observability determinism contract: the
// same seed soaked twice with tracing enabled yields byte-identical span
// recordings and Chrome exports, and enabling tracing does not move the
// report digest off its pin.
func TestTraceDeterminism(t *testing.T) {
	cfg := pinCfg()
	cfg.Seeds = 1
	cfg.Trace = true

	run := func() SeedResult { return RunSeed(cfg, cfg.BaseSeed) }
	a, b := run(), run()
	if a.Trace == nil || b.Trace == nil {
		t.Fatal("Config.Trace did not arm the tracer")
	}
	if a.Trace.Len() == 0 {
		t.Fatal("soak recorded zero spans with tracing on")
	}
	if da, db := a.Trace.Digest(), b.Trace.Digest(); da != db {
		t.Fatalf("same seed produced different trace digests: %x vs %x", da, db)
	}

	var ca, cb strings.Builder
	if err := obs.WriteChrome(&ca, obs.Process{PID: int(a.Seed), Name: "seed", T: a.Trace}); err != nil {
		t.Fatal(err)
	}
	if err := obs.WriteChrome(&cb, obs.Process{PID: int(b.Seed), Name: "seed", T: b.Trace}); err != nil {
		t.Fatal(err)
	}
	if ca.String() != cb.String() {
		t.Fatal("same seed produced different Chrome exports")
	}

	// The pinned digest must not care whether tracing was on.
	traced := Soak(func() Config { c := pinCfg(); c.Trace = true; return c }())
	if got := traced.Digest(); got != pinnedDigest {
		t.Errorf("tracing moved the report digest: %s != pinned %s", got, pinnedDigest)
	}

	// Registry metrics cover at least the driven broadcasts' retries (the
	// registry also sees heartbeat and task traffic the report does not).
	if n := a.Metrics.Counter("comm.retries").Value(); int(n) < a.Retries {
		t.Errorf("registry comm.retries = %d < report's %d", n, a.Retries)
	}
}

// TestSeedReplayMatchesSoak pins the replay story: running one seed alone
// reproduces exactly the row the full soak computed for it.
func TestSeedReplayMatchesSoak(t *testing.T) {
	cfg := pinCfg()
	rep := Soak(cfg)
	for _, want := range rep.Seeds {
		got := RunSeed(cfg, want.Seed)
		if got.Events != want.Events || got.Delivered != want.Delivered ||
			got.Unreachable != want.Unreachable || got.Retries != want.Retries {
			t.Errorf("seed %d replay diverged: got %+v want %+v", want.Seed, got, want)
		}
	}
}
