package lint

// flow.go is the shared plumbing for the flow-sensitive analyzers
// (spanleak, timerleak, drainpath, lookahead) built on internal/lint/cfg:
// body discovery, parent maps for use classification, and the generic
// open/closed path scan whose witness traces become the "path:" block in
// finding messages. Everything here is deterministic: bodies are
// discovered in file/source order and the cfg solver's block order fixes
// every first-wins trace choice.

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"

	"eslurm/internal/lint/cfg"
)

// funcBody is one analyzable function body: a declaration or a function
// literal (literals are opaque to their enclosing body's CFG, so each is
// analyzed as its own intra-procedural unit).
type funcBody struct {
	p    *Package
	name string // qualified for messages, e.g. "Pool.Drain" or "send.func"
	ftyp *ast.FuncType
	body *ast.BlockStmt
	decl *ast.FuncDecl // nil for literals
}

// flowBodies returns every function body in the package in source order:
// each declaration, then each function literal it nests (which get their
// own CFGs — a literal's statements never appear in the enclosing graph).
func flowBodies(p *Package) []funcBody {
	var out []funcBody
	for _, file := range p.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			name := fd.Name.Name
			if obj, ok := p.Info.Defs[fd.Name].(*types.Func); ok {
				name = qualifiedFuncName(obj)
			}
			out = append(out, funcBody{p: p, name: name, ftyp: fd.Type, body: fd.Body, decl: fd})
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					out = append(out, funcBody{p: p, name: name + ".func", ftyp: lit.Type, body: lit.Body})
				}
				return true
			})
		}
	}
	return out
}

// buildCFG builds the body's graph once per analysis.
func (fb funcBody) buildCFG() *cfg.Graph {
	return cfg.New(fb.name, fb.body)
}

// parentMap records each node's syntactic parent inside root, for
// climbing from an identifier use to the construct that consumes it.
func parentMap(root ast.Node) map[ast.Node]ast.Node {
	parents := make(map[ast.Node]ast.Node)
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}

// insideFuncLit reports whether n sits inside a function literal that is
// itself inside root's body — i.e. whether a variable use at n is a
// closure capture from root's perspective.
func insideFuncLit(parents map[ast.Node]ast.Node, n ast.Node) bool {
	for c := parents[n]; c != nil; c = parents[c] {
		if _, ok := c.(*ast.FuncLit); ok {
			return true
		}
	}
	return false
}

// recvTypeName returns the name of fn's (pointer-stripped) receiver
// named type, or "" for non-methods — the structural matching idiom the
// taint and evalloc passes use, so testdata fakes and wrappers match.
func recvTypeName(fn *types.Func) string {
	if fn == nil {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	rt := sig.Recv().Type()
	if ptr, ok := rt.(*types.Pointer); ok {
		rt = ptr.Elem()
	}
	if named, ok := rt.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// useVar resolves an identifier to the *types.Var it reads, nil if not a
// variable use.
func useVar(p *Package, id *ast.Ident) *types.Var {
	v, _ := p.Info.Uses[id].(*types.Var)
	return v
}

// isComparison reports whether op is a comparison operator — a tracked
// handle appearing only as a comparison operand is being inspected, not
// consumed.
func isComparison(op token.Token) bool {
	switch op {
	case token.EQL, token.NEQ, token.LSS, token.GTR, token.LEQ, token.GEQ:
		return true
	}
	return false
}

// openSet is the path state-set for one tracked origin: pre (origin not
// yet executed), open (resource live, with a first-wins witness trace),
// and closed (settled: ended, cancelled, escaped, or nil-safe). The
// three coexist because different paths through the same block can be in
// different states.
type openSet struct {
	pre    bool
	open   *cfg.Trace
	closed bool
}

// scanOpenPath runs the forward open/closed analysis for one origin
// node inside g and returns the witness trace of a path that reaches
// the exit still open, or nil if every path settles the resource.
//
//   - consumes(n) reports whether block node n settles the tracked value
//     (terminates it, escapes it, or rebinds it);
//   - refine(e) optionally reports whether crossing edge e establishes a
//     regime where leaking is impossible (nil-receiver guards); may be
//     nil.
func scanOpenPath(fset *token.FileSet, g *cfg.Graph, origin ast.Node, originDesc string,
	consumes func(n ast.Node) bool, refine func(e *cfg.Edge) bool) *cfg.Trace {
	p := cfg.Problem[openSet]{
		Boundary: openSet{pre: true},
		Transfer: func(b *cfg.Block, s openSet) openSet {
			out := s
			for _, n := range b.Nodes {
				if n == origin {
					if out.pre {
						out.pre = false
						if out.open == nil {
							out.open = (*cfg.Trace)(nil).Extend(originDesc)
						}
					}
					continue
				}
				if out.open != nil && consumes(n) {
					out.open = nil
					out.closed = true
				}
			}
			return out
		},
		EdgeTransfer: func(e *cfg.Edge, s openSet) openSet {
			out := s
			if out.open == nil {
				return out
			}
			if refine != nil && refine(e) {
				out.open = nil
				out.closed = true
				return out
			}
			out.open = out.open.ExtendEdge(fset, e)
			return out
		},
		Join: func(dst, src openSet) (openSet, bool) {
			changed := false
			if src.pre && !dst.pre {
				dst.pre = true
				changed = true
			}
			if src.closed && !dst.closed {
				dst.closed = true
				changed = true
			}
			if src.open != nil && dst.open == nil {
				dst.open = src.open
				changed = true
			}
			return dst, changed
		},
	}
	res := cfg.Forward(g, p)
	exit := g.Exit.Index
	if !res.Reached[exit] {
		return nil
	}
	return res.In[exit].open
}

// shortPosAt is shortPos over a FileSet position.
func shortPosAt(fset *token.FileSet, pos token.Pos) string {
	return shortPos(fset.Position(pos))
}

// spanLabelArg extracts a string-literal first argument ("span name")
// for friendlier messages; "" if the label is not a literal.
func spanLabelArg(call *ast.CallExpr) string {
	if len(call.Args) == 0 {
		return ""
	}
	if lit, ok := call.Args[0].(*ast.BasicLit); ok && lit.Kind == token.STRING {
		if s, err := strconv.Unquote(lit.Value); err == nil {
			return s
		}
	}
	return ""
}
