package lint

import (
	"go/ast"
	"sort"
	"strings"
)

// PkgdocAnalyzer requires every internal/ package to carry a package doc
// comment that states its determinism posture. The repo's documentation
// contract (DESIGN.md "Observability") is that each package says what it
// simulates from the paper and how it upholds — or stays outside — the
// same-seed ⇒ same-trace guarantee; the concrete, greppable token is the
// stem "determinis" (deterministic/determinism), case-insensitive.
// Directive comments (//foo:bar) are not documentation: a doc group made
// only of directives counts as missing, because go/doc strips them too.
var PkgdocAnalyzer = &Analyzer{
	Name: "pkgdoc",
	Doc:  "require internal/ packages to document their paper role and determinism contract",
	Run:  runPkgdoc,
}

func runPkgdoc(p *Package) []Finding {
	if !underInternal(p.ImportPath) {
		return nil
	}
	// Gather the package doc across files (Go convention puts it in one
	// file, but the check must not care which). Sort by filename so the
	// reported position is stable regardless of load order.
	files := append([]*ast.File(nil), p.Files...)
	sort.Slice(files, func(i, j int) bool {
		return p.Fset.Position(files[i].Package).Filename < p.Fset.Position(files[j].Package).Filename
	})
	var doc strings.Builder
	var docFile *ast.File
	for _, f := range files {
		// CommentGroup.Text strips directive comments, so a group that is
		// nothing but directives contributes an empty string here.
		if f.Doc == nil {
			continue
		}
		txt := strings.TrimSpace(f.Doc.Text())
		if txt == "" {
			continue
		}
		doc.WriteString(txt)
		if docFile == nil {
			docFile = f
		}
	}
	if docFile == nil {
		if len(files) == 0 {
			return nil
		}
		return []Finding{{p.Fset.Position(files[0].Package), "pkgdoc",
			"internal package has no package doc: state what the package models from the paper and its determinism contract (same seed ⇒ same trace)"}}
	}
	if !strings.Contains(strings.ToLower(doc.String()), "determinis") {
		return []Finding{{p.Fset.Position(docFile.Package), "pkgdoc",
			"package doc never mentions determinism: say how the package upholds (or stays outside) the same-seed ⇒ same-trace contract"}}
	}
	return nil
}
