package lint

import (
	"go/token"
	"sort"
	"strings"
)

// A suppression silences findings of one analyzer on the directive's own
// line and on the line immediately below it (so it can ride at the end of
// the offending line or stand alone above it). One directive may name
// several analyzers separated by commas:
//
//	//eslurmlint:ignore maporder,floatsum aggregation is order-independent
//
// Each named analyzer becomes its own suppression entry; the staleignore
// analyzer judges every entry independently, so a half-stale directive is
// still reported.
type suppression struct {
	file     string
	line     int
	analyzer string
}

// supEntry is the mutable per-directive state behind a suppression key:
// where the directive sits (for staleignore reporting) and whether it
// actually silenced a finding during this run.
type supEntry struct {
	pos  token.Position
	used bool
}

type suppressionSet map[suppression]*supEntry

// covers reports whether a suppression silences the finding, and marks
// the matching directive as load-bearing for the staleignore pass.
func (s suppressionSet) covers(f Finding) bool {
	for _, line := range []int{f.Pos.Line, f.Pos.Line - 1} {
		if e, ok := s[suppression{f.Pos.Filename, line, f.Analyzer}]; ok {
			e.used = true
			return true
		}
	}
	return false
}

// unused returns the suppression keys of directives that silenced
// nothing, restricted to analyzers in enabled (a directive for an
// analyzer that did not run this invocation cannot be judged stale).
// Entries for staleignore itself are excluded: they are consumed by the
// staleignore pass's own filtering, one level deep by design.
func (s suppressionSet) unused(enabled map[string]bool) []suppression {
	var keys []suppression
	for k, e := range s {
		if !e.used && k.analyzer != "staleignore" && enabled[k.analyzer] {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.file != b.file {
			return a.file < b.file
		}
		if a.line != b.line {
			return a.line < b.line
		}
		return a.analyzer < b.analyzer
	})
	return keys
}

// collectSuppressions scans every comment in the package for
// //eslurmlint:ignore directives. A directive must name known analyzers
// (comma-separated) and give a non-empty reason; anything else is
// reported as a finding of the pseudo-analyzer "suppress" so typos cannot
// silently disable the gate. The harness-only //eslurmlint:testpath
// directive is tolerated.
func collectSuppressions(p *Package, known map[string]bool) (suppressionSet, []Finding) {
	sups := make(suppressionSet)
	var malformed []Finding
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				rest, ok := strings.CutPrefix(text, "eslurmlint:")
				if !ok {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					malformed = append(malformed, Finding{pos, "suppress", "empty eslurmlint directive"})
					continue
				}
				switch fields[0] {
				case "ignore":
					names, allKnown := splitAnalyzerList(fields, known)
					if !allKnown {
						malformed = append(malformed, Finding{pos, "suppress",
							"eslurmlint:ignore must name known analyzers (" + strings.Join(AnalyzerNames(), ", ") + "), comma-separated"})
						continue
					}
					if len(fields) < 3 {
						malformed = append(malformed, Finding{pos, "suppress",
							"eslurmlint:ignore " + fields[1] + " needs a reason explaining why the site is safe"})
						continue
					}
					for _, name := range names {
						key := suppression{pos.Filename, pos.Line, name}
						if sups[key] == nil {
							sups[key] = &supEntry{pos: pos}
						}
					}
				case "testpath":
					// Harness-only package-path override; inert in production runs.
				default:
					malformed = append(malformed, Finding{pos, "suppress",
						"unknown eslurmlint directive " + fields[0]})
				}
			}
		}
	}
	return sups, malformed
}

// splitAnalyzerList parses the comma-separated analyzer list of an ignore
// directive (fields[1]). It reports ok=false when the list is missing,
// has empty elements ("a,,b" or a trailing comma), or names an unknown
// analyzer.
func splitAnalyzerList(fields []string, known map[string]bool) ([]string, bool) {
	if len(fields) < 2 {
		return nil, false
	}
	names := strings.Split(fields[1], ",")
	for _, name := range names {
		if name == "" || !known[name] {
			return nil, false
		}
	}
	return names, true
}

// testPathOverride returns the //eslurmlint:testpath value, if any. The
// golden-file harness uses it to exercise path-scoped rules (walltime's
// internal-only scope, detrand's simnet exemption) from testdata packages
// whose real paths all live under internal/lint/testdata.
func testPathOverride(p *Package) (string, bool) {
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if rest, ok := strings.CutPrefix(text, "eslurmlint:testpath"); ok {
					return strings.TrimSpace(rest), true
				}
			}
		}
	}
	return "", false
}
