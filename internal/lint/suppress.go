package lint

import (
	"strings"
)

// A suppression silences findings of one analyzer on the comment's own
// line and on the line immediately below it (so it can ride at the end of
// the offending line or stand alone above it).
type suppression struct {
	file     string
	line     int
	analyzer string
}

type suppressionSet map[suppression]bool

func (s suppressionSet) covers(f Finding) bool {
	return s[suppression{f.Pos.Filename, f.Pos.Line, f.Analyzer}] ||
		s[suppression{f.Pos.Filename, f.Pos.Line - 1, f.Analyzer}]
}

// collectSuppressions scans every comment in the package for
// //eslurmlint:ignore directives. A directive must name a known analyzer
// and give a non-empty reason; anything else is reported as a finding of
// the pseudo-analyzer "suppress" so typos cannot silently disable the
// gate. The harness-only //eslurmlint:testpath directive is tolerated.
func collectSuppressions(p *Package, known map[string]bool) (suppressionSet, []Finding) {
	sups := make(suppressionSet)
	var malformed []Finding
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				rest, ok := strings.CutPrefix(text, "eslurmlint:")
				if !ok {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					malformed = append(malformed, Finding{pos, "suppress", "empty eslurmlint directive"})
					continue
				}
				switch fields[0] {
				case "ignore":
					if len(fields) < 2 || !known[fields[1]] {
						malformed = append(malformed, Finding{pos, "suppress",
							"eslurmlint:ignore must name a known analyzer (" + strings.Join(AnalyzerNames(), ", ") + ")"})
						continue
					}
					if len(fields) < 3 {
						malformed = append(malformed, Finding{pos, "suppress",
							"eslurmlint:ignore " + fields[1] + " needs a reason explaining why the site is safe"})
						continue
					}
					sups[suppression{pos.Filename, pos.Line, fields[1]}] = true
				case "testpath":
					// Harness-only package-path override; inert in production runs.
				default:
					malformed = append(malformed, Finding{pos, "suppress",
						"unknown eslurmlint directive " + fields[0]})
				}
			}
		}
	}
	return sups, malformed
}

// testPathOverride returns the //eslurmlint:testpath value, if any. The
// golden-file harness uses it to exercise path-scoped rules (walltime's
// internal-only scope, detrand's simnet exemption) from testdata packages
// whose real paths all live under internal/lint/testdata.
func testPathOverride(p *Package) (string, bool) {
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if rest, ok := strings.CutPrefix(text, "eslurmlint:testpath"); ok {
					return strings.TrimSpace(rest), true
				}
			}
		}
	}
	return "", false
}
