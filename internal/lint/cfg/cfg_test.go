package cfg

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// parseFunc type-checks one snippet (a function body wrapped in a
// package) and builds its CFG. Snippets avoid imports so no importer is
// needed.
func parseFunc(t *testing.T, body string) (*Graph, *types.Info, *token.FileSet) {
	t.Helper()
	src := "package p\n\n" + body
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "snippet.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Defs:  make(map[*ast.Ident]types.Object),
		Uses:  make(map[*ast.Ident]types.Object),
		Types: make(map[ast.Expr]types.TypeAndValue),
	}
	conf := types.Config{Error: func(err error) {}}
	conf.Check("p", fset, []*ast.File{f}, info) // snippets may use undeclared stubs; best effort
	var fd *ast.FuncDecl
	for _, d := range f.Decls {
		if x, ok := d.(*ast.FuncDecl); ok && x.Name.Name == "f" {
			fd = x
		}
	}
	if fd == nil {
		t.Fatal("snippet has no func f")
	}
	return New("f", fd.Body), info, fset
}

// TestEdgeShapes is the table-driven structural suite: each case pins
// the rendered shape of one control construct via substrings of
// Graph.String().
func TestEdgeShapes(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want []string
	}{
		{
			name: "if short-circuit and",
			src:  "func f(a, b bool) int {\n\tif a && b {\n\t\treturn 1\n\t}\n\treturn 0\n}",
			// a=false and b=false both route to the else target; a=true
			// routes to b's own condition block.
			want: []string{"[`a`=true]", "[`a`=false]", "[`b`=true]", "[`b`=false]", "[return]"},
		},
		{
			name: "if short-circuit or with not",
			src:  "func f(a, b bool) int {\n\tif !a || b {\n\t\treturn 1\n\t}\n\treturn 0\n}",
			// !a is decomposed: the negation swaps the edge targets, so
			// the decided condition is bare `a`.
			want: []string{"[`a`=false]", "[`a`=true]", "[`b`=true]", "[`b`=false]"},
		},
		{
			name: "labeled continue targets outer loop",
			src:  "func f(xs [][]int) int {\n\tn := 0\nouter:\n\tfor i := 0; i < len(xs); i++ {\n\t\tfor j := 0; j < len(xs[i]); j++ {\n\t\t\tif xs[i][j] < 0 {\n\t\t\t\tcontinue outer\n\t\t\t}\n\t\t\tn++\n\t\t}\n\t}\n\treturn n\n}",
			want: []string{"[continue]", "[`i < len(xs)`=true]", "[`j < len(xs[i])`=true]"},
		},
		{
			name: "labeled break",
			src:  "func f(xs [][]int) int {\nouter:\n\tfor _, row := range xs {\n\t\tfor _, v := range row {\n\t\t\tif v == 0 {\n\t\t\t\tbreak outer\n\t\t\t}\n\t\t}\n\t}\n\treturn 1\n}",
			want: []string{"[break]", "[range next]", "[range done]"},
		},
		{
			name: "select with default",
			src:  "func f(ch chan int) int {\n\tselect {\n\tcase v := <-ch:\n\t\treturn v\n\tdefault:\n\t\treturn 0\n\t}\n}",
			want: []string{"[select v := <-ch]", "[select default]"},
		},
		{
			name: "defer in loop stays in body block",
			src:  "func f(n int) {\n\tfor i := 0; i < n; i++ {\n\t\tdefer println(i)\n\t}\n}",
			want: []string{"[`i < n`=true]", "[`i < n`=false]"},
		},
		{
			name: "tagged switch dispatch labels",
			src:  "func f(x int) int {\n\tswitch x {\n\tcase 1, 2:\n\t\treturn 10\n\tcase 3:\n\t\treturn 30\n\t}\n\treturn 0\n}",
			want: []string{"[case 1, 2]", "[case 3]", "[no case matches]"},
		},
		{
			name: "tagless switch is a condition chain",
			src:  "func f(x int) int {\n\tswitch {\n\tcase x > 0:\n\t\treturn 1\n\tdefault:\n\t\treturn -1\n\t}\n}",
			want: []string{"[`x > 0`=true]", "[`x > 0`=false]"},
		},
		{
			name: "type switch labels",
			src:  "func f(x interface{}) int {\n\tswitch x.(type) {\n\tcase int:\n\t\treturn 1\n\tdefault:\n\t\treturn 0\n\t}\n}",
			want: []string{"[case int]", "[default]"},
		},
		{
			name: "fallthrough chains clauses",
			src:  "func f(x int) int {\n\tn := 0\n\tswitch x {\n\tcase 1:\n\t\tn++\n\t\tfallthrough\n\tcase 2:\n\t\tn += 2\n\t}\n\treturn n\n}",
			want: []string{"[fallthrough]", "[case 1]", "[case 2]"},
		},
		{
			name: "goto forward",
			src:  "func f(x int) int {\n\tif x > 0 {\n\t\tgoto done\n\t}\n\tx = -x\ndone:\n\treturn x\n}",
			want: []string{"[goto]"},
		},
		{
			name: "panic terminates the path",
			src:  "func f(x int) int {\n\tif x < 0 {\n\t\tpanic(\"neg\")\n\t}\n\treturn x\n}",
			want: []string{"[panic]"},
		},
		{
			name: "range loop back edge",
			src:  "func f(xs []int) int {\n\tn := 0\n\tfor _, v := range xs {\n\t\tn += v\n\t}\n\treturn n\n}",
			want: []string{"[range next]", "[range done]"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g, _, _ := parseFunc(t, tc.src)
			got := g.String()
			for _, w := range tc.want {
				if !strings.Contains(got, w) {
					t.Errorf("graph missing %q:\n%s", w, got)
				}
			}
		})
	}
}

// TestBuildDeterministic pins that two builds of the same body render
// identically — block numbering and edge order are part of the finding-
// message byte-identity contract.
func TestBuildDeterministic(t *testing.T) {
	src := "func f(a, b bool, xs []int) int {\n\tn := 0\nouter:\n\tfor _, v := range xs {\n\t\tif a && b {\n\t\t\tcontinue outer\n\t\t}\n\t\tn += v\n\t}\n\treturn n\n}"
	g1, _, _ := parseFunc(t, src)
	g2, _, _ := parseFunc(t, src)
	if g1.String() != g2.String() {
		t.Fatalf("non-deterministic build:\n%s\nvs\n%s", g1, g2)
	}
}

// TestReachingDefs pins the may-analysis: both branch definitions reach
// the join, and a loop-carried def reaches the loop head.
func TestReachingDefs(t *testing.T) {
	g, info, _ := parseFunc(t, "func f(c bool) int {\n\tx := 1\n\tif c {\n\t\tx = 2\n\t} else {\n\t\tx = 3\n\t}\n\treturn x\n}")
	r := ReachingDefs(g, info)
	if len(r.Defs) != 3 {
		t.Fatalf("expected 3 defs of x, got %d", len(r.Defs))
	}
	// The block holding the return must see exactly the two branch defs.
	var retBlock *Block
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if _, ok := n.(*ast.ReturnStmt); ok {
				retBlock = b
			}
		}
	}
	if retBlock == nil {
		t.Fatal("no return block")
	}
	reach := r.DefsOf(retBlock, r.Defs[0].Var)
	if len(reach) != 2 {
		t.Fatalf("expected 2 defs reaching the return, got %v", reach)
	}
	for _, di := range reach {
		if di == 0 {
			t.Fatalf("killed def x := 1 reaches the return")
		}
	}
}

// TestLiveness pins the backward analysis: a variable used after the
// branch is live at entry; one overwritten on every path is not live
// past its last use.
func TestLiveness(t *testing.T) {
	g, info, _ := parseFunc(t, "func f(c bool) int {\n\tx := 1\n\ty := 2\n\tif c {\n\t\ty = x\n\t}\n\treturn y\n}")
	live := Liveness(g, info)
	names := func(vars []*types.Var) string {
		var ns []string
		for _, v := range vars {
			ns = append(ns, v.Name())
		}
		return strings.Join(ns, ",")
	}
	// Entry block defines both x and y, so neither is live at its entry;
	// the then-block uses x and the join uses y.
	if got := names(live[g.Entry.Index]); strings.Contains(got, "x") || strings.Contains(got, "y") {
		t.Fatalf("entry live set should not contain x or y, got %q", got)
	}
	foundXLive := false
	for i := range g.Blocks {
		if strings.Contains(names(live[i]), "x") {
			foundXLive = true
		}
	}
	if !foundXLive {
		t.Fatal("x should be live somewhere between its def and the branch use")
	}
}

// TestWitnessPath pins deterministic reconstruction: the shortest
// all-edges-allowed path from entry to the return renders with the
// branch condition visible.
func TestWitnessPath(t *testing.T) {
	g, _, fset := parseFunc(t, "func f(c bool) int {\n\tif c {\n\t\treturn 1\n\t}\n\treturn 0\n}")
	var retBlocks []*Block
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if _, ok := n.(*ast.ReturnStmt); ok {
				retBlocks = append(retBlocks, b)
			}
		}
	}
	if len(retBlocks) != 2 {
		t.Fatalf("expected 2 return blocks, got %d", len(retBlocks))
	}
	path := WitnessPath(g, retBlocks[0], func(e *Edge) bool { return true })
	if path == nil {
		t.Fatal("no witness path to the first return")
	}
	got := RenderPath(fset, path)
	if !strings.HasPrefix(got, "entry") || !strings.Contains(got, "`c`=true") {
		t.Fatalf("unexpected witness rendering %q", got)
	}
	// Same inputs, same path.
	if again := RenderPath(fset, WitnessPath(g, retBlocks[0], func(e *Edge) bool { return true })); again != got {
		t.Fatalf("witness not deterministic: %q vs %q", got, again)
	}
}

// TestTraceSharing pins the immutable-extend semantics sibling paths
// rely on.
func TestTraceSharing(t *testing.T) {
	base := (*Trace)(nil).Extend("entry")
	a := base.Extend("left")
	b := base.Extend("right")
	if a.String() != "entry -> left" || b.String() != "entry -> right" {
		t.Fatalf("trace extend corrupted siblings: %q / %q", a, b)
	}
	if base.Len() != 1 || a.Len() != 2 {
		t.Fatalf("trace lengths wrong: %d / %d", base.Len(), a.Len())
	}
}
