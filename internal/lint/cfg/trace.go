package cfg

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"
)

// This file renders CFG edges and witness paths into the deterministic
// text fragments finding messages embed: every branch on a path becomes
// "`cond`=true (file.go:12)", mirroring the taint pass's
// source→hops→sink chains so a reviewer can replay the path by eye.

// Trace is an immutable witness path: a shared-tail linked list so
// extending a path at a branch costs O(1) and sibling paths share their
// prefix. The zero value (nil) is the empty path.
type Trace struct {
	prev *Trace
	step string
}

// Extend returns the trace with one step appended.
func (t *Trace) Extend(step string) *Trace {
	return &Trace{prev: t, step: step}
}

// Steps returns the steps in path order.
func (t *Trace) Steps() []string {
	var n int
	for c := t; c != nil; c = c.prev {
		n++
	}
	out := make([]string, n)
	for c := t; c != nil; c = c.prev {
		n--
		out[n] = c.step
	}
	return out
}

// String joins the steps with " -> ", the canonical path separator.
func (t *Trace) String() string {
	return strings.Join(t.Steps(), " -> ")
}

// Len reports the number of steps.
func (t *Trace) Len() int {
	n := 0
	for c := t; c != nil; c = c.prev {
		n++
	}
	return n
}

// EdgeDesc renders one edge for a path trace. Conditional edges show
// the decided expression and its outcome with the condition's position;
// structural edges show their label. Unconditional fallthrough edges
// render as "" and should be skipped by callers.
func EdgeDesc(fset *token.FileSet, e *Edge) string {
	if e.Cond != nil {
		return fmt.Sprintf("`%s`=%v (%s)", types.ExprString(e.Cond), e.Val, shortPos(fset.Position(e.Cond.Pos())))
	}
	return e.Label
}

// ExtendEdge appends an edge's description to a trace, skipping edges
// that add no information (plain block joins).
func (t *Trace) ExtendEdge(fset *token.FileSet, e *Edge) *Trace {
	d := EdgeDesc(fset, e)
	if d == "" {
		return t
	}
	return t.Extend(d)
}

// WitnessPath reconstructs a deterministic entry→target path from
// per-block solver state: ok(e) reports whether the fact under
// discussion held along edge e (i.e. the path may continue through it).
// The search is breadth-first over predecessors in stored edge order,
// so the shortest such path — and with ties, the first in source order —
// is always chosen. Returns nil if target is unreachable through ok
// edges.
func WitnessPath(g *Graph, target *Block, ok func(e *Edge) bool) []*Edge {
	if target == g.Entry {
		return []*Edge{}
	}
	// BFS backward from target to entry.
	via := make(map[*Block]*Edge, len(g.Blocks))
	queue := []*Block{target}
	seen := make(map[*Block]bool, len(g.Blocks))
	seen[target] = true
	for len(queue) > 0 {
		blk := queue[0]
		queue = queue[1:]
		for _, e := range blk.Preds {
			if !ok(e) || seen[e.From] {
				continue
			}
			seen[e.From] = true
			via[e.From] = e
			if e.From == g.Entry {
				// Walk forward from entry collecting edges.
				var path []*Edge
				for b := g.Entry; b != target; {
					e := via[b]
					path = append(path, e)
					b = e.To
				}
				return path
			}
			queue = append(queue, e.From)
		}
	}
	return nil
}

// RenderPath renders a witness path as a trace string, starting from
// "entry" so even a straight-line path has visible shape.
func RenderPath(fset *token.FileSet, path []*Edge) string {
	t := (*Trace)(nil).Extend("entry")
	for _, e := range path {
		t = t.ExtendEdge(fset, e)
	}
	return t.String()
}

// String renders the graph structure — one line per block with its
// successor edges — for tests and debugging. Node contents are elided;
// the shape plus edge conditions/labels is what the edge-shape tests
// pin.
func (g *Graph) String() string {
	var sb strings.Builder
	for _, b := range g.Blocks {
		fmt.Fprintf(&sb, "b%d:", b.Index)
		for _, e := range b.Succs {
			d := ""
			if e.Cond != nil {
				d = fmt.Sprintf("`%s`=%v", types.ExprString(e.Cond), e.Val)
			} else if e.Label != "" {
				d = e.Label
			}
			if d == "" {
				fmt.Fprintf(&sb, " ->b%d", e.To.Index)
			} else {
				fmt.Fprintf(&sb, " ->b%d[%s]", e.To.Index, d)
			}
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

func shortPos(pos token.Position) string {
	return fmt.Sprintf("%s:%d", filepath.Base(pos.Filename), pos.Line)
}

// exprListString renders a case-clause expression list compactly.
func exprListString(list []ast.Expr) string {
	parts := make([]string, len(list))
	for i, e := range list {
		parts[i] = types.ExprString(e)
	}
	return strings.Join(parts, ", ")
}

// stmtString renders the few statement forms that label CFG edges
// (select comm clauses): send, receive-assign, receive.
func stmtString(s ast.Stmt) string {
	switch s := s.(type) {
	case *ast.SendStmt:
		return types.ExprString(s.Chan) + " <- " + types.ExprString(s.Value)
	case *ast.ExprStmt:
		return types.ExprString(s.X)
	case *ast.AssignStmt:
		var lhs, rhs []string
		for _, e := range s.Lhs {
			lhs = append(lhs, types.ExprString(e))
		}
		for _, e := range s.Rhs {
			rhs = append(rhs, types.ExprString(e))
		}
		return strings.Join(lhs, ", ") + " " + s.Tok.String() + " " + strings.Join(rhs, ", ")
	}
	return fmt.Sprintf("%T", s)
}
