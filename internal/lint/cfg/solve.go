package cfg

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Problem is one dataflow analysis over a Graph, solved to a fixpoint
// by Forward or Backward. The state type S is opaque to the solver;
// Transfer and EdgeTransfer must be pure (treat their input as
// immutable and return the successor state), and Join must merge src
// into dst, reporting whether dst changed — monotone joins are the
// caller's obligation and what guarantees termination.
type Problem[S any] struct {
	// Boundary is the state at the entry block (Forward) or exit block
	// (Backward).
	Boundary S
	// Transfer produces the block's out-state (Forward: after executing
	// its nodes; Backward: before them) from its in-state.
	Transfer func(b *Block, s S) S
	// EdgeTransfer optionally refines the state crossing an edge —
	// branch-condition refinement (nil guards, bound-raising compares)
	// lives here. May be nil.
	EdgeTransfer func(e *Edge, s S) S
	// Join merges src into dst and reports whether dst changed. dst may
	// be the zero S the first time a block is reached.
	Join func(dst, src S) (S, bool)
}

// Result holds the solved per-block states, indexed by Block.Index.
// Blocks never reached from the boundary have Reached[i] == false and
// zero states — analyses must skip them (dead code proves nothing).
type Result[S any] struct {
	In, Out []S
	Reached []bool
}

// Forward solves p over g in execution direction: In[b] is the join of
// predecessors' edge-refined Out states, Out[b] = Transfer(b, In[b]).
// The worklist is drained in ascending block-index order, so the
// fixpoint — including any first-wins witness choices made inside Join —
// is deterministic.
func Forward[S any](g *Graph, p Problem[S]) Result[S] {
	return solve(g, p, false)
}

// Backward solves p against execution direction: In[b] here is the
// state after the block (join over successors), Out[b] the state before
// it — liveness-style.
func Backward[S any](g *Graph, p Problem[S]) Result[S] {
	return solve(g, p, true)
}

func solve[S any](g *Graph, p Problem[S], backward bool) Result[S] {
	n := len(g.Blocks)
	res := Result[S]{In: make([]S, n), Out: make([]S, n), Reached: make([]bool, n)}
	start := g.Entry
	if backward {
		start = g.Exit
	}
	res.In[start.Index] = p.Boundary
	res.Reached[start.Index] = true

	inList := make([]bool, n)
	var list []int
	push := func(i int) {
		if !inList[i] {
			inList[i] = true
			list = append(list, i)
		}
	}
	push(start.Index)
	for len(list) > 0 {
		// Ascending-index draining keeps the visit order — and thus any
		// first-wins tie-breaks in Join — independent of arrival order.
		sort.Ints(list)
		i := list[0]
		list = list[1:]
		inList[i] = false
		b := g.Blocks[i]
		out := p.Transfer(b, res.In[i])
		res.Out[i] = out
		edges := b.Succs
		if backward {
			edges = b.Preds
		}
		for _, e := range edges {
			v := out
			if p.EdgeTransfer != nil {
				v = p.EdgeTransfer(e, v)
			}
			dst := e.To
			if backward {
				dst = e.From
			}
			j := dst.Index
			merged, changed := p.Join(res.In[j], v)
			if changed || !res.Reached[j] {
				res.In[j] = merged
				res.Reached[j] = true
				push(j)
			}
		}
	}
	return res
}

// ---- Reaching definitions ----

// Def is one definition site of a local variable inside the function
// body: an assignment, short declaration, inc/dec, or range binding.
type Def struct {
	Var  *types.Var
	Site ast.Node
	Pos  token.Pos
}

// ReachResult is the solved reaching-definitions problem: for each
// block, the indices into Defs of the definitions that may reach its
// entry.
type ReachResult struct {
	Defs []Def
	In   [][]int
}

// DefsOf returns the indices of defs of v reaching block b's entry.
func (r *ReachResult) DefsOf(b *Block, v *types.Var) []int {
	var out []int
	for _, i := range r.In[b.Index] {
		if r.Defs[i].Var == v {
			out = append(out, i)
		}
	}
	return out
}

// ReachingDefs solves the classic forward may-analysis over g: which
// definition sites of each variable can reach each block. Definitions
// inside nested function literals belong to the literal, not g, and are
// skipped.
func ReachingDefs(g *Graph, info *types.Info) *ReachResult {
	// Collect def sites in block order, node order — deterministic.
	var defs []Def
	gen := make([][]int, len(g.Blocks))
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			collectDefs(n, info, func(v *types.Var, site ast.Node, pos token.Pos) {
				gen[b.Index] = append(gen[b.Index], len(defs))
				defs = append(defs, Def{Var: v, Site: site, Pos: pos})
			})
		}
	}
	// Bitset state over def indices.
	words := (len(defs) + 63) / 64
	type bits = []uint64
	clone := func(s bits) bits {
		out := make(bits, words)
		copy(out, s)
		return out
	}
	p := Problem[bits]{
		Boundary: make(bits, words),
		Transfer: func(b *Block, s bits) bits {
			out := clone(s)
			for _, gi := range gen[b.Index] {
				// Kill every other def of the same variable, then gen.
				v := defs[gi].Var
				for di := range defs {
					if defs[di].Var == v {
						out[di/64] &^= 1 << uint(di%64)
					}
				}
				out[gi/64] |= 1 << uint(gi%64)
			}
			return out
		},
		Join: func(dst, src bits) (bits, bool) {
			if dst == nil {
				return clone(src), true
			}
			changed := false
			for w := range dst {
				if dst[w]|src[w] != dst[w] {
					dst[w] |= src[w]
					changed = true
				}
			}
			return dst, changed
		},
	}
	res := Forward(g, p)
	out := &ReachResult{Defs: defs, In: make([][]int, len(g.Blocks))}
	for i := range g.Blocks {
		if !res.Reached[i] || res.In[i] == nil {
			continue
		}
		for di := range defs {
			if res.In[i][di/64]&(1<<uint(di%64)) != 0 {
				out.In[i] = append(out.In[i], di)
			}
		}
	}
	return out
}

// collectDefs walks one block node reporting each local-variable
// definition, without descending into function literals.
func collectDefs(n ast.Node, info *types.Info, emit func(v *types.Var, site ast.Node, pos token.Pos)) {
	ast.Inspect(n, func(m ast.Node) bool {
		switch s := m.(type) {
		case *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				if v := lhsLocal(lhs, info); v != nil {
					emit(v, s, lhs.Pos())
				}
			}
		case *ast.IncDecStmt:
			if v := lhsLocal(s.X, info); v != nil {
				emit(v, s, s.X.Pos())
			}
		case *ast.RangeStmt:
			// Only the head node carries the bindings; its body is in
			// other blocks, and Inspect from the head node would descend
			// into it — cut the walk at the body.
			for _, e := range []ast.Expr{s.Key, s.Value} {
				if e == nil {
					continue
				}
				if v := lhsLocal(e, info); v != nil {
					emit(v, s, e.Pos())
				}
			}
			return false
		case *ast.ValueSpec:
			for _, name := range s.Names {
				if v, ok := info.Defs[name].(*types.Var); ok {
					emit(v, s, name.Pos())
				}
			}
		}
		return true
	})
}

// lhsLocal resolves a plain-identifier assignment target to its
// *types.Var; dereferences, fields and index expressions return nil
// (they mutate through the variable, not the binding).
func lhsLocal(e ast.Expr, info *types.Info) *types.Var {
	id, ok := e.(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if v, ok := info.Defs[id].(*types.Var); ok {
		return v
	}
	v, _ := info.Uses[id].(*types.Var)
	return v
}

// ---- Liveness ----

// Liveness solves the classic backward may-analysis: for each block,
// the set of local variables live at its entry, sorted by name then
// position for deterministic output. Uses inside nested function
// literals count as uses at the literal's site (a capture keeps the
// variable live), which is exactly the conservatism the leak analyzers
// want.
func Liveness(g *Graph, info *types.Info) [][]*types.Var {
	// Per block: use = vars read before any write in the block,
	// def = vars written.
	n := len(g.Blocks)
	use := make([]map[*types.Var]bool, n)
	def := make([]map[*types.Var]bool, n)
	for _, b := range g.Blocks {
		u, d := map[*types.Var]bool{}, map[*types.Var]bool{}
		for _, node := range b.Nodes {
			blockUsesDefs(node, info, u, d)
		}
		use[b.Index], def[b.Index] = u, d
	}
	type set = map[*types.Var]bool
	p := Problem[set]{
		Boundary: set{},
		// Backward: in-state is liveness after the block, out-state
		// liveness before it.
		Transfer: func(b *Block, s set) set {
			out := make(set, len(s)+len(use[b.Index]))
			for v := range s {
				if !def[b.Index][v] {
					out[v] = true
				}
			}
			for v := range use[b.Index] {
				out[v] = true
			}
			return out
		},
		Join: func(dst, src set) (set, bool) {
			if dst == nil {
				dst = make(set, len(src))
			}
			changed := false
			for v := range src {
				if !dst[v] {
					dst[v] = true
					changed = true
				}
			}
			return dst, changed
		},
	}
	res := Backward(g, p)
	out := make([][]*types.Var, n)
	for i := range g.Blocks {
		// res.Out is the state *before* the block in a backward problem,
		// i.e. live-in.
		var vars []*types.Var
		for v := range res.Out[i] {
			vars = append(vars, v)
		}
		sort.Slice(vars, func(a, b int) bool {
			if vars[a].Name() != vars[b].Name() {
				return vars[a].Name() < vars[b].Name()
			}
			return vars[a].Pos() < vars[b].Pos()
		})
		out[i] = vars
	}
	return out
}

// blockUsesDefs accumulates upward-exposed uses and definitions for one
// block node, in order.
func blockUsesDefs(n ast.Node, info *types.Info, use, def map[*types.Var]bool) {
	switch s := n.(type) {
	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			exprUses(rhs, info, use, def)
		}
		for _, lhs := range s.Lhs {
			if v := lhsLocal(lhs, info); v != nil {
				def[v] = true
			} else {
				// x.f = ..., a[i] = ...: reads x / a and i.
				exprUses(lhs, info, use, def)
			}
		}
	case *ast.RangeStmt:
		exprUses(s.X, info, use, def)
		for _, e := range []ast.Expr{s.Key, s.Value} {
			if e == nil {
				continue
			}
			if v := lhsLocal(e, info); v != nil {
				def[v] = true
			}
		}
	case *ast.ValueSpec:
		for _, val := range s.Values {
			exprUses(val, info, use, def)
		}
		for _, name := range s.Names {
			if v, ok := info.Defs[name].(*types.Var); ok {
				def[v] = true
			}
		}
	case *ast.IncDecStmt:
		exprUses(s.X, info, use, def)
		if v := lhsLocal(s.X, info); v != nil {
			def[v] = true
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					blockUsesDefs(vs, info, use, def)
				}
			}
		}
	default:
		exprUses(n, info, use, def)
	}
}

// exprUses records every variable read in n (function literals
// included: a capture is a use).
func exprUses(n ast.Node, info *types.Info, use, def map[*types.Var]bool) {
	ast.Inspect(n, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok {
			if v, ok := info.Uses[id].(*types.Var); ok && !def[v] {
				use[v] = true
			}
		}
		return true
	})
}
