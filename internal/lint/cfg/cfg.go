// Package cfg builds intra-procedural control-flow graphs over go/ast
// and solves forward/backward dataflow problems on them for the
// flow-sensitive eslurmlint analyzers (spanleak, timerleak, drainpath,
// lookahead).
//
// The package is deliberately std-lib-only (go/ast, go/token, go/types)
// like the rest of the lint driver, and everything it produces is
// deterministic by construction: blocks are numbered in builder
// allocation order, edges keep source order, and the worklist solver
// visits blocks in ascending index order, so the same source text always
// yields the same graph, the same fixpoint, and the same witness paths —
// a lint finding message is part of the byte-identical CLI/CI contract.
//
// The graph is intra-procedural: function literals are opaque values to
// the enclosing function's CFG (their bodies get their own graphs), and
// defer statements stay in their block as ordinary nodes — analyses
// model them as actions that run on every exit edge. Panic, os.Exit,
// runtime.Goexit and log.Fatal* terminate a path with an edge to the
// synthetic exit block, matched by name (shadowing those identifiers
// defeats the heuristic, which is acceptable for a linter).
package cfg

import (
	"go/ast"
	"go/token"
)

// Graph is the control-flow graph of one function body. Entry is the
// first block executed; Exit is a synthetic block every return, panic
// and fall-off-the-end edge targets. Blocks holds every block in
// allocation order (Entry is Blocks[0], Exit is Blocks[1]); unreachable
// blocks (dead code after return, goto-orphaned labels) stay in the
// slice with no predecessors.
type Graph struct {
	Name   string
	Entry  *Block
	Exit   *Block
	Blocks []*Block
}

// Block is one basic block: a maximal straight-line run of statements
// (and short-circuit condition sub-expressions) with branching only at
// the end.
type Block struct {
	Index int
	// Nodes are the statements and branch-condition expressions of the
	// block in execution order. Condition leaves of if/for/&&/|| appear
	// as their ast.Expr; everything else is the ast.Stmt.
	Nodes []ast.Node
	Succs []*Edge
	Preds []*Edge
}

// Edge is one control transfer. For a two-way branch, Cond is the
// decided expression and Val its outcome on this edge; for structural
// transfers (return, range termination, switch dispatch, select arms)
// Cond is nil and Label names the transfer for path traces.
type Edge struct {
	From, To *Block
	Cond     ast.Expr
	Val      bool
	Label    string
}

// New builds the CFG for one function body. name is used only for
// diagnostics.
func New(name string, body *ast.BlockStmt) *Graph {
	g := &Graph{Name: name}
	b := &builder{g: g, labels: make(map[string]*Block)}
	g.Entry = b.newBlock()
	g.Exit = b.newBlock()
	b.cur = g.Entry
	b.stmt(body)
	b.jump(g.Exit, "")
	return g
}

// builder threads the under-construction graph through the statement
// walk. cur == nil means the walk is in dead code; the next statement
// materializes an unreachable block so labels and gotos still resolve.
type builder struct {
	g      *Graph
	cur    *Block
	frames []frame
	labels map[string]*Block
	// pendingLabel is the label of the LabeledStmt currently being
	// built, consumed by the next loop/switch/select for labeled
	// break/continue.
	pendingLabel string
	// fallTargets is the stack of "next case clause" blocks fallthrough
	// jumps to.
	fallTargets []*Block
}

// frame is one enclosing breakable construct. continueTo is nil for
// switch/select frames.
type frame struct {
	label      string
	breakTo    *Block
	continueTo *Block
}

func (b *builder) newBlock() *Block {
	blk := &Block{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *builder) edge(from, to *Block, cond ast.Expr, val bool, label string) {
	e := &Edge{From: from, To: to, Cond: cond, Val: val, Label: label}
	from.Succs = append(from.Succs, e)
	to.Preds = append(to.Preds, e)
}

// current returns the block under construction, materializing an
// unreachable one when the walk is in dead code.
func (b *builder) current() *Block {
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	return b.cur
}

func (b *builder) add(n ast.Node) {
	cb := b.current()
	cb.Nodes = append(cb.Nodes, n)
}

// jump ends the current block with an unconditional edge.
func (b *builder) jump(to *Block, label string) {
	if b.cur != nil {
		b.edge(b.cur, to, nil, false, label)
		b.cur = nil
	}
}

// labelBlock returns (creating on first reference) the block a label
// names, so forward gotos resolve.
func (b *builder) labelBlock(name string) *Block {
	if blk, ok := b.labels[name]; ok {
		return blk
	}
	blk := b.newBlock()
	b.labels[name] = blk
	return blk
}

func (b *builder) pushFrame(label string, breakTo, continueTo *Block) {
	b.frames = append(b.frames, frame{label, breakTo, continueTo})
}

func (b *builder) popFrame() { b.frames = b.frames[:len(b.frames)-1] }

// branchTarget resolves break/continue: innermost matching frame, or by
// label. wantContinue selects loops only.
func (b *builder) branchTarget(label string, wantContinue bool) *Block {
	for i := len(b.frames) - 1; i >= 0; i-- {
		f := b.frames[i]
		if wantContinue && f.continueTo == nil {
			continue
		}
		if label != "" && f.label != label {
			continue
		}
		if wantContinue {
			return f.continueTo
		}
		return f.breakTo
	}
	return nil
}

// takeLabel consumes the pending label for the construct being built.
func (b *builder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		for _, st := range s.List {
			b.stmt(st)
		}
	case *ast.EmptyStmt:
	case *ast.LabeledStmt:
		lb := b.labelBlock(s.Label.Name)
		b.jump(lb, "")
		b.cur = lb
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""
	case *ast.IfStmt:
		b.ifStmt(s)
	case *ast.ForStmt:
		b.forStmt(s)
	case *ast.RangeStmt:
		b.rangeStmt(s)
	case *ast.SwitchStmt:
		b.switchStmt(s)
	case *ast.TypeSwitchStmt:
		b.typeSwitchStmt(s)
	case *ast.SelectStmt:
		b.selectStmt(s)
	case *ast.ReturnStmt:
		b.add(s)
		b.jump(b.g.Exit, "return")
	case *ast.BranchStmt:
		b.branchStmt(s)
	case *ast.ExprStmt:
		b.add(s)
		if isTerminatorCall(s.X) {
			b.jump(b.g.Exit, "panic")
		}
	default:
		// Assignments, declarations, defer, go, send, inc/dec: straight-
		// line nodes. Nested function literals inside them are opaque.
		b.add(s)
	}
}

func (b *builder) ifStmt(s *ast.IfStmt) {
	if s.Init != nil {
		b.stmt(s.Init)
	}
	thenB := b.newBlock()
	join := b.newBlock()
	elseTarget := join
	var elseB *Block
	if s.Else != nil {
		elseB = b.newBlock()
		elseTarget = elseB
	}
	b.cond(s.Cond, thenB, elseTarget)
	b.cur = thenB
	b.stmt(s.Body)
	b.jump(join, "")
	if s.Else != nil {
		b.cur = elseB
		b.stmt(s.Else)
		b.jump(join, "")
	}
	b.cur = join
}

func (b *builder) forStmt(s *ast.ForStmt) {
	label := b.takeLabel()
	if s.Init != nil {
		b.stmt(s.Init)
	}
	head := b.newBlock()
	b.jump(head, "")
	body := b.newBlock()
	after := b.newBlock()
	continueTo := head
	var post *Block
	if s.Post != nil {
		post = b.newBlock()
		continueTo = post
	}
	if s.Cond != nil {
		b.cur = head
		b.cond(s.Cond, body, after)
	} else {
		b.edge(head, body, nil, false, "")
	}
	b.pushFrame(label, after, continueTo)
	b.cur = body
	b.stmt(s.Body)
	b.popFrame()
	b.jump(continueTo, "")
	if post != nil {
		b.cur = post
		b.stmt(s.Post)
		b.jump(head, "")
	}
	b.cur = after
}

func (b *builder) rangeStmt(s *ast.RangeStmt) {
	label := b.takeLabel()
	head := b.newBlock()
	b.jump(head, "")
	head.Nodes = append(head.Nodes, s)
	body := b.newBlock()
	after := b.newBlock()
	b.edge(head, body, nil, false, "range next")
	b.edge(head, after, nil, false, "range done")
	b.pushFrame(label, after, head)
	b.cur = body
	b.stmt(s.Body)
	b.popFrame()
	b.jump(head, "")
	b.cur = after
}

func (b *builder) switchStmt(s *ast.SwitchStmt) {
	label := b.takeLabel()
	if s.Init != nil {
		b.stmt(s.Init)
	}
	if s.Tag != nil {
		b.add(s.Tag)
	}
	head := b.current()
	after := b.newBlock()
	b.pushFrame(label, after, nil)
	clauses := make([]*ast.CaseClause, 0, len(s.Body.List))
	for _, c := range s.Body.List {
		clauses = append(clauses, c.(*ast.CaseClause))
	}
	bodies := make([]*Block, len(clauses))
	for i := range clauses {
		bodies[i] = b.newBlock()
	}
	if s.Tag == nil {
		// Tagless switch is an if/else-if chain: each case expression is
		// a boolean condition, which keeps branch refinement (nil guards
		// and the like) working through `switch { case x != nil: ... }`.
		b.cur = head
		defaultIdx := -1
		for i, cc := range clauses {
			if cc.List == nil {
				defaultIdx = i
				continue
			}
			for j, e := range cc.List {
				last := i == lastExprClause(clauses) && j == len(cc.List)-1
				var next *Block
				if last {
					next = after
					if defaultIdx >= 0 {
						next = bodies[defaultIdx]
					}
				} else {
					next = b.newBlock()
				}
				b.cond(e, bodies[i], next)
				b.cur = next
			}
		}
		if b.cur == after {
			b.cur = nil
		}
	} else {
		for i, cc := range clauses {
			b.edge(head, bodies[i], nil, false, clauseLabel(cc.List))
		}
		if defaultIndex(clauses) < 0 {
			b.edge(head, after, nil, false, "no case matches")
		}
		b.cur = nil
	}
	for i, cc := range clauses {
		// fallthrough in clause i jumps to clause i+1's body.
		if i+1 < len(bodies) {
			b.fallTargets = append(b.fallTargets, bodies[i+1])
		} else {
			b.fallTargets = append(b.fallTargets, after)
		}
		b.cur = bodies[i]
		for _, st := range cc.Body {
			b.stmt(st)
		}
		b.fallTargets = b.fallTargets[:len(b.fallTargets)-1]
		b.jump(after, "")
	}
	b.popFrame()
	b.cur = after
}

// lastExprClause returns the index of the last non-default clause.
func lastExprClause(clauses []*ast.CaseClause) int {
	last := -1
	for i, cc := range clauses {
		if cc.List != nil {
			last = i
		}
	}
	return last
}

func defaultIndex(clauses []*ast.CaseClause) int {
	for i, cc := range clauses {
		if cc.List == nil {
			return i
		}
	}
	return -1
}

func clauseLabel(list []ast.Expr) string {
	if list == nil {
		return "default"
	}
	return "case " + exprListString(list)
}

func (b *builder) typeSwitchStmt(s *ast.TypeSwitchStmt) {
	label := b.takeLabel()
	if s.Init != nil {
		b.stmt(s.Init)
	}
	b.add(s.Assign)
	head := b.current()
	after := b.newBlock()
	b.pushFrame(label, after, nil)
	hasDefault := false
	for _, c := range s.Body.List {
		cc := c.(*ast.CaseClause)
		if cc.List == nil {
			hasDefault = true
		}
		body := b.newBlock()
		b.edge(head, body, nil, false, clauseLabel(cc.List))
		b.cur = body
		for _, st := range cc.Body {
			b.stmt(st)
		}
		b.jump(after, "")
	}
	if !hasDefault {
		b.edge(head, after, nil, false, "no case matches")
	}
	b.popFrame()
	b.cur = after
}

func (b *builder) selectStmt(s *ast.SelectStmt) {
	label := b.takeLabel()
	head := b.current()
	after := b.newBlock()
	b.pushFrame(label, after, nil)
	for _, c := range s.Body.List {
		cc := c.(*ast.CommClause)
		body := b.newBlock()
		b.edge(head, body, nil, false, commLabel(cc.Comm))
		b.cur = body
		if cc.Comm != nil {
			b.stmt(cc.Comm)
		}
		for _, st := range cc.Body {
			b.stmt(st)
		}
		b.jump(after, "")
	}
	b.popFrame()
	// select {} with no clauses blocks forever; after is then
	// unreachable, which the empty Preds list records.
	b.cur = after
}

func commLabel(comm ast.Stmt) string {
	if comm == nil {
		return "select default"
	}
	return "select " + stmtString(comm)
}

func (b *builder) branchStmt(s *ast.BranchStmt) {
	b.add(s)
	label := ""
	if s.Label != nil {
		label = s.Label.Name
	}
	switch s.Tok {
	case token.BREAK:
		if t := b.branchTarget(label, false); t != nil {
			b.jump(t, "break")
		} else {
			b.cur = nil
		}
	case token.CONTINUE:
		if t := b.branchTarget(label, true); t != nil {
			b.jump(t, "continue")
		} else {
			b.cur = nil
		}
	case token.GOTO:
		b.jump(b.labelBlock(label), "goto")
	case token.FALLTHROUGH:
		if n := len(b.fallTargets); n > 0 {
			b.jump(b.fallTargets[n-1], "fallthrough")
		} else {
			b.cur = nil
		}
	}
}

// cond lowers a boolean expression into branch edges, decomposing
// short-circuit && / || / ! so each leaf condition gets its own block
// and true/false edges — that is what lets analyses refine state on
// `done != nil && !closed` one conjunct at a time.
func (b *builder) cond(e ast.Expr, t, f *Block) {
	switch x := e.(type) {
	case *ast.ParenExpr:
		b.cond(x.X, t, f)
		return
	case *ast.UnaryExpr:
		if x.Op == token.NOT {
			b.cond(x.X, f, t)
			return
		}
	case *ast.BinaryExpr:
		switch x.Op {
		case token.LAND:
			mid := b.newBlock()
			b.cond(x.X, mid, f)
			b.cur = mid
			b.cond(x.Y, t, f)
			return
		case token.LOR:
			mid := b.newBlock()
			b.cond(x.X, t, mid)
			b.cur = mid
			b.cond(x.Y, t, f)
			return
		}
	}
	cb := b.current()
	cb.Nodes = append(cb.Nodes, e)
	b.edge(cb, t, e, true, "")
	b.edge(cb, f, e, false, "")
	b.cur = nil
}

// isTerminatorCall matches calls that never return, by name: panic,
// os.Exit, runtime.Goexit, log.Fatal/Fatalf/Fatalln.
func isTerminatorCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		pkg, ok := fun.X.(*ast.Ident)
		if !ok {
			return false
		}
		switch pkg.Name + "." + fun.Sel.Name {
		case "os.Exit", "runtime.Goexit", "log.Fatal", "log.Fatalf", "log.Fatalln":
			return true
		}
	}
	return false
}
