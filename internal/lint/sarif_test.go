package lint

import (
	"encoding/json"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func decodeSARIF(t *testing.T, s string) sarifLog {
	t.Helper()
	var log sarifLog
	if err := json.Unmarshal([]byte(s), &log); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, s)
	}
	return log
}

// TestWriteSARIF pins the shape code scanning depends on: version 2.1.0,
// one rule per analyzer plus the suppress pseudo-rule, and results whose
// URIs are slash-separated paths relative to the base directory.
func TestWriteSARIF(t *testing.T) {
	findings := []Finding{
		{
			Pos:      token.Position{Filename: "/repo/internal/sched/controller.go", Line: 42, Column: 7},
			Analyzer: "taint",
			Message:  "nondeterministic value reaches Engine.Schedule",
		},
		{
			Pos:      token.Position{Filename: "/elsewhere/z.go", Line: 3},
			Analyzer: "suppress",
			Message:  "eslurmlint:ignore needs a reason",
		},
	}
	var b strings.Builder
	if err := WriteSARIF(&b, findings, Analyzers(), "/repo"); err != nil {
		t.Fatal(err)
	}
	log := decodeSARIF(t, b.String())

	if log.Version != "2.1.0" || !strings.Contains(log.Schema, "sarif-schema-2.1.0") {
		t.Errorf("version/schema = %q / %q", log.Version, log.Schema)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("runs = %d, want 1", len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "eslurmlint" {
		t.Errorf("driver name = %q", run.Tool.Driver.Name)
	}
	ruleIDs := make(map[string]bool)
	for _, r := range run.Tool.Driver.Rules {
		if r.ShortDescription.Text == "" {
			t.Errorf("rule %s has no description", r.ID)
		}
		ruleIDs[r.ID] = true
	}
	for _, a := range Analyzers() {
		if !ruleIDs[a.Name] {
			t.Errorf("missing rule for analyzer %s", a.Name)
		}
	}
	if !ruleIDs["suppress"] {
		t.Error("missing rule for the suppress pseudo-analyzer")
	}

	if len(run.Results) != 2 {
		t.Fatalf("results = %d, want 2", len(run.Results))
	}
	r0 := run.Results[0]
	if r0.RuleID != "taint" || r0.Level != "error" {
		t.Errorf("result 0 ruleId/level = %q/%q", r0.RuleID, r0.Level)
	}
	loc := r0.Locations[0].PhysicalLocation
	if loc.ArtifactLocation.URI != "internal/sched/controller.go" {
		t.Errorf("uri = %q, want path relative to base dir", loc.ArtifactLocation.URI)
	}
	if loc.Region.StartLine != 42 || loc.Region.StartColumn != 7 {
		t.Errorf("region = %+v", loc.Region)
	}
	// A file outside the base dir keeps its absolute path rather than
	// escaping upward with ../ segments.
	u1 := run.Results[1].Locations[0].PhysicalLocation.ArtifactLocation.URI
	if strings.HasPrefix(u1, "..") {
		t.Errorf("outside-base uri escapes upward: %q", u1)
	}
}

// TestWriteSARIFEmpty: a clean run still emits a complete log with an
// empty (not null) results array — upload actions reject null — and the
// full rule table, so code scanning can close out previously open alerts.
func TestWriteSARIFEmpty(t *testing.T) {
	var b strings.Builder
	if err := WriteSARIF(&b, nil, Analyzers(), "/repo"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `"results": []`) {
		t.Errorf("empty run must serialize results as []:\n%s", b.String())
	}
	log := decodeSARIF(t, b.String())
	if len(log.Runs) != 1 || log.Runs[0].Results == nil {
		t.Error("runs/results shape wrong for the empty log")
	}
	if got, want := len(log.Runs[0].Tool.Driver.Rules), len(Analyzers())+1; got != want {
		t.Errorf("empty log carries %d rules, want %d (all analyzers + suppress)", got, want)
	}
}

// TestWriteSARIFMultiPackage: findings spanning several packages land in
// one run, keep their input (position-sorted) order, and each URI is
// relativized independently.
func TestWriteSARIFMultiPackage(t *testing.T) {
	findings := []Finding{
		{Pos: token.Position{Filename: "/repo/internal/comm/comm.go", Line: 5, Column: 2}, Analyzer: "walltime", Message: "a"},
		{Pos: token.Position{Filename: "/repo/internal/sched/controller.go", Line: 9, Column: 1}, Analyzer: "detrand", Message: "b"},
		{Pos: token.Position{Filename: "/repo/internal/simnet/engine.go", Line: 1, Column: 1}, Analyzer: "globalmut", Message: "c"},
	}
	var b strings.Builder
	if err := WriteSARIF(&b, findings, Analyzers(), "/repo"); err != nil {
		t.Fatal(err)
	}
	log := decodeSARIF(t, b.String())
	run := log.Runs[0]
	if len(run.Results) != 3 {
		t.Fatalf("results = %d, want 3", len(run.Results))
	}
	wantURIs := []string{"internal/comm/comm.go", "internal/sched/controller.go", "internal/simnet/engine.go"}
	wantRules := []string{"walltime", "detrand", "globalmut"}
	for i, r := range run.Results {
		if uri := r.Locations[0].PhysicalLocation.ArtifactLocation.URI; uri != wantURIs[i] {
			t.Errorf("result %d uri = %q, want %q", i, uri, wantURIs[i])
		}
		if r.RuleID != wantRules[i] {
			t.Errorf("result %d ruleId = %q, want %q", i, r.RuleID, wantRules[i])
		}
	}
}

// TestSARIFSuppressedNotSurfaced drives the full pipeline into the SARIF
// writer: a finding silenced by a reasoned //eslurmlint:ignore must not
// appear as a code-scanning alert, while an unsuppressed finding in the
// same package must.
func TestSARIFSuppressedNotSurfaced(t *testing.T) {
	root := t.TempDir()
	files := map[string]string{
		"go.mod": "module tmpmod\n\ngo 1.22\n",
		"sim/sim.go": `//eslurmlint:testpath tmpmod/internal/sim

// Package sim is a SARIF suppression fixture.
package sim

import "time"

// Suppressed reads the clock under a reasoned ignore.
func Suppressed() time.Time {
	//eslurmlint:ignore walltime fixture timestamp, never reaches a simulation
	return time.Now()
}

// Live reads the clock with no suppression: the one expected alert.
func Live() time.Time {
	return time.Now()
}
`,
	}
	for name, content := range files {
		path := filepath.Join(root, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	_, p := loadTemp(t, root, "sim")
	if tp, ok := testPathOverride(p); ok {
		p.ImportPath = tp
	}
	analyzers := []*Analyzer{WalltimeAnalyzer}
	findings := Run([]*Package{p}, analyzers)

	var b strings.Builder
	if err := WriteSARIF(&b, findings, analyzers, root); err != nil {
		t.Fatal(err)
	}
	log := decodeSARIF(t, b.String())
	results := log.Runs[0].Results
	if len(results) != 1 {
		t.Fatalf("results = %d, want exactly the unsuppressed finding:\n%s", len(results), b.String())
	}
	if got := results[0].Locations[0].PhysicalLocation.Region.StartLine; got != 16 {
		t.Errorf("surviving alert at line %d, want 16 (the Live site); the suppressed site must not surface", got)
	}
}
