package lint

import (
	"encoding/json"
	"go/token"
	"strings"
	"testing"
)

func decodeSARIF(t *testing.T, s string) sarifLog {
	t.Helper()
	var log sarifLog
	if err := json.Unmarshal([]byte(s), &log); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, s)
	}
	return log
}

// TestWriteSARIF pins the shape code scanning depends on: version 2.1.0,
// one rule per analyzer plus the suppress pseudo-rule, and results whose
// URIs are slash-separated paths relative to the base directory.
func TestWriteSARIF(t *testing.T) {
	findings := []Finding{
		{
			Pos:      token.Position{Filename: "/repo/internal/sched/controller.go", Line: 42, Column: 7},
			Analyzer: "taint",
			Message:  "nondeterministic value reaches Engine.Schedule",
		},
		{
			Pos:      token.Position{Filename: "/elsewhere/z.go", Line: 3},
			Analyzer: "suppress",
			Message:  "eslurmlint:ignore needs a reason",
		},
	}
	var b strings.Builder
	if err := WriteSARIF(&b, findings, Analyzers(), "/repo"); err != nil {
		t.Fatal(err)
	}
	log := decodeSARIF(t, b.String())

	if log.Version != "2.1.0" || !strings.Contains(log.Schema, "sarif-schema-2.1.0") {
		t.Errorf("version/schema = %q / %q", log.Version, log.Schema)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("runs = %d, want 1", len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "eslurmlint" {
		t.Errorf("driver name = %q", run.Tool.Driver.Name)
	}
	ruleIDs := make(map[string]bool)
	for _, r := range run.Tool.Driver.Rules {
		if r.ShortDescription.Text == "" {
			t.Errorf("rule %s has no description", r.ID)
		}
		ruleIDs[r.ID] = true
	}
	for _, a := range Analyzers() {
		if !ruleIDs[a.Name] {
			t.Errorf("missing rule for analyzer %s", a.Name)
		}
	}
	if !ruleIDs["suppress"] {
		t.Error("missing rule for the suppress pseudo-analyzer")
	}

	if len(run.Results) != 2 {
		t.Fatalf("results = %d, want 2", len(run.Results))
	}
	r0 := run.Results[0]
	if r0.RuleID != "taint" || r0.Level != "error" {
		t.Errorf("result 0 ruleId/level = %q/%q", r0.RuleID, r0.Level)
	}
	loc := r0.Locations[0].PhysicalLocation
	if loc.ArtifactLocation.URI != "internal/sched/controller.go" {
		t.Errorf("uri = %q, want path relative to base dir", loc.ArtifactLocation.URI)
	}
	if loc.Region.StartLine != 42 || loc.Region.StartColumn != 7 {
		t.Errorf("region = %+v", loc.Region)
	}
	// A file outside the base dir keeps its absolute path rather than
	// escaping upward with ../ segments.
	u1 := run.Results[1].Locations[0].PhysicalLocation.ArtifactLocation.URI
	if strings.HasPrefix(u1, "..") {
		t.Errorf("outside-base uri escapes upward: %q", u1)
	}
}

// TestWriteSARIFEmpty: a clean run still emits a complete log with an
// empty (not null) results array — upload actions reject null.
func TestWriteSARIFEmpty(t *testing.T) {
	var b strings.Builder
	if err := WriteSARIF(&b, nil, Analyzers(), "/repo"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `"results": []`) {
		t.Errorf("empty run must serialize results as []:\n%s", b.String())
	}
	log := decodeSARIF(t, b.String())
	if len(log.Runs) != 1 || log.Runs[0].Results == nil {
		t.Error("runs/results shape wrong for the empty log")
	}
}
