package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// MaporderAnalyzer flags `for range` over a map whose body has
// order-sensitive side effects: appending to a slice, sending on a
// channel, or calling into the event-carrying packages (simnet, sched,
// comm). Go randomizes map iteration order per run, so any of these leaks
// nondeterminism straight into event sequencing or result tables.
//
// The sorted-keys idiom stays silent: a loop that only appends to slices
// which are then passed to a sort/slices call later in the same block is
// the sanctioned way to get a deterministic order out of a map.
var MaporderAnalyzer = &Analyzer{
	Name: "maporder",
	Doc:  "flag map iteration with order-sensitive side effects (append/send/simnet/sched/comm) without sorting",
	Run:  runMaporder,
}

// maporderSensitive are the package-path suffixes whose functions carry
// events or scheduling decisions; calling them in map order reorders the
// simulation between runs.
var maporderSensitive = []string{"internal/simnet", "internal/sched", "internal/comm"}

type mapEffect struct {
	pos token.Pos
	// desc describes the effect for the finding message.
	desc string
	// appendTarget is the identifier appended to for x = append(x, ...)
	// effects, or "" when the effect cannot be excused by a later sort.
	appendTarget string
}

func runMaporder(p *Package) []Finding {
	var out []Finding
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var list []ast.Stmt
			switch b := n.(type) {
			case *ast.BlockStmt:
				list = b.List
			case *ast.CaseClause:
				list = b.Body
			case *ast.CommClause:
				list = b.Body
			default:
				return true
			}
			for i, st := range list {
				if ls, ok := st.(*ast.LabeledStmt); ok {
					st = ls.Stmt
				}
				rs, ok := st.(*ast.RangeStmt)
				if !ok {
					continue
				}
				t := p.Info.TypeOf(rs.X)
				if t == nil {
					continue
				}
				if _, isMap := t.Underlying().(*types.Map); !isMap {
					continue
				}
				out = append(out, checkMapRange(p, rs, list[i+1:])...)
			}
			return true
		})
	}
	return out
}

// checkMapRange inspects one map-range statement. tail is the rest of the
// enclosing statement list, searched for sort calls that excuse pure
// key/value collection.
func checkMapRange(p *Package, rs *ast.RangeStmt, tail []ast.Stmt) []Finding {
	effects := collectEffects(p, rs.Body)
	if len(effects) == 0 {
		return nil
	}
	// Sorted-keys idiom: every effect is an append into a slice that a
	// later statement in the same block sorts.
	allSorted := true
	for _, e := range effects {
		if e.appendTarget == "" || !sortedInTail(p, e.appendTarget, tail) {
			allSorted = false
			break
		}
	}
	if allSorted {
		return nil
	}
	e := effects[0]
	msg := fmt.Sprintf("map iteration %s; map order is randomized per run — collect and sort the keys first", e.desc)
	if len(effects) > 1 {
		msg += fmt.Sprintf(" (%d order-sensitive sites in this loop)", len(effects))
	}
	return []Finding{{p.Fset.Position(rs.Pos()), "maporder", msg}}
}

// collectEffects walks a loop body (including closures scheduled from it —
// the order closures are *registered* in already depends on map order) and
// records every order-sensitive side effect.
func collectEffects(p *Package, body *ast.BlockStmt) []mapEffect {
	// Map append calls to their assignment target so the sorted-keys
	// idiom can be recognized.
	appendTarget := make(map[*ast.CallExpr]string)
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok || !isBuiltinAppend(p, call) {
				continue
			}
			if id, ok := as.Lhs[i].(*ast.Ident); ok {
				appendTarget[call] = id.Name
			}
		}
		return true
	})

	var effects []mapEffect
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.SendStmt:
			effects = append(effects, mapEffect{x.Pos(), "sends on a channel", ""})
		case *ast.CallExpr:
			if isBuiltinAppend(p, x) {
				target := appendTarget[x]
				desc := "appends to a slice"
				if target != "" {
					desc = "appends to " + target
				}
				effects = append(effects, mapEffect{x.Pos(), desc, target})
				return true
			}
			fn := calleeFunc(p, x)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			for _, suffix := range maporderSensitive {
				if strings.HasSuffix(fn.Pkg().Path(), suffix) {
					effects = append(effects, mapEffect{x.Pos(),
						"calls " + fn.Pkg().Name() + "." + fn.Name(), ""})
					break
				}
			}
		}
		return true
	})
	return effects
}

func isBuiltinAppend(p *Package, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	_, isBuiltin := p.Info.Uses[id].(*types.Builtin)
	return isBuiltin
}

// sortedInTail reports whether a later statement in the enclosing block
// passes the named slice to a sort or slices function.
func sortedInTail(p *Package, target string, tail []ast.Stmt) bool {
	for _, st := range tail {
		found := false
		ast.Inspect(st, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(p, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			if path := fn.Pkg().Path(); path != "sort" && path != "slices" {
				return true
			}
			for _, a := range call.Args {
				if mentionsIdent(a, target) {
					found = true
				}
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}

func mentionsIdent(e ast.Expr, name string) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == name {
			found = true
		}
		return true
	})
	return found
}
