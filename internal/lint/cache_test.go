package lint

import (
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeTempModule lays out a two-package module (a imports b) and returns
// its root. Each test gets its own copy so content edits cannot leak.
func writeTempModule(t *testing.T) string {
	t.Helper()
	root := t.TempDir()
	files := map[string]string{
		"go.mod":   "module tmpmod\n\ngo 1.22\n",
		"b/b.go":   "package b\n\n// N is a constant.\nconst N = 4\n",
		"a/a.go":   "package a\n\nimport \"tmpmod/b\"\n\n// M doubles b.N.\nconst M = 2 * b.N\n",
		"c/c.go":   "package c\n\n// Lone has no module-local imports.\nconst Lone = 1\n",
		"_junk.go": "not go\n", // underscore-prefixed: must not affect any key
	}
	for name, content := range files {
		path := filepath.Join(root, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

func loadTemp(t *testing.T, root, rel string) (*Loader, *Package) {
	t.Helper()
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	p, err := l.LoadDir(filepath.Join(root, rel))
	if err != nil {
		t.Fatal(err)
	}
	return l, p
}

// TestCacheKeyDependencyClosure pins the invalidation semantics: the key
// is stable across fresh loads of unchanged content, changes when a
// transitive module-local dependency changes, and ignores packages
// outside the closure.
func TestCacheKeyDependencyClosure(t *testing.T) {
	root := writeTempModule(t)
	cache, err := NewCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := func() (a, c string) {
		l, pa := loadTemp(t, root, "a")
		ka, err := cache.Key(pa, Analyzers(), l.Loaded)
		if err != nil {
			t.Fatal(err)
		}
		pc, err := l.LoadDir(filepath.Join(root, "c"))
		if err != nil {
			t.Fatal(err)
		}
		kc, err := cache.Key(pc, Analyzers(), l.Loaded)
		if err != nil {
			t.Fatal(err)
		}
		return ka, kc
	}

	a1, c1 := key()
	a2, c2 := key()
	if a1 != a2 || c1 != c2 {
		t.Fatal("keys not stable across fresh loads of identical content")
	}

	// Touch the dependency: a's key must change (type information flows
	// from b), c's must not (b is outside c's closure).
	bpath := filepath.Join(root, "b", "b.go")
	if err := os.WriteFile(bpath, []byte("package b\n\n// N is a constant, now bigger.\nconst N = 5\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	a3, c3 := key()
	if a3 == a1 {
		t.Error("a's key unchanged after editing its dependency b")
	}
	if c3 != c1 {
		t.Error("c's key changed by an edit outside its dependency closure")
	}
}

// TestCacheKeyAnalyzerSet: enabling a different analyzer set must miss,
// because the cached findings were computed by other rules.
func TestCacheKeyAnalyzerSet(t *testing.T) {
	root := writeTempModule(t)
	cache, err := NewCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	l, pa := loadTemp(t, root, "a")
	all, err := cache.Key(pa, Analyzers(), l.Loaded)
	if err != nil {
		t.Fatal(err)
	}
	some, err := cache.Key(pa, []*Analyzer{WalltimeAnalyzer}, l.Loaded)
	if err != nil {
		t.Fatal(err)
	}
	if all == some {
		t.Error("key identical across different analyzer sets")
	}
}

func TestCacheKeyNilLookup(t *testing.T) {
	root := writeTempModule(t)
	cache, err := NewCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	_, pa := loadTemp(t, root, "a")
	if _, err := cache.Key(pa, Analyzers(), nil); err == nil {
		t.Error("nil lookup: expected an error, got a key")
	}
}

// TestCacheRoundTrip pins Get/Put, including the empty-result hit (a
// clean package is a hit with zero findings, not a miss), position
// fidelity (suppression matching downstream needs exact file/line), and
// directive-usage fidelity (staleignore after a warm run needs the used
// flags back byte-for-byte).
func TestCacheRoundTrip(t *testing.T) {
	cache, err := NewCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := cache.Get("absent"); ok {
		t.Fatal("hit on a key never stored")
	}
	in := &pkgResult{
		findings: []Finding{{
			Pos:      token.Position{Filename: "/x/y.go", Offset: 120, Line: 9, Column: 3},
			Analyzer: "walltime",
			Message:  "msg with \"quotes\" and — unicode",
		}},
		malformed: []Finding{{
			Pos:      token.Position{Filename: "/x/y.go", Offset: 10, Line: 2, Column: 1},
			Analyzer: "suppress",
			Message:  "empty eslurmlint directive",
		}},
		directives: []directiveState{
			{
				key:  suppression{file: "/x/y.go", line: 4, analyzer: "detrand"},
				pos:  token.Position{Filename: "/x/y.go", Offset: 40, Line: 4, Column: 2},
				used: true,
			},
			{
				key: suppression{file: "/x/y.go", line: 8, analyzer: "walltime"},
				pos: token.Position{Filename: "/x/y.go", Offset: 90, Line: 8, Column: 2},
			},
		},
	}
	if err := cache.Put("k1", in); err != nil {
		t.Fatal(err)
	}
	out, ok := cache.Get("k1")
	if !ok || len(out.findings) != 1 || out.findings[0] != in.findings[0] {
		t.Fatalf("findings round trip mismatch: ok=%v out=%+v", ok, out)
	}
	if len(out.malformed) != 1 || out.malformed[0] != in.malformed[0] {
		t.Fatalf("malformed round trip mismatch: %+v", out.malformed)
	}
	if len(out.directives) != 2 || out.directives[0] != in.directives[0] || out.directives[1] != in.directives[1] {
		t.Fatalf("directive round trip mismatch (used flags must survive): %+v", out.directives)
	}
	if err := cache.Put("k2", &pkgResult{}); err != nil {
		t.Fatal(err)
	}
	if out, ok := cache.Get("k2"); !ok || len(out.findings) != 0 || len(out.directives) != 0 {
		t.Fatalf("empty entry: ok=%v out=%+v, want hit with zero findings", ok, out)
	}
	// Corrupt entry: must degrade to a miss, never a panic or bad data.
	if err := os.WriteFile(cache.path("k3"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := cache.Get("k3"); ok {
		t.Error("corrupt entry reported as a hit")
	}
}

// TestCacheStaleignoreWarmRun is the regression test for the
// staleignore × cache interaction: a load-bearing //eslurmlint:ignore in
// a cached package must not be reported stale on the warm run, and a
// genuinely stale directive must be reported on cold and warm runs
// alike. Output must be byte-identical across cache states.
func TestCacheStaleignoreWarmRun(t *testing.T) {
	root := t.TempDir()
	files := map[string]string{
		"go.mod": "module tmpmod\n\ngo 1.22\n",
		"sim/sim.go": `//eslurmlint:testpath tmpmod/internal/sim

// Package sim is a cache-staleignore fixture.
package sim

import "time"

// Used suppression: silences a real walltime finding.
func Wall() time.Time {
	//eslurmlint:ignore walltime fixture timestamp, never reaches a simulation
	return time.Now()
}

// Stale suppression: there is no walltime finding here.
func Quiet() int {
	//eslurmlint:ignore walltime nothing to silence, must be reported stale
	return 1
}
`,
	}
	for name, content := range files {
		path := filepath.Join(root, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	cache, err := NewCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	analyzers := []*Analyzer{WalltimeAnalyzer, StaleignoreAnalyzer}
	runOnce := func() []Finding {
		l, p := loadTemp(t, root, "sim")
		if tp, ok := testPathOverride(p); ok {
			p.ImportPath = tp
		}
		return RunParallel([]*Package{p}, analyzers, RunOptions{Cache: cache, Lookup: l.Loaded})
	}

	cold := runOnce()
	h0, m0 := cache.Stats()
	warm := runOnce()
	h1, _ := cache.Stats()
	if h1 == h0 {
		t.Fatalf("second run did not hit the cache (hits %d -> %d, misses %d)", h0, h1, m0)
	}

	render := func(fs []Finding) string {
		var b strings.Builder
		for _, f := range fs {
			b.WriteString(f.String())
			b.WriteString("\n")
		}
		return b.String()
	}
	if render(cold) != render(warm) {
		t.Fatalf("warm-cache output diverged from cold run:\ncold:\n%swarm:\n%s", render(cold), render(warm))
	}
	if len(warm) != 1 {
		t.Fatalf("want exactly the one stale-directive finding, got %d:\n%s", len(warm), render(warm))
	}
	f := warm[0]
	if f.Analyzer != "staleignore" || f.Pos.Line != 16 {
		t.Fatalf("want staleignore at line 16 (the stale directive), got %s", f)
	}
}
