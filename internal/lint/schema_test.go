package lint

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestSchemaVersionTracksAnalyzers is the guard the SchemaVersion
// contract promises: registering a new analyzer without bumping the
// version's count component fails here, in the same package the
// registration happens.
func TestSchemaVersionTracksAnalyzers(t *testing.T) {
	n := len(Analyzers())
	if !schemaConsistent(SchemaVersion, n) {
		t.Fatalf("SchemaVersion %q does not end in the analyzer count .%d; bump it in the change that touched the registry", SchemaVersion, n)
	}
	// The check must actually discriminate: simulating one more
	// registered analyzer has to fail, or the guard is vacuous.
	if schemaConsistent(SchemaVersion, n+1) {
		t.Fatalf("schemaConsistent(%q, %d) accepted a count the version does not carry", SchemaVersion, n+1)
	}
}

// TestSchemaVersionConsumers pins that both downstream consumers really
// derive from the one const: the cache key prefix and the SARIF
// driver's tool.version.
func TestSchemaVersionConsumers(t *testing.T) {
	if !strings.Contains(cacheSchema, SchemaVersion) {
		t.Fatalf("cacheSchema %q does not embed SchemaVersion %q", cacheSchema, SchemaVersion)
	}
	var buf bytes.Buffer
	if err := WriteSARIF(&buf, nil, Analyzers(), "."); err != nil {
		t.Fatal(err)
	}
	var log struct {
		Runs []struct {
			Tool struct {
				Driver struct {
					Name    string `json:"name"`
					Version string `json:"version"`
				} `json:"driver"`
			} `json:"tool"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatal(err)
	}
	if len(log.Runs) != 1 || log.Runs[0].Tool.Driver.Version != SchemaVersion {
		t.Fatalf("SARIF driver version = %+v, want %q", log.Runs, SchemaVersion)
	}
}
