package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatsumAnalyzer flags floating-point accumulation inside `range` over
// a map, under internal/. Float addition is not associative: summing the
// same values in a different order changes the low-order bits, and Go
// randomizes map iteration order per run — so a float reduction in map
// order produces a different result every run even when every input is
// deterministic. maporder misses this case on purpose (its integer
// sibling really is commutative; see maporder_good.Sum), but the float
// version silently breaks bit-for-bit metric reproducibility. The fix is
// the sorted-keys idiom: collect the keys, sort, accumulate in sorted
// order.
var FloatsumAnalyzer = &Analyzer{
	Name: "floatsum",
	Doc:  "flag float accumulation in map-iteration order under internal/ (FP addition is not associative)",
	Run:  runFloatsum,
}

// floatsumOps are the compound assignment operators whose repeated
// application is order-sensitive on floats.
var floatsumOps = map[token.Token]bool{
	token.ADD_ASSIGN: true, token.SUB_ASSIGN: true, token.MUL_ASSIGN: true,
}

func runFloatsum(p *Package) []Finding {
	if !underInternal(p.ImportPath) {
		return nil
	}
	var out []Finding
	seen := make(map[token.Pos]bool)
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := p.Info.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			ast.Inspect(rs.Body, func(m ast.Node) bool {
				as, ok := m.(*ast.AssignStmt)
				if !ok || seen[as.Pos()] {
					return true
				}
				if fa := floatAccum(p, as); fa != "" {
					seen[as.Pos()] = true
					out = append(out, Finding{p.Fset.Position(as.Pos()), "floatsum",
						"float accumulation into " + fa + " in map-iteration order; FP addition is not associative, so the sum's bits differ run to run — collect and sort the keys, then accumulate in sorted order"})
				}
				return true
			})
			return true
		})
	}
	return out
}

// floatAccum reports the description of a float-typed accumulation target
// if the assignment is an order-sensitive reduction (x += v, x -= v,
// x *= v, or x = x + v), else "".
func floatAccum(p *Package, as *ast.AssignStmt) string {
	if len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return ""
	}
	lhs := as.Lhs[0]
	if !isFloat(p.Info.TypeOf(lhs)) {
		return ""
	}
	if floatsumOps[as.Tok] {
		return exprLabel(lhs)
	}
	if as.Tok == token.ASSIGN {
		// x = x + v (or v + x): the expanded form of the same reduction.
		if bin, ok := as.Rhs[0].(*ast.BinaryExpr); ok &&
			(bin.Op == token.ADD || bin.Op == token.SUB || bin.Op == token.MUL) {
			if sameExpr(lhs, bin.X) || sameExpr(lhs, bin.Y) {
				return exprLabel(lhs)
			}
		}
	}
	return ""
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// exprLabel renders the accumulator for the message: an identifier's
// name, or a generic description for field/index targets.
func exprLabel(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprLabel(x.X) + "." + x.Sel.Name
	case *ast.IndexExpr:
		return exprLabel(x.X) + "[...]"
	case *ast.StarExpr:
		return exprLabel(x.X)
	}
	return "the accumulator"
}

// sameExpr is a shallow structural comparison, enough to recognize the
// `x = x + v` pattern for identifier and selector accumulators.
func sameExpr(a, b ast.Expr) bool {
	switch av := a.(type) {
	case *ast.Ident:
		bv, ok := b.(*ast.Ident)
		return ok && av.Name == bv.Name
	case *ast.SelectorExpr:
		bv, ok := b.(*ast.SelectorExpr)
		return ok && av.Sel.Name == bv.Sel.Name && sameExpr(av.X, bv.X)
	}
	return false
}
