package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"
)

// TaintAnalyzer is the cross-function nondeterminism dataflow pass. The
// intra-function analyzers (walltime, detrand, maporder) catch a source
// *used* at its call site; this pass catches the value that escapes —
// returned from a helper, threaded through two more calls, and only then
// handed to the event heap or a metrics accumulator, where it silently
// breaks same-seed reproducibility.
//
// Sources (where nondeterminism enters):
//   - wall-clock reads: time.Now, time.Since, time.Until
//   - the global math/rand generator (rand.Intn, rand.Float64, ...)
//   - process environment: os.Getenv, os.LookupEnv, os.Environ
//   - map iteration order: the key/value variables of a `range` over a map
//
// Sinks (where nondeterminism becomes irreversible):
//   - simnet scheduling: Schedule/After/Every/RunUntil/Rand methods on a
//     type named Engine (matched structurally, like evalloc, so testdata
//     fakes and engine wrappers are covered) — a tainted time perturbs
//     the event heap and therefore the trace digest; a tainted Rand label
//     selects a nondeterministic stream
//   - reported metrics: any call into a package ending in internal/stats
//     (every experiment table and trace-digest figure is accumulated
//     through stats) — a tainted sample corrupts every downstream number
//
// The analysis is summary-based: each function body is summarized once
// per fixpoint round (does it return a source-derived value? do any of
// its parameters reach a sink?), and summaries compose across the call
// graph, so a taint chain may cross any number of function and package
// boundaries. Findings are reported at the call site where the tainted
// value is handed to the sink-reaching call, with the full chain —
// source position, intermediate calls, sink position — in the message.
var TaintAnalyzer = &Analyzer{
	Name:      "taint",
	Doc:       "track wall-clock/global-rand/env/map-order values across function boundaries into scheduling and metric sinks",
	RunModule: runTaint,
}

// taintSchedulers are the Engine methods whose arguments feed the event
// heap (or, for Rand, stream selection).
var taintSchedulers = map[string]bool{
	"Schedule": true, "After": true, "Every": true, "RunUntil": true, "Rand": true,
}

// taintChain records one witness path from a source to the value under
// discussion: where nondeterminism entered and every call boundary it
// crossed since. Chains are first-wins: once a variable or summary is
// tainted, its witness never changes, which keeps the fixpoint monotone.
type taintChain struct {
	srcDesc string
	srcPos  token.Position
	hops    []taintHop
}

// taintHop is one crossed call boundary on a chain.
type taintHop struct {
	fn  string
	pos token.Position
}

func (c *taintChain) extend(fn string, pos token.Position) *taintChain {
	hops := make([]taintHop, len(c.hops), len(c.hops)+1)
	copy(hops, c.hops)
	return &taintChain{c.srcDesc, c.srcPos, append(hops, taintHop{fn, pos})}
}

// sinkPath is the sink-side mirror of a taintChain: from a parameter's
// entry into a function to the sink call it reaches, possibly through
// further callees.
type sinkPath struct {
	sinkDesc string
	sinkPos  token.Position
	hops     []taintHop
}

func (s *sinkPath) prepend(fn string, pos token.Position) *sinkPath {
	hops := make([]taintHop, 0, len(s.hops)+1)
	hops = append(hops, taintHop{fn, pos})
	return &sinkPath{s.sinkDesc, s.sinkPos, append(hops, s.hops...)}
}

// flow is the dataflow value for one expression or variable: the source
// chain that taints it (nil if clean) and the bitmask of enclosing-
// function parameters it may carry.
type flow struct {
	chain  *taintChain
	params uint64
}

func (f flow) empty() bool { return f.chain == nil && f.params == 0 }

func (f flow) union(g flow) flow {
	out := f
	if out.chain == nil {
		out.chain = g.chain
	}
	out.params |= g.params
	return out
}

// taintFunc is one analyzable function body plus its evolving summary.
type taintFunc struct {
	pkg      *Package
	decl     *ast.FuncDecl
	name     string // qualified for chain messages, e.g. "sched.pickNode"
	paramIdx map[*types.Var]int
	// Summary, grown monotonically across fixpoint rounds:
	retChain  *taintChain       // a return value derives from an internal source
	paramRet  uint64            // param i flows to a return value
	paramSink map[int]*sinkPath // param i reaches a sink
}

func runTaint(pkgs []*Package) []Finding {
	tw := &taintWorld{
		funcs: make(map[*types.Func]*taintFunc),
	}
	// ordered mirrors the map in source order, so summary rounds and the
	// findings pass are deterministic regardless of map iteration.
	var ordered []*taintFunc
	for _, p := range pkgs {
		for _, file := range p.Files {
			for _, d := range file.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := p.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				tf := newTaintFunc(p, fd, obj)
				tw.funcs[obj] = tf
				ordered = append(ordered, tf)
			}
		}
	}
	// Summary fixpoint: every update is first-wins or a bitmask union, so
	// the state grows monotonically and the loop terminates.
	for changed := true; changed; {
		changed = false
		for _, tf := range ordered {
			if tw.summarize(tf) {
				changed = true
			}
		}
	}
	// Findings pass, with summaries final.
	var out []Finding
	seen := make(map[string]bool)
	for _, tf := range ordered {
		p := tf.pkg
		if strings.HasSuffix(p.ImportPath, "internal/simnet") || strings.HasSuffix(p.ImportPath, "internal/stats") {
			continue // the sink implementations themselves
		}
		for _, f := range tw.analyze(tf, true) {
			key := f.Pos.Filename + fmt.Sprint(f.Pos.Line, f.Pos.Column) + f.Message
			if !seen[key] {
				seen[key] = true
				out = append(out, f)
			}
		}
	}
	return out
}

type taintWorld struct {
	funcs map[*types.Func]*taintFunc
}

func newTaintFunc(p *Package, fd *ast.FuncDecl, obj *types.Func) *taintFunc {
	tf := &taintFunc{
		pkg:       p,
		decl:      fd,
		name:      qualifiedFuncName(obj),
		paramIdx:  make(map[*types.Var]int),
		paramSink: make(map[int]*sinkPath),
	}
	i := 0
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			for _, name := range field.Names {
				if v, ok := p.Info.Defs[name].(*types.Var); ok {
					tf.paramIdx[v] = i
				}
				i++
			}
			if len(field.Names) == 0 {
				i++
			}
		}
	}
	return tf
}

// qualifiedFuncName renders pkg.Func or Type.Method for chain messages.
func qualifiedFuncName(fn *types.Func) string {
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		rt := sig.Recv().Type()
		if ptr, ok := rt.(*types.Pointer); ok {
			rt = ptr.Elem()
		}
		if named, ok := rt.(*types.Named); ok {
			return named.Obj().Name() + "." + fn.Name()
		}
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + fn.Name()
	}
	return fn.Name()
}

// summarize recomputes tf's summary from its body and current callee
// summaries; reports whether anything was added.
func (tw *taintWorld) summarize(tf *taintFunc) bool {
	before := summarySignature(tf)
	tw.analyze(tf, false)
	return summarySignature(tf) != before
}

func summarySignature(tf *taintFunc) string {
	keys := make([]byte, 0, 8)
	for i := 0; i < 64; i++ {
		if tf.paramSink[i] != nil {
			keys = append(keys, byte(i))
		}
	}
	return fmt.Sprint(tf.retChain != nil, tf.paramRet, keys)
}

// analyze runs the intra-function dataflow for tf: it propagates flows
// through local variables to a fixpoint, updates the function summary
// from return statements and sink reachability, and (when report is set)
// emits findings where tainted values meet sinks.
func (tw *taintWorld) analyze(tf *taintFunc, report bool) []Finding {
	st := &taintState{
		tw:        tw,
		tf:        tf,
		vars:      make(map[*types.Var]flow),
		sanitized: sortSanitized(tf.pkg, tf.decl.Body),
	}
	// Local fixpoint: assignments inside loops can read variables whose
	// taint is only established on a later statement walk.
	for changed := true; changed; {
		changed = false
		st.changed = &changed
		ast.Inspect(tf.decl.Body, st.propagateStmt)
	}
	st.changed = nil
	// Returns → summary. Returns inside nested func literals belong to
	// the literal, not tf, so walk with literal-depth tracking.
	tw.collectReturns(tf, st)
	// Sinks: one more walk, now emitting findings and paramSink entries.
	st.report = report
	ast.Inspect(tf.decl.Body, st.checkSinks)
	return st.findings
}

type taintState struct {
	tw        *taintWorld
	tf        *taintFunc
	vars      map[*types.Var]flow
	sanitized map[*types.Var]bool
	changed   *bool
	report    bool
	findings  []Finding
}

// setVar merges a flow into a variable, first-wins for chains. Map-order
// taint is dropped when the variable is sorted somewhere in this function
// (the sanitized set is fixed before the fixpoint, keeping it monotone).
func (st *taintState) setVar(v *types.Var, f flow) {
	if v == nil {
		return
	}
	if f.chain != nil && f.chain.srcDesc == mapOrderSrc && st.sanitized[v] {
		f.chain = nil
	}
	if f.empty() {
		return
	}
	cur := st.vars[v]
	merged := cur.union(f)
	if merged != cur {
		st.vars[v] = merged
		if st.changed != nil {
			*st.changed = true
		}
	}
}

func (st *taintState) lhsVar(e ast.Expr) *types.Var {
	switch x := e.(type) {
	case *ast.Ident:
		if v, ok := st.tf.pkg.Info.Defs[x].(*types.Var); ok {
			return v
		}
		if v, ok := st.tf.pkg.Info.Uses[x].(*types.Var); ok {
			return v
		}
	case *ast.IndexExpr:
		// results[i] = tainted ⇒ treat the container as tainted.
		return st.lhsVar(x.X)
	case *ast.StarExpr:
		return st.lhsVar(x.X)
	}
	return nil
}

// propagateStmt is the assignment/range walker for the local fixpoint.
func (st *taintState) propagateStmt(n ast.Node) bool {
	switch s := n.(type) {
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 && len(s.Lhs) > 1 {
			// Multi-value: v1, v2 := f() — the call's flow reaches every
			// lhs (coarse but safe).
			f := st.exprFlow(s.Rhs[0])
			for _, lhs := range s.Lhs {
				st.setVar(st.lhsVar(lhs), f)
			}
			return true
		}
		for i, rhs := range s.Rhs {
			if i < len(s.Lhs) {
				st.setVar(st.lhsVar(s.Lhs[i]), st.exprFlow(rhs))
			}
		}
	case *ast.GenDecl:
		for _, spec := range s.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for i, name := range vs.Names {
				if i < len(vs.Values) {
					if v, ok := st.tf.pkg.Info.Defs[name].(*types.Var); ok {
						st.setVar(v, st.exprFlow(vs.Values[i]))
					}
				}
			}
		}
	case *ast.RangeStmt:
		t := st.tf.pkg.Info.TypeOf(s.X)
		if t != nil {
			if _, isMap := t.Underlying().(*types.Map); isMap {
				pos := st.tf.pkg.Fset.Position(s.Pos())
				mapFlow := flow{chain: &taintChain{srcDesc: "map iteration order", srcPos: pos}}
				st.setVar(st.rangeVar(s.Key), mapFlow)
				st.setVar(st.rangeVar(s.Value), mapFlow)
			} else if f := st.exprFlow(s.X); !f.empty() {
				// Ranging an ordered collection forwards its taint to the
				// element variable (indices stay clean).
				st.setVar(st.rangeVar(s.Value), f)
			}
		}
	}
	return true
}

func (st *taintState) rangeVar(e ast.Expr) *types.Var {
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	if v, ok := st.tf.pkg.Info.Defs[id].(*types.Var); ok {
		return v
	}
	if v, ok := st.tf.pkg.Info.Uses[id].(*types.Var); ok {
		return v
	}
	return nil
}

// exprFlow evaluates the dataflow value of an expression.
// mapOrderSrc is the srcDesc of the map-iteration source; it is the one
// source a sort call can sanitize.
const mapOrderSrc = "map iteration order"

// sortSanitized collects the variables the function passes to a
// sort/slices call anywhere in its body. A slice built in map order and
// then sorted by a total order is deterministic (the sorted-keys idiom
// maporder also recognizes), so map-order taint is dropped when it is
// assigned into a sanitized variable. Value-level sources (wall clock,
// global rand, env) survive sorting — ordering deterministic garbage
// does not make it clean.
func sortSanitized(p *Package, body *ast.BlockStmt) map[*types.Var]bool {
	out := make(map[*types.Var]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(p, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if path := fn.Pkg().Path(); path != "sort" && path != "slices" {
			return true
		}
		for _, a := range call.Args {
			ast.Inspect(a, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok {
					if v, ok := p.Info.Uses[id].(*types.Var); ok {
						out[v] = true
					}
				}
				return true
			})
		}
		return true
	})
	return out
}

func (st *taintState) exprFlow(e ast.Expr) flow {
	p := st.tf.pkg
	switch x := e.(type) {
	case *ast.Ident:
		if v, ok := p.Info.Uses[x].(*types.Var); ok {
			f := st.vars[v]
			if i, isParam := st.tf.paramIdx[v]; isParam {
				f.params |= 1 << uint(i)
			}
			return f
		}
	case *ast.CallExpr:
		return st.callFlow(x)
	case *ast.BinaryExpr:
		return st.exprFlow(x.X).union(st.exprFlow(x.Y))
	case *ast.ParenExpr:
		return st.exprFlow(x.X)
	case *ast.UnaryExpr:
		return st.exprFlow(x.X)
	case *ast.StarExpr:
		return st.exprFlow(x.X)
	case *ast.SelectorExpr:
		// Field access on a tainted struct stays tainted; package
		// selectors (pkg.Var) resolve via the Ident case through X.
		return st.exprFlow(x.X)
	case *ast.IndexExpr:
		return st.exprFlow(x.X).union(st.exprFlow(x.Index))
	case *ast.SliceExpr:
		return st.exprFlow(x.X)
	case *ast.TypeAssertExpr:
		return st.exprFlow(x.X)
	case *ast.CompositeLit:
		var f flow
		for _, el := range x.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				f = f.union(st.exprFlow(kv.Value))
			} else {
				f = f.union(st.exprFlow(el))
			}
		}
		return f
	}
	return flow{}
}

// callFlow computes the flow of a call's result: source calls start a
// chain, summarized module functions compose precisely, type conversions
// and unknown callees (stdlib, interfaces, func values) forward the union
// of their operands.
func (st *taintState) callFlow(call *ast.CallExpr) flow {
	p := st.tf.pkg
	// Type conversion: float64(x), time.Duration(x), ...
	if tv, ok := p.Info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			return st.exprFlow(call.Args[0])
		}
		return flow{}
	}
	if id, ok := call.Fun.(*ast.Ident); ok {
		if _, isBuiltin := p.Info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "append", "len", "cap", "min", "max":
				// Derived from the operands: len(tainted) is tainted.
				var f flow
				for _, a := range call.Args {
					f = f.union(st.exprFlow(a))
				}
				return f
			default: // make, new, ... produce fresh deterministic values
				return flow{}
			}
		}
	}
	fn := calleeFunc(p, call)
	if desc := sourceDesc(fn); desc != "" {
		return flow{chain: &taintChain{srcDesc: desc, srcPos: p.Fset.Position(call.Pos())}}
	}
	pos := p.Fset.Position(call.Pos())
	if fn != nil {
		if callee, ok := st.tw.funcs[fn]; ok {
			var f flow
			if callee.retChain != nil {
				f.chain = callee.retChain.extend(callee.name, pos)
			}
			if callee.paramRet != 0 {
				for i, a := range call.Args {
					if callee.paramRet&(1<<uint(i)) == 0 {
						continue
					}
					af := st.exprFlow(a)
					if f.chain == nil && af.chain != nil {
						f.chain = af.chain.extend(callee.name, pos)
					}
					f.params |= af.params
				}
			}
			return f
		}
	}
	// Unknown callee: conservatively forward operands (this is what makes
	// start.Round(...), fmt.Sprintf(tainted), strconv on tainted work).
	var f flow
	for _, a := range call.Args {
		f = f.union(st.exprFlow(a))
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok && !isPkgSelector(p, sel) {
		// Method on a tainted receiver (e.g. wall.Seconds()).
		f = f.union(st.exprFlow(sel.X))
	}
	return f
}

// isPkgSelector reports whether sel is pkg.Name rather than value.Method.
func isPkgSelector(p *Package, sel *ast.SelectorExpr) bool {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	_, isPkg := p.Info.Uses[id].(*types.PkgName)
	return isPkg
}

// sourceDesc classifies a callee as a nondeterminism source. Only
// package-level functions qualify: methods on a threaded *rand.Rand
// (rng.Intn, rng.ExpFloat64, ...) are the sanctioned seeded-stream
// pattern, not the global generator, even though they live in math/rand.
func sourceDesc(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return ""
	}
	switch fn.Pkg().Path() {
	case "time":
		switch fn.Name() {
		case "Now", "Since", "Until":
			return "time." + fn.Name()
		}
	case "math/rand":
		if detrandGlobal[fn.Name()] {
			return "rand." + fn.Name()
		}
	case "os":
		switch fn.Name() {
		case "Getenv", "LookupEnv", "Environ":
			return "os." + fn.Name()
		}
	}
	return ""
}

// sinkDesc classifies a callee as a direct sink; empty string if not.
func sinkDesc(fn *types.Func) string {
	if fn == nil {
		return ""
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		rt := sig.Recv().Type()
		if ptr, ok := rt.(*types.Pointer); ok {
			rt = ptr.Elem()
		}
		if named, ok := rt.(*types.Named); ok && named.Obj().Name() == "Engine" && taintSchedulers[fn.Name()] {
			return "Engine." + fn.Name()
		}
	}
	if fn.Pkg() != nil && strings.HasSuffix(fn.Pkg().Path(), "internal/stats") {
		return "stats." + fn.Name()
	}
	return ""
}

// collectReturns folds return statements into tf's summary, skipping
// returns that belong to nested function literals.
func (tw *taintWorld) collectReturns(tf *taintFunc, st *taintState) {
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		switch s := n.(type) {
		case *ast.FuncLit:
			return // its returns are not tf's
		case *ast.ReturnStmt:
			for _, res := range s.Results {
				f := st.exprFlow(res)
				if tf.retChain == nil && f.chain != nil {
					tf.retChain = f.chain
				}
				tf.paramRet |= f.params
			}
		}
		for _, c := range children(n) {
			walk(c)
		}
	}
	walk(tf.decl.Body)
}

// checkSinks inspects every call: a tainted argument meeting a sink (or
// a sink-reaching parameter of a summarized callee) yields a finding; a
// parameter-carrying argument extends tf's own paramSink summary.
func (st *taintState) checkSinks(n ast.Node) bool {
	call, ok := n.(*ast.CallExpr)
	if !ok {
		return true
	}
	p := st.tf.pkg
	fn := calleeFunc(p, call)
	callPos := p.Fset.Position(call.Pos())
	if desc := sinkDesc(fn); desc != "" {
		for _, a := range call.Args {
			f := st.exprFlow(a)
			if f.chain != nil && st.report {
				st.emit(f.chain, &sinkPath{sinkDesc: desc, sinkPos: callPos}, callPos)
			}
			if f.params != 0 {
				for i := 0; i < 64; i++ {
					if f.params&(1<<uint(i)) != 0 && st.tf.paramSink[i] == nil {
						st.tf.paramSink[i] = &sinkPath{sinkDesc: desc, sinkPos: callPos}
					}
				}
			}
		}
		return true
	}
	if fn != nil {
		if callee, ok := st.tw.funcs[fn]; ok && len(callee.paramSink) > 0 {
			for i, a := range call.Args {
				sp := callee.paramSink[i]
				if sp == nil {
					continue
				}
				f := st.exprFlow(a)
				if f.chain != nil && st.report {
					st.emit(f.chain, sp.prepend(callee.name, callPos), callPos)
				}
				if f.params != 0 {
					ext := sp.prepend(callee.name, callPos)
					for j := 0; j < 64; j++ {
						if f.params&(1<<uint(j)) != 0 && st.tf.paramSink[j] == nil {
							st.tf.paramSink[j] = ext
						}
					}
				}
			}
		}
	}
	return true
}

// emit renders the full source→hops→sink chain into one finding at the
// call site where the tainted value is handed over.
func (st *taintState) emit(c *taintChain, sp *sinkPath, at token.Position) {
	var b strings.Builder
	fmt.Fprintf(&b, "nondeterministic value from %s (%s) reaches %s (%s)",
		c.srcDesc, shortPos(c.srcPos), sp.sinkDesc, shortPos(sp.sinkPos))
	hops := append(append([]taintHop{}, c.hops...), sp.hops...)
	if len(hops) > 0 {
		parts := make([]string, len(hops))
		for i, h := range hops {
			parts[i] = fmt.Sprintf("%s (%s)", h.fn, shortPos(h.pos))
		}
		fmt.Fprintf(&b, " via %s", strings.Join(parts, " -> "))
	}
	b.WriteString("; same-seed runs diverge — derive the value from the engine seed or virtual clock, or suppress with a reason")
	st.findings = append(st.findings, Finding{at, "taint", b.String()})
}

func shortPos(pos token.Position) string {
	return fmt.Sprintf("%s:%d", filepath.Base(pos.Filename), pos.Line)
}
