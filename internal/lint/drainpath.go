package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"eslurm/internal/lint/cfg"
)

// DrainpathAnalyzer enforces the exactly-once completion-callback
// contract in the drain machinery (internal/satellite and
// internal/reconcile): a func-typed parameter named like a completion
// hook must be invoked exactly once on every path out of the function.
// Zero invocations strand the caller waiting forever; two demote an
// already-settled satellite again — the double-demote bug class the
// drainRec generation checks exist to prevent. Paths are excused when
// the callback is proven nil (the caller opted out) or the function
// returns a freshly constructed error (the operation never started).
// A parameter that escapes — stored, captured, returned, or passed to a
// helper not itself proven exactly-once — transfers the obligation to
// its new owner and is not tracked further.
var DrainpathAnalyzer = &Analyzer{
	Name: "drainpath",
	Doc:  "require completion callbacks in satellite/reconcile to be invoked exactly once per path",
	Run:  runDrainpath,
}

func runDrainpath(p *Package) []Finding {
	if !strings.HasSuffix(p.ImportPath, "internal/satellite") &&
		!strings.HasSuffix(p.ImportPath, "internal/reconcile") {
		return nil
	}
	once := invokesOnceSet(p)
	var out []Finding
	for _, fb := range flowBodies(p) {
		for _, v := range funcParams(fb.p, fb.ftyp) {
			escaped, res := drainScan(fb, v, once)
			if escaped || !res.reached {
				continue
			}
			if res.many != nil {
				out = append(out, Finding{fb.p.Fset.Position(v.Pos()), "drainpath",
					fmt.Sprintf("callback %q in %s may be invoked more than once on path: %s; the contract is exactly-once — a second call re-settles an already-settled drain (the double-demote bug class)",
						v.Name(), fb.name, res.many)})
				continue
			}
			if res.zero != nil {
				out = append(out, Finding{fb.p.Fset.Position(v.Pos()), "drainpath",
					fmt.Sprintf("callback %q in %s may never be invoked on path: %s; the contract is exactly-once — invoke it on every non-error path or nil-guard it",
						v.Name(), fb.name, res.zero)})
			}
		}
	}
	return out
}

// funcParams returns the named func-typed parameters of ftyp.
func funcParams(p *Package, ftyp *ast.FuncType) []*types.Var {
	var out []*types.Var
	if ftyp.Params == nil {
		return nil
	}
	for _, field := range ftyp.Params.List {
		for _, name := range field.Names {
			if name.Name == "_" {
				continue
			}
			v, ok := p.Info.Defs[name].(*types.Var)
			if !ok {
				continue
			}
			if _, ok := v.Type().Underlying().(*types.Signature); ok {
				out = append(out, v)
			}
		}
	}
	return out
}

// onceKey identifies "function fn invokes its idx-th parameter exactly
// once on every path" in the package-local summary set.
type onceKey struct {
	fn  *types.Func
	idx int
}

// invokesOnceSet computes the package-local exactly-once summaries by
// fixpoint: a helper qualifies when its own paths invoke the parameter
// exactly once — possibly by forwarding to an already-qualified helper —
// so wrapper chains compose. Iteration is in declaration order and the
// set only grows, so the fixpoint is deterministic.
func invokesOnceSet(p *Package) map[onceKey]bool {
	once := make(map[onceKey]bool)
	bodies := flowBodies(p)
	for changed := true; changed; {
		changed = false
		for _, fb := range bodies {
			if fb.decl == nil {
				continue // summaries are for named helpers only
			}
			fn, ok := p.Info.Defs[fb.decl.Name].(*types.Func)
			if !ok {
				continue
			}
			for _, v := range funcParams(p, fb.ftyp) {
				k := onceKey{fn, paramIndex(fb.ftyp, v)}
				if k.idx < 0 || once[k] {
					continue
				}
				escaped, res := drainScan(fb, v, once)
				if !escaped && res.reached && res.zero == nil && res.many == nil && res.one != nil {
					once[k] = true
					changed = true
				}
			}
		}
	}
	return once
}

// paramIndex returns v's flattened position in ftyp's parameter list.
func paramIndex(ftyp *ast.FuncType, v *types.Var) int {
	i := 0
	for _, field := range ftyp.Params.List {
		for _, name := range field.Names {
			if name.Pos() == v.Pos() {
				return i
			}
			i++
		}
	}
	return -1
}

// drainCount is the per-path invocation state for one callback param:
// first-wins witness traces for the pathsets with zero, one, and two-or-
// more invocations so far. A nil trace means no such path reaches here.
type drainCount struct {
	zero, one, many *cfg.Trace
}

type drainResult struct {
	zero, one, many *cfg.Trace
	reached         bool
}

// drainScan classifies every use of v and, if none escapes, runs the
// forward counting analysis over fb's CFG. escaped=true means the
// obligation left this frame and the param is not judged here.
func drainScan(fb funcBody, v *types.Var, once map[onceKey]bool) (escaped bool, res drainResult) {
	parents := parentMap(fb.body)
	bad := false
	ast.Inspect(fb.body, func(n ast.Node) bool {
		if bad {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok || useVar(fb.p, id) != v {
			return true
		}
		if drainUseKind(fb.p, parents, id, once) == drainEscape {
			bad = true
		}
		return true
	})
	if bad {
		return true, drainResult{}
	}
	g := fb.buildCFG()
	prob := cfg.Problem[drainCount]{
		Boundary: drainCount{zero: (*cfg.Trace)(nil).Extend("entry")},
		Transfer: func(b *cfg.Block, s drainCount) drainCount {
			out := s
			for _, n := range b.Nodes {
				for _, cp := range drainInvocationSites(fb.p, parents, n, v, once) {
					step := fmt.Sprintf("call (%s)", shortPosAt(fb.p.Fset, cp))
					if out.many == nil && out.one != nil {
						out.many = out.one.Extend(step)
					}
					if out.zero != nil {
						out.one = out.zero.Extend(step)
					} else {
						out.one = nil
					}
					out.zero = nil
				}
				if out.zero != nil && errorReturn(fb.p, n) {
					out.zero = nil // the operation never started; caller sees the error
				}
			}
			return out
		},
		EdgeTransfer: func(e *cfg.Edge, s drainCount) drainCount {
			out := s
			if nilGuardEdge(fb.p, e, v) {
				out.zero = nil // callback proven nil: caller opted out
			}
			out.zero = extendLive(out.zero, fb.p.Fset, e)
			out.one = extendLive(out.one, fb.p.Fset, e)
			out.many = extendLive(out.many, fb.p.Fset, e)
			return out
		},
		Join: func(dst, src drainCount) (drainCount, bool) {
			changed := false
			if src.zero != nil && dst.zero == nil {
				dst.zero, changed = src.zero, true
			}
			if src.one != nil && dst.one == nil {
				dst.one, changed = src.one, true
			}
			if src.many != nil && dst.many == nil {
				dst.many, changed = src.many, true
			}
			return dst, changed
		},
	}
	r := cfg.Forward(g, prob)
	exit := g.Exit.Index
	if !r.Reached[exit] {
		return false, drainResult{}
	}
	s := r.In[exit]
	return false, drainResult{zero: s.zero, one: s.one, many: s.many, reached: true}
}

// extendLive extends a trace across an edge only if the pathset is
// alive — extending nil would resurrect a pathset the analysis killed.
func extendLive(t *cfg.Trace, fset *token.FileSet, e *cfg.Edge) *cfg.Trace {
	if t == nil {
		return nil
	}
	return t.ExtendEdge(fset, e)
}

type drainUse int

const (
	drainNeutral drainUse = iota // comparison or qualified forwarding
	drainInvoke
	drainEscape
)

// drainUseKind classifies one identifier use of the callback.
func drainUseKind(p *Package, parents map[ast.Node]ast.Node, id *ast.Ident, once map[onceKey]bool) drainUse {
	if insideFuncLit(parents, id) {
		return drainEscape
	}
	switch par := parents[id].(type) {
	case *ast.BinaryExpr:
		if isComparison(par.Op) {
			return drainNeutral
		}
	case *ast.CallExpr:
		if par.Fun == ast.Expr(id) {
			return drainInvoke
		}
		for i, a := range par.Args {
			if a != ast.Expr(id) {
				continue
			}
			if fn := calleeFunc(p, par); fn != nil && once[onceKey{fn, i}] {
				return drainInvoke // forwarded to a proven exactly-once helper
			}
		}
	}
	return drainEscape
}

// drainInvocationSites returns the positions of invocations of v inside
// block node n, in source order.
func drainInvocationSites(p *Package, parents map[ast.Node]ast.Node, n ast.Node, v *types.Var, once map[onceKey]bool) []token.Pos {
	var sites []token.Pos
	ast.Inspect(n, func(m ast.Node) bool {
		id, ok := m.(*ast.Ident)
		if !ok || useVar(p, id) != v {
			return true
		}
		if drainUseKind(p, parents, id, once) == drainInvoke {
			sites = append(sites, id.Pos())
		}
		return true
	})
	return sites
}

// errorReturn reports whether n is a return statement handing back a
// freshly constructed error (fmt.Errorf or errors.New), the idiom for
// "the operation never started, nothing to call back about".
func errorReturn(p *Package, n ast.Node) bool {
	ret, ok := n.(*ast.ReturnStmt)
	if !ok {
		return false
	}
	for _, r := range ret.Results {
		found := false
		ast.Inspect(r, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(p, call)
			if fn == nil {
				return true
			}
			if fn.Name() == "Errorf" || (fn.Name() == "New" && fn.Pkg() != nil && fn.Pkg().Name() == "errors") {
				found = true
				return false
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}

// nilGuardEdge reports whether edge e proves callback v is nil: the
// `v == nil` branch taken or the `v != nil` branch not taken.
func nilGuardEdge(p *Package, e *cfg.Edge, v *types.Var) bool {
	be, ok := e.Cond.(*ast.BinaryExpr)
	if !ok {
		return false
	}
	isV := func(x ast.Expr) bool {
		id, ok := x.(*ast.Ident)
		return ok && useVar(p, id) == v
	}
	isNil := func(x ast.Expr) bool {
		id, ok := x.(*ast.Ident)
		return ok && id.Name == "nil"
	}
	if !(isV(be.X) && isNil(be.Y) || isV(be.Y) && isNil(be.X)) {
		return false
	}
	return (be.Op == token.EQL && e.Val) || (be.Op == token.NEQ && !e.Val)
}
