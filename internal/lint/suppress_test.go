package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// parseOnly builds a Package with syntax but no type info — enough for
// the suppression scanner, which never touches types.
func parseOnly(t *testing.T, src string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return &Package{ImportPath: "eslurm/internal/x", Fset: fset, Files: []*ast.File{f}}
}

var testKnownSet = map[string]bool{
	"walltime": true, "detrand": true, "maporder": true, "errdrop": true,
}

func TestSuppressionCoversSameAndNextLine(t *testing.T) {
	p := parseOnly(t, `package x

func f() {
	//eslurmlint:ignore detrand fixture stream, never reaches the simulation
	_ = 1
	_ = 2 //eslurmlint:ignore walltime decorative timestamp
}
`)
	sups, malformed := collectSuppressions(p, testKnownSet)
	if len(malformed) != 0 {
		t.Fatalf("unexpected malformed findings: %v", malformed)
	}
	mk := func(line int, analyzer string) Finding {
		f := Finding{Analyzer: analyzer}
		f.Pos.Filename = "x.go"
		f.Pos.Line = line
		return f
	}
	// Directive on line 4: covers lines 4 and 5 for detrand only.
	for _, tc := range []struct {
		f    Finding
		want bool
	}{
		{mk(4, "detrand"), true},
		{mk(5, "detrand"), true},
		{mk(6, "detrand"), false},
		{mk(5, "walltime"), false}, // wrong analyzer
		{mk(6, "walltime"), true},  // same-line form
		{mk(7, "walltime"), true},  // line-below form
		{mk(3, "detrand"), false},  // directives never reach upward
	} {
		if got := sups.covers(tc.f); got != tc.want {
			t.Errorf("covers(%s line %d) = %v, want %v", tc.f.Analyzer, tc.f.Pos.Line, got, tc.want)
		}
	}
}

func TestSuppressionMalformed(t *testing.T) {
	cases := []struct {
		src     string
		wantMsg string
	}{
		{"//eslurmlint:ignore detrand", "needs a reason"},
		{"//eslurmlint:ignore", "must name known analyzers"},
		{"//eslurmlint:ignore nosuchpass too clever", "must name known analyzers"},
		{"//eslurmlint:ignore detrand,nosuchpass both streams are fixtures", "must name known analyzers"},
		{"//eslurmlint:ignore detrand, walltime space after the comma splits the list", "must name known analyzers"},
		{"//eslurmlint:ignore detrand,,walltime empty element", "must name known analyzers"},
		{"//eslurmlint:ignore detrand \t ", "needs a reason"},
		{"//eslurmlint:disable detrand whatever", "unknown eslurmlint directive"},
		{"//eslurmlint:", "empty eslurmlint directive"},
	}
	for _, tc := range cases {
		p := parseOnly(t, "package x\n\n"+tc.src+"\nfunc f() {}\n")
		sups, malformed := collectSuppressions(p, testKnownSet)
		if len(sups) != 0 {
			t.Errorf("%q: malformed directive still registered a suppression", tc.src)
		}
		if len(malformed) != 1 {
			t.Errorf("%q: got %d malformed findings, want 1", tc.src, len(malformed))
			continue
		}
		if f := malformed[0]; f.Analyzer != "suppress" || !strings.Contains(f.Message, tc.wantMsg) {
			t.Errorf("%q: finding %q does not mention %q", tc.src, f.Message, tc.wantMsg)
		}
	}
}

// TestSuppressionCommaList covers the multiple-analyzers-on-one-line
// form: each named analyzer gets its own entry, scoped to the same two
// lines, and analyzers not on the list stay uncovered.
func TestSuppressionCommaList(t *testing.T) {
	p := parseOnly(t, `package x

//eslurmlint:ignore detrand,walltime fixture value, never reaches the simulation
func f() {}
`)
	sups, malformed := collectSuppressions(p, testKnownSet)
	if len(malformed) != 0 {
		t.Fatalf("unexpected malformed findings: %v", malformed)
	}
	if len(sups) != 2 {
		t.Fatalf("got %d suppression entries, want 2", len(sups))
	}
	for _, tc := range []struct {
		analyzer string
		line     int
		want     bool
	}{
		{"detrand", 3, true},
		{"detrand", 4, true},
		{"walltime", 3, true},
		{"walltime", 4, true},
		{"maporder", 4, false}, // not on the list
		{"detrand", 5, false},
	} {
		f := Finding{Analyzer: tc.analyzer}
		f.Pos.Filename = "x.go"
		f.Pos.Line = tc.line
		if got := sups.covers(f); got != tc.want {
			t.Errorf("covers(%s line %d) = %v, want %v", tc.analyzer, tc.line, got, tc.want)
		}
	}
}

// TestSuppressionLastLine pins the EOF edge: a directive on the final
// line of a file still registers and covers its own line (its line-below
// reach simply points past the file).
func TestSuppressionLastLine(t *testing.T) {
	src := "package x\n\nfunc f() {}\n\n//eslurmlint:ignore detrand trailing fixture note"
	p := parseOnly(t, src)
	sups, malformed := collectSuppressions(p, testKnownSet)
	if len(malformed) != 0 {
		t.Fatalf("unexpected malformed findings: %v", malformed)
	}
	f := Finding{Analyzer: "detrand"}
	f.Pos.Filename = "x.go"
	f.Pos.Line = 5
	if !sups.covers(f) {
		t.Fatal("last-line directive does not cover its own line")
	}
}

// TestSuppressionUsedTracking pins the staleignore bookkeeping: covers()
// marks the matched entry, and unused() only reports entries for enabled
// analyzers, never staleignore's own.
func TestSuppressionUsedTracking(t *testing.T) {
	p := parseOnly(t, `package x

//eslurmlint:ignore detrand used below
//eslurmlint:ignore walltime never matches anything
//eslurmlint:ignore errdrop analyzer not enabled this run
func f() {}
`)
	known := map[string]bool{"detrand": true, "walltime": true, "errdrop": true, "staleignore": true}
	sups, _ := collectSuppressions(p, known)
	f := Finding{Analyzer: "detrand"}
	f.Pos.Filename = "x.go"
	f.Pos.Line = 4
	if !sups.covers(f) {
		t.Fatal("detrand finding not covered")
	}
	enabled := map[string]bool{"detrand": true, "walltime": true, "staleignore": true}
	unused := sups.unused(enabled)
	if len(unused) != 1 || unused[0].analyzer != "walltime" || unused[0].line != 4 {
		t.Fatalf("unused = %+v, want the walltime directive on line 4 only", unused)
	}
}

func TestSuppressionTestpathTolerated(t *testing.T) {
	p := parseOnly(t, "//eslurmlint:testpath eslurm/cmd/x\npackage x\n")
	_, malformed := collectSuppressions(p, testKnownSet)
	if len(malformed) != 0 {
		t.Fatalf("testpath directive reported as malformed: %v", malformed)
	}
	if got, ok := testPathOverride(p); !ok || got != "eslurm/cmd/x" {
		t.Fatalf("testPathOverride = %q, %v", got, ok)
	}
}

// TestRunReportsMalformedSuppressions checks the pipeline surfaces parser
// findings even with no analyzers enabled.
func TestRunReportsMalformedSuppressions(t *testing.T) {
	p := parseOnly(t, "package x\n\n//eslurmlint:ignore detrand\nfunc f() {}\n")
	got := Run([]*Package{p}, nil)
	if len(got) != 1 || got[0].Analyzer != "suppress" {
		t.Fatalf("Run = %v, want one suppress finding", got)
	}
}
