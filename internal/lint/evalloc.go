package lint

import (
	"go/ast"
	"go/types"
)

// EvallocAnalyzer flags per-event closures that capture loop variables in
// the simulation core's hot paths. Scheduling a func literal from inside
// a loop allocates a fresh closure (and a capture cell per variable) on
// every iteration — in drivers that schedule tens of thousands of events
// this is a measurable slice of the kernel's allocation budget, and the
// capture is also the classic source of iteration-aliasing surprises.
// The fix is either to hoist the callback out of the loop or to bind an
// explicit per-iteration copy (`x := x`), which both silences the
// analyzer and documents the intent.
//
// Scope: internal/ packages only (cmd/ and examples/ favor clarity), and
// only callbacks handed to the simnet Engine's scheduling entry points
// (Schedule, After, Every), matched by method name and receiver type
// name so the rule keeps working on testdata fakes and future engine
// wrappers.
var EvallocAnalyzer = &Analyzer{
	Name: "evalloc",
	Doc:  "flag per-event closures capturing loop variables in internal/ hot paths",
	Run:  runEvalloc,
}

// evallocSchedulers are the Engine methods whose func arguments become
// per-event callbacks.
var evallocSchedulers = map[string]bool{
	"Schedule": true, "After": true, "Every": true,
}

func runEvalloc(p *Package) []Finding {
	if !underInternal(p.ImportPath) {
		return nil
	}
	w := &evallocWalker{p: p, loopVars: make(map[*types.Var]bool)}
	for _, f := range p.Files {
		w.walk(f)
	}
	return w.out
}

// evallocWalker descends the AST tracking which variables were declared
// by an enclosing for/range clause, and reports scheduler calls whose
// func literal arguments use any of them.
type evallocWalker struct {
	p        *Package
	loopVars map[*types.Var]bool
	out      []Finding
}

func (w *evallocWalker) walk(n ast.Node) {
	if n == nil {
		return
	}
	switch s := n.(type) {
	case *ast.RangeStmt:
		w.walk(s.X)
		added := w.define(s.Key, s.Value)
		w.walk(s.Body)
		w.undefine(added)
		return
	case *ast.ForStmt:
		var added []*types.Var
		if init, ok := s.Init.(*ast.AssignStmt); ok {
			added = w.define(init.Lhs...)
		}
		if s.Init != nil {
			w.walk(s.Init)
		}
		if s.Cond != nil {
			w.walk(s.Cond)
		}
		if s.Post != nil {
			w.walk(s.Post)
		}
		w.walk(s.Body)
		w.undefine(added)
		return
	case *ast.CallExpr:
		if len(w.loopVars) > 0 && w.isScheduler(s) {
			for _, arg := range s.Args {
				lit, ok := arg.(*ast.FuncLit)
				if !ok {
					continue
				}
				if v := w.captured(lit); v != nil {
					w.out = append(w.out, Finding{
						Pos:      w.p.Fset.Position(lit.Pos()),
						Analyzer: "evalloc",
						Message: "per-event closure captures loop variable " + v.Name() +
							"; each iteration allocates a fresh closure in the event hot path — hoist the callback or bind a copy (" +
							v.Name() + " := " + v.Name() + ")",
					})
				}
			}
		}
	}
	for _, c := range children(n) {
		w.walk(c)
	}
}

// define records the *types.Var objects the given expressions declare,
// returning the newly tracked ones so the caller can undefine them when
// the loop's scope ends.
func (w *evallocWalker) define(exprs ...ast.Expr) []*types.Var {
	var added []*types.Var
	for _, e := range exprs {
		id, ok := e.(*ast.Ident)
		if !ok {
			continue
		}
		if v, ok := w.p.Info.Defs[id].(*types.Var); ok && v != nil && !w.loopVars[v] {
			w.loopVars[v] = true
			added = append(added, v)
		}
	}
	return added
}

func (w *evallocWalker) undefine(vars []*types.Var) {
	for _, v := range vars {
		delete(w.loopVars, v)
	}
}

// isScheduler reports whether the call invokes a scheduling method
// (Schedule/After/Every) on a type named Engine.
func (w *evallocWalker) isScheduler(call *ast.CallExpr) bool {
	fn := calleeFunc(w.p, call)
	if fn == nil || !evallocSchedulers[fn.Name()] {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	rt := sig.Recv().Type()
	if ptr, ok := rt.(*types.Pointer); ok {
		rt = ptr.Elem()
	}
	named, ok := rt.(*types.Named)
	return ok && named.Obj().Name() == "Engine"
}

// captured returns the first tracked loop variable the func literal's
// body uses, in source order, or nil.
func (w *evallocWalker) captured(lit *ast.FuncLit) *types.Var {
	var found *types.Var
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if v, ok := w.p.Info.Uses[id].(*types.Var); ok && w.loopVars[v] {
			found = v
			return false
		}
		return true
	})
	return found
}

// children returns a node's immediate AST children.
func children(n ast.Node) []ast.Node {
	var out []ast.Node
	ast.Inspect(n, func(c ast.Node) bool {
		if c == n {
			return true
		}
		if c != nil {
			out = append(out, c)
		}
		return false
	})
	return out
}
