package lint

import (
	"runtime"
	"sync"
)

// RunOptions configures the parallel driver. The zero value is valid:
// GOMAXPROCS workers, no result cache.
type RunOptions struct {
	// Workers is the number of concurrent per-package analysis workers;
	// <= 0 means runtime.GOMAXPROCS(0).
	Workers int
	// Cache, when non-nil, stores per-package results (surviving findings
	// plus directive usage) keyed by a content hash of the package and its
	// module-local dependency closure, so unchanged packages skip analysis
	// on the next run.
	Cache *Cache
	// Lookup resolves a module-local import path to its loaded package;
	// the cache needs it to hash dependency closures. Typically
	// (*Loader).Loaded. Required when Cache is set.
	Lookup func(importPath string) *Package
}

// RunParallel is Run with the per-package analysis fanned out across a
// worker pool and (optionally) short-circuited by the result cache. The
// suppression pass, module-level analyzers, and final sort stay serial in
// assemble, and raw findings land in per-package slots indexed by input
// order, so the output is byte-identical to Run's regardless of worker
// count or cache state — the CLI and the golden tests both rely on that.
func RunParallel(pkgs []*Package, analyzers []*Analyzer, opts RunOptions) []Finding {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(pkgs) {
		workers = len(pkgs)
	}
	if workers <= 1 {
		raw := make([]*pkgResult, len(pkgs))
		for i, p := range pkgs {
			raw[i] = analyzeOne(p, analyzers, opts)
		}
		return assemble(pkgs, analyzers, raw)
	}
	raw := make([]*pkgResult, len(pkgs))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		//eslurmlint:ignore gosim the pool runs the linter itself, not a simulation; each worker writes only its own per-index result slot and assemble re-sorts deterministically
		go func() {
			defer wg.Done()
			for i := range jobs {
				raw[i] = analyzeOne(pkgs[i], analyzers, opts)
			}
		}()
	}
	for i := range pkgs {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return assemble(pkgs, analyzers, raw)
}

// analyzeOne runs the single-package analyzers for one package, consulting
// the cache first when configured. Cache failures (unreadable files, a
// missing lookup entry) silently fall back to a live run: the cache is an
// accelerator, never a correctness dependency.
func analyzeOne(p *Package, analyzers []*Analyzer, opts RunOptions) *pkgResult {
	if opts.Cache == nil {
		return runPerPackage(p, analyzers)
	}
	key, err := opts.Cache.Key(p, analyzers, opts.Lookup)
	if err != nil {
		return runPerPackage(p, analyzers)
	}
	if cached, ok := opts.Cache.Get(key); ok {
		return cached
	}
	out := runPerPackage(p, analyzers)
	opts.Cache.Put(key, out)
	return out
}
