package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// DetrandAnalyzer enforces that all randomness flows from explicitly
// seeded streams. Two rules:
//
//  1. Package-level math/rand functions (rand.Intn, rand.Float64, ...)
//     draw from the process-global generator, which is shared, seeded from
//     entropy since Go 1.20, and unreproducible. They are forbidden
//     everywhere; draw from a threaded *rand.Rand instead (typically a
//     labelled simnet Engine.Rand stream).
//
//  2. rand.NewSource / rand.New(rand.NewSource(...)) with a CONSTANT seed
//     creates an "un-threaded" stream: its identity is baked into the call
//     site rather than derived from the experiment seed, so two components
//     can silently share a stream and a config's seed knob stops covering
//     that randomness. Constant-seeded sources are forbidden outside
//     internal/simnet, whose Engine.Rand is the sanctioned stream
//     constructor (it hashes engine seed + label into the source seed).
//     Threading a seed variable (config field, parameter) is fine.
var DetrandAnalyzer = &Analyzer{
	Name: "detrand",
	Doc:  "forbid global math/rand state and constant-seeded rand sources outside simnet",
	Run:  runDetrand,
}

// detrandGlobal lists the math/rand package-level functions that use the
// shared global generator. New, NewSource, and NewZipf construct explicit
// state and are handled by the constant-seed rule instead.
var detrandGlobal = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "NormFloat64": true, "ExpFloat64": true,
	"Perm": true, "Shuffle": true, "Seed": true, "Read": true,
}

func runDetrand(p *Package) []Finding {
	inSimnet := strings.HasSuffix(p.ImportPath, "internal/simnet")
	var out []Finding
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			// Only package selectors: rand.Intn(...) — never r.Intn(...)
			// on a threaded *rand.Rand, whose methods share these names.
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			if _, ok := p.Info.Uses[id].(*types.PkgName); !ok {
				return true
			}
			fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "math/rand" {
				return true
			}
			pos := p.Fset.Position(sel.Pos())
			if detrandGlobal[fn.Name()] {
				out = append(out, Finding{pos, "detrand",
					"rand." + fn.Name() + " uses the global math/rand generator; draw from a seeded *rand.Rand stream (e.g. simnet Engine.Rand)"})
			}
			return true
		})
		if inSimnet {
			continue // Engine.Rand is the sanctioned stream constructor.
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := pkgFunc(p, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "math/rand" || fn.Name() != "NewSource" {
				return true
			}
			if len(call.Args) == 1 && p.Info.Types[call.Args[0]].Value != nil {
				out = append(out, Finding{p.Fset.Position(call.Pos()), "detrand",
					"rand.NewSource with a constant seed bakes stream identity into the call site; thread a seed from the experiment config (or use simnet Engine.Rand)"})
			}
			return true
		})
	}
	return out
}
