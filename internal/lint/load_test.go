package lint

import (
	"os"
	"path/filepath"
	"runtime"
	"testing"
)

// TestLoadBuildConstrainedTwins: a package split into tag-disjoint twin
// files (the internal/testutil RaceEnabled pattern) must load exactly one
// of them — without constraint evaluation both parse and the const is a
// redeclaration.
func TestLoadBuildConstrainedTwins(t *testing.T) {
	root := t.TempDir()
	files := map[string]string{
		"go.mod":        "module tagmod\n\ngo 1.22\n",
		"p/doc.go":      "// Package p is split across build-tagged twins.\npackage p\n",
		"p/race_on.go":  "//go:build race\n\npackage p\n\nconst RaceEnabled = true\n",
		"p/race_off.go": "//go:build !race\n\npackage p\n\nconst RaceEnabled = false\n",
		"p/other_os.go": "//go:build " + otherGOOS() + "\n\npackage p\n\nconst RaceEnabled = 3 // would redeclare if loaded\n",
	}
	for name, content := range files {
		path := filepath.Join(root, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	p, err := l.LoadDir(filepath.Join(root, "p"))
	if err != nil {
		t.Fatalf("tag-disjoint twins failed to load: %v", err)
	}
	// The linter analyzes the default build: race off.
	if len(p.Files) != 2 {
		t.Fatalf("loaded %d files, want 2 (doc.go + race_off.go)", len(p.Files))
	}
	if v := p.Types.Scope().Lookup("RaceEnabled"); v == nil || v.Type().String() != "untyped bool" {
		t.Errorf("RaceEnabled resolved to %v, want the untyped bool from race_off.go", v)
	}
}

// otherGOOS returns a GOOS that is not the current one, for a file the
// loader must skip.
func otherGOOS() string {
	if runtime.GOOS == "plan9" {
		return "windows"
	}
	return "plan9"
}

// TestBuildTagMatches pins the tag evaluation context: current platform
// and release tags are true, feature tags are false.
func TestBuildTagMatches(t *testing.T) {
	for tag, want := range map[string]bool{
		runtime.GOOS:   true,
		runtime.GOARCH: true,
		"gc":           true,
		"go1.18":       true,
		"go1.999":      false,
		"race":         false,
		"integration":  false,
	} {
		if got := buildTagMatches(tag); got != want {
			t.Errorf("buildTagMatches(%q) = %v, want %v", tag, got, want)
		}
	}
}
