package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// EngineownAnalyzer is the engine-ownership escape analysis behind the
// sharded-kernel plan. The kernel's determinism contract is per-engine and
// single-threaded: every piece of mutable simulation state — the event
// heap, pooled events, memoized RNG streams, the metrics registry, the
// tracer, and every subsystem struct holding a *simnet.Engine — is owned
// by exactly one Engine and therefore by exactly one goroutine. A sharded
// kernel partitions engines across goroutines, so any engine-owned value
// that today leaks to another goroutine (captured in a go-spawned closure,
// sent over a channel, or parked in a package-level variable) becomes a
// cross-shard data race tomorrow.
//
// Like taint, the pass is summary-based and interprocedural: ownership
// enters at any expression whose type is engine-bound (the structural
// Engine type itself, or any named type transitively holding one — see
// engineBound), propagates through locals, method calls on owned
// receivers, and summarized module functions, and is reported where it
// escapes, with the full owner → hops → escape chain in the message.
// Values of basic underlying type (seeds, counts, durations, labels)
// never carry ownership: they are snapshots, not aliases.
//
// Escapes:
//   - goroutines: an engine-owned argument to a go'd call, an owned
//     variable captured by a go'd closure, or an owned receiver of a go'd
//     method call
//   - channel sends: ch <- owned (channels exist to cross goroutines)
//   - package-level variables: storing an owned value into module-global
//     state shares it with every engine in the process
//
// Unknown callees (stdlib, interface methods, func values) do NOT forward
// ownership through their arguments: ownership is an aliasing property,
// and a helper that returns an alias of its argument almost always
// returns the same engine-bound type, which the type rule catches anyway;
// forwarding through fmt.Sprintf or json.Marshal would flag harmless
// copies. This is the precision/soundness trade documented in DESIGN.md's
// ownership contract.
//
// The one sanctioned crossing is the shard kernel itself: package
// simnet's ShardGroup hands whole cells to window workers over its
// shardCmd channels and joins them over shardDone tokens, under the
// conservative-lookahead barrier that makes the handoff race-free (cells
// never run concurrently with the merge). Escapes whose escaping value's
// static type is simnet's ShardGroup, shardCmd, or shardDone (or a
// container of one) are therefore exempt — a typed exemption, not a
// package waiver: a raw Engine crossing a goroutine or channel in simnet
// still fires.
var EngineownAnalyzer = &Analyzer{
	Name:      "engineown",
	Doc:       "track engine-owned values (the engine, derived RNG/metrics/tracer state, engine-holding structs) across functions and flag escapes to goroutines, channels, or package-level variables; simnet's ShardGroup/shardCmd/shardDone barrier handoff is the one typed exemption",
	RunModule: runEngineown,
}

// sanctionedShardType reports whether t is (a container of) one of the
// shard kernel's sanctioned barrier-handoff types: ShardGroup, shardCmd,
// or shardDone declared in a package named simnet. These cross goroutines by
// design — the window protocol guarantees the receiving worker has
// exclusive access until the barrier — so escapes of exactly these types
// are not findings. Matching is structural (package name + type name),
// like the Engine type itself, so the lint testdata can model it.
func sanctionedShardType(t types.Type) bool {
	switch u := t.(type) {
	case *types.Named:
		obj := u.Obj()
		if obj.Pkg() == nil || obj.Pkg().Name() != "simnet" {
			return false
		}
		return obj.Name() == "ShardGroup" || obj.Name() == "shardCmd" || obj.Name() == "shardDone"
	case *types.Pointer:
		return sanctionedShardType(u.Elem())
	case *types.Slice:
		return sanctionedShardType(u.Elem())
	case *types.Array:
		return sanctionedShardType(u.Elem())
	case *types.Chan:
		return sanctionedShardType(u.Elem())
	case *types.Map:
		return sanctionedShardType(u.Elem())
	}
	return false
}

// ownChain is the ownership witness: where the value's engine affinity
// was established and every call boundary crossed since. First-wins, like
// taintChain, so the fixpoint stays monotone.
type ownChain struct {
	rootDesc string
	rootPos  token.Position
	hops     []taintHop
}

func (c *ownChain) extend(fn string, pos token.Position) *ownChain {
	hops := make([]taintHop, len(c.hops), len(c.hops)+1)
	copy(hops, c.hops)
	return &ownChain{c.rootDesc, c.rootPos, append(hops, taintHop{fn, pos})}
}

// escapePath mirrors sinkPath: from a parameter's entry into a function
// to the escape it reaches, possibly through further callees.
type escapePath struct {
	kind string // "a goroutine", "a channel send", ...
	pos  token.Position
	hops []taintHop
}

func (s *escapePath) prepend(fn string, pos token.Position) *escapePath {
	hops := make([]taintHop, 0, len(s.hops)+1)
	hops = append(hops, taintHop{fn, pos})
	return &escapePath{s.kind, s.pos, append(hops, s.hops...)}
}

// ownFlow is the dataflow value of one expression: the ownership chain
// (nil if engine-free) and the mask of enclosing-function parameters
// whose ownership may reach it.
type ownFlow struct {
	chain  *ownChain
	params uint64
}

func (f ownFlow) empty() bool { return f.chain == nil && f.params == 0 }

func (f ownFlow) union(g ownFlow) ownFlow {
	out := f
	if out.chain == nil {
		out.chain = g.chain
	}
	out.params |= g.params
	return out
}

// ownFunc is one analyzable function plus its evolving summary.
type ownFunc struct {
	pkg      *Package
	decl     *ast.FuncDecl
	name     string
	paramIdx map[*types.Var]int
	// Summary, grown monotonically across fixpoint rounds:
	retChain    *ownChain           // a return value is engine-owned independent of params
	paramRet    uint64              // param i's ownership flows to a return value
	paramEscape map[int]*escapePath // param i reaches an escape
}

// ownWorld holds the module-wide analysis state: per-function summaries
// and the engine-bound type set. The ownership report (-ownership) reuses
// it, so the analyzer and the report can never disagree.
type ownWorld struct {
	funcs   map[*types.Func]*ownFunc
	ordered []*ownFunc
	// bound memoizes engine affinity per named type; boundVia records the
	// field that established it, as a human-readable witness.
	bound    map[*types.Named]bool
	boundVia map[*types.Named]string
}

// escapeRecord is one raw (pre-suppression) escape, kept structured so
// the -ownership report can classify it without re-parsing messages.
type escapeRecord struct {
	pkg     *Package
	pos     token.Position
	kind    string // "goroutine", "channel", "global"
	finding Finding
}

func runEngineown(pkgs []*Package) []Finding {
	ow := newOwnWorld(pkgs)
	var out []Finding
	for _, rec := range ow.escapes(pkgs) {
		out = append(out, rec.finding)
	}
	return out
}

func newOwnWorld(pkgs []*Package) *ownWorld {
	ow := &ownWorld{
		funcs:    make(map[*types.Func]*ownFunc),
		bound:    make(map[*types.Named]bool),
		boundVia: make(map[*types.Named]string),
	}
	ow.computeBound(pkgs)
	for _, p := range pkgs {
		for _, file := range p.Files {
			for _, d := range file.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := p.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				of := &ownFunc{
					pkg:         p,
					decl:        fd,
					name:        qualifiedFuncName(obj),
					paramIdx:    make(map[*types.Var]int),
					paramEscape: make(map[int]*escapePath),
				}
				i := 0
				if fd.Type.Params != nil {
					for _, field := range fd.Type.Params.List {
						for _, name := range field.Names {
							if v, ok := p.Info.Defs[name].(*types.Var); ok {
								of.paramIdx[v] = i
							}
							i++
						}
						if len(field.Names) == 0 {
							i++
						}
					}
				}
				ow.funcs[obj] = of
				ow.ordered = append(ow.ordered, of)
			}
		}
	}
	// Summary fixpoint: every update is first-wins or a bitmask union.
	for changed := true; changed; {
		changed = false
		for _, of := range ow.ordered {
			if ow.summarize(of) {
				changed = true
			}
		}
	}
	return ow
}

// escapes runs the findings pass with summaries final, deduplicated and
// restricted to internal/ packages (cmd binaries run on host goroutines
// by design; the ownership contract binds the simulation packages).
func (ow *ownWorld) escapes(pkgs []*Package) []escapeRecord {
	var out []escapeRecord
	seen := make(map[string]bool)
	for _, of := range ow.ordered {
		if !underInternal(of.pkg.ImportPath) {
			continue
		}
		for _, rec := range ow.analyze(of, true) {
			key := rec.finding.Pos.Filename + fmt.Sprint(rec.finding.Pos.Line, rec.finding.Pos.Column) + rec.finding.Message
			if !seen[key] {
				seen[key] = true
				out = append(out, rec)
			}
		}
	}
	// Package-level vars initialized with engine-bound values escape by
	// construction (no function context needed: the type says it all).
	for _, p := range pkgs {
		if !underInternal(p.ImportPath) {
			continue
		}
		for _, file := range p.Files {
			for _, d := range file.Decls {
				gd, ok := d.(*ast.GenDecl)
				if !ok || gd.Tok != token.VAR {
					continue
				}
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for _, name := range vs.Names {
						v, ok := p.Info.Defs[name].(*types.Var)
						if !ok || name.Name == "_" {
							continue
						}
						if desc := ow.boundDesc(v.Type(), p); desc != "" {
							pos := p.Fset.Position(name.Pos())
							out = append(out, escapeRecord{p, pos, "global", Finding{pos, "engineown",
								"package-level var " + name.Name + " holds " + desc + ": module-global engine state is shared by every engine in the process and becomes cross-shard state under the sharded kernel — construct engines per run and thread them explicitly, or suppress with a reason"}})
						}
					}
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].finding, out[j].finding
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Message < b.Message
	})
	return out
}

// computeBound seeds the engine-bound type set: the structural Engine
// type itself plus every named type transitively reaching one through
// struct fields (directly, or via pointer/slice/array/map/chan of one).
func (ow *ownWorld) computeBound(pkgs []*Package) {
	for _, p := range pkgs {
		scope := p.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok {
				continue
			}
			if named, ok := tn.Type().(*types.Named); ok {
				ow.namedBound(named, make(map[*types.Named]bool))
			}
		}
	}
}

// namedBound resolves (and memoizes) engine affinity for one named type.
// Cycles are broken by the visiting set: a type on the current resolution
// path contributes nothing new (if it is bound, another path proves it).
func (ow *ownWorld) namedBound(n *types.Named, visiting map[*types.Named]bool) bool {
	if b, ok := ow.bound[n]; ok {
		return b
	}
	if visiting[n] {
		return false
	}
	if n.Obj().Name() == "Engine" {
		ow.bound[n] = true
		ow.boundVia[n] = "the Engine type itself"
		return true
	}
	visiting[n] = true
	defer delete(visiting, n)
	st, ok := n.Underlying().(*types.Struct)
	if !ok {
		ow.bound[n] = false
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if inner := ow.boundElem(f.Type(), visiting); inner != nil {
			ow.bound[n] = true
			ow.boundVia[n] = "field " + f.Name() + " (" + types.TypeString(f.Type(), shortQualifier) + ")"
			return true
		}
	}
	ow.bound[n] = false
	return false
}

// boundElem unwraps containers down to a named type and reports it if
// engine-bound; nil otherwise. Interfaces and func types never carry
// affinity at the type level.
func (ow *ownWorld) boundElem(t types.Type, visiting map[*types.Named]bool) *types.Named {
	switch u := t.(type) {
	case *types.Named:
		if ow.namedBound(u, visiting) {
			return u
		}
		return nil
	case *types.Pointer:
		return ow.boundElem(u.Elem(), visiting)
	case *types.Slice:
		return ow.boundElem(u.Elem(), visiting)
	case *types.Array:
		return ow.boundElem(u.Elem(), visiting)
	case *types.Map:
		return ow.boundElem(u.Elem(), visiting)
	case *types.Chan:
		return ow.boundElem(u.Elem(), visiting)
	}
	return nil
}

// typeBound reports whether a value of type t carries engine affinity.
func (ow *ownWorld) typeBound(t types.Type) bool {
	return ow.boundElem(t, make(map[*types.Named]bool)) != nil
}

// boundDesc renders the bound-type description for messages, or "".
func (ow *ownWorld) boundDesc(t types.Type, p *Package) string {
	if n := ow.boundElem(t, make(map[*types.Named]bool)); n != nil {
		return "engine-bound " + types.TypeString(t, shortQualifier)
	}
	return ""
}

// shortQualifier renders cross-package type names as pkgname.Type.
func shortQualifier(other *types.Package) string { return other.Name() }

// summarize recomputes of's summary; reports whether anything was added.
func (ow *ownWorld) summarize(of *ownFunc) bool {
	before := ownSummarySignature(of)
	ow.analyze(of, false)
	return ownSummarySignature(of) != before
}

func ownSummarySignature(of *ownFunc) string {
	keys := make([]byte, 0, 8)
	for i := 0; i < 64; i++ {
		if of.paramEscape[i] != nil {
			keys = append(keys, byte(i))
		}
	}
	return fmt.Sprint(of.retChain != nil, of.paramRet, keys)
}

// analyze runs the intra-function ownership dataflow for of: propagate
// flows through locals to a fixpoint, fold returns into the summary, then
// walk for escapes (emitting records when report is set).
func (ow *ownWorld) analyze(of *ownFunc, report bool) []escapeRecord {
	st := &ownState{ow: ow, of: of, vars: make(map[*types.Var]ownFlow)}
	for changed := true; changed; {
		changed = false
		st.changed = &changed
		ast.Inspect(of.decl.Body, st.propagateStmt)
	}
	st.changed = nil
	ow.collectOwnReturns(of, st)
	st.report = report
	ast.Inspect(of.decl.Body, st.checkEscapes)
	return st.records
}

type ownState struct {
	ow      *ownWorld
	of      *ownFunc
	vars    map[*types.Var]ownFlow
	changed *bool
	report  bool
	records []escapeRecord
}

func (st *ownState) setVar(v *types.Var, f ownFlow) {
	if v == nil || f.empty() {
		return
	}
	cur := st.vars[v]
	merged := cur.union(f)
	if merged != cur {
		st.vars[v] = merged
		if st.changed != nil {
			*st.changed = true
		}
	}
}

func (st *ownState) lhsVar(e ast.Expr) *types.Var {
	switch x := e.(type) {
	case *ast.Ident:
		if v, ok := st.of.pkg.Info.Defs[x].(*types.Var); ok {
			return v
		}
		if v, ok := st.of.pkg.Info.Uses[x].(*types.Var); ok {
			return v
		}
	case *ast.IndexExpr:
		return st.lhsVar(x.X)
	case *ast.StarExpr:
		return st.lhsVar(x.X)
	case *ast.SelectorExpr:
		// v.field = owned ⇒ the holder v now carries the ownership.
		if !isPkgSelector(st.of.pkg, x) {
			return st.lhsVar(x.X)
		}
	}
	return nil
}

func (st *ownState) propagateStmt(n ast.Node) bool {
	switch s := n.(type) {
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 && len(s.Lhs) > 1 {
			f := st.exprOwn(s.Rhs[0])
			for _, lhs := range s.Lhs {
				st.setVar(st.lhsVar(lhs), f)
			}
			return true
		}
		for i, rhs := range s.Rhs {
			if i < len(s.Lhs) {
				st.setVar(st.lhsVar(s.Lhs[i]), st.exprOwn(rhs))
			}
		}
	case *ast.GenDecl:
		for _, spec := range s.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for i, name := range vs.Names {
				if i < len(vs.Values) {
					if v, ok := st.of.pkg.Info.Defs[name].(*types.Var); ok {
						st.setVar(v, st.exprOwn(vs.Values[i]))
					}
				}
			}
		}
	case *ast.RangeStmt:
		// Ranging a derived-owned collection forwards ownership to the
		// element variable. (Collections of engine-bound element type are
		// caught by the type rule at every use, with no flow needed.)
		if f := st.exprOwn(s.X); !f.empty() {
			if id, ok := s.Value.(*ast.Ident); ok {
				if v, ok := st.of.pkg.Info.Defs[id].(*types.Var); ok {
					st.setVar(v, f)
				} else if v, ok := st.of.pkg.Info.Uses[id].(*types.Var); ok {
					st.setVar(v, f)
				}
			}
		}
	}
	return true
}

// exprOwn evaluates the ownership flow of an expression. Values of basic
// underlying type never carry ownership: e.Seed(), e.Now(), len(...) are
// snapshots of engine state, not aliases to it.
func (st *ownState) exprOwn(e ast.Expr) ownFlow {
	p := st.of.pkg
	t := p.Info.TypeOf(e)
	if t != nil {
		if _, basic := t.Underlying().(*types.Basic); basic {
			return ownFlow{}
		}
	}
	f := st.exprOwnInner(e)
	if f.chain == nil && t != nil {
		if n := st.ow.boundElem(t, make(map[*types.Named]bool)); n != nil {
			f.chain = &ownChain{
				rootDesc: types.TypeString(t, shortQualifier) + " value",
				rootPos:  p.Fset.Position(e.Pos()),
			}
		}
	}
	return f
}

func (st *ownState) exprOwnInner(e ast.Expr) ownFlow {
	p := st.of.pkg
	switch x := e.(type) {
	case *ast.Ident:
		if v, ok := p.Info.Uses[x].(*types.Var); ok {
			f := st.vars[v]
			if i, isParam := st.of.paramIdx[v]; isParam {
				f.params |= 1 << uint(i)
			}
			return f
		}
	case *ast.CallExpr:
		return st.callOwn(x)
	case *ast.ParenExpr:
		return st.exprOwnInner(x.X)
	case *ast.UnaryExpr:
		return st.exprOwn(x.X)
	case *ast.StarExpr:
		return st.exprOwn(x.X)
	case *ast.SelectorExpr:
		if !isPkgSelector(p, x) {
			return st.exprOwn(x.X)
		}
	case *ast.IndexExpr:
		return st.exprOwn(x.X)
	case *ast.SliceExpr:
		return st.exprOwn(x.X)
	case *ast.TypeAssertExpr:
		return st.exprOwn(x.X)
	case *ast.BinaryExpr:
		return st.exprOwn(x.X).union(st.exprOwn(x.Y))
	case *ast.CompositeLit:
		var f ownFlow
		for _, el := range x.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				f = f.union(st.exprOwn(kv.Value))
			} else {
				f = f.union(st.exprOwn(el))
			}
		}
		return f
	}
	return ownFlow{}
}

// callOwn computes ownership of a call's result. Ownership transfers only
// through aliasing channels: type conversions, the append builtin, method
// calls on owned receivers (e.Rand, e.Metrics, chains off them), and
// summarized module functions. Unknown callees drop it — see the analyzer
// doc for why.
func (st *ownState) callOwn(call *ast.CallExpr) ownFlow {
	p := st.of.pkg
	if tv, ok := p.Info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			return st.exprOwn(call.Args[0])
		}
		return ownFlow{}
	}
	if id, ok := call.Fun.(*ast.Ident); ok {
		if _, isBuiltin := p.Info.Uses[id].(*types.Builtin); isBuiltin {
			if id.Name == "append" {
				var f ownFlow
				for _, a := range call.Args {
					f = f.union(st.exprOwn(a))
				}
				return f
			}
			return ownFlow{}
		}
	}
	pos := p.Fset.Position(call.Pos())
	fn := calleeFunc(p, call)
	if fn != nil {
		if callee, ok := st.ow.funcs[fn]; ok {
			var f ownFlow
			if callee.retChain != nil {
				f.chain = callee.retChain.extend(callee.name, pos)
			}
			if callee.paramRet != 0 {
				for i, a := range call.Args {
					if callee.paramRet&(1<<uint(i)) == 0 {
						continue
					}
					af := st.exprOwn(a)
					if f.chain == nil && af.chain != nil {
						f.chain = af.chain.extend(callee.name, pos)
					}
					f.params |= af.params
				}
			}
			if f.empty() {
				f = st.recvDerived(call, fn, pos)
			}
			return f
		}
	}
	return st.recvDerived(call, fn, pos)
}

// recvDerived handles the method-on-owned-receiver rule: the result of
// calling any method on an engine-owned value is engine-owned (it hands
// out a piece of the engine: e.Rand(label), e.Metrics(), their chains).
func (st *ownState) recvDerived(call *ast.CallExpr, fn *types.Func, pos token.Position) ownFlow {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || isPkgSelector(st.of.pkg, sel) {
		return ownFlow{}
	}
	f := st.exprOwn(sel.X)
	if f.empty() {
		return ownFlow{}
	}
	name := sel.Sel.Name
	if fn != nil {
		name = qualifiedFuncName(fn)
	}
	if f.chain != nil {
		f.chain = f.chain.extend(name, pos)
	}
	return f
}

// collectOwnReturns folds return statements into of's summary, skipping
// returns belonging to nested function literals.
func (ow *ownWorld) collectOwnReturns(of *ownFunc, st *ownState) {
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		switch s := n.(type) {
		case *ast.FuncLit:
			return
		case *ast.ReturnStmt:
			for _, res := range s.Results {
				// Returning an owned value is not an escape (the caller
				// receives it on the same goroutine), but the summary lets
				// call sites continue the chain.
				f := st.exprOwn(res)
				if of.retChain == nil && f.chain != nil {
					of.retChain = f.chain
				}
				of.paramRet |= f.params
			}
		}
		for _, c := range children(n) {
			walk(c)
		}
	}
	walk(of.decl.Body)
}

// checkEscapes walks for the three escape shapes plus calls into
// summarized escape-reaching functions.
func (st *ownState) checkEscapes(n ast.Node) bool {
	p := st.of.pkg
	switch s := n.(type) {
	case *ast.GoStmt:
		st.goEscape(s)
	case *ast.SendStmt:
		pos := p.Fset.Position(s.Pos())
		st.escapeValue(s.Value, "a channel send", "channel", pos, nil)
	case *ast.AssignStmt:
		for i, lhs := range s.Lhs {
			gv := st.globalTarget(lhs)
			if gv == nil {
				continue
			}
			var rhs ast.Expr
			switch {
			case len(s.Rhs) == 1:
				rhs = s.Rhs[0]
			case i < len(s.Rhs):
				rhs = s.Rhs[i]
			}
			if rhs == nil {
				continue
			}
			pos := p.Fset.Position(s.Pos())
			st.escapeValue(rhs, "a store into package-level var "+gv.Name(), "global", pos, nil)
		}
	case *ast.CallExpr:
		pos := p.Fset.Position(s.Pos())
		// A method call on a package-level var (collectors.Store(id, c),
		// registry.Add(e)) parks its owned arguments in module-global
		// state just as surely as a direct assignment would.
		if sel, ok := s.Fun.(*ast.SelectorExpr); ok && !isPkgSelector(p, sel) {
			if gv := st.globalTarget(sel.X); gv != nil {
				for _, a := range s.Args {
					st.escapeValue(a, "a call on package-level var "+gv.Name(), "global", pos, nil)
				}
			}
		}
		fn := calleeFunc(p, s)
		if fn == nil {
			return true
		}
		callee, ok := st.ow.funcs[fn]
		if !ok || len(callee.paramEscape) == 0 {
			return true
		}
		for i, a := range s.Args {
			ep := callee.paramEscape[i]
			if ep == nil {
				continue
			}
			st.escapeValue(a, ep.kind, "", ep.pos, ep.prepend(callee.name, pos).hops)
		}
	}
	return true
}

// escapeValue reports (or summarizes) one value meeting one escape. kind
// is the human description, recKind the machine class for the ownership
// report ("" means: reuse an interprocedural path whose class was already
// recorded at the original site — classify as goroutine/channel/global by
// the kind text).
func (st *ownState) escapeValue(e ast.Expr, kind, recKind string, escPos token.Position, hops []taintHop) {
	if t := st.of.pkg.Info.TypeOf(e); t != nil && sanctionedShardType(t) {
		return
	}
	f := st.exprOwn(e)
	if f.empty() {
		return
	}
	at := st.of.pkg.Fset.Position(e.Pos())
	if f.chain != nil && st.report {
		st.emit(f.chain, kind, recKind, escPos, hops, at)
	}
	if f.params != 0 {
		for i := 0; i < 64; i++ {
			if f.params&(1<<uint(i)) != 0 && st.of.paramEscape[i] == nil {
				st.of.paramEscape[i] = &escapePath{kind: kind, pos: escPos, hops: hops}
			}
		}
	}
}

// goEscape reports owned values handed to a go statement: arguments,
// captured variables of a go'd closure, and the receiver of a go'd
// method call.
func (st *ownState) goEscape(g *ast.GoStmt) {
	p := st.of.pkg
	pos := p.Fset.Position(g.Pos())
	for _, a := range g.Call.Args {
		st.escapeValue(a, "a goroutine (argument to the go'd call)", "goroutine", pos, nil)
	}
	switch fun := g.Call.Fun.(type) {
	case *ast.FuncLit:
		seen := make(map[*types.Var]bool)
		ast.Inspect(fun.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			v, ok := p.Info.Uses[id].(*types.Var)
			if !ok || seen[v] {
				return true
			}
			seen[v] = true
			if v.Pos() >= fun.Pos() && v.Pos() < fun.End() {
				return true // declared inside the literal
			}
			st.escapeValue(id, "a goroutine (captured by the go'd closure)", "goroutine", pos, nil)
			return true
		})
	case *ast.SelectorExpr:
		if !isPkgSelector(p, fun) {
			st.escapeValue(fun.X, "a goroutine (receiver of the go'd method call)", "goroutine", pos, nil)
		}
	}
}

// emit renders the full owner → hops → escape chain into one record.
func (st *ownState) emit(c *ownChain, kind, recKind string, escPos token.Position, extraHops []taintHop, at token.Position) {
	var b strings.Builder
	fmt.Fprintf(&b, "engine-owned %s (%s) escapes to %s (%s)",
		c.rootDesc, shortPos(c.rootPos), kind, shortPos(escPos))
	hops := append(append([]taintHop{}, c.hops...), extraHops...)
	if len(hops) > 0 {
		parts := make([]string, len(hops))
		for i, h := range hops {
			parts[i] = fmt.Sprintf("%s (%s)", h.fn, shortPos(h.pos))
		}
		fmt.Fprintf(&b, " via %s", strings.Join(parts, " -> "))
	}
	b.WriteString("; the sharded kernel requires all state reachable from an Engine to stay owned by exactly one goroutine — keep the value engine-local, or suppress with a reason")
	if recKind == "" {
		switch {
		case strings.Contains(kind, "goroutine"):
			recKind = "goroutine"
		case strings.Contains(kind, "channel"):
			recKind = "channel"
		default:
			recKind = "global"
		}
	}
	st.records = append(st.records, escapeRecord{st.of.pkg, at, recKind,
		Finding{at, "engineown", b.String()}})
}

// globalTarget resolves an assignment target to the package-level var it
// (or its element/field/pointee) denotes; nil for locals and params.
func (st *ownState) globalTarget(e ast.Expr) *types.Var {
	p := st.of.pkg
	switch x := e.(type) {
	case *ast.Ident:
		v, ok := p.Info.Uses[x].(*types.Var)
		if !ok {
			v, ok = p.Info.Defs[x].(*types.Var)
		}
		if ok && isPkgLevelVar(v) {
			return v
		}
	case *ast.SelectorExpr:
		if isPkgSelector(p, x) {
			if v, ok := p.Info.Uses[x.Sel].(*types.Var); ok && isPkgLevelVar(v) {
				return v
			}
			return nil
		}
		return st.globalTarget(x.X)
	case *ast.IndexExpr:
		return st.globalTarget(x.X)
	case *ast.StarExpr:
		return st.globalTarget(x.X)
	case *ast.ParenExpr:
		return st.globalTarget(x.X)
	}
	return nil
}

// isPkgLevelVar reports whether v is declared at package scope (whose
// parent is the universe scope).
func isPkgLevelVar(v *types.Var) bool {
	return v.Parent() != nil && v.Parent().Parent() == types.Universe
}
