package lint

import (
	"fmt"
	"strings"
)

// SchemaVersion is the single version stamp for everything whose meaning
// depends on the analyzer set and result encoding: the content-addressed
// cache key folds it in (so results computed under an older analyzer set
// can never be replayed) and the SARIF driver reports it as tool.version
// (so a code-scanning backend can tell which ruleset produced a log).
//
// The format is <payload-generation>.<analyzer-count>: the generation
// bumps when the cached pkgResult layout or key derivation changes, the
// count must equal len(Analyzers()). Registering a new analyzer without
// bumping the count here fails TestSchemaVersionTracksAnalyzers — that
// is the point: a schema bump must be a conscious act in the same change
// that alters what the tool emits.
const SchemaVersion = "3.17"

// schemaConsistent reports whether v's analyzer-count component matches
// the live registry; split out so the guard test exercises the exact
// production comparison.
func schemaConsistent(v string, analyzerCount int) bool {
	return strings.HasSuffix(v, fmt.Sprintf(".%d", analyzerCount))
}
