package lint

import (
	"path/filepath"
	"testing"
)

// loadTestdata loads the named testdata packages through the shared test
// loader, applying //eslurmlint:testpath overrides like the golden
// harness does.
func loadTestdata(t *testing.T, names ...string) []*Package {
	t.Helper()
	l := testLoader(t)
	var pkgs []*Package
	for _, n := range names {
		p, err := l.LoadDir(filepath.Join("testdata", "src", n))
		if err != nil {
			t.Fatalf("loading %s: %v", n, err)
		}
		if tp, ok := testPathOverride(p); ok {
			p.ImportPath = tp
		}
		pkgs = append(pkgs, p)
	}
	return pkgs
}

// mixedCasePkgs is a finding-rich spread: per-package analyzers,
// module-level analyzers (taint, randlabel across two packages),
// suppressions, and staleignore directives all participate, so an
// ordering bug anywhere in the parallel pipeline shows up as a diff.
func mixedCasePkgs(t *testing.T) []*Package {
	return loadTestdata(t,
		"walltime_bad", "detrand_bad", "maporder_bad", "evalloc_bad",
		"taint_bad", "taint_suppressed", "floatsum_bad",
		"randlabel_a", "randlabel_b", "staleignore_bad", "staleignore_good",
	)
}

func findingStrings(fs []Finding) []string {
	out := make([]string, len(fs))
	for i, f := range fs {
		out[i] = f.String()
	}
	return out
}

// TestRunParallelMatchesRun pins the driver contract: whatever the worker
// count, RunParallel's output is byte-identical to the serial reference
// pipeline.
func TestRunParallelMatchesRun(t *testing.T) {
	pkgs := mixedCasePkgs(t)
	want := findingStrings(Run(pkgs, Analyzers()))
	if len(want) == 0 {
		t.Fatal("mixed case produced no findings; the test would pass vacuously")
	}
	for _, workers := range []int{0, 1, 2, 8} {
		got := findingStrings(RunParallel(pkgs, Analyzers(), RunOptions{Workers: workers}))
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d findings, want %d", workers, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Errorf("workers=%d: finding %d:\n got %s\nwant %s", workers, i, got[i], want[i])
			}
		}
	}
}

// TestRunParallelCache runs the same analysis twice against one cache
// directory: the first run misses and populates, the second is served
// entirely from cache, and both produce the reference output.
func TestRunParallelCache(t *testing.T) {
	pkgs := mixedCasePkgs(t)
	want := findingStrings(Run(pkgs, Analyzers()))
	cache, err := NewCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	l := testLoader(t)
	opts := RunOptions{Workers: 4, Cache: cache, Lookup: l.Loaded}

	first := findingStrings(RunParallel(pkgs, Analyzers(), opts))
	hits, misses := cache.Stats()
	if hits != 0 || misses != int64(len(pkgs)) {
		t.Errorf("after first run: hits=%d misses=%d, want 0/%d", hits, misses, len(pkgs))
	}
	second := findingStrings(RunParallel(pkgs, Analyzers(), opts))
	hits, _ = cache.Stats()
	if hits != int64(len(pkgs)) {
		t.Errorf("after second run: hits=%d, want %d (every package cached)", hits, len(pkgs))
	}
	for name, got := range map[string][]string{"first": first, "second": second} {
		if len(got) != len(want) {
			t.Fatalf("%s run: %d findings, want %d", name, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Errorf("%s run: finding %d:\n got %s\nwant %s", name, i, got[i], want[i])
			}
		}
	}
}

// TestRunParallelCacheKeyError pins the fallback: a cache whose key
// derivation fails (nil lookup) silently degrades to a live run instead
// of dropping findings.
func TestRunParallelCacheKeyError(t *testing.T) {
	pkgs := loadTestdata(t, "detrand_bad")
	cache, err := NewCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	got := RunParallel(pkgs, Analyzers(), RunOptions{Cache: cache, Lookup: nil})
	want := Run(pkgs, Analyzers())
	if len(got) != len(want) || len(want) == 0 {
		t.Fatalf("nil-lookup run: %d findings, want %d (nonzero)", len(got), len(want))
	}
}
