package lint

import (
	"go/ast"
	"go/types"
)

// WalltimeAnalyzer forbids reading or waiting on the wall clock anywhere
// under internal/. Simulated components live in virtual time: the current
// instant is simnet.Engine.Now and delays are Engine.After/Every. A single
// time.Now() inside the simulation perturbs event ordering between runs
// and breaks seed-reproducibility. cmd/ is exempt so benchmark drivers can
// measure real elapsed time.
var WalltimeAnalyzer = &Analyzer{
	Name: "walltime",
	Doc:  "forbid time.Now/Sleep/After/Since under internal/ (virtual clock only)",
	Run:  runWalltime,
}

var walltimeBanned = map[string]string{
	"Now":   "use the simnet.Engine virtual clock (Engine.Now)",
	"Sleep": "schedule a continuation with Engine.After instead of blocking",
	"After": "use Engine.After to schedule in virtual time",
	"Since": "subtract Engine.Now values instead of wall-clock instants",
}

func runWalltime(p *Package) []Finding {
	if !underInternal(p.ImportPath) {
		return nil
	}
	var out []Finding
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
				return true
			}
			hint, banned := walltimeBanned[fn.Name()]
			if !banned {
				return true
			}
			out = append(out, Finding{
				Pos:      p.Fset.Position(sel.Pos()),
				Analyzer: "walltime",
				Message:  "time." + fn.Name() + " reads the wall clock inside the simulation core; " + hint,
			})
			return true
		})
	}
	return out
}
