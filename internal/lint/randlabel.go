package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// RandlabelAnalyzer flags the same literal Engine.Rand(label) in two or
// more packages. Engine.Rand derives a stream by hashing engine seed +
// label and memoizes it per engine: a repeated label CONTINUES the
// existing stream rather than re-deriving a fresh one (the PR 2 kernel
// change made this load-bearing). Inside one package a shared label can
// be an intentional shared stream; across packages it is almost always
// two components accidentally interleaving draws — each one's values now
// depend on how often the *other* has drawn, so adding a draw in package
// A silently reorders package B's randomness. This is a module-level rule
// (RunModule): no single package can see the collision.
var RandlabelAnalyzer = &Analyzer{
	Name:      "randlabel",
	Doc:       "flag the same literal Engine.Rand stream label used from different packages (accidental stream sharing)",
	RunModule: runRandlabel,
}

type randlabelSite struct {
	pkg   string
	pos   token.Position
	label string
}

func runRandlabel(pkgs []*Package) []Finding {
	byLabel := make(map[string][]randlabelSite)
	for _, p := range pkgs {
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				label, ok := randLabelArg(p, call)
				if !ok {
					return true
				}
				byLabel[label] = append(byLabel[label], randlabelSite{
					pkg:   p.ImportPath,
					pos:   p.Fset.Position(call.Pos()),
					label: label,
				})
				return true
			})
		}
	}
	labels := make([]string, 0, len(byLabel))
	for label := range byLabel {
		labels = append(labels, label)
	}
	sort.Strings(labels)
	var out []Finding
	for _, label := range labels {
		sites := byLabel[label]
		pkgSet := make(map[string]bool)
		for _, s := range sites {
			pkgSet[s.pkg] = true
		}
		if len(pkgSet) < 2 {
			continue
		}
		for _, s := range sites {
			others := make([]string, 0, len(sites)-1)
			for _, o := range sites {
				if o.pkg != s.pkg {
					others = append(others, o.pkg+" ("+shortPos(o.pos)+")")
				}
			}
			sort.Strings(others)
			out = append(out, Finding{s.pos, "randlabel",
				"Engine.Rand(" + strconvQuote(label) + ") stream label is also derived in " + strings.Join(others, ", ") +
					"; equal labels share one memoized stream, so each package's draws reorder the other's — qualify the label with the package name"})
		}
	}
	return out
}

// randLabelArg returns the constant string label of an Engine.Rand call,
// matched structurally (method named Rand on a type named Engine) so
// testdata fakes and engine wrappers are covered.
func randLabelArg(p *Package, call *ast.CallExpr) (string, bool) {
	fn := calleeFunc(p, call)
	if fn == nil || fn.Name() != "Rand" {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", false
	}
	rt := sig.Recv().Type()
	if ptr, ok := rt.(*types.Pointer); ok {
		rt = ptr.Elem()
	}
	named, ok := rt.(*types.Named)
	if !ok || named.Obj().Name() != "Engine" {
		return "", false
	}
	if len(call.Args) != 1 {
		return "", false
	}
	tv, ok := p.Info.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

func strconvQuote(s string) string {
	return `"` + s + `"`
}
