//eslurmlint:testpath eslurm/internal/engineown_good

// Package engineown_good is compliant ownership code: engine-owned values
// stay on their owning goroutine, only engine-free snapshots (basic
// values, serialized copies) cross goroutine or global boundaries.
package engineown_good

import "time"

// Engine mimics the simnet kernel surface.
type Engine struct {
	now time.Duration
}

func (e *Engine) Rand(label string) *Stream        { return &Stream{} }
func (e *Engine) Seed() int64                      { return 0 }
func (e *Engine) Now() time.Duration               { return e.now }
func (e *Engine) After(d time.Duration, fn func()) {}

type Stream struct{ state uint64 }

func (s *Stream) Int() int { return 0 }

type Pool struct {
	e    *Engine
	size int
}

// EngineLocal keeps everything on the constructing goroutine: scheduled
// callbacks run on the engine's own loop, not a new goroutine.
func EngineLocal(e *Engine) {
	rng := e.Rand("sched")
	e.After(time.Second, func() {
		rng.Int()
	})
}

// Snapshot sends only basic-typed snapshots across the channel: seeds and
// virtual times are values, not aliases into engine state.
func Snapshot(e *Engine, ch chan int64) {
	ch <- e.Seed()
	go report(e.Seed(), e.Now())
}

func report(seed int64, now time.Duration) {}

// Threaded passes owned values down the call graph on the same
// goroutine: returning or receiving an owned value is not an escape.
func Threaded(e *Engine) *Stream {
	p := &Pool{e: e, size: 1}
	return use(p)
}

func use(p *Pool) *Stream {
	return p.e.Rand("pool")
}

// freshStream never touches an engine, so moving it across goroutines is
// fine: ownership comes from derivation, not from the Stream type.
func freshStream() *Stream { return &Stream{} }

// IndependentWorkers fans plain data out to a worker goroutine; nothing
// captured or sent is engine-derived.
func IndependentWorkers(jobs chan int, results chan int) {
	s := freshStream()
	go func() {
		for j := range jobs {
			results <- j + s.Int()
		}
	}()
}
