//eslurmlint:testpath eslurm/internal/pkgdoc_nodoc

package pkgdoc_nodoc // want "internal package has no package doc"

// F exists so the package has a body.
func F() int { return 1 }
