// Package walltime_bad exercises every banned wall-clock call. Its real
// path sits under internal/, so the walltime rule applies.
package walltime_bad

import "time"

func Bad() time.Duration {
	t0 := time.Now()             // want "time.Now reads the wall clock"
	time.Sleep(time.Millisecond) // want "time.Sleep"
	<-time.After(time.Second)    // want "time.After"
	return time.Since(t0)        // want "time.Since"
}
