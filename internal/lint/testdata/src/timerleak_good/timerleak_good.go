//eslurmlint:testpath eslurm/internal/timerleak_good

// Package timerleak_good pins the shapes timerleak must stay silent on:
// fire-and-forget discards, cancel-on-all-paths, escapes, rebinding,
// and query-only observation.
package timerleak_good

// Engine mimics the simnet scheduling surface.
type Engine struct{}

func (e *Engine) After(d int64, fn func()) Event  { return Event{} }
func (e *Engine) Every(d int64, fn func()) Ticker { return Ticker{} }

// Event is a generation-checked one-shot handle.
type Event struct{}

func (ev Event) Cancel() bool   { return true }
func (ev Event) Canceled() bool { return false }

// Ticker is a generation-checked repeating handle.
type Ticker struct{}

func (t Ticker) Stop() {}

type rec struct{ timer Event }

func park(ev Event) {}

// FireAndForget never binds the handle — the sanctioned idiom for
// events that must always run.
func FireAndForget(e *Engine) {
	e.After(10, func() {})
}

// CancelBothArms settles the handle on every path.
func CancelBothArms(e *Engine, early bool) {
	ev := e.After(10, func() {})
	if early {
		ev.Cancel()
		return
	}
	ev.Cancel()
}

// QueryThenCancel observes the handle (neutral) before settling it.
func QueryThenCancel(e *Engine) {
	ev := e.After(10, func() {})
	if ev.Canceled() {
		ev.Cancel()
		return
	}
	ev.Cancel()
}

// StoreEscape parks the handle on a record whose owner cancels it.
func StoreEscape(e *Engine, r *rec) {
	r.timer = e.After(10, func() {})
}

// LocalThenStore binds locally first, then transfers ownership.
func LocalThenStore(e *Engine, r *rec) {
	ev := e.After(10, func() {})
	r.timer = ev
}

// CaptureEscape hands the handle to the closure that decides its fate.
func CaptureEscape(e *Engine) func() {
	ev := e.After(10, func() {})
	return func() { ev.Cancel() }
}

// ArgEscape hands the handle to arbitrary code.
func ArgEscape(e *Engine) {
	ev := e.After(10, func() {})
	park(ev)
}

// ReturnEscape hands the handle to the caller.
func ReturnEscape(e *Engine) Event {
	ev := e.After(10, func() {})
	return ev
}

// MethodValueEscape extracts the cancel itself; whoever runs it owns
// the handle.
func MethodValueEscape(e *Engine) func() {
	tk := e.Every(5, func() {})
	stop := tk.Stop
	return stop
}

// Rebind replaces the handle after cancelling through the rebinding:
// the old lifecycle ends at the assignment.
func Rebind(e *Engine) {
	ev := e.After(10, func() {})
	ev = e.After(20, func() {})
	ev.Cancel()
}
