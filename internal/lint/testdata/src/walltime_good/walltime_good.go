// Package walltime_good is compliant: it manipulates virtual time as
// plain durations and never touches the wall clock.
package walltime_good

import "time"

// Clock mirrors the simnet.Engine virtual-clock surface.
type Clock interface {
	Now() time.Duration
}

func Elapsed(c Clock, started time.Duration) time.Duration {
	return c.Now() - started
}

func Deadline(c Clock, budget time.Duration) time.Duration {
	return c.Now() + budget
}
