//eslurmlint:testpath eslurm/internal/pkgdoc_good

// Package pkgdoc_good models a paper subsystem. It is fully deterministic:
// all state changes happen inside engine events, so the same seed yields
// the same trace.
package pkgdoc_good

// F exists so the package has a body.
func F() int { return 1 }
