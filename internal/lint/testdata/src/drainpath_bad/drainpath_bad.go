//eslurmlint:testpath eslurm/internal/satellite

// Package drainpath_bad pins drainpath firing on both halves of the
// exactly-once contract: the skipped callback and the double invoke,
// each with the path trace that proves it.
package drainpath_bad

// SkipOnBusy forgets the callback on the busy path: the caller waits
// forever for a completion that never comes.
func SkipOnBusy(busy bool, done func(clean bool)) { // want "callback \"done\" in drainpath_bad.SkipOnBusy may never be invoked on path: entry -> `busy`=true (drainpath_bad.go:11) -> return"
	if busy {
		return
	}
	done(true)
}

// DoubleOnTimeout settles the drain once inline and again on the
// timeout arm — the double-demote shape.
func DoubleOnTimeout(timeout bool, done func(clean bool)) { // want "callback \"done\" in drainpath_bad.DoubleOnTimeout may be invoked more than once on path: entry -> call (drainpath_bad.go:20) -> `timeout`=true (drainpath_bad.go:21) -> call (drainpath_bad.go:22)"
	done(true)
	if timeout {
		done(false)
	}
}

// forwardTwice is judged on its own body too: helpers get the same
// exactly-once contract (and failing it disqualifies them as summaries,
// so callers forwarding into them see an escape, not an invocation).
func forwardTwice(cb func(clean bool)) { // want "callback \"cb\" in drainpath_bad.forwardTwice may be invoked more than once on path: entry -> call (drainpath_bad.go:30) -> call (drainpath_bad.go:31)"
	cb(true)
	cb(true)
}

// LoopInvoke calls the callback once per element: two iterations is a
// double invoke.
func LoopInvoke(ids []int, done func(clean bool)) { // want "callback \"done\" in drainpath_bad.LoopInvoke may be invoked more than once on path: entry -> call (drainpath_bad.go:38) -> range next -> call (drainpath_bad.go:38) -> range done"
	for range ids {
		done(true)
	}
}
