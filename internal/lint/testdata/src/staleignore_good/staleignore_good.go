//eslurmlint:testpath eslurm/internal/staleignore_good

// Package staleignore_good carries a load-bearing ignore: walltime fires
// on the call below and the directive absorbs it, so staleignore must
// stay silent.
package staleignore_good

import "time"

func Stamp() time.Time {
	//eslurmlint:ignore walltime log decoration only, never feeds the simulation
	return time.Now()
}
