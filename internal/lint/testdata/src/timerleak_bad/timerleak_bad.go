//eslurmlint:testpath eslurm/internal/timerleak_bad

// Package timerleak_bad pins timerleak firing on branch-dependent
// dropped timer handles, with the multi-block path traces the messages
// carry.
package timerleak_bad

// Engine mimics the simnet scheduling surface.
type Engine struct{}

func (e *Engine) After(d int64, fn func()) Event  { return Event{} }
func (e *Engine) Every(d int64, fn func()) Ticker { return Ticker{} }

// Event is a generation-checked one-shot handle.
type Event struct{}

func (ev Event) Cancel() bool   { return true }
func (ev Event) Canceled() bool { return false }

// Ticker is a generation-checked repeating handle.
type Ticker struct{}

func (t Ticker) Stop() {}

// DropOnRetry binds the deadline timer but forgets it on the retry
// path: the timer still fires with nothing able to cancel it.
func DropOnRetry(e *Engine, retry bool) {
	ev := e.After(10, func() {}) // want "Engine.After handle \"ev\" may leave timerleak_bad.DropOnRetry still armed on path: After (timerleak_bad.go:28) -> `retry`=true (timerleak_bad.go:29) -> return"
	if retry {
		return
	}
	ev.Cancel()
}

// DropOnExhaustedLoop stops the ticker only when the loop hits its
// target; the exhausted path leaks it.
func DropOnExhaustedLoop(e *Engine, n int) {
	tk := e.Every(5, func() {}) // want "Engine.Every handle \"tk\" may leave timerleak_bad.DropOnExhaustedLoop still armed on path: Every (timerleak_bad.go:38) -> `i < n`=false"
	for i := 0; i < n; i++ {
		if i == 3 {
			tk.Stop()
			return
		}
	}
}
