//eslurmlint:testpath eslurm/internal/spanleak_suppressed

// Package spanleak_suppressed pins that a spanleak finding is silenced
// by an ignore directive with a reason at the Start site.
package spanleak_suppressed

// Tracer mimics the obs tracing surface.
type Tracer struct{}

func (t *Tracer) Start(name string, parent uint64) uint64 { return 1 }
func (t *Tracer) End(id uint64)                           {}

// AbortLeavesOpen intentionally leaves the span open on abort: the
// exporter truncates open spans at shutdown and that is the wanted
// rendering for aborted work.
func AbortLeavesOpen(tr *Tracer, abort bool) {
	//eslurmlint:ignore spanleak aborted work renders as a truncated open span on purpose; the exporter closes it at shutdown
	sp := tr.Start("work", 0)
	if abort {
		return
	}
	tr.End(sp)
}
