// Package errdrop_bad discards errors from the parse/encode boundary in
// every shape the analyzer covers: blank assignment, bare call, and
// go/defer calls.
package errdrop_bad

import (
	"strings"

	"eslurm/internal/config"
	"eslurm/internal/hostlist"
	"eslurm/internal/proto"
)

func Bad(expr string, b []byte) []string {
	hosts, _ := hostlist.Expand(expr)   // want "error from hostlist.Expand is assigned to _"
	config.Parse(strings.NewReader("")) // want "error from config.Parse is discarded by a bare call"
	var hb proto.Heartbeat
	hb.Unmarshal(b)                                            // want "error from proto.Unmarshal is discarded by a bare call"
	_ = hostlist.Each(expr, func(string) bool { return true }) // want "error from hostlist.Each is assigned to _"
	defer hb.Unmarshal(b)                                      // want "error from proto.Unmarshal is discarded by a bare call"
	return hosts
}
