//eslurmlint:testpath eslurm/internal/evalloc_suppressed

// Package evalloc_suppressed shows an audited exception: the suppression
// names the analyzer and explains why the allocation is acceptable.
package evalloc_suppressed

import "time"

type Engine struct{}

func (e *Engine) After(d time.Duration, fn func()) {}

func SetupOnly(e *Engine, jobs []int) {
	for _, j := range jobs {
		//eslurmlint:ignore evalloc one-time setup loop, not a hot path
		e.After(time.Second, func() { _ = j })
	}
}
