//eslurmlint:testpath eslurm/internal/reconcile

// Package drainpath_good pins the shapes drainpath must accept:
// exactly-once on every arm, nil-guard opt-outs, error-return excuses,
// ownership escapes, and forwarding through a proven exactly-once
// helper.
package drainpath_good

import "errors"

type pending struct{ done func(clean bool) }

// OnceBothArms invokes on every path.
func OnceBothArms(clean bool, done func(clean bool)) {
	if clean {
		done(true)
		return
	}
	done(false)
}

// NilGuard is the caller opt-out: the nil path owes nothing.
func NilGuard(done func(clean bool)) {
	if done == nil {
		return
	}
	done(true)
}

// NilGuardInline wraps the single invocation in the positive guard.
func NilGuardInline(done func(clean bool)) {
	if done != nil {
		done(true)
	}
}

// ErrorExcuse returns a fresh error instead of invoking: the operation
// never started and the caller learns it synchronously.
func ErrorExcuse(known bool, done func(clean bool)) error {
	if !known {
		return errors.New("reconcile: unknown satellite")
	}
	done(true)
	return nil
}

// StoreEscape transfers the obligation to the pending record's owner.
func StoreEscape(done func(clean bool)) *pending {
	return &pending{done: done}
}

// fireOnce is a proven exactly-once helper: nil-guarded single call.
func fireOnce(cb func(clean bool)) {
	if cb != nil {
		cb(true)
	}
}

// Forwarded routes its callback through fireOnce, which the summary
// fixpoint certifies, so this counts as the one invocation.
func Forwarded(done func(clean bool)) {
	fireOnce(done)
}
