//eslurmlint:testpath eslurm/internal/pkgdoc_bad

// Package pkgdoc_bad documents what it does but never says a word about
// the reproducibility guarantee it lives under.
package pkgdoc_bad // want "package doc never mentions determinism"

// F exists so the package has a body.
func F() int { return 1 }
