//eslurmlint:testpath eslurm/internal/randlabel_sup_b

// Package randlabel_sup_b is the suppressed collision's other half.
package randlabel_sup_b

// Engine mimics the simnet stream surface.
type Engine struct{}

func (e *Engine) Rand(label string) int { return 0 }

func Draw(e *Engine) int {
	//eslurmlint:ignore randlabel deliberately shared arrival stream; the two packages model one workload source
	return e.Rand("workload/arrivals")
}
