// Package maporder_bad iterates maps with order-sensitive side effects
// and never sorts, so every loop below must be flagged.
package maporder_bad

import (
	"time"

	"eslurm/internal/simnet"
)

func UnsortedKeys(m map[string]int) []string {
	var out []string
	for k := range m { // want "appends to out"
		out = append(out, k)
	}
	return out
}

func Emit(m map[string]int, ch chan int) {
	for _, v := range m { // want "sends on a channel"
		ch <- v
	}
}

func ScheduleAll(e *simnet.Engine, m map[string]func()) {
	for _, fn := range m { // want "calls simnet.After"
		e.After(time.Second, fn)
	}
}

// Closures registered from a map loop inherit its random order: the After
// call sits inside a nested literal but is still an effect of this loop.
func ScheduleNested(e *simnet.Engine, m map[string]func()) func() {
	return func() {
		for _, fn := range m { // want "calls simnet.After"
			e.After(time.Second, fn)
		}
	}
}
