//eslurmlint:testpath eslurm/internal/lookahead_good

// Package lookahead_good pins the proof shapes lookahead must accept:
// direct now+latency, guarded raises, addend-returning helpers, and
// closure-captured addends.
package lookahead_good

// ShardGroup mimics the simnet cross-cell scheduling surface.
type ShardGroup struct{}

func (g *ShardGroup) Send(src, dst int, at int64, fn func()) {}

// Cell mimics a per-cell engine clock.
type Cell struct{}

func (c *Cell) Now() int64 { return 0 }

// Config carries the latency the lookahead is derived from.
type Config struct{ Latency int64 }

// DirectBound is the canonical anchored send.
func DirectBound(g *ShardGroup, c *Cell, cfg Config, dst int) {
	g.Send(0, dst, c.Now()+cfg.Latency, func() {})
}

// ViaLocal binds the bound to a local first.
func ViaLocal(g *ShardGroup, c *Cell, cfg Config, dst int) {
	at := c.Now() + cfg.Latency
	g.Send(0, dst, at, func() {})
}

// GuardedRaise is the deadline-raising idiom: the comparison on the
// taken branch proves the raised value keeps the bound.
func GuardedRaise(g *ShardGroup, c *Cell, cfg Config, dst int, deadline int64) {
	failAt := c.Now() + cfg.Latency
	if deadline > failAt {
		failAt = deadline
	}
	g.Send(0, dst, failAt, func() {})
}

// transfer is an addend-returning helper: latency plus a non-negative
// serialization cost, the TransferTime shape.
func transfer(cfg Config, size int64) int64 {
	ser := size / 8
	return cfg.Latency + ser
}

// ViaHelper anchors the helper's addend on the clock.
func ViaHelper(g *ShardGroup, c *Cell, cfg Config, dst int, size int64) {
	g.Send(0, dst, c.Now()+transfer(cfg, size), func() {})
}

// CapturedAddend proves through a closure boundary: L is classified
// decl-wide, so the literal's send still sees the addend.
func CapturedAddend(g *ShardGroup, c *Cell, cfg Config, dst int) func() {
	L := cfg.Latency
	return func() {
		g.Send(0, dst, c.Now()+L, func() {})
	}
}

// AccumulatedAddend grows an addend with += and keeps its class.
func AccumulatedAddend(g *ShardGroup, c *Cell, cfg Config, dst int, hops int64) {
	d := cfg.Latency
	d += cfg.Latency * hops
	g.Send(0, dst, c.Now()+d, func() {})
}
