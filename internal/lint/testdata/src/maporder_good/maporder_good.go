// Package maporder_good shows the compliant patterns: the sorted-keys
// idiom and pure aggregation, neither of which may be flagged.
package maporder_good

import (
	"sort"
	"time"

	"eslurm/internal/simnet"
)

// SortedKeys is the sanctioned idiom: collect, then sort in the same
// block before anything order-sensitive happens.
func SortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// ScheduleSorted drives the event-carrying calls from the sorted slice,
// not the map, so registration order is deterministic.
func ScheduleSorted(e *simnet.Engine, m map[string]func()) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		e.After(time.Second, m[k])
	}
}

// Sum only aggregates with a commutative operation; order cannot leak.
func Sum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}
