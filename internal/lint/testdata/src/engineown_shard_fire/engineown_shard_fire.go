//eslurmlint:testpath eslurm/internal/simnet

// Package simnet (test double) proves the shard exemption is typed, not
// a package waiver: raw engine state crossing goroutines, channels, or
// globals in the very package that declares ShardGroup still fires.
package simnet

import "time"

// Engine mimics the kernel surface; engineown matches it by name.
type Engine struct {
	now time.Duration
}

func (e *Engine) Step() bool { return false }

// ShardGroup exists so the sanctioned type is in scope — its presence
// must not silence anything below.
type ShardGroup struct {
	cells []*Engine
}

// BadFanOut ships the raw engine slice over an unsanctioned channel.
func (g *ShardGroup) BadFanOut(ch chan []*Engine) {
	ch <- g.cells // want "escapes to a channel send"
}

// BadSpawn hands one raw cell to a goroutine.
func (g *ShardGroup) BadSpawn() {
	c := g.cells[0]
	go func() {
		c.Step() // want "escapes to a goroutine (captured by the go'd closure)"
	}()
}

// leakedCell is engine-bound global state: flagged at the declaration.
var leakedCell *Engine // want "package-level var leakedCell holds engine-bound"

// BadPark parks a cell in the package-level variable.
func (g *ShardGroup) BadPark() {
	leakedCell = g.cells[0] // want "escapes to a store into package-level var leakedCell"
}
