//eslurmlint:testpath eslurm/internal/staleignore_suppressed

// Package staleignore_suppressed pins the one-level escape: a stale
// ignore that must outlive its finding (here, standing in for a
// build-tagged twin the linter cannot see) is excused by an explicit
// staleignore suppression on the line above it.
package staleignore_suppressed

//eslurmlint:ignore staleignore the build-tagged twin of this file still reads the wall clock on this line
//eslurmlint:ignore walltime wall-clock read lives in the build-tagged twin
func Quiet() int {
	return 7
}
