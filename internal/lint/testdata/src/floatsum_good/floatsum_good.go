//eslurmlint:testpath eslurm/internal/floatsum_good

// Package floatsum_good holds the compliant reductions: ordered
// collections, associative integer sums, the sorted-keys fix, and
// non-accumulating float writes. None may fire.
package floatsum_good

import "sort"

// SliceSum iterates an ordered collection: deterministic.
func SliceSum(xs []float64) float64 {
	var total float64
	for _, v := range xs {
		total += v
	}
	return total
}

// IntSum over a map is fine: integer addition is associative and
// commutative, so order cannot leak (this is maporder_good.Sum's case).
func IntSum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// SortedSum is the sanctioned fix: accumulate in sorted-key order.
func SortedSum(m map[string]float64) float64 {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var total float64
	for _, k := range keys {
		total += m[k]
	}
	return total
}

// MaxVal only overwrites; max is order-independent, and a plain assign
// is not a reduction.
func MaxVal(m map[string]float64) float64 {
	best := 0.0
	for _, v := range m {
		if v > best {
			best = v
		}
	}
	return best
}
