//eslurmlint:testpath eslurm/internal/timerleak_suppressed

// Package timerleak_suppressed pins that a timerleak finding is
// silenced by an ignore directive with a reason at the binding site.
package timerleak_suppressed

// Engine mimics the simnet scheduling surface.
type Engine struct{}

func (e *Engine) After(d int64, fn func()) Event { return Event{} }

// Event is a generation-checked one-shot handle.
type Event struct{}

func (ev Event) Cancel() bool { return true }

// ArmWatchdog deliberately lets the watchdog outlive the error path:
// firing after a failed arm is the wanted behaviour.
func ArmWatchdog(e *Engine, degraded bool) {
	//eslurmlint:ignore timerleak the watchdog must fire even when arming bails out on a degraded pool; the callback self-checks staleness
	ev := e.After(100, func() {})
	if degraded {
		return
	}
	ev.Cancel()
}
