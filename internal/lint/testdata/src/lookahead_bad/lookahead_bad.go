//eslurmlint:testpath eslurm/internal/lookahead_bad

// Package lookahead_bad pins lookahead firing on cross-cell sends whose
// delivery time has no provable now+lookahead lower bound.
package lookahead_bad

// ShardGroup mimics the simnet cross-cell scheduling surface.
type ShardGroup struct{}

func (g *ShardGroup) Send(src, dst int, at int64, fn func()) {}

// Cell mimics a per-cell engine clock.
type Cell struct{}

func (c *Cell) Now() int64 { return 0 }

// Config carries the latency the lookahead is derived from.
type Config struct{ Latency int64 }

// BareNow schedules at the current instant: below the horizon by
// definition.
func BareNow(g *ShardGroup, c *Cell, dst int) {
	g.Send(0, dst, c.Now(), func() {}) // want "cross-cell Send in lookahead_bad.BareNow cannot prove delivery time `c.Now()` ≥ now+lookahead (it is only ≥ now, missing the lookahead addend)"
}

// UnknownDelay adds an unproven delay: d could be zero, so the bound
// does not hold.
func UnknownDelay(g *ShardGroup, c *Cell, dst int, d int64) {
	now := c.Now()
	g.Send(0, dst, now+d, func() {}) // want "cross-cell Send in lookahead_bad.UnknownDelay cannot prove delivery time `now + d` ≥ now+lookahead (it is only ≥ now, missing the lookahead addend)"
}

// BoundedOnOneArmOnly proves the bound on the slow path but not the
// rushed one, and the must-analysis rejects the merge.
func BoundedOnOneArmOnly(g *ShardGroup, c *Cell, cfg Config, dst int, d int64, rush bool) {
	at := c.Now() + cfg.Latency
	if rush {
		at = c.Now() + d
	}
	g.Send(0, dst, at, func() {}) // want "cross-cell Send in lookahead_bad.BoundedOnOneArmOnly cannot prove delivery time `at` ≥ now+lookahead (it is unproven) on path: entry -> `rush`=false"
}

// AddendAlone has the offset but no clock anchor: an absolute time of
// +Latency is in the simulation's distant past.
func AddendAlone(g *ShardGroup, cfg Config, dst int) {
	g.Send(0, dst, cfg.Latency, func() {}) // want "cross-cell Send in lookahead_bad.AddendAlone cannot prove delivery time `cfg.Latency` ≥ now+lookahead (it is a latency offset with no now anchor)"
}
