//eslurmlint:testpath eslurm/internal/reconcileloop_bad

// Package reconcileloop_bad is the naive port of the reconciler loop —
// a background goroutine polling a stop channel — proving the pattern
// in reconcileloop_good is load-bearing: written this way, gosim and
// engineown both fire, and there is no package waiver to hide behind.
package reconcileloop_bad

import "time"

// Engine mimics the simnet kernel surface; engineown matches it by name.
type Engine struct {
	now time.Duration
}

func (e *Engine) Rand(label string) *Stream        { return &Stream{} }
func (e *Engine) Metrics() *Registry               { return &Registry{} }
func (e *Engine) After(d time.Duration, fn func()) {}

type Stream struct{ state uint64 }

type Registry struct{ names []string }

// Reconciler holds the engine, so Reconciler values are engine-bound.
type Reconciler struct {
	e    *Engine
	stop chan struct{}
}

// Start spawns the loop as a real goroutine: gosim flags the go
// statement itself, engineown flags the engine-bound receiver escaping
// to it.
func (r *Reconciler) Start() {
	go r.loop() // want "go statement in a simulation package" "escapes to a goroutine (receiver of the go'd method call)"
}

func (r *Reconciler) loop() {
	for {
		select {
		case <-r.stop:
			return
		default:
		}
	}
}

// Share ships the engine to a sibling worker over an unsanctioned
// channel — the fan-out a shared reconcile queue would need.
func Share(r *Reconciler, ch chan *Engine) {
	ch <- r.e // want "escapes to a channel send"
}

// current parks a reconciler where any goroutine can reach it:
// engine-bound global state, flagged at the declaration and the store.
var current *Reconciler // want "package-level var current holds engine-bound"

func Install(r *Reconciler) {
	current = r // want "escapes to a store into package-level var current"
}
