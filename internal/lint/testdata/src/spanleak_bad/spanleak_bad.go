//eslurmlint:testpath eslurm/internal/spanleak_bad

// Package spanleak_bad pins spanleak firing on branch-dependent span
// leaks, with the exact multi-block path traces the messages carry.
package spanleak_bad

// Tracer mimics the obs tracing surface.
type Tracer struct{}

func (t *Tracer) Start(name string, parent uint64) uint64 { return 1 }
func (t *Tracer) End(id uint64)                           {}
func (t *Tracer) Instant(name string)                     {}
func (t *Tracer) SetAttr(id uint64, k, v string)          {}

// LeakOnEarlyReturn Ends only on the happy path.
func LeakOnEarlyReturn(tr *Tracer, fail bool) {
	sp := tr.Start("work", 0) // want "span \"work\" may reach an exit of spanleak_bad.LeakOnEarlyReturn without End on path: Start (spanleak_bad.go:17) -> `fail`=true (spanleak_bad.go:18) -> return"
	if fail {
		return
	}
	tr.End(sp)
}

// LeakOnOneCase Ends in one switch arm but not the default.
func LeakOnOneCase(tr *Tracer, mode int) {
	sp := tr.Start("dispatch", 0) // want "span \"dispatch\" may reach an exit of spanleak_bad.LeakOnOneCase without End on path: Start (spanleak_bad.go:26) -> default"
	switch mode {
	case 1:
		tr.End(sp)
	default:
		tr.Instant("skipped")
	}
}
