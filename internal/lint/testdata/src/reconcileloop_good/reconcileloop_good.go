//eslurmlint:testpath eslurm/internal/reconcileloop_good

// Package reconcileloop_good is the reconciler's control-loop pattern
// exactly as the linters must see it: the periodic observe→diff→act
// round is an engine ticker callback, every drain deadline is an engine
// timer, and all bookkeeping lives in maps owned by the reconciler. No
// goroutine is spawned and nothing engine-bound escapes, so gosim and
// engineown are silent without any package-level waiver.
package reconcileloop_good

import "time"

// Engine mimics the simnet kernel surface; engineown matches it by name.
type Engine struct {
	now time.Duration
}

func (e *Engine) Rand(label string) *Stream                { return &Stream{} }
func (e *Engine) Metrics() *Registry                       { return &Registry{} }
func (e *Engine) After(d time.Duration, fn func())         {}
func (e *Engine) Every(d time.Duration, fn func()) *Ticker { return &Ticker{} }

// Stream, Registry and Ticker are plain types: values are engine-owned
// only when derived from an engine.
type Stream struct{ state uint64 }

type Registry struct{ names []string }

type Ticker struct{ stopped bool }

func (t *Ticker) Stop() { t.stopped = true }

// Reconciler owns the engine it runs on; the periodic round and every
// drain deadline are engine callbacks on the owning goroutine.
type Reconciler struct {
	e        *Engine
	ticker   *Ticker
	draining map[int]bool
	backoff  map[int]time.Duration
	target   int
	active   int
}

func New(e *Engine, target int) *Reconciler {
	return &Reconciler{
		e:        e,
		target:   target,
		draining: map[int]bool{},
		backoff:  map[int]time.Duration{},
	}
}

// Start arms the observe→diff→act round as an engine ticker — the
// single-threaded stand-in for a background reconcile goroutine.
func (r *Reconciler) Start() {
	r.ticker = r.e.Every(30*time.Second, r.round)
}

// Stop disarms the ticker so the engine can drain to empty.
func (r *Reconciler) Stop() {
	if r.ticker != nil {
		r.ticker.Stop()
	}
}

// round reconciles the census toward the target, entirely inside one
// callback: promotes on deficit, deadline-bounded drains on excess.
func (r *Reconciler) round() {
	for r.active < r.target {
		r.promote(r.active)
	}
	for id := r.active - 1; r.active > r.target && id >= 0; id-- {
		r.drain(id)
	}
}

func (r *Reconciler) promote(id int) {
	r.backoff[id] = 2 * r.backoff[id]
	r.active++
}

// drain marks the satellite and arms a deadline timer; the forced
// completion is another engine callback on the same goroutine.
func (r *Reconciler) drain(id int) {
	if r.draining[id] {
		return
	}
	r.draining[id] = true
	r.active--
	r.e.After(90*time.Second, func() {
		delete(r.draining, id)
	})
}
