//eslurmlint:testpath eslurm/internal/gosim_good

// Package gosim_good stays single-threaded: work is expressed as engine
// callbacks, never goroutines, so the analyzer is silent.
package gosim_good

type Engine struct {
	queue []func()
}

func (e *Engine) After(fn func()) { e.queue = append(e.queue, fn) }

func (e *Engine) Run() {
	for len(e.queue) > 0 {
		fn := e.queue[0]
		e.queue = e.queue[1:]
		fn()
	}
}

func Drive(e *Engine) {
	e.After(func() { e.After(func() {}) })
	e.Run()
}
