//eslurmlint:testpath eslurm/internal/randlabel_a

// Package randlabel_a shares the literal stream label "shared/stream"
// with randlabel_b: both sites must fire. Same-package reuse and
// non-constant labels stay silent.
package randlabel_a

// Engine mimics the simnet stream surface; randlabel matches by method
// name and receiver type name.
type Engine struct{}

func (e *Engine) Rand(label string) int { return 0 }

func Draw(e *Engine) int {
	return e.Rand("shared/stream") // want "also derived in eslurm/internal/randlabel_b"
}

// Local and LocalAgain reuse a label inside one package: intentional
// shared streams are a package-local decision, so this is silent.
func Local(e *Engine) int {
	return e.Rand("a/private")
}

func LocalAgain(e *Engine) int {
	return e.Rand("a/private")
}
