//eslurmlint:testpath eslurm/internal/evalloc_bad

// Package evalloc_bad schedules per-event closures that capture loop
// variables inside an internal/ package; every site must fire.
package evalloc_bad

import "time"

// Engine mimics the simnet scheduling surface; evalloc matches by method
// name and receiver type name.
type Engine struct{}

func (e *Engine) Schedule(at time.Duration, fn func()) {}
func (e *Engine) After(d time.Duration, fn func())     {}
func (e *Engine) Every(p time.Duration, fn func())     {}

func RangeCapture(e *Engine, jobs []int) {
	for i, j := range jobs {
		e.Schedule(time.Duration(i), func() { _ = j }) // want "captures loop variable j"
	}
}

func ForClauseCapture(e *Engine) {
	for k := 0; k < 10; k++ {
		e.After(time.Second, func() { _ = k }) // want "captures loop variable k"
	}
}

func EveryCapture(e *Engine, names []string) {
	for _, name := range names {
		e.Every(time.Minute, func() { println(name) }) // want "captures loop variable name"
	}
}

func NestedLitCapture(e *Engine, jobs []int) {
	for _, j := range jobs {
		e.After(time.Second, func() { // want "captures loop variable j"
			fn := func() { _ = j }
			fn()
		})
	}
}

func NestedLoopOuterCapture(e *Engine, rows [][]int) {
	for _, row := range rows {
		for range row {
			e.Schedule(0, func() { _ = row }) // want "captures loop variable row"
		}
	}
}
