//eslurmlint:testpath eslurm/internal/spanleak_good

// Package spanleak_good pins the settling and excusing rules spanleak
// must stay silent on: straight-line End, escapes, nil-safe regimes,
// rebinding, and annotation-only uses.
package spanleak_good

// Tracer mimics the obs tracing surface.
type Tracer struct{}

func (t *Tracer) Start(name string, parent uint64) uint64 { return 1 }
func (t *Tracer) End(id uint64)                           {}
func (t *Tracer) Instant(name string)                     {}
func (t *Tracer) SetAttr(id uint64, k, v string)          {}

type job struct{ span uint64 }

func finish(id uint64) {}

// StraightLine is the canonical Start/annotate/End shape.
func StraightLine(tr *Tracer, hot bool) {
	sp := tr.Start("work", 0)
	if hot {
		tr.SetAttr(sp, "hot", "true")
	}
	tr.End(sp)
}

// ZeroGuard exits early only when the handle is proven zero (the
// nil-receiver tracer), which cannot leak.
func ZeroGuard(tr *Tracer) {
	sp := tr.Start("work", 0)
	if sp == 0 {
		return
	}
	tr.End(sp)
}

// NilRecvGuard Ends only under the tracer nil-check, the obs-layer
// calling convention.
func NilRecvGuard(tr *Tracer) {
	sp := tr.Start("work", 0)
	if tr != nil {
		tr.End(sp)
	}
}

// CaptureEscape hands the close to a deferred closure.
func CaptureEscape(tr *Tracer) func() {
	sp := tr.Start("work", 0)
	return func() { tr.End(sp) }
}

// StoreEscape parks the span on its job; the job's completion owns the
// End.
func StoreEscape(tr *Tracer, j *job) {
	sp := tr.Start("task", 0)
	j.span = sp
}

// ReturnEscape hands the span to the caller.
func ReturnEscape(tr *Tracer) uint64 {
	sp := tr.Start("task", 0)
	return sp
}

// HelperEscape hands the span to arbitrary non-Tracer code, which owns
// it from there.
func HelperEscape(tr *Tracer, fail bool) {
	sp := tr.Start("task", 0)
	if fail {
		finish(sp)
		return
	}
	tr.End(sp)
}

// Rebind reuses one variable for two sequential spans; each lifecycle
// settles before the next begins.
func Rebind(tr *Tracer) {
	sp := tr.Start("phase1", 0)
	tr.End(sp)
	sp = tr.Start("phase2", 0)
	tr.End(sp)
}

// ParentArg uses one span as another Start's parent — annotation, not
// consumption — and Ends both.
func ParentArg(tr *Tracer) {
	root := tr.Start("root", 0)
	child := tr.Start("child", root)
	tr.End(child)
	tr.End(root)
}
