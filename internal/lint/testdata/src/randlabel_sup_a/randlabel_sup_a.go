//eslurmlint:testpath eslurm/internal/randlabel_sup_a

// Package randlabel_sup_a shares a label with randlabel_sup_b on
// purpose; both sites carry the justification, so nothing fires.
package randlabel_sup_a

// Engine mimics the simnet stream surface.
type Engine struct{}

func (e *Engine) Rand(label string) int { return 0 }

func Draw(e *Engine) int {
	//eslurmlint:ignore randlabel deliberately shared arrival stream; the two packages model one workload source
	return e.Rand("workload/arrivals")
}
