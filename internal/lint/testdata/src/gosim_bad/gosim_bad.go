//eslurmlint:testpath eslurm/internal/gosim_bad

// Package gosim_bad spawns goroutines inside a simulation package, which
// makes the event trace depend on the Go scheduler.
package gosim_bad

type Engine struct{ now int64 }

func (e *Engine) Advance() { e.now++ }

func Drive(e *Engine) {
	go e.Advance() // want "go statement in a simulation package"
	done := make(chan struct{})
	go func() { // want "go statement in a simulation package"
		e.Advance()
		close(done)
	}()
	<-done
}
