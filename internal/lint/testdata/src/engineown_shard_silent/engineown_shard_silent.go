//eslurmlint:testpath eslurm/internal/simnet

// Package simnet (test double) models the shard kernel's sanctioned
// barrier handoff: window workers receive whole cells over shardCmd
// channels, join over shardDone tokens, and the ShardGroup receiver
// itself is go'd. Every escape in this file is of a sanctioned type
// (ShardGroup, shardCmd, shardDone, or a container of one), so
// engineown must report nothing.
package simnet

import "time"

// Engine mimics the kernel surface; engineown matches it by name.
type Engine struct {
	now time.Duration
}

func (e *Engine) Step() bool { return false }

// ShardGroup and shardCmd mirror the real kernel's handoff types.
type ShardGroup struct {
	cells   []*Engine
	workers int
}

type shardCmd struct {
	cells []*Engine
	end   time.Duration
}

type shardDone struct{}

// shardPool mirrors the real kernel's persistent pool: engine-holding
// struct whose channels are all of sanctioned types.
type shardPool struct {
	cmds    []chan shardCmd
	done    chan shardDone
	stripes [][]*Engine
}

// runWindow fans the cells out to workers and waits at the barrier —
// the sanctioned crossing the exemption exists for.
func (g *ShardGroup) runWindow(end time.Duration) {
	p := &shardPool{
		cmds: make([]chan shardCmd, g.workers),
		done: make(chan shardDone, g.workers),
	}
	cmds, done := p.cmds, p.done
	for w := 0; w < g.workers; w++ {
		for i := w; i < len(g.cells); i += g.workers {
			p.stripes = append(p.stripes, nil)
		}
		cmds[w] = make(chan shardCmd, 1)
		go g.worker(cmds[w], done)
	}
	for w := 0; w < g.workers; w++ {
		var mine []*Engine
		for i := w; i < len(g.cells); i += g.workers {
			mine = append(mine, g.cells[i])
		}
		cmds[w] <- shardCmd{cells: mine, end: end}
	}
	for w := 0; w < g.workers; w++ {
		<-done
	}
}

func (g *ShardGroup) worker(cmds chan shardCmd, done chan<- shardDone) {
	for cmd := range cmds {
		for _, c := range cmd.cells {
			for c.Step() {
			}
		}
		done <- shardDone{}
	}
}
