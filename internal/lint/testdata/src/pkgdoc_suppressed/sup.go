//eslurmlint:testpath eslurm/internal/pkgdoc_suppressed

// Package pkgdoc_suppressed is generated glue with nothing to document.

//eslurmlint:ignore pkgdoc generated adapter shims; the generator's package carries the contract
package pkgdoc_suppressed

// F exists so the package has a body.
func F() int { return 1 }
