//eslurmlint:testpath eslurm/internal/globalmut_good

// Package globalmut_good is compliant: constants, immutable-typed vars
// that are never written (sentinel errors, function values, numeric
// defaults), and function-local mutable state are all fine.
package globalmut_good

import "errors"

const maxNodes = 4096

// ErrDrained is the sentinel-error idiom: interface-typed, assigned once
// at initialization, never written again.
var ErrDrained = errors.New("globalmut_good: drained")

// defaultSeed is basic-typed and read-only.
var defaultSeed int64 = 42

// clamp is a function value that is never reassigned.
var clamp = func(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Lookup builds its table per call: mutable state stays function-local.
func Lookup(k string) int {
	table := map[string]int{"a": 1, "b": 2}
	return clamp(table[k], 0, maxNodes)
}

func Seed() int64 { return defaultSeed }
