//eslurmlint:testpath eslurm/internal/satellite

// Package drainpath_suppressed pins that a drainpath finding is
// silenced by an ignore directive with a reason at the function.
package drainpath_suppressed

// BestEffortNotify drops the callback when the pool is already torn
// down; callers treat the notification as best-effort by contract.
//
//eslurmlint:ignore drainpath teardown notifications are best-effort by documented contract; callers poll Drained() as the source of truth
func BestEffortNotify(tornDown bool, done func(clean bool)) {
	if tornDown {
		return
	}
	done(true)
}
