//eslurmlint:testpath eslurm/internal/engineown_suppressed

// Package engineown_suppressed pins the suppression path: a reasoned
// //eslurmlint:ignore on the escape site silences the finding.
package engineown_suppressed

import "time"

// Engine mimics the simnet kernel surface.
type Engine struct {
	now time.Duration
}

func (e *Engine) Step() bool { return false }

// Drain is a sanctioned cross-goroutine handoff: the engine is fully
// stopped before the goroutine starts, so ownership has already been
// transferred (the suppression documents the protocol).
func Drain(e *Engine, done chan struct{}) {
	go func() {
		//eslurmlint:ignore engineown engine is stopped and handed off wholesale before this goroutine starts; ownership transfers, it is not shared
		e.Step()
		close(done)
	}()
}
