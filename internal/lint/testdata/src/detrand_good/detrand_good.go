// Package detrand_good threads all randomness through explicitly seeded
// *rand.Rand values — the sanctioned pattern.
package detrand_good

import "math/rand"

// NewStream threads a caller-provided seed; the seed expression is a
// variable, not a constant, so detrand stays silent.
func NewStream(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

func Draw(r *rand.Rand, n int) int {
	r.Shuffle(n, func(i, j int) {})
	return r.Intn(n)
}
