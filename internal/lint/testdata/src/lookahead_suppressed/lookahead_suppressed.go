//eslurmlint:testpath eslurm/internal/lookahead_suppressed

// Package lookahead_suppressed pins that a lookahead finding is
// silenced by an ignore directive with a reason at the Send site.
package lookahead_suppressed

// ShardGroup mimics the simnet cross-cell scheduling surface.
type ShardGroup struct{}

func (g *ShardGroup) Send(src, dst int, at int64, fn func()) {}

// Cell mimics a per-cell engine clock.
type Cell struct{}

func (c *Cell) Now() int64 { return 0 }

// ModelInvariantBound relies on an out-of-band invariant (d ≥ latency by
// construction) the prover cannot see.
func ModelInvariantBound(g *ShardGroup, c *Cell, dst int, d int64) {
	//eslurmlint:ignore lookahead d is scaled from TransferTime which is >= Latency by model invariant; the prover cannot see through the scaling helper
	g.Send(0, dst, c.Now()+d, func() {})
}
