//eslurmlint:testpath eslurm/internal/randlabel_b

// Package randlabel_b is the other half of the cross-package label
// collision with randlabel_a.
package randlabel_b

// Engine mimics the simnet stream surface.
type Engine struct{}

func (e *Engine) Rand(label string) int { return 0 }

func Draw(e *Engine) int {
	return e.Rand("shared/stream") // want "also derived in eslurm/internal/randlabel_a"
}

// Dynamic labels cannot be judged statically and are out of scope.
func Dynamic(e *Engine, label string) int {
	return e.Rand(label)
}
