//eslurmlint:testpath eslurm/internal/engineown_bad

// Package engineown_bad exercises the engine-ownership escape analysis:
// every route by which engine-owned state can leave its owning goroutine
// — go-spawned closures, channel sends, package-level variables, and
// interprocedural combinations — must fire with the full chain.
package engineown_bad

import "time"

// Engine mimics the simnet kernel surface; engineown matches the type
// structurally by name.
type Engine struct {
	now time.Duration
}

func (e *Engine) Rand(label string) *Stream        { return &Stream{} }
func (e *Engine) Metrics() *Registry               { return &Registry{} }
func (e *Engine) Seed() int64                      { return 0 }
func (e *Engine) Step() bool                       { return false }
func (e *Engine) After(d time.Duration, fn func()) {}

// Stream and Registry are plain types: values of these types are only
// engine-owned when they are derived from an engine.
type Stream struct{ state uint64 }

func (s *Stream) Int() int { return 0 }

type Registry struct{ names []string }

// Pool holds an engine, so Pool values are engine-bound by type.
type Pool struct {
	e    *Engine
	size int
}

// leakedEngine is engine-bound global state: flagged at the declaration.
var leakedEngine *Engine // want "package-level var leakedEngine holds engine-bound *engineown_bad.Engine"

// GoCapture leaks the engine into a go-spawned closure.
func GoCapture(e *Engine) {
	go func() {
		e.Step() // want "escapes to a goroutine (captured by the go'd closure)"
	}()
}

// GoDerived leaks a derived RNG stream: the chain must carry the
// Engine.Rand hop that established ownership.
func GoDerived(e *Engine) {
	rng := e.Rand("sched")
	go func() {
		rng.Int() // want "escapes to a goroutine (captured by the go'd closure) (engineown_bad.go:51) via Engine.Rand (engineown_bad.go:50)"
	}()
}

// GoArg leaks the engine as a direct argument to the go'd call.
func GoArg(e *Engine) {
	go consume(e) // want "escapes to a goroutine (argument to the go'd call)"
}

func consume(e *Engine) {}

// GoMethod leaks the receiver of a go'd method call.
func GoMethod(p *Pool) {
	go p.run() // want "escapes to a goroutine (receiver of the go'd method call)"
}

func (p *Pool) run() {}

// SendHolder leaks an engine-holding struct over a channel.
func SendHolder(e *Engine, ch chan *Pool) {
	p := &Pool{e: e}
	ch <- p // want "escapes to a channel send"
}

// StoreGlobal parks the engine in a package-level variable.
func StoreGlobal(e *Engine) {
	leakedEngine = e // want "escapes to a store into package-level var leakedEngine"
}

// publish forwards its parameter to a channel: a summarized escape that
// callers inherit.
func publish(s *Stream, ch chan *Stream) {
	ch <- s
}

// IndirectSend leaks a derived stream through the publish helper: the
// finding lands at the call site with the callee hop in the chain.
func IndirectSend(e *Engine, ch chan *Stream) {
	s := e.Rand("metrics")
	publish(s, ch) // want "escapes to a channel send (engineown_bad.go:84) via Engine.Rand (engineown_bad.go:90) -> engineown_bad.publish (engineown_bad.go:91)"
}

// registry is a plain global with a pointer-receiver setter.
type holderRegistry struct{ pools []*Pool }

func (r *holderRegistry) Add(p *Pool) { r.pools = append(r.pools, p) }

var globalRegistry holderRegistry // want "package-level var globalRegistry holds engine-bound"

// RegisterGlobal hands an engine-holding value to a method on a
// package-level var: global state by another door.
func RegisterGlobal(e *Engine) {
	p := &Pool{e: e}
	globalRegistry.Add(p) // want "escapes to a call on package-level var globalRegistry"
}
