//eslurmlint:testpath eslurm/cmd/bench

// Package walltime_cmd pretends (via the testpath directive) to live
// under cmd/, where wall-clock reads are allowed for benchmarking.
package walltime_cmd

import "time"

func Measure(fn func()) time.Duration {
	t0 := time.Now()
	fn()
	return time.Since(t0)
}
