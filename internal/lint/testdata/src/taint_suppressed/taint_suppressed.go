//eslurmlint:testpath eslurm/internal/taint_suppressed

// Package taint_suppressed pins that a taint finding is silenced by an
// ignore directive with a reason at the sink call site.
package taint_suppressed

import "time"

// Engine mimics the simnet scheduling surface.
type Engine struct{}

func (e *Engine) After(d time.Duration, fn func()) {}

func bootDelay() time.Duration {
	return time.Duration(time.Now().Unix() % 3)
}

func Boot(e *Engine) {
	//eslurmlint:ignore taint pre-simulation startup jitter, injected before the trace digest begins
	e.After(bootDelay(), func() {})
}
