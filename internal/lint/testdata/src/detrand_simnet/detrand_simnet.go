//eslurmlint:testpath eslurm/internal/simnet

// Package detrand_simnet pretends to be the simnet package, whose RNG
// stream constructor is the one place allowed to fix source seeds (it
// hashes engine seed + label into them).
package detrand_simnet

import "math/rand"

func StreamFor(hashed int64) *rand.Rand {
	_ = rand.New(rand.NewSource(12345)) // exempt: simnet owns stream construction
	return rand.New(rand.NewSource(hashed))
}
