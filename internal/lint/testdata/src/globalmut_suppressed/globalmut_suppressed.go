//eslurmlint:testpath eslurm/internal/globalmut_suppressed

// Package globalmut_suppressed pins the suppression path: a reasoned
// //eslurmlint:ignore on (or above) the declaration silences the audit.
package globalmut_suppressed

// families is a read-only catalogue; the suppression documents why it is
// safe to keep at package level.
//
//eslurmlint:ignore globalmut read-only catalogue, indexed but never written or aliased out
var families = []string{"cfd", "em", "bio"}

func Family(i int) string { return families[i%len(families)] }
