//eslurmlint:testpath eslurm/internal/staleignore_bad

// Package staleignore_bad carries an ignore directive whose finding is
// gone — the code it excused was fixed, the directive stayed. The
// directive itself must fire.
package staleignore_bad

//eslurmlint:ignore walltime used to excuse a time.Now here before the fix // want "suppresses nothing"
func Quiet() int {
	return 42
}
