//eslurmlint:testpath eslurm/internal/evalloc_good

// Package evalloc_good exercises every compliant shape: explicit copies,
// hoisted callbacks, scheduling outside loops, loops inside the callback,
// non-Engine receivers, and cmd/-style packages (via the sibling case's
// path scoping). None of these may fire.
package evalloc_good

import "time"

type Engine struct{}

func (e *Engine) Schedule(at time.Duration, fn func()) {}
func (e *Engine) After(d time.Duration, fn func())     {}
func (e *Engine) Every(p time.Duration, fn func())     {}

// Pool is not an Engine; its scheduling namesakes are out of scope.
type Pool struct{}

func (p *Pool) Schedule(at time.Duration, fn func()) {}

func ExplicitCopy(e *Engine, jobs []int) {
	for i, j := range jobs {
		i, j := i, j
		e.Schedule(time.Duration(i), func() { _ = j })
	}
}

func Hoisted(e *Engine) {
	n := 0
	tick := func() { n++ }
	for k := 0; k < 10; k++ {
		e.After(time.Second, tick)
	}
}

func OutsideLoop(e *Engine, total int) {
	e.After(time.Second, func() { _ = total })
}

func LoopInsideCallback(e *Engine, jobs []int) {
	e.After(time.Second, func() {
		sum := 0
		for _, j := range jobs {
			sum += j
		}
	})
}

func NonEngineReceiver(p *Pool, jobs []int) {
	for _, j := range jobs {
		p.Schedule(time.Second, func() { _ = j })
	}
}

func CapturesNonLoopVar(e *Engine, jobs []int) {
	total := len(jobs)
	for range jobs {
		e.After(time.Second, func() { _ = total })
	}
}
