//eslurmlint:testpath eslurm/cmd/gosim_cmd

// Package gosim_cmd lives outside internal/, where goroutines are fine
// (CLIs parallelize freely); the analyzer must stay silent.
package gosim_cmd

func Fetch(urls []string) {
	done := make(chan struct{}, len(urls))
	for range urls {
		go func() { done <- struct{}{} }()
	}
	for range urls {
		<-done
	}
}
