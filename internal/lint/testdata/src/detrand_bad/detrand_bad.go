// Package detrand_bad draws from the global math/rand generator and
// bakes a constant seed into a source — both forbidden.
package detrand_bad

import "math/rand"

func Bad(n int) int {
	rand.Seed(99)                      // want "global math/rand generator"
	x := rand.Intn(n)                  // want "global math/rand generator"
	f := rand.Float64()                // want "global math/rand generator"
	rand.Shuffle(n, func(i, j int) {}) // want "global math/rand generator"
	r := rand.New(rand.NewSource(42))  // want "constant seed"
	// Method calls on a threaded *rand.Rand share names with the global
	// functions and must NOT be flagged.
	return x + r.Intn(n) + int(f)
}
