//eslurmlint:testpath eslurm/internal/taint_good

// Package taint_good holds the compliant mirror images of taint_bad:
// seeded streams, the sorted-keys idiom, and sources that never reach a
// sink. None of these may fire.
package taint_good

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// Engine mimics the simnet scheduling surface.
type Engine struct{}

func (e *Engine) Schedule(at time.Duration, fn func()) {}
func (e *Engine) After(d time.Duration, fn func())     {}

// seededDelay draws from a threaded *rand.Rand: methods on a seeded
// stream are the sanctioned pattern, not a source, even though they live
// in math/rand.
func seededDelay(rng *rand.Rand) time.Duration {
	return time.Duration(rng.Int63n(1000))
}

func ScheduleSeeded(e *Engine, rng *rand.Rand) {
	e.After(seededDelay(rng), func() {})
}

// sortedKeys collects in map order but sorts with a total order before
// returning: the sorted-keys idiom cleanses map-order taint, including
// across the function boundary.
func sortedKeys(m map[int]bool) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

func ScheduleSorted(e *Engine, m map[int]bool) {
	for _, k := range sortedKeys(m) {
		e.Schedule(time.Duration(k), func() {})
	}
}

// LogWall reads the wall clock but only prints it: a source with no path
// to a sink stays silent (walltime owns this site in internal/ scopes;
// taint_good masquerades as internal too, but only taint runs here).
func LogWall() {
	fmt.Println(time.Now())
}
