//eslurmlint:testpath eslurm/internal/globalmut_bad

// Package globalmut_bad exercises the global-state audit: every mutable
// package-level var class must fire, and written vars of immutable type
// must fire with the write site in the message.
package globalmut_bad

import "sync"

var cache = map[string]int{} // want "package-level var cache (map[string]int) is mutable shared state"

var order []string // want "package-level var order ([]string) is mutable shared state"

var current *Config // want "package-level var current (*globalmut_bad.Config) is mutable shared state"

var mu sync.Mutex // want "package-level var mu (sync.Mutex) is mutable shared state: written via pointer-receiver call to Lock"

var weights [4]float64 // want "package-level var weights ([4]float64) is mutable shared state"

var updates chan int // want "package-level var updates (chan int) is mutable shared state"

// calls is immutable-typed (int) but observably written, so it fires
// with the increment site.
var calls int // want "package-level var calls (int) is mutable shared state: written via increment"

// sink is interface-typed and reassigned after init.
var sink error // want "package-level var sink (error) is mutable shared state: written via assignment"

type Config struct{ Nodes int }

func Touch(err error) {
	mu.Lock()
	defer mu.Unlock()
	calls++
	sink = err
}
