//eslurmlint:testpath eslurm/internal/gosim_suppressed

// Package gosim_suppressed shows the audited exception: a worker pool
// whose goroutines each own a private engine — concurrency outside the
// simulated world — with the mandatory reason on the suppression.
package gosim_suppressed

type Engine struct{ seed int64 }

func (e *Engine) Run() {}

func RunConcurrent(seeds []int64) {
	done := make(chan struct{}, len(seeds))
	for _, s := range seeds {
		s := s
		//eslurmlint:ignore gosim each worker owns a private engine; no simulated state is shared
		go func() {
			(&Engine{seed: s}).Run()
			done <- struct{}{}
		}()
	}
	for range seeds {
		<-done
	}
}
