//eslurmlint:testpath eslurm/internal/taint_bad

// Package taint_bad exercises the cross-function nondeterminism taint
// analysis: every chain from a source (wall clock, global rand, env, map
// order) to a scheduling sink must fire, and the finding message must
// carry the full source → intermediate calls → sink path.
package taint_bad

import (
	"math/rand"
	"os"
	"time"
)

// Engine mimics the simnet scheduling surface; taint matches sinks by
// method name and receiver type name.
type Engine struct{}

func (e *Engine) Schedule(at time.Duration, fn func()) {}
func (e *Engine) After(d time.Duration, fn func())     {}
func (e *Engine) RunUntil(deadline time.Duration)      {}
func (e *Engine) Rand(label string) int                { return 0 }

// wallDelay returns a wall-clock-derived duration: the taint enters here
// but only becomes a finding where it meets a sink.
func wallDelay() time.Duration {
	return time.Duration(time.Now().UnixNano() % 1000)
}

// ScheduleWall hands the helper's value to the event heap: the finding
// lands at the sink call, with the wallDelay hop in the chain.
func ScheduleWall(e *Engine) {
	e.After(wallDelay(), func() {}) // want "from time.Now (taint_bad.go:27) reaches Engine.After (taint_bad.go:33) via taint_bad.wallDelay (taint_bad.go:33)"
}

// scheduleAt forwards its parameter to the heap: a sink-reaching
// parameter, summarized so callers are checked.
func scheduleAt(e *Engine, d time.Duration) {
	e.Schedule(d, func() {})
}

// ScheduleEnv threads environment-derived data through scheduleAt; the
// chain crosses the call boundary in the sink direction.
func ScheduleEnv(e *Engine) {
	v := len(os.Getenv("ESLURM_DELAY"))
	scheduleAt(e, time.Duration(v)) // want "from os.Getenv (taint_bad.go:45) reaches Engine.Schedule (taint_bad.go:39) via taint_bad.scheduleAt (taint_bad.go:46)"
}

// firstKey returns an arbitrary map key: map-iteration-order taint
// escaping through a return value.
func firstKey(m map[int]bool) int {
	for k := range m {
		return k
	}
	return 0
}

func ScheduleFirst(e *Engine, m map[int]bool) {
	e.Schedule(time.Duration(firstKey(m)), nil) // want "from map iteration order (taint_bad.go:52) reaches Engine.Schedule (taint_bad.go:59) via taint_bad.firstKey (taint_bad.go:59)"
}

// RunNoisy uses the global generator directly at the sink: a zero-hop
// chain (walltime/detrand would also catch the source; taint reports the
// sink contact).
func RunNoisy(e *Engine) {
	e.RunUntil(time.Duration(rand.Int63())) // want "from rand.Int63 (taint_bad.go:66) reaches Engine.RunUntil (taint_bad.go:66)"
}

// StreamFromEnv selects an RNG stream with a nondeterministic label.
func StreamFromEnv(e *Engine) int {
	return e.Rand(os.Getenv("ESLURM_STREAM")) // want "from os.Getenv (taint_bad.go:71) reaches Engine.Rand (taint_bad.go:71)"
}
