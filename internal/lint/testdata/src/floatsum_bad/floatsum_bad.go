//eslurmlint:testpath eslurm/internal/floatsum_bad

// Package floatsum_bad accumulates floats in map-iteration order; every
// reduction form must fire.
package floatsum_bad

// Sum is the canonical violation: FP addition is not associative, so the
// result's bits depend on Go's per-run map order.
func Sum(m map[string]float64) float64 {
	var total float64
	for _, v := range m {
		total += v // want "float accumulation into total"
	}
	return total
}

type agg struct{ total float64 }

// SubField accumulates into a struct field with the subtraction form.
func (a *agg) SubField(m map[string]float64) {
	for _, v := range m {
		a.total -= v // want "float accumulation into a.total"
	}
}

// Product uses the expanded x = x * v form on float32.
func Product(m map[int]float32) float32 {
	p := float32(1)
	for _, v := range m {
		p = p * v // want "float accumulation into p"
	}
	return p
}

// KeyedExpanded accumulates with the expanded form through the key side.
func KeyedExpanded(m map[float64]bool) float64 {
	var total float64
	for k := range m {
		total = total + k // want "float accumulation into total"
	}
	return total
}
