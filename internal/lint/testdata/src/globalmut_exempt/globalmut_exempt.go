//eslurmlint:testpath eslurm/internal/lint/globalmut_exempt

// Package globalmut_exempt pins the scope exemption: linter tooling under
// internal/lint is never linked into a simulation binary, so its rule
// tables stay silent even though they are mutable-typed globals.
package globalmut_exempt

// ruleTable would fire anywhere inside the audit's scope.
var ruleTable = map[string]bool{"walltime": true}

func Enabled(name string) bool { return ruleTable[name] }
