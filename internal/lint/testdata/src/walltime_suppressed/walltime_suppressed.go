// Package walltime_suppressed exercises the suppression comment: the
// wall-clock read below is acknowledged and silenced with a reason, both
// in the line-above form and the same-line form.
package walltime_suppressed

import "time"

func Banner() time.Time {
	//eslurmlint:ignore walltime one-shot startup banner, runs before the event loop starts
	return time.Now()
}

func Stamp() time.Time {
	return time.Now() //eslurmlint:ignore walltime log decoration only, never feeds the simulation
}
