//eslurmlint:testpath eslurm/internal/floatsum_suppressed

// Package floatsum_suppressed pins that a floatsum finding is silenced
// by an ignore directive with a reason.
package floatsum_suppressed

// CountHalves sums values known to be exactly representable; the site is
// provably associative and carries the justification.
func CountHalves(m map[string]float64) float64 {
	var total float64
	for range m {
		//eslurmlint:ignore floatsum every addend is 0.5 exactly; dyadic sums this small are associative
		total += 0.5
	}
	return total
}
