// Package errdrop_good checks (or deliberately, audibly suppresses)
// every boundary error, so the analyzer must stay silent.
package errdrop_good

import (
	"strings"

	"eslurm/internal/config"
	"eslurm/internal/hostlist"
)

func Good(expr string) ([]string, error) {
	hosts, err := hostlist.Expand(expr)
	if err != nil {
		return nil, err
	}
	if _, err := config.Parse(strings.NewReader("")); err != nil {
		return nil, err
	}
	// Non-boundary functions may drop results freely; strings is not a
	// target package.
	strings.TrimSpace(expr)

	//eslurmlint:ignore errdrop capacity probe: a malformed expr yields count 0, which is the value we want
	n, _ := hostlist.Count(expr)
	_ = n
	return hosts, nil
}
