package lint

import (
	"encoding/json"
	"io"
	"path/filepath"
)

// WriteSARIF renders findings as a SARIF 2.1.0 log, the interchange
// format GitHub code scanning ingests: each analyzer becomes a reporting
// rule, each finding a result annotated at its file/line/column, so lint
// findings surface inline on pull-request diffs instead of only in a CI
// log. File URIs are emitted relative to baseDir (the checkout root in
// CI) because code scanning matches them against repository paths.
func WriteSARIF(w io.Writer, findings []Finding, analyzers []*Analyzer, baseDir string) error {
	rules := make([]sarifRule, 0, len(analyzers)+1)
	for _, a := range analyzers {
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifText{a.Doc}})
	}
	// The pseudo-analyzer behind malformed //eslurmlint:ignore directives:
	// its findings carry this rule id, so it needs a rule entry too.
	rules = append(rules, sarifRule{
		ID:               "suppress",
		ShortDescription: sarifText{"flag malformed //eslurmlint:ignore directives (missing reason or unknown analyzer)"},
	})

	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		uri := f.Pos.Filename
		if rel, err := filepath.Rel(baseDir, uri); err == nil && !isParentPath(rel) {
			uri = rel
		}
		results = append(results, sarifResult{
			RuleID:  f.Analyzer,
			Level:   "error", // every eslurmlint finding is a merge blocker
			Message: sarifText{f.Message},
			Locations: []sarifLocation{{PhysicalLocation: sarifPhysical{
				ArtifactLocation: sarifArtifact{URI: filepath.ToSlash(uri)},
				Region:           sarifRegion{StartLine: f.Pos.Line, StartColumn: f.Pos.Column},
			}}},
		})
	}

	log := sarifLog{
		Schema:  "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "eslurmlint", Version: SchemaVersion, Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}

func isParentPath(rel string) bool {
	return rel == ".." || len(rel) > 2 && rel[:3] == ".."+string(filepath.Separator)
}

// The subset of the SARIF 2.1.0 object model eslurmlint emits.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name    string      `json:"name"`
	Version string      `json:"version"`
	Rules   []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string    `json:"id"`
	ShortDescription sarifText `json:"shortDescription"`
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifText       `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}
