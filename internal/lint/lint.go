// Package lint implements eslurmlint, a project-specific static-analysis
// pass that enforces the simulation core's determinism contract.
//
// Every experiment in this repository assumes the discrete-event simulator
// is bit-for-bit reproducible: same seed ⇒ same event ordering ⇒ same
// utilization/slowdown/AEA numbers. A single stray wall-clock read, global
// RNG call, or order-sensitive map iteration silently corrupts every
// downstream table. The analyzers here (run `eslurmlint -list` for the
// current set — the README table is drift-gated against it) turn that
// contract — and the kernel hot path's allocation budget and the
// documentation contract (pkgdoc) — into a merge gate; see each
// analyzer's Doc for the precise rule.
//
// The driver is built from the standard library only (go/ast, go/token,
// go/types, go/importer) — no external module dependencies — so the lint
// gate can never be the thing that breaks the build.
//
// Findings can be suppressed at a specific site with
//
//	//eslurmlint:ignore <analyzer> <reason>
//
// on the offending line or the line directly above it. The reason is
// mandatory: a suppression must explain why the site is deterministic (or
// why the dropped error is safe) so reviewers can audit the exceptions.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Finding is a single analyzer diagnostic, printed as
// "file:line: [analyzer] message".
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the finding in the canonical file:line form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Analyzer, f.Message)
}

// Package is one type-checked package ready for analysis.
type Package struct {
	// ImportPath is the module-qualified path (e.g. "eslurm/internal/sched").
	// Path-scoped rules (walltime's internal/-only scope, detrand's simnet
	// exemption) key off this. The test harness may override it to exercise
	// those scopes.
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// Analyzer is one named determinism rule. Exactly one of Run and
// RunModule is set (or neither, for pipeline-implemented analyzers like
// staleignore): Run sees one package at a time and may be cached and
// parallelized per package; RunModule sees every loaded package at once,
// for rules whose evidence spans packages (taint chains, randlabel's
// cross-package stream collisions).
type Analyzer struct {
	Name      string
	Doc       string
	Run       func(p *Package) []Finding
	RunModule func(pkgs []*Package) []Finding
}

// Analyzers returns the full eslurmlint rule set in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		WalltimeAnalyzer, DetrandAnalyzer, MaporderAnalyzer, ErrdropAnalyzer,
		EvallocAnalyzer, GosimAnalyzer, TaintAnalyzer, FloatsumAnalyzer,
		RandlabelAnalyzer, EngineownAnalyzer, GlobalmutAnalyzer,
		StaleignoreAnalyzer, PkgdocAnalyzer,
		SpanleakAnalyzer, TimerleakAnalyzer, DrainpathAnalyzer, LookaheadAnalyzer,
	}
}

// AnalyzerNames returns the names of every registered analyzer.
func AnalyzerNames() []string {
	var names []string
	for _, a := range Analyzers() {
		names = append(names, a.Name)
	}
	return names
}

// Run executes the analyzers over the packages, applies
// //eslurmlint:ignore suppressions, and returns the surviving findings
// sorted by position. Malformed suppression comments are themselves
// reported as findings of the pseudo-analyzer "suppress". Run is the
// serial reference pipeline; the CLI drives RunParallel, which must
// produce byte-identical output.
func Run(pkgs []*Package, analyzers []*Analyzer) []Finding {
	raw := make([]*pkgResult, len(pkgs))
	for i, p := range pkgs {
		raw[i] = runPerPackage(p, analyzers)
	}
	return assemble(pkgs, analyzers, raw)
}

// pkgResult is the complete per-package unit of work: the single-package
// analyzer findings that survived this package's own suppressions, any
// malformed-directive findings, and the state of every directive —
// including whether it was load-bearing. Carrying the used flags in the
// unit (and therefore in the result cache's payload) is what keeps
// staleignore correct on warm-cache runs: a replayed package must replay
// which directives it consumed, not just which findings survived.
type pkgResult struct {
	findings   []Finding
	malformed  []Finding
	directives []directiveState
}

// directiveState is the serializable form of one suppression directive.
type directiveState struct {
	key  suppression
	pos  token.Position
	used bool
}

// knownAnalyzers is the directive-validation set: every registered
// analyzer plus any extra analyzers enabled for this invocation. A
// directive may name any registered analyzer without being "malformed",
// even when the invocation enables a subset.
func knownAnalyzers(analyzers []*Analyzer) map[string]bool {
	known := make(map[string]bool, len(analyzers))
	for _, a := range Analyzers() {
		known[a.Name] = true
	}
	for _, a := range analyzers {
		known[a.Name] = true
	}
	return known
}

// runPerPackage executes the single-package analyzers over one package
// and applies the package's own suppressions. This is the unit of work
// the parallel driver distributes and the result cache stores.
func runPerPackage(p *Package, analyzers []*Analyzer) *pkgResult {
	sups, malformed := collectSuppressions(p, knownAnalyzers(analyzers))
	res := &pkgResult{malformed: malformed}
	for _, a := range analyzers {
		if a.Run == nil {
			continue
		}
		for _, f := range a.Run(p) {
			if !sups.covers(f) {
				res.findings = append(res.findings, f)
			}
		}
	}
	res.directives = flattenSuppressions(sups)
	return res
}

// flattenSuppressions renders a suppressionSet as a sorted slice, so
// per-package results (and cache payloads) are deterministic.
func flattenSuppressions(sups suppressionSet) []directiveState {
	out := make([]directiveState, 0, len(sups))
	for k, e := range sups {
		out = append(out, directiveState{key: k, pos: e.pos, used: e.used})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].key, out[j].key
		if a.file != b.file {
			return a.file < b.file
		}
		if a.line != b.line {
			return a.line < b.line
		}
		return a.analyzer < b.analyzer
	})
	return out
}

// assemble completes the pipeline after per-package analysis: it rebuilds
// the module-wide suppression set from the per-package directive states
// (used flags included — they may have come from the cache), runs the
// module-wide analyzers live, filters them against the set, runs the
// staleignore pass over directives that silenced nothing anywhere, and
// sorts. Module analyzers always run live: their evidence spans packages,
// so a per-package cache key cannot witness them.
func assemble(pkgs []*Package, analyzers []*Analyzer, raw []*pkgResult) []Finding {
	enabled := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		enabled[a.Name] = true
	}

	sups := make(suppressionSet)
	var out []Finding
	for _, res := range raw {
		for _, d := range res.directives {
			if e := sups[d.key]; e != nil {
				e.used = e.used || d.used
			} else {
				sups[d.key] = &supEntry{pos: d.pos, used: d.used}
			}
		}
		out = append(out, res.malformed...)
		out = append(out, res.findings...)
	}
	var pending []Finding
	for _, a := range analyzers {
		if a.RunModule != nil {
			pending = append(pending, a.RunModule(pkgs)...)
		}
	}
	for _, f := range pending {
		if !sups.covers(f) {
			out = append(out, f)
		}
	}
	if enabled["staleignore"] {
		for _, k := range sups.unused(enabled) {
			f := Finding{sups[k].pos, "staleignore",
				"//eslurmlint:ignore " + k.analyzer + " suppresses nothing; the finding it excused is gone — delete the directive (or fix the drift that moved it off the site)"}
			if !sups.covers(f) {
				out = append(out, f)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pos.Filename != out[j].Pos.Filename {
			return out[i].Pos.Filename < out[j].Pos.Filename
		}
		if out[i].Pos.Line != out[j].Pos.Line {
			return out[i].Pos.Line < out[j].Pos.Line
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out
}

// underInternal reports whether the package lives under an internal/
// subtree, where the virtual-clock-only rule applies.
func underInternal(importPath string) bool {
	return strings.Contains(importPath, "/internal/") || strings.HasPrefix(importPath, "internal/")
}

// pkgFunc resolves a call expression to the package-level *types.Func it
// invokes via a package selector (pkg.Fn). It returns nil for method
// calls, locally defined functions, and anything else.
func pkgFunc(p *Package, call *ast.CallExpr) *types.Func {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return nil
	}
	if _, ok := p.Info.Uses[id].(*types.PkgName); !ok {
		return nil
	}
	fn, _ := p.Info.Uses[sel.Sel].(*types.Func)
	return fn
}

// calleeFunc resolves a call to its *types.Func whether it is invoked via
// a package selector, a method selector, or a plain identifier. Returns
// nil for calls through function-typed variables and builtins.
func calleeFunc(p *Package, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		fn, _ := p.Info.Uses[fun.Sel].(*types.Func)
		return fn
	case *ast.Ident:
		fn, _ := p.Info.Uses[fun].(*types.Func)
		return fn
	}
	return nil
}
