package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"eslurm/internal/lint/cfg"
)

// LookaheadAnalyzer proves the conservative-lookahead contract at every
// cross-cell ShardGroup.Send site: the delivery-time argument must be
// bounded below by now+L — an engine Now() anchor plus a latency-class
// addend — on the path reaching the call. The proof system is small and
// explicit: Now() calls are "nowish" (≥ now), .Latency/.Lookahead
// selector reads and addend-returning package helpers are "addends"
// (≥ L under the model's non-negative-duration assumption), nowish +
// addend is "bounded", and a comparison-guarded raise (`if x > bounded
// { bounded = x }`) preserves the bound. Anything the prover cannot
// anchor is a finding: an under-lookahead event would be delivered into
// a cell's already-executed past, breaking cross-shard determinism.
var LookaheadAnalyzer = &Analyzer{
	Name: "lookahead",
	Doc:  "require cross-cell ShardGroup.Send delivery times to be provably ≥ now+lookahead",
	Run:  runLookahead,
}

func runLookahead(p *Package) []Finding {
	if strings.HasSuffix(p.ImportPath, "internal/simnet") {
		return nil // the shard engine itself schedules below the horizon by design
	}
	summaries := addendReturnSet(p)
	var out []Finding
	for _, file := range p.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			out = append(out, lookaheadDecl(p, fd, summaries)...)
		}
	}
	return out
}

// lookaheadDecl analyzes one declaration: variable classification is
// decl-wide (closures capture L and now-anchored locals across literal
// boundaries), the bounded proof is flow-sensitive per body.
func lookaheadDecl(p *Package, fd *ast.FuncDecl, summaries map[*types.Func]bool) []Finding {
	name := fd.Name.Name
	if obj, ok := p.Info.Defs[fd.Name].(*types.Func); ok {
		name = qualifiedFuncName(obj)
	}
	sets := declClassSets(p, fd, summaries)
	var out []Finding
	bodies := []*ast.BlockStmt{fd.Body}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			bodies = append(bodies, lit.Body)
		}
		return true
	})
	for i, body := range bodies {
		bname := name
		if i > 0 {
			bname += ".func"
		}
		out = append(out, lookaheadBody(p, bname, body, sets, summaries)...)
	}
	return out
}

// timeClass is the proof lattice for delivery-time expressions.
type timeClass int

const (
	clsUnknown timeClass = iota
	clsNowish            // ≥ now: an engine-clock anchor without the addend
	clsAddend            // ≥ 0 offset of latency class, no now anchor
	clsBounded           // ≥ now + lookahead: proven safe
)

func (c timeClass) String() string {
	switch c {
	case clsNowish:
		return "only ≥ now, missing the lookahead addend"
	case clsAddend:
		return "a latency offset with no now anchor"
	case clsBounded:
		return "bounded"
	}
	return "unproven"
}

// addClass combines the classes of the operands of a +.
func addClass(a, b timeClass) timeClass {
	switch {
	case a == clsBounded || b == clsBounded:
		return clsBounded
	case a == clsNowish && b == clsAddend || a == clsAddend && b == clsNowish:
		return clsBounded
	case a == clsAddend || b == clsAddend:
		return clsAddend // non-negative durations: an addend survives any +
	case a == clsNowish || b == clsNowish:
		return clsNowish
	}
	return clsUnknown
}

// classSets is the decl-wide flow-insensitive var classification: a var
// is in a set iff every definition anywhere in the declaration —
// closures included — classifies accordingly.
type classSets struct {
	nowish, addend map[*types.Var]bool
}

// classify resolves expr's class under sets plus the flow-sensitive
// bounded set (nil when classifying decl-level definitions).
func classify(p *Package, expr ast.Expr, sets classSets, bounded map[*types.Var]bool, summaries map[*types.Func]bool) timeClass {
	switch e := expr.(type) {
	case *ast.ParenExpr:
		return classify(p, e.X, sets, bounded, summaries)
	case *ast.CallExpr:
		fn := calleeFunc(p, e)
		if fn == nil {
			return clsUnknown
		}
		if fn.Name() == "Now" {
			return clsNowish
		}
		if summaries[fn] {
			return clsAddend
		}
		return clsUnknown
	case *ast.SelectorExpr:
		if e.Sel.Name == "Latency" || e.Sel.Name == "Lookahead" {
			return clsAddend
		}
		return clsUnknown
	case *ast.Ident:
		v := useVar(p, e)
		if v == nil {
			return clsUnknown
		}
		switch {
		case bounded != nil && bounded[v]:
			return clsBounded
		case sets.addend[v]:
			return clsAddend
		case sets.nowish[v]:
			return clsNowish
		}
		return clsUnknown
	case *ast.BinaryExpr:
		if e.Op != token.ADD {
			return clsUnknown
		}
		return addClass(
			classify(p, e.X, sets, bounded, summaries),
			classify(p, e.Y, sets, bounded, summaries),
		)
	}
	return clsUnknown
}

// timeDef is one definition site of a local: either a plain expression
// or a self-add (`v += x`, `v++`), whose class folds the var's own.
type timeDef struct {
	x       ast.Expr // nil for IncDec
	selfAdd bool
}

// declClassSets computes the decl-wide nowish/addend var sets by growing
// fixpoint: monotone (sets only grow, and "all defs classify" can only
// become true), so the result is order-independent.
func declClassSets(p *Package, fd *ast.FuncDecl, summaries map[*types.Func]bool) classSets {
	defs := make(map[*types.Var][]timeDef)
	var order []*types.Var
	record := func(v *types.Var, d timeDef, poison bool) {
		if v == nil {
			return
		}
		if _, seen := defs[v]; !seen {
			order = append(order, v)
		}
		if poison {
			defs[v] = append(defs[v], timeDef{})
			return
		}
		defs[v] = append(defs[v], d)
	}
	// Parameters, receivers, and named results arrive with unknowable
	// values: poison them so the self-add assumption below stays sound
	// (a `d += x` def may assume d's candidate class only when every
	// *initial* binding of d is also on record).
	poisonFields := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			for _, nm := range field.Names {
				if v, ok := p.Info.Defs[nm].(*types.Var); ok {
					record(v, timeDef{}, true)
				}
			}
		}
	}
	poisonFields(fd.Recv)
	poisonFields(fd.Type.Params)
	poisonFields(fd.Type.Results)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.FuncLit:
			poisonFields(s.Type.Params)
			poisonFields(s.Type.Results)
		case *ast.AssignStmt:
			if len(s.Lhs) != len(s.Rhs) {
				for _, lhs := range s.Lhs {
					record(lhsLocalVar(p, lhs), timeDef{}, true)
				}
				return true
			}
			for i, lhs := range s.Lhs {
				v := lhsLocalVar(p, lhs)
				switch s.Tok {
				case token.ASSIGN, token.DEFINE:
					record(v, timeDef{x: s.Rhs[i]}, false)
				case token.ADD_ASSIGN:
					record(v, timeDef{x: s.Rhs[i], selfAdd: true}, false)
				default:
					record(v, timeDef{}, true)
				}
			}
		case *ast.IncDecStmt:
			if s.Tok == token.INC {
				record(lhsLocalVar(p, s.X), timeDef{selfAdd: true}, false)
			} else {
				record(lhsLocalVar(p, s.X), timeDef{}, true)
			}
		case *ast.RangeStmt:
			record(lhsLocalVar(p, s.Key), timeDef{}, true)
			record(lhsLocalVar(p, s.Value), timeDef{}, true)
		case *ast.ValueSpec:
			if len(s.Values) == len(s.Names) {
				for i, name := range s.Names {
					v, _ := p.Info.Defs[name].(*types.Var)
					record(v, timeDef{x: s.Values[i]}, false)
				}
			} else {
				for _, name := range s.Names {
					v, _ := p.Info.Defs[name].(*types.Var)
					record(v, timeDef{}, true)
				}
			}
		}
		return true
	})
	sets := classSets{nowish: map[*types.Var]bool{}, addend: map[*types.Var]bool{}}
	// defClass evaluates one def under the coinductive assumption that v
	// itself already has the candidate class `want` — sound because every
	// initial binding (params, poisoned forms) is a recorded def, so a
	// pure self-add cycle cannot bootstrap a class from nothing.
	defClass := func(d timeDef, want timeClass) timeClass {
		var c timeClass
		if d.x != nil {
			c = classify(p, d.x, sets, nil, summaries)
		}
		if d.selfAdd {
			c = addClass(want, c)
		} else if d.x == nil {
			c = clsUnknown
		}
		return c
	}
	for changed := true; changed; {
		changed = false
		for _, v := range order {
			ds := defs[v]
			all := func(want timeClass) bool {
				for _, d := range ds {
					if defClass(d, want) != want {
						return false
					}
				}
				return len(ds) > 0
			}
			if !sets.addend[v] && all(clsAddend) {
				sets.addend[v] = true
				changed = true
			}
			if !sets.nowish[v] && all(clsNowish) {
				sets.nowish[v] = true
				changed = true
			}
		}
	}
	return sets
}

func lhsLocalVar(p *Package, e ast.Expr) *types.Var {
	if e == nil {
		return nil
	}
	id, ok := e.(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if v, ok := p.Info.Defs[id].(*types.Var); ok {
		return v
	}
	return useVar(p, id)
}

// addendReturnSet computes which package-local single-result functions
// always return an addend-class value — the TransferTime shape: `return
// cfg.Latency + ser`. Grown to fixpoint so addend helpers may call each
// other.
func addendReturnSet(p *Package) map[*types.Func]bool {
	summaries := make(map[*types.Func]bool)
	for changed := true; changed; {
		changed = false
		for _, file := range p.Files {
			for _, d := range file.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil || fd.Type.Results == nil {
					continue
				}
				if len(fd.Type.Results.List) != 1 || len(fd.Type.Results.List[0].Names) > 1 {
					continue
				}
				fn, ok := p.Info.Defs[fd.Name].(*types.Func)
				if !ok || summaries[fn] {
					continue
				}
				sets := declClassSets(p, fd, summaries)
				if allReturnsAddend(p, fd, sets, summaries) {
					summaries[fn] = true
					changed = true
				}
			}
		}
	}
	return summaries
}

func allReturnsAddend(p *Package, fd *ast.FuncDecl, sets classSets, summaries map[*types.Func]bool) bool {
	ok, any := true, false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			any = true
			if len(s.Results) != 1 || classify(p, s.Results[0], sets, nil, summaries) != clsAddend {
				ok = false
			}
		}
		return true
	})
	return ok && any
}

// boundState is the flow-sensitive must-state: the set of vars proven
// ≥ now+lookahead at this point on every path.
type boundState struct {
	live bool
	vars map[*types.Var]bool
}

func (s boundState) clone() boundState {
	out := boundState{live: true, vars: make(map[*types.Var]bool, len(s.vars))}
	for v := range s.vars {
		out.vars[v] = true
	}
	return out
}

// lookaheadBody runs the bounded must-analysis over one body and judges
// its Send sites at their program points.
func lookaheadBody(p *Package, name string, body *ast.BlockStmt, sets classSets, summaries map[*types.Func]bool) []Finding {
	sites := sendSites(p, body)
	if len(sites) == 0 {
		return nil
	}
	g := cfg.New(name, body)
	prob := cfg.Problem[boundState]{
		Boundary: boundState{live: true, vars: map[*types.Var]bool{}},
		Transfer: func(b *cfg.Block, s boundState) boundState {
			out := s.clone()
			for _, n := range b.Nodes {
				applyBoundDefs(p, n, &out, sets, summaries)
			}
			return out
		},
		EdgeTransfer: func(e *cfg.Edge, s boundState) boundState {
			raised := raisedVar(p, e, s.vars)
			if raised == nil {
				return s
			}
			out := s.clone()
			out.vars[raised] = true
			return out
		},
		Join: func(dst, src boundState) (boundState, bool) {
			if !dst.live {
				return src.clone(), true
			}
			changed := false
			for v := range dst.vars {
				if !src.vars[v] {
					delete(dst.vars, v)
					changed = true
				}
			}
			return dst, changed
		},
	}
	res := cfg.Forward(g, prob)
	var out []Finding
	for _, b := range g.Blocks {
		if !res.Reached[b.Index] {
			continue
		}
		state := res.In[b.Index].clone()
		for _, n := range b.Nodes {
			for _, site := range sitesIn(sites, n) {
				c := classify(p, site.Args[2], sets, state.vars, summaries)
				if c == clsBounded {
					continue
				}
				path := cfg.WitnessPath(g, b, func(*cfg.Edge) bool { return true })
				out = append(out, Finding{p.Fset.Position(site.Pos()), "lookahead",
					fmt.Sprintf("cross-cell Send in %s cannot prove delivery time `%s` ≥ now+lookahead (it is %s) on path: %s; an under-lookahead event lands in the destination cell's already-executed past and breaks cross-shard determinism",
						name, types.ExprString(site.Args[2]), c, cfg.RenderPath(p.Fset, path))})
			}
			applyBoundDefs(p, n, &state, sets, summaries)
		}
	}
	return out
}

// sendSites collects the ShardGroup.Send calls in body's own statements.
func sendSites(p *Package, body *ast.BlockStmt) []*ast.CallExpr {
	var out []*ast.CallExpr
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(p, call)
		if fn != nil && fn.Name() == "Send" && recvTypeName(fn) == "ShardGroup" && len(call.Args) >= 3 {
			out = append(out, call)
		}
		return true
	})
	return out
}

// sitesIn returns the collected sites syntactically inside block node n.
func sitesIn(sites []*ast.CallExpr, n ast.Node) []*ast.CallExpr {
	var out []*ast.CallExpr
	for _, s := range sites {
		if s.Pos() >= n.Pos() && s.End() <= n.End() {
			out = append(out, s)
		}
	}
	return out
}

// applyBoundDefs updates the bounded set for the definitions in one
// block node: a var assigned a bounded-class expression joins the set,
// any other redefinition leaves it.
func applyBoundDefs(p *Package, n ast.Node, s *boundState, sets classSets, summaries map[*types.Func]bool) {
	ast.Inspect(n, func(m ast.Node) bool {
		switch a := m.(type) {
		case *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			if len(a.Lhs) != len(a.Rhs) {
				for _, lhs := range a.Lhs {
					if v := lhsLocalVar(p, lhs); v != nil {
						delete(s.vars, v)
					}
				}
				return true
			}
			for i, lhs := range a.Lhs {
				v := lhsLocalVar(p, lhs)
				if v == nil {
					continue
				}
				var c timeClass
				switch a.Tok {
				case token.ASSIGN, token.DEFINE:
					c = classify(p, a.Rhs[i], sets, s.vars, summaries)
				case token.ADD_ASSIGN:
					var self timeClass
					if s.vars[v] {
						self = clsBounded
					} else if sets.addend[v] {
						self = clsAddend
					} else if sets.nowish[v] {
						self = clsNowish
					}
					c = addClass(self, classify(p, a.Rhs[i], sets, s.vars, summaries))
				}
				if c == clsBounded {
					s.vars[v] = true
				} else {
					delete(s.vars, v)
				}
			}
		case *ast.IncDecStmt:
			if v := lhsLocalVar(p, a.X); v != nil && a.Tok == token.DEC {
				delete(s.vars, v) // v-- may drop below the bound
			}
		case *ast.RangeStmt:
			for _, e := range []ast.Expr{a.Key, a.Value} {
				if v := lhsLocalVar(p, e); v != nil {
					delete(s.vars, v)
				}
			}
			return false
		}
		return true
	})
}

// raisedVar implements the conditional-raise refinement: crossing an
// edge that proves `x ≥ v` for some already-bounded v makes x bounded
// too (`if timeoutAt > failAt { failAt = timeoutAt }`). Returns the
// newly provable var, or nil.
func raisedVar(p *Package, e *cfg.Edge, bounded map[*types.Var]bool) *types.Var {
	be, ok := e.Cond.(*ast.BinaryExpr)
	if !ok {
		return nil
	}
	varOf := func(x ast.Expr) *types.Var {
		id, ok := x.(*ast.Ident)
		if !ok {
			return nil
		}
		return useVar(p, id)
	}
	x, y := varOf(be.X), varOf(be.Y)
	if x == nil || y == nil {
		return nil
	}
	op := be.Op
	if !e.Val { // the branch where the comparison is false: negate it
		switch op {
		case token.GTR:
			op = token.LEQ
		case token.GEQ:
			op = token.LSS
		case token.LSS:
			op = token.GEQ
		case token.LEQ:
			op = token.GTR
		default:
			return nil
		}
	}
	switch op {
	case token.GTR, token.GEQ: // x ≥ y
		if bounded[y] && !bounded[x] {
			return x
		}
	case token.LSS, token.LEQ: // x ≤ y, i.e. y ≥ x
		if bounded[x] && !bounded[y] {
			return y
		}
	}
	return nil
}
