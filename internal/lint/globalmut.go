package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// GlobalmutAnalyzer is the global-state audit half of the shard-safety
// suite. Under the sharded kernel every engine's state must be owned by
// exactly one goroutine, so every mutable package-level variable in a
// simulation package is cross-shard shared state waiting to happen — even
// one that is only ever read today can be aliased and written tomorrow,
// and nothing in the type system will complain.
//
// The rule flags package-level non-blank vars in internal/ packages whose
// underlying type is mutable (pointer, map, slice, array, chan, or
// struct), plus any var of another type (basic, interface, func) that the
// module observably writes after initialization. Interface-typed
// sentinel errors (var ErrX = errors.New(...)) and function/basic
// constants-in-spirit therefore stay silent unless something assigns to
// them.
//
// Writes are detected module-wide: direct assignment (including to an
// element, field, or pointee rooted at the var), ++/--, taking the
// address, and calling a pointer-receiver method on the var (which is how
// sync.Map.Store and atomic.Int32.Add mutate). The first observed write
// site is included in the message so the audit is actionable.
//
// internal/lint and internal/testutil are exempt: linter tables and test
// scaffolding are never linked into a simulation binary, so they cannot
// become shard-shared state. Every remaining finding must be fixed or
// carry a reasoned suppression — the suppression inventory IS the audit
// the sharding PR will consume (see eslurmlint -ownership).
var GlobalmutAnalyzer = &Analyzer{
	Name:      "globalmut",
	Doc:       "flag mutable package-level state (non-const vars of pointer/map/slice/struct/chan type, or written vars of any type) in internal/ simulation packages",
	RunModule: runGlobalmut,
}

// globalmutExempt lists import-path suffixes outside the audit's scope.
var globalmutExempt = []string{"internal/lint", "internal/testutil"}

func globalmutScoped(path string) bool {
	if !underInternal(path) {
		return false
	}
	for _, suffix := range globalmutExempt {
		if strings.HasSuffix(path, suffix) || strings.Contains(path, suffix+"/") {
			return false
		}
	}
	return true
}

// globalWrite records the first mutation site observed for a var.
type globalWrite struct {
	pos  token.Position
	kind string
}

// globalmutRecord is one audited package-level var, kept structured so
// the -ownership report can list it without re-parsing messages.
type globalmutRecord struct {
	pkg     *Package
	name    string
	typ     string
	pos     token.Position
	mutable string       // mutable type class, "" for written immutables
	write   *globalWrite // nil when no write was observed
}

func (r *globalmutRecord) finding() Finding {
	msg := "package-level var " + r.name + " (" + r.typ + ") is mutable shared state"
	switch {
	case r.write != nil:
		msg += ": written via " + r.write.kind + " at " + shortPos(r.write.pos)
	default:
		msg += ": no writes observed, but " + r.mutable + " state can be aliased and mutated by any future caller"
	}
	msg += "; under the sharded kernel every package-level mutable becomes cross-shard shared state — make it a constant, derive it per call, or thread it through the engine/config and suppress with a reason if it must stay"
	return Finding{r.pos, "globalmut", msg}
}

func runGlobalmut(pkgs []*Package) []Finding {
	var out []Finding
	for _, r := range collectGlobalmut(pkgs) {
		out = append(out, r.finding())
	}
	return out
}

// collectGlobalmut runs the audit and returns the structured records, in
// deterministic package/file/declaration order.
func collectGlobalmut(pkgs []*Package) []*globalmutRecord {
	writes := collectGlobalWrites(pkgs)
	var out []*globalmutRecord
	for _, p := range pkgs {
		if !globalmutScoped(p.ImportPath) {
			continue
		}
		for _, file := range p.Files {
			for _, d := range file.Decls {
				gd, ok := d.(*ast.GenDecl)
				if !ok || gd.Tok != token.VAR {
					continue
				}
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for _, name := range vs.Names {
						if name.Name == "_" {
							continue
						}
						v, ok := p.Info.Defs[name].(*types.Var)
						if !ok {
							continue
						}
						w := writes[v]
						mutable := mutableUnderlying(v.Type())
						if mutable == "" && w == nil {
							continue
						}
						out = append(out, &globalmutRecord{
							pkg:     p,
							name:    name.Name,
							typ:     types.TypeString(v.Type(), shortQualifier),
							pos:     p.Fset.Position(name.Pos()),
							mutable: mutable,
							write:   w,
						})
					}
				}
			}
		}
	}
	return out
}

// mutableUnderlying names the mutable type class of t, or "" if values of
// t are immutable (basic, string, interface, func, named combinations of
// those).
func mutableUnderlying(t types.Type) string {
	switch t.Underlying().(type) {
	case *types.Pointer:
		return "pointer"
	case *types.Map:
		return "map"
	case *types.Slice:
		return "slice"
	case *types.Array:
		return "array"
	case *types.Chan:
		return "channel"
	case *types.Struct:
		return "struct"
	}
	return ""
}

// collectGlobalWrites scans every loaded package for mutations of
// package-level vars, keeping the first site per var in walk order.
func collectGlobalWrites(pkgs []*Package) map[*types.Var]*globalWrite {
	writes := make(map[*types.Var]*globalWrite)
	record := func(p *Package, e ast.Expr, pos token.Pos, kind string) {
		v := pkgVarRoot(p, e)
		if v == nil {
			return
		}
		if _, seen := writes[v]; !seen {
			writes[v] = &globalWrite{p.Fset.Position(pos), kind}
		}
	}
	for _, p := range pkgs {
		for _, file := range p.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				switch s := n.(type) {
				case *ast.FuncDecl:
					// Writes only count inside function bodies: the
					// declaration initializer itself is not a mutation.
					return true
				case *ast.AssignStmt:
					if !insideFunc(p, s.Pos()) {
						return true
					}
					for _, lhs := range s.Lhs {
						record(p, lhs, s.Pos(), "assignment")
					}
				case *ast.IncDecStmt:
					record(p, s.X, s.Pos(), "increment")
				case *ast.UnaryExpr:
					if s.Op == token.AND {
						record(p, s.X, s.Pos(), "address-of")
					}
				case *ast.CallExpr:
					sel, ok := s.Fun.(*ast.SelectorExpr)
					if !ok || isPkgSelector(p, sel) {
						return true
					}
					fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
					if !ok {
						return true
					}
					sig, ok := fn.Type().(*types.Signature)
					if !ok || sig.Recv() == nil {
						return true
					}
					if _, ptr := sig.Recv().Type().(*types.Pointer); ptr {
						record(p, sel.X, s.Pos(), "pointer-receiver call to "+fn.Name())
					}
				}
				return true
			})
		}
	}
	return writes
}

// insideFunc reports whether pos falls inside some function body of p.
// Package-level initializer expressions sit outside every body.
func insideFunc(p *Package, pos token.Pos) bool {
	for _, file := range p.Files {
		if pos < file.Pos() || pos > file.End() {
			continue
		}
		for _, d := range file.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil &&
				pos >= fd.Body.Pos() && pos <= fd.Body.End() {
				return true
			}
		}
	}
	return false
}

// pkgVarRoot resolves an expression to the package-level var at its root
// (x, x[i], x.f, *x, (x)), or nil.
func pkgVarRoot(p *Package, e ast.Expr) *types.Var {
	switch x := e.(type) {
	case *ast.Ident:
		v, ok := p.Info.Uses[x].(*types.Var)
		if !ok {
			v, ok = p.Info.Defs[x].(*types.Var)
		}
		if ok && isPkgLevelVar(v) && !v.Embedded() && v.Pkg() != nil {
			return v
		}
	case *ast.SelectorExpr:
		if isPkgSelector(p, x) {
			if v, ok := p.Info.Uses[x.Sel].(*types.Var); ok && isPkgLevelVar(v) {
				return v
			}
			return nil
		}
		// Only field selection on a var keeps the root; method values and
		// interface fields do not mutate the var's storage... but field
		// writes through a struct-typed global do, so keep walking.
		return pkgVarRoot(p, x.X)
	case *ast.IndexExpr:
		return pkgVarRoot(p, x.X)
	case *ast.StarExpr:
		return pkgVarRoot(p, x.X)
	case *ast.ParenExpr:
		return pkgVarRoot(p, x.X)
	}
	return nil
}
