package lint

import (
	"path/filepath"
	"testing"
)

// BenchmarkRunModule times one full analyzer sweep — every registered
// analyzer, per-package passes plus the module-level summary passes —
// over the repo's own source tree. Loading and type-checking happen once
// outside the timer: the benchmark isolates analysis cost, which is what
// a new analyzer or CFG change moves. CI runs it with -benchtime=1x as a
// smoke (the pass must complete over the live tree), and perf work can
// run it with real benchtimes to compare analysis throughput.
func BenchmarkRunModule(b *testing.B) {
	root, err := FindModuleRoot(".")
	if err != nil {
		b.Fatal(err)
	}
	l, err := NewLoader(root)
	if err != nil {
		b.Fatal(err)
	}
	pkgs, err := l.LoadPatterns([]string{filepath.Join(root, "...")})
	if err != nil {
		b.Fatal(err)
	}
	if len(pkgs) == 0 {
		b.Fatal("no packages loaded")
	}
	analyzers := Analyzers()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		findings := Run(pkgs, analyzers)
		// The tree is kept lint-clean, so a non-empty result here means
		// the benchmark ran against a broken tree; fail loudly rather
		// than time a different workload.
		if len(findings) != 0 {
			b.Fatalf("tree not lint-clean: %d finding(s), first: %s", len(findings), findings[0])
		}
	}
}
