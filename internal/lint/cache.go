package lint

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync/atomic"
)

// cacheSchema is folded into every cache key. It is derived from the
// shared SchemaVersion const, so a schema bump — a payload layout
// change (the generation component; v2 widened the payload from raw
// findings to the full pkgResult unit, v3 added the flow-sensitive
// passes) or a registered analyzer (the count component) — invalidates
// every prior entry and stale results can never be replayed.
const cacheSchema = "eslurmlint-cache-v" + SchemaVersion

// Cache is a content-addressed store of per-package results. The key for
// a package hashes the analyzer set, the toolchain version, and the full
// file contents of the package plus every module-local package it
// transitively imports — a change anywhere in the dependency closure
// (which can change type information and therefore findings) invalidates
// the entry, while an untouched closure hits no matter which other
// packages changed. Entries are one JSON file per key, so the cache
// directory is safe to share between runs and trivially prunable.
//
// The payload is the complete pkgResult: the per-package findings that
// survived the package's own suppressions, the malformed-directive
// findings, and every directive's position and used flag. Replaying the
// used flags is what keeps staleignore honest after a warm-cache run — a
// hit that restored findings but not directive usage would make every
// load-bearing directive in the package look stale. Module-level
// analyzers (taint, randlabel, engineown, globalmut) and the staleignore
// pass itself always run live in assemble: their inputs span packages,
// so a per-package key cannot witness them.
type Cache struct {
	Dir string

	hits, misses atomic.Int64
}

// NewCache opens (creating if needed) a cache rooted at dir.
func NewCache(dir string) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &Cache{Dir: dir}, nil
}

// Stats reports the hit/miss counts accumulated since the cache was
// opened, for the CLI's -v accounting and the cache tests.
func (c *Cache) Stats() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}

// Key derives the content-hash cache key for p under the given analyzer
// set. lookup resolves module-local import paths to loaded packages (use
// (*Loader).Loaded); it is how the key reaches p's dependency closure.
func (c *Cache) Key(p *Package, analyzers []*Analyzer, lookup func(importPath string) *Package) (string, error) {
	if lookup == nil {
		return "", fmt.Errorf("cache key for %s: nil package lookup", p.ImportPath)
	}
	h := sha256.New()
	fmt.Fprintln(h, cacheSchema, runtime.Version())
	for _, a := range analyzers {
		fmt.Fprintln(h, a.Name)
	}
	for _, q := range depClosure(p, lookup) {
		fmt.Fprintln(h, q.ImportPath)
		names, err := goFilesIn(q.Dir)
		if err != nil {
			return "", err
		}
		for _, name := range names {
			data, err := os.ReadFile(filepath.Join(q.Dir, name))
			if err != nil {
				return "", err
			}
			fmt.Fprintln(h, name, len(data))
			h.Write(data)
		}
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// depClosure returns p plus every module-local package it transitively
// imports, sorted by import path so the key hash is order-independent.
func depClosure(p *Package, lookup func(string) *Package) []*Package {
	seen := map[string]*Package{p.ImportPath: p}
	var visit func(q *Package)
	visit = func(q *Package) {
		for _, imp := range q.Types.Imports() {
			if seen[imp.Path()] != nil {
				continue
			}
			dep := lookup(imp.Path())
			if dep == nil {
				continue // stdlib: covered by the toolchain version in the key
			}
			seen[imp.Path()] = dep
			visit(dep)
		}
	}
	visit(p)
	paths := make([]string, 0, len(seen))
	for path := range seen {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	out := make([]*Package, len(paths))
	for i, path := range paths {
		out[i] = seen[path]
	}
	return out
}

// cachedFinding is the on-disk form of one Finding. Positions are stored
// absolute: the cache key already pins the machine-local file contents,
// so entries are machine-local by construction.
type cachedFinding struct {
	File     string `json:"file"`
	Offset   int    `json:"offset"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// cachedDirective is the on-disk form of one directiveState. Used is the
// part a findings-only payload would lose: whether the directive silenced
// a per-package finding during the run that populated the entry.
type cachedDirective struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Offset   int    `json:"offset"`
	Analyzer string `json:"analyzer"`
	Used     bool   `json:"used,omitempty"`
}

// cachedUnit is the full v2 payload: one serialized pkgResult.
type cachedUnit struct {
	Findings   []cachedFinding   `json:"findings"`
	Malformed  []cachedFinding   `json:"malformed,omitempty"`
	Directives []cachedDirective `json:"directives,omitempty"`
}

func toCachedFindings(fs []Finding) []cachedFinding {
	out := make([]cachedFinding, len(fs))
	for i, f := range fs {
		out[i] = cachedFinding{
			File:     f.Pos.Filename,
			Offset:   f.Pos.Offset,
			Line:     f.Pos.Line,
			Column:   f.Pos.Column,
			Analyzer: f.Analyzer,
			Message:  f.Message,
		}
	}
	return out
}

func fromCachedFindings(entries []cachedFinding) []Finding {
	if len(entries) == 0 {
		return nil
	}
	out := make([]Finding, len(entries))
	for i, e := range entries {
		out[i] = Finding{
			Pos:      token.Position{Filename: e.File, Offset: e.Offset, Line: e.Line, Column: e.Column},
			Analyzer: e.Analyzer,
			Message:  e.Message,
		}
	}
	return out
}

func (c *Cache) path(key string) string {
	return filepath.Join(c.Dir, key+".json")
}

// Get returns the cached per-package result for key, distinguishing an
// empty result (hit with zero findings) from a miss.
func (c *Cache) Get(key string) (*pkgResult, bool) {
	data, err := os.ReadFile(c.path(key))
	if err != nil {
		c.misses.Add(1)
		return nil, false
	}
	var unit cachedUnit
	if err := json.Unmarshal(data, &unit); err != nil {
		c.misses.Add(1) // corrupt entry: treat as miss, a Put will overwrite it
		return nil, false
	}
	res := &pkgResult{
		findings:  fromCachedFindings(unit.Findings),
		malformed: fromCachedFindings(unit.Malformed),
	}
	for _, d := range unit.Directives {
		res.directives = append(res.directives, directiveState{
			key:  suppression{file: d.File, line: d.Line, analyzer: d.Analyzer},
			pos:  token.Position{Filename: d.File, Offset: d.Offset, Line: d.Line, Column: d.Column},
			used: d.Used,
		})
	}
	c.hits.Add(1)
	return res, true
}

// Put stores a per-package result under key. The write goes through a
// temp file and rename so concurrent workers (or runs) never observe a
// torn entry.
func (c *Cache) Put(key string, res *pkgResult) error {
	unit := cachedUnit{
		Findings:  toCachedFindings(res.findings),
		Malformed: toCachedFindings(res.malformed),
	}
	for _, d := range res.directives {
		unit.Directives = append(unit.Directives, cachedDirective{
			File:     d.key.file,
			Line:     d.key.line,
			Column:   d.pos.Column,
			Offset:   d.pos.Offset,
			Analyzer: d.key.analyzer,
			Used:     d.used,
		})
	}
	data, err := json.Marshal(unit)
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(c.Dir, "put-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), c.path(key))
}
