package lint

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync/atomic"
)

// cacheSchema is folded into every cache key; bump it whenever the
// serialized finding layout or the key derivation changes, so stale
// entries from an older eslurmlint can never be replayed.
const cacheSchema = "eslurmlint-cache-v1"

// Cache is a content-addressed store of per-package raw (pre-suppression)
// findings. The key for a package hashes the analyzer set, the toolchain
// version, and the full file contents of the package plus every
// module-local package it transitively imports — a change anywhere in the
// dependency closure (which can change type information and therefore
// findings) invalidates the entry, while an untouched closure hits no
// matter which other packages changed. Entries are one JSON file per key,
// so the cache directory is safe to share between runs and trivially
// prunable.
//
// Only the per-package analysis is cached. Suppression filtering, the
// module-level analyzers (taint, randlabel), and staleignore always run
// live in assemble: their inputs span packages, so a per-package key
// cannot witness them.
type Cache struct {
	Dir string

	hits, misses atomic.Int64
}

// NewCache opens (creating if needed) a cache rooted at dir.
func NewCache(dir string) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &Cache{Dir: dir}, nil
}

// Stats reports the hit/miss counts accumulated since the cache was
// opened, for the CLI's -v accounting and the cache tests.
func (c *Cache) Stats() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}

// Key derives the content-hash cache key for p under the given analyzer
// set. lookup resolves module-local import paths to loaded packages (use
// (*Loader).Loaded); it is how the key reaches p's dependency closure.
func (c *Cache) Key(p *Package, analyzers []*Analyzer, lookup func(importPath string) *Package) (string, error) {
	if lookup == nil {
		return "", fmt.Errorf("cache key for %s: nil package lookup", p.ImportPath)
	}
	h := sha256.New()
	fmt.Fprintln(h, cacheSchema, runtime.Version())
	for _, a := range analyzers {
		fmt.Fprintln(h, a.Name)
	}
	for _, q := range depClosure(p, lookup) {
		fmt.Fprintln(h, q.ImportPath)
		names, err := goFilesIn(q.Dir)
		if err != nil {
			return "", err
		}
		for _, name := range names {
			data, err := os.ReadFile(filepath.Join(q.Dir, name))
			if err != nil {
				return "", err
			}
			fmt.Fprintln(h, name, len(data))
			h.Write(data)
		}
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// depClosure returns p plus every module-local package it transitively
// imports, sorted by import path so the key hash is order-independent.
func depClosure(p *Package, lookup func(string) *Package) []*Package {
	seen := map[string]*Package{p.ImportPath: p}
	var visit func(q *Package)
	visit = func(q *Package) {
		for _, imp := range q.Types.Imports() {
			if seen[imp.Path()] != nil {
				continue
			}
			dep := lookup(imp.Path())
			if dep == nil {
				continue // stdlib: covered by the toolchain version in the key
			}
			seen[imp.Path()] = dep
			visit(dep)
		}
	}
	visit(p)
	paths := make([]string, 0, len(seen))
	for path := range seen {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	out := make([]*Package, len(paths))
	for i, path := range paths {
		out[i] = seen[path]
	}
	return out
}

// cachedFinding is the on-disk form of one Finding. Positions are stored
// absolute: the cache key already pins the machine-local file contents,
// so entries are machine-local by construction.
type cachedFinding struct {
	File     string `json:"file"`
	Offset   int    `json:"offset"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func (c *Cache) path(key string) string {
	return filepath.Join(c.Dir, key+".json")
}

// Get returns the cached findings for key, distinguishing an empty result
// (hit with zero findings) from a miss.
func (c *Cache) Get(key string) ([]Finding, bool) {
	data, err := os.ReadFile(c.path(key))
	if err != nil {
		c.misses.Add(1)
		return nil, false
	}
	var entries []cachedFinding
	if err := json.Unmarshal(data, &entries); err != nil {
		c.misses.Add(1) // corrupt entry: treat as miss, a Put will overwrite it
		return nil, false
	}
	out := make([]Finding, len(entries))
	for i, e := range entries {
		out[i] = Finding{
			Pos:      token.Position{Filename: e.File, Offset: e.Offset, Line: e.Line, Column: e.Column},
			Analyzer: e.Analyzer,
			Message:  e.Message,
		}
	}
	c.hits.Add(1)
	return out, true
}

// Put stores findings under key. The write goes through a temp file and
// rename so concurrent workers (or runs) never observe a torn entry.
func (c *Cache) Put(key string, findings []Finding) error {
	entries := make([]cachedFinding, len(findings))
	for i, f := range findings {
		entries[i] = cachedFinding{
			File:     f.Pos.Filename,
			Offset:   f.Pos.Offset,
			Line:     f.Pos.Line,
			Column:   f.Pos.Column,
			Analyzer: f.Analyzer,
			Message:  f.Message,
		}
	}
	data, err := json.Marshal(entries)
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(c.Dir, "put-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), c.path(key))
}
