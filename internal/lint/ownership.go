package lint

import (
	"encoding/json"
	"fmt"
	"go/token"
	"go/types"
	"io"
	"path/filepath"
	"sort"
)

// The -ownership report is the sharding PR's work list: for every
// internal/ package it dumps which named types carry engine affinity
// (and through which field), which functions receive, accept, or return
// engine-owned values, where ownership escapes its goroutine (and
// whether the site carries a reasoned suppression), and which
// package-level vars the global-state audit flags. The report is built
// from the very same ownWorld and globalmut records the analyzers run
// on, so it can never disagree with the findings, and its output is
// fully sorted so byte-identical reruns are a contract (CI archives it
// as an artifact).

// ownershipSchema versions the report format.
const ownershipSchema = "eslurmlint-ownership-v1"

// OwnershipReport is the top-level -ownership JSON document.
type OwnershipReport struct {
	Schema   string              `json:"schema"`
	Packages []*OwnershipPackage `json:"packages"`
}

// OwnershipPackage is the per-package affinity map.
type OwnershipPackage struct {
	ImportPath       string            `json:"import_path"`
	EngineBoundTypes []OwnershipType   `json:"engine_bound_types,omitempty"`
	EngineBearers    []OwnershipBearer `json:"engine_bearers,omitempty"`
	Escapes          []OwnershipEscape `json:"escapes,omitempty"`
	MutableGlobals   []OwnershipGlobal `json:"mutable_globals,omitempty"`
}

// OwnershipType is one engine-bound named type and the field that binds
// it (the witness from the transitive reachability computation).
type OwnershipType struct {
	Name string `json:"name"`
	Via  string `json:"via"`
}

// OwnershipBearer is one function that handles engine-owned values: a
// bound receiver, bound parameters (by index), or owned returns.
type OwnershipBearer struct {
	Func          string `json:"func"`
	Pos           string `json:"pos"`
	ReceiverBound bool   `json:"receiver_bound,omitempty"`
	BoundParams   []int  `json:"bound_params,omitempty"`
	ReturnsOwned  bool   `json:"returns_owned,omitempty"`
}

// OwnershipEscape is one site where an engine-owned value leaves its
// goroutine. Suppressed escapes stay in the report — a suppression is a
// sanctioned exception the sharding PR must still reckon with.
type OwnershipEscape struct {
	Kind       string `json:"kind"` // "goroutine" | "channel" | "global"
	Pos        string `json:"pos"`
	Detail     string `json:"detail"`
	Suppressed bool   `json:"suppressed,omitempty"`
}

// OwnershipGlobal is one package-level var from the globalmut audit.
type OwnershipGlobal struct {
	Name       string `json:"name"`
	Type       string `json:"type"`
	Pos        string `json:"pos"`
	Written    bool   `json:"written,omitempty"`
	Suppressed bool   `json:"suppressed,omitempty"`
}

// BuildOwnership computes the affinity map for every internal/ package
// in pkgs. Positions are rendered relative to baseDir.
func BuildOwnership(pkgs []*Package, baseDir string) *OwnershipReport {
	ow := newOwnWorld(pkgs)
	known := make(map[string]bool)
	for _, a := range Analyzers() {
		known[a.Name] = true
	}
	sups := make(suppressionSet)
	for _, p := range pkgs {
		ps, _ := collectSuppressions(p, known)
		for k, e := range ps {
			sups[k] = e
		}
	}

	byPath := make(map[string]*OwnershipPackage)
	pkgFor := func(path string) *OwnershipPackage {
		op := byPath[path]
		if op == nil {
			op = &OwnershipPackage{ImportPath: path}
			byPath[path] = op
		}
		return op
	}
	typesPkgPath := make(map[*types.Package]string)
	for _, p := range pkgs {
		typesPkgPath[p.Types] = p.ImportPath
	}

	var boundNamed []*types.Named
	for n, bound := range ow.bound {
		if bound && n.Obj().Pkg() != nil {
			boundNamed = append(boundNamed, n)
		}
	}
	sort.Slice(boundNamed, func(i, j int) bool {
		return boundNamed[i].Obj().Name() < boundNamed[j].Obj().Name()
	})
	for _, n := range boundNamed {
		path, ok := typesPkgPath[n.Obj().Pkg()]
		if !ok || !underInternal(path) {
			continue
		}
		op := pkgFor(path)
		op.EngineBoundTypes = append(op.EngineBoundTypes, OwnershipType{
			Name: n.Obj().Name(),
			Via:  ow.boundVia[n],
		})
	}

	for _, of := range ow.ordered {
		if !underInternal(of.pkg.ImportPath) {
			continue
		}
		b := OwnershipBearer{
			Func:         of.name,
			Pos:          relPos(of.pkg.Fset.Position(of.decl.Pos()), baseDir),
			ReturnsOwned: of.retChain != nil || of.paramRet != 0,
		}
		if of.decl.Recv != nil && len(of.decl.Recv.List) > 0 {
			b.ReceiverBound = ow.typeBound(of.pkg.Info.TypeOf(of.decl.Recv.List[0].Type))
		}
		var boundParams []int
		for v, i := range of.paramIdx {
			if ow.typeBound(v.Type()) {
				boundParams = append(boundParams, i)
			}
		}
		sort.Ints(boundParams)
		b.BoundParams = boundParams
		if b.ReceiverBound || len(b.BoundParams) > 0 || b.ReturnsOwned {
			pkgFor(of.pkg.ImportPath).EngineBearers = append(pkgFor(of.pkg.ImportPath).EngineBearers, b)
		}
	}

	for _, rec := range ow.escapes(pkgs) {
		op := pkgFor(rec.pkg.ImportPath)
		op.Escapes = append(op.Escapes, OwnershipEscape{
			Kind:       rec.kind,
			Pos:        relPos(rec.pos, baseDir),
			Detail:     rec.finding.Message,
			Suppressed: sups.covers(rec.finding),
		})
	}

	for _, r := range collectGlobalmut(pkgs) {
		op := pkgFor(r.pkg.ImportPath)
		op.MutableGlobals = append(op.MutableGlobals, OwnershipGlobal{
			Name:       r.name,
			Type:       r.typ,
			Pos:        relPos(r.pos, baseDir),
			Written:    r.write != nil,
			Suppressed: sups.covers(r.finding()),
		})
	}

	report := &OwnershipReport{Schema: ownershipSchema}
	paths := make([]string, 0, len(byPath))
	for path := range byPath {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	for _, path := range paths {
		op := byPath[path]
		sort.Slice(op.EngineBoundTypes, func(i, j int) bool {
			return op.EngineBoundTypes[i].Name < op.EngineBoundTypes[j].Name
		})
		sort.Slice(op.EngineBearers, func(i, j int) bool {
			a, b := op.EngineBearers[i], op.EngineBearers[j]
			if a.Pos != b.Pos {
				return a.Pos < b.Pos
			}
			return a.Func < b.Func
		})
		// Escapes and globals inherit the deterministic order of their
		// source passes; no re-sort needed, but keep them stable anyway.
		report.Packages = append(report.Packages, op)
	}
	return report
}

// WriteOwnership renders the report as indented JSON, trailing newline
// included, so the artifact diffs cleanly.
func WriteOwnership(w io.Writer, pkgs []*Package, baseDir string) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(BuildOwnership(pkgs, baseDir))
}

// relPos renders "file:line" with the filename relative to baseDir when
// that is shorter (the SARIF writer's convention).
func relPos(pos token.Position, baseDir string) string {
	name := pos.Filename
	if rel, err := filepath.Rel(baseDir, name); err == nil && len(rel) < len(name) {
		name = rel
	}
	return fmt.Sprintf("%s:%d", name, pos.Line)
}
