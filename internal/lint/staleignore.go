package lint

// StaleignoreAnalyzer reports //eslurmlint:ignore directives that no
// longer suppress anything. A stale ignore is a latent hole in the gate:
// the code it excused has moved or been fixed, and the directive now sits
// ready to silence the *next* — unrelated — finding that lands on its
// line. The rule closes the suppression lifecycle: adding an ignore
// requires a reason, and keeping one requires a finding.
//
// The pass is implemented inside the Run pipeline rather than as a
// standalone Run/RunModule function, because it needs the one thing only
// the pipeline knows: which directives were load-bearing after every
// other analyzer ran and suppression filtering finished. A directive is
// only judged when its analyzer was enabled for the invocation (an ignore
// for a pass that did not run cannot be called stale), and a staleignore
// finding can itself be suppressed — one level deep — with
// //eslurmlint:ignore staleignore <reason> for directives that must
// outlive their finding (e.g. code toggled by build tags the linter does
// not see).
var StaleignoreAnalyzer = &Analyzer{
	Name: "staleignore",
	Doc:  "flag //eslurmlint:ignore directives that no longer suppress any finding",
}
