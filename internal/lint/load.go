package lint

import (
	"bufio"
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Loader type-checks packages of one Go module using only the standard
// library. Module-local imports are resolved by mapping import paths onto
// directories under the module root and loading them recursively; standard
// library imports fall back to the source importer, which reads GOROOT/src
// directly and therefore needs no pre-built export data.
type Loader struct {
	ModuleRoot string
	ModulePath string
	Fset       *token.FileSet

	std     types.Importer
	pkgs    map[string]*Package // by import path, fully loaded
	loading map[string]bool     // cycle guard
}

// NewLoader creates a loader rooted at the directory containing go.mod.
func NewLoader(moduleRoot string) (*Loader, error) {
	modPath, err := modulePath(filepath.Join(moduleRoot, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		ModuleRoot: moduleRoot,
		ModulePath: modPath,
		Fset:       fset,
		std:        importer.ForCompiler(fset, "source", nil),
		pkgs:       make(map[string]*Package),
		loading:    make(map[string]bool),
	}, nil
}

// FindModuleRoot walks up from dir looking for go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("%s: no module directive", gomod)
}

// Import implements types.Importer so the type checker can resolve the
// dependencies of whatever package is being checked.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := l.pkgs[path]; ok {
		return p.Types, nil
	}
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")
		p, err := l.LoadDir(filepath.Join(l.ModuleRoot, filepath.FromSlash(rel)))
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.Import(path)
}

// Loaded returns the already type-checked package for a module-local
// import path, or nil. The result cache resolves dependency closures
// through it; anything the type checker pulled in is here, whether or not
// it appeared in the CLI patterns.
func (l *Loader) Loaded(importPath string) *Package {
	return l.pkgs[importPath]
}

// LoadDir parses and type-checks the (non-test) package in dir.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	importPath := l.importPathFor(dir)
	if p, ok := l.pkgs[importPath]; ok {
		return p, nil
	}
	if l.loading[importPath] {
		return nil, fmt.Errorf("import cycle through %s", importPath)
	}
	l.loading[importPath] = true
	defer delete(l.loading, importPath)

	names, err := goFilesIn(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("%s: no Go files", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	var typeErrs []error
	conf := types.Config{
		Importer: l,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := conf.Check(importPath, l.Fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("%s: type errors: %v", importPath, typeErrs[0])
	}

	p := &Package{
		ImportPath: importPath,
		Dir:        dir,
		Fset:       l.Fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}
	l.pkgs[importPath] = p
	return p, nil
}

// importPathFor maps a directory inside the module to its import path.
// Directories outside the module root (which should not occur in normal
// use) fall back to the raw directory path.
func (l *Loader) importPathFor(dir string) string {
	rel, err := filepath.Rel(l.ModuleRoot, dir)
	if err != nil || strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(dir)
	}
	if rel == "." {
		return l.ModulePath
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel)
}

// LoadPatterns resolves CLI package patterns into loaded packages. Each
// pattern is a directory, optionally ending in "/..." to include every
// package underneath it. Directories named testdata or vendor and hidden
// or underscore-prefixed directories are skipped during recursive walks
// (but an explicitly named directory is always loaded, so fixtures can be
// linted directly in tests).
func (l *Loader) LoadPatterns(patterns []string) ([]*Package, error) {
	var dirs []string
	seen := make(map[string]bool)
	addDir := func(d string) {
		if abs, err := filepath.Abs(d); err == nil && !seen[abs] {
			seen[abs] = true
			dirs = append(dirs, abs)
		}
	}
	for _, pat := range patterns {
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			root := rest
			if root == "" || root == "." {
				root = "."
			}
			absRoot, err := filepath.Abs(root)
			if err != nil {
				return nil, err
			}
			if _, err := os.Stat(absRoot); err != nil {
				return nil, fmt.Errorf("pattern %s: %w", pat, err)
			}
			err = filepath.WalkDir(absRoot, func(path string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				base := filepath.Base(path)
				if path != absRoot && (base == "testdata" || base == "vendor" ||
					strings.HasPrefix(base, ".") || strings.HasPrefix(base, "_")) {
					return filepath.SkipDir
				}
				if names, err := goFilesIn(path); err == nil && len(names) > 0 {
					addDir(path)
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
		} else {
			if st, err := os.Stat(pat); err != nil {
				return nil, fmt.Errorf("pattern %s: %w", pat, err)
			} else if !st.IsDir() {
				return nil, fmt.Errorf("pattern %s: not a directory", pat)
			}
			addDir(pat)
		}
	}
	sort.Strings(dirs)
	var pkgs []*Package
	for _, dir := range dirs {
		p, err := l.LoadDir(dir)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// goFilesIn lists the buildable non-test Go files in dir, honoring
// //go:build constraints so tag-disjoint twins (race_on.go/race_off.go)
// do not collide as redeclarations.
func goFilesIn(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		if !buildConstraintOK(filepath.Join(dir, name)) {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// buildConstraintOK evaluates the file's //go:build line (if any) for the
// loader's context: current GOOS/GOARCH, the gc toolchain, and every
// release tag up to the running version. Feature tags like "race" are
// false — the loader analyzes the default build, same as `go build`
// without extra tags. Files without a constraint, and files whose
// constraint fails to parse (the compiler will report those properly),
// are included.
func buildConstraintOK(path string) bool {
	f, err := os.Open(path)
	if err != nil {
		return true
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if constraint.IsGoBuild(line) {
			expr, err := constraint.Parse(line)
			if err != nil {
				return true
			}
			return expr.Eval(buildTagMatches)
		}
		// The constraint must precede the package clause; stop there.
		if strings.HasPrefix(line, "package ") {
			return true
		}
	}
	return true
}

func buildTagMatches(tag string) bool {
	switch tag {
	case runtime.GOOS, runtime.GOARCH, "gc":
		return true
	case "unix":
		switch runtime.GOOS {
		case "linux", "darwin", "freebsd", "netbsd", "openbsd", "dragonfly", "solaris", "illumos", "aix":
			return true
		}
		return false
	}
	if rest, ok := strings.CutPrefix(tag, "go1."); ok {
		tagMinor, err := strconv.Atoi(rest)
		if err != nil {
			return false
		}
		cur := strings.TrimPrefix(runtime.Version(), "go1.")
		if i := strings.IndexByte(cur, '.'); i >= 0 {
			cur = cur[:i]
		}
		curMinor, err := strconv.Atoi(cur)
		return err == nil && tagMinor <= curMinor
	}
	return false
}
