package lint

import "go/ast"

// GosimAnalyzer flags `go` statements inside the simulation's internal/
// packages. The determinism contract (same seed ⇒ same event trace, bit
// for bit) holds because the simnet engine is single-threaded: every
// state change happens inside an engine event, in heap order. A goroutine
// runs on the Go scheduler's clock instead — its interleaving with engine
// events varies run to run, so any simulation state it touches (or any
// event it schedules) makes the trace irreproducible. Concurrency that
// lives strictly outside the simulated world — e.g. a worker pool running
// independent engines in parallel — is legitimate, and must carry an
// //eslurmlint:ignore gosim suppression explaining exactly that.
var GosimAnalyzer = &Analyzer{
	Name: "gosim",
	Doc:  "flag go statements in internal/ simulation packages (single-threaded determinism contract)",
	Run:  runGosim,
}

func runGosim(p *Package) []Finding {
	if !underInternal(p.ImportPath) {
		return nil
	}
	var out []Finding
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			out = append(out, Finding{p.Fset.Position(g.Pos()), "gosim",
				"go statement in a simulation package: the determinism contract is single-threaded (same seed ⇒ same trace) and goroutine interleaving is scheduler-dependent — schedule an engine event instead, or suppress with a reason if the concurrency never touches simulated state"})
			return true
		})
	}
	return out
}
