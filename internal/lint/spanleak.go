package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"eslurm/internal/lint/cfg"
)

// SpanleakAnalyzer is the first flow-sensitive pass: a span ID obtained
// from Tracer.Start (matched structurally on a receiver type named
// Tracer, like the taint pass's Engine matching) must reach a
// Tracer.End on every path out of the function, or visibly escape the
// intra-procedural frame — captured by a closure, stored, returned, or
// handed to a non-Tracer call — in which case the escapee owns the
// close. Instant needs no End, and paths on which the handle is proven
// zero (`id == 0`, i.e. the nil-receiver-safe tracer) are excluded by
// branch refinement, as are paths where the tracer itself is
// nil-checked. A span left open corrupts the Chrome-trace export's
// nesting for every span after it, which is why the finding prints the
// exact branch-by-branch path that skips the End.
var SpanleakAnalyzer = &Analyzer{
	Name: "spanleak",
	Doc:  "require every Tracer.Start span to be Ended (or escape to its closer) on all paths",
	Run:  runSpanleak,
}

// spanOrigin is one tracked `v := tr.Start(...)` site.
type spanOrigin struct {
	assign *ast.AssignStmt
	call   *ast.CallExpr
	v      *types.Var
	recv   *types.Var // the tracer variable, when the receiver is a plain ident
	label  string
}

func runSpanleak(p *Package) []Finding {
	if strings.HasSuffix(p.ImportPath, "internal/obs") {
		return nil // the tracer implementation itself
	}
	var out []Finding
	for _, fb := range flowBodies(p) {
		out = append(out, spanleakBody(fb)...)
	}
	return out
}

func spanleakBody(fb funcBody) []Finding {
	origins := spanOrigins(fb)
	if len(origins) == 0 {
		return nil
	}
	g := fb.buildCFG()
	parents := parentMap(fb.body)
	var out []Finding
	for _, o := range origins {
		o := o
		trace := scanOpenPath(fb.p.Fset, g, o.assign,
			fmt.Sprintf("Start (%s)", shortPosAt(fb.p.Fset, o.call.Pos())),
			func(n ast.Node) bool { return spanSettles(fb.p, parents, n, o.v) },
			func(e *cfg.Edge) bool { return spanNilsafeEdge(fb.p, e, o.v, o.recv) },
		)
		if trace == nil {
			continue
		}
		label := o.label
		if label == "" {
			label = o.v.Name()
		}
		out = append(out, Finding{fb.p.Fset.Position(o.call.Pos()), "spanleak",
			fmt.Sprintf("span %q may reach an exit of %s without End on path: %s; every Start needs a reachable End on all paths (Instant needs none) — an unclosed span corrupts the trace export's nesting",
				label, fb.name, trace)})
	}
	return out
}

// spanOrigins finds the tracked Start assignments in the body's own
// statements (function literals are separate bodies).
func spanOrigins(fb funcBody) []spanOrigin {
	var out []spanOrigin
	ast.Inspect(fb.body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(fb.p, call)
		if fn == nil || fn.Name() != "Start" || recvTypeName(fn) != "Tracer" {
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok || id.Name == "_" {
			return true
		}
		v := lhsVarOf(fb.p, id)
		if v == nil {
			return true
		}
		o := spanOrigin{assign: as, call: call, v: v, label: spanLabelArg(call)}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if rid, ok := sel.X.(*ast.Ident); ok {
				o.recv = useVar(fb.p, rid)
			}
		}
		out = append(out, o)
		return true
	})
	return out
}

// lhsVarOf resolves an assignment target identifier whether it defines
// (:=) or reuses (=) the variable.
func lhsVarOf(p *Package, id *ast.Ident) *types.Var {
	if v, ok := p.Info.Defs[id].(*types.Var); ok {
		return v
	}
	return useVar(p, id)
}

// spanSettles reports whether node n settles span variable v: an End
// call terminates it; any escape (capture, store, return, argument to a
// non-Tracer call, rebinding) transfers ownership out of this frame.
// The only non-settling uses are comparisons and arguments to other
// Tracer methods (Start-as-parent, SetAttr, SetAttrInt, Instant), which
// merely annotate.
func spanSettles(p *Package, parents map[ast.Node]ast.Node, n ast.Node, v *types.Var) bool {
	settled := false
	ast.Inspect(n, func(m ast.Node) bool {
		if settled {
			return false
		}
		id, ok := m.(*ast.Ident)
		if !ok || useVar(p, id) != v && defVarOf(p, id) != v {
			return true
		}
		if spanUseSettles(p, parents, id, v) {
			settled = true
			return false
		}
		return true
	})
	return settled
}

func defVarOf(p *Package, id *ast.Ident) *types.Var {
	v, _ := p.Info.Defs[id].(*types.Var)
	return v
}

func spanUseSettles(p *Package, parents map[ast.Node]ast.Node, id *ast.Ident, v *types.Var) bool {
	if insideFuncLit(parents, id) {
		return true // capture: the closure owns the close now
	}
	switch par := parents[id].(type) {
	case *ast.BinaryExpr:
		if isComparison(par.Op) {
			return false // guard, not a consumption
		}
	case *ast.CallExpr:
		for _, a := range par.Args {
			if a == ast.Expr(id) {
				fn := calleeFunc(p, par)
				if recvTypeName(fn) == "Tracer" {
					// End settles; sibling Tracer methods only annotate.
					return fn.Name() == "End"
				}
				return true // handed to arbitrary code: escape
			}
		}
	case *ast.AssignStmt:
		// Appearing on either side of a later assignment settles it:
		// LHS is a rebind (old handle's lifecycle is over), RHS a store.
		return true
	}
	// Returns, composite literals, index expressions, address-of, …:
	// every remaining use is an escape; the benefit of the doubt keeps
	// the pass quiet rather than wrong.
	return true
}

// spanNilsafeEdge reports whether edge e proves the span cannot leak on
// this path: the handle is zero (`id == 0` — Start on a nil Tracer
// returns 0 and End(0) is a no-op) or the tracer itself is nil.
func spanNilsafeEdge(p *Package, e *cfg.Edge, v, recv *types.Var) bool {
	be, ok := e.Cond.(*ast.BinaryExpr)
	if !ok {
		return false
	}
	matches := func(x ast.Expr, target *types.Var) bool {
		id, ok := x.(*ast.Ident)
		return ok && target != nil && useVar(p, id) == target
	}
	isZero := func(x ast.Expr) bool {
		lit, ok := x.(*ast.BasicLit)
		return ok && lit.Value == "0"
	}
	isNil := func(x ast.Expr) bool {
		id, ok := x.(*ast.Ident)
		return ok && id.Name == "nil"
	}
	switch {
	case matches(be.X, v) && isZero(be.Y), matches(be.Y, v) && isZero(be.X):
		// span id compared to zero
	case matches(be.X, recv) && isNil(be.Y), matches(be.Y, recv) && isNil(be.X):
		// tracer compared to nil
	default:
		return false
	}
	// `== 0`/`== nil` taken, or `!= 0`/`!= nil` not taken.
	return (be.Op == token.EQL && e.Val) || (be.Op == token.NEQ && !e.Val)
}
