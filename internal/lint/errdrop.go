package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// ErrdropAnalyzer flags discarded error returns from the parse/encode
// boundary packages: internal/config, internal/hostlist, internal/proto,
// and the estimator checkpoint code in internal/estimate/persist.go. A
// swallowed error from any of these does not crash — it silently feeds a
// zero value into the simulation (an empty host set, a half-decoded
// message, a stale estimator state) and skews every downstream number.
// Both `_ =` assignments and bare call statements (including go/defer)
// are flagged.
var ErrdropAnalyzer = &Analyzer{
	Name: "errdrop",
	Doc:  "flag discarded errors from config/hostlist/proto/estimate-persist functions",
	Run:  runErrdrop,
}

// errdropPkgSuffixes are package-path suffixes whose whole API is
// error-checked; internal/estimate is scoped to persist.go only.
var errdropPkgSuffixes = []string{"internal/config", "internal/hostlist", "internal/proto"}

func errdropTarget(p *Package, fn *types.Func) bool {
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	path := fn.Pkg().Path()
	for _, suffix := range errdropPkgSuffixes {
		if strings.HasSuffix(path, suffix) {
			return true
		}
	}
	if strings.HasSuffix(path, "internal/estimate") {
		return strings.HasSuffix(p.Fset.Position(fn.Pos()).Filename, "persist.go")
	}
	return false
}

var errType = types.Universe.Lookup("error").Type()

// errResultIndices returns the positions of error-typed results.
func errResultIndices(sig *types.Signature) []int {
	var idx []int
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if types.Identical(res.At(i).Type(), errType) {
			idx = append(idx, i)
		}
	}
	return idx
}

func runErrdrop(p *Package) []Finding {
	var out []Finding
	report := func(call *ast.CallExpr, fn *types.Func, how string) {
		out = append(out, Finding{
			Pos:      p.Fset.Position(call.Pos()),
			Analyzer: "errdrop",
			Message: "error from " + fn.Pkg().Name() + "." + fn.Name() + " is " + how +
				"; a swallowed parse/encode error silently skews the experiment",
		})
	}
	// checkBare handles expression statements plus go/defer calls, where
	// every result is dropped.
	checkBare := func(call *ast.CallExpr) {
		fn := calleeFunc(p, call)
		if !errdropTarget(p, fn) {
			return
		}
		if sig, ok := fn.Type().(*types.Signature); ok && len(errResultIndices(sig)) > 0 {
			report(call, fn, "discarded by a bare call")
		}
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.ExprStmt:
				if call, ok := st.X.(*ast.CallExpr); ok {
					checkBare(call)
				}
			case *ast.GoStmt:
				checkBare(st.Call)
			case *ast.DeferStmt:
				checkBare(st.Call)
			case *ast.AssignStmt:
				checkErrAssign(p, st, report)
			}
			return true
		})
	}
	return out
}

// checkErrAssign flags `_`-assigned error results from target functions,
// in both the multi-result form (v, _ := f()) and the paired form
// (_ = f(), or a, _ = g(), f()).
func checkErrAssign(p *Package, as *ast.AssignStmt, report func(*ast.CallExpr, *types.Func, string)) {
	isBlank := func(e ast.Expr) bool {
		id, ok := e.(*ast.Ident)
		return ok && id.Name == "_"
	}
	if len(as.Rhs) == 1 && len(as.Lhs) > 1 {
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return
		}
		fn := calleeFunc(p, call)
		if !errdropTarget(p, fn) {
			return
		}
		sig, ok := fn.Type().(*types.Signature)
		if !ok {
			return
		}
		for _, i := range errResultIndices(sig) {
			if i < len(as.Lhs) && isBlank(as.Lhs[i]) {
				report(call, fn, "assigned to _")
			}
		}
		return
	}
	if len(as.Rhs) != len(as.Lhs) {
		return
	}
	for i, rhs := range as.Rhs {
		call, ok := rhs.(*ast.CallExpr)
		if !ok || !isBlank(as.Lhs[i]) {
			continue
		}
		fn := calleeFunc(p, call)
		if !errdropTarget(p, fn) {
			continue
		}
		if sig, ok := fn.Type().(*types.Signature); ok && len(errResultIndices(sig)) > 0 {
			report(call, fn, "assigned to _")
		}
	}
}
