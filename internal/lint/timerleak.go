package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// TimerleakAnalyzer tracks Engine.After / Engine.Every handles bound to
// a local variable (matched structurally on a receiver type named
// Engine): on every path out of the function the handle must be
// cancelled (Event.Cancel / Ticker.Stop), rebound, or escape to an
// owner (stored to a field, captured by a closure, returned, passed
// on, or read as a method value like `t.Stop`). Discarding the call
// result is the sanctioned fire-and-forget idiom and is never flagged —
// binding the handle declares an intent to manage it, and the
// generation-checked handles make a dropped binding memory-safe but
// *control*-unsafe: the event still fires, and nothing can cancel it
// anymore. Query methods (Event.Canceled) and comparisons do not
// consume the handle.
var TimerleakAnalyzer = &Analyzer{
	Name: "timerleak",
	Doc:  "require bound Engine.After/Every handles to be cancelled, rebound, or escape on all paths",
	Run:  runTimerleak,
}

// timerOrigin is one tracked `h := e.After(...)` / `t := e.Every(...)`.
type timerOrigin struct {
	assign *ast.AssignStmt
	call   *ast.CallExpr
	v      *types.Var
	method string // "After" or "Every"
}

func runTimerleak(p *Package) []Finding {
	if strings.HasSuffix(p.ImportPath, "internal/simnet") {
		return nil // the engine implementation itself
	}
	var out []Finding
	for _, fb := range flowBodies(p) {
		out = append(out, timerleakBody(fb)...)
	}
	return out
}

func timerleakBody(fb funcBody) []Finding {
	origins := timerOrigins(fb)
	if len(origins) == 0 {
		return nil
	}
	g := fb.buildCFG()
	parents := parentMap(fb.body)
	var out []Finding
	for _, o := range origins {
		o := o
		trace := scanOpenPath(fb.p.Fset, g, o.assign,
			fmt.Sprintf("%s (%s)", o.method, shortPosAt(fb.p.Fset, o.call.Pos())),
			func(n ast.Node) bool { return timerSettles(fb.p, parents, n, o.v) },
			nil, // handles are generation-checked values: no nil regime
		)
		if trace == nil {
			continue
		}
		out = append(out, Finding{fb.p.Fset.Position(o.call.Pos()), "timerleak",
			fmt.Sprintf("Engine.%s handle %q may leave %s still armed on path: %s; cancel it, rebind it, or discard the result deliberately — a dropped handle is memory-safe (generation-checked) but its timer still fires with no way left to cancel",
				o.method, o.v.Name(), fb.name, trace)})
	}
	return out
}

// timerOrigins finds handle bindings in the body's own statements.
func timerOrigins(fb funcBody) []timerOrigin {
	var out []timerOrigin
	ast.Inspect(fb.body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(fb.p, call)
		if fn == nil || recvTypeName(fn) != "Engine" {
			return true
		}
		if fn.Name() != "After" && fn.Name() != "Every" {
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok || id.Name == "_" {
			return true
		}
		v := lhsVarOf(fb.p, id)
		if v == nil {
			return true
		}
		out = append(out, timerOrigin{assign: as, call: call, v: v, method: fn.Name()})
		return true
	})
	return out
}

// timerSettles reports whether node n settles handle v. Cancel/Stop
// calls terminate it; method-value reads, captures, stores, returns and
// argument passes escape it; rebinding replaces it. Comparisons and
// query method calls (Canceled) only observe it.
func timerSettles(p *Package, parents map[ast.Node]ast.Node, n ast.Node, v *types.Var) bool {
	settled := false
	ast.Inspect(n, func(m ast.Node) bool {
		if settled {
			return false
		}
		id, ok := m.(*ast.Ident)
		if !ok || useVar(p, id) != v && defVarOf(p, id) != v {
			return true
		}
		if timerUseSettles(p, parents, id) {
			settled = true
			return false
		}
		return true
	})
	return settled
}

func timerUseSettles(p *Package, parents map[ast.Node]ast.Node, id *ast.Ident) bool {
	if insideFuncLit(parents, id) {
		return true // capture: the closure owns the handle now
	}
	switch par := parents[id].(type) {
	case *ast.BinaryExpr:
		if isComparison(par.Op) {
			return false
		}
	case *ast.SelectorExpr:
		if call, ok := parents[par].(*ast.CallExpr); ok && call.Fun == ast.Expr(par) {
			switch par.Sel.Name {
			case "Cancel", "Stop":
				return true // the cancellation itself
			default:
				return false // query (Canceled, ...): observation only
			}
		}
		// Method value (`t.Stop` handed somewhere) or field read:
		// ownership moved out of this frame.
		return true
	case *ast.AssignStmt:
		return true // rebind (LHS) or store (RHS)
	}
	// Call arguments, returns, composite literals, address-of, …: escape.
	return true
}
