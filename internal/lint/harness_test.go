package lint

// An analysistest-style golden-file harness: each directory under
// testdata/src is one package; `// want "substring"` comments mark the
// line and message of every expected finding. A case fails if a want goes
// unmatched or an unexpected finding appears, so every case proves both
// that its analyzer fires on violations and stays silent on compliant
// code. The //eslurmlint:testpath directive lets a case masquerade as a
// different import path to exercise path-scoped rules.

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
)

var (
	loaderOnce sync.Once
	testLdr    *Loader
	loaderErr  error
)

// testLoader returns a process-wide loader so the standard library is
// type-checked once across all cases.
func testLoader(t *testing.T) *Loader {
	t.Helper()
	loaderOnce.Do(func() {
		root, err := FindModuleRoot(".")
		if err != nil {
			loaderErr = err
			return
		}
		testLdr, loaderErr = NewLoader(root)
	})
	if loaderErr != nil {
		t.Fatal(loaderErr)
	}
	return testLdr
}

type want struct {
	file   string
	line   int
	substr string
}

var (
	wantRe  = regexp.MustCompile(`// want (.*)$`)
	quoteRe = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)
)

func parseWants(t *testing.T, dir string) []want {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var wants []want
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		abs, err := filepath.Abs(path)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRe.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			quoted := quoteRe.FindAllString(m[1], -1)
			if len(quoted) == 0 {
				t.Fatalf("%s:%d: malformed want comment (no quoted substring)", path, i+1)
			}
			for _, q := range quoted {
				s, err := strconv.Unquote(q)
				if err != nil {
					t.Fatalf("%s:%d: bad want string %s: %v", path, i+1, q, err)
				}
				wants = append(wants, want{abs, i + 1, s})
			}
		}
	}
	return wants
}

// runCase loads one testdata package, runs the analyzers through the full
// Run pipeline (so suppressions apply), and diffs findings against the
// want comments.
func runCase(t *testing.T, name string, analyzers ...*Analyzer) {
	t.Helper()
	runModuleCase(t, []string{name}, analyzers...)
}

// runModuleCase is runCase over several testdata packages loaded
// together, for module-level rules (taint chains across packages,
// randlabel's cross-package collisions) whose evidence no single package
// holds. Want comments are collected from every named directory.
func runModuleCase(t *testing.T, names []string, analyzers ...*Analyzer) {
	t.Helper()
	l := testLoader(t)
	var pkgs []*Package
	var wants []want
	for _, n := range names {
		dir := filepath.Join("testdata", "src", n)
		p, err := l.LoadDir(dir)
		if err != nil {
			t.Fatalf("loading %s: %v", dir, err)
		}
		if tp, ok := testPathOverride(p); ok {
			p.ImportPath = tp
		}
		pkgs = append(pkgs, p)
		wants = append(wants, parseWants(t, dir)...)
	}
	name := strings.Join(names, "+")
	got := Run(pkgs, analyzers)

	matched := make([]bool, len(got))
	for _, w := range wants {
		found := false
		for i, f := range got {
			if matched[i] || f.Pos.Filename != w.file || f.Pos.Line != w.line {
				continue
			}
			if strings.Contains(f.Message, w.substr) {
				matched[i] = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s:%d: expected finding containing %q, got none", w.file, w.line, w.substr)
		}
	}
	for i, f := range got {
		if !matched[i] {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	if t.Failed() {
		var all []string
		for _, f := range got {
			all = append(all, f.String())
		}
		t.Logf("all findings for %s:\n%s", name, strings.Join(all, "\n"))
	}
}

func TestWalltime(t *testing.T) {
	runCase(t, "walltime_bad", WalltimeAnalyzer)
	runCase(t, "walltime_good", WalltimeAnalyzer)
	runCase(t, "walltime_cmd", WalltimeAnalyzer)
	runCase(t, "walltime_suppressed", WalltimeAnalyzer)
}

func TestDetrand(t *testing.T) {
	runCase(t, "detrand_bad", DetrandAnalyzer)
	runCase(t, "detrand_good", DetrandAnalyzer)
	runCase(t, "detrand_simnet", DetrandAnalyzer)
}

func TestMaporder(t *testing.T) {
	runCase(t, "maporder_bad", MaporderAnalyzer)
	runCase(t, "maporder_good", MaporderAnalyzer)
}

func TestErrdrop(t *testing.T) {
	runCase(t, "errdrop_bad", ErrdropAnalyzer)
	runCase(t, "errdrop_good", ErrdropAnalyzer)
}

func TestEvalloc(t *testing.T) {
	runCase(t, "evalloc_bad", EvallocAnalyzer)
	runCase(t, "evalloc_good", EvallocAnalyzer)
	runCase(t, "evalloc_suppressed", EvallocAnalyzer)
}

func TestGosim(t *testing.T) {
	runCase(t, "gosim_bad", GosimAnalyzer)
	runCase(t, "gosim_good", GosimAnalyzer)
	runCase(t, "gosim_suppressed", GosimAnalyzer)
	runCase(t, "gosim_cmd", GosimAnalyzer)
}

// TestTaint pins the cross-function dataflow pass, including (in
// taint_bad) the exact source → intermediate calls → sink chains the
// finding messages must carry.
func TestTaint(t *testing.T) {
	runCase(t, "taint_bad", TaintAnalyzer)
	runCase(t, "taint_good", TaintAnalyzer)
	runCase(t, "taint_suppressed", TaintAnalyzer)
}

func TestFloatsum(t *testing.T) {
	runCase(t, "floatsum_bad", FloatsumAnalyzer)
	runCase(t, "floatsum_good", FloatsumAnalyzer)
	runCase(t, "floatsum_suppressed", FloatsumAnalyzer)
}

// TestRandlabel exercises the module-level rule: the collision only
// exists when both packages are loaded together.
func TestRandlabel(t *testing.T) {
	runModuleCase(t, []string{"randlabel_a", "randlabel_b"}, RandlabelAnalyzer)
	runModuleCase(t, []string{"randlabel_sup_a", "randlabel_sup_b"}, RandlabelAnalyzer)
}

// TestStaleignore runs with walltime enabled so the directives under
// judgment target an analyzer that actually ran.
func TestPkgdoc(t *testing.T) {
	runCase(t, "pkgdoc_bad", PkgdocAnalyzer)
	runCase(t, "pkgdoc_nodoc", PkgdocAnalyzer)
	runCase(t, "pkgdoc_good", PkgdocAnalyzer)
	runCase(t, "pkgdoc_suppressed", PkgdocAnalyzer)
}

// TestEngineown pins the ownership escape analysis, including (in
// engineown_bad) the owner → hops → escape chains the messages carry.
func TestEngineown(t *testing.T) {
	runCase(t, "engineown_bad", EngineownAnalyzer)
	runCase(t, "engineown_good", EngineownAnalyzer)
	runCase(t, "engineown_suppressed", EngineownAnalyzer)
	runCase(t, "engineown_shard_silent", EngineownAnalyzer)
	runCase(t, "engineown_shard_fire", EngineownAnalyzer)
}

// TestReconcileLoopPattern pins the reconciler's control-loop idiom
// against both concurrency analyzers at once: the ticker-callback form
// (reconcileloop_good) is silent with no package waiver, while the
// naive goroutine port (reconcileloop_bad) fires gosim on the spawn and
// engineown on every escape route it opens.
func TestReconcileLoopPattern(t *testing.T) {
	runCase(t, "reconcileloop_good", GosimAnalyzer, EngineownAnalyzer)
	runCase(t, "reconcileloop_bad", GosimAnalyzer, EngineownAnalyzer)
}

// TestGlobalmut pins the global-state audit, including the internal/lint
// scope exemption (globalmut_exempt).
func TestGlobalmut(t *testing.T) {
	runCase(t, "globalmut_bad", GlobalmutAnalyzer)
	runCase(t, "globalmut_good", GlobalmutAnalyzer)
	runCase(t, "globalmut_exempt", GlobalmutAnalyzer)
	runCase(t, "globalmut_suppressed", GlobalmutAnalyzer)
}

func TestStaleignore(t *testing.T) {
	runCase(t, "staleignore_bad", WalltimeAnalyzer, StaleignoreAnalyzer)
	runCase(t, "staleignore_good", WalltimeAnalyzer, StaleignoreAnalyzer)
	runCase(t, "staleignore_suppressed", WalltimeAnalyzer, StaleignoreAnalyzer)
}

// TestRunOnRealTree is the self-hosting check: the whole module must lint
// clean, so a regression anywhere fails the lint package's own tests even
// before CI runs the CLI.
func TestRunOnRealTree(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the whole module")
	}
	l := testLoader(t)
	pkgs, err := l.LoadPatterns([]string{filepath.Join(l.ModuleRoot, "...")})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("expected to load the whole module, got %d packages", len(pkgs))
	}
	for _, f := range Run(pkgs, Analyzers()) {
		t.Errorf("tree not lint-clean: %s", f)
	}
}

// TestFindingString pins the canonical file:line: [analyzer] format the
// CLI and CI logs rely on.
func TestFindingString(t *testing.T) {
	f := Finding{Analyzer: "detrand", Message: "msg"}
	f.Pos.Filename = "a/b.go"
	f.Pos.Line = 7
	if got, want := f.String(), "a/b.go:7: [detrand] msg"; got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
	if fmt.Sprint(len(Analyzers())) != "17" {
		t.Fatalf("expected 17 analyzers, got %d", len(Analyzers()))
	}
}

// TestSpanleak pins the first CFG-backed pass: branch-dependent span
// leaks fire with their block traces, every settling and excusing shape
// stays silent, and the ignore directive works.
func TestSpanleak(t *testing.T) {
	runCase(t, "spanleak_bad", SpanleakAnalyzer)
	runCase(t, "spanleak_good", SpanleakAnalyzer)
	runCase(t, "spanleak_suppressed", SpanleakAnalyzer)
}

// TestTimerleak pins the dropped-handle pass: bound-but-forgotten
// After/Every handles fire, fire-and-forget and every escape stay
// silent.
func TestTimerleak(t *testing.T) {
	runCase(t, "timerleak_bad", TimerleakAnalyzer)
	runCase(t, "timerleak_good", TimerleakAnalyzer)
	runCase(t, "timerleak_suppressed", TimerleakAnalyzer)
}

// TestDrainpath pins the exactly-once callback contract, including the
// invokesOnce summary composition (drainpath_good's Forwarded).
func TestDrainpath(t *testing.T) {
	runCase(t, "drainpath_bad", DrainpathAnalyzer)
	runCase(t, "drainpath_good", DrainpathAnalyzer)
	runCase(t, "drainpath_suppressed", DrainpathAnalyzer)
}

// TestLookahead pins the bound prover: unanchored delivery times fire
// with their class diagnosis, every proof shape (direct, guarded raise,
// addend helper, captured addend) stays silent.
func TestLookahead(t *testing.T) {
	runCase(t, "lookahead_bad", LookaheadAnalyzer)
	runCase(t, "lookahead_good", LookaheadAnalyzer)
	runCase(t, "lookahead_suppressed", LookaheadAnalyzer)
}
