package simnet

// Observability hooks. The engine owns the per-simulation Tracer and
// metrics Registry so every layer with an engine handle (comm, core,
// satellite, sched, predict) reaches the same instruments without
// threading configuration through a dozen constructors.
//
// Tracing is strictly opt-in: Tracer() returns nil until EnableTracing
// is called, and every obs.Tracer method is a no-op on nil — the
// disabled cost on any instrumented path is one pointer load. Step() is
// untouched either way, so the kernel hot path stays allocation-free.
// Metrics are always on (a counter add costs as much as the bespoke
// int fields they replaced); recording draws no RNG and schedules no
// events, so neither surface perturbs the event trace.

import "eslurm/internal/obs"

// EnableTracing switches span recording on for this engine and returns
// the tracer. Calling it again returns the same tracer. Enable before
// running the simulation so spans cover it from virtual time zero.
func (e *Engine) EnableTracing() *obs.Tracer {
	if e.tracer == nil {
		e.tracer = obs.NewTracer(e.Now)
	}
	return e.tracer
}

// Tracer returns the engine's tracer, or nil when tracing is disabled.
// Instrumented code calls span methods on the result unconditionally;
// nil receivers no-op.
func (e *Engine) Tracer() *obs.Tracer { return e.tracer }

// Metrics returns the engine's metrics registry, building it on first
// use. Hot paths should look instruments up once and cache them.
func (e *Engine) Metrics() *obs.Registry {
	if e.metrics == nil {
		e.metrics = obs.NewRegistry()
	}
	return e.metrics
}

// Seed returns the seed the engine was built with (exports label
// processes with it).
func (e *Engine) Seed() int64 { return e.seed }
