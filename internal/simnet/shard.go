package simnet

import (
	"sort"
	"strconv"
	"time"

	"eslurm/internal/obs"
)

// Shard-parallel execution: one logical simulation partitioned across a
// fixed set of engine cells, each cell's event loop runnable on its own
// goroutine inside a conservative lookahead window, with cross-cell events
// merged through a deterministic (time, source cell, sequence) order.
//
// # Cells versus workers
//
// The deterministic unit is the *cell*: a fixed partition of the model
// (racks, in the cluster layer) chosen by the model's topology, never by
// the machine. Each cell owns one Engine and everything scheduled on it.
// The *worker count* — the -shards knob — only decides how many goroutines
// execute cells inside a window; it is invisible to the model. That split
// is what makes the shard-count invariance contract cheap to honor: the
// per-cell event streams and the cross-cell merge order depend only on
// (seed, topology, lookahead), so the same seed produces byte-identical
// trace digests and metrics at ANY worker count, including the serial
// workers=1 run that executes the very same windowed protocol inline.
//
// # The conservative window
//
// Let L be the lookahead: the minimum cross-cell link latency (the model
// must guarantee every cross-cell effect scheduled at virtual time t lands
// at t+L or later — Send enforces it). With T the earliest pending event
// across all cells, every cell can run its events in [T, T+L) with no
// input from any other cell: a cross-cell event emitted inside the window
// is timestamped ≥ T+L, past the window's end. Cells therefore execute the
// window concurrently with no synchronization, then meet at a barrier
// where buffered cross-cell events are sorted by (time, src cell, src seq)
// and scheduled onto their destination engines in that order. Destination
// sequence numbers are assigned during that deterministic sweep, so the
// merged (at, seq) execution streams are reproducible regardless of which
// goroutine ran which cell when.
type ShardGroup struct {
	seed      int64
	lookahead time.Duration
	cells     []*Engine
	workers   int

	// Cross-cell mail. out[src] is appended only by the goroutine
	// executing cell src during a window (or by the coordinating
	// goroutine between runs), and drained by the coordinator at each
	// barrier; seqs[src] is the per-source-cell send sequence that breaks
	// (time, src) ties.
	out  [][]crossEvent
	seqs []uint64

	// Per-cell FNV-1a digests over the (at, seq) execution streams,
	// maintained by per-cell observers when digesting is enabled. Written
	// only by the cell's executing goroutine; read at barriers.
	digests   []uint64
	digesting bool

	inWindow bool // true while a window is executing

	// merged is the reusable barrier scratch buffer mergeCross gathers
	// cross events into before sorting. Windows fire millions of times per
	// run, so reusing the slice keeps the barrier allocation-free once the
	// buffer has grown to the largest batch seen.
	merged []crossEvent

	// pool is the persistent window-worker pool, alive for the duration of
	// one RunUntil call (nil while idle and in workers==1 mode). Spawning
	// workers once per run instead of once per window matters: windows are
	// short (one lookahead of virtual time), and models run millions of
	// them.
	pool *shardPool
}

// shardPool is the per-RunUntil worker state: one command channel per
// worker, the static cell→worker stripes, and the barrier channel.
type shardPool struct {
	cmds    []chan shardCmd
	done    chan shardDone
	stripes [][]*Engine
}

// shardDone is the barrier completion token a worker sends after each
// window (and once on exit). A dedicated type, not a bare int, so the
// engineown exemption for the barrier handoff stays typed: only the
// sanctioned shardCmd/shardDone channels may cross the coordinator ↔
// worker boundary.
type shardDone struct{}

// crossEvent is one buffered cross-cell event awaiting the barrier merge.
type crossEvent struct {
	at  time.Duration
	src int
	seq uint64
	dst int
	fn  func()
}

// shardCmd is one window assignment handed to a worker goroutine: the
// cells it executes this window and the half-open window bounds. This
// channel payload carries engine-owned state across goroutines by design;
// together with shardDone it forms the sanctioned barrier handoff, and
// the engineown analyzer exempts exactly these types (see
// internal/lint/engineown.go).
type shardCmd struct {
	cells []*Engine
	end   time.Duration // events with at < end execute
	clock time.Duration // cell clocks advance to clock afterwards
}

// NewShardGroup builds a group of `cells` engines sharing one root seed,
// with the given conservative lookahead (must be positive: a zero
// lookahead admits no concurrent window) and worker count. workers is
// clamped to [1, cells]; the clamp is deliberate — requesting more workers
// than cells must not change anything, including at cells==1.
//
// Per-cell engine seeds are derived from (seed, cell index) through the
// same FNV construction as Engine.Rand labels, so every cell's labelled
// RNG streams are functions of (root seed, cell, label) alone —
// placement-independent and stable as the model grows.
func NewShardGroup(seed int64, cells int, lookahead time.Duration, workers int) *ShardGroup {
	if cells <= 0 {
		panic("simnet: ShardGroup needs at least one cell")
	}
	if lookahead <= 0 {
		panic("simnet: ShardGroup lookahead must be positive")
	}
	if workers < 1 {
		workers = 1
	}
	if workers > cells {
		workers = cells
	}
	g := &ShardGroup{
		seed:      seed,
		lookahead: lookahead,
		cells:     make([]*Engine, cells),
		workers:   workers,
		out:       make([][]crossEvent, cells),
		seqs:      make([]uint64, cells),
		digests:   make([]uint64, cells),
	}
	for i := range g.cells {
		// Cells are constructed on the caller's goroutine so the
		// goroutine-scoped engine accounting (CountEvents/CollectEngines)
		// attributes every cell to the experiment that built the group.
		g.cells[i] = NewEngine(deriveSeed(seed, "shard/cell/"+strconv.Itoa(i)))
	}
	return g
}

// Seed returns the group's root seed.
func (g *ShardGroup) Seed() int64 { return g.seed }

// Cells returns the number of cells (the fixed logical partition).
func (g *ShardGroup) Cells() int { return len(g.cells) }

// Workers returns the effective worker count after clamping.
func (g *ShardGroup) Workers() int { return g.workers }

// Lookahead returns the conservative window bound.
func (g *ShardGroup) Lookahead() time.Duration { return g.lookahead }

// Cell returns cell i's engine. Scheduling directly on a cell is the
// sanctioned way to install model state and control events before a run;
// during a run, only the cell's own events may touch it.
func (g *ShardGroup) Cell(i int) *Engine { return g.cells[i] }

// Processed sums executed events across all cells.
func (g *ShardGroup) Processed() uint64 {
	var n uint64
	for _, c := range g.cells {
		n += c.Processed()
	}
	return n
}

// Send schedules fn on cell dst at absolute virtual time at, from cell
// src. Cross-cell sends must respect the lookahead: at must be at least
// the source cell's current time plus the group lookahead, or the
// conservative window protocol would deliver into a window already
// executing — the panic is the contract's teeth. Same-cell sends are
// allowed any time ≥ now and are scheduled directly.
//
// Delivery order is deterministic: buffered cross-cell events are merged
// at each window barrier sorted by (at, src cell, per-source sequence),
// and scheduled onto the destination engine in that order.
func (g *ShardGroup) Send(src, dst int, at time.Duration, fn func()) {
	e := g.cells[src]
	if dst == src {
		e.Schedule(at, fn)
		return
	}
	if at < e.now+g.lookahead {
		panic("simnet: cross-shard send inside the lookahead window")
	}
	g.seqs[src]++
	g.out[src] = append(g.out[src], crossEvent{at: at, src: src, seq: g.seqs[src], dst: dst, fn: fn})
}

// EnableDigest arms per-cell (at, seq) execution-trace digests (FNV-1a).
// It claims each cell's single Observe slot. Call before running.
func (g *ShardGroup) EnableDigest() {
	if g.digesting {
		return
	}
	g.digesting = true
	for i, c := range g.cells {
		i := i
		c.Observe(func(at time.Duration, seq uint64) {
			g.digests[i] = fnvMix(fnvMix(g.digests[i], uint64(at)), seq)
		})
	}
	for i := range g.digests {
		g.digests[i] = fnvOffset
	}
}

// Digest folds the per-cell execution-stream digests into one value, in
// cell order. Two runs of the same seed and topology produce the same
// digest at any worker count; that equality is the shard-invariance
// contract the tests pin.
func (g *ShardGroup) Digest() uint64 {
	h := uint64(fnvOffset)
	for i := range g.cells {
		h = fnvMix(h, uint64(i))
		h = fnvMix(h, g.digests[i])
	}
	return h
}

// EnableTracing arms span recording on every cell's engine. Call before
// running. Per-cell recordings are worker-count-invariant for the same
// reason the digests are: each cell's event stream depends only on
// (seed, topology, lookahead), and spans are recorded by the cell that
// executes the instrumented code. Flatten the recordings with
// critpath.FromCells, which resolves the cross-cell "xparent" hand-off
// attributes into one DAG.
func (g *ShardGroup) EnableTracing() {
	for _, c := range g.cells {
		c.EnableTracing()
	}
}

// CellTracers returns each cell's tracer in cell order — the fixed
// model partition, so the slice layout is worker-count-invariant.
// Entries are nil when tracing was never enabled.
func (g *ShardGroup) CellTracers() []*obs.Tracer {
	ts := make([]*obs.Tracer, len(g.cells))
	for i, c := range g.cells {
		ts[i] = c.Tracer()
	}
	return ts
}

// MergedMetrics folds every cell's metrics registry into one fresh
// registry, in cell order. obs.Merge is order-independent, so the merged
// snapshot and its byte-stable text dump are worker-count-invariant —
// the metrics half of the shard-invariance contract.
func (g *ShardGroup) MergedMetrics() *obs.Registry {
	m := obs.NewRegistry()
	for _, c := range g.cells {
		m.Merge(c.Metrics())
	}
	return m
}

// RunUntil executes the group's events with time ≤ deadline under the
// conservative window protocol, then advances every cell's clock to the
// deadline. It is the sharded counterpart of Engine.RunUntil and may be
// called repeatedly to drive a simulation in phases.
func (g *ShardGroup) RunUntil(deadline time.Duration) {
	// Cross-cell events emitted between runs (model wiring done while the
	// group is idle) are merged before the first window.
	g.mergeCross()
	if g.workers > 1 {
		g.startWorkers()
		defer g.stopWorkers()
	}
	for {
		t, ok := g.earliest()
		if !ok || t > deadline {
			break
		}
		end := t + g.lookahead
		clock := end
		if end > deadline {
			// Final window of this run: execute everything ≤ deadline (the
			// half-open window [t, deadline+1) admits at == deadline) but
			// leave the clocks at the deadline itself. Merged cross events
			// are still safe: they are stamped ≥ t+lookahead > deadline.
			end = deadline + 1
			clock = deadline
		}
		g.runWindow(end, clock)
		g.mergeCross()
	}
	for _, c := range g.cells {
		if c.now < deadline {
			c.now = deadline
		}
	}
}

// earliest returns the earliest pending event time across cells.
func (g *ShardGroup) earliest() (time.Duration, bool) {
	var t time.Duration
	found := false
	for _, c := range g.cells {
		if at, ok := c.peekNext(); ok && (!found || at < t) {
			t, found = at, true
		}
	}
	return t, found
}

// startWorkers spawns the persistent window workers for one RunUntil
// call, with static cell→worker striping (cell i runs on worker
// i%workers). The assignment is irrelevant to the result (cells are
// independent within a window) but keeping it static makes scheduling
// overhead stable.
func (g *ShardGroup) startWorkers() {
	p := &shardPool{
		cmds:    make([]chan shardCmd, g.workers),
		done:    make(chan shardDone, g.workers),
		stripes: make([][]*Engine, g.workers),
	}
	for w := 0; w < g.workers; w++ {
		for i := w; i < len(g.cells); i += g.workers {
			p.stripes[w] = append(p.stripes[w], g.cells[i])
		}
		p.cmds[w] = make(chan shardCmd, 1)
		//eslurmlint:ignore gosim window workers run cells whose schedules are causally independent until the barrier; the merge order is fixed by (time, src cell, seq), so interleaving never reaches simulated state
		go g.worker(p.cmds[w], p.done)
	}
	g.pool = p
}

// stopWorkers closes the command channels and joins the workers.
func (g *ShardGroup) stopWorkers() {
	for _, ch := range g.pool.cmds {
		close(ch)
	}
	for range g.pool.cmds {
		<-g.pool.done
	}
	g.pool = nil
}

// runWindow executes one conservative window on every cell: events with
// at < end run, clocks advance to clock. With one worker the cells run
// inline on the calling goroutine — the identical protocol, minus the
// goroutines — which is both the fast path on small models and the
// serial reference the multi-worker runs must match byte for byte.
//
// In multi-worker mode, windows where at most one cell actually has
// events also run inline: the per-cell calls are identical either way,
// so only wall-clock changes, and most windows in communication-sparse
// phases are single-cell. The coordinator may touch cells directly here
// because the previous window's barrier receive happens-before this, and
// the next command send happens-after.
func (g *ShardGroup) runWindow(end, clock time.Duration) {
	g.inWindow = true
	defer func() { g.inWindow = false }()
	if g.workers > 1 {
		busy := 0
		for _, c := range g.cells {
			if at, ok := c.peekNext(); ok && at < end {
				if busy++; busy > 1 {
					break
				}
			}
		}
		if busy > 1 {
			for w := range g.pool.cmds {
				g.pool.cmds[w] <- shardCmd{cells: g.pool.stripes[w], end: end, clock: clock}
			}
			for range g.pool.cmds {
				<-g.pool.done
			}
			return
		}
	}
	for _, c := range g.cells {
		c.runWindow(end, clock)
	}
}

// worker executes window assignments until its command channel closes,
// signalling the barrier after each. The channel receive/send pair is
// the barrier handoff: everything the worker wrote (cell state, out
// buffers, digests) happens-before the coordinator's barrier reads.
func (g *ShardGroup) worker(cmds chan shardCmd, done chan<- shardDone) {
	for cmd := range cmds {
		for _, c := range cmd.cells {
			c.runWindow(cmd.end, cmd.clock)
		}
		done <- shardDone{}
	}
	done <- shardDone{}
}

// mergeCross drains the per-source cross-event buffers, sorts them by
// (time, src cell, src seq), and schedules them onto their destination
// engines in that order — the deterministic merge that assigns
// destination sequence numbers identically at every worker count.
func (g *ShardGroup) mergeCross() {
	all := g.merged[:0]
	for src := range g.out {
		all = append(all, g.out[src]...)
		g.out[src] = g.out[src][:0]
	}
	g.merged = all[:0]
	if len(all) == 0 {
		return
	}
	sortCross(all)
	for i := range all {
		g.cells[all[i].dst].Schedule(all[i].at, all[i].fn)
		all[i].fn = nil // release the closure; the scratch buffer outlives the window
	}
}

// sortCross sorts by (at, src, seq). The key is a total order — seq is
// unique per src — so any comparison sort yields the same permutation;
// sort.Slice keeps broadcast-burst barriers (thousands of cross events in
// one window) out of quadratic territory.
func sortCross(a []crossEvent) {
	sort.Slice(a, func(i, j int) bool { return crossBefore(&a[i], &a[j]) })
}

func crossBefore(x, y *crossEvent) bool {
	if x.at != y.at {
		return x.at < y.at
	}
	if x.src != y.src {
		return x.src < y.src
	}
	return x.seq < y.seq
}

// runWindow executes this engine's events with at < end, then advances
// the clock to clock (≤ end on deadline-capped final windows). It is the
// per-cell kernel of the conservative window protocol.
func (e *Engine) runWindow(end, clock time.Duration) {
	for {
		for len(e.events) > 0 && e.events[0].ev.canceled {
			e.canceled--
			e.recycle(e.popMin())
		}
		if len(e.events) == 0 || e.events[0].at >= end {
			break
		}
		e.Step()
	}
	if e.now < clock {
		e.now = clock
	}
}

// peekNext returns the time of the next live event, collecting cancelled
// entries at the root so the answer reflects what will actually fire.
func (e *Engine) peekNext() (time.Duration, bool) {
	for len(e.events) > 0 && e.events[0].ev.canceled {
		e.canceled--
		e.recycle(e.popMin())
	}
	if len(e.events) == 0 {
		return 0, false
	}
	return e.events[0].at, true
}

// FNV-1a mixing for the digest streams.
const fnvOffset = 14695981039346656037

func fnvMix(h, v uint64) uint64 {
	const prime = 1099511628211
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= prime
		v >>= 8
	}
	return h
}
