// Package benchkit hosts the simnet kernel microbenchmark bodies in a
// form both `go test -bench` (internal/simnet's bench file) and
// benchrunner's -json perf record can execute, so the numbers committed
// in BENCH_<preset>.json are produced by exactly the benchmarks CI
// smoke-runs.
//
// Determinism: the bodies drive fixed-seed engines, so the *work
// measured* is identical run to run — only host timing varies — and the
// Step benchmark doubles as the kernel's zero-allocation gate.
package benchkit

import (
	"testing"
	"time"

	"eslurm/internal/simnet"
)

// Step is the steady-state schedule→fire round trip against a 1K-event
// backlog — the regime every experiment driver puts the kernel in.
func Step(b *testing.B) {
	e := simnet.NewEngine(1)
	nop := func() {}
	const backlog = 1024
	for i := 0; i < backlog; i++ {
		e.Schedule(time.Duration(i)*time.Millisecond, nop)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.After(backlog*time.Millisecond, nop)
		e.Step()
	}
}

// ScheduleCancel is the schedule+cancel churn that Ticker-heavy
// components (monitors, heartbeats, retry timers) generate.
func ScheduleCancel(b *testing.B) {
	e := simnet.NewEngine(2)
	nop := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		doomed := e.After(time.Millisecond, nop)
		e.After(2*time.Millisecond, nop)
		doomed.Cancel()
		e.Step()
	}
}

// Rand is the per-call cost of looking up a labelled RNG stream.
func Rand(b *testing.B) {
	e := simnet.NewEngine(3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = e.Rand("bench/label")
	}
}
