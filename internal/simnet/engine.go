// Package simnet provides a deterministic discrete-event simulation kernel.
//
// Everything in this repository that "runs on a cluster" actually runs on a
// simnet.Engine: node daemons are event handlers scheduled in virtual time,
// so a 20K-node, multi-day simulation executes in seconds of wall-clock time
// and is reproducible bit-for-bit for a given seed.
//
// The kernel is intentionally small: an event heap ordered by (time, seq),
// cancellable events, periodic timers, and labelled deterministic RNG
// streams. It is single-threaded by design; parallelism belongs across
// independent simulations, never inside one.
package simnet

import (
	"container/heap"
	"fmt"
	"hash/fnv"
	"math/rand"
	"time"
)

// Event is a scheduled callback in virtual time. Events are one-shot; use
// Engine.Every for periodic work.
type Event struct {
	at       time.Duration
	seq      uint64
	fn       func()
	index    int // position in heap, -1 once popped or cancelled
	canceled bool
}

// At returns the virtual time the event is scheduled for.
func (e *Event) At() time.Duration { return e.at }

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (e *Event) Cancel() { e.canceled = true }

// Canceled reports whether Cancel was called.
func (e *Event) Canceled() bool { return e.canceled }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Engine is a single-threaded discrete-event simulator.
type Engine struct {
	now       time.Duration
	seq       uint64
	events    eventHeap
	seed      int64
	processed uint64
	stopped   bool
	observer  func(at time.Duration, seq uint64)
}

// NewEngine returns an engine at virtual time zero. The seed roots every RNG
// stream derived via Rand, making whole simulations reproducible.
func NewEngine(seed int64) *Engine {
	return &Engine{seed: seed}
}

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// Processed returns the number of events executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Pending returns the number of events still scheduled (including cancelled
// events not yet drained from the heap).
func (e *Engine) Pending() int { return len(e.events) }

// Schedule runs fn at absolute virtual time t. Scheduling in the past (t <
// Now) panics: it would silently reorder causality.
func (e *Engine) Schedule(t time.Duration, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("simnet: scheduling event at %v before now %v", t, e.now))
	}
	e.seq++
	ev := &Event{at: t, seq: e.seq, fn: fn}
	heap.Push(&e.events, ev)
	return ev
}

// After runs fn d after the current virtual time. Negative d is clamped to
// zero so callers may subtract without guarding.
func (e *Engine) After(d time.Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return e.Schedule(e.now+d, fn)
}

// Ticker is a handle to a periodic task registered with Every.
type Ticker struct {
	stopped bool
	current *Event
}

// Stop halts the periodic task. The in-flight occurrence (if any) is
// cancelled too.
func (t *Ticker) Stop() {
	t.stopped = true
	if t.current != nil {
		t.current.Cancel()
	}
}

// Every runs fn every period, the first invocation after one period. A
// non-positive period panics.
func (e *Engine) Every(period time.Duration, fn func()) *Ticker {
	if period <= 0 {
		panic("simnet: Every requires a positive period")
	}
	t := &Ticker{}
	var tick func()
	tick = func() {
		if t.stopped {
			return
		}
		fn()
		if !t.stopped {
			t.current = e.After(period, tick)
		}
	}
	t.current = e.After(period, tick)
	return t
}

// Step executes the single earliest pending event. It returns false when no
// runnable event remains.
func (e *Engine) Step() bool {
	for len(e.events) > 0 {
		ev := heap.Pop(&e.events).(*Event)
		if ev.canceled {
			continue
		}
		e.now = ev.at
		e.processed++
		if e.observer != nil {
			e.observer(ev.at, ev.seq)
		}
		ev.fn()
		return true
	}
	return false
}

// Run executes events until the heap is empty or Stop is called.
func (e *Engine) Run() {
	e.stopped = false
	for !e.stopped && e.Step() {
	}
}

// RunUntil executes events with time ≤ deadline, then advances the clock to
// the deadline. Events scheduled beyond the deadline remain pending.
func (e *Engine) RunUntil(deadline time.Duration) {
	e.stopped = false
	for !e.stopped {
		if len(e.events) == 0 {
			break
		}
		// Peek: heap root is the earliest event.
		if e.events[0].at > deadline {
			break
		}
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// Stop makes Run/RunUntil return after the current event completes.
func (e *Engine) Stop() { e.stopped = true }

// Observe registers fn to be invoked just before each event executes,
// with the event's virtual time and sequence number. The (at, seq) stream
// is the engine's complete execution trace, so hashing it gives a cheap
// digest for determinism audits: two runs of the same seed must produce
// identical streams. One observer at a time; pass nil to clear.
func (e *Engine) Observe(fn func(at time.Duration, seq uint64)) { e.observer = fn }

// Rand returns a deterministic RNG stream derived from the engine seed and a
// label. Equal (seed, label) pairs always yield identical streams, so adding
// a new consumer with its own label never perturbs existing ones.
func (e *Engine) Rand(label string) *rand.Rand {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d/%s", e.seed, label)
	return rand.New(rand.NewSource(int64(h.Sum64())))
}
