// Package simnet provides a deterministic discrete-event simulation kernel.
//
// Everything in this repository that "runs on a cluster" actually runs on a
// simnet.Engine: node daemons are event handlers scheduled in virtual time,
// so a 20K-node, multi-day simulation executes in seconds of wall-clock time
// and is reproducible bit-for-bit for a given seed.
//
// The kernel is intentionally small: an event heap ordered by (time, seq),
// cancellable events, periodic timers, and labelled deterministic RNG
// streams. It is single-threaded by design; parallelism belongs across
// independent simulations, never inside one (see CountEvents and the
// experiment package's worker pool for the sanctioned cross-simulation
// form).
//
// # Hot-path data structures
//
// The event queue is a hand-rolled 4-ary min-heap over a slice of
// (time, seq, event) entries: comparisons read the ordering key straight
// from the slice (one cache line covers a whole sibling group) and nothing
// passes through an interface, so Push/Pop never box. Fired and cancelled
// events are returned to a free list and reused, so steady-state
// scheduling does not allocate; the Event handles callers hold are
// generation-stamped, so a handle retained past its event's death can
// never cancel or observe the slot's next occupant. When more than half
// the heap is cancelled events awaiting their pop (Ticker-heavy
// workloads), the heap is compacted in place. Neither change is
// observable in the (time, seq) execution order: cancelled events never
// fire and the heap order is a total order, so every heap shape pops the
// same sequence.
package simnet

import (
	"fmt"
	"math/rand"
	"strconv"
	"time"

	"eslurm/internal/obs"
)

// event is the pooled kernel object behind an Event handle. It is reused
// across many scheduled callbacks; gen counts the reuses so stale handles
// can be told apart from live ones.
type event struct {
	at       time.Duration
	seq      uint64
	gen      uint64 // bumped each time the object is taken from the pool
	fn       func()
	e        *Engine
	index    int // position in heap; -1 once popped or collected
	canceled bool
}

// Event is a handle to a scheduled callback in virtual time. Events are
// one-shot; use Engine.Every for periodic work.
//
// Handles are generation-checked values: the kernel pools the underlying
// objects, but a handle retained after its event fired (or was cancelled
// and collected) goes inert rather than aliasing a later event — Cancel
// becomes a no-op and Canceled reports false once the pooled object has
// been reused. Canceled reports true for a cancelled event at least until
// its object is reused for a new one. The zero Event is valid and inert.
type Event struct {
	ev  *event
	gen uint64
	at  time.Duration
}

// At returns the virtual time the event was scheduled for.
func (h Event) At() time.Duration { return h.at }

// Cancel prevents the event from firing. Cancelling an already-fired,
// already-cancelled, or zero handle is a no-op.
func (h Event) Cancel() {
	ev := h.ev
	if ev == nil || ev.gen != h.gen || ev.canceled || ev.index < 0 {
		return
	}
	ev.canceled = true
	eng := ev.e
	eng.canceled++
	// Ticker-heavy workloads cancel far more events than they fire; once
	// the majority of heap slots are dead weight, rebuild without them.
	if eng.canceled*2 > len(eng.events) && len(eng.events) >= compactMin {
		eng.compact()
	}
}

// Canceled reports whether Cancel was called before the event fired. Once
// the pooled object behind a dead handle is reused for a later event,
// Canceled reports false regardless of how the original event ended.
func (h Event) Canceled() bool {
	return h.ev != nil && h.ev.gen == h.gen && h.ev.canceled
}

// heapEntry carries an event's ordering key inline so heap comparisons
// never chase the event pointer.
type heapEntry struct {
	at  time.Duration
	seq uint64
	ev  *event
}

// entryBefore reports whether entry a orders before entry b under the
// (time, seq) total order. It is the heap's single ordering predicate;
// the compiler inlines it into the sift loops.
func entryBefore(a, b *heapEntry) bool {
	return a.at < b.at || (a.at == b.at && a.seq < b.seq)
}

// compactMin is the heap size below which compaction is not worth it: the
// regular pop-and-skip path reclaims small heaps quickly enough.
const compactMin = 64

// eventBlock is how many pooled events are allocated at once when the
// free list runs dry; block allocation amortizes steady-state scheduling
// to zero allocations per event.
const eventBlock = 64

// Engine is a single-threaded discrete-event simulator.
type Engine struct {
	now       time.Duration
	seq       uint64
	events    []heapEntry // 4-ary min-heap ordered by (at, seq)
	canceled  int         // cancelled events still occupying heap slots
	free      []*event    // pool of dead events awaiting reuse
	seed      int64
	rands     map[string]*rand.Rand
	processed uint64
	stopped   bool
	observer  func(at time.Duration, seq uint64)
	tracer    *obs.Tracer   // nil unless EnableTracing was called
	metrics   *obs.Registry // lazily built by Metrics
}

// NewEngine returns an engine at virtual time zero. The seed roots every RNG
// stream derived via Rand, making whole simulations reproducible.
func NewEngine(seed int64) *Engine {
	e := &Engine{seed: seed}
	recordEngine(e)
	return e
}

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// Processed returns the number of events executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Pending returns the number of live events still scheduled. Cancelled
// events awaiting collection are not counted.
func (e *Engine) Pending() int { return len(e.events) - e.canceled }

// siftUp restores the heap property from slot i toward the root.
func (e *Engine) siftUp(i int) {
	h := e.events
	ent := h[i]
	for i > 0 {
		p := (i - 1) / 4
		if entryBefore(&h[p], &ent) {
			break
		}
		h[i] = h[p]
		h[i].ev.index = i
		i = p
	}
	h[i] = ent
	ent.ev.index = i
}

// siftDown restores the heap property from slot i toward the leaves.
func (e *Engine) siftDown(i int) {
	h := e.events
	n := len(h)
	ent := h[i]
	for {
		c := 4*i + 1
		if c >= n {
			break
		}
		m := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if entryBefore(&h[j], &h[m]) {
				m = j
			}
		}
		if entryBefore(&ent, &h[m]) {
			break
		}
		h[i] = h[m]
		h[i].ev.index = i
		i = m
	}
	h[i] = ent
	ent.ev.index = i
}

// popMin removes and returns the heap's earliest event.
func (e *Engine) popMin() *event {
	ev := e.events[0].ev
	n := len(e.events) - 1
	e.events[0] = e.events[n]
	e.events[n] = heapEntry{}
	e.events = e.events[:n]
	if n > 0 {
		e.siftDown(0)
	}
	ev.index = -1
	return ev
}

// compact rebuilds the heap without its cancelled entries, returning the
// dead events to the pool. Invisible to execution order: the surviving
// entries pop in the same (time, seq) sequence from any valid heap shape.
func (e *Engine) compact() {
	live := e.events[:0]
	for _, ent := range e.events {
		if ent.ev.canceled {
			e.recycle(ent.ev)
			continue
		}
		live = append(live, ent)
	}
	for i := len(live); i < len(e.events); i++ {
		e.events[i] = heapEntry{}
	}
	e.events = live
	e.canceled = 0
	for i := range e.events {
		e.events[i].ev.index = i
	}
	// Heapify only when two or more entries survive: (n-2)/4 truncates to
	// zero for n of 0 or 1, and siftDown(0) on an empty heap would read
	// past the slice (a single survivor is trivially a heap).
	if n := len(e.events); n > 1 {
		for i := (n - 2) / 4; i >= 0; i-- {
			e.siftDown(i)
		}
	}
}

// recycle returns a dead event to the pool. The canceled flag is left as
// is so dead handles keep answering Canceled truthfully until the object
// is reused (newEvent resets it).
func (e *Engine) recycle(ev *event) {
	ev.fn = nil
	ev.index = -1
	e.free = append(e.free, ev)
}

// newEvent takes an event from the pool, refilling it a block at a time.
// Bumping gen here is what retires every handle to the object's previous
// life.
func (e *Engine) newEvent() *event {
	if len(e.free) == 0 {
		block := make([]event, eventBlock)
		for i := range block {
			block[i].e = e
			block[i].index = -1
			e.free = append(e.free, &block[i])
		}
	}
	n := len(e.free) - 1
	ev := e.free[n]
	e.free[n] = nil
	e.free = e.free[:n]
	ev.gen++
	ev.canceled = false
	return ev
}

// Schedule runs fn at absolute virtual time t. Scheduling in the past (t <
// Now) panics: it would silently reorder causality.
func (e *Engine) Schedule(t time.Duration, fn func()) Event {
	if t < e.now {
		panic(fmt.Sprintf("simnet: scheduling event at %v before now %v", t, e.now))
	}
	e.seq++
	ev := e.newEvent()
	ev.at, ev.seq, ev.fn = t, e.seq, fn
	e.events = append(e.events, heapEntry{t, e.seq, ev})
	e.siftUp(len(e.events) - 1)
	return Event{ev: ev, gen: ev.gen, at: t}
}

// After runs fn d after the current virtual time. Negative d is clamped to
// zero so callers may subtract without guarding.
func (e *Engine) After(d time.Duration, fn func()) Event {
	if d < 0 {
		d = 0
	}
	return e.Schedule(e.now+d, fn)
}

// Ticker is a handle to a periodic task registered with Every.
type Ticker struct {
	stopped bool
	current Event
}

// Stop halts the periodic task. The in-flight occurrence (if any) is
// cancelled too; generation checking makes the cancel inert when the
// occurrence has already fired, so stopping twice is safe.
func (t *Ticker) Stop() {
	t.stopped = true
	t.current.Cancel()
}

// Every runs fn every period, the first invocation after one period. A
// non-positive period panics.
func (e *Engine) Every(period time.Duration, fn func()) *Ticker {
	if period <= 0 {
		panic("simnet: Every requires a positive period")
	}
	t := &Ticker{}
	var tick func()
	tick = func() {
		if t.stopped {
			return
		}
		fn()
		if !t.stopped {
			t.current = e.After(period, tick)
		}
	}
	t.current = e.After(period, tick)
	return t
}

// Step executes the single earliest pending event. It returns false when no
// runnable event remains.
func (e *Engine) Step() bool {
	for len(e.events) > 0 {
		ev := e.popMin()
		if ev.canceled {
			e.canceled--
			e.recycle(ev)
			continue
		}
		e.now = ev.at
		e.processed++
		if e.observer != nil {
			e.observer(ev.at, ev.seq)
		}
		fn := ev.fn
		ev.fn = nil
		fn()
		// Recycle only after fn returns: user code may run inside fn while
		// the handle is still the live in-flight event.
		e.recycle(ev)
		return true
	}
	return false
}

// Run executes events until the heap is empty or Stop is called.
func (e *Engine) Run() {
	e.stopped = false
	for !e.stopped && e.Step() {
	}
}

// RunUntil executes events with time ≤ deadline, then advances the clock to
// the deadline. Events scheduled beyond the deadline remain pending.
func (e *Engine) RunUntil(deadline time.Duration) {
	e.stopped = false
	for !e.stopped {
		// Collect cancelled events at the root so the deadline peek sees
		// the next event that will actually fire.
		for len(e.events) > 0 && e.events[0].ev.canceled {
			e.canceled--
			e.recycle(e.popMin())
		}
		if len(e.events) == 0 {
			break
		}
		if e.events[0].at > deadline {
			break
		}
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// Stop makes Run/RunUntil return after the current event completes.
func (e *Engine) Stop() { e.stopped = true }

// Observe registers fn to be invoked just before each event executes,
// with the event's virtual time and sequence number. The (at, seq) stream
// is the engine's complete execution trace, so hashing it gives a cheap
// digest for determinism audits: two runs of the same seed must produce
// identical streams. One observer at a time; pass nil to clear.
func (e *Engine) Observe(fn func(at time.Duration, seq uint64)) { e.observer = fn }

// Rand returns a deterministic RNG stream derived from the engine seed and a
// label. Equal (seed, label) pairs always yield identically-seeded streams,
// so adding a new consumer with its own label never perturbs existing ones.
//
// Streams are memoized per label: repeated calls with the same label on the
// same engine return the same stream object (continuing where it left off)
// rather than re-deriving a fresh one, so a label names one logical stream
// per engine and repeat lookups cost a map hit instead of a 5KB re-seed.
// Callers that need a restarted stream must use a distinct label.
func (e *Engine) Rand(label string) *rand.Rand {
	if r, ok := e.rands[label]; ok {
		return r
	}
	r := rand.New(rand.NewSource(deriveSeed(e.seed, label)))
	if e.rands == nil {
		e.rands = make(map[string]*rand.Rand)
	}
	e.rands[label] = r
	return r
}

// deriveSeed hashes (seed, label) into a stream seed: FNV-1a over the
// decimal seed, a '/', and the label — bit-compatible with the original
// fmt.Fprintf(fnv.New64a(), "%d/%s", seed, label) derivation, without the
// hasher and boxing allocations.
func deriveSeed(seed int64, label string) int64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	var buf [20]byte
	for _, b := range strconv.AppendInt(buf[:0], seed, 10) {
		h ^= uint64(b)
		h *= prime64
	}
	h ^= '/'
	h *= prime64
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= prime64
	}
	return int64(h)
}
