package simnet

import (
	"testing"
	"time"
)

func TestEngineTracerRecordsVirtualTime(t *testing.T) {
	e := NewEngine(1)
	if e.Tracer() != nil {
		t.Fatal("tracer non-nil before EnableTracing")
	}
	tr := e.EnableTracing()
	if tr == nil || e.Tracer() != tr || e.EnableTracing() != tr {
		t.Fatal("EnableTracing not idempotent")
	}
	var id = tr.Start("tick", 0)
	e.After(5*time.Millisecond, func() { tr.End(id) })
	e.Run()
	sp := tr.Spans()[0]
	if sp.Start != 0 || !sp.Ended || sp.End != 5*time.Millisecond {
		t.Fatalf("span not stamped with virtual time: %+v", sp)
	}
}

func TestEngineMetricsLazyAndStable(t *testing.T) {
	e := NewEngine(1)
	if e.metrics != nil {
		t.Fatal("registry built before first Metrics call")
	}
	r := e.Metrics()
	if r == nil || e.Metrics() != r {
		t.Fatal("Metrics not a stable singleton")
	}
	r.Counter("x").Inc()
	if r.Counter("x").Value() != 1 {
		t.Fatal("counter lost")
	}
}

func TestTracingDoesNotPerturbEventTrace(t *testing.T) {
	run := func(enable bool) string {
		e := NewEngine(99)
		if enable {
			e.EnableTracing()
		}
		var dig string
		e.Observe(func(at time.Duration, seq uint64) {
			dig += time.Duration(at).String() + ":" + string(rune('0'+seq%10))
		})
		tr := e.Tracer()
		for i := 0; i < 5; i++ {
			i := i
			e.After(time.Duration(i+1)*time.Millisecond, func() {
				id := tr.Start("work", 0)
				e.Rand("trace-check").Int63()
				tr.End(id)
			})
		}
		e.Run()
		return dig
	}
	if run(false) != run(true) {
		t.Fatal("enabling tracing changed the event trace")
	}
}

func TestCollectEnginesOnCreate(t *testing.T) {
	var seen []int64
	engines := CollectEngines(func(e *Engine) {
		seen = append(seen, e.Seed())
		e.EnableTracing()
	}, func() {
		NewEngine(7).Run()
		NewEngine(8).Run()
	})
	if len(engines) != 2 || engines[0].Seed() != 7 || engines[1].Seed() != 8 {
		t.Fatalf("collected %d engines", len(engines))
	}
	if len(seen) != 2 {
		t.Fatalf("onCreate fired %d times", len(seen))
	}
	for _, e := range engines {
		if e.Tracer() == nil {
			t.Fatal("onCreate could not enable tracing")
		}
	}
}
