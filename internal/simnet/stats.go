package simnet

// Goroutine-scoped engine accounting for the benchmark harness.
//
// Experiment drivers construct their engines internally, so a runner that
// wants events-executed totals per experiment has no handle to sum
// Engine.Processed over. CountEvents closes that gap without threading a
// sink through every driver signature: it tags the calling goroutine,
// records every Engine that goroutine creates while fn runs, and sums
// their processed counts when fn returns. The kernel is single-threaded
// by design, so "engines created by this goroutine" is exactly "engines
// this experiment ran" — engines created on goroutines fn spawns are not
// attributed (and spawning goroutines inside a simulation is against the
// determinism contract anyway).

import (
	"runtime"
	"sync"
	"sync/atomic"
)

var (
	// collectorCount gates the NewEngine hook: when zero (the common
	// case — no CountEvents in flight anywhere), engine construction
	// pays one atomic load and nothing else.
	//
	//eslurmlint:ignore globalmut atomic gate for the goroutine-scoped registry below; harness accounting, not simulation state, and already safe under concurrent shards
	collectorCount atomic.Int32
	// The registry itself is keyed by goroutine id, so each entry is only
	// ever read or replaced by the goroutine that owns it; sync.Map makes
	// the cross-goroutine key insertions safe. This stays correct under a
	// sharded kernel because attribution is per-goroutine by construction.
	//eslurmlint:ignore globalmut goroutine-id-keyed registry; entries are only touched by their owning goroutine and the map itself is concurrency-safe
	collectors sync.Map // goroutine id -> *collector
)

type collector struct {
	parent  *collector
	engines []*Engine
	// onCreate, when set, observes each engine synchronously at
	// construction — before any event runs — so callers can arm
	// observability (EnableTracing) from virtual time zero.
	onCreate func(*Engine)
}

// CountEvents runs fn and returns the total number of events executed by
// every Engine created by fn on the calling goroutine. Nested calls are
// allowed; an inner call's engines count toward the outer call too.
func CountEvents(fn func()) uint64 {
	engines := collect(nil, fn)
	var total uint64
	for _, e := range engines {
		total += e.Processed()
	}
	return total
}

// CollectEngines runs fn and returns every Engine it created on the
// calling goroutine, in creation order. onCreate (may be nil) fires
// synchronously as each engine is constructed, which is the hook the
// trace-capturing CLIs use to enable tracing on engines that experiment
// drivers build internally.
func CollectEngines(onCreate func(*Engine), fn func()) []*Engine {
	return collect(onCreate, fn)
}

// collect implements the goroutine-scoped engine accounting shared by
// CountEvents and CollectEngines.
func collect(onCreate func(*Engine), fn func()) []*Engine {
	id := goid()
	var parent *collector
	if v, ok := collectors.Load(id); ok {
		parent = v.(*collector)
	}
	c := &collector{parent: parent, onCreate: onCreate}
	//eslurmlint:ignore engineown entry is keyed by this goroutine's id and only this goroutine reads or replaces it; the engines it records stay owned by this goroutine
	collectors.Store(id, c)
	collectorCount.Add(1)
	defer func() {
		if parent != nil {
			//eslurmlint:ignore engineown restores this goroutine's own registry entry; same single-goroutine ownership as the Store above
			collectors.Store(id, parent)
		} else {
			collectors.Delete(id)
		}
		collectorCount.Add(-1)
	}()
	fn()
	return c.engines
}

// recordEngine attributes a freshly built engine to the calling
// goroutine's collector chain, if any.
func recordEngine(e *Engine) {
	if collectorCount.Load() == 0 {
		return
	}
	v, ok := collectors.Load(goid())
	if !ok {
		return
	}
	for c := v.(*collector); c != nil; c = c.parent {
		c.engines = append(c.engines, e)
		if c.onCreate != nil {
			c.onCreate(e)
		}
	}
}

// goid returns the runtime's id for the calling goroutine, parsed from
// the "goroutine N [...]" header of a one-frame stack dump. The dump is
// only taken while a CountEvents call is in flight, and engine
// construction is far off any hot path.
func goid() uint64 {
	var buf [32]byte
	n := runtime.Stack(buf[:], false)
	const prefix = len("goroutine ")
	var id uint64
	for _, b := range buf[prefix:n] {
		if b < '0' || b > '9' {
			break
		}
		id = id*10 + uint64(b-'0')
	}
	return id
}
