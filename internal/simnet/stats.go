package simnet

// Goroutine-scoped engine accounting for the benchmark harness.
//
// Experiment drivers construct their engines internally, so a runner that
// wants events-executed totals per experiment has no handle to sum
// Engine.Processed over. CountEvents closes that gap without threading a
// sink through every driver signature: it tags the calling goroutine,
// records every Engine that goroutine creates while fn runs, and sums
// their processed counts when fn returns. The kernel is single-threaded
// by design, so "engines created by this goroutine" is exactly "engines
// this experiment ran" — engines created on goroutines fn spawns are not
// attributed (and spawning goroutines inside a simulation is against the
// determinism contract anyway).

import (
	"runtime"
	"sync"
	"sync/atomic"
)

var (
	// collectorCount gates the NewEngine hook: when zero (the common
	// case — no CountEvents in flight anywhere), engine construction
	// pays one atomic load and nothing else.
	collectorCount atomic.Int32
	collectors     sync.Map // goroutine id -> *collector
)

type collector struct {
	parent  *collector
	engines []*Engine
}

// CountEvents runs fn and returns the total number of events executed by
// every Engine created by fn on the calling goroutine. Nested calls are
// allowed; an inner call's engines count toward the outer call too.
func CountEvents(fn func()) uint64 {
	id := goid()
	var parent *collector
	if v, ok := collectors.Load(id); ok {
		parent = v.(*collector)
	}
	c := &collector{parent: parent}
	collectors.Store(id, c)
	collectorCount.Add(1)
	defer func() {
		if parent != nil {
			collectors.Store(id, parent)
		} else {
			collectors.Delete(id)
		}
		collectorCount.Add(-1)
	}()
	fn()
	var total uint64
	for _, e := range c.engines {
		total += e.Processed()
	}
	return total
}

// recordEngine attributes a freshly built engine to the calling
// goroutine's collector chain, if any.
func recordEngine(e *Engine) {
	if collectorCount.Load() == 0 {
		return
	}
	v, ok := collectors.Load(goid())
	if !ok {
		return
	}
	for c := v.(*collector); c != nil; c = c.parent {
		c.engines = append(c.engines, e)
	}
}

// goid returns the runtime's id for the calling goroutine, parsed from
// the "goroutine N [...]" header of a one-frame stack dump. The dump is
// only taken while a CountEvents call is in flight, and engine
// construction is far off any hot path.
func goid() uint64 {
	var buf [32]byte
	n := runtime.Stack(buf[:], false)
	const prefix = len("goroutine ")
	var id uint64
	for _, b := range buf[prefix:n] {
		if b < '0' || b > '9' {
			break
		}
		id = id*10 + uint64(b-'0')
	}
	return id
}
