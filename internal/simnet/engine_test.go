package simnet

import (
	"testing"
	"testing/quick"
	"time"
)

func TestScheduleOrdering(t *testing.T) {
	e := NewEngine(1)
	var order []int
	e.Schedule(3*time.Second, func() { order = append(order, 3) })
	e.Schedule(1*time.Second, func() { order = append(order, 1) })
	e.Schedule(2*time.Second, func() { order = append(order, 2) })
	e.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if e.Now() != 3*time.Second {
		t.Errorf("Now = %v, want 3s", e.Now())
	}
}

func TestTieBreakBySeq(t *testing.T) {
	e := NewEngine(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(time.Second, func() { order = append(order, i) })
	}
	e.Run()
	for i := range order {
		if order[i] != i {
			t.Fatalf("same-time events reordered: %v", order)
		}
	}
}

func TestAfterClampsNegative(t *testing.T) {
	e := NewEngine(1)
	e.Schedule(5*time.Second, func() {
		fired := false
		e.After(-time.Second, func() { fired = true })
		e.Step()
		if !fired {
			t.Error("negative After never fired")
		}
		if e.Now() != 5*time.Second {
			t.Errorf("negative After moved time to %v", e.Now())
		}
	})
	e.Run()
}

func TestSchedulePastPanics(t *testing.T) {
	e := NewEngine(1)
	e.Schedule(5*time.Second, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.Schedule(time.Second, func() {})
	})
	e.Run()
}

func TestCancel(t *testing.T) {
	e := NewEngine(1)
	fired := false
	ev := e.Schedule(time.Second, func() { fired = true })
	ev.Cancel()
	e.Run()
	if fired {
		t.Error("cancelled event fired")
	}
	if !ev.Canceled() {
		t.Error("Canceled() = false after Cancel")
	}
}

func TestCancelFromEarlierEvent(t *testing.T) {
	e := NewEngine(1)
	fired := false
	ev := e.Schedule(2*time.Second, func() { fired = true })
	e.Schedule(time.Second, func() { ev.Cancel() })
	e.Run()
	if fired {
		t.Error("event cancelled mid-run still fired")
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine(1)
	var fired []int
	e.Schedule(1*time.Second, func() { fired = append(fired, 1) })
	e.Schedule(5*time.Second, func() { fired = append(fired, 5) })
	e.RunUntil(3 * time.Second)
	if len(fired) != 1 || fired[0] != 1 {
		t.Fatalf("fired = %v, want [1]", fired)
	}
	if e.Now() != 3*time.Second {
		t.Errorf("Now = %v, want 3s", e.Now())
	}
	e.RunUntil(10 * time.Second)
	if len(fired) != 2 {
		t.Fatalf("second RunUntil did not fire pending event: %v", fired)
	}
}

func TestRunUntilBoundaryInclusive(t *testing.T) {
	e := NewEngine(1)
	fired := false
	e.Schedule(3*time.Second, func() { fired = true })
	e.RunUntil(3 * time.Second)
	if !fired {
		t.Error("event exactly at deadline did not fire")
	}
}

func TestEvery(t *testing.T) {
	e := NewEngine(1)
	count := 0
	tk := e.Every(time.Second, func() {
		count++
		if count == 5 {
			// Stop from within the callback.
		}
	})
	e.RunUntil(4500 * time.Millisecond)
	if count != 4 {
		t.Fatalf("ticks = %d, want 4", count)
	}
	tk.Stop()
	e.RunUntil(10 * time.Second)
	if count != 4 {
		t.Fatalf("ticker fired after Stop: %d", count)
	}
}

func TestEveryStopInsideCallback(t *testing.T) {
	e := NewEngine(1)
	count := 0
	var tk *Ticker
	tk = e.Every(time.Second, func() {
		count++
		if count == 3 {
			tk.Stop()
		}
	})
	e.Run()
	if count != 3 {
		t.Fatalf("ticks = %d, want 3", count)
	}
}

func TestEveryNonPositivePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Every(0) did not panic")
		}
	}()
	NewEngine(1).Every(0, func() {})
}

func TestStopHaltsRun(t *testing.T) {
	e := NewEngine(1)
	n := 0
	for i := 1; i <= 10; i++ {
		e.Schedule(time.Duration(i)*time.Second, func() {
			n++
			if n == 3 {
				e.Stop()
			}
		})
	}
	e.Run()
	if n != 3 {
		t.Fatalf("events after Stop: n = %d", n)
	}
	if e.Pending() == 0 {
		t.Error("Stop drained the heap")
	}
}

func TestRandDeterministic(t *testing.T) {
	a := NewEngine(42).Rand("net")
	b := NewEngine(42).Rand("net")
	for i := 0; i < 100; i++ {
		if a.Int63() != b.Int63() {
			t.Fatal("same (seed,label) streams diverged")
		}
	}
	c := NewEngine(42).Rand("other")
	d := NewEngine(43).Rand("net")
	if c.Int63() == a.Int63() && d.Int63() == b.Int63() {
		t.Error("distinct labels/seeds produced identical streams")
	}
}

func TestProcessedCount(t *testing.T) {
	e := NewEngine(1)
	for i := 0; i < 7; i++ {
		e.Schedule(time.Duration(i)*time.Millisecond, func() {})
	}
	e.Run()
	if e.Processed() != 7 {
		t.Fatalf("Processed = %d, want 7", e.Processed())
	}
}

// Property: running any batch of events executes them in nondecreasing time
// order regardless of insertion order.
func TestPropertyTimeOrdered(t *testing.T) {
	f := func(delays []uint16) bool {
		e := NewEngine(7)
		var seen []time.Duration
		for _, d := range delays {
			at := time.Duration(d) * time.Millisecond
			e.Schedule(at, func() { seen = append(seen, e.Now()) })
		}
		e.Run()
		for i := 1; i < len(seen); i++ {
			if seen[i] < seen[i-1] {
				return false
			}
		}
		return len(seen) == len(delays)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: RunUntil never advances past the deadline while events fire, and
// Now() equals the deadline afterwards.
func TestPropertyRunUntilDeadline(t *testing.T) {
	f := func(delays []uint16, deadlineMS uint16) bool {
		e := NewEngine(3)
		deadline := time.Duration(deadlineMS) * time.Millisecond
		ok := true
		for _, d := range delays {
			e.Schedule(time.Duration(d)*time.Millisecond, func() {
				if e.Now() > deadline {
					ok = false
				}
			})
		}
		e.RunUntil(deadline)
		return ok && e.Now() == deadline
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkEngineThroughput(b *testing.B) {
	e := NewEngine(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.After(time.Microsecond, func() {})
		e.Step()
	}
}

// Observe must see every executed event, in execution order, with
// nondecreasing times — and never see cancelled events.
func TestObserve(t *testing.T) {
	e := NewEngine(7)
	var seen []uint64
	var last time.Duration
	e.Observe(func(at time.Duration, seq uint64) {
		if at < last {
			t.Errorf("observer saw time go backwards: %v after %v", at, last)
		}
		last = at
		seen = append(seen, seq)
	})
	e.After(2*time.Millisecond, func() {})
	cancelled := e.After(time.Millisecond, func() {})
	cancelled.Cancel()
	e.After(3*time.Millisecond, func() {})
	e.Run()
	if len(seen) != 2 {
		t.Fatalf("observer saw %d events, want 2 (cancelled event must be invisible)", len(seen))
	}
	if uint64(len(seen)) != e.Processed() {
		t.Errorf("observer count %d != Processed %d", len(seen), e.Processed())
	}
	e.Observe(nil) // clearing must not panic on the next event
	e.After(time.Millisecond, func() {})
	e.Run()
}
