package simnet_test

// The kernel microbenchmark bodies live in benchkit so benchrunner's
// -json mode can run the very same code; see that package for what each
// one measures. CI smoke-runs these (`-bench=BenchmarkEngine
// -benchtime=1x`) so they cannot bit-rot.

import (
	"testing"

	"eslurm/internal/simnet/benchkit"
)

func BenchmarkEngineStep(b *testing.B)           { benchkit.Step(b) }
func BenchmarkEngineScheduleCancel(b *testing.B) { benchkit.ScheduleCancel(b) }
func BenchmarkEngineRand(b *testing.B)           { benchkit.Rand(b) }
