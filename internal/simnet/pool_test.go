package simnet

// Regression tests for the pooled-event kernel: heap compaction, live
// Pending accounting, event reuse, and the memoized RNG streams. The
// bit-for-bit ordering contract itself is guarded by the root package's
// TestFullStackDeterminism digest.

import (
	"fmt"
	"hash/fnv"
	"testing"
	"testing/quick"
	"time"
)

// TestPendingCountsLiveOnly pins the post-compaction Pending contract:
// cancelled events awaiting collection are invisible.
func TestPendingCountsLiveOnly(t *testing.T) {
	e := NewEngine(1)
	var evs []Event
	for i := 0; i < 10; i++ {
		evs = append(evs, e.Schedule(time.Duration(i+1)*time.Second, func() {}))
	}
	if e.Pending() != 10 {
		t.Fatalf("Pending = %d, want 10", e.Pending())
	}
	for _, ev := range evs[:4] {
		ev.Cancel()
	}
	if e.Pending() != 6 {
		t.Fatalf("Pending after 4 cancels = %d, want 6", e.Pending())
	}
	evs[0].Cancel() // double cancel must not double count
	if e.Pending() != 6 {
		t.Fatalf("Pending after double cancel = %d, want 6", e.Pending())
	}
	e.Run()
	if e.Pending() != 0 {
		t.Fatalf("Pending after drain = %d, want 0", e.Pending())
	}
	if e.Processed() != 6 {
		t.Fatalf("Processed = %d, want 6", e.Processed())
	}
}

// TestCompaction drives the heap into the majority-cancelled regime and
// checks that compaction reclaims slots without perturbing what fires.
func TestCompaction(t *testing.T) {
	e := NewEngine(2)
	const n = 4 * compactMin
	var evs []Event
	for i := 0; i < n; i++ {
		i := i
		evs = append(evs, e.Schedule(time.Duration(i+1)*time.Millisecond, func() { _ = i }))
	}
	// Cancel every event but the last two; compaction must trigger on the
	// way (cancelled fraction crosses 1/2) and shrink the heap.
	for _, ev := range evs[:n-2] {
		ev.Cancel()
	}
	if len(e.events) >= n/2 {
		t.Fatalf("heap not compacted: %d slots for 2 live events", len(e.events))
	}
	if e.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2", e.Pending())
	}
	var fired []time.Duration
	e.Observe(func(at time.Duration, seq uint64) { fired = append(fired, at) })
	e.Run()
	want := []time.Duration{time.Duration(n-1) * time.Millisecond, time.Duration(n) * time.Millisecond}
	if len(fired) != 2 || fired[0] != want[0] || fired[1] != want[1] {
		t.Fatalf("fired %v, want %v", fired, want)
	}
}

// TestCompactionPreservesOrder compares a cancel-heavy run against the
// same schedule with the doomed events never inserted: the survivors must
// fire in an identical order either way.
func TestCompactionPreservesOrder(t *testing.T) {
	f := func(delays []uint16, cancelMask []bool) bool {
		run := func(withDoomed bool) string {
			e := NewEngine(9)
			h := fnv.New64a()
			e.Observe(func(at time.Duration, seq uint64) { fmt.Fprintf(h, "%d;", int64(at)) })
			var doomed []Event
			for i, d := range delays {
				at := time.Duration(d) * time.Millisecond
				cancel := i < len(cancelMask) && cancelMask[i]
				if cancel && !withDoomed {
					// Keep seq numbering aligned with the other run's
					// survivors irrelevant: digest uses times only.
					continue
				}
				ev := e.Schedule(at, func() {})
				if cancel {
					doomed = append(doomed, ev)
				}
			}
			for _, ev := range doomed {
				ev.Cancel()
			}
			e.Run()
			return fmt.Sprintf("%x", h.Sum64())
		}
		return run(true) == run(false)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestCompactAllCancelled drives compaction into the zero-survivor case:
// 63 cancels stay below compactMin, and cancelling a 64th event tips
// canceled*2 > len with no live entries left. The heapify loop must not
// touch the now-empty slice, and the engine must keep working after.
func TestCompactAllCancelled(t *testing.T) {
	e := NewEngine(11)
	var evs []Event
	for i := 0; i < compactMin-1; i++ {
		evs = append(evs, e.Schedule(time.Duration(i+1)*time.Second, func() {}))
	}
	for _, ev := range evs {
		ev.Cancel()
	}
	e.Schedule(time.Duration(compactMin)*time.Second, func() {}).Cancel()
	if len(e.events) != 0 {
		t.Fatalf("heap holds %d entries after compacting an all-cancelled heap, want 0", len(e.events))
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending = %d, want 0", e.Pending())
	}
	fired := false
	e.Schedule(time.Minute, func() { fired = true })
	e.Run()
	if !fired {
		t.Error("engine unusable after empty-heap compaction")
	}
}

// TestStaleHandleIsInert pins the generation contract: once an event has
// fired and its pooled object is reused, the old handle's Cancel must not
// touch the new event and Canceled must not report its state.
func TestStaleHandleIsInert(t *testing.T) {
	e := NewEngine(12)
	a := e.After(time.Second, func() {})
	e.Run()
	fired := false
	b := e.After(time.Second, func() { fired = true })
	if b.ev != a.ev {
		t.Fatal("test setup: pool did not hand the fired event's object to the next Schedule")
	}
	a.Cancel() // stale: a's event already fired and was recycled
	if a.Canceled() {
		t.Error("stale handle reports the reused event's state")
	}
	e.Run()
	if !fired {
		t.Error("stale Cancel cancelled an unrelated reused event")
	}
}

// TestCanceledSurvivesCollection: a cancelled event keeps reporting
// Canceled()==true after the heap collects its object into the pool, and
// stops (reports false) only once the object is reused for a new event.
func TestCanceledSurvivesCollection(t *testing.T) {
	e := NewEngine(13)
	ev := e.Schedule(time.Second, func() {})
	ev.Cancel()
	e.Run() // pops and collects the cancelled event into the pool
	if !ev.Canceled() {
		t.Error("Canceled lost the cancellation when the object was collected")
	}
	reused := e.After(time.Second, func() {})
	if reused.ev != ev.ev {
		t.Fatal("test setup: pool did not hand the cancelled event's object to the next Schedule")
	}
	if ev.Canceled() {
		t.Error("Canceled reports the state of an unrelated reused event")
	}
}

// TestEventReuse checks the free list actually recycles: a long-running
// schedule-fire chain must not grow the pool beyond one block.
func TestEventReuse(t *testing.T) {
	e := NewEngine(3)
	n := 0
	var loop func()
	loop = func() {
		n++
		if n < 10*eventBlock {
			e.After(time.Millisecond, loop)
		}
	}
	e.After(time.Millisecond, loop)
	e.Run()
	if n != 10*eventBlock {
		t.Fatalf("chain ran %d times, want %d", n, 10*eventBlock)
	}
	if got := len(e.free); got > eventBlock {
		t.Errorf("free list grew to %d events; reuse is broken", got)
	}
}

// TestTickerStopTwice pins the pooled-kernel hazard that motivated
// generation-checked handles: stopping a ticker twice (or stopping it
// after its event fired and the slot was reused) must never cancel an
// innocent event.
func TestTickerStopTwice(t *testing.T) {
	e := NewEngine(4)
	ticks := 0
	tk := e.Every(time.Second, func() { ticks++ })
	e.RunUntil(2500 * time.Millisecond)
	tk.Stop()
	// Schedule an unrelated event that will reuse the pooled slot, then
	// stop again: the second Stop must be inert.
	fired := false
	e.After(time.Second, func() { fired = true })
	tk.Stop()
	e.Run()
	if ticks != 2 {
		t.Fatalf("ticks = %d, want 2", ticks)
	}
	if !fired {
		t.Error("second Ticker.Stop cancelled an unrelated pooled event")
	}
}

// TestCancelInFlightIsNoop: cancelling the event currently executing must
// not corrupt the live-event accounting.
func TestCancelInFlightIsNoop(t *testing.T) {
	e := NewEngine(5)
	var self Event
	self = e.Schedule(time.Second, func() {
		self.Cancel() // already popped; must be a no-op
	})
	e.Schedule(2*time.Second, func() {})
	e.Run()
	if e.Pending() != 0 {
		t.Fatalf("Pending = %d after drain, want 0", e.Pending())
	}
	if e.Processed() != 2 {
		t.Fatalf("Processed = %d, want 2", e.Processed())
	}
}

// TestRunUntilSkipsCancelledRoot: a cancelled event at the heap root must
// not stall RunUntil's deadline peek, and a live event beyond the
// deadline must not fire just because a cancelled earlier one was popped.
func TestRunUntilSkipsCancelledRoot(t *testing.T) {
	e := NewEngine(6)
	doomed := e.Schedule(1*time.Second, func() {})
	fired := false
	e.Schedule(20*time.Second, func() { fired = true })
	doomed.Cancel()
	e.RunUntil(10 * time.Second)
	if fired {
		t.Error("RunUntil fired an event beyond the deadline after skipping a cancelled root")
	}
	if e.Now() != 10*time.Second {
		t.Errorf("Now = %v, want 10s", e.Now())
	}
	e.RunUntil(30 * time.Second)
	if !fired {
		t.Error("live event never fired")
	}
}

// TestDeriveSeedMatchesFNV pins the label-hash derivation to the exact
// bytes the original fmt.Fprintf-over-fnv implementation hashed, so the
// memoized fast path can never silently re-seed every stream in the repo.
func TestDeriveSeedMatchesFNV(t *testing.T) {
	cases := []struct {
		seed  int64
		label string
	}{
		{0, ""}, {42, "net"}, {-7, "faults/silent"}, {1 << 62, "x/y/z"},
		{-1 << 62, "experiment/jobs"}, {9223372036854775807, "a"},
	}
	for _, c := range cases {
		h := fnv.New64a()
		fmt.Fprintf(h, "%d/%s", c.seed, c.label)
		want := int64(h.Sum64())
		if got := deriveSeed(c.seed, c.label); got != want {
			t.Errorf("deriveSeed(%d, %q) = %d, want %d", c.seed, c.label, got, want)
		}
	}
}

// TestRandMemoized pins the stream-per-label contract: same label, same
// engine ⇒ same stream object continuing where it left off.
func TestRandMemoized(t *testing.T) {
	e := NewEngine(42)
	a := e.Rand("net")
	b := e.Rand("net")
	if a != b {
		t.Fatal("Rand did not memoize the stream for a repeated label")
	}
	fresh := NewEngine(42).Rand("net")
	x := fresh.Int63()
	if got := a.Int63(); got != x {
		t.Fatalf("first draw differs from an identically-derived stream: %d vs %d", got, x)
	}
	if e.Rand("net").Int63() == x {
		t.Error("repeated label restarted the stream instead of continuing it")
	}
}

// TestCountEvents checks goroutine-scoped engine accounting, including
// nesting and non-attribution of other goroutines' engines.
func TestCountEvents(t *testing.T) {
	run := func(n int) {
		e := NewEngine(7)
		for i := 0; i < n; i++ {
			e.Schedule(time.Duration(i)*time.Millisecond, func() {})
		}
		e.Run()
	}
	var inner uint64
	outer := CountEvents(func() {
		run(5)
		inner = CountEvents(func() { run(3) })
	})
	if inner != 3 {
		t.Errorf("inner CountEvents = %d, want 3", inner)
	}
	if outer != 8 {
		t.Errorf("outer CountEvents = %d, want 8 (nested engines count toward the outer scope)", outer)
	}

	// An engine created on a different goroutine is not attributed.
	done := make(chan struct{})
	got := CountEvents(func() {
		go func() { run(100); close(done) }()
		<-done
		run(2)
	})
	if got != 2 {
		t.Errorf("CountEvents attributed another goroutine's engines: got %d, want 2", got)
	}
}
