package simnet

import (
	"testing"
	"time"
)

// shardTraffic drives a synthetic relay model on a ShardGroup: every cell
// seeds a few initial events, and each event draws from the cell's
// labelled RNG stream, bumps a per-cell counter, and relays work to the
// next cell at now+lookahead+jitter for a fixed number of hops. The model
// exercises same-cell scheduling, cross-cell sends, and RNG draws; its
// digest is the reference the worker-sweep pins.
func shardTraffic(g *ShardGroup, hops int) *[]uint64 {
	counts := make([]uint64, g.Cells())
	var relay func(cell, hop int)
	relay = func(cell, hop int) {
		e := g.Cell(cell)
		counts[cell]++
		// A same-cell follow-up with an RNG-chosen offset.
		d := time.Duration(e.Rand("traffic/local").Intn(50)+1) * time.Microsecond
		e.After(d, func() { counts[cell]++ })
		if hop >= hops {
			return
		}
		next := (cell + 1) % g.Cells()
		jitter := time.Duration(e.Rand("traffic/cross").Intn(200)) * time.Microsecond
		at := e.Now() + g.Lookahead() + jitter
		g.Send(cell, next, at, func() { relay(next, hop+1) })
	}
	for c := 0; c < g.Cells(); c++ {
		c := c
		for k := 0; k < 3; k++ {
			at := time.Duration(c*7+k*13+1) * time.Microsecond
			g.Cell(c).Schedule(at, func() { relay(c, 0) })
		}
	}
	return &counts
}

func runShardTraffic(t *testing.T, cells, workers int) (uint64, uint64, []uint64) {
	t.Helper()
	g := NewShardGroup(42, cells, 150*time.Microsecond, workers)
	if w := g.Workers(); w > cells {
		t.Fatalf("workers not clamped: got %d for %d cells", w, cells)
	}
	g.EnableDigest()
	counts := shardTraffic(g, 12)
	g.RunUntil(50 * time.Millisecond)
	for c := 0; c < cells; c++ {
		if now := g.Cell(c).Now(); now != 50*time.Millisecond {
			t.Fatalf("cell %d clock %v, want 50ms", c, now)
		}
	}
	return g.Digest(), g.Processed(), *counts
}

// TestShardGroupWorkerSweep pins the shard-invariance contract: the same
// seed and cell count produce byte-identical digests, event counts, and
// model state at every worker count, including serial workers=1.
func TestShardGroupWorkerSweep(t *testing.T) {
	for _, cells := range []int{1, 3, 8} {
		refDigest, refProcessed, refCounts := runShardTraffic(t, cells, 1)
		if refProcessed == 0 {
			t.Fatalf("cells=%d: no events processed", cells)
		}
		for _, workers := range []int{2, 4, 8} {
			d, p, counts := runShardTraffic(t, cells, workers)
			if d != refDigest {
				t.Errorf("cells=%d workers=%d: digest %#x, want %#x", cells, workers, d, refDigest)
			}
			if p != refProcessed {
				t.Errorf("cells=%d workers=%d: processed %d, want %d", cells, workers, p, refProcessed)
			}
			for c := range counts {
				if counts[c] != refCounts[c] {
					t.Errorf("cells=%d workers=%d: cell %d count %d, want %d", cells, workers, c, counts[c], refCounts[c])
				}
			}
		}
	}
}

// TestShardGroupDigestPinned pins the digest constant itself so an
// accidental protocol change (merge order, window bounds, seed
// derivation) fails loudly rather than silently shifting all runs.
func TestShardGroupDigestPinned(t *testing.T) {
	const wantDigest = uint64(0xecfba5eaff115726)
	const wantProcessed = uint64(312)
	d, p, _ := runShardTraffic(t, 4, 2)
	if d != wantDigest || p != wantProcessed {
		t.Fatalf("digest %#x processed %d, want %#x / %d", d, p, wantDigest, wantProcessed)
	}
	d2, _, _ := runShardTraffic(t, 4, 7)
	if d != d2 {
		t.Fatalf("digest not worker-invariant: %#x vs %#x", d, d2)
	}
}

// TestShardGroupAllCrossTraffic runs a model whose every event is a
// cross-cell send — the regime where the merge order does all the work.
func TestShardGroupAllCrossTraffic(t *testing.T) {
	run := func(workers int) uint64 {
		g := NewShardGroup(7, 4, time.Millisecond, workers)
		g.EnableDigest()
		var ping func(cell, n int)
		ping = func(cell, n int) {
			if n >= 40 {
				return
			}
			dst := (cell + 1 + n%3) % 4
			if dst == cell {
				dst = (dst + 1) % 4
			}
			g.Send(cell, dst, g.Cell(cell).Now()+g.Lookahead(), func() { ping(dst, n+1) })
		}
		for c := 0; c < 4; c++ {
			c := c
			g.Cell(c).Schedule(time.Microsecond, func() { ping(c, 0) })
		}
		g.RunUntil(time.Second)
		return g.Digest()
	}
	ref := run(1)
	for _, w := range []int{2, 4} {
		if d := run(w); d != ref {
			t.Errorf("workers=%d digest %#x, want %#x", w, d, ref)
		}
	}
}

// TestShardGroupDeadline checks the deadline-capped final window: an
// event exactly at the deadline executes, clocks land on the deadline,
// and a later RunUntil picks up cross events emitted near the edge.
func TestShardGroupDeadline(t *testing.T) {
	g := NewShardGroup(1, 2, 100*time.Microsecond, 1)
	var atDeadline, afterDeadline, crossed bool
	g.Cell(0).Schedule(time.Millisecond, func() { atDeadline = true })
	g.Cell(0).Schedule(time.Millisecond+1, func() { afterDeadline = true })
	// A cross send whose delivery lands past the first deadline.
	g.Cell(0).Schedule(990*time.Microsecond, func() {
		g.Send(0, 1, g.Cell(0).Now()+g.Lookahead(), func() { crossed = true })
	})
	g.RunUntil(time.Millisecond)
	if !atDeadline {
		t.Error("event at the deadline did not run")
	}
	if afterDeadline {
		t.Error("event past the deadline ran early")
	}
	if crossed {
		t.Error("cross event past the deadline ran early")
	}
	if now := g.Cell(1).Now(); now != time.Millisecond {
		t.Errorf("cell 1 clock %v, want 1ms", now)
	}
	g.RunUntil(2 * time.Millisecond)
	if !afterDeadline || !crossed {
		t.Errorf("second phase: afterDeadline=%v crossed=%v, want both", afterDeadline, crossed)
	}
}

// TestShardGroupIdleWiring checks cross sends issued while the group is
// idle (model wiring between runs) are merged before the next window.
func TestShardGroupIdleWiring(t *testing.T) {
	g := NewShardGroup(3, 3, time.Millisecond, 2)
	var hits int
	g.Send(0, 2, 5*time.Millisecond, func() { hits++ })
	g.Send(1, 2, 5*time.Millisecond, func() { hits++ })
	g.RunUntil(10 * time.Millisecond)
	if hits != 2 {
		t.Fatalf("idle-wired cross events: %d hits, want 2", hits)
	}
}

// TestShardGroupLookaheadViolation pins the contract's teeth: a
// cross-cell send inside the lookahead window panics.
func TestShardGroupLookaheadViolation(t *testing.T) {
	g := NewShardGroup(1, 2, time.Millisecond, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("cross-shard send inside the lookahead window did not panic")
		}
	}()
	g.Send(0, 1, 999*time.Microsecond, func() {})
}

// TestShardGroupConstructorPanics pins the constructor contract.
func TestShardGroupConstructorPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		fn()
	}
	mustPanic("zero cells", func() { NewShardGroup(1, 0, time.Millisecond, 1) })
	mustPanic("zero lookahead", func() { NewShardGroup(1, 2, 0, 1) })
	mustPanic("negative lookahead", func() { NewShardGroup(1, 2, -time.Second, 1) })
}

// TestShardGroupCellSeeds checks per-cell RNG streams are functions of
// (root seed, cell, label) alone: distinct across cells, reproducible
// across constructions.
func TestShardGroupCellSeeds(t *testing.T) {
	a := NewShardGroup(99, 4, time.Millisecond, 1)
	b := NewShardGroup(99, 4, time.Millisecond, 4)
	for i := 0; i < 4; i++ {
		if x, y := a.Cell(i).Rand("s").Uint64(), b.Cell(i).Rand("s").Uint64(); x != y {
			t.Errorf("cell %d stream differs across constructions: %d vs %d", i, x, y)
		}
	}
	if a.Cell(0).Seed() == a.Cell(1).Seed() {
		t.Error("adjacent cells share a seed")
	}
}
