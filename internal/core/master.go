// Package core implements the ESlurm master daemon — the paper's primary
// contribution (Section III): a hierarchical resource manager that keeps a
// single master with the global scheduling view but offloads all
// large-scale communication to a pool of satellite nodes, each of which
// relays messages to its slice of compute nodes over an FP-Tree.
//
// The master:
//
//   - splits every broadcast across N satellites per Eq. 1,
//   - maps sub-lists to satellites round-robin,
//   - reallocates a failed satellite's task to the next satellite in the
//     round-robin, at most Config.ReallocLimit times, after which the
//     master takes the task over itself (Section III-C),
//   - heartbeats satellites and compute nodes, driving the satellite state
//     machine of package satellite,
//   - tracks job and node state, charging its resource meter the way the
//     production slurmctld-derived daemon does.
//
// Determinism: every master action — dispatch, watchdog, reallocation,
// heartbeat sweep — runs as an event on the cluster's engine, so the same
// seed replays the identical broadcast schedule bit for bit; the obs
// spans and counters it records are passive and never feed back into the
// simulation.
package core

import (
	"fmt"
	"time"

	"eslurm/internal/cluster"
	"eslurm/internal/comm"
	"eslurm/internal/fptree"
	"eslurm/internal/obs"
	"eslurm/internal/predict"
	"eslurm/internal/proto"
	"eslurm/internal/satellite"
	"eslurm/internal/simnet"
)

// Config parameterizes the ESlurm master.
type Config struct {
	// TreeWidth is w in Eq. 1 and the FP-Tree fan-out.
	TreeWidth int
	// ReallocLimit is the number of reallocation trails for a failed
	// broadcast task before the master takes over (paper default: 2).
	ReallocLimit int
	// HeartbeatInterval is the cadence of satellite + compute heartbeats.
	HeartbeatInterval time.Duration
	// TaskTimeout bounds how long the master waits for a satellite's
	// aggregated response before treating the task as failed.
	TaskTimeout time.Duration
	// Message sizes in bytes.
	JobLoadMsgBytes   int
	JobTermMsgBytes   int
	HeartbeatMsgBytes int
	// ResponsePerNodeBytes sizes the aggregated satellite→master response.
	ResponsePerNodeBytes int

	// Resource-model coefficients for the master daemon (see
	// DESIGN.md "Resource accounting"). ESlurm's hallmark is that these
	// stay small because the master only ever talks to satellites.
	BaseVMem       int64 // daemon image + arenas
	BaseRSS        int64
	PerNodeState   int64         // bytes of master state per managed compute node
	PerJobState    int64         // bytes of master state per active job
	SchedCPUPerJob time.Duration // scheduling-pass CPU per job event

	// Satellite daemon memory model (Table VI, Fig. 9d–f): the satellite
	// runs a slurmd-derived daemon with a large virtual image; its
	// resident set grows with the largest sub-nodelist it has relayed.
	SatelliteBaseVMem   int64
	SatelliteBaseRSS    int64
	SatellitePerNodeRSS int64
	// SatellitePerNodeProc is the satellite's per-participant processing
	// cost when it receives a task: FP-Tree construction is Θ(n)
	// (Section IV-D) and each relay message carries a sub-nodelist to
	// marshal. Fewer satellites ⇒ larger sub-lists ⇒ slower relays — one
	// side of the Fig. 11a trade-off.
	SatellitePerNodeProc time.Duration
	// MasterPerTaskDispatch is the master's serialized cost to prepare
	// and emit one satellite task (authorization, sub-list slicing,
	// marshalling). More satellites ⇒ more tasks per broadcast — the
	// other side of the Fig. 11a trade-off.
	MasterPerTaskDispatch time.Duration
	// MasterPerSatState is master memory per configured satellite
	// (connection buffers + pool bookkeeping), the Table V growth.
	MasterPerSatState int64
	// PerResponseCPU is master CPU per aggregated satellite response.
	PerResponseCPU time.Duration
	// DisableSuspectFeedback turns off the master's own unreachable-node
	// suspect set, leaving placement purely to the plugin predictor (used
	// by the §VII-A placement experiment to measure the monitoring
	// pipeline alone).
	DisableSuspectFeedback bool
}

// DefaultConfig returns the production configuration used in the
// experiments.
func DefaultConfig() Config {
	return Config{
		TreeWidth:             fptree.DefaultWidth,
		ReallocLimit:          2,
		HeartbeatInterval:     150 * time.Second,
		TaskTimeout:           120 * time.Second,
		JobLoadMsgBytes:       4096,
		JobTermMsgBytes:       1024,
		HeartbeatMsgBytes:     256,
		ResponsePerNodeBytes:  16,
		BaseVMem:              1 << 30,  // <2 GB virtual (Fig. 7c)
		BaseRSS:               40 << 20, // ~60 MB real at 4K nodes (Fig. 7d)
		PerNodeState:          4 << 10,
		PerJobState:           16 << 10,
		SchedCPUPerJob:        2 * time.Millisecond,
		SatelliteBaseVMem:     10 << 30,
		SatelliteBaseRSS:      60 << 20,
		SatellitePerNodeRSS:   24 << 10,
		SatellitePerNodeProc:  50 * time.Microsecond,
		MasterPerTaskDispatch: 1500 * time.Microsecond,
		MasterPerSatState:     3 << 20,
		PerResponseCPU:        500 * time.Microsecond,
	}
}

// Stats counts master-level events for the experiment reports. The
// counts live in the engine's metrics registry (master.* counters);
// Stats is the back-compat snapshot view Master.Stats assembles from it.
type Stats struct {
	Broadcasts      int
	SubTasks        int
	Reallocations   int
	MasterTakeovers int
	HeartbeatSweeps int
	// PoolDrainedFallbacks counts master takeovers that happened because
	// the whole pool had drained to FAULT/DOWN (the graceful-degradation
	// path), a subset of MasterTakeovers.
	PoolDrainedFallbacks int
}

// masterInstruments caches the master's registry handles (one lookup at
// construction, field reads afterwards).
type masterInstruments struct {
	broadcasts       *obs.Counter
	subTasks         *obs.Counter
	reallocations    *obs.Counter
	takeovers        *obs.Counter
	sweeps           *obs.Counter
	drainedFallbacks *obs.Counter
}

func newMasterInstruments(m *obs.Registry) masterInstruments {
	return masterInstruments{
		broadcasts:       m.Counter("master.broadcasts"),
		subTasks:         m.Counter("master.subtasks"),
		reallocations:    m.Counter("master.reallocations"),
		takeovers:        m.Counter("master.takeovers"),
		sweeps:           m.Counter("master.heartbeat_sweeps"),
		drainedFallbacks: m.Counter("master.pool_drained_fallbacks"),
	}
}

// Master is the ESlurm control daemon.
type Master struct {
	Cluster   *cluster.Cluster
	Pool      *satellite.Pool
	Predictor predict.Predictor
	B         *comm.Broadcaster
	// Placement, when non-nil, accumulates FP-Tree leaf-placement
	// statistics across every satellite broadcast.
	Placement *comm.PlacementStats

	cfg    Config
	in     masterInstruments
	engine *simnet.Engine
	hb     *simnet.Ticker
	jobs   int
	// suspects are nodes recent broadcasts failed to reach; they are
	// treated as predicted-failed (over-prediction principle) until the
	// expiry, independent of the plugin predictor.
	suspects map[cluster.NodeID]time.Duration
}

// NewMaster wires an ESlurm master over a cluster. The predictor may be
// nil (no failure prediction: FP-Tree degenerates to a plain tree).
func NewMaster(c *cluster.Cluster, cfg Config, p predict.Predictor) *Master {
	if cfg.TreeWidth == 0 {
		cfg = DefaultConfig()
	}
	if p == nil {
		p = predict.Null{}
	}
	m := &Master{
		Cluster:   c,
		Pool:      satellite.NewPool(c.Engine, c.Satellites()),
		Predictor: p,
		B:         comm.NewBroadcaster(c),
		cfg:       cfg,
		in:        newMasterInstruments(c.Engine.Metrics()),
		engine:    c.Engine,
		suspects:  make(map[cluster.NodeID]time.Duration),
	}
	return m
}

// SuspectTTL is how long an unreachable node stays in the master's
// suspect set (and hence at FP-Tree leaves) after its last failed
// delivery.
const SuspectTTL = 30 * time.Minute

// markSuspects records nodes a broadcast could not reach.
func (m *Master) markSuspects(ids []cluster.NodeID) {
	if m.cfg.DisableSuspectFeedback {
		return
	}
	for _, id := range ids {
		m.suspects[id] = m.engine.Now() + SuspectTTL
	}
}

// Suspected reports whether the master currently treats the node as
// likely-failed from its own delivery evidence.
func (m *Master) Suspected(id cluster.NodeID) bool {
	exp, ok := m.suspects[id]
	if !ok {
		return false
	}
	if m.engine.Now() > exp {
		delete(m.suspects, id)
		return false
	}
	return true
}

// effectivePredictor returns the predictor FP-Tree construction consults:
// the plugin predictor merged with the master's own suspect set, unless
// suspect feedback is disabled by configuration.
func (m *Master) effectivePredictor() predict.Predictor {
	if m.cfg.DisableSuspectFeedback {
		return m.Predictor
	}
	return mergedPredictor{m}
}

// mergedPredictor merges the plugin predictor with the master's own
// suspect set.
type mergedPredictor struct{ m *Master }

// Predicted implements predict.Predictor.
func (p mergedPredictor) Predicted(id cluster.NodeID) bool {
	return p.m.Suspected(id) || p.m.Predictor.Predicted(id)
}

// PredictedCount implements predict.Predictor (plugin count plus live
// suspects; overlap is not deduplicated — the count is informational).
func (p mergedPredictor) PredictedCount() int {
	n := p.m.Predictor.PredictedCount()
	if n < 0 {
		return -1
	}
	for id := range p.m.suspects {
		if p.m.Suspected(id) && !p.m.Predictor.Predicted(id) {
			n++
		}
	}
	return n
}

// Config returns the master's configuration.
func (m *Master) Config() Config { return m.cfg }

// PoolHealth returns the satellite pool's current census — the signal the
// monitoring subsystem (monitor.ObservePool) and the chaos harness watch
// for graceful degradation.
func (m *Master) PoolHealth() satellite.Health { return m.Pool.Health() }

// Stats returns a snapshot of the master's event counters, assembled
// from the registry instruments (see masterInstruments).
func (m *Master) Stats() Stats {
	return Stats{
		Broadcasts:           int(m.in.broadcasts.Value()),
		SubTasks:             int(m.in.subTasks.Value()),
		Reallocations:        int(m.in.reallocations.Value()),
		MasterTakeovers:      int(m.in.takeovers.Value()),
		HeartbeatSweeps:      int(m.in.sweeps.Value()),
		PoolDrainedFallbacks: int(m.in.drainedFallbacks.Value()),
	}
}

// Meter returns the master daemon's resource meter.
func (m *Master) Meter() *cluster.ResourceMeter { return &m.Cluster.Master().Meter }

// Name identifies the RM in experiment output.
func (m *Master) Name() string { return "ESlurm" }

// Start boots the daemon: base memory is mapped, node state is built, all
// satellites are probed (promoting them to RUNNING), and the heartbeat
// service begins.
func (m *Master) Start() {
	mm := m.Meter()
	mm.AddVMem(m.cfg.BaseVMem)
	mm.AddRSS(m.cfg.BaseRSS)
	mm.AddVMem(int64(len(m.Cluster.Computes())) * m.cfg.PerNodeState)
	mm.AddRSS(int64(len(m.Cluster.Computes())) * m.cfg.PerNodeState / 8)
	for _, id := range m.Cluster.Satellites() {
		sm := &m.Cluster.Node(id).Meter
		sm.AddVMem(m.cfg.SatelliteBaseVMem)
		sm.AddRSS(m.cfg.SatelliteBaseRSS)
		// The master holds a long-lived control connection per satellite
		// and per-satellite pool state (Table V's mild growth with the
		// satellite count).
		mm.OpenSocket()
		mm.AddVMem(m.cfg.MasterPerSatState)
		mm.AddRSS(m.cfg.MasterPerSatState / 4)
	}
	m.probeSatellites()
	m.hb = m.engine.Every(m.cfg.HeartbeatInterval, m.heartbeatSweep)
}

// Stop halts the heartbeat service.
func (m *Master) Stop() {
	if m.hb != nil {
		m.hb.Stop()
	}
}

// probeSatellites heartbeats every satellite once, synchronously promoting
// reachable ones to RUNNING.
func (m *Master) probeSatellites() {
	for _, s := range m.Pool.All() {
		s := s
		m.B.Send(m.Cluster.Master().ID, s.ID, m.cfg.HeartbeatMsgBytes, func(ok bool) {
			if ok {
				m.Pool.Apply(s, satellite.EvHBSuccess)
			} else {
				m.Pool.Apply(s, satellite.EvHBFailure)
			}
		})
	}
}

// SatelliteFanout implements Eq. 1: the number N of satellite nodes used
// to relay a broadcast to s participating nodes, given tree width w and
// pool size m.
func (m *Master) SatelliteFanout(s int) int {
	w := m.cfg.TreeWidth
	mm := m.Pool.Size()
	if mm == 0 {
		return 0
	}
	switch {
	case s <= w:
		return 1
	case s >= mm*w:
		return mm
	default:
		n := s / w
		if n < 1 {
			n = 1
		}
		if n > mm {
			n = mm
		}
		return n
	}
}

// splitList divides targets into n near-equal contiguous sub-lists.
func splitList(targets []cluster.NodeID, n int) [][]cluster.NodeID {
	if n <= 0 {
		return nil
	}
	out := make([][]cluster.NodeID, 0, n)
	base, extra := len(targets)/n, len(targets)%n
	pos := 0
	for i := 0; i < n; i++ {
		sz := base
		if i < extra {
			sz++
		}
		if sz == 0 {
			continue
		}
		out = append(out, targets[pos:pos+sz])
		pos += sz
	}
	return out
}

// Broadcast relays one payload to the target compute nodes through the
// satellite layer, with reallocation and master-takeover fault tolerance.
// done (may be nil) receives the merged result when every target has
// resolved.
func (m *Master) Broadcast(targets []cluster.NodeID, size int, done func(comm.Result)) {
	m.in.broadcasts.Inc()
	master := m.Cluster.Master().ID
	mm := m.Meter()
	mm.ChargeCPU(m.B.SendOverhead) // task splitting
	tr := m.engine.Tracer()
	root := tr.Start("master.broadcast", 0, obs.Int("targets", len(targets)))

	if len(targets) == 0 {
		tr.End(root)
		if done != nil {
			done(comm.Result{})
		}
		return
	}

	n := m.SatelliteFanout(len(targets))
	sats := m.Pool.SelectRunning(n)
	if len(sats) == 0 {
		// No satellite available at all: the master must do the work
		// rather than stall. A fully drained pool (all FAULT/DOWN) is the
		// graceful-degradation case the chaos harness asserts on.
		m.in.takeovers.Inc()
		drained := m.Pool.Drained()
		if drained {
			m.in.drainedFallbacks.Inc()
		}
		tr.Instant("master.takeover", root, obs.String("reason", takeoverReason(drained)))
		m.directBroadcast(master, targets, size, root, func(r comm.Result, _ time.Duration) {
			tr.SetAttrInt(root, "delivered", r.Delivered)
			tr.End(root)
			if done != nil {
				done(r)
			}
		})
		return
	}
	subs := splitList(targets, len(sats))
	tr.SetAttrInt(root, "fanout", len(subs))

	start := m.engine.Now()
	merged := comm.Result{}
	pending := len(subs)
	// finish merges one sub-task's outcome. deliveredAt is the absolute
	// virtual time of the sub-broadcast's last successful delivery, so the
	// merged DeliveredElapsed measures when the message reached every
	// reachable node — not when timeout bookkeeping for dead leaves
	// drained (the paper's "message broadcast time").
	finish := func(r comm.Result, deliveredAt time.Duration) {
		merged.Delivered += r.Delivered
		merged.Resolved = append(merged.Resolved, r.Resolved...)
		merged.Unreachable = append(merged.Unreachable, r.Unreachable...)
		merged.Messages += r.Messages
		merged.Retries += r.Retries
		if d := m.engine.Now() - start; d > merged.Elapsed {
			merged.Elapsed = d
		}
		if r.Delivered > 0 && deliveredAt > start {
			if d := deliveredAt - start; d > merged.DeliveredElapsed {
				merged.DeliveredElapsed = d
			}
		}
		pending--
		if pending == 0 {
			tr.SetAttrInt(root, "delivered", merged.Delivered)
			tr.SetAttrInt(root, "unreachable", len(merged.Unreachable))
			tr.End(root)
			if done != nil {
				done(merged)
			}
		}
	}

	// Task preparation is serialized at the master: authorization,
	// sub-list slicing and marshalling cost MasterPerTaskDispatch each.
	for i, sub := range subs {
		i, sub := i, sub
		delay := time.Duration(i+1) * m.cfg.MasterPerTaskDispatch
		mm.ChargeCPU(m.cfg.MasterPerTaskDispatch)
		m.engine.After(delay, func() {
			m.dispatchTask(sats[i], sub, size, 0, root, finish)
		})
	}
	m.in.subTasks.Add(int64(len(subs)))
}

// takeoverReason labels master.takeover instants for the trace.
func takeoverReason(drained bool) string {
	if drained {
		return "pool-drained"
	}
	return "no-running-satellite"
}

// dispatchTask hands one sub-list to a satellite; trail counts previous
// reallocation attempts for this task, and parent is the master.broadcast
// span the task span nests under.
func (m *Master) dispatchTask(sat *satellite.Satellite, sub []cluster.NodeID, size int, trail int, parent obs.SpanID, finish func(comm.Result, time.Duration)) {
	master := m.Cluster.Master().ID
	tr := m.engine.Tracer()
	task := tr.Start("master.task", parent,
		obs.Int("sat", int(sat.ID)), obs.Int("nodes", len(sub)), obs.Int("trail", trail))
	m.Pool.Apply(sat, satellite.EvBTAssigned)
	sat.NodesServed += len(sub)

	// The satellite's resident set high-water mark follows the largest
	// sub-nodelist it has buffered.
	sm := &m.Cluster.Node(sat.ID).Meter
	if target := m.cfg.SatelliteBaseRSS + int64(len(sub))*m.cfg.SatellitePerNodeRSS; sm.RSS() < target {
		sm.AddRSS(target - sm.RSS())
	}

	taskBytes := proto.TaskAssignSize(len(sub), size)
	responded := false

	// fail closes the task span with an outcome label and hands the task
	// to the reallocation path.
	fail := func(outcome string) {
		responded = true
		tr.SetAttr(task, "outcome", outcome)
		tr.End(task)
		m.Pool.Apply(sat, satellite.EvBTFailure)
		m.reallocate(sat, sub, size, trail, parent, finish)
	}

	// Watchdog: if the satellite never responds (e.g. it died mid-task),
	// treat the task as failed and reallocate.
	watchdog := m.engine.After(m.cfg.TaskTimeout, func() {
		if responded {
			return
		}
		fail("timeout")
	})

	m.B.SpanParent = task
	m.B.Send(master, sat.ID, taskBytes, func(ok bool) {
		if responded {
			return
		}
		if !ok {
			watchdog.Cancel()
			fail("assign-undelivered")
			return
		}
		// The satellite constructs an FP-Tree over its sub-list (Θ(n),
		// Section IV-D) and marshals per-child sub-nodelists before
		// relaying.
		proc := m.B.RelayOverhead + time.Duration(len(sub))*m.cfg.SatellitePerNodeProc
		m.Cluster.Node(sat.ID).Meter.ChargeCPU(proc)
		bStart := m.engine.Now() + proc
		structure := comm.FPTree{Width: m.cfg.TreeWidth, Predictor: m.effectivePredictor(), Stats: m.Placement}
		m.engine.After(proc, func() {
			m.B.SpanParent = task
			structure.Broadcast(m.B, sat.ID, sub, size, func(r comm.Result) {
				m.markSuspects(r.Unreachable)
				if responded {
					return
				}
				// Aggregate response back to the master (wire-encoded
				// per-node statuses, see package proto).
				respBytes := proto.AggregateReplySize(len(sub), len(r.Unreachable))
				m.B.SpanParent = task
				m.B.Send(sat.ID, master, respBytes, func(respOK bool) {
					if responded {
						return
					}
					watchdog.Cancel()
					if respOK {
						responded = true
						m.Pool.Apply(sat, satellite.EvBTSuccess)
						m.Meter().ChargeCPU(time.Duration(len(sub)) * time.Microsecond) // merge aggregate
						tr.SetAttrInt(task, "delivered", r.Delivered)
						tr.End(task)
						finish(r, bStart+r.DeliveredElapsed)
						return
					}
					fail("reply-undelivered")
				})
			})
		})
	})
}

// reallocate implements Section III-C: move the task to the next satellite
// in the round-robin; after ReallocLimit trails the master takes over.
// parent is the originating master.broadcast span.
func (m *Master) reallocate(failed *satellite.Satellite, sub []cluster.NodeID, size int, trail int, parent obs.SpanID, finish func(comm.Result, time.Duration)) {
	tr := m.engine.Tracer()
	trail++
	takeover := func() {
		m.in.takeovers.Inc()
		tr.Instant("master.takeover", parent,
			obs.Int("nodes", len(sub)), obs.Int("trail", trail))
		m.directBroadcast(m.Cluster.Master().ID, sub, size, parent, finish)
	}
	if trail > m.cfg.ReallocLimit {
		takeover()
		return
	}
	next := m.Pool.NextRunning()
	if next == nil || next.ID == failed.ID {
		takeover()
		return
	}
	m.in.reallocations.Inc()
	tr.Instant("master.realloc", parent,
		obs.Int("from", int(failed.ID)), obs.Int("to", int(next.ID)), obs.Int("trail", trail))
	m.dispatchTask(next, sub, size, trail, parent, finish)
}

// directBroadcast is the master-takeover path: the master relays to the
// sub-list itself over an FP-Tree, "ensuring that the task is processed
// correctly and promptly".
func (m *Master) directBroadcast(origin cluster.NodeID, sub []cluster.NodeID, size int, parent obs.SpanID, finish func(comm.Result, time.Duration)) {
	bStart := m.engine.Now()
	structure := comm.FPTree{Width: m.cfg.TreeWidth, Predictor: m.effectivePredictor(), Stats: m.Placement}
	m.B.SpanParent = parent
	structure.Broadcast(m.B, origin, sub, size, func(r comm.Result) {
		m.markSuspects(r.Unreachable)
		if finish != nil {
			finish(r, bStart+r.DeliveredElapsed)
		}
	})
}

// ShutdownSatellite sends the SHUTDOWN command of Table II to a satellite:
// the node is removed from broadcast rotation immediately and stays DOWN
// until an administrator reinstates it. The command itself travels as a
// real control message.
func (m *Master) ShutdownSatellite(id cluster.NodeID, done func(delivered bool)) error {
	sat := m.Pool.Get(id)
	if sat == nil {
		return fmt.Errorf("core: node %d is not a satellite", id)
	}
	// The state change is immediate — the master stops routing tasks even
	// before the daemon acknowledges.
	if _, err := m.Pool.Apply(sat, satellite.EvShutdown); err != nil {
		return err
	}
	m.B.Send(m.Cluster.Master().ID, id, m.cfg.HeartbeatMsgBytes, func(ok bool) {
		if done != nil {
			done(ok)
		}
	})
	return nil
}

// DrainSatellite gracefully removes a satellite from service: it is
// cordoned out of the round-robin immediately, in-flight broadcast tasks
// are given until the deadline to resolve, and only then is the SHUTDOWN
// command of Table II applied and sent as a real control message. Tasks
// stranded by a forced drain are re-adopted by the dispatch watchdog
// (reallocation, then master takeover), so no task is dropped. done, if
// set, is called exactly once: clean reports whether the satellite left
// BUSY on its own, delivered whether the shutdown message reached the
// node.
func (m *Master) DrainSatellite(id cluster.NodeID, deadline time.Duration, done func(clean, delivered bool)) error {
	if m.Pool.Get(id) == nil {
		return fmt.Errorf("core: node %d is not a satellite", id)
	}
	return m.Pool.Drain(id, deadline, func(clean bool) {
		m.B.Send(m.Cluster.Master().ID, id, m.cfg.HeartbeatMsgBytes, func(ok bool) {
			if done != nil {
				done(clean, ok)
			}
		})
	})
}

// ProbeSatellite heartbeats a single satellite out of cycle, feeding the
// outcome to the state machine exactly like the periodic sweep. The
// reconciler uses this to promote a just-reinstated standby without
// waiting for the next sweep.
func (m *Master) ProbeSatellite(id cluster.NodeID) error {
	s := m.Pool.Get(id)
	if s == nil {
		return fmt.Errorf("core: node %d is not a satellite", id)
	}
	m.B.Send(m.Cluster.Master().ID, s.ID, m.cfg.HeartbeatMsgBytes, func(ok bool) {
		if ok {
			m.Pool.Apply(s, satellite.EvHBSuccess)
		} else {
			m.Pool.Apply(s, satellite.EvHBFailure)
		}
	})
	return nil
}

// Tune applies runtime-adjustable ESlurm parameters (the spec-carried
// subset): tree width, reallocation limit, and heartbeat cadence. Zero
// values keep the current setting. Changing the cadence restarts the
// heartbeat ticker from now; an unchanged cadence is left alone so a
// no-op Tune cannot perturb the event trace.
func (m *Master) Tune(treeWidth, reallocLimit int, heartbeat time.Duration) {
	if treeWidth > 0 {
		m.cfg.TreeWidth = treeWidth
	}
	if reallocLimit > 0 {
		m.cfg.ReallocLimit = reallocLimit
	}
	if heartbeat > 0 && heartbeat != m.cfg.HeartbeatInterval {
		m.cfg.HeartbeatInterval = heartbeat
		if m.hb != nil {
			m.hb.Stop()
			m.hb = m.engine.Every(m.cfg.HeartbeatInterval, m.heartbeatSweep)
		}
	}
}

// heartbeatSweep probes satellites directly and compute nodes through the
// satellite layer, feeding the state machine and the predictor pipeline.
func (m *Master) heartbeatSweep() {
	m.in.sweeps.Inc()
	m.probeSatellites()
	m.Broadcast(m.Cluster.Computes(), m.cfg.HeartbeatMsgBytes, nil)
}

// LoadJob broadcasts the job-loading message to the job's nodes and charges
// the master's job bookkeeping. done receives the broadcast result.
func (m *Master) LoadJob(nodes []cluster.NodeID, done func(comm.Result)) {
	mm := m.Meter()
	mm.ChargeCPU(m.cfg.SchedCPUPerJob)
	mm.AddVMem(m.cfg.PerJobState)
	mm.AddRSS(m.cfg.PerJobState / 4)
	m.jobs++
	m.Broadcast(nodes, m.cfg.JobLoadMsgBytes, done)
}

// TerminateJob broadcasts the job-termination message and releases the
// master's per-job state. ESlurm returns job memory to the allocator
// (unlike the Slurm model, whose virtual footprint only grows).
func (m *Master) TerminateJob(nodes []cluster.NodeID, done func(comm.Result)) {
	mm := m.Meter()
	mm.ChargeCPU(m.cfg.SchedCPUPerJob / 2)
	m.Broadcast(nodes, m.cfg.JobTermMsgBytes, func(r comm.Result) {
		mm.AddVMem(-m.cfg.PerJobState)
		mm.AddRSS(-m.cfg.PerJobState / 4)
		if m.jobs > 0 {
			m.jobs--
		}
		if done != nil {
			done(r)
		}
	})
}

// ActiveJobs returns the number of jobs currently tracked by the master.
func (m *Master) ActiveJobs() int { return m.jobs }
