package core

import (
	"testing"
	"time"

	"eslurm/internal/cluster"
	"eslurm/internal/comm"
	"eslurm/internal/predict"
	"eslurm/internal/satellite"
	"eslurm/internal/simnet"
)

func newMaster(seed int64, computes, satellites int) (*simnet.Engine, *cluster.Cluster, *Master) {
	e := simnet.NewEngine(seed)
	c := cluster.New(e, cluster.Config{Computes: computes, Satellites: satellites})
	m := NewMaster(c, DefaultConfig(), nil)
	return e, c, m
}

func TestSatelliteFanoutEq1(t *testing.T) {
	_, _, m := newMaster(1, 100, 5)
	w := m.Config().TreeWidth // 32
	cases := []struct {
		s, want int
	}{
		{1, 1},
		{w, 1},       // s <= w
		{w + 1, 1},   // s/w = 1
		{3 * w, 3},   // s/w
		{5*w - 1, 4}, // s/w floor, below m*w
		{5 * w, 5},   // s >= m*w
		{100 * w, 5}, // capped at m
	}
	for _, c := range cases {
		if got := m.SatelliteFanout(c.s); got != c.want {
			t.Errorf("N(%d) = %d, want %d", c.s, got, c.want)
		}
	}
}

func TestSatelliteFanoutNoSatellites(t *testing.T) {
	_, _, m := newMaster(2, 10, 0)
	if m.SatelliteFanout(10) != 0 {
		t.Error("fanout must be 0 with an empty pool")
	}
}

func TestSplitListBalanced(t *testing.T) {
	ids := make([]cluster.NodeID, 10)
	for i := range ids {
		ids[i] = cluster.NodeID(i)
	}
	subs := splitList(ids, 3)
	if len(subs) != 3 {
		t.Fatalf("sublists = %d", len(subs))
	}
	sizes := []int{len(subs[0]), len(subs[1]), len(subs[2])}
	if sizes[0] != 4 || sizes[1] != 3 || sizes[2] != 3 {
		t.Errorf("sizes = %v, want [4 3 3]", sizes)
	}
	// Union preserves all IDs.
	total := 0
	for _, s := range subs {
		total += len(s)
	}
	if total != 10 {
		t.Errorf("total = %d", total)
	}
}

func TestSplitListMoreBucketsThanItems(t *testing.T) {
	ids := []cluster.NodeID{1, 2}
	subs := splitList(ids, 5)
	if len(subs) != 2 {
		t.Fatalf("empty sublists must be dropped: %d", len(subs))
	}
}

func TestStartPromotesSatellites(t *testing.T) {
	e, _, m := newMaster(3, 50, 3)
	m.Start()
	e.RunUntil(10 * time.Second)
	if n := m.Pool.RunningCount(); n != 3 {
		t.Fatalf("running satellites = %d, want 3", n)
	}
	if m.Meter().VMem() == 0 || m.Meter().RSS() == 0 {
		t.Error("daemon base memory not charged")
	}
}

func TestBroadcastThroughSatellites(t *testing.T) {
	e, c, m := newMaster(4, 200, 2)
	m.Start()
	e.RunUntil(5 * time.Second)
	var res comm.Result
	got := false
	m.Broadcast(c.Computes(), 1024, func(r comm.Result) { res = r; got = true })
	e.RunUntil(30 * time.Second)
	if !got {
		t.Fatal("broadcast never completed")
	}
	if res.Delivered != 200 {
		t.Fatalf("delivered %d/200", res.Delivered)
	}
	st := m.Stats()
	if st.SubTasks != 2 {
		t.Errorf("subtasks = %d, want 2 (one per satellite)", st.SubTasks)
	}
	// The master spoke only to satellites: its outbound message count must
	// be far below the target count.
	_, out := c.Master().Meter.Messages()
	if out > 20 {
		t.Errorf("master sent %d messages for a 200-node broadcast", out)
	}
}

func TestBroadcastEmptyTargets(t *testing.T) {
	e, _, m := newMaster(5, 10, 1)
	m.Start()
	e.RunUntil(time.Second)
	got := false
	m.Broadcast(nil, 100, func(r comm.Result) { got = true })
	e.RunUntil(2 * time.Second)
	if !got {
		t.Fatal("empty broadcast must complete immediately")
	}
}

func TestBroadcastNoSatellitesMasterTakesOver(t *testing.T) {
	e, c, m := newMaster(6, 50, 0)
	m.Start()
	e.RunUntil(time.Second)
	var res comm.Result
	m.Broadcast(c.Computes(), 512, func(r comm.Result) { res = r })
	e.RunUntil(time.Minute)
	if res.Delivered != 50 {
		t.Fatalf("delivered %d/50", res.Delivered)
	}
	if m.Stats().MasterTakeovers != 1 {
		t.Errorf("takeovers = %d, want 1", m.Stats().MasterTakeovers)
	}
}

func TestSatelliteFailureReallocates(t *testing.T) {
	e, c, m := newMaster(7, 100, 3)
	m.Start()
	e.RunUntil(time.Second)
	// Kill satellite 1 before the broadcast.
	dead := c.Satellites()[0]
	c.Fail(dead)
	var res comm.Result
	m.Broadcast(c.Computes(), 512, func(r comm.Result) { res = r })
	e.RunUntil(5 * time.Minute)
	if res.Delivered != 100 {
		t.Fatalf("delivered %d/100 after satellite failure", res.Delivered)
	}
	if m.Stats().Reallocations == 0 {
		t.Error("no reallocation recorded")
	}
	if st := m.Pool.Get(dead).State(); st != satellite.Fault && st != satellite.Down {
		t.Errorf("dead satellite state = %v", st)
	}
}

func TestAllSatellitesDeadMasterTakesOver(t *testing.T) {
	e, c, m := newMaster(8, 60, 2)
	m.Start()
	e.RunUntil(time.Second)
	for _, s := range c.Satellites() {
		c.Fail(s)
	}
	var res comm.Result
	m.Broadcast(c.Computes(), 512, func(r comm.Result) { res = r })
	e.RunUntil(10 * time.Minute)
	if res.Delivered != 60 {
		t.Fatalf("delivered %d/60 with all satellites dead", res.Delivered)
	}
	if m.Stats().MasterTakeovers == 0 {
		t.Error("master never took over")
	}
}

func TestHeartbeatSweepMaintainsStates(t *testing.T) {
	e, c, m := newMaster(9, 100, 2)
	m.Start()
	e.RunUntil(2 * m.Config().HeartbeatInterval)
	if m.Stats().HeartbeatSweeps < 1 {
		t.Fatal("no heartbeat sweep ran")
	}
	// Fail a satellite; the next sweep must mark it FAULT.
	c.Fail(c.Satellites()[1])
	e.RunUntil(4 * m.Config().HeartbeatInterval)
	st := m.Pool.Get(c.Satellites()[1]).State()
	if st != satellite.Fault && st != satellite.Down {
		t.Errorf("failed satellite state after sweeps = %v", st)
	}
	m.Stop()
	sweeps := m.Stats().HeartbeatSweeps
	e.RunUntil(10 * m.Config().HeartbeatInterval)
	if m.Stats().HeartbeatSweeps != sweeps {
		t.Error("heartbeats continued after Stop")
	}
}

func TestJobLifecycleMemoryBalanced(t *testing.T) {
	e, c, m := newMaster(10, 64, 1)
	m.Start()
	e.RunUntil(time.Second)
	before := m.Meter().VMem()
	nodes := c.Computes()[:16]
	m.LoadJob(nodes, nil)
	if m.ActiveJobs() != 1 {
		t.Error("job not tracked")
	}
	e.RunUntil(10 * time.Second)
	during := m.Meter().VMem()
	if during <= before {
		t.Error("job state not charged")
	}
	m.TerminateJob(nodes, nil)
	e.RunUntil(30 * time.Second)
	if m.ActiveJobs() != 0 {
		t.Error("job not released")
	}
	if m.Meter().VMem() != before {
		t.Errorf("vmem leaked: before=%d after=%d", before, m.Meter().VMem())
	}
}

func TestPlacementStatsAccumulateAcrossBroadcasts(t *testing.T) {
	e, c, m := newMaster(11, 300, 2)
	stats := &comm.PlacementStats{}
	m.Placement = stats
	// Predict-and-fail 6 compute nodes.
	pred := predict.Static{}
	for i := 0; i < 6; i++ {
		id := c.Computes()[i*37]
		pred[id] = true
		c.Fail(id)
	}
	m.Predictor = pred
	m.Start()
	e.RunUntil(time.Second)
	for i := 0; i < 3; i++ {
		m.Broadcast(c.Computes(), 256, nil)
	}
	e.RunUntil(5 * time.Minute)
	if stats.TreesBuilt < 3 {
		t.Fatalf("trees built = %d", stats.TreesBuilt)
	}
	if stats.FailedEncountered == 0 {
		t.Fatal("no failures encountered")
	}
	if r := stats.LeafPlacementRatio(); r < 0.99 {
		t.Errorf("placement ratio %v with perfect prediction, want ~1.0", r)
	}
}

func TestMasterSocketsStayLow(t *testing.T) {
	// The headline scalability claim: master concurrent sockets stay below
	// ~100 even for large broadcasts (Fig. 7e).
	e, c, m := newMaster(12, 2000, 4)
	m.Start()
	e.RunUntil(time.Second)
	m.Broadcast(c.Computes(), 1024, nil)
	e.RunUntil(2 * time.Minute)
	if peak := c.Master().Meter.PeakSockets(); peak > 100 {
		t.Errorf("master peak sockets = %d, want < 100", peak)
	}
}

func TestSuspectSetFeedsPlacement(t *testing.T) {
	e, c, m := newMaster(13, 200, 2)
	m.Start()
	e.RunUntil(time.Second)
	// Fail a node with NO predictor knowledge; the first broadcast pays
	// the timeout, marks the node suspect, and the next broadcast places
	// it at a leaf (fast healthy delivery).
	dead := c.Computes()[0]
	c.Fail(dead)
	var first, second comm.Result
	m.Broadcast(c.Computes(), 256, func(r comm.Result) { first = r })
	e.RunUntil(e.Now() + 5*time.Minute)
	if !m.Suspected(dead) {
		t.Fatal("unreachable node not suspected")
	}
	m.Broadcast(c.Computes(), 256, func(r comm.Result) { second = r })
	e.RunUntil(e.Now() + 5*time.Minute)
	if second.DeliveredElapsed >= first.DeliveredElapsed {
		t.Errorf("suspect feedback did not speed delivery: %v -> %v",
			first.DeliveredElapsed, second.DeliveredElapsed)
	}
	if second.DeliveredElapsed > 500*time.Millisecond {
		t.Errorf("second broadcast still slow: %v", second.DeliveredElapsed)
	}
}

func TestSuspectExpires(t *testing.T) {
	e, c, m := newMaster(14, 50, 1)
	m.Start()
	e.RunUntil(time.Second)
	dead := c.Computes()[0]
	c.Fail(dead)
	m.Broadcast(c.Computes(), 128, nil)
	e.RunUntil(e.Now() + 5*time.Minute)
	if !m.Suspected(dead) {
		t.Fatal("not suspected")
	}
	m.Stop() // no heartbeats re-marking it
	e.RunUntil(e.Now() + SuspectTTL + time.Minute)
	if m.Suspected(dead) {
		t.Error("suspicion did not expire")
	}
}

func TestDisableSuspectFeedback(t *testing.T) {
	e := simnet.NewEngine(15)
	c := cluster.New(e, cluster.Config{Computes: 50, Satellites: 1})
	cfg := DefaultConfig()
	cfg.DisableSuspectFeedback = true
	m := NewMaster(c, cfg, nil)
	m.Start()
	e.RunUntil(time.Second)
	dead := c.Computes()[0]
	c.Fail(dead)
	m.Broadcast(c.Computes(), 128, nil)
	e.RunUntil(e.Now() + 5*time.Minute)
	if m.Suspected(dead) {
		t.Error("suspect feedback ran despite being disabled")
	}
}

func TestSatelliteMemoryModel(t *testing.T) {
	e, c, m := newMaster(16, 1000, 2)
	m.Start()
	e.RunUntil(time.Second)
	sat := c.Satellites()[0]
	sm := &c.Node(sat).Meter
	if sm.VMem() < m.Config().SatelliteBaseVMem {
		t.Error("satellite base vmem not charged")
	}
	base := sm.RSS()
	m.Broadcast(c.Computes(), 1024, nil)
	e.RunUntil(e.Now() + time.Minute)
	if sm.RSS() <= base {
		t.Error("satellite RSS watermark did not grow with a task")
	}
}

func TestShutdownSatellite(t *testing.T) {
	e, c, m := newMaster(17, 100, 2)
	m.Start()
	e.RunUntil(time.Second)
	target := c.Satellites()[0]
	acked := false
	if err := m.ShutdownSatellite(target, func(ok bool) { acked = ok }); err != nil {
		t.Fatal(err)
	}
	e.RunUntil(2 * time.Second)
	if !acked {
		t.Error("shutdown command not delivered")
	}
	if st := m.Pool.Get(target).State(); st != satellite.Down {
		t.Fatalf("state = %v, want DOWN", st)
	}
	// Broadcasts route around the DOWN satellite.
	var res comm.Result
	m.Broadcast(c.Computes(), 256, func(r comm.Result) { res = r })
	e.RunUntil(time.Minute)
	if res.Delivered != 100 {
		t.Fatalf("delivered %d with one satellite down", res.Delivered)
	}
	// Unknown node errors.
	if err := m.ShutdownSatellite(c.Computes()[0], nil); err == nil {
		t.Error("shutdown of a compute node accepted")
	}
}
