// Package controller is the complete ESlurm control daemon: the layer a
// deployment actually runs. It composes the subsystems the rest of this
// repository provides —
//
//   - jobs: the job table, lifecycle state machine and multifactor
//     priority,
//   - alloc: concrete node selection (topology-aware by default),
//   - estimate: the runtime-estimation framework steering walltimes,
//   - core: the satellite-relayed master for launch/termination
//     broadcasts,
//
// — into an event-driven scheduling loop with priority ordering and EASY
// backfill. Jobs submitted through Submit flow PENDING → CONFIGURING →
// RUNNING → COMPLETING → COMPLETED (or TIMEOUT at their applied walltime),
// with every launch and termination carried by real satellite broadcasts
// on the simulated cluster.
//
// Determinism: the daemon is driven entirely by events on one simnet
// engine and breaks priority ties by job ID, so a given trace and seed
// replay to the identical schedule.
package controller

import (
	"fmt"
	"sort"
	"time"

	"eslurm/internal/alloc"
	"eslurm/internal/cluster"
	"eslurm/internal/comm"
	"eslurm/internal/core"
	"eslurm/internal/estimate"
	"eslurm/internal/jobs"
	"eslurm/internal/simnet"
	"eslurm/internal/trace"
)

// Config parameterizes the controller.
type Config struct {
	// SchedInterval is the periodic scheduling-pass cadence (event-driven
	// passes also run on submissions and completions).
	SchedInterval time.Duration
	// Priority weights the pending queue.
	Priority jobs.PriorityConfig
	// UseEstimator enables the runtime-estimation framework for walltime
	// planning; otherwise user estimates rule.
	UseEstimator bool
	// Estimator configures the framework when enabled.
	Estimator estimate.FrameworkConfig
	// KillAtLimit enforces the applied walltime.
	KillAtLimit bool
	// Partitions carves the cluster into named scheduling domains; empty
	// means one default "batch" partition over every compute node.
	Partitions []Partition
}

func (c Config) withDefaults() Config {
	if c.SchedInterval == 0 {
		c.SchedInterval = 30 * time.Second
	}
	return c
}

// JobSpec describes one submission.
type JobSpec struct {
	Name string
	User string
	// Partition routes the job; empty uses the default partition.
	Partition    string
	Nodes        int
	Cores        int
	UserEstimate time.Duration
	// Runtime is the job's (simulated) true runtime.
	Runtime time.Duration
}

// Metrics accumulates controller-level outcomes.
type Metrics struct {
	Submitted, Started, Completed, TimedOut, Rejected int
	WaitSum                                           time.Duration
	// SpawnSum accumulates launch-broadcast latencies.
	SpawnSum  time.Duration
	SpawnReps int
}

// AvgWait returns the mean queue wait of started jobs.
func (m *Metrics) AvgWait() time.Duration {
	if m.Started == 0 {
		return 0
	}
	return m.WaitSum / time.Duration(m.Started)
}

// AvgSpawn returns the mean launch-broadcast latency.
func (m *Metrics) AvgSpawn() time.Duration {
	if m.SpawnReps == 0 {
		return 0
	}
	return m.SpawnSum / time.Duration(m.SpawnReps)
}

// pendingInfo carries scheduler-side state for a queued job.
type pendingInfo struct {
	spec     JobSpec
	job      *jobs.Job
	part     *partitionState
	walltime time.Duration
}

type runningInfo struct {
	job      *jobs.Job
	nodes    []cluster.NodeID
	limitEnd time.Duration
}

// Controller is the assembled daemon.
type Controller struct {
	Engine   *simnet.Engine
	Cluster  *cluster.Cluster
	Master   *core.Master
	Registry *jobs.Registry
	// Allocator is the default partition's allocator (kept for
	// single-partition callers; partition-routed jobs use their own).
	Allocator alloc.Allocator
	Framework *estimate.Framework

	cfg         Config
	metrics     Metrics
	pending     map[jobs.ID]*pendingInfo
	running     map[jobs.ID]*runningInfo
	partitions  map[string]*partitionState
	defaultPart string
	ticker      *simnet.Ticker
}

// New assembles a controller over a cluster with the given master and
// fallback allocator (used by the implicit default partition when
// cfg.Partitions is empty). If cfg.UseEstimator is set a fresh framework
// is created.
func New(c *cluster.Cluster, m *core.Master, a alloc.Allocator, cfg Config) (*Controller, error) {
	cfg = cfg.withDefaults()
	ctl := &Controller{
		Engine:   c.Engine,
		Cluster:  c,
		Master:   m,
		Registry: jobs.NewRegistry(cfg.Priority, 0),
		cfg:      cfg,
		pending:  make(map[jobs.ID]*pendingInfo),
		running:  make(map[jobs.ID]*runningInfo),
	}
	if err := ctl.buildPartitions(cfg.Partitions, a); err != nil {
		return nil, err
	}
	ctl.Allocator = ctl.partitions[ctl.defaultPart].allocator
	if cfg.UseEstimator {
		ctl.Framework = estimate.NewFramework(cfg.Estimator)
	}
	return ctl, nil
}

// Start boots the master daemon and the periodic scheduling pass.
func (ctl *Controller) Start() {
	ctl.Master.Start()
	ctl.ticker = ctl.Engine.Every(ctl.cfg.SchedInterval, ctl.schedule)
}

// Stop halts periodic activity.
func (ctl *Controller) Stop() {
	if ctl.ticker != nil {
		ctl.ticker.Stop()
	}
	ctl.Master.Stop()
}

// Metrics returns a copy of the accumulated outcomes.
func (ctl *Controller) Metrics() Metrics { return ctl.metrics }

// QueueDepth returns the number of pending jobs.
func (ctl *Controller) QueueDepth() int { return len(ctl.pending) }

// RunningCount returns the number of running jobs.
func (ctl *Controller) RunningCount() int { return len(ctl.running) }

// Submit enqueues a job. Invalid requests (oversized, unknown partition,
// beyond the partition's MaxTime) are rejected immediately, as a real RM
// rejects them at submit time.
func (ctl *Controller) Submit(spec JobSpec) (jobs.ID, error) {
	if spec.Nodes <= 0 {
		ctl.metrics.Rejected++
		return 0, fmt.Errorf("controller: job needs a positive node count")
	}
	ps, err := ctl.resolvePartition(&spec)
	if err != nil {
		ctl.metrics.Rejected++
		return 0, err
	}
	now := ctl.Engine.Now()
	j := ctl.Registry.Submit(spec.Name, spec.User, ps.def.Name, spec.Nodes, spec.Cores, spec.UserEstimate, now)
	ctl.metrics.Submitted++

	// Walltime planning: the estimation framework's real-time module when
	// enabled (model estimate behind the AEA gate), else the user request.
	wall := spec.UserEstimate
	if ctl.Framework != nil {
		tj := specToTraceJob(spec, now)
		if p := ctl.Framework.Predict(&tj); p.Used > 0 {
			wall = p.Used
		}
	}
	if wall <= 0 {
		wall = 24 * time.Hour
	}
	if ps.def.MaxTime > 0 && wall > ps.def.MaxTime {
		wall = ps.def.MaxTime
	}
	ctl.pending[j.ID] = &pendingInfo{spec: spec, job: j, part: ps, walltime: wall}
	ctl.schedule()
	return j.ID, nil
}

func specToTraceJob(spec JobSpec, now time.Duration) trace.Job {
	return trace.Job{
		Name: spec.Name, User: spec.User, Nodes: spec.Nodes, Cores: spec.Cores,
		Submit: now, UserEstimate: spec.UserEstimate, Runtime: spec.Runtime,
	}
}

// schedule runs one priority + EASY-backfill pass per partition:
// partitions are independent scheduling domains.
func (ctl *Controller) schedule() {
	now := ctl.Engine.Now()
	order := ctl.Registry.Pending(now)
	if len(order) == 0 {
		return
	}
	for _, ps := range ctl.partitions {
		ctl.schedulePartition(ps, order, now)
	}
}

func (ctl *Controller) schedulePartition(ps *partitionState, order []*jobs.Job, now time.Duration) {
	// Start in priority order while resources last.
	idx := 0
	for ; idx < len(order); idx++ {
		info := ctl.pending[order[idx].ID]
		if info == nil || info.part != ps {
			continue
		}
		if info.spec.Nodes > ps.allocator.FreeCount() {
			break
		}
		ctl.start(info)
	}
	if idx >= len(order) {
		return
	}
	// EASY backfill behind the blocked head.
	head := ctl.pending[order[idx].ID]
	if head == nil || head.part != ps {
		return
	}
	shadow, extra := ctl.reservation(ps, head.spec.Nodes)
	for _, j := range order[idx+1:] {
		info := ctl.pending[j.ID]
		if info == nil || info.part != ps || info.spec.Nodes > ps.allocator.FreeCount() {
			continue
		}
		endsBy := now + info.walltime
		if endsBy <= shadow || info.spec.Nodes <= extra {
			ctl.start(info)
			if info.spec.Nodes <= extra {
				extra -= info.spec.Nodes
			}
		}
	}
}

// reservation computes the head job's shadow time and the spare nodes at
// that time within one partition.
func (ctl *Controller) reservation(ps *partitionState, n int) (time.Duration, int) {
	avail := ps.allocator.FreeCount()
	if n <= avail {
		return ctl.Engine.Now(), avail - n
	}
	// Collect running jobs by walltime end. The job ID breaks end-time
	// ties: without it, equal-end jobs keep random map order and the
	// (shadow, extra) result varies between identically seeded runs.
	type rel struct {
		end   time.Duration
		nodes int
		id    jobs.ID
	}
	var rels []rel
	for r := range ps.running {
		rels = append(rels, rel{r.limitEnd, len(r.nodes), r.job.ID})
	}
	sort.Slice(rels, func(i, j int) bool {
		if rels[i].end != rels[j].end {
			return rels[i].end < rels[j].end
		}
		return rels[i].id < rels[j].id
	})
	for _, r := range rels {
		avail += r.nodes
		if avail >= n {
			return r.end, avail - n
		}
	}
	return ctl.Engine.Now() + 365*24*time.Hour, 0
}

// start allocates nodes and drives the job through its lifecycle.
func (ctl *Controller) start(info *pendingInfo) {
	ps := info.part
	nodes, ok := ps.allocator.Alloc(info.spec.Nodes)
	if !ok {
		return
	}
	now := ctl.Engine.Now()
	j := info.job
	delete(ctl.pending, j.ID)
	ctl.Registry.Transition(j, jobs.Configuring, now)
	ctl.metrics.Started++
	ctl.metrics.WaitSum += now - j.SubmitAt

	run := &runningInfo{job: j, nodes: nodes, limitEnd: now + info.walltime}
	ctl.running[j.ID] = run
	ps.running[run] = struct{}{}

	ctl.Master.LoadJob(nodes, func(r comm.Result) {
		spawnAt := ctl.Engine.Now()
		ctl.metrics.SpawnSum += r.DeliveredElapsed
		ctl.metrics.SpawnReps++
		ctl.Registry.Transition(j, jobs.Running, spawnAt)

		// Kill policy (matches internal/sched): the planned walltime
		// steers scheduling, but a job is never killed before its own
		// request; the model estimate is enforced only when the user gave
		// no estimate.
		limit := info.walltime
		if info.spec.UserEstimate > limit {
			limit = info.spec.UserEstimate
		}
		runtime := info.spec.Runtime
		timedOut := false
		if ctl.cfg.KillAtLimit && limit < runtime {
			runtime = limit
			timedOut = true
		}
		ctl.Engine.After(runtime, func() {
			endState := jobs.Completed
			if timedOut {
				endState = jobs.Timeout
			}
			ctl.Registry.Transition(j, jobs.Completing, ctl.Engine.Now())
			ctl.Master.TerminateJob(nodes, func(comm.Result) {
				done := ctl.Engine.Now()
				if endState == jobs.Completed {
					// Completing -> Completed; Timeout is reached from
					// Running in the lifecycle, so map it to Failed-ish
					// bookkeeping via Completing -> Completed with the
					// metric recorded separately.
					ctl.Registry.Transition(j, jobs.Completed, done)
					ctl.metrics.Completed++
				} else {
					ctl.Registry.Transition(j, jobs.Failed, done)
					ctl.metrics.TimedOut++
				}
				delete(ctl.running, j.ID)
				delete(ps.running, run)
				ps.allocator.Free(nodes)
				// Feed the record module with the observed outcome.
				if ctl.Framework != nil {
					tj := specToTraceJob(info.spec, j.SubmitAt)
					tj.Runtime = runtime
					ctl.Framework.Complete(&tj)
				}
				ctl.schedule()
			})
		})
	})
}
