package controller

import (
	"testing"
	"time"

	"eslurm/internal/alloc"
	"eslurm/internal/cluster"
	"eslurm/internal/core"
	"eslurm/internal/estimate"
	"eslurm/internal/jobs"
	"eslurm/internal/simnet"
	"eslurm/internal/topo"
	"eslurm/internal/trace"
)

func newController(seed int64, computes int, cfg Config) (*simnet.Engine, *cluster.Cluster, *Controller) {
	e := simnet.NewEngine(seed)
	c := cluster.New(e, cluster.Config{Computes: computes, Satellites: 2})
	m := core.NewMaster(c, core.DefaultConfig(), nil)
	a := alloc.NewTopoAware(c.Computes(), topo.Default())
	ctl, err := New(c, m, a, cfg)
	if err != nil {
		panic(err)
	}
	ctl.Start()
	e.RunUntil(time.Second)
	return e, c, ctl
}

func TestSingleJobLifecycle(t *testing.T) {
	e, _, ctl := newController(1, 64, Config{})
	id, err := ctl.Submit(JobSpec{
		Name: "cfd", User: "alice", Nodes: 16, Cores: 384,
		UserEstimate: time.Hour, Runtime: 30 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	e.RunUntil(2 * time.Hour)
	j := ctl.Registry.Get(id)
	if j == nil || j.State() != jobs.Completed {
		t.Fatalf("job state = %v", j.State())
	}
	m := ctl.Metrics()
	if m.Completed != 1 || m.TimedOut != 0 {
		t.Fatalf("metrics = %+v", m)
	}
	if m.AvgSpawn() <= 0 {
		t.Error("spawn latency not recorded")
	}
	if ctl.RunningCount() != 0 || ctl.QueueDepth() != 0 {
		t.Error("controller state not drained")
	}
	if ctl.Allocator.FreeCount() != 64 {
		t.Error("nodes leaked")
	}
}

func TestOversizedRejected(t *testing.T) {
	_, _, ctl := newController(2, 16, Config{})
	if _, err := ctl.Submit(JobSpec{Name: "x", User: "u", Nodes: 32,
		UserEstimate: time.Hour, Runtime: time.Minute}); err == nil {
		t.Fatal("oversized submission accepted")
	}
	if ctl.Metrics().Rejected != 1 {
		t.Error("rejection not counted")
	}
}

func TestWalltimeKill(t *testing.T) {
	e, _, ctl := newController(3, 32, Config{KillAtLimit: true})
	id, _ := ctl.Submit(JobSpec{Name: "x", User: "u", Nodes: 4, Cores: 96,
		UserEstimate: 10 * time.Minute, Runtime: time.Hour})
	e.RunUntil(2 * time.Hour)
	j := ctl.Registry.Get(id)
	if j.State() != jobs.Failed {
		t.Fatalf("killed job state = %v", j.State())
	}
	if ctl.Metrics().TimedOut != 1 {
		t.Error("timeout not counted")
	}
	if ctl.Allocator.FreeCount() != 32 {
		t.Error("killed job leaked nodes")
	}
}

func TestQueueingAndBackfill(t *testing.T) {
	e, _, ctl := newController(4, 8, Config{})
	// J1 takes 6/8 nodes for 2h; J2 (8 nodes) must wait; J3 (2 nodes, 1h)
	// backfills.
	ctl.Submit(JobSpec{Name: "j1", User: "u", Nodes: 6, UserEstimate: 2 * time.Hour, Runtime: 2 * time.Hour})
	e.RunUntil(time.Minute)
	ctl.Submit(JobSpec{Name: "j2", User: "u", Nodes: 8, UserEstimate: time.Hour, Runtime: time.Hour})
	e.RunUntil(2 * time.Minute)
	id3, _ := ctl.Submit(JobSpec{Name: "j3", User: "u", Nodes: 2, UserEstimate: 90 * time.Minute, Runtime: 90 * time.Minute})
	e.RunUntil(10 * time.Minute)
	if ctl.Registry.Get(id3).State() != jobs.Running {
		t.Fatalf("backfill candidate state = %v", ctl.Registry.Get(id3).State())
	}
	e.RunUntil(6 * time.Hour)
	if got := ctl.Metrics().Completed; got != 3 {
		t.Fatalf("completed = %d, want 3", got)
	}
}

func TestBackfillDoesNotDelayHead(t *testing.T) {
	e, _, ctl := newController(5, 8, Config{})
	ctl.Submit(JobSpec{Name: "j1", User: "u", Nodes: 7, UserEstimate: time.Hour, Runtime: time.Hour})
	e.RunUntil(time.Minute)
	head, _ := ctl.Submit(JobSpec{Name: "head", User: "u", Nodes: 8, UserEstimate: time.Hour, Runtime: time.Hour})
	e.RunUntil(2 * time.Minute)
	// This 1-node job would end long after the head's reservation and
	// needs the head's nodes: it must NOT start.
	long, _ := ctl.Submit(JobSpec{Name: "long", User: "u", Nodes: 1, UserEstimate: 5 * time.Hour, Runtime: 5 * time.Hour})
	e.RunUntil(30 * time.Minute)
	if ctl.Registry.Get(long).State() != jobs.Pending {
		t.Fatal("backfill delayed the head job")
	}
	e.RunUntil(90 * time.Minute)
	if ctl.Registry.Get(head).State() != jobs.Running {
		t.Fatalf("head state = %v at t=90m", ctl.Registry.Get(head).State())
	}
}

func TestPriorityOrderDrivesStarts(t *testing.T) {
	e, _, ctl := newController(6, 8, Config{})
	// Saturate the cluster first.
	ctl.Submit(JobSpec{Name: "fill", User: "w", Nodes: 8, UserEstimate: time.Hour, Runtime: time.Hour})
	e.RunUntil(time.Minute)
	// A small job from a fresh user vs an equal job from a user with a
	// huge fair-share debt: the fresh user starts first.
	heavy, _ := ctl.Submit(JobSpec{Name: "h", User: "heavy", Nodes: 8, UserEstimate: time.Hour, Runtime: 30 * time.Minute})
	light, _ := ctl.Submit(JobSpec{Name: "l", User: "light", Nodes: 8, UserEstimate: time.Hour, Runtime: 30 * time.Minute})
	// Charge the heavy user an enormous decayed usage.
	ctl.Registry.Fairshare().Charge("heavy", 1e10, e.Now())
	e.RunUntil(90 * time.Minute)
	lj, hj := ctl.Registry.Get(light), ctl.Registry.Get(heavy)
	if lj.StartAt >= hj.StartAt && hj.State() != jobs.Pending {
		t.Errorf("light user (start %v) did not beat heavy user (start %v)", lj.StartAt, hj.StartAt)
	}
}

func TestEstimatorIntegration(t *testing.T) {
	e, _, ctl := newController(7, 256, Config{
		UseEstimator: true,
		Estimator:    estimate.FrameworkConfig{MinTrain: 40, RefreshEvery: time.Hour},
		KillAtLimit:  true,
	})
	// Feed a steady stream of identical jobs; after the framework trains,
	// its walltimes take over from the (inflated) user estimates.
	rng := e.Rand("test/jobs")
	submit := func(at time.Duration) {
		e.Schedule(at, func() {
			ctl.Submit(JobSpec{
				Name: "sweep", User: "u", Nodes: 1 + rng.Intn(4), Cores: 24,
				UserEstimate: 4 * time.Hour, Runtime: 10 * time.Minute,
			})
		})
	}
	for i := 0; i < 200; i++ {
		submit(time.Second + time.Duration(i)*4*time.Minute)
	}
	e.RunUntil(20 * time.Hour)
	if ctl.Framework.Generations == 0 {
		t.Fatal("framework never trained")
	}
	m := ctl.Metrics()
	if m.Completed < 190 {
		t.Fatalf("completed = %d", m.Completed)
	}
	// The tight slack keeps kills rare despite model walltimes.
	if m.TimedOut > 10 {
		t.Errorf("timeouts = %d, want few", m.TimedOut)
	}
}

func TestTraceReplayThroughController(t *testing.T) {
	e, _, ctl := newController(8, 512, Config{KillAtLimit: true, SchedInterval: 5 * time.Minute})
	tr := trace.Generate(trace.Tianhe2AConfig(400))
	for i := range tr.Jobs {
		j := tr.Jobs[i]
		if j.Nodes > 512 {
			continue
		}
		e.Schedule(time.Second+j.Submit, func() {
			ctl.Submit(JobSpec{Name: j.Name, User: j.User, Nodes: j.Nodes,
				Cores: j.Cores, UserEstimate: j.UserEstimate, Runtime: j.Runtime})
		})
	}
	e.RunUntil(40 * 24 * time.Hour)
	m := ctl.Metrics()
	if m.Completed+m.TimedOut < m.Submitted*9/10 {
		t.Fatalf("only %d/%d jobs finished", m.Completed+m.TimedOut, m.Submitted)
	}
	if ctl.Allocator.FreeCount() != 512 {
		t.Error("nodes leaked after replay")
	}
}
