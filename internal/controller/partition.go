package controller

import (
	"fmt"
	"time"

	"eslurm/internal/alloc"
	"eslurm/internal/cluster"
	"eslurm/internal/config"
	"eslurm/internal/topo"
)

// Partition is a named slice of the cluster with its own limits — the
// slurm.conf PartitionName record realized.
type Partition struct {
	Name  string
	Nodes []cluster.NodeID
	// MaxTime caps a job's walltime request; zero means unlimited.
	MaxTime time.Duration
	// Default receives jobs that name no partition.
	Default bool
}

// partitionState is the controller's per-partition scheduling state.
type partitionState struct {
	def       Partition
	allocator alloc.Allocator
	running   map[*runningInfo]struct{}
}

// PartitionsFromConfig maps a parsed configuration's partitions onto the
// simulated cluster: the i-th configured compute hostname is the i-th
// compute NodeID. Hosts outside any NodeName record are rejected.
func PartitionsFromConfig(cfg *config.Config, c *cluster.Cluster) ([]Partition, error) {
	// hostname -> NodeID by configuration order.
	byHost := make(map[string]cluster.NodeID)
	computes := c.Computes()
	idx := 0
	for _, nd := range cfg.Nodes {
		for _, h := range nd.Names {
			if idx >= len(computes) {
				return nil, fmt.Errorf("controller: config names %d+ compute nodes, cluster has %d",
					idx+1, len(computes))
			}
			byHost[h] = computes[idx]
			idx++
		}
	}
	var out []Partition
	for _, pd := range cfg.Partitions {
		p := Partition{Name: pd.Name, MaxTime: pd.MaxTime, Default: pd.Default}
		for _, h := range pd.Nodes {
			id, ok := byHost[h]
			if !ok {
				return nil, fmt.Errorf("controller: partition %q references unknown host %q", pd.Name, h)
			}
			p.Nodes = append(p.Nodes, id)
		}
		out = append(out, p)
	}
	return out, nil
}

// buildPartitions materializes the controller's partition table. With no
// configured partitions, every compute node lands in one default "batch"
// partition backed by the externally supplied allocator; otherwise each
// partition gets its own topology-aware allocator over its node set.
func (ctl *Controller) buildPartitions(parts []Partition, fallback alloc.Allocator) error {
	ctl.partitions = make(map[string]*partitionState)
	if len(parts) == 0 {
		ctl.partitions["batch"] = &partitionState{
			def:       Partition{Name: "batch", Nodes: ctl.Cluster.Computes(), Default: true},
			allocator: fallback,
			running:   make(map[*runningInfo]struct{}),
		}
		ctl.defaultPart = "batch"
		return nil
	}
	for _, p := range parts {
		if _, dup := ctl.partitions[p.Name]; dup {
			return fmt.Errorf("controller: duplicate partition %q", p.Name)
		}
		if len(p.Nodes) == 0 {
			return fmt.Errorf("controller: partition %q has no nodes", p.Name)
		}
		ctl.partitions[p.Name] = &partitionState{
			def:       p,
			allocator: alloc.NewTopoAware(p.Nodes, topo.Default()),
			running:   make(map[*runningInfo]struct{}),
		}
		if p.Default && ctl.defaultPart == "" {
			ctl.defaultPart = p.Name
		}
	}
	if ctl.defaultPart == "" {
		// First configured partition becomes the default, as in Slurm when
		// none is flagged.
		ctl.defaultPart = parts[0].Name
	}
	return nil
}

// resolvePartition picks the job's partition and validates the request
// against it.
func (ctl *Controller) resolvePartition(spec *JobSpec) (*partitionState, error) {
	name := spec.Partition
	if name == "" {
		name = ctl.defaultPart
	}
	ps, ok := ctl.partitions[name]
	if !ok {
		return nil, fmt.Errorf("controller: unknown partition %q", name)
	}
	if spec.Nodes > len(ps.def.Nodes) {
		return nil, fmt.Errorf("controller: job needs %d nodes, partition %q has %d",
			spec.Nodes, name, len(ps.def.Nodes))
	}
	if ps.def.MaxTime > 0 && spec.UserEstimate > ps.def.MaxTime {
		return nil, fmt.Errorf("controller: requested %v exceeds partition %q MaxTime %v",
			spec.UserEstimate, name, ps.def.MaxTime)
	}
	return ps, nil
}
