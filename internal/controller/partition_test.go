package controller

import (
	"strings"
	"testing"
	"time"

	"eslurm/internal/alloc"
	"eslurm/internal/cluster"
	"eslurm/internal/config"
	"eslurm/internal/core"
	"eslurm/internal/jobs"
	"eslurm/internal/simnet"
	"eslurm/internal/topo"
)

func twoPartitions(c *cluster.Cluster) []Partition {
	comps := c.Computes()
	return []Partition{
		{Name: "batch", Nodes: comps[:48], MaxTime: 2 * time.Hour, Default: true},
		{Name: "gpu", Nodes: comps[48:], MaxTime: 0},
	}
}

func TestPartitionRouting(t *testing.T) {
	e := simnet.NewEngine(32)
	c := cluster.New(e, cluster.Config{Computes: 64, Satellites: 1})
	m := core.NewMaster(c, core.DefaultConfig(), nil)
	a := alloc.NewTopoAware(c.Computes(), topo.Default())
	ctl, err := New(c, m, a, Config{Partitions: twoPartitions(c), KillAtLimit: true})
	if err != nil {
		t.Fatal(err)
	}
	ctl.Start()
	e.RunUntil(time.Second)

	// Default routing.
	id1, err := ctl.Submit(JobSpec{Name: "a", User: "u", Nodes: 8,
		UserEstimate: time.Hour, Runtime: 10 * time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	// Explicit partition.
	id2, err := ctl.Submit(JobSpec{Name: "b", User: "u", Partition: "gpu", Nodes: 8,
		UserEstimate: time.Hour, Runtime: 10 * time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	e.RunUntil(time.Hour)
	j1, j2 := ctl.Registry.Get(id1), ctl.Registry.Get(id2)
	if j1.Partition != "batch" || j2.Partition != "gpu" {
		t.Fatalf("partitions = %q, %q", j1.Partition, j2.Partition)
	}
	if j1.State() != jobs.Completed || j2.State() != jobs.Completed {
		t.Fatalf("states = %v, %v", j1.State(), j2.State())
	}
}

func TestPartitionRejections(t *testing.T) {
	e := simnet.NewEngine(33)
	c := cluster.New(e, cluster.Config{Computes: 64, Satellites: 1})
	m := core.NewMaster(c, core.DefaultConfig(), nil)
	a := alloc.NewTopoAware(c.Computes(), topo.Default())
	ctl, err := New(c, m, a, Config{Partitions: twoPartitions(c)})
	if err != nil {
		t.Fatal(err)
	}
	ctl.Start()
	e.RunUntil(time.Second)

	cases := []JobSpec{
		{Name: "x", User: "u", Partition: "nope", Nodes: 1, UserEstimate: time.Hour, Runtime: time.Minute},
		{Name: "x", User: "u", Nodes: 64, UserEstimate: time.Hour, Runtime: time.Minute},    // > batch's 48
		{Name: "x", User: "u", Nodes: 1, UserEstimate: 5 * time.Hour, Runtime: time.Minute}, // > MaxTime 2h
	}
	for i, spec := range cases {
		if _, err := ctl.Submit(spec); err == nil {
			t.Errorf("case %d accepted: %+v", i, spec)
		}
	}
	if ctl.Metrics().Rejected != len(cases) {
		t.Errorf("rejected = %d", ctl.Metrics().Rejected)
	}
	// The gpu partition has no MaxTime: the long job is fine there.
	if _, err := ctl.Submit(JobSpec{Name: "x", User: "u", Partition: "gpu", Nodes: 1,
		UserEstimate: 5 * time.Hour, Runtime: time.Minute}); err != nil {
		t.Errorf("unlimited partition rejected a long job: %v", err)
	}
}

func TestPartitionsAreIndependentDomains(t *testing.T) {
	e := simnet.NewEngine(34)
	c := cluster.New(e, cluster.Config{Computes: 64, Satellites: 1})
	m := core.NewMaster(c, core.DefaultConfig(), nil)
	a := alloc.NewTopoAware(c.Computes(), topo.Default())
	ctl, err := New(c, m, a, Config{Partitions: twoPartitions(c)})
	if err != nil {
		t.Fatal(err)
	}
	ctl.Start()
	e.RunUntil(time.Second)

	// Saturate batch; a gpu job must still start immediately.
	ctl.Submit(JobSpec{Name: "fill", User: "u", Nodes: 48, UserEstimate: 2 * time.Hour, Runtime: 90 * time.Minute})
	e.RunUntil(2 * time.Minute)
	blocked, _ := ctl.Submit(JobSpec{Name: "wait", User: "u", Nodes: 8, UserEstimate: time.Hour, Runtime: time.Minute})
	gpu, _ := ctl.Submit(JobSpec{Name: "go", User: "u", Partition: "gpu", Nodes: 8, UserEstimate: time.Hour, Runtime: time.Minute})
	e.RunUntil(10 * time.Minute)
	if ctl.Registry.Get(gpu).State() == jobs.Pending {
		t.Error("gpu job blocked by batch saturation")
	}
	if ctl.Registry.Get(blocked).State() != jobs.Pending {
		t.Error("batch job ran without capacity")
	}
}

func TestDuplicateAndEmptyPartitionsRejected(t *testing.T) {
	e := simnet.NewEngine(35)
	c := cluster.New(e, cluster.Config{Computes: 16, Satellites: 1})
	m := core.NewMaster(c, core.DefaultConfig(), nil)
	a := alloc.NewTopoAware(c.Computes(), topo.Default())
	comps := c.Computes()
	if _, err := New(c, m, a, Config{Partitions: []Partition{
		{Name: "p", Nodes: comps[:8]}, {Name: "p", Nodes: comps[8:]},
	}}); err == nil {
		t.Error("duplicate partitions accepted")
	}
	if _, err := New(c, m, a, Config{Partitions: []Partition{{Name: "empty"}}}); err == nil {
		t.Error("empty partition accepted")
	}
}

func TestPartitionsFromConfig(t *testing.T) {
	conf := `
SatelliteNodes=sat01
NodeName=cn[1-8] CPUs=4 RealMemory=1024
NodeName=gpu[1-4] CPUs=8 RealMemory=2048
PartitionName=batch Nodes=cn[1-8] MaxTime=120 Default=YES
PartitionName=gpu Nodes=gpu[1-4] MaxTime=INFINITE
`
	cfg, err := config.Parse(strings.NewReader(conf))
	if err != nil {
		t.Fatal(err)
	}
	e := simnet.NewEngine(36)
	c := cluster.New(e, cluster.Config{Computes: cfg.ComputeCount(), Satellites: 1})
	parts, err := PartitionsFromConfig(cfg, c)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 2 || len(parts[0].Nodes) != 8 || len(parts[1].Nodes) != 4 {
		t.Fatalf("parts = %+v", parts)
	}
	if !parts[0].Default || parts[0].MaxTime != 120*time.Minute {
		t.Errorf("batch partition = %+v", parts[0])
	}
	// Disjoint node sets.
	seen := map[cluster.NodeID]bool{}
	for _, p := range parts {
		for _, id := range p.Nodes {
			if seen[id] {
				t.Fatal("partitions share a node")
			}
			seen[id] = true
		}
	}
}

func TestPartitionsFromConfigUnknownHost(t *testing.T) {
	conf := `
NodeName=cn[1-4] CPUs=4 RealMemory=1024
PartitionName=p Nodes=cn[1-9]
`
	cfg, err := config.Parse(strings.NewReader(conf))
	if err != nil {
		t.Fatal(err)
	}
	e := simnet.NewEngine(37)
	c := cluster.New(e, cluster.Config{Computes: 4, Satellites: 1})
	if _, err := PartitionsFromConfig(cfg, c); err == nil {
		t.Error("unknown host accepted")
	}
}
