// Package rm defines the resource-manager interface the experiment
// harness drives, and behavioural models of the five centralized RMs the
// paper compares against (SGE 8.1.9, Torque 6.13, OpenPBS 20.0.1, LSF
// 10.0.1, Slurm 20.11.7).
//
// The models encode each RM's *architecture* — who opens connections to
// whom, with what parallelism and polling cadence, and how much master
// state it keeps — because those architectural differences are exactly
// what Fig. 7, Fig. 9 and Fig. 10 measure. Absolute constants are
// calibrated to the magnitudes the paper reports at 4K nodes (e.g. Slurm's
// 10 GB virtual / Fig. 7c, SGE's and OpenPBS's node-count-sized persistent
// socket pools / Fig. 7e, ESlurm's <100 sockets).
//
// Determinism: every model is driven by events on the harness's simnet
// engine — polling cadences, connection churn and state growth replay
// bit-identically from the seed, which is what lets Fig. 7/9/10 rows be
// regenerated exactly.
package rm

import (
	"time"

	"eslurm/internal/cluster"
	"eslurm/internal/comm"
	"eslurm/internal/core"
	"eslurm/internal/predict"
	"eslurm/internal/simnet"
)

// RM is the uniform control surface the experiment drivers use.
type RM interface {
	// Name identifies the RM in tables and figures.
	Name() string
	// Start boots the control daemon: allocate base memory, establish
	// connections, begin heartbeating.
	Start()
	// Stop halts periodic activity.
	Stop()
	// LoadJob spawns a job on the given nodes. done (may be nil) receives
	// the time from the call until every node has launched its processes.
	LoadJob(nodes []cluster.NodeID, done func(spawn time.Duration))
	// TerminateJob tears a job down; done receives the time until all
	// nodes have reclaimed resources.
	TerminateJob(nodes []cluster.NodeID, done func(reclaim time.Duration))
	// Meter exposes the master daemon's resource meter.
	Meter() *cluster.ResourceMeter
}

// Profile captures a centralized RM's architectural constants.
type Profile struct {
	Name string
	// LaunchWidth is the fan-out/parallelism of job-launch messaging: the
	// maximum concurrent connections the master daemon uses when
	// contacting execution daemons. Low values (SGE/Torque/OpenPBS) make
	// job occupation time explode with job size (Fig. 7f).
	LaunchWidth int
	// TreeLaunch routes launch messages over a k-ary forwarding tree
	// (Slurm's slurmd fan-out) instead of direct master connections.
	TreeLaunch bool
	// PersistentConns keeps one master socket open per compute node for
	// the daemon's lifetime (SGE's and OpenPBS's execd channels) — the
	// node-count-sized socket pools of Fig. 7e.
	PersistentConns bool
	// HeartbeatInterval is the status-polling cadence.
	HeartbeatInterval time.Duration
	// HeartbeatCPUPerNode is master CPU burned per node per poll
	// (deserialize + state update).
	HeartbeatCPUPerNode time.Duration
	// Memory model.
	BaseVMem, BaseRSS       int64
	PerNodeVMem, PerNodeRSS int64
	PerJobVMem, PerJobRSS   int64
	// VMemLeakPerJob models allocator growth that is never returned
	// (Slurm's continuously growing slurmctld footprint, §II-B).
	VMemLeakPerJob int64
	// PerNodeLaunchOverhead is the master-side serialized cost of
	// launching one node's processes (RPC marshalling, spawn-ack
	// handling). Combined with a low LaunchWidth this is what makes the
	// PBS-family occupation time explode in Fig. 7f.
	PerNodeLaunchOverhead time.Duration
	// SchedCPUPerJob is the scheduling-pass cost per job event.
	SchedCPUPerJob time.Duration
	// Message sizes.
	LoadMsgBytes, TermMsgBytes, HBMsgBytes int
}

// Centralized is a master-slave RM driven by a Profile.
type Centralized struct {
	cluster *cluster.Cluster
	engine  *simnet.Engine
	prof    Profile
	// b carries control traffic (heartbeats); launchB carries job
	// launches with the profile's per-node overhead and width limit.
	b       *comm.Broadcaster
	launchB *comm.Broadcaster
	hb      *simnet.Ticker
	jobs    int
}

// NewCentralized builds a centralized RM over the cluster. Satellite
// nodes, if any, are ignored: a centralized master talks to every compute
// node itself.
func NewCentralized(c *cluster.Cluster, prof Profile) *Centralized {
	b := comm.NewBroadcaster(c)
	launchB := comm.NewBroadcaster(c)
	if prof.LaunchWidth > 0 {
		b.MaxConcurrent = prof.LaunchWidth
		launchB.MaxConcurrent = prof.LaunchWidth
	}
	if prof.PerNodeLaunchOverhead > 0 {
		launchB.SendOverhead = prof.PerNodeLaunchOverhead
	}
	return &Centralized{cluster: c, engine: c.Engine, prof: prof, b: b, launchB: launchB}
}

// Name implements RM.
func (r *Centralized) Name() string { return r.prof.Name }

// Meter implements RM.
func (r *Centralized) Meter() *cluster.ResourceMeter { return &r.cluster.Master().Meter }

// Start implements RM.
func (r *Centralized) Start() {
	m := r.Meter()
	n := int64(len(r.cluster.Computes()))
	m.AddVMem(r.prof.BaseVMem + n*r.prof.PerNodeVMem)
	m.AddRSS(r.prof.BaseRSS + n*r.prof.PerNodeRSS)
	if r.prof.PersistentConns {
		for range r.cluster.Computes() {
			m.OpenSocket()
		}
	}
	if r.prof.HeartbeatInterval > 0 {
		r.hb = r.engine.Every(r.prof.HeartbeatInterval, r.heartbeat)
	}
}

// Stop implements RM.
func (r *Centralized) Stop() {
	if r.hb != nil {
		r.hb.Stop()
	}
}

// heartbeat polls every compute node. Persistent-connection daemons reuse
// their channels; the others open-and-close per poll, producing the bursty
// socket profiles of Fig. 7e.
func (r *Centralized) heartbeat() {
	master := r.cluster.Master().ID
	m := r.Meter()
	m.ChargeCPU(time.Duration(len(r.cluster.Computes())) * r.prof.HeartbeatCPUPerNode)
	if r.prof.PersistentConns {
		for _, id := range r.cluster.Computes() {
			r.cluster.Net.SendPersistent(master, id, r.prof.HBMsgBytes, nil, nil)
		}
		return
	}
	comm.Star{}.Broadcast(r.b, master, r.cluster.Computes(), r.prof.HBMsgBytes, nil)
}

// launchStructure picks the messaging topology for job load/terminate.
func (r *Centralized) launchStructure() comm.Structure {
	if r.prof.TreeLaunch {
		return comm.KTree{Width: 50} // slurmd fan-out default
	}
	return comm.Star{}
}

// LoadJob implements RM.
func (r *Centralized) LoadJob(nodes []cluster.NodeID, done func(time.Duration)) {
	m := r.Meter()
	m.ChargeCPU(r.prof.SchedCPUPerJob)
	m.AddVMem(r.prof.PerJobVMem + r.prof.VMemLeakPerJob)
	m.AddRSS(r.prof.PerJobRSS)
	r.jobs++
	r.launchStructure().Broadcast(r.launchB, r.cluster.Master().ID, nodes, r.prof.LoadMsgBytes,
		func(res comm.Result) {
			if done != nil {
				done(res.DeliveredElapsed)
			}
		})
}

// TerminateJob implements RM.
func (r *Centralized) TerminateJob(nodes []cluster.NodeID, done func(time.Duration)) {
	m := r.Meter()
	m.ChargeCPU(r.prof.SchedCPUPerJob / 2)
	r.launchStructure().Broadcast(r.launchB, r.cluster.Master().ID, nodes, r.prof.TermMsgBytes,
		func(res comm.Result) {
			m.AddVMem(-r.prof.PerJobVMem) // the leak stays
			m.AddRSS(-r.prof.PerJobRSS)
			if r.jobs > 0 {
				r.jobs--
			}
			if done != nil {
				done(res.Elapsed)
			}
		})
}

// ---------------------------------------------------------------------------
// Profiles for the five comparison RMs. Memory/CPU constants reproduce the
// Fig. 7 magnitudes at 4K nodes; topology constants reproduce the Fig. 7f
// occupation-time shapes and Fig. 7e socket profiles.

// SlurmProfile models slurmctld 20.11.7: tree-forwarded messaging, modest
// CPU, but the largest virtual footprint (10 GB at 4K nodes) that only
// grows, and kilo-socket bursts under load.
func SlurmProfile() Profile {
	return Profile{
		Name: "Slurm", LaunchWidth: 1024, TreeLaunch: true, PerNodeLaunchOverhead: 300 * time.Microsecond,
		HeartbeatInterval: 30 * time.Second, HeartbeatCPUPerNode: 3 * time.Microsecond,
		BaseVMem: 4 << 30, BaseRSS: 150 << 20,
		PerNodeVMem: 1536 << 10, PerNodeRSS: 48 << 10,
		PerJobVMem: 640 << 10, PerJobRSS: 64 << 10, VMemLeakPerJob: 96 << 10,
		SchedCPUPerJob: 4 * time.Millisecond,
		LoadMsgBytes:   4096, TermMsgBytes: 1024, HBMsgBytes: 256,
	}
}

// LSFProfile models LSF 10.0.1: mbatchd + lim with frequent load reports —
// higher CPU than Slurm, bursty traffic, mid-sized memory.
func LSFProfile() Profile {
	return Profile{
		Name: "LSF", LaunchWidth: 1024, PerNodeLaunchOverhead: 2 * time.Millisecond,
		HeartbeatInterval: 15 * time.Second, HeartbeatCPUPerNode: 8 * time.Microsecond,
		BaseVMem: 2 << 30, BaseRSS: 250 << 20,
		PerNodeVMem: 512 << 10, PerNodeRSS: 64 << 10,
		PerJobVMem: 384 << 10, PerJobRSS: 48 << 10,
		SchedCPUPerJob: 6 * time.Millisecond,
		LoadMsgBytes:   4096, TermMsgBytes: 1024, HBMsgBytes: 512,
	}
}

// SGEProfile models SGE 8.1.9: qmaster keeps persistent execd channels
// (node-count sockets), polls frequently, and launches with very limited
// parallelism — job occupation explodes with job size.
func SGEProfile() Profile {
	return Profile{
		Name: "SGE", LaunchWidth: 16, PersistentConns: true, PerNodeLaunchOverhead: 90 * time.Millisecond,
		HeartbeatInterval: 10 * time.Second, HeartbeatCPUPerNode: 25 * time.Microsecond,
		BaseVMem: 1 << 30, BaseRSS: 300 << 20,
		PerNodeVMem: 768 << 10, PerNodeRSS: 96 << 10,
		PerJobVMem: 256 << 10, PerJobRSS: 32 << 10,
		SchedCPUPerJob: 10 * time.Millisecond,
		LoadMsgBytes:   4096, TermMsgBytes: 1024, HBMsgBytes: 512,
	}
}

// TorqueProfile models Torque 6.13: pbs_server contacts each MOM with low
// parallelism and polls heavily.
func TorqueProfile() Profile {
	return Profile{
		Name: "Torque", LaunchWidth: 8, PerNodeLaunchOverhead: 110 * time.Millisecond,
		HeartbeatInterval: 10 * time.Second, HeartbeatCPUPerNode: 30 * time.Microsecond,
		BaseVMem: 1536 << 20, BaseRSS: 280 << 20,
		PerNodeVMem: 640 << 10, PerNodeRSS: 80 << 10,
		PerJobVMem: 256 << 10, PerJobRSS: 32 << 10,
		SchedCPUPerJob: 12 * time.Millisecond,
		LoadMsgBytes:   4096, TermMsgBytes: 1024, HBMsgBytes: 512,
	}
}

// OpenPBSProfile models OpenPBS 20.0.1: persistent MOM connections like
// SGE, low launch parallelism, heavy polling.
func OpenPBSProfile() Profile {
	return Profile{
		Name: "OpenPBS", LaunchWidth: 12, PersistentConns: true, PerNodeLaunchOverhead: 95 * time.Millisecond,
		HeartbeatInterval: 12 * time.Second, HeartbeatCPUPerNode: 22 * time.Microsecond,
		BaseVMem: 1792 << 20, BaseRSS: 260 << 20,
		PerNodeVMem: 700 << 10, PerNodeRSS: 88 << 10,
		PerJobVMem: 288 << 10, PerJobRSS: 36 << 10,
		SchedCPUPerJob: 9 * time.Millisecond,
		LoadMsgBytes:   4096, TermMsgBytes: 1024, HBMsgBytes: 512,
	}
}

// ---------------------------------------------------------------------------

// ESlurm adapts the core master daemon to the RM interface.
type ESlurm struct {
	M *core.Master
}

// NewESlurm wires an ESlurm RM over a cluster (which must have satellite
// nodes configured) with the core defaults and no failure prediction.
func NewESlurm(c *cluster.Cluster) *ESlurm {
	return &ESlurm{M: core.NewMaster(c, core.DefaultConfig(), nil)}
}

// NewESlurmWithPredictor wires an ESlurm RM with a failure predictor
// driving its FP-Trees (production runs the alert-driven predictor; the
// experiment probes use the oracle).
func NewESlurmWithPredictor(c *cluster.Cluster, p predict.Predictor) *ESlurm {
	return &ESlurm{M: core.NewMaster(c, core.DefaultConfig(), p)}
}

// Name implements RM.
func (e *ESlurm) Name() string { return e.M.Name() }

// Start implements RM.
func (e *ESlurm) Start() { e.M.Start() }

// Stop implements RM.
func (e *ESlurm) Stop() { e.M.Stop() }

// Meter implements RM.
func (e *ESlurm) Meter() *cluster.ResourceMeter { return e.M.Meter() }

// LoadJob implements RM.
func (e *ESlurm) LoadJob(nodes []cluster.NodeID, done func(time.Duration)) {
	e.M.LoadJob(nodes, func(r comm.Result) {
		if done != nil {
			done(r.DeliveredElapsed)
		}
	})
}

// TerminateJob implements RM.
func (e *ESlurm) TerminateJob(nodes []cluster.NodeID, done func(time.Duration)) {
	e.M.TerminateJob(nodes, func(r comm.Result) {
		if done != nil {
			done(r.Elapsed)
		}
	})
}

// All returns constructors for the six RMs of the paper's comparison, in
// the order they appear in Fig. 7.
func All(c *cluster.Cluster) []RM {
	return []RM{
		NewCentralized(c, SGEProfile()),
		NewCentralized(c, TorqueProfile()),
		NewCentralized(c, OpenPBSProfile()),
		NewCentralized(c, LSFProfile()),
		NewCentralized(c, SlurmProfile()),
		NewESlurm(c),
	}
}
