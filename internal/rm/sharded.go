package rm

import (
	"time"

	"eslurm/internal/cluster"
	"eslurm/internal/comm"
	"eslurm/internal/core"
)

// Sharded RM twins: the same architectural models as Centralized and
// ESlurm, driven over a ShardedCluster so one RM simulation spans
// multiple engine cells. They satisfy the same RM interface — the
// experiment probes drive either family through identical call
// sequences — but their wire schedules are the sharded ack-based model
// (see comm.ShardBroadcaster), so their absolute numbers form their own
// pinned contract rather than reproducing the single-engine traces
// byte for byte.

// ShardedCentralized is the master-slave RM of a Profile over a sharded
// cluster. All master-side state (meter, tickers, job counters) lives on
// the master's home cell.
type ShardedCentralized struct {
	cluster *cluster.ShardedCluster
	prof    Profile
	b       *comm.ShardBroadcaster
	launchB *comm.ShardBroadcaster
	hb      *hbTicker
	jobs    int
}

// hbTicker wraps the master-cell heartbeat ticker.
type hbTicker struct{ stop func() }

// NewShardedCentralized builds the sharded twin of NewCentralized.
func NewShardedCentralized(c *cluster.ShardedCluster, prof Profile) *ShardedCentralized {
	b := comm.NewShardBroadcaster(c)
	launchB := comm.NewShardBroadcaster(c)
	if prof.LaunchWidth > 0 {
		b.MaxConcurrent = prof.LaunchWidth
		launchB.MaxConcurrent = prof.LaunchWidth
	}
	if prof.PerNodeLaunchOverhead > 0 {
		launchB.SendOverhead = prof.PerNodeLaunchOverhead
	}
	return &ShardedCentralized{cluster: c, prof: prof, b: b, launchB: launchB}
}

// Name implements RM.
func (r *ShardedCentralized) Name() string { return r.prof.Name }

// Meter implements RM.
func (r *ShardedCentralized) Meter() *cluster.ResourceMeter { return &r.cluster.Master().Meter }

// Start implements RM.
func (r *ShardedCentralized) Start() {
	m := r.Meter()
	n := int64(len(r.cluster.Computes()))
	m.AddVMem(r.prof.BaseVMem + n*r.prof.PerNodeVMem)
	m.AddRSS(r.prof.BaseRSS + n*r.prof.PerNodeRSS)
	if r.prof.PersistentConns {
		for range r.cluster.Computes() {
			m.OpenSocket()
		}
	}
	if r.prof.HeartbeatInterval > 0 {
		t := r.cluster.Engine(r.cluster.Master().ID).Every(r.prof.HeartbeatInterval, r.heartbeat)
		r.hb = &hbTicker{stop: t.Stop}
	}
}

// Stop implements RM.
func (r *ShardedCentralized) Stop() {
	if r.hb != nil {
		r.hb.stop()
	}
}

// heartbeat polls every compute node from the master's cell.
func (r *ShardedCentralized) heartbeat() {
	master := r.cluster.Master().ID
	m := r.Meter()
	m.ChargeCPU(time.Duration(len(r.cluster.Computes())) * r.prof.HeartbeatCPUPerNode)
	if r.prof.PersistentConns {
		for _, id := range r.cluster.Computes() {
			r.cluster.SendPersistent(master, id, r.prof.HBMsgBytes, nil, nil, nil)
		}
		return
	}
	r.b.BroadcastStar(master, r.cluster.Computes(), r.prof.HBMsgBytes, nil)
}

// launch routes one job broadcast over the profile's structure.
func (r *ShardedCentralized) launch(nodes []cluster.NodeID, size int, done func(comm.Result)) {
	master := r.cluster.Master().ID
	if r.prof.TreeLaunch {
		r.launchB.BroadcastTree(master, nodes, size, 50, done) // slurmd fan-out default
		return
	}
	r.launchB.BroadcastStar(master, nodes, size, done)
}

// LoadJob implements RM.
func (r *ShardedCentralized) LoadJob(nodes []cluster.NodeID, done func(time.Duration)) {
	m := r.Meter()
	m.ChargeCPU(r.prof.SchedCPUPerJob)
	m.AddVMem(r.prof.PerJobVMem + r.prof.VMemLeakPerJob)
	m.AddRSS(r.prof.PerJobRSS)
	r.jobs++
	r.launch(nodes, r.prof.LoadMsgBytes, func(res comm.Result) {
		if done != nil {
			done(res.DeliveredElapsed)
		}
	})
}

// TerminateJob implements RM.
func (r *ShardedCentralized) TerminateJob(nodes []cluster.NodeID, done func(time.Duration)) {
	m := r.Meter()
	m.ChargeCPU(r.prof.SchedCPUPerJob / 2)
	r.launch(nodes, r.prof.TermMsgBytes, func(res comm.Result) {
		m.AddVMem(-r.prof.PerJobVMem) // the leak stays
		m.AddRSS(-r.prof.PerJobRSS)
		if r.jobs > 0 {
			r.jobs--
		}
		if done != nil {
			done(res.Elapsed)
		}
	})
}

// ShardedESlurm is the sharded twin of the ESlurm master: two-level
// dispatch through the cluster's satellites, each fanning its contiguous
// compute group out over a width-w tree. Satellite watchdog, adoption
// and reallocation are simplified to origin-direct rerouting (see
// comm.ShardBroadcaster.BroadcastRelayed); the memory/CPU charge model
// reuses core.DefaultConfig.
type ShardedESlurm struct {
	cluster *cluster.ShardedCluster
	cfg     core.Config
	b       *comm.ShardBroadcaster
	hb      *hbTicker
}

// NewShardedESlurm builds the sharded ESlurm twin (the cluster must have
// satellite nodes configured).
func NewShardedESlurm(c *cluster.ShardedCluster) *ShardedESlurm {
	return &ShardedESlurm{cluster: c, cfg: core.DefaultConfig(), b: comm.NewShardBroadcaster(c)}
}

// Name implements RM.
func (e *ShardedESlurm) Name() string { return "ESlurm" }

// Meter implements RM.
func (e *ShardedESlurm) Meter() *cluster.ResourceMeter { return &e.cluster.Master().Meter }

// Start implements RM.
func (e *ShardedESlurm) Start() {
	m := e.Meter()
	n := int64(len(e.cluster.Computes()))
	sats := e.cluster.Satellites()
	m.AddVMem(e.cfg.BaseVMem + int64(len(sats))*e.cfg.MasterPerSatState)
	m.AddRSS(e.cfg.BaseRSS + n*e.cfg.PerNodeState)
	for _, s := range sats {
		sm := &e.cluster.Node(s).Meter
		sm.AddVMem(e.cfg.SatelliteBaseVMem)
		sm.AddRSS(e.cfg.SatelliteBaseRSS + n*e.cfg.SatellitePerNodeRSS/int64(len(sats)))
	}
	if e.cfg.HeartbeatInterval > 0 {
		t := e.cluster.Engine(e.cluster.Master().ID).Every(e.cfg.HeartbeatInterval, e.heartbeat)
		e.hb = &hbTicker{stop: t.Stop}
	}
}

// Stop implements RM.
func (e *ShardedESlurm) Stop() {
	if e.hb != nil {
		e.hb.stop()
	}
}

// heartbeat probes the satellite pool (ESlurm's master only ever talks
// to its handful of satellites — the flat socket profile of Fig. 7e).
func (e *ShardedESlurm) heartbeat() {
	master := e.cluster.Master().ID
	sats := e.cluster.Satellites()
	e.Meter().ChargeCPU(time.Duration(len(sats)) * e.cfg.PerResponseCPU)
	e.b.BroadcastStar(master, sats, e.cfg.HeartbeatMsgBytes, nil)
}

func (e *ShardedESlurm) dispatch(nodes []cluster.NodeID, size int, done func(comm.Result)) {
	master := e.cluster.Master().ID
	sats := e.cluster.Satellites()
	e.Meter().ChargeCPU(time.Duration(len(sats)) * e.cfg.MasterPerTaskDispatch)
	e.b.BroadcastRelayed(master, sats, nodes, size, e.cfg.TreeWidth, done)
}

// LoadJob implements RM.
func (e *ShardedESlurm) LoadJob(nodes []cluster.NodeID, done func(time.Duration)) {
	m := e.Meter()
	m.ChargeCPU(e.cfg.SchedCPUPerJob)
	m.AddVMem(e.cfg.PerJobState)
	e.dispatch(nodes, e.cfg.JobLoadMsgBytes, func(res comm.Result) {
		if done != nil {
			done(res.DeliveredElapsed)
		}
	})
}

// TerminateJob implements RM.
func (e *ShardedESlurm) TerminateJob(nodes []cluster.NodeID, done func(time.Duration)) {
	m := e.Meter()
	m.ChargeCPU(e.cfg.SchedCPUPerJob / 2)
	e.dispatch(nodes, e.cfg.JobTermMsgBytes, func(res comm.Result) {
		m.AddVMem(-e.cfg.PerJobState)
		if done != nil {
			done(res.Elapsed)
		}
	})
}

// NewShardedByName builds the sharded twin of one of the six comparison
// RMs by its Fig. 7 name. It panics on unknown names — a driver bug.
func NewShardedByName(name string, c *cluster.ShardedCluster) RM {
	switch name {
	case "SGE":
		return NewShardedCentralized(c, SGEProfile())
	case "Torque":
		return NewShardedCentralized(c, TorqueProfile())
	case "OpenPBS":
		return NewShardedCentralized(c, OpenPBSProfile())
	case "LSF":
		return NewShardedCentralized(c, LSFProfile())
	case "Slurm":
		return NewShardedCentralized(c, SlurmProfile())
	case "ESlurm":
		return NewShardedESlurm(c)
	default:
		panic("rm: unknown sharded RM " + name)
	}
}
