package rm

import (
	"testing"
	"time"

	"eslurm/internal/cluster"
	"eslurm/internal/simnet"
)

func newCluster(seed int64, computes, satellites int) *cluster.Cluster {
	e := simnet.NewEngine(seed)
	return cluster.New(e, cluster.Config{Computes: computes, Satellites: satellites})
}

func TestAllConstructorsDistinctNames(t *testing.T) {
	c := newCluster(1, 16, 2)
	seen := map[string]bool{}
	for _, r := range All(c) {
		if seen[r.Name()] {
			t.Fatalf("duplicate RM name %q", r.Name())
		}
		seen[r.Name()] = true
	}
	if !seen["ESlurm"] || !seen["Slurm"] || !seen["SGE"] {
		t.Errorf("missing expected RMs: %v", seen)
	}
}

func TestCentralizedStartChargesMemory(t *testing.T) {
	c := newCluster(2, 100, 0)
	r := NewCentralized(c, SlurmProfile())
	r.Start()
	if r.Meter().VMem() < SlurmProfile().BaseVMem {
		t.Error("base vmem not charged")
	}
	if r.Meter().RSS() == 0 {
		t.Error("base rss not charged")
	}
	r.Stop()
}

func TestPersistentConnsSocketPool(t *testing.T) {
	c := newCluster(3, 200, 0)
	sge := NewCentralized(c, SGEProfile())
	sge.Start()
	if got := sge.Meter().Sockets(); got != 200 {
		t.Fatalf("SGE persistent sockets = %d, want 200 (one per node)", got)
	}
	sge.Stop()

	c2 := newCluster(3, 200, 0)
	slurm := NewCentralized(c2, SlurmProfile())
	slurm.Start()
	if got := slurm.Meter().Sockets(); got != 0 {
		t.Fatalf("Slurm persistent sockets = %d, want 0", got)
	}
	slurm.Stop()
}

func TestLoadJobCompletes(t *testing.T) {
	for _, mk := range []func(*cluster.Cluster) RM{
		func(c *cluster.Cluster) RM { return NewCentralized(c, SlurmProfile()) },
		func(c *cluster.Cluster) RM { return NewCentralized(c, SGEProfile()) },
		func(c *cluster.Cluster) RM { return NewESlurm(c) },
	} {
		c := newCluster(4, 64, 2)
		r := mk(c)
		r.Start()
		c.Engine.RunUntil(time.Second)
		var spawn time.Duration
		r.LoadJob(c.Computes()[:32], func(d time.Duration) { spawn = d })
		c.Engine.RunUntil(10 * time.Minute)
		if spawn <= 0 {
			t.Errorf("%s: LoadJob never completed", r.Name())
		}
		var reclaim time.Duration
		r.TerminateJob(c.Computes()[:32], func(d time.Duration) { reclaim = d })
		c.Engine.RunUntil(20 * time.Minute)
		if reclaim <= 0 {
			t.Errorf("%s: TerminateJob never completed", r.Name())
		}
		r.Stop()
	}
}

func TestLowParallelismLaunchScalesBadly(t *testing.T) {
	// Fig. 7f: SGE/Torque/OpenPBS occupation time explodes with job size;
	// Slurm and ESlurm stay nearly flat.
	spawnTime := func(prof Profile, jobNodes int) time.Duration {
		c := newCluster(5, 2048, 0)
		r := NewCentralized(c, prof)
		r.Start()
		c.Engine.RunUntil(time.Second)
		var spawn time.Duration
		r.LoadJob(c.Computes()[:jobNodes], func(d time.Duration) { spawn = d })
		c.Engine.RunUntil(30 * time.Minute)
		r.Stop()
		return spawn
	}
	sgeSmall := spawnTime(SGEProfile(), 64)
	sgeBig := spawnTime(SGEProfile(), 2048)
	slurmSmall := spawnTime(SlurmProfile(), 64)
	slurmBig := spawnTime(SlurmProfile(), 2048)
	if sgeBig < 4*sgeSmall {
		t.Errorf("SGE spawn did not explode: %v -> %v", sgeSmall, sgeBig)
	}
	if slurmBig > 4*slurmSmall+time.Second {
		t.Errorf("Slurm spawn exploded unexpectedly: %v -> %v", slurmSmall, slurmBig)
	}
	if sgeBig < 5*slurmBig {
		t.Errorf("SGE (%v) should be much slower than Slurm (%v) at 2048 nodes", sgeBig, slurmBig)
	}
}

func TestSlurmVMemOnlyGrows(t *testing.T) {
	c := newCluster(6, 64, 0)
	r := NewCentralized(c, SlurmProfile())
	r.Start()
	c.Engine.RunUntil(time.Second)
	base := r.Meter().VMem()
	nodes := c.Computes()[:16]
	for i := 0; i < 10; i++ {
		r.LoadJob(nodes, nil)
		r.TerminateJob(nodes, nil)
	}
	c.Engine.RunUntil(10 * time.Minute)
	leaked := r.Meter().VMem() - base
	want := 10 * SlurmProfile().VMemLeakPerJob
	if leaked != want {
		t.Errorf("vmem growth = %d, want %d (leak per job x 10)", leaked, want)
	}
	r.Stop()
}

func TestHeartbeatBurnsPollingCPU(t *testing.T) {
	c := newCluster(7, 500, 0)
	r := NewCentralized(c, TorqueProfile())
	r.Start()
	c.Engine.RunUntil(10 * time.Minute)
	cpu := r.Meter().CPUTime()
	// 60 polls x 500 nodes x 30µs = 900ms minimum.
	if cpu < 800*time.Millisecond {
		t.Errorf("Torque polling CPU = %v, want ~0.9s+", cpu)
	}
	r.Stop()
}

func TestESlurmUsesFarLessThanSlurmAtScale(t *testing.T) {
	// The Fig. 9 headline at reduced scale: run both RMs for an hour of
	// heartbeats on the same cluster size and compare master meters.
	run := func(mk func(*cluster.Cluster) RM, sat int) *cluster.ResourceMeter {
		c := newCluster(8, 2000, sat)
		r := mk(c)
		r.Start()
		c.Engine.RunUntil(time.Hour)
		r.Stop()
		return r.Meter()
	}
	slurm := run(func(c *cluster.Cluster) RM { return NewCentralized(c, SlurmProfile()) }, 0)
	eslurm := run(func(c *cluster.Cluster) RM { return NewESlurm(c) }, 2)

	if eslurm.VMem() >= slurm.VMem()/2 {
		t.Errorf("ESlurm vmem %d not far below Slurm %d", eslurm.VMem(), slurm.VMem())
	}
	if eslurm.RSS() >= slurm.RSS() {
		t.Errorf("ESlurm rss %d not below Slurm %d", eslurm.RSS(), slurm.RSS())
	}
	if eslurm.PeakSockets() > 100 {
		t.Errorf("ESlurm peak sockets = %d, want < 100", eslurm.PeakSockets())
	}
}
