// Package testutil holds build-facts shared by test suites across
// packages. It started as the home of RaceEnabled, which two packages
// once had each re-derived with their own //go:build race twin files:
// expensive soak tests budget for the race detector's ~5-10× slowdown by
// shrinking iteration counts when it is on.
//
// Determinism: compile-time build facts only — no simulation state, no
// RNG, no clocks — so the package sits entirely outside the same-seed ⇒
// same-trace contract.
package testutil
