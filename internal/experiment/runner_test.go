package experiment

import (
	"strings"
	"testing"
	"time"

	"eslurm/internal/testutil"
)

// runnerParams shrinks every experiment far enough that the full registry
// completes in seconds; the quick-preset comparison below is the
// full-strength version of the same contract.
func runnerParams() Params {
	return Params{
		Fig5Jobs: 2000, Fig11bJobs: 800, Table8Jobs: 600,
		Fig7Nodes: 256, Fig7Span: 5 * time.Minute,
		Fig9Nodes: 512, Fig9Span: 5 * time.Minute,
		T56Nodes: 512, T56Span: 10 * time.Minute, T56Sats: []int{2, 4},
		Fig7fNodes: 256, Fig8Nodes: 256, Fig11aNodes: 512,
		PlaceNodes: 256, PlaceDays: 1,
		Fig10Scales: []int{128}, Fig10Jobs: 400,
		AblationScale: 128, AblationJobs: 400,
	}
}

// renderEmitted renders every table in emit order — exactly the bytes
// benchrunner sends to stdout.
func renderEmitted(specs []Spec, p Params, parallel int) string {
	var sb strings.Builder
	RunConcurrent(specs, p, parallel, func(r Result) {
		for _, tb := range r.Tables {
			tb.Fprint(&sb)
		}
	})
	return sb.String()
}

// fastRegistry drops the two estimator replays, which dominate runtime
// and create no engines (they are covered by the quick-preset test).
func fastRegistry() []Spec {
	var specs []Spec
	for _, s := range Registry() {
		if s.ID == "table8" || s.ID == "fig11b" {
			continue
		}
		specs = append(specs, s)
	}
	return specs
}

// TestRunConcurrentMatchesSerial is the determinism contract across the
// pool: the rendered output of a parallel run must be byte-identical to a
// serial run. The race detector covers the pool itself here.
func TestRunConcurrentMatchesSerial(t *testing.T) {
	specs := fastRegistry()
	p := runnerParams()
	serial := renderEmitted(specs, p, 1)
	parallel := renderEmitted(specs, p, 8)
	if serial != parallel {
		t.Fatalf("parallel output diverged from serial\n--- serial ---\n%s\n--- parallel ---\n%s", serial, parallel)
	}
	if len(serial) == 0 {
		t.Fatal("no output rendered")
	}
}

// TestRunConcurrentMatchesSerialQuick runs the same contract at the quick
// preset — the exact bytes `benchrunner -all` prints — with the full
// registry.
func TestRunConcurrentMatchesSerialQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full quick-preset suite twice")
	}
	if testutil.RaceEnabled {
		// Two full quick-preset suite runs exceed the race detector's
		// 5-10× slowdown budget (the package would blow go test's default
		// 10-minute timeout). The pool's race coverage comes from
		// TestRunConcurrentMatchesSerial over the fast registry.
		t.Skip("quick-preset double run is too slow under -race")
	}
	specs := Registry()
	p := QuickParams()
	serial := renderEmitted(specs, p, 1)
	parallel := renderEmitted(specs, p, 8)
	if serial != parallel {
		t.Fatal("quick-preset parallel output diverged from serial")
	}
}

// TestRunConcurrentEmitOrder: emit must see every spec exactly once, in
// registry order, regardless of completion order in the pool.
func TestRunConcurrentEmitOrder(t *testing.T) {
	specs := fastRegistry()
	var emitted []string
	results := RunConcurrent(specs, runnerParams(), 4, func(r Result) {
		emitted = append(emitted, r.Spec.ID)
	})
	if len(emitted) != len(specs) {
		t.Fatalf("emitted %d results for %d specs", len(emitted), len(specs))
	}
	for i, s := range specs {
		if emitted[i] != s.ID {
			t.Fatalf("emit order %v does not match registry order", emitted)
		}
		if results[i].Spec.ID != s.ID {
			t.Fatalf("results[%d] = %s, want %s", i, results[i].Spec.ID, s.ID)
		}
	}
}

// TestRunConcurrentStats: experiments that run simulations must report
// their engine event totals and a positive wall time.
func TestRunConcurrentStats(t *testing.T) {
	spec, ok := Lookup("fig8a")
	if !ok {
		t.Fatal("missing fig8a")
	}
	res := RunConcurrent([]Spec{spec}, runnerParams(), 1, nil)
	if len(res) != 1 {
		t.Fatalf("got %d results", len(res))
	}
	if res[0].Events == 0 {
		t.Error("Events = 0; engine accounting is not wired through")
	}
	if res[0].Wall <= 0 {
		t.Error("Wall not measured")
	}
	if res[0].EventsPerSec() <= 0 {
		t.Error("EventsPerSec not derived")
	}
}
