package experiment

import (
	"fmt"
	"math/rand"

	"eslurm/internal/estimate"
	"eslurm/internal/trace"
)

// workloadK is the elbow-derived cluster count for the synthetic traces
// (the paper's own trace gave K=15 by the same method, Section V-A).
const workloadK = 40

// Fig5 reproduces the trace-locality analysis of Fig. 5 on synthetic
// Tianhe-2A and NG-Tianhe traces: (a) the CDF of the user runtime-
// estimation accuracy P = t_s/t_r, (b) the job-correlation ratio vs the
// submission interval, (c) the job-correlation ratio vs the job-ID gap.
func Fig5(jobsPerTrace int) []*Table {
	cfgA, cfgB := trace.Tianhe2AConfig(jobsPerTrace), trace.NGTianheConfig(jobsPerTrace)
	traces := []*trace.Trace{
		trace.Generate(cfgA),
		trace.Generate(cfgB),
	}

	cdf := &Table{
		ID:      "fig5a",
		Title:   "CDF of user runtime-estimation accuracy P = t_s/t_r (P>1 overestimates)",
		Columns: []string{"P <=", traces[0].System, traces[1].System},
	}
	ths := []float64{0.25, 0.5, 0.75, 1.0, 1.5, 2, 3, 4, 6, 8, 12, 16}
	curves := make([][]float64, len(traces))
	for i, tr := range traces {
		curves[i] = tr.PCDF(ths)
	}
	for k, th := range ths {
		cdf.AddRow(fmt.Sprintf("%.2f", th), fmtF(curves[0][k]), fmtF(curves[1][k]))
	}
	cdf.Note = fmt.Sprintf("overestimated fraction: %s %s / %s %s (paper: 80-90%%)",
		traces[0].System, fmtPct(traces[0].OverestimateFraction()),
		traces[1].System, fmtPct(traces[1].OverestimateFraction()))

	interval := &Table{
		ID:      "fig5b",
		Title:   "Job-correlation ratio vs submission interval (hours)",
		Columns: []string{"interval(h)", traces[0].System, traces[1].System},
	}
	// Correlation sampling is seeded from the trace configs so the whole
	// figure is reproducible from (and only from) the workload seeds.
	rng := rand.New(rand.NewSource(cfgA.Seed ^ cfgB.Seed))
	const maxH = 40
	ptsA := traces[0].CorrelationVsInterval(maxH, 3000, rng)
	ptsB := traces[1].CorrelationVsInterval(maxH, 3000, rng)
	for h := 0; h < maxH; h += 2 {
		interval.AddRow(fmt.Sprintf("%d", h), fmtF(ptsA[h].Ratio), fmtF(ptsB[h].Ratio))
	}
	interval.Note = "paper: Tianhe-2A stabilizes ~0.3 past 30h, NG-Tianhe decays to ~0"

	gap := &Table{
		ID:      "fig5c",
		Title:   "Job-correlation ratio vs job-ID gap",
		Columns: []string{"ID gap", traces[0].System, traces[1].System},
	}
	gA := traces[0].CorrelationVsIDGap(1400, 100, 3000, rng)
	gB := traces[1].CorrelationVsIDGap(1400, 100, 3000, rng)
	for i := range gA {
		gap.AddRow(fmt.Sprintf("%.0f", gA[i].X), fmtF(gA[i].Ratio), fmtF(gB[i].Ratio))
	}
	gap.Note = "paper: decays with the gap, stabilizing ~0.08 past gap 700"

	return []*Table{cdf, interval, gap}
}

// Fig11b reproduces the runtime-estimator comparison: AEA and
// underestimation rate for the user estimates, SVM, RandomForest, Last-2,
// IRPA, TRIP, PREP and the ESlurm framework, replayed over an NG-Tianhe
// trace ("historical workloads on the NG-Tianhe").
func Fig11b(jobs int) *Table {
	tr := trace.Generate(trace.NGTianheConfig(jobs))
	t := &Table{
		ID:      "fig11b",
		Title:   "Runtime-estimator comparison on NG-Tianhe trace",
		Columns: []string{"Estimator", "AEA", "UnderestimateRate", "Coverage"},
	}
	ests := []estimate.Estimator{
		estimate.User{},
		estimate.NewSVM(),
		estimate.NewRandomForest(1),
		estimate.NewLast2(),
		estimate.NewIRPA(2),
		estimate.NewTRIP(),
		estimate.NewPREP(),
		// K follows the paper's methodology: derived per workload via the
		// elbow analysis (the paper's trace gave 15; this synthetic
		// workload's wider application-name space gives ~40).
		estimate.NewFramework(estimate.FrameworkConfig{K: workloadK}),
	}
	for _, e := range ests {
		res := estimate.Evaluate(e, tr.Jobs)
		t.AddRow(e.Name(), fmtF(res.AEA), fmtF(res.UnderestimateRate), fmtF(res.Coverage))
	}
	t.Note = "paper: ESlurm best at AEA 0.84 / UR ~0.10; SVM, RF, Last-2 below 0.70 AEA with UR > 0.25"
	return t
}

// Table8 reproduces the slack-variable sweep of Table VIII: AEA and UR of
// the ESlurm framework for α in 1.00..1.08.
func Table8(jobs int) *Table {
	tr := trace.Generate(trace.NGTianheConfig(jobs))
	t := &Table{
		ID:      "table8",
		Title:   "Impact of the slack variable α (Eq. 3)",
		Columns: []string{"alpha", "AEA", "UR"},
	}
	for _, alpha := range []float64{1.00, 1.01, 1.02, 1.03, 1.04, 1.05, 1.06, 1.07, 1.08} {
		f := estimate.NewFramework(estimate.FrameworkConfig{Alpha: alpha, K: workloadK})
		res := estimate.Evaluate(f, tr.Jobs)
		t.AddRow(fmt.Sprintf("%.2f", alpha), fmtF(res.AEA), fmtF(res.UnderestimateRate))
	}
	t.Note = "paper: AEA 0.87→0.80 and UR 0.54→0.11 as α grows; 1.05 chosen as the knee"
	return t
}
