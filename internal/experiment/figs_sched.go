package experiment

import (
	"fmt"
	"sort"
	"time"

	"eslurm/internal/cluster"
	"eslurm/internal/estimate"
	"eslurm/internal/predict"
	"eslurm/internal/rm"
	"eslurm/internal/sched"
	"eslurm/internal/trace"
)

// overheadLookup builds a sched.Overhead from a handful of occupation
// probes, interpolating linearly between probed sizes.
func overheadLookup(mk func(c *cluster.Cluster) rm.RM, clusterNodes int, failedFrac float64) sched.Overhead {
	var sizes []int
	for _, s := range []int{16, 64, 256, 1024, 4096, 16384} {
		if s < clusterNodes {
			sizes = append(sizes, s)
		}
	}
	sizes = append(sizes, clusterNodes)
	loads := make([]time.Duration, len(sizes))
	terms := make([]time.Duration, len(sizes))
	for i, s := range sizes {
		loads[i], terms[i] = OccupationProbe(mk, clusterNodes, s, failedFrac)
	}
	return func(n int) (time.Duration, time.Duration) {
		if n <= sizes[0] {
			return loads[0], terms[0]
		}
		i := sort.SearchInts(sizes, n)
		if i >= len(sizes) {
			return loads[len(sizes)-1], terms[len(sizes)-1]
		}
		if sizes[i] == n || i == 0 {
			return loads[i], terms[i]
		}
		// Linear interpolation between the bracketing probes.
		f := float64(n-sizes[i-1]) / float64(sizes[i]-sizes[i-1])
		lerp := func(a, b time.Duration) time.Duration {
			return a + time.Duration(f*float64(b-a))
		}
		return lerp(loads[i-1], loads[i]), lerp(terms[i-1], terms[i])
	}
}

// responsePenalty models the master's request-response degradation as a
// centralized RM saturates (§II-B: >27 s average response with 38% of
// requests failing to connect at 20K+ nodes under Slurm). ESlurm's
// production response time stays below 1 s at the same scale.
func responsePenalty(name string, nodes int) time.Duration {
	if name == "ESlurm" {
		return 500 * time.Millisecond
	}
	// Grows superlinearly once the master saturates.
	f := float64(nodes) / 20480.0
	return time.Duration(27 * f * f * float64(time.Second))
}

// Fig10 reproduces the cluster-scale scheduling comparison of Fig. 10 /
// Table VII: system utilization, average waiting time and average bounded
// slowdown for the RMs deployable at each scale, replaying a synthetic
// one-week-like trace (jobsPerScale jobs) under EASY backfill.
func Fig10(scales []int, jobsPerScale int) []*Table {
	if len(scales) == 0 {
		scales = []int{1024, 4096, 16384, 20480}
	}
	if jobsPerScale == 0 {
		jobsPerScale = 6000
	}

	util := &Table{ID: "fig10a", Title: "System utilization (higher is better)"}
	wait := &Table{ID: "fig10b", Title: "Average job waiting time (lower is better)"}
	slow := &Table{ID: "fig10c", Title: "Average bounded slowdown (lower is better)"}
	cols := []string{"RM"}
	for _, s := range scales {
		cols = append(cols, fmt.Sprintf("%d nodes", s))
	}
	util.Columns, wait.Columns, slow.Columns = cols, cols, cols

	contenders := []struct {
		name     string
		mk       func(c *cluster.Cluster) rm.RM
		maxScale int
	}{
		{"SGE", func(c *cluster.Cluster) rm.RM { return rm.NewCentralized(c, rm.SGEProfile()) }, 1024},
		{"Torque", func(c *cluster.Cluster) rm.RM { return rm.NewCentralized(c, rm.TorqueProfile()) }, 1024},
		{"OpenPBS", func(c *cluster.Cluster) rm.RM { return rm.NewCentralized(c, rm.OpenPBSProfile()) }, 4096},
		{"LSF", func(c *cluster.Cluster) rm.RM { return rm.NewCentralized(c, rm.LSFProfile()) }, 4096},
		{"Slurm", func(c *cluster.Cluster) rm.RM { return rm.NewCentralized(c, rm.SlurmProfile()) }, 1 << 30},
		{"ESlurm", func(c *cluster.Cluster) rm.RM {
			return rm.NewESlurmWithPredictor(c, predict.Oracle{Cluster: c})
		}, 1 << 30},
	}

	for _, ct := range contenders {
		uRow := []string{ct.name}
		wRow := []string{ct.name}
		sRow := []string{ct.name}
		for _, scale := range scales {
			if scale > ct.maxScale {
				// Table VII: SGE and Torque cannot scale past 1,024 nodes;
				// OpenPBS and LSF stop at 4,096.
				uRow = append(uRow, "-")
				wRow = append(wRow, "-")
				sRow = append(sRow, "-")
				continue
			}
			res := runFig10Cell(ct.name, ct.mk, scale, jobsPerScale)
			uRow = append(uRow, fmtPct(res.Utilization))
			wRow = append(wRow, fmtDur(res.AvgWait))
			sRow = append(sRow, fmt.Sprintf("%.1f", res.AvgBoundedSlowdown))
		}
		util.AddRow(uRow...)
		wait.AddRow(wRow...)
		slow.AddRow(sRow...)
	}
	note := "paper (full-scale NG-Tianhe): ESlurm +47.2% utilization vs Slurm, -60.5% wait, -75.8% slowdown; utilization falls with scale for all RMs"
	util.Note, wait.Note, slow.Note = note, note, note
	return []*Table{util, wait, slow}
}

// scaleTrace builds the replay workload for one cluster scale, following
// Table VII's load sources (Tianhe-2A history below 20K nodes, NG-Tianhe
// at 20K+). The job count is calibrated in a first pass so total demand
// is ~105% of the cluster's node-hours over the week — the same offered
// load at every scale, as replaying "the historical load on the real
// cluster during a week" gives the paper.
func scaleTrace(scale, jobs int) []trace.Job {
	mk := func(n int) trace.GenConfig {
		var cfg trace.GenConfig
		if scale >= 20000 {
			cfg = trace.NGTianheConfig(n)
		} else {
			cfg = trace.Tianhe2AConfig(n)
		}
		cfg.MaxNodes = scale
		cfg.Days = 7
		return cfg
	}
	probe := trace.Generate(mk(jobs))
	demand := 0.0
	for i := range probe.Jobs {
		j := &probe.Jobs[i]
		demand += float64(j.Nodes) * j.Runtime.Hours()
	}
	capacity := float64(scale) * 7 * 24
	if demand <= 0 {
		return probe.Jobs
	}
	calibrated := int(float64(jobs) * 1.05 * capacity / demand)
	if calibrated < 500 {
		calibrated = 500
	}
	if calibrated > 60000 {
		calibrated = 60000
	}
	return trace.Generate(mk(calibrated)).Jobs
}

func runFig10Cell(name string, mk func(c *cluster.Cluster) rm.RM, scale, jobs int) sched.Result {
	penalty := responsePenalty(name, scale)
	base := overheadLookup(mk, scale, 0.01)
	cfg := fig10SchedConfig(name, scale, withPenalty(base, penalty))
	return sched.Run(scaleTrace(scale, jobs), cfg)
}

// fig10SchedConfig builds the per-cell scheduler config shared by the
// single-engine and sharded Fig. 10 drivers.
func fig10SchedConfig(name string, scale int, overhead sched.Overhead) sched.Config {
	cfg := sched.Config{
		Nodes:       scale,
		Policy:      sched.Backfill,
		Overhead:    overhead,
		KillAtLimit: true,
		UtilWindow:  7 * 24 * time.Hour,
		Seed:        int64(scale),
	}
	if name == "ESlurm" {
		cfg.Predictor = sched.FrameworkWalltimes{F: estimate.NewFramework(estimate.FrameworkConfig{K: workloadK})}
	}
	if name != "ESlurm" && scale >= 16384 {
		// §II-B: the production centralized master crashed every ~42 h at
		// 20K+ nodes, with ~90 min reboots.
		cfg.CrashMTBF = time.Duration(float64(42*time.Hour) * 20480.0 / float64(scale))
		cfg.CrashDowntime = 90 * time.Minute
	}
	return cfg
}

// Ablation reproduces the §VII-D contribution analysis at full NG-Tianhe
// scale: full ESlurm vs ESlurm without the runtime-estimation framework
// (user walltimes) vs ESlurm without FP-Tree (plain-tree relays under the
// production failure background), plus the Slurm reference.
func Ablation(scale, jobs int) *Table {
	if scale == 0 {
		scale = 20480
	}
	if jobs == 0 {
		jobs = 6000
	}
	t := &Table{
		ID:      "ablation",
		Title:   fmt.Sprintf("ESlurm component contributions at %d nodes", scale),
		Columns: []string{"configuration", "utilization", "avg wait", "slowdown"},
	}
	jobsList := scaleTrace(scale, jobs)

	esMk := func(c *cluster.Cluster) rm.RM {
		return rm.NewESlurmWithPredictor(c, predict.Oracle{Cluster: c})
	}
	slurmMk := func(c *cluster.Cluster) rm.RM { return rm.NewCentralized(c, rm.SlurmProfile()) }

	run := func(name string, overhead sched.Overhead, framework bool, crash bool) sched.Result {
		cfg := sched.Config{
			Nodes: scale, Policy: sched.Backfill, Overhead: overhead,
			KillAtLimit: true, UtilWindow: 7 * 24 * time.Hour, Seed: int64(scale),
		}
		if framework {
			cfg.Predictor = sched.FrameworkWalltimes{F: estimate.NewFramework(estimate.FrameworkConfig{K: workloadK})}
		}
		if crash {
			cfg.CrashMTBF = 42 * time.Hour
			cfg.CrashDowntime = 90 * time.Minute
		}
		_ = name
		return sched.Run(jobsList, cfg)
	}

	esOverhead := overheadLookup(esMk, scale, 0.01)
	// Without FP-Tree: prediction disabled, so the satellite relays pay
	// timeouts on failed interior nodes.
	noFPOverhead := overheadLookup(func(c *cluster.Cluster) rm.RM {
		return rm.NewESlurm(c)
	}, scale, 0.01)
	slurmOverhead := overheadLookup(slurmMk, scale, 0.01)

	addRow := func(name string, r sched.Result) {
		t.AddRow(name, fmtPct(r.Utilization), fmtDur(r.AvgWait), fmt.Sprintf("%.1f", r.AvgBoundedSlowdown))
	}
	addRow("ESlurm (full)", run("full", withPenalty(esOverhead, responsePenalty("ESlurm", scale)), true, false))
	addRow("ESlurm w/o estimator", run("noest", withPenalty(esOverhead, responsePenalty("ESlurm", scale)), false, false))
	addRow("ESlurm w/o FP-Tree", run("nofp", withPenalty(noFPOverhead, responsePenalty("ESlurm", scale)), true, false))
	addRow("Slurm", run("slurm", withPenalty(slurmOverhead, responsePenalty("Slurm", scale)), false, true))
	t.Note = "paper: estimator contributes 8.7 utilization points, FP-Tree 6.2, vs a 47.2-point total gap to Slurm"
	return t
}

// OccupationProbeLookup builds a sched.Overhead for a named RM at a given
// cluster scale, probed under a 1% failure background — the hook the
// eslurmctl CLI uses to couple the communication model to the scheduler.
func OccupationProbeLookup(rmName string, clusterNodes int) sched.Overhead {
	var mk func(c *cluster.Cluster) rm.RM
	switch rmName {
	case "eslurm":
		mk = func(c *cluster.Cluster) rm.RM {
			return rm.NewESlurmWithPredictor(c, predict.Oracle{Cluster: c})
		}
	case "slurm":
		mk = func(c *cluster.Cluster) rm.RM { return rm.NewCentralized(c, rm.SlurmProfile()) }
	case "lsf":
		mk = func(c *cluster.Cluster) rm.RM { return rm.NewCentralized(c, rm.LSFProfile()) }
	case "sge":
		mk = func(c *cluster.Cluster) rm.RM { return rm.NewCentralized(c, rm.SGEProfile()) }
	case "torque":
		mk = func(c *cluster.Cluster) rm.RM { return rm.NewCentralized(c, rm.TorqueProfile()) }
	case "openpbs":
		mk = func(c *cluster.Cluster) rm.RM { return rm.NewCentralized(c, rm.OpenPBSProfile()) }
	default:
		return nil
	}
	return overheadLookup(mk, clusterNodes, 0.01)
}

func withPenalty(base sched.Overhead, p time.Duration) sched.Overhead {
	return func(n int) (time.Duration, time.Duration) {
		l, t := base(n)
		return l + p, t
	}
}
