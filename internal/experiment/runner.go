package experiment

// Cross-simulation parallelism. The simnet kernel is single-threaded by
// contract ("parallelism belongs across independent simulations, never
// inside one"); this runner is the sanctioned form of that parallelism:
// each Spec.Run call is an independent simulation tree with its own
// engines and seeds, so a worker pool can execute many of them
// concurrently while the emitted output stays byte-identical to a serial
// run — results are surfaced strictly in registry order.

import (
	"runtime"
	"sync"
	"time"

	"eslurm/internal/simnet"
)

// Result is one experiment's tables plus the harness-side performance
// stats benchrunner reports and records in BENCH_<preset>.json.
type Result struct {
	Spec   Spec
	Tables []*Table
	// Wall is host elapsed time for the Spec.Run call (not virtual time).
	Wall time.Duration
	// Events is the number of simulation events executed across every
	// engine the experiment created (see simnet.CountEvents).
	Events uint64
}

// EventsPerSec returns the experiment's simulation throughput in events
// per host second, the kernel-limited figure of merit for the suite.
func (r Result) EventsPerSec() float64 {
	if r.Wall <= 0 {
		return 0
	}
	return float64(r.Events) / r.Wall.Seconds()
}

// RunConcurrent executes the specs against p on a pool of parallel
// workers (parallel < 1 means GOMAXPROCS). Experiments run concurrently
// in work-stealing order, but emit — when non-nil — is invoked exactly
// once per spec, in specs order, from the calling goroutine, as soon as
// the ordered prefix is complete. The returned slice is indexed like
// specs. Output built solely from emit order is therefore byte-identical
// for every parallel setting: the determinism contract across the pool.
func RunConcurrent(specs []Spec, p Params, parallel int, emit func(Result)) []Result {
	if parallel < 1 {
		parallel = runtime.GOMAXPROCS(0)
	}
	if parallel > len(specs) {
		parallel = len(specs)
	}
	results := make([]Result, len(specs))
	done := make([]chan struct{}, len(specs))
	for i := range done {
		done[i] = make(chan struct{})
	}
	work := make(chan int, len(specs))
	for i := range specs {
		work <- i
	}
	close(work)

	var wg sync.WaitGroup
	for w := 0; w < parallel; w++ {
		wg.Add(1)
		//eslurmlint:ignore gosim worker pool over independent engines; no simulated state crosses goroutines
		go func() {
			defer wg.Done()
			for i := range work {
				results[i] = runOne(specs[i], p)
				close(done[i])
			}
		}()
	}
	for i := range specs {
		<-done[i]
		if emit != nil {
			emit(results[i])
		}
	}
	wg.Wait()
	return results
}

// runOne executes a single spec, timing it and accounting the events its
// engines processed.
func runOne(s Spec, p Params) Result {
	//eslurmlint:ignore walltime benchmark harness measures host elapsed time, not simulated time
	start := time.Now()
	var tables []*Table
	events := simnet.CountEvents(func() { tables = s.Run(p) })
	//eslurmlint:ignore walltime benchmark harness measures host elapsed time, not simulated time
	wall := time.Since(start)
	return Result{Spec: s, Tables: tables, Wall: wall, Events: events}
}
