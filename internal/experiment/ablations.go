package experiment

import (
	"fmt"
	"time"

	"eslurm/internal/cluster"
	"eslurm/internal/comm"
	"eslurm/internal/core"
	"eslurm/internal/fptree"
	"eslurm/internal/predict"
	"eslurm/internal/simnet"
	"eslurm/internal/topo"
)

// The drivers in this file go beyond the paper's own evaluation: they
// sweep the design constants DESIGN.md calls out (tree width, reallocation
// limit, suspect TTL) and measure the §IV-E topology composition — the
// ablations a reviewer would ask for.

// AblationTreeWidth sweeps the FP-Tree fan-out w (Eq. 1's width and the
// relay tree's branching factor): narrow trees are deep (more hops, more
// interior nodes exposed to failures), wide trees serialize at each relay.
func AblationTreeWidth(nodes int, widths []int) *Table {
	if len(widths) == 0 {
		widths = []int{4, 8, 16, 32, 64, 128}
	}
	t := &Table{
		ID:      "ablation-width",
		Title:   fmt.Sprintf("FP-Tree width sweep (%d nodes, 2%% failed, oracle prediction)", nodes),
		Columns: []string{"width", "depth", "clean broadcast", "with failures"},
	}
	for _, w := range widths {
		run := func(failures bool) time.Duration {
			e := simnet.NewEngine(31)
			c := cluster.New(e, cluster.Config{Computes: nodes, Satellites: 1})
			if failures {
				failSpread(c, nodes/50)
			}
			b := comm.NewBroadcaster(c)
			var res comm.Result
			s := comm.FPTree{Width: w, Predictor: predict.Oracle{Cluster: c}}
			s.Broadcast(b, c.Satellites()[0], c.Computes(), 4096, func(r comm.Result) { res = r })
			e.Run()
			return res.DeliveredElapsed
		}
		depth := treeDepth(nodes, w)
		t.AddRow(fmt.Sprintf("%d", w), fmt.Sprintf("%d", depth),
			fmtDur(run(false)), fmtDur(run(true)))
	}
	t.Note = "the default w=32 balances depth against per-relay fan-out"
	return t
}

func treeDepth(n, w int) int {
	depth := 0
	for n > 1 {
		n = (n + w - 1) / w
		depth++
	}
	return depth
}

// AblationReallocLimit sweeps the reallocation-trail threshold of
// Section III-C: 0 means the master takes over immediately on satellite
// failure, large values keep retrying satellites.
func AblationReallocLimit(nodes int, limits []int) *Table {
	if len(limits) == 0 {
		limits = []int{0, 1, 2, 4}
	}
	t := &Table{
		ID:      "ablation-realloc",
		Title:   fmt.Sprintf("Reallocation-limit sweep (%d nodes, first 2 of 4 satellites dead)", nodes),
		Columns: []string{"limit", "broadcast completes in", "reallocations", "master takeovers"},
	}
	for _, lim := range limits {
		e := simnet.NewEngine(37)
		c := cluster.New(e, cluster.Config{Computes: nodes, Satellites: 4})
		cfg := core.DefaultConfig()
		cfg.ReallocLimit = lim
		m := core.NewMaster(c, cfg, nil)
		m.Start()
		e.RunUntil(time.Second)
		// Kill two satellites; the round-robin hands their tasks onward.
		c.Fail(c.Satellites()[0])
		c.Fail(c.Satellites()[1])
		var res comm.Result
		start := e.Now()
		m.Broadcast(c.Computes(), 2048, func(r comm.Result) { res = r })
		e.RunUntil(start + 10*time.Minute)
		st := m.Stats()
		m.Stop()
		t.AddRow(fmt.Sprintf("%d", lim),
			fmtDur(res.Elapsed),
			fmt.Sprintf("%d", st.Reallocations),
			fmt.Sprintf("%d", st.MasterTakeovers))
	}
	t.Note = "paper default: 2 trails, then the master takes over"
	return t
}

// AblationTopology measures the §IV-E composition on a rack-structured
// cluster: tree edge-locality cost for random order, topology-aware
// order, and topology-aware + FP fine-tuning (which must keep the
// locality while still putting predicted-failed nodes on leaves).
func AblationTopology(nodes int, failedFrac float64) *Table {
	tp := topo.Default()
	list := make([]cluster.NodeID, nodes)
	for i := range list {
		list[i] = cluster.NodeID(i)
	}
	predicted := map[cluster.NodeID]bool{}
	count := int(float64(nodes) * failedFrac)
	if count > 0 {
		stride := nodes / count
		for i := 0; i < count; i++ {
			predicted[list[i*stride]] = true
		}
	}
	pred := func(id cluster.NodeID) bool { return predicted[id] }

	shuffle := append([]cluster.NodeID(nil), list...)
	rng := simnet.NewEngine(41).Rand("ablation/topo")
	rng.Shuffle(len(shuffle), func(i, j int) { shuffle[i], shuffle[j] = shuffle[j], shuffle[i] })

	const width = 32
	measure := func(order []cluster.NodeID) (cost int, leaves int) {
		built := fptree.Build(order, width)
		cost = tp.TreeCost(built)
		slots := fptree.LeafSlots(len(order), width)
		for i, id := range order {
			if predicted[id] && slots[i] {
				leaves++
			}
		}
		return
	}

	random, rl := measure(shuffle)
	aware, al := measure(tp.Order(shuffle))
	plan, swaps := tp.PlanFPTree(shuffle, pred, width)
	composed, cl := measure(plan)

	t := &Table{
		ID:      "ablation-topo",
		Title:   fmt.Sprintf("§IV-E composition: topology order + FP fine-tune (%d nodes, %s predicted-failed)", nodes, fmtPct(failedFrac)),
		Columns: []string{"ordering", "tree edge cost", "predicted at leaves"},
	}
	t.AddRow("random", fmt.Sprintf("%d", random), fmt.Sprintf("%d/%d", rl, len(predicted)))
	t.AddRow("topology-aware", fmt.Sprintf("%d", aware), fmt.Sprintf("%d/%d", al, len(predicted)))
	t.AddRow("topo + FP fine-tune", fmt.Sprintf("%d", composed), fmt.Sprintf("%d/%d", cl, len(predicted)))
	t.Note = fmt.Sprintf("fine-tuning used %d swaps: locality preserved, every predicted node a leaf", swaps)
	return t
}
