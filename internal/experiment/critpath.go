package experiment

// Critical-path hooks: adapters that turn a traced benchrunner run into
// the deterministic attribution report from internal/obs/critpath, so
// `benchrunner -exp fig7f -critpath out.txt` emits the per-structure
// table the paper's bottleneck argument rests on.
//
// Every engine an experiment constructs becomes one critpath source,
// labeled by experiment ID, collection index, and seed — a pure function
// of the registry order and the (serial) run, hence byte-stable. For
// shard-aware experiments (fig7f, fig10) each occupation probe builds
// its own cell group, so the flat engine list concatenates cells from
// many groups; per-engine sources keep the report well-defined there:
// a span whose parent ran on another cell surfaces as its own root,
// still named, so per-kind attribution and structure grouping survive.
// The fully stitched cross-cell DAG is exercised by
// `chaossoak -shards -critpath`, which runs exactly one group per seed
// and flattens it with critpath.FromCells.

import (
	"fmt"

	"eslurm/internal/obs/critpath"
	"eslurm/internal/simnet"
)

// A TracedEngine pairs an engine with the experiment that built it, in
// collection order across the whole benchrunner invocation.
type TracedEngine struct {
	Exp string
	E   *simnet.Engine
}

// CritpathSources converts traced engines into critpath sources, one per
// engine that recorded at least one span. Group is the experiment ID, so
// the report aggregates per experiment × root kind (× structure where
// the broadcast span carries one).
func CritpathSources(engines []TracedEngine) []critpath.Source {
	var srcs []critpath.Source
	for i, te := range engines {
		tr := te.E.Tracer()
		if tr.Len() == 0 {
			continue
		}
		srcs = append(srcs, critpath.Source{
			Label: fmt.Sprintf("%s engine %d seed %d", te.Exp, i, te.E.Seed()),
			Group: te.Exp,
			Spans: tr.Spans(),
		})
	}
	return srcs
}

// CritpathReport analyzes traced engines into one attribution report.
// Same flags, same registry order → byte-identical report.
func CritpathReport(engines []TracedEngine, topK int) *critpath.Report {
	return critpath.Analyze(CritpathSources(engines), critpath.Options{TopK: topK})
}
