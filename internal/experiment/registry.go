package experiment

import "time"

// Params sizes every experiment. PaperParams reproduces the paper's node
// counts and (where feasible) horizons; QuickParams shrinks horizons and
// trace sizes so the full suite runs in a couple of minutes while keeping
// the paper's node counts for the communication experiments, whose cost is
// per-broadcast rather than per-hour.
type Params struct {
	// Trace sizes.
	Fig5Jobs   int
	Fig11bJobs int
	Table8Jobs int
	// Resource runs.
	Fig7Nodes int
	Fig7Span  time.Duration
	Fig9Nodes int
	Fig9Span  time.Duration
	T56Nodes  int
	T56Span   time.Duration
	T56Sats   []int
	// Communication experiments.
	Fig7fNodes  int
	Fig8Nodes   int
	Fig11aNodes int
	PlaceNodes  int
	PlaceDays   int
	// Scheduling experiments.
	Fig10Scales   []int
	Fig10Jobs     int
	AblationScale int
	AblationJobs  int
	// Shards selects the execution kernel for shard-aware experiments
	// (see ShardAware): 0 runs the legacy single-engine path; N >= 1 runs
	// the sharded kernel on N worker goroutines. Results are invariant
	// across N >= 1 but are a separate pinned contract from N == 0.
	Shards int
}

// QuickParams returns the fast preset used by tests and the default
// benchrunner invocation.
func QuickParams() Params {
	return Params{
		Fig5Jobs: 12000, Fig11bJobs: 5000, Table8Jobs: 3000,
		Fig7Nodes: 1024, Fig7Span: 20 * time.Minute,
		Fig9Nodes: 4096, Fig9Span: 20 * time.Minute,
		T56Nodes: 5120, T56Span: 30 * time.Minute, T56Sats: []int{4, 8, 12, 16, 20},
		Fig7fNodes: 2048, Fig8Nodes: 2048, Fig11aNodes: 5120,
		PlaceNodes: 1024, PlaceDays: 1,
		Fig10Scales: []int{256, 1024}, Fig10Jobs: 2500,
		AblationScale: 1024, AblationJobs: 2500,
	}
}

// PaperParams returns the paper-scale preset: the exact node counts of
// Section VII with horizons shortened from 24 h/10 days to a few virtual
// hours (rates extrapolate; see table notes).
func PaperParams() Params {
	return Params{
		Fig5Jobs: 50000, Fig11bJobs: 20000, Table8Jobs: 12000,
		Fig7Nodes: 4096, Fig7Span: 4 * time.Hour,
		Fig9Nodes: 16384, Fig9Span: 4 * time.Hour,
		T56Nodes: 20480, T56Span: 2 * time.Hour, T56Sats: []int{10, 20, 30, 40, 50},
		Fig7fNodes: 4096, Fig8Nodes: 4096, Fig11aNodes: 20480,
		PlaceNodes: 4096, PlaceDays: 10,
		Fig10Scales: []int{1024, 4096, 16384, 20480}, Fig10Jobs: 8000,
		AblationScale: 20480, AblationJobs: 8000,
	}
}

// Spec is one runnable experiment.
type Spec struct {
	// ID matches the DESIGN.md experiment index ("fig8b", "table5", ...).
	ID string
	// Artifact names the paper table/figure reproduced.
	Artifact string
	// Run executes the experiment at the given scale.
	Run func(p Params) []*Table
}

// Registry lists every experiment in evaluation order.
func Registry() []Spec {
	return []Spec{
		{"table1", "Table I", func(p Params) []*Table { return []*Table{Table1()} }},
		{"fig5", "Fig. 5a-c", func(p Params) []*Table { return Fig5(p.Fig5Jobs) }},
		{"fig7", "Fig. 7a-e", func(p Params) []*Table { return []*Table{Fig7(p.Fig7Nodes, p.Fig7Span)} }},
		{"fig7f", "Fig. 7f", func(p Params) []*Table {
			if p.Shards > 0 {
				return []*Table{Fig7fSharded(p.Fig7fNodes, nil, p.Shards)}
			}
			return []*Table{Fig7f(p.Fig7fNodes, nil)}
		}},
		{"fig8a", "Fig. 8a", func(p Params) []*Table { return []*Table{Fig8a(p.Fig8Nodes)} }},
		{"fig8b", "Fig. 8b", func(p Params) []*Table { return []*Table{Fig8b(p.Fig8Nodes, nil)} }},
		{"placement", "§VII-A placement stats", func(p Params) []*Table {
			return []*Table{Placement(p.PlaceNodes, p.PlaceDays)}
		}},
		{"fig9", "Fig. 9a-f", func(p Params) []*Table { return Fig9(p.Fig9Nodes, p.Fig9Span) }},
		{"table5", "Tables V-VI", func(p Params) []*Table {
			return Tables5and6(p.T56Nodes, p.T56Sats, p.T56Span)
		}},
		{"fig11a", "Fig. 11a", func(p Params) []*Table {
			return []*Table{Fig11a(p.Fig11aNodes, nil)}
		}},
		{"fig10", "Fig. 10a-c", func(p Params) []*Table {
			if p.Shards > 0 {
				return Fig10Sharded(p.Fig10Scales, p.Fig10Jobs, p.Shards)
			}
			return Fig10(p.Fig10Scales, p.Fig10Jobs)
		}},
		{"ablation", "§VII-D contributions", func(p Params) []*Table {
			return []*Table{Ablation(p.AblationScale, p.AblationJobs)}
		}},
		{"table8", "Table VIII", func(p Params) []*Table { return []*Table{Table8(p.Table8Jobs)} }},
		{"fig11b", "Fig. 11b", func(p Params) []*Table { return []*Table{Fig11b(p.Fig11bJobs)} }},
		{"ablation-width", "design sweep (not in paper)", func(p Params) []*Table {
			return []*Table{AblationTreeWidth(p.Fig8Nodes, nil)}
		}},
		{"ablation-realloc", "design sweep (not in paper)", func(p Params) []*Table {
			return []*Table{AblationReallocLimit(p.Fig8Nodes, nil)}
		}},
		{"ablation-topo", "§IV-E composition (not in paper)", func(p Params) []*Table {
			return []*Table{AblationTopology(p.Fig8Nodes, 0.02)}
		}},
		{"rack-outage", "correlated-failure stress (not in paper)", func(p Params) []*Table {
			return []*Table{RackOutage(p.Fig8Nodes)}
		}},
	}
}

// Lookup finds a spec by ID; ok is false for unknown IDs. "table6" aliases
// "table5" since the two tables come from the same runs.
func Lookup(id string) (Spec, bool) {
	if id == "table6" {
		id = "table5"
	}
	for _, s := range Registry() {
		if s.ID == id {
			return s, true
		}
	}
	return Spec{}, false
}
